package vm

import (
	"turnstile/internal/ast"
)

// Compile translates a parsed (and normally resolved) program into a
// Module. Compilation is total: constructs without a native opcode
// compile to OpEvalExpr/OpExecStmt delegation instructions that hand the
// single node back to the tree-walker, so any program the tree-walker
// accepts compiles, and rare constructs keep tree-walker semantics by
// construction.
//
// Charge discipline: the tree-walker charges one step at the entry of
// every statement and expression node, and error/budget attribution
// depends on the order of those charges. The compiler therefore carries a
// `pending` list of charge positions, appends the node's position exactly
// where the tree-walker would charge it, and fuses the list onto the next
// emitted instruction. Pending charges are flushed (onto an OpNop)
// before binding any jump target so a charge can never leak across a
// control-flow join onto a path that would not have executed it.
// Delegated nodes get no pending entry charge: eval/execStmt charge
// their own entry when the executor calls back into the tree-walker.
func Compile(prog *ast.Program) *Module {
	mb := &moduleBuilder{mod: &Module{Funcs: make(map[*ast.FuncLit]*Chunk)}}
	mb.mod.Top = mb.compileChunk(prog.Body, "<top>", nil)
	for _, s := range prog.Body {
		mb.sweepStmt(s)
	}
	return mb.mod
}

type moduleBuilder struct {
	mod *Module
}

func (mb *moduleBuilder) compileChunk(body []ast.Stmt, name string, exprRet ast.Expr) *Chunk {
	cc := &chunkCompiler{mb: mb, ch: &Chunk{Name: name}}
	if exprRet != nil {
		r := cc.expr(exprRet)
		cc.emit(OpRet, r, 0, 0, 0)
	} else {
		cc.stmts(body)
		cc.flush()
	}
	cc.ch.NumRegs = int(cc.maxtmp)
	return cc.ch
}

// chunkFor compiles (once) the body chunk for a function literal.
func (mb *moduleBuilder) chunkFor(fl *ast.FuncLit) *Chunk {
	if ch, ok := mb.mod.Funcs[fl]; ok {
		return ch
	}
	name := fl.Name
	if name == "" {
		name = "<anon>"
	}
	var ch *Chunk
	if fl.ExprRet != nil {
		ch = mb.compileChunk(nil, name, fl.ExprRet)
	} else {
		ch = mb.compileChunk(fl.Body.Body, name, nil)
	}
	ast.Walk(fl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "arguments" {
			ch.NeedsArguments = true
			return false
		}
		return !ch.NeedsArguments
	})
	ch.NoCapture = chunkCannotCaptureEnv(ch)
	mb.mod.Funcs[fl] = ch
	return ch
}

// chunkCannotCaptureEnv scans a compiled body for any opcode that could
// hand out a reference to the call environment: closure creation,
// function-declaration hoisting, or a delegated tree-walk region / try
// sub-chunk (whose ASTs may contain function literals). When none exist
// the environment is provably dead after the call returns.
func chunkCannotCaptureEnv(ch *Chunk) bool {
	for _, in := range ch.Code {
		switch in.Op {
		case OpClosure, OpHoist, OpEvalExpr, OpExecStmt, OpTry:
			return false
		}
	}
	return true
}

type loopCtx struct {
	depth      int32 // envDepth inside the loop (after its header scope)
	breakJumps []int
	contJumps  []int
	breakEdges []int
	contEdges  []int
}

type chunkCompiler struct {
	mb       *moduleBuilder
	ch       *Chunk
	pending  []ast.Pos
	ntmp     int32
	maxtmp   int32
	envDepth int32
	loops    []*loopCtx
}

func (cc *chunkCompiler) charge(p ast.Pos) { cc.pending = append(cc.pending, p) }

func (cc *chunkCompiler) emit(op Op, a, b, c, d int32) int {
	in := Instr{Op: op, A: a, B: b, C: c, D: d}
	if n := len(cc.pending); n > 0 {
		in.CIdx = int32(len(cc.ch.Charges))
		in.CN = int32(n)
		cc.ch.Charges = append(cc.ch.Charges, cc.pending...)
		cc.pending = cc.pending[:0]
	}
	cc.ch.Code = append(cc.ch.Code, in)
	return len(cc.ch.Code) - 1
}

// flush materializes pending charges onto a no-op so a following label
// never inherits straight-line charges.
func (cc *chunkCompiler) flush() {
	if len(cc.pending) > 0 {
		cc.emit(OpNop, 0, 0, 0, 0)
	}
}

// bind flushes pending charges and returns the pc of the next instruction
// as a jump target.
func (cc *chunkCompiler) bind() int32 {
	cc.flush()
	return int32(len(cc.ch.Code))
}

func (cc *chunkCompiler) push() int32 {
	r := cc.ntmp
	cc.ntmp++
	if cc.ntmp > cc.maxtmp {
		cc.maxtmp = cc.ntmp
	}
	return r
}

func (cc *chunkCompiler) konst(v any) int32 {
	cc.ch.Consts = append(cc.ch.Consts, v)
	return int32(len(cc.ch.Consts) - 1)
}

func (cc *chunkCompiler) scopeIdx(s *ast.ScopeInfo) int32 {
	cc.ch.Scopes = append(cc.ch.Scopes, s)
	return int32(len(cc.ch.Scopes) - 1)
}

func (cc *chunkCompiler) patchJump(j int, target int32) {
	in := &cc.ch.Code[j]
	if in.Op == OpJump {
		in.A = target
	} else {
		in.B = target
	}
}

func (cc *chunkCompiler) addEdge(popN int32) int {
	cc.ch.Edges = append(cc.ch.Edges, CtrlEdge{PopN: popN, PC: -1})
	return len(cc.ch.Edges) - 1
}

// ctrlEdges allocates break/continue routing edges for a delegated
// statement or try instruction, targeting the innermost in-chunk loop.
// Outside any loop, completions propagate out of the chunk (-1).
func (cc *chunkCompiler) ctrlEdges() (int32, int32) {
	if len(cc.loops) == 0 {
		return -1, -1
	}
	l := cc.loops[len(cc.loops)-1]
	n := cc.envDepth - l.depth
	be := cc.addEdge(n)
	l.breakEdges = append(l.breakEdges, be)
	ce := cc.addEdge(n)
	l.contEdges = append(l.contEdges, ce)
	return int32(be), int32(ce)
}

func (cc *chunkCompiler) closeLoop(l *loopCtx, cont, exit int32) {
	for _, j := range l.breakJumps {
		cc.patchJump(j, exit)
	}
	for _, j := range l.contJumps {
		cc.patchJump(j, cont)
	}
	for _, e := range l.breakEdges {
		cc.ch.Edges[e].PC = exit
	}
	for _, e := range l.contEdges {
		cc.ch.Edges[e].PC = cont
	}
	cc.loops = cc.loops[:len(cc.loops)-1]
}

// ---------------------------------------------------------------------------
// Statements

// stmts compiles a statement list with the tree-walker's hoisting pass:
// function declarations are defined (in order) before any statement runs.
func (cc *chunkCompiler) stmts(list []ast.Stmt) {
	for _, s := range list {
		if fd, ok := s.(*ast.FuncDecl); ok {
			proto := &FuncProto{Name: fd.Name, Ref: fd.Ref, Decl: fd.Fn, Chunk: cc.mb.chunkFor(fd.Fn)}
			cc.emit(OpHoist, 0, cc.konst(proto), 0, 0)
		}
	}
	for _, s := range list {
		cc.stmt(s)
	}
}

func (cc *chunkCompiler) stmt(s ast.Stmt) {
	save := cc.ntmp
	cc.stmtInner(s)
	cc.ntmp = save
}

func (cc *chunkCompiler) stmtInner(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.VarDecl:
		cc.charge(x.Pos())
		for _, d := range x.Decls {
			var r int32
			if d.Init != nil {
				r = cc.expr(d.Init)
			} else {
				r = cc.push()
				cc.emit(OpUndefV, r, 0, 0, 0)
			}
			site := &DefineSite{Name: d.Name, Ref: d.Ref, Const: x.Kind == ast.DeclConst}
			cc.emit(OpDefine, r, cc.konst(site), 0, 0)
			cc.ntmp = r
		}
	case *ast.FuncDecl:
		// Hoisted by stmts(); only the entry charge remains.
		cc.charge(x.Pos())
	case *ast.ExprStmt:
		cc.charge(x.Pos())
		cc.expr(x.X)
	case *ast.ReturnStmt:
		cc.charge(x.Pos())
		if x.Value != nil {
			r := cc.expr(x.Value)
			cc.emit(OpRet, r, 0, 0, 0)
		} else {
			cc.emit(OpRetUndef, 0, 0, 0, 0)
		}
	case *ast.IfStmt:
		cc.charge(x.Pos())
		r := cc.expr(x.Cond)
		cc.ntmp = r
		j := cc.emit(OpJumpUnless, r, -1, 0, 0)
		cc.stmt(x.Then)
		if x.Else != nil {
			j2 := cc.emit(OpJump, -1, 0, 0, 0)
			cc.patchJump(j, cc.bind())
			cc.stmt(x.Else)
			cc.patchJump(j2, cc.bind())
		} else {
			cc.patchJump(j, cc.bind())
		}
	case *ast.BlockStmt:
		cc.charge(x.Pos())
		cc.emit(OpPushScope, 0, cc.scopeIdx(x.Scope), 0, 0)
		cc.envDepth++
		cc.stmts(x.Body)
		cc.emit(OpPopScope, 0, 0, 0, 0)
		cc.envDepth--
	case *ast.WhileStmt:
		cc.charge(x.Pos())
		l := &loopCtx{depth: cc.envDepth}
		cc.loops = append(cc.loops, l)
		head := cc.bind()
		cc.charge(x.Pos()) // per-iteration step, like the tree-walker's loop head
		r := cc.expr(x.Cond)
		cc.ntmp = r
		j := cc.emit(OpJumpUnless, r, -1, 0, 0)
		l.breakJumps = append(l.breakJumps, j)
		cc.stmt(x.Body)
		cc.emit(OpJump, head, 0, 0, 0)
		cc.closeLoop(l, head, cc.bind())
	case *ast.DoWhileStmt:
		cc.charge(x.Pos())
		l := &loopCtx{depth: cc.envDepth}
		cc.loops = append(cc.loops, l)
		head := cc.bind()
		cc.charge(x.Pos())
		cc.stmt(x.Body)
		cont := cc.bind()
		r := cc.expr(x.Cond)
		cc.ntmp = r
		cc.emit(OpJumpIf, r, head, 0, 0)
		cc.closeLoop(l, cont, cc.bind())
	case *ast.ForStmt:
		cc.charge(x.Pos())
		cc.emit(OpPushScope, 0, cc.scopeIdx(x.Scope), 0, 0)
		cc.envDepth++
		perIter := false
		if x.Init != nil {
			if vd, ok := x.Init.(*ast.VarDecl); ok && vd.Kind != ast.DeclVar {
				perIter = true
			}
			cc.stmt(x.Init)
		}
		l := &loopCtx{depth: cc.envDepth}
		cc.loops = append(cc.loops, l)
		head := cc.bind()
		cc.charge(x.Pos())
		if x.Cond != nil {
			r := cc.expr(x.Cond)
			cc.ntmp = r
			j := cc.emit(OpJumpUnless, r, -1, 0, 0)
			l.breakJumps = append(l.breakJumps, j)
		}
		cc.stmt(x.Body)
		cont := cc.bind()
		if perIter {
			cc.emit(OpIterCopy, 0, 0, 0, 0)
		}
		if x.Post != nil {
			r := cc.expr(x.Post)
			cc.ntmp = r
		}
		cc.emit(OpJump, head, 0, 0, 0)
		cc.closeLoop(l, cont, cc.bind())
		cc.emit(OpPopScope, 0, 0, 0, 0)
		cc.envDepth--
	case *ast.BreakStmt:
		cc.charge(x.Pos())
		cc.ctrlStmt(1)
	case *ast.ContinueStmt:
		cc.charge(x.Pos())
		cc.ctrlStmt(2)
	case *ast.ThrowStmt:
		cc.charge(x.Pos())
		r := cc.expr(x.Value)
		cc.emit(OpThrow, r, 0, 0, 0)
	case *ast.TryStmt:
		cc.charge(x.Pos())
		ti := &TryInfo{Node: x}
		ti.Body = cc.mb.compileChunk(x.Body.Body, "<try>", nil)
		if x.Catch != nil {
			ti.Catch = cc.mb.compileChunk(x.Catch.Body, "<catch>", nil)
		}
		if x.Finally != nil {
			ti.Finally = cc.mb.compileChunk(x.Finally.Body, "<finally>", nil)
		}
		be, ce := cc.ctrlEdges()
		cc.emit(OpTry, cc.konst(ti), be, ce, 0)
	case *ast.EmptyStmt:
		cc.charge(x.Pos())
	default:
		// SwitchStmt, ForInStmt, ClassDecl and anything future: delegate
		// the whole node to the tree-walker. No entry charge — execStmt
		// charges its own.
		cc.delegateStmt(s)
	}
}

// ctrlStmt compiles break (kind 1) / continue (kind 2): a static jump to
// the innermost in-chunk loop, or a chunk completion when the loop (if
// any) lives in an enclosing chunk.
func (cc *chunkCompiler) ctrlStmt(kind int32) {
	if len(cc.loops) == 0 {
		cc.emit(OpCtrl, kind, 0, 0, 0)
		return
	}
	l := cc.loops[len(cc.loops)-1]
	if n := cc.envDepth - l.depth; n > 0 {
		cc.emit(OpPopN, n, 0, 0, 0)
	}
	j := cc.emit(OpJump, -1, 0, 0, 0)
	if kind == 1 {
		l.breakJumps = append(l.breakJumps, j)
	} else {
		l.contJumps = append(l.contJumps, j)
	}
}

func (cc *chunkCompiler) delegateStmt(s ast.Stmt) {
	be, ce := cc.ctrlEdges()
	cc.emit(OpExecStmt, cc.konst(s), be, ce, 0)
}

// ---------------------------------------------------------------------------
// Expressions
//
// Convention: every case allocates its destination register first,
// compiles children into higher temporaries, and releases them
// (ntmp = dst+1) before returning, so sibling expressions land in
// consecutive registers.

func (cc *chunkCompiler) expr(e ast.Expr) int32 {
	switch x := e.(type) {
	case *ast.Ident:
		cc.charge(x.Pos())
		dst := cc.push()
		cc.emit(OpIdent, dst, cc.konst(x), 0, 0)
		return dst
	case *ast.NumberLit:
		cc.charge(x.Pos())
		dst := cc.push()
		cc.emit(OpConst, dst, cc.konst(x.Value), 0, 0)
		return dst
	case *ast.StringLit:
		cc.charge(x.Pos())
		dst := cc.push()
		cc.emit(OpConst, dst, cc.konst(x.Value), 0, 0)
		return dst
	case *ast.BoolLit:
		cc.charge(x.Pos())
		dst := cc.push()
		cc.emit(OpConst, dst, cc.konst(x.Value), 0, 0)
		return dst
	case *ast.NullLit:
		cc.charge(x.Pos())
		dst := cc.push()
		cc.emit(OpNullV, dst, 0, 0, 0)
		return dst
	case *ast.UndefinedLit:
		cc.charge(x.Pos())
		dst := cc.push()
		cc.emit(OpUndefV, dst, 0, 0, 0)
		return dst
	case *ast.ThisExpr:
		cc.charge(x.Pos())
		dst := cc.push()
		cc.emit(OpThis, dst, cc.konst(x), 0, 0)
		return dst
	case *ast.TemplateLit:
		cc.charge(x.Pos())
		dst := cc.push()
		base := cc.ntmp
		for _, sub := range x.Exprs {
			cc.expr(sub)
		}
		cc.emit(OpTemplate, dst, base, int32(len(x.Exprs)), cc.konst(x))
		cc.ntmp = dst + 1
		return dst
	case *ast.ArrayLit:
		if hasSpread(x.Elems) {
			return cc.delegate(e)
		}
		cc.charge(x.Pos())
		dst := cc.push()
		base := cc.ntmp
		for _, el := range x.Elems {
			cc.expr(el)
		}
		cc.emit(OpArray, dst, base, int32(len(x.Elems)), cc.konst(x))
		cc.ntmp = dst + 1
		return dst
	case *ast.ObjectLit:
		for _, p := range x.Props {
			if p.Spread || p.Computed {
				return cc.delegate(e)
			}
		}
		cc.charge(x.Pos())
		dst := cc.push()
		cc.emit(OpNewObject, dst, cc.konst(x), 0, 0)
		for _, p := range x.Props {
			v := cc.expr(p.Value)
			cc.emit(OpSetProp, dst, v, cc.konst(p.Key), 0)
			cc.ntmp = dst + 1
		}
		return dst
	case *ast.FuncLit:
		cc.charge(x.Pos())
		dst := cc.push()
		proto := &FuncProto{Name: x.Name, Decl: x, Chunk: cc.mb.chunkFor(x)}
		cc.emit(OpClosure, dst, cc.konst(proto), 0, 0)
		return dst
	case *ast.MemberExpr:
		cc.charge(x.Pos())
		dst := cc.push()
		o := cc.expr(x.Object)
		if x.Computed {
			i := cc.expr(x.Index)
			cc.emit(OpMemberGetC, dst, o, i, cc.konst(x))
		} else {
			cc.emit(OpMemberGet, dst, o, cc.konst(x), 0)
		}
		cc.ntmp = dst + 1
		return dst
	case *ast.CallExpr:
		return cc.call(x)
	case *ast.BinaryExpr:
		cc.charge(x.Pos())
		dst := cc.push()
		l := cc.expr(x.Left)
		r := cc.expr(x.Right)
		var op Op
		switch x.Op {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		case "<":
			op = OpCmpLt
		case ">":
			op = OpCmpGt
		case "<=":
			op = OpCmpLe
		case ">=":
			op = OpCmpGe
		case "===":
			op = OpStrictEq
		case "!==":
			op = OpStrictNeq
		default:
			op = OpBinOp
		}
		cc.emit(op, dst, l, r, cc.konst(x))
		cc.ntmp = dst + 1
		return dst
	case *ast.LogicalExpr:
		cc.charge(x.Pos())
		dst := cc.expr(x.Left)
		var j int
		switch x.Op {
		case "&&":
			j = cc.emit(OpJumpUnless, dst, -1, 0, 0)
		case "||":
			j = cc.emit(OpJumpIf, dst, -1, 0, 0)
		default: // "??"
			j = cc.emit(OpJumpNotNull, dst, -1, 0, 0)
		}
		r := cc.expr(x.Right)
		cc.emit(OpMove, dst, r, 0, 0)
		cc.ntmp = dst + 1
		cc.patchJump(j, cc.bind())
		return dst
	case *ast.UnaryExpr:
		var op Op
		switch x.Op {
		case "!":
			op = OpNot
		case "-":
			op = OpNeg
		case "+":
			op = OpToNum
		case "~":
			op = OpBitNot
		case "void":
			op = OpUndefV
		default:
			// typeof (ident special-casing) and delete: tree-walk.
			return cc.delegate(e)
		}
		cc.charge(x.Pos())
		dst := cc.push()
		r := cc.expr(x.X)
		if op == OpUndefV {
			cc.emit(OpUndefV, dst, 0, 0, 0)
		} else {
			cc.emit(op, dst, r, 0, 0)
		}
		cc.ntmp = dst + 1
		return dst
	case *ast.UpdateExpr:
		if _, ok := x.X.(*ast.Ident); ok {
			cc.charge(x.Pos())
			dst := cc.push()
			cc.emit(OpIncDec, dst, cc.konst(x), 0, 0)
			return dst
		}
		return cc.delegate(e)
	case *ast.AssignExpr:
		if x.Op != "=" {
			return cc.delegate(e)
		}
		switch t := x.Target.(type) {
		case *ast.Ident:
			cc.charge(x.Pos())
			v := cc.expr(x.Value)
			cc.emit(OpStoreIdent, v, cc.konst(t), 0, 0)
			return v
		case *ast.MemberExpr:
			cc.charge(x.Pos())
			v := cc.expr(x.Value)
			o := cc.expr(t.Object)
			if t.Computed {
				i := cc.expr(t.Index)
				cc.emit(OpMemberSetC, v, o, i, cc.konst(t))
			} else {
				cc.emit(OpMemberSet, v, o, cc.konst(t), 0)
			}
			cc.ntmp = v + 1
			return v
		default:
			return cc.delegate(e)
		}
	case *ast.CondExpr:
		cc.charge(x.Pos())
		dst := cc.expr(x.Cond)
		j := cc.emit(OpJumpUnless, dst, -1, 0, 0)
		r := cc.expr(x.Then)
		cc.emit(OpMove, dst, r, 0, 0)
		cc.ntmp = dst + 1
		j2 := cc.emit(OpJump, -1, 0, 0, 0)
		cc.patchJump(j, cc.bind())
		r2 := cc.expr(x.Else)
		cc.emit(OpMove, dst, r2, 0, 0)
		cc.ntmp = dst + 1
		cc.patchJump(j2, cc.bind())
		return dst
	case *ast.SeqExpr:
		cc.charge(x.Pos())
		dst := cc.push()
		for i, sub := range x.Exprs {
			r := cc.expr(sub)
			if i == len(x.Exprs)-1 {
				cc.emit(OpMove, dst, r, 0, 0)
			}
			cc.ntmp = dst + 1
		}
		if len(x.Exprs) == 0 {
			cc.emit(OpUndefV, dst, 0, 0, 0)
		}
		return dst
	case *ast.AwaitExpr:
		cc.charge(x.Pos())
		dst := cc.push()
		r := cc.expr(x.X)
		cc.emit(OpAwait, dst, r, 0, 0)
		cc.ntmp = dst + 1
		return dst
	default:
		// NewExpr, SpreadExpr (malformed position) and anything future.
		return cc.delegate(e)
	}
}

// call compiles a call expression. Argument registers are consecutive;
// the packed C operand is base<<16|argc. Calls on the unshadowed `__t`
// tracker global fuse into OpTrackerCall.
func (cc *chunkCompiler) call(x *ast.CallExpr) int32 {
	if hasSpread(x.Args) || cc.ntmp > 0x3fff || len(x.Args) > 0xffff {
		return cc.delegate(x)
	}
	mem, isMem := x.Callee.(*ast.MemberExpr)
	tracker := false
	if isMem && !mem.Computed {
		if id, ok := mem.Object.(*ast.Ident); ok && id.Name == "__t" && id.Ref == nil {
			tracker = true
		}
	}
	cc.charge(x.Pos())
	dst := cc.push()
	base := cc.ntmp
	for _, a := range x.Args {
		cc.expr(a)
	}
	packed := base<<16 | int32(len(x.Args))
	switch {
	case tracker:
		// The tree-walker would now eval the `__t` ident (one step charge)
		// then do the IC method dispatch; the fused opcode keeps the charge
		// and replaces the lookup.
		cc.charge(mem.Object.Pos())
		site := &CallSite{Node: x, Mem: mem, Name: mem.Property}
		cc.emit(OpTrackerCall, dst, 0, packed, cc.konst(site))
	case isMem && !mem.Computed:
		recv := cc.expr(mem.Object)
		site := &CallSite{Node: x, Mem: mem, Name: mem.Property}
		cc.emit(OpCallMethod, dst, recv, packed, cc.konst(site))
	case isMem:
		recv := cc.expr(mem.Object)
		cc.expr(mem.Index) // lands in recv+1
		site := &CallSite{Node: x, Mem: mem}
		cc.emit(OpCallMethodC, dst, recv, packed, cc.konst(site))
	default:
		f := cc.expr(x.Callee)
		site := &CallSite{Node: x}
		cc.emit(OpCall, dst, f, packed, cc.konst(site))
	}
	cc.ntmp = dst + 1
	return dst
}

func (cc *chunkCompiler) delegate(e ast.Expr) int32 {
	dst := cc.push()
	cc.emit(OpEvalExpr, dst, cc.konst(e), 0, 0)
	return dst
}

func hasSpread(list []ast.Expr) bool {
	for _, e := range list {
		if _, ok := e.(*ast.SpreadExpr); ok {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Sweep: make sure every function literal anywhere in the tree has a
// compiled chunk, including literals inside delegated regions (switch
// bodies, class methods, spread arguments). The interpreter attaches
// chunks when those literals become closures at run time.

func (mb *moduleBuilder) sweepStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.VarDecl:
		for _, d := range x.Decls {
			if d.Init != nil {
				mb.sweepExpr(d.Init)
			}
		}
	case *ast.FuncDecl:
		mb.sweepExpr(x.Fn)
	case *ast.ExprStmt:
		mb.sweepExpr(x.X)
	case *ast.ReturnStmt:
		if x.Value != nil {
			mb.sweepExpr(x.Value)
		}
	case *ast.IfStmt:
		mb.sweepExpr(x.Cond)
		mb.sweepStmt(x.Then)
		if x.Else != nil {
			mb.sweepStmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			mb.sweepStmt(x.Init)
		}
		if x.Cond != nil {
			mb.sweepExpr(x.Cond)
		}
		if x.Post != nil {
			mb.sweepExpr(x.Post)
		}
		mb.sweepStmt(x.Body)
	case *ast.ForInStmt:
		mb.sweepExpr(x.Object)
		mb.sweepStmt(x.Body)
	case *ast.WhileStmt:
		mb.sweepExpr(x.Cond)
		mb.sweepStmt(x.Body)
	case *ast.DoWhileStmt:
		mb.sweepStmt(x.Body)
		mb.sweepExpr(x.Cond)
	case *ast.BlockStmt:
		for _, s2 := range x.Body {
			mb.sweepStmt(s2)
		}
	case *ast.ThrowStmt:
		mb.sweepExpr(x.Value)
	case *ast.TryStmt:
		mb.sweepStmt(x.Body)
		if x.Catch != nil {
			mb.sweepStmt(x.Catch)
		}
		if x.Finally != nil {
			mb.sweepStmt(x.Finally)
		}
	case *ast.SwitchStmt:
		mb.sweepExpr(x.Disc)
		for _, c := range x.Cases {
			if c.Test != nil {
				mb.sweepExpr(c.Test)
			}
			for _, s2 := range c.Body {
				mb.sweepStmt(s2)
			}
		}
	case *ast.ClassDecl:
		if x.SuperClass != nil {
			mb.sweepExpr(x.SuperClass)
		}
		for _, m := range x.Methods {
			mb.sweepExpr(m.Fn)
		}
	}
}

func (mb *moduleBuilder) sweepExpr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.TemplateLit:
		for _, sub := range x.Exprs {
			mb.sweepExpr(sub)
		}
	case *ast.ArrayLit:
		for _, el := range x.Elems {
			mb.sweepExpr(el)
		}
	case *ast.ObjectLit:
		for _, p := range x.Props {
			if p.KeyExpr != nil {
				mb.sweepExpr(p.KeyExpr)
			}
			if p.Value != nil {
				mb.sweepExpr(p.Value)
			}
		}
	case *ast.FuncLit:
		mb.chunkFor(x)
		if x.ExprRet != nil {
			mb.sweepExpr(x.ExprRet)
		} else if x.Body != nil {
			for _, s := range x.Body.Body {
				mb.sweepStmt(s)
			}
		}
	case *ast.CallExpr:
		mb.sweepExpr(x.Callee)
		for _, a := range x.Args {
			mb.sweepExpr(a)
		}
	case *ast.NewExpr:
		mb.sweepExpr(x.Callee)
		for _, a := range x.Args {
			mb.sweepExpr(a)
		}
	case *ast.MemberExpr:
		mb.sweepExpr(x.Object)
		if x.Index != nil {
			mb.sweepExpr(x.Index)
		}
	case *ast.BinaryExpr:
		mb.sweepExpr(x.Left)
		mb.sweepExpr(x.Right)
	case *ast.LogicalExpr:
		mb.sweepExpr(x.Left)
		mb.sweepExpr(x.Right)
	case *ast.UnaryExpr:
		mb.sweepExpr(x.X)
	case *ast.UpdateExpr:
		mb.sweepExpr(x.X)
	case *ast.AssignExpr:
		mb.sweepExpr(x.Target)
		mb.sweepExpr(x.Value)
	case *ast.CondExpr:
		mb.sweepExpr(x.Cond)
		mb.sweepExpr(x.Then)
		mb.sweepExpr(x.Else)
	case *ast.SeqExpr:
		for _, sub := range x.Exprs {
			mb.sweepExpr(sub)
		}
	case *ast.SpreadExpr:
		mb.sweepExpr(x.X)
	case *ast.AwaitExpr:
		mb.sweepExpr(x.X)
	}
}
