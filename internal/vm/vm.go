// Package vm compiles resolved MiniJS ASTs to a compact register bytecode
// executed by the interpreter's dispatch loop (internal/interp). The
// resolver's (depth, slot) coordinates are the register allocation for
// variables: locals stay in the same slot-array environments the
// tree-walker uses (so closures, IterCopy per-iteration bindings and
// mixed VM/tree-walk frames interoperate), while expression temporaries
// live in a per-frame register file.
//
// The compiler is a strict transcription of the tree-walker's evaluation
// order: every AST node that would charge a step at eval/execStmt entry
// contributes a pre-charge (position) fused onto the next emitted
// instruction, and constructs whose semantics are rare or intricate
// (switch, for-in, class declarations, new, spread, compound member
// assignment, typeof/delete) compile to delegation opcodes that call
// straight back into the tree-walker for that one node — parity on those
// paths is by construction, not by reimplementation. DIF tracker calls
// (`__t.method(...)` against the unshadowed global) compile to a fused
// OpTrackerCall so the instrumented hot path pays one dispatch instead of
// an environment walk plus method lookup per tracker operation.
package vm

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"turnstile/internal/ast"
)

// Version tags the bytecode format; it participates in the
// content-addressed artifact cache key so a format change never revives
// stale compiled artifacts.
const Version = "turnstile-vm-3"

// Op is a bytecode opcode.
type Op uint8

// Opcode set. Operand meanings are documented per opcode; A is
// conventionally the destination register.
const (
	OpNop         Op = iota // charge carrier only
	OpConst                 // A=dst, B=const index (literal value)
	OpUndefV                // A=dst
	OpNullV                 // A=dst
	OpMove                  // A=dst, B=src
	OpIdent                 // A=dst, B=const(*ast.Ident); errors when undefined
	OpThis                  // A=dst, B=const(*ast.ThisExpr); undefined when unbound
	OpDefine                // A=src, B=const(*DefineSite)
	OpStoreIdent            // A=src, B=const(*ast.Ident)
	OpIncDec                // A=dst, B=const(*ast.UpdateExpr) with Ident target
	OpJump                  // A=target pc
	OpJumpUnless            // A=cond reg, B=target (taken when !Truthy)
	OpJumpIf                // A=cond reg, B=target (taken when Truthy)
	OpJumpNotNull           // A=reg, B=target (taken when value is not nullish)
	OpAdd                   // A=dst, B=l, C=r, D=const(node) — float fast path
	OpSub                   // ditto
	OpMul                   // ditto
	OpDiv                   // ditto
	OpMod                   // ditto (math.Mod, matching BinaryOp "%")
	OpCmpLt                 // ditto (numeric/string compare via BinaryOp fallback)
	OpCmpGt                 // ditto
	OpCmpLe                 // ditto
	OpCmpGe                 // ditto
	OpStrictEq              // A=dst, B=l, C=r
	OpStrictNeq             // A=dst, B=l, C=r
	OpBinOp                 // A=dst, B=l, C=r, D=const(*ast.BinaryExpr) — generic
	OpNot                   // A=dst, B=src
	OpNeg                   // A=dst, B=src
	OpToNum                 // A=dst, B=src (unary +)
	OpBitNot                // A=dst, B=src
	OpAwait                 // A=dst, B=src
	OpTemplate              // A=dst, B=base, C=count, D=const(*ast.TemplateLit)
	OpArray                 // A=dst, B=base, C=count, D=const(*ast.ArrayLit)
	OpNewObject             // A=dst, B=const(*ast.ObjectLit)
	OpSetProp               // A=obj, B=val, C=const(key string)
	OpClosure               // A=dst, B=const(*FuncProto)
	OpHoist                 // B=const(*FuncProto) — function-declaration hoisting
	OpMemberGet             // A=dst, B=obj, C=const(*ast.MemberExpr) — IC read path
	OpMemberGetC            // A=dst, B=obj, C=index reg, D=const(*ast.MemberExpr)
	OpMemberSet             // A=val, B=obj, C=const(*ast.MemberExpr)
	OpMemberSetC            // A=val, B=obj, C=index reg, D=const(*ast.MemberExpr)
	OpCall                  // A=dst, B=callee, C=base<<16|argc, D=const(*CallSite)
	OpCallMethod            // A=dst, B=recv, C=base<<16|argc, D=const(*CallSite); IC dispatch
	OpCallMethodC           // A=dst, B=recv (index in B+1), C=base<<16|argc, D=const(*CallSite)
	OpTrackerCall           // A=dst, C=base<<16|argc, D=const(*CallSite) — fused __t.* site
	OpEvalExpr              // A=dst, B=const(ast.Expr) — delegate to tree-walk eval
	OpExecStmt              // A=const(ast.Stmt), B=break edge, C=continue edge (-1 none)
	OpTry                   // A=const(*TryInfo), B=break edge, C=continue edge
	OpPushScope             // B=scope index — env = newEnvFor(env, scope)
	OpPopScope              // env = env.parent
	OpPopN                  // A=count — env walks up A parents
	OpIterCopy              // env = env.IterCopy() (per-iteration let/const bindings)
	OpRet                   // A=src
	OpRetUndef              //
	OpCtrl                  // A=1 break, A=2 continue — chunk completion
	OpThrow                 // A=src — raise MiniJS exception
)

// Instr is one bytecode instruction. CIdx/CN reference the chunk's
// pre-charge table: positions charged (in order) against the step budget
// before the instruction executes, replicating the tree-walker's
// charge-at-node-entry discipline.
type Instr struct {
	Op         Op
	A, B, C, D int32
	CIdx, CN   int32
}

// CtrlEdge routes a break/continue completion surfacing from a delegated
// statement or try sub-chunk back into the flat bytecode of the enclosing
// chunk: pop PopN environments, then jump to PC.
type CtrlEdge struct {
	PopN int32
	PC   int32
}

// CallSite is the compile-time constant for a call instruction.
type CallSite struct {
	Node *ast.CallExpr
	Mem  *ast.MemberExpr // non-nil for method calls
	Name string          // static (non-computed) method name
}

// DefineSite is the compile-time constant for a variable declaration.
type DefineSite struct {
	Name  string
	Ref   *ast.VarRef
	Const bool
}

// FuncProto is the compile-time constant for closure creation and
// function-declaration hoisting.
type FuncProto struct {
	Name  string
	Ref   *ast.VarRef // hoisting target (function declarations only)
	Decl  *ast.FuncLit
	Chunk *Chunk
}

// TryInfo carries a try statement's sub-chunks. The executor transcribes
// the tree-walker's try/catch/finally composition over their completions.
type TryInfo struct {
	Node                 *ast.TryStmt
	Body, Catch, Finally *Chunk
}

// Chunk is one compiled body: the top level of a program, a function
// body, or a try-statement sub-block.
type Chunk struct {
	Name    string
	Code    []Instr
	Charges []ast.Pos // flat pre-charge positions, referenced by Instr.CIdx/CN
	Consts  []any
	Scopes  []*ast.ScopeInfo
	Edges   []CtrlEdge
	NumRegs int
	// NeedsArguments reports whether any identifier named `arguments`
	// occurs in the function body (including nested literals, which may
	// inherit it through arrows). When false, the call prologue can skip
	// materializing the arguments array: no lookup can ever observe the
	// unbound slot.
	NeedsArguments bool
	// NoCapture reports that executing this chunk can never create a
	// reference to its environment chain that outlives the call: the
	// code contains no closure creation, no hoisted declarations, and no
	// delegated tree-walk regions or try sub-chunks (which could contain
	// either). The interpreter recycles call environments for such
	// chunks.
	NoCapture bool
}

// Module is the compiled form of one program: its top-level chunk plus a
// chunk per function literal anywhere in the tree (including literals
// that are created by delegated tree-walk regions — the interpreter
// attaches their chunks at closure-creation time).
type Module struct {
	Top   *Chunk
	Funcs map[*ast.FuncLit]*Chunk
}

// ---------------------------------------------------------------------------
// Content-addressed compiled-artifact cache

// Cache is a singleflight content-addressed artifact cache: the key is
// sha256(file, source, bytecode version), the value is the parsed+resolved
// program together with its compiled module. Because chunks reference AST
// nodes (inline-cache sites, positions), the cached program and module are
// one artifact and must be used together — exactly what a multi-tenant
// serve deployment of the same app wants for cold starts.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	once sync.Once
	prog *ast.Program
	mod  *Module
	err  error
}

// NewCache creates an empty artifact cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Key returns the content hash for a (file, source) pair under the
// current bytecode version.
func Key(file, source string) string {
	h := sha256.New()
	h.Write([]byte(file))
	h.Write([]byte{0})
	h.Write([]byte(source))
	h.Write([]byte{0})
	h.Write([]byte(Version))
	return hex.EncodeToString(h.Sum(nil))
}

// Load returns the compiled artifact for (file, source), building it at
// most once per cache: concurrent callers for the same content share one
// parse+resolve+compile. The build callback must return a fully resolved
// program; Load compiles it.
func (c *Cache) Load(file, source string, build func() (*ast.Program, error)) (*ast.Program, *Module, error) {
	key := Key(file, source)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		prog, err := build()
		if err != nil {
			e.err = err
			return
		}
		e.prog = prog
		e.mod = Compile(prog)
	})
	return e.prog, e.mod, e.err
}

// Stats reports (hits, misses) so tests and telemetry can observe
// cold-start sharing.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
