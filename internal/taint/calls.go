package taint

import (
	"strings"

	"turnstile/internal/ast"
)

// evalCall dispatches calls: host-module APIs are matched against the
// source/sink patterns; user functions are inlined context-sensitively.
func (a *analyzer) evalCall(x *ast.CallExpr, env *aenv) *aval {
	// require(...)
	if id, ok := x.Callee.(*ast.Ident); ok && id.Name == "require" {
		return a.evalRequire(x, env)
	}

	args := make([]*aval, len(x.Args))
	tainted := false
	for i, arg := range x.Args {
		args[i] = a.eval(arg, env)
		if args[i].tainted() {
			tainted = true
		}
	}
	// a call that tainted data flows into lies on a sensitive path and must
	// be instrumented (τ.invoke performs the flow check at the receiver —
	// the emailSender.send(scene) sites of Fig. 2b), whether or not its
	// result is tainted.
	if tainted {
		a.mark(x.NodeID())
	}

	if mem, ok := x.Callee.(*ast.MemberExpr); ok && !mem.Computed {
		recv := a.eval(mem.Object, env)
		if out, handled := a.hostCall(recv, mem.Property, args, x); handled {
			a.markValue(out, x)
			return out
		}
		// user method call
		if recv != nil {
			if mv := recv.prop(mem.Property); mv != nil && mv.typ == "fn" {
				out := a.invokeUser(mv, args, recv)
				a.markValue(out, x)
				return out
			}
			// class method via $method registry (instances carry $class)
			if cls := recv.prop("$class"); cls != nil {
				if mv := cls.prop("$method:" + mem.Property); mv != nil {
					out := a.invokeUser(mv, args, recv)
					a.markValue(out, x)
					return out
				}
			}
		}
		// array combinators: the callback receives the element type
		switch mem.Property {
		case "map", "filter", "forEach", "find", "some", "every", "reduce":
			if len(args) > 0 && args[0] != nil && args[0].typ == "fn" {
				elem := newAval("obj")
				if recv != nil {
					elem.addTaint(recv)
					if ev := recv.prop("$elem"); ev != nil {
						elem = ev.clone()
						elem.addTaint(recv)
					}
				}
				cbArgs := []*aval{elem, newAval("prim"), recv}
				if mem.Property == "reduce" {
					cbArgs = []*aval{newAval("obj"), elem, newAval("prim"), recv}
				}
				ret := a.invokeUser(args[0], cbArgs, nil)
				out := newAval("obj")
				out.addTaint(recv)
				out.addTaint(ret)
				if out.tainted() {
					out.setProp("$elem", out.clone())
				}
				a.markValue(out, x)
				return out
			}
		case "push", "unshift":
			if recv != nil {
				for _, ag := range args {
					recv.addTaint(ag)
					if ag.tainted() {
						elem := recv.prop("$elem")
						if elem == nil {
							elem = newAval("obj")
							recv.setProp("$elem", elem)
						}
						elem.addTaint(ag)
					}
				}
				a.markValue(recv, x)
			}
			return newAval("prim")
		case "join", "toString", "slice", "concat", "pop", "shift", "flat", "sort", "reverse", "splice":
			out := newAval("obj")
			out.addTaint(recv)
			for _, ag := range args {
				out.addTaint(ag)
			}
			a.markValue(out, x)
			return out
		case "split", "toUpperCase", "toLowerCase", "trim", "substring", "substr",
			"replace", "replaceAll", "charAt", "padStart", "repeat":
			out := newAval("obj")
			out.addTaint(recv)
			a.markValue(out, x)
			return out
		case "then", "catch", "finally":
			// §4.5: the Promise is treated as the callback's return value
			if len(args) > 0 && args[0] != nil && args[0].typ == "fn" {
				inner := newAval("obj")
				if recv != nil {
					inner.addTaint(recv)
					if rv := recv.prop("$resolved"); rv != nil {
						inner = rv.clone()
						inner.addTaint(recv)
					}
				}
				ret := a.invokeUser(args[0], []*aval{inner}, nil)
				out := newAval("obj")
				out.addTaint(ret)
				out.addTaint(recv)
				if ret != nil {
					out.setProp("$resolved", ret)
				}
				a.markValue(out, x)
				return out
			}
		}
		// unknown method on a tainted object: result is tainted
		out := newAval("obj")
		out.addTaint(recv)
		for _, ag := range args {
			out.addTaint(ag)
		}
		a.markValue(out, x)
		return out
	}

	// bare or computed-callee call
	var fnVal *aval
	switch callee := x.Callee.(type) {
	case *ast.Ident:
		// declassify(v, name) / endorse(v, name) are tracker host functions
		// and identity-shaped: the result is the argument itself. Whether a
		// downgrade is honored is decided dynamically (robust
		// declassification), so the static pass conservatively keeps the
		// argument's taint and shape — the tainted-args mark above already
		// put the call on the instrumented path. A user binding shadowing
		// the name takes the normal lookup route.
		if callee.Name == "declassify" || callee.Name == "endorse" {
			if shadow, defined := env.lookup(callee.Name); !defined || shadow == nil {
				if len(args) > 0 && args[0] != nil {
					a.markValue(args[0], x)
					return args[0]
				}
				return newAval("prim")
			}
		}
		fnVal, _ = env.lookup(callee.Name)
	case *ast.MemberExpr:
		// computed: foo[x](y) — sound over-approximation: invoke every
		// function-typed property of foo (§4.5)
		obj := a.eval(callee.Object, env)
		a.eval(callee.Index, env)
		out := newAval("obj")
		if obj != nil {
			for _, pv := range obj.props {
				if pv.typ == "fn" {
					out.addTaint(a.invokeUser(pv, args, obj))
				}
			}
			out.addTaint(obj)
		}
		for _, ag := range args {
			out.addTaint(ag)
		}
		a.markValue(out, x)
		return out
	default:
		fnVal = a.eval(x.Callee, env)
	}
	if fnVal != nil && (fnVal.typ == "fn" || fnVal.typ == "fn-resolve") {
		out := a.invokeUser(fnVal, args, nil)
		a.markValue(out, x)
		return out
	}
	if fnVal != nil && strings.HasPrefix(fnVal.typ, "modfn:") {
		if out, handled := a.modfnCall(fnVal.typ[6:], args, x); handled {
			a.markValue(out, x)
			return out
		}
	}
	out := newAval("obj")
	for _, ag := range args {
		out.addTaint(ag)
	}
	a.markValue(out, x)
	return out
}

func (a *analyzer) evalRequire(x *ast.CallExpr, env *aenv) *aval {
	if len(x.Args) == 0 {
		return unknownVal
	}
	lit, ok := x.Args[0].(*ast.StringLit)
	if !ok {
		return unknownVal
	}
	name := lit.Value
	// local file require: analyze the file once, return its exports
	if strings.HasPrefix(name, "./") || strings.HasPrefix(name, "../") {
		fname := strings.TrimPrefix(name, "./")
		if !strings.HasSuffix(fname, ".js") {
			fname += ".js"
		}
		if exp, ok := a.exports[fname]; ok {
			return exp
		}
		if f, ok := a.files[fname]; ok {
			// pre-seed to break require cycles
			exp := newAval("obj")
			a.exports[fname] = exp
			prev := a.curFile
			a.curFile = fname
			fenv := newAenv(nil)
			a.seedGlobals(fenv)
			moduleExports := exp
			moduleObj := newAval("obj")
			moduleObj.setProp("exports", moduleExports)
			fenv.define("module", moduleObj)
			fenv.define("exports", moduleExports)
			a.execStmts(f.Prog.Body, fenv)
			a.curFile = prev
			if final := moduleObj.prop("exports"); final != nil {
				a.exports[fname] = final
				return final
			}
			return exp
		}
		return unknownVal
	}
	switch name {
	case "fs", "net", "http", "https", "mqtt", "nodemailer", "sqlite3", "child_process":
		if name == "https" {
			name = "http"
		}
		return newAval("module:" + name)
	case "express":
		return newAval("modfn:express.factory")
	case "events":
		m := newAval("module:events")
		return m
	}
	return newAval("obj")
}

// modfnCall matches direct module-function calls: fs.readFile, fs.writeFile,
// child_process.exec, express(), ...
func (a *analyzer) modfnCall(name string, args []*aval, x *ast.CallExpr) (*aval, bool) {
	pos := x.Pos()
	switch name {
	case "fs.createReadStream":
		return newAval("emitter:stream"), true
	case "fs.createWriteStream":
		return newAval("sink:wstream"), true
	case "fs.readFileSync":
		return a.newSource("fs.readFileSync", pos), true
	case "fs.readFile":
		if n := len(args); n > 0 && args[n-1] != nil && args[n-1].typ == "fn" {
			a.register(args[n-1], []*aval{newAval("prim"), a.newSource("fs.readFile(cb)", pos)})
		}
		return unknownVal, true
	case "fs.writeFile", "fs.writeFileSync", "fs.appendFileSync", "fs.appendFile":
		// both the path and data arguments can leak tainted values
		a.recordSink(name, x, args...)
		return unknownVal, true
	case "net.connect", "net.createConnection":
		return newAval("emitter:socket"), true
	case "net.createServer":
		if len(args) > 0 && args[0] != nil && args[0].typ == "fn" {
			a.register(args[0], []*aval{newAval("emitter:socket")})
		}
		return newAval("emitter:server"), true
	case "http.request":
		if len(args) > 1 && args[1] != nil && args[1].typ == "fn" {
			a.register(args[1], []*aval{newAval("emitter:httpres")})
		}
		return newAval("sink:httpreq"), true
	case "http.get":
		if len(args) > 1 && args[1] != nil && args[1].typ == "fn" {
			a.register(args[1], []*aval{newAval("emitter:httpres")})
		}
		return newAval("obj"), true
	case "http.createServer":
		if len(args) > 0 && args[0] != nil && args[0].typ == "fn" {
			a.register(args[0], []*aval{a.newSource("http.server(request)", pos), newAval("sink:expressres")})
		}
		return newAval("emitter:server"), true
	case "mqtt.connect":
		return newAval("emitter:mqtt"), true
	case "nodemailer.createTransport":
		return newAval("sink:transport"), true
	case "child_process.exec", "child_process.execFile":
		if n := len(args); n > 0 && args[n-1] != nil && args[n-1].typ == "fn" {
			a.register(args[n-1], []*aval{newAval("prim"),
				a.newSource("child_process.exec(stdout)", pos),
				a.newSource("child_process.exec(stderr)", pos)})
		}
		return unknownVal, true
	case "express.factory":
		return newAval("emitter:expressapp"), true
	case "sqlite3.verbose":
		return newAval("module:sqlite3"), true
	}
	return nil, false
}

// hostCall matches method calls on typed I/O objects.
func (a *analyzer) hostCall(recv *aval, method string, args []*aval, x *ast.CallExpr) (*aval, bool) {
	if recv == nil {
		return nil, false
	}
	pos := x.Pos()
	typ := recv.typ
	switch {
	case strings.HasPrefix(typ, "modfn:"):
		return a.modfnCall(typ[6:]+"."+method, args, x)
	case strings.HasPrefix(typ, "module:"):
		return a.modfnCall(typ[7:]+"."+method, args, x)
	case strings.HasPrefix(typ, "emitter:"):
		kind := typ[8:]
		switch method {
		case "on", "once", "addListener":
			if len(args) >= 2 && args[1] != nil && args[1].typ == "fn" {
				event := stringArg(x, 0)
				if params, isSource := a.sourceParams(kind, event, pos); isSource {
					a.register(args[1], params)
				}
			}
			return recv, true
		case "write", "end", "send":
			// sockets are bidirectional: writes are sinks
			if kind == "socket" || kind == "stream" {
				if len(args) > 0 {
					a.recordSink("net.socket.write", x, args...)
				}
				return newAval("prim"), true
			}
		case "publish":
			if kind == "mqtt" && len(args) > 1 {
				a.recordSink("mqtt.publish", x, args[1:]...)
				return recv, true
			}
		case "get", "post", "put", "use":
			if kind == "expressapp" {
				if n := len(args); n > 0 && args[n-1] != nil && args[n-1].typ == "fn" {
					a.register(args[n-1], []*aval{a.newSource("express."+method, pos),
						newAval("sink:expressres")})
				}
				return recv, true
			}
		case "listen", "subscribe", "setEncoding":
			return recv, true
		}
	case strings.HasPrefix(typ, "sink:"):
		kind := typ[5:]
		switch {
		case kind == "wstream" && (method == "write" || method == "end"):
			a.recordSink("fs.stream.write", x, args...)
			return newAval("prim"), true
		case kind == "httpreq" && (method == "write" || method == "end"):
			a.recordSink("http.request.write", x, args...)
			return newAval("prim"), true
		case kind == "transport" && method == "sendMail":
			a.recordSink("smtp.sendMail", x, args...)
			// the completion callback is driven with untainted params
			if n := len(args); n > 1 && args[n-1] != nil && args[n-1].typ == "fn" {
				a.register(args[n-1], []*aval{newAval("prim"), newAval("obj")})
			}
			return unknownVal, true
		case kind == "expressres" && (method == "send" || method == "json" || method == "end" || method == "write"):
			a.recordSink("http.response."+method, x, args...)
			return newAval("prim"), true
		case kind == "db" && method == "run":
			if len(args) > 1 {
				a.recordSink("sqlite.run", x, args[1:]...)
			}
			return recv, true
		case kind == "db" && (method == "all" || method == "get" || method == "each"):
			if n := len(args); n > 0 && args[n-1] != nil && args[n-1].typ == "fn" {
				a.register(args[n-1], []*aval{newAval("prim"), a.newSource("sqlite."+method+"(rows)", pos)})
			}
			return recv, true
		}
	case typ == "rednode":
		switch method {
		case "on":
			if len(args) >= 2 && args[1] != nil && args[1].typ == "fn" && stringArg(x, 0) == "input" {
				msg := a.newSource("nodered.input", pos)
				send := newAval("sink:rednodesend")
				done := newAval("fn-opaque")
				a.register(args[1], []*aval{msg, send, done})
			}
			return recv, true
		case "send":
			a.recordSink("nodered.send", x, args...)
			return unknownVal, true
		case "status", "error", "warn", "log":
			return unknownVal, true
		}
	case typ == "sink:rednodesend":
		// send(msg) extracted as a parameter in modern Node-RED style
		if method == "call" || method == "apply" {
			a.recordSink("nodered.send", x, args...)
			return unknownVal, true
		}
	case typ == "rednodes":
		switch method {
		case "createNode":
			// RED.nodes.createNode(this, config): `this` becomes a node
			if len(args) > 0 && args[0] != nil {
				args[0].typ = "rednode"
			}
			return unknownVal, true
		case "registerType":
			// drive the node constructor with this = a fresh node object
			if len(args) > 1 && args[1] != nil && args[1].typ == "fn" {
				nodeThis := newAval("obj")
				a.invokeUser(args[1], []*aval{newAval("obj")}, nodeThis)
			}
			return unknownVal, true
		}
	}
	// a direct call of a rednode-style send parameter: handled in evalCall
	if typ == "sink:rednodesend" {
		a.recordSink("nodered.send", x, args...)
		return unknownVal, true
	}
	return nil, false
}

// sourceParams returns the seeded callback parameters for an event
// registration on an emitter, and whether the event delivers I/O data.
func (a *analyzer) sourceParams(kind, event string, pos ast.Pos) ([]*aval, bool) {
	switch kind {
	case "stream":
		if event == "data" || event == "line" {
			return []*aval{a.newSource("fs.stream.on("+event+")", pos)}, true
		}
	case "socket":
		if event == "data" {
			return []*aval{a.newSource("net.socket.on(data)", pos)}, true
		}
	case "httpres":
		if event == "data" || event == "end" {
			return []*aval{a.newSource("http.response.on("+event+")", pos)}, true
		}
	case "mqtt":
		if event == "message" {
			return []*aval{
				a.newSource("mqtt.on(message,topic)", pos),
				a.newSource("mqtt.on(message,payload)", pos),
			}, true
		}
	case "server":
		if event == "connection" {
			return []*aval{newAval("emitter:socket")}, true
		}
		if event == "request" {
			return []*aval{a.newSource("http.server(request)", pos), newAval("sink:expressres")}, true
		}
	}
	return nil, false
}

// stringArg extracts a literal string argument from the call node.
func stringArg(x *ast.CallExpr, i int) string {
	if i < len(x.Args) {
		if lit, ok := x.Args[i].(*ast.StringLit); ok {
			return lit.Value
		}
	}
	return ""
}

// evalNew handles constructor calls: sqlite3.Database, user classes, and
// Promise (§4.5: the Promise object is the callback's resolved value).
func (a *analyzer) evalNew(x *ast.NewExpr, env *aenv) *aval {
	args := make([]*aval, len(x.Args))
	for i, arg := range x.Args {
		args[i] = a.eval(arg, env)
	}
	// new sqlite3.Database(path)
	if mem, ok := x.Callee.(*ast.MemberExpr); ok && !mem.Computed {
		obj := a.eval(mem.Object, env)
		if obj != nil && obj.typ == "module:sqlite3" && mem.Property == "Database" {
			return newAval("sink:db")
		}
		if obj != nil && obj.typ == "module:events" && mem.Property == "EventEmitter" {
			return newAval("obj")
		}
	}
	if id, ok := x.Callee.(*ast.Ident); ok {
		if id.Name == "Promise" && len(args) > 0 && args[0] != nil && args[0].typ == "fn" {
			// run the executor; resolve(v) taints the promise
			promise := newAval("obj")
			resolver := newAval("fn-resolve")
			resolver.setProp("$promise", promise)
			a.invokeUser(args[0], []*aval{resolver, resolver}, nil)
			if rv := resolver.prop("$resolved"); rv != nil {
				promise.addTaint(rv)
				promise.setProp("$resolved", rv)
			}
			return promise
		}
		if id.Name == "Error" || id.Name == "TypeError" || id.Name == "RangeError" {
			return newAval("obj")
		}
		// user class or constructor function
		if cls, ok := env.lookup(id.Name); ok && cls != nil && cls.typ == "fn" {
			inst := newAval("obj")
			inst.setProp("$class", cls)
			if ctor := cls.prop("$method:constructor"); ctor != nil {
				a.invokeUser(ctor, args, inst)
			} else if cls.fn != nil {
				a.invokeUser(cls, args, inst)
			}
			// NOTE: methods installed via Cls.prototype.m = ... are not
			// linked here — the prototype-chain gap of §6.1.
			return inst
		}
	}
	out := newAval("obj")
	for _, ag := range args {
		out.addTaint(ag)
	}
	return out
}

// invokeUser inlines a user function with the call-site argument values
// (context-sensitive, type-sensitive interprocedural analysis). Without
// TypeSensitive, arguments degrade to unknown — the ablation of §6.1.
func (a *analyzer) invokeUser(fn *aval, args []*aval, this *aval) *aval {
	if fn == nil || fn.fn == nil {
		// calling a resolve() function captured from a Promise executor
		if fn != nil && fn.typ == "fn-resolve" && len(args) > 0 {
			fn.setProp("$resolved", args[0])
		}
		return unknownVal
	}
	if a.callDepth >= a.opts.MaxCallDepth {
		return unknownVal
	}
	if a.inlining[fn.fn] >= a.opts.MaxInlineDepth {
		return unknownVal
	}
	if !a.opts.TypeSensitive {
		degraded := make([]*aval, len(args))
		for i := range args {
			degraded[i] = unknownVal
		}
		args = degraded
		this = nil
	}
	a.callDepth++
	a.inlining[fn.fn]++
	prevFile := a.curFile
	if fn.fnFile != "" {
		a.curFile = fn.fnFile
	}
	env := newAenv(fn.fnEnv)
	if env.parent == nil {
		env = newAenv(nil)
		a.seedGlobals(env)
	}
	if this != nil {
		env.define("this", this)
	}
	for i, p := range fn.fn.Params {
		switch {
		case p.Rest:
			rest := newAval("obj")
			for _, ag := range args[min(i, len(args)):] {
				rest.addTaint(ag)
			}
			env.define(p.Name, rest)
		case i < len(args) && args[i] != nil:
			env.define(p.Name, args[i])
		default:
			env.define(p.Name, unknownVal)
		}
	}
	var ret *aval
	if fn.fn.ExprRet != nil {
		ret = a.eval(fn.fn.ExprRet, env)
	} else if fn.fn.Body != nil {
		ret = a.execStmts(fn.fn.Body.Body, env)
	}
	a.curFile = prevFile
	a.inlining[fn.fn]--
	a.callDepth--
	if ret == nil {
		return unknownVal
	}
	return ret
}
