// Package taint implements Turnstile's Dataflow Analyzer (§4.2): a fast,
// specialized, context-sensitive static taint analysis for MiniJS IoT
// applications. All POSIX-style I/O interfaces are taint sources and sinks
// ("cast a wide net"), covering the fs, net, http, mqtt, smtp, sqlite and
// child_process modules, Express-style servers, and Node-RED node APIs.
//
// The analyzer evaluates the program abstractly, inlining user function
// calls with their call-site argument types (the type-sensitive
// interprocedural analysis of §6.1 that lets Turnstile find flows the
// baseline misses). It runs directly over the AST — no intermediate
// representation is built, which is why it is an order of magnitude faster
// than the IR-based baseline (§6.1, "Computation Time").
//
// Two limitations are faithful to the paper: dataflow through the
// JavaScript prototype chain is not tracked (the two apps where CodeQL
// outperformed Turnstile), and framework-injected objects such as
// RED.httpNode are not recognized as I/O (the flows both tools miss).
package taint

import (
	"fmt"
	"sort"
	"time"

	"turnstile/internal/ast"
)

// Loc identifies a source-code location.
type Loc struct {
	File string
	Pos  ast.Pos
}

func (l Loc) String() string { return fmt.Sprintf("%s:%s", l.File, l.Pos) }

// Path is one privacy-sensitive dataflow from an I/O source to an I/O sink.
type Path struct {
	Source     Loc
	SourceKind string // "net.socket.on(data)", "fs.readFile(cb)", ...
	Sink       Loc
	SinkKind   string // "smtp.sendMail", "mqtt.publish", ...
	Steps      []int  // node IDs along the flow, in discovery order
}

// Key canonicalizes a path for dedup: one distinct code path per
// (source, sink) endpoint pair. Kinds disambiguate co-located endpoints
// (e.g. the topic and payload parameters of one mqtt.on("message") site).
func (p Path) Key() string {
	return p.SourceKind + "@" + p.Source.String() + "→" + p.SinkKind + "@" + p.Sink.String()
}

// File is one source file of an application.
type File struct {
	Name string
	Prog *ast.Program
}

// Options tunes the analysis.
type Options struct {
	// TypeSensitive enables propagation of inferred types and taints
	// through user-function call boundaries (§6.1). Disabling it is the
	// ablation that degrades Turnstile to baseline-like coverage.
	TypeSensitive bool
	// ImplicitFlows extends the analysis with control-dependence taint
	// (the §8 future-work extension): values assigned under a branch whose
	// condition is tainted become tainted, so the implicit-flow
	// instrumentation knows which sinks to guard.
	ImplicitFlows bool
	// MaxInlineDepth bounds context-sensitive inlining per function.
	MaxInlineDepth int
	// MaxCallDepth bounds the total abstract call stack.
	MaxCallDepth int
}

// DefaultOptions returns the configuration used in the evaluation.
func DefaultOptions() Options {
	return Options{TypeSensitive: true, MaxInlineDepth: 2, MaxCallDepth: 48}
}

// Result is the analyzer's output.
type Result struct {
	Paths   []Path
	Sources []Loc
	Sinks   []Loc
	// Selection is the set of AST node IDs participating in any
	// privacy-sensitive flow; it drives selective instrumentation.
	Selection map[string]map[int]bool // file → node IDs
	Duration  time.Duration
}

// SelectionFor returns the node selection for one file.
func (r *Result) SelectionFor(file string) map[int]bool {
	if s, ok := r.Selection[file]; ok {
		return s
	}
	return map[int]bool{}
}

// Analyze runs the dataflow analysis over an application's files.
func Analyze(files []File, opts Options) *Result {
	start := time.Now()
	if opts.MaxInlineDepth == 0 {
		opts.MaxInlineDepth = 2
	}
	if opts.MaxCallDepth == 0 {
		opts.MaxCallDepth = 48
	}
	a := &analyzer{
		opts:      opts,
		files:     make(map[string]*File),
		selection: make(map[string]map[int]bool),
		seenPaths: make(map[string]bool),
		exports:   make(map[string]*aval),
		inlining:  make(map[*ast.FuncLit]int),
	}
	for i := range files {
		a.files[files[i].Name] = &files[i]
	}
	for i := range files {
		a.analyzeFile(&files[i])
	}
	res := &Result{
		Paths:     a.paths,
		Selection: a.selection,
		Duration:  time.Since(start),
	}
	res.Sources, res.Sinks = a.endpoints()
	sort.Slice(res.Paths, func(i, j int) bool { return res.Paths[i].Key() < res.Paths[j].Key() })
	return res
}

// ---------------------------------------------------------------------------
// Abstract values

// sourceInfo describes one taint source occurrence.
type sourceInfo struct {
	loc  Loc
	kind string
}

// aval is an abstract value: an inferred type tag, the set of taint sources
// it derives from, and (for functions/objects) structure.
type aval struct {
	typ    string // see the "type tags" comment below
	fn     *ast.FuncLit
	fnEnv  *aenv
	fnFile string
	props  map[string]*aval
	taints map[*sourceInfo]bool
	steps  []int // node IDs this value has flowed through (bounded)
}

// Type tags:
//
//	module:<name>    a required host module
//	modfn:<m>.<f>    a function property of a host module
//	emitter:<kind>   an event-emitting I/O object (stream, socket, mqtt,
//	                 httpres, rednode, expressapp, server)
//	sink:<kind>      a write-only I/O object (wstream, httpreq, transport,
//	                 db, expressres)
//	fn               a user function value
//	obj              a plain object
//	unknown          anything else
const maxSteps = 48

func newAval(typ string) *aval { return &aval{typ: typ} }

var unknownVal = &aval{typ: "unknown"}

func (v *aval) tainted() bool { return v != nil && len(v.taints) > 0 }

func (v *aval) clone() *aval {
	if v == nil {
		// a fresh value, not the shared singleton: callers mutate clones
		return newAval("unknown")
	}
	c := *v
	if v.taints != nil {
		c.taints = make(map[*sourceInfo]bool, len(v.taints))
		for k := range v.taints {
			c.taints[k] = true
		}
	}
	c.steps = append([]int(nil), v.steps...)
	return &c
}

// addTaint merges the taints (and flow steps) of src into v. The shared
// unknownVal singleton is never mutated: writing taints into it would leak
// them into every later analysis (and race when analyses run on multiple
// goroutines, e.g. `x.push(tainted)` on an unresolvable receiver).
func (v *aval) addTaint(src *aval) {
	if v == unknownVal || src == nil || len(src.taints) == 0 {
		return
	}
	if v.taints == nil {
		v.taints = make(map[*sourceInfo]bool, len(src.taints))
	}
	for s := range src.taints {
		v.taints[s] = true
	}
	for _, n := range src.steps {
		if len(v.steps) >= maxSteps {
			break
		}
		v.steps = append(v.steps, n)
	}
}

func (v *aval) prop(name string) *aval {
	if v == nil || v.props == nil {
		return nil
	}
	return v.props[name]
}

func (v *aval) setProp(name string, pv *aval) {
	if v == unknownVal {
		// see addTaint: the singleton must stay immutable
		return
	}
	if v.props == nil {
		v.props = make(map[string]*aval)
	}
	v.props[name] = pv
}

// ---------------------------------------------------------------------------
// Abstract environment

type aenv struct {
	vars   map[string]*aval
	parent *aenv
}

func newAenv(parent *aenv) *aenv {
	return &aenv{vars: make(map[string]*aval), parent: parent}
}

func (e *aenv) define(name string, v *aval) { e.vars[name] = v }

func (e *aenv) lookup(name string) (*aval, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *aenv) assign(name string, v *aval) {
	for cur := e; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// ---------------------------------------------------------------------------
// Analyzer

type analyzer struct {
	opts      Options
	files     map[string]*File
	paths     []Path
	seenPaths map[string]bool
	selection map[string]map[int]bool
	exports   map[string]*aval // local-require cache
	sources   []sourceInfo
	sinks     map[string]Loc // sinkKey → loc

	curFile   string
	callDepth int
	inlining  map[*ast.FuncLit]int
	// pcTaints is the control-dependence stack (ImplicitFlows only).
	pcTaints []*aval

	// deferred callbacks registered on emitters that have not fired yet
	pendingCBs []pendingCB
}

type pendingCB struct {
	fn     *aval
	params []*aval
}

// register analyzes an event/completion callback immediately (so values it
// resolves — e.g. a Promise executor's resolve() — are visible to code that
// runs right after) and defers a second pass to cover sinks that are only
// defined later in the program. Path dedup makes the re-analysis idempotent.
func (a *analyzer) register(fn *aval, params []*aval) {
	a.invokeUser(fn, params, nil)
	a.pendingCBs = append(a.pendingCBs, pendingCB{fn: fn, params: params})
}

func (a *analyzer) analyzeFile(f *File) {
	prev := a.curFile
	a.curFile = f.Name
	env := newAenv(nil)
	a.seedGlobals(env)
	moduleExports := newAval("obj")
	moduleObj := newAval("obj")
	moduleObj.setProp("exports", moduleExports)
	env.define("module", moduleObj)
	env.define("exports", moduleExports)
	a.execStmts(f.Prog.Body, env)
	a.driveFramework(env, moduleObj)
	a.flushPending()
	a.curFile = prev
}

func (a *analyzer) seedGlobals(env *aenv) {
	proc := newAval("obj")
	stdin := newAval("emitter:stream")
	proc.setProp("stdin", stdin)
	stdout := newAval("sink:wstream")
	proc.setProp("stdout", stdout)
	proc.setProp("env", newAval("obj"))
	env.define("process", proc)
	env.define("console", newAval("obj"))
	env.define("JSON", newAval("obj"))
	env.define("Math", newAval("obj"))
	env.define("Object", newAval("obj"))
	env.define("Array", newAval("obj"))
	env.define("Promise", newAval("obj"))
	env.define("RED", a.redAPI())
}

// redAPI models the Node-RED runtime object. RED.httpNode is deliberately
// typed "unknown": the paper observes that it is assigned dynamically by
// the runtime and cannot be statically inferred to be an HTTP server, so
// flows through it are missed (§6.1).
func (a *analyzer) redAPI() *aval {
	red := newAval("obj")
	nodes := newAval("rednodes")
	red.setProp("nodes", nodes)
	red.setProp("httpNode", newAval("unknown"))
	red.setProp("httpAdmin", newAval("unknown"))
	red.setProp("util", newAval("obj"))
	return red
}

// mark records a node as participating in a sensitive flow.
func (a *analyzer) mark(id int) {
	sel := a.selection[a.curFile]
	if sel == nil {
		sel = make(map[int]bool)
		a.selection[a.curFile] = sel
	}
	sel[id] = true
}

// markValue records a node on a tainted value's flow and in the selection.
func (a *analyzer) markValue(v *aval, n ast.Node) {
	if v == nil || !v.tainted() {
		return
	}
	id := n.NodeID()
	a.mark(id)
	if len(v.steps) < maxSteps {
		v.steps = append(v.steps, id)
	}
}

func (a *analyzer) newSource(kind string, pos ast.Pos) *aval {
	si := &sourceInfo{loc: Loc{File: a.curFile, Pos: pos}, kind: kind}
	a.sources = append(a.sources, *si)
	v := newAval("obj")
	v.taints = map[*sourceInfo]bool{si: true}
	return v
}

// recordSink registers a sink site and emits paths for each taint source
// reaching it. The sink call node joins the selection whenever tainted
// data reaches it, so selective instrumentation wraps the call in a
// τ.invoke check.
func (a *analyzer) recordSink(kind string, n ast.Node, data ...*aval) {
	pos := n.Pos()
	loc := Loc{File: a.curFile, Pos: pos}
	if a.sinks == nil {
		a.sinks = make(map[string]Loc)
	}
	a.sinks[kind+"@"+loc.String()] = loc
	for _, d := range data {
		if d == nil || !d.tainted() {
			continue
		}
		a.mark(n.NodeID())
		if len(d.steps) < maxSteps {
			d.steps = append(d.steps, n.NodeID())
		}
		for si := range d.taints {
			p := Path{
				Source:     si.loc,
				SourceKind: si.kind,
				Sink:       loc,
				SinkKind:   kind,
				Steps:      append([]int(nil), d.steps...),
			}
			if !a.seenPaths[p.Key()] {
				a.seenPaths[p.Key()] = true
				a.paths = append(a.paths, p)
			}
		}
	}
}

func (a *analyzer) endpoints() (sources, sinks []Loc) {
	seen := map[string]bool{}
	for _, s := range a.sources {
		if !seen[s.loc.String()] {
			seen[s.loc.String()] = true
			sources = append(sources, s.loc)
		}
	}
	for _, loc := range a.sinks {
		sinks = append(sinks, loc)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].String() < sources[j].String() })
	sort.Slice(sinks, func(i, j int) bool { return sinks[i].String() < sinks[j].String() })
	return sources, sinks
}

// driveFramework simulates framework entry points after top-level
// evaluation: module.exports = function(RED) {...} and Node-RED
// registerType constructors.
func (a *analyzer) driveFramework(env *aenv, moduleObj *aval) {
	exports := moduleObj.prop("exports")
	if exports != nil && exports.typ == "fn" && exports.fn != nil {
		a.invokeUser(exports, []*aval{a.redAPI()}, nil)
	}
}

// flushPending fires callbacks registered on emitters with their seeded
// parameter types (event-handler bodies are analyzed as if an event
// arrived).
func (a *analyzer) flushPending() {
	for i := 0; i < len(a.pendingCBs); i++ {
		cb := a.pendingCBs[i]
		a.invokeUser(cb.fn, cb.params, nil)
	}
	a.pendingCBs = nil
}

// ---------------------------------------------------------------------------
// Abstract execution

func (a *analyzer) execStmts(stmts []ast.Stmt, env *aenv) *aval {
	// hoist function declarations
	for _, s := range stmts {
		if fd, ok := s.(*ast.FuncDecl); ok {
			fv := newAval("fn")
			fv.fn = fd.Fn
			fv.fnEnv = env
			fv.fnFile = a.curFile
			env.define(fd.Name, fv)
		}
	}
	var ret *aval
	for _, s := range stmts {
		if r := a.execStmt(s, env); r != nil {
			if ret == nil {
				ret = r.clone()
			} else {
				ret.addTaint(r)
			}
		}
	}
	return ret
}

// execStmt returns a non-nil aval when the statement (or a nested branch)
// returns a value.
func (a *analyzer) execStmt(s ast.Stmt, env *aenv) *aval {
	switch x := s.(type) {
	case *ast.VarDecl:
		for _, d := range x.Decls {
			var v *aval = unknownVal
			if d.Init != nil {
				v = a.eval(d.Init, env)
			}
			env.define(d.Name, v)
		}
	case *ast.FuncDecl:
		// hoisted
	case *ast.ExprStmt:
		a.eval(x.X, env)
	case *ast.ReturnStmt:
		if x.Value != nil {
			return a.eval(x.Value, env)
		}
		return unknownVal
	case *ast.IfStmt:
		cond := a.eval(x.Cond, env)
		pop := a.pushPC(cond)
		r1 := a.execStmt(x.Then, newAenv(env))
		var r2 *aval
		if x.Else != nil {
			r2 = a.execStmt(x.Else, newAenv(env))
		}
		pop()
		return mergeReturns(r1, r2)
	case *ast.BlockStmt:
		return a.execStmts(x.Body, newAenv(env))
	case *ast.ForStmt:
		loopEnv := newAenv(env)
		if x.Init != nil {
			a.execStmt(x.Init, loopEnv)
		}
		if x.Cond != nil {
			a.eval(x.Cond, loopEnv)
		}
		if x.Post != nil {
			a.eval(x.Post, loopEnv)
		}
		return a.execStmt(x.Body, newAenv(loopEnv))
	case *ast.ForInStmt:
		obj := a.eval(x.Object, env)
		iterEnv := newAenv(env)
		item := newAval("obj")
		item.addTaint(obj)
		// for-of over a tainted collection taints the loop variable; the
		// element type inherits element structure when known
		if elem := obj.prop("$elem"); elem != nil {
			item = elem.clone()
			item.addTaint(obj)
		}
		a.markValue(item, x)
		if x.Decl {
			iterEnv.define(x.Name, item)
		} else {
			iterEnv.assign(x.Name, item)
		}
		return a.execStmt(x.Body, iterEnv)
	case *ast.WhileStmt:
		cond := a.eval(x.Cond, env)
		pop := a.pushPC(cond)
		r := a.execStmt(x.Body, newAenv(env))
		pop()
		return r
	case *ast.DoWhileStmt:
		cond := a.eval(x.Cond, env)
		pop := a.pushPC(cond)
		r := a.execStmt(x.Body, newAenv(env))
		pop()
		return r
	case *ast.ThrowStmt:
		a.eval(x.Value, env)
	case *ast.TryStmt:
		r1 := a.execStmts(x.Body.Body, newAenv(env))
		var r2, r3 *aval
		if x.Catch != nil {
			catchEnv := newAenv(env)
			if x.CatchVar != "" {
				catchEnv.define(x.CatchVar, unknownVal)
			}
			r2 = a.execStmts(x.Catch.Body, catchEnv)
		}
		if x.Finally != nil {
			r3 = a.execStmts(x.Finally.Body, newAenv(env))
		}
		return mergeReturns(mergeReturns(r1, r2), r3)
	case *ast.SwitchStmt:
		a.eval(x.Disc, env)
		var r *aval
		for _, c := range x.Cases {
			if c.Test != nil {
				a.eval(c.Test, env)
			}
			r = mergeReturns(r, a.execStmts(c.Body, newAenv(env)))
		}
		return r
	case *ast.ClassDecl:
		cls := newAval("fn")
		cls.props = map[string]*aval{}
		for _, m := range x.Methods {
			mv := newAval("fn")
			mv.fn = m.Fn
			mv.fnEnv = env
			mv.fnFile = a.curFile
			cls.setProp("$method:"+m.Name, mv)
		}
		env.define(x.Name, cls)
	}
	return nil
}

// pushPC enters a control-dependent region (ImplicitFlows only); the
// returned function leaves it.
func (a *analyzer) pushPC(cond *aval) func() {
	if !a.opts.ImplicitFlows || cond == nil || !cond.tainted() {
		return func() {}
	}
	a.pcTaints = append(a.pcTaints, cond)
	return func() { a.pcTaints = a.pcTaints[:len(a.pcTaints)-1] }
}

// applyPC taints a value with the current control dependence.
func (a *analyzer) applyPC(v *aval) {
	for _, pc := range a.pcTaints {
		v.addTaint(pc)
	}
}

func mergeReturns(r1, r2 *aval) *aval {
	if r1 == nil {
		return r2
	}
	if r2 == nil {
		return r1
	}
	out := r1.clone()
	out.addTaint(r2)
	return out
}

func (a *analyzer) eval(e ast.Expr, env *aenv) *aval {
	if e == nil {
		return unknownVal
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := env.lookup(x.Name); ok {
			a.markValue(v, x)
			return v
		}
		return unknownVal
	case *ast.NumberLit, *ast.StringLit, *ast.BoolLit, *ast.NullLit, *ast.UndefinedLit:
		return newAval("prim")
	case *ast.ThisExpr:
		if v, ok := env.lookup("this"); ok {
			return v
		}
		return unknownVal
	case *ast.TemplateLit:
		out := newAval("prim")
		for _, sub := range x.Exprs {
			sv := a.eval(sub, env)
			out.addTaint(sv)
		}
		a.markValue(out, x)
		return out
	case *ast.ArrayLit:
		arr := newAval("obj")
		elem := newAval("obj")
		for _, el := range x.Elems {
			ev := a.eval(el, env)
			arr.addTaint(ev)
			elem.addTaint(ev)
		}
		if elem.tainted() {
			arr.setProp("$elem", elem)
		}
		a.markValue(arr, x)
		return arr
	case *ast.ObjectLit:
		obj := newAval("obj")
		for _, p := range x.Props {
			pv := a.eval(p.Value, env)
			if p.Spread {
				obj.addTaint(pv)
				continue
			}
			key := p.Key
			if p.Computed {
				a.eval(p.KeyExpr, env)
				key = "$computed"
			}
			obj.setProp(key, pv)
			obj.addTaint(pv)
		}
		a.markValue(obj, x)
		return obj
	case *ast.FuncLit:
		fv := newAval("fn")
		fv.fn = x
		fv.fnEnv = env
		fv.fnFile = a.curFile
		return fv
	case *ast.CallExpr:
		return a.evalCall(x, env)
	case *ast.NewExpr:
		return a.evalNew(x, env)
	case *ast.MemberExpr:
		return a.evalMember(x, env)
	case *ast.BinaryExpr:
		l := a.eval(x.Left, env)
		r := a.eval(x.Right, env)
		out := newAval("prim")
		out.addTaint(l)
		out.addTaint(r)
		a.markValue(out, x)
		return out
	case *ast.LogicalExpr:
		l := a.eval(x.Left, env)
		r := a.eval(x.Right, env)
		out := mergeReturns(l, r)
		if out == nil {
			return unknownVal
		}
		return out
	case *ast.UnaryExpr:
		v := a.eval(x.X, env)
		out := newAval("prim")
		out.addTaint(v)
		return out
	case *ast.UpdateExpr:
		a.eval(x.X, env)
		return newAval("prim")
	case *ast.AssignExpr:
		return a.evalAssign(x, env)
	case *ast.CondExpr:
		a.eval(x.Cond, env)
		t := a.eval(x.Then, env)
		f := a.eval(x.Else, env)
		out := mergeReturns(t, f)
		if out == nil {
			return unknownVal
		}
		return out
	case *ast.SeqExpr:
		var last *aval = unknownVal
		for _, sub := range x.Exprs {
			last = a.eval(sub, env)
		}
		return last
	case *ast.SpreadExpr:
		return a.eval(x.X, env)
	case *ast.AwaitExpr:
		// §4.5: await foo is treated as foo
		return a.eval(x.X, env)
	}
	return unknownVal
}

func (a *analyzer) evalAssign(x *ast.AssignExpr, env *aenv) *aval {
	v := a.eval(x.Value, env)
	if len(a.pcTaints) > 0 {
		v = v.clone()
		a.applyPC(v)
	}
	switch t := x.Target.(type) {
	case *ast.Ident:
		if x.Op == "=" {
			env.assign(t.Name, v)
		} else {
			old, _ := env.lookup(t.Name)
			merged := newAval("prim")
			merged.addTaint(old)
			merged.addTaint(v)
			env.assign(t.Name, merged)
			v = merged
		}
		a.markValue(v, x)
	case *ast.MemberExpr:
		obj := a.eval(t.Object, env)
		name := t.Property
		if t.Computed {
			a.eval(t.Index, env)
			name = "$computed"
		}
		// Deliberate gap (§6.1): assignments through .prototype are not
		// modelled, so reflective prototype-chain flows are lost.
		if inner, ok := t.Object.(*ast.MemberExpr); ok && !inner.Computed && inner.Property == "prototype" {
			return v
		}
		if obj != nil && obj != unknownVal {
			obj.setProp(name, v)
			obj.addTaint(v)
			a.markValue(obj, x)
		}
		a.markValue(v, x)
	}
	return v
}

func (a *analyzer) evalMember(x *ast.MemberExpr, env *aenv) *aval {
	obj := a.eval(x.Object, env)
	name := x.Property
	if x.Computed {
		a.eval(x.Index, env)
		// sound over-approximation (§4.5): a computed read of a tainted or
		// structured object returns the merge of all its properties
		if obj != nil && obj.props != nil {
			out := newAval("obj")
			out.addTaint(obj)
			for _, pv := range obj.props {
				out.addTaint(pv)
			}
			a.markValue(out, x)
			return out
		}
		name = "$computed"
	}
	if obj == nil || obj == unknownVal {
		return unknownVal
	}
	// module member: tag it so calls can be recognized
	if len(obj.typ) > 7 && obj.typ[:7] == "module:" {
		return newAval("modfn:" + obj.typ[7:] + "." + name)
	}
	if pv := obj.prop(name); pv != nil {
		out := pv.clone()
		out.addTaint(obj) // container taint reaches its parts
		a.markValue(out, x)
		return out
	}
	// reading an unknown property of a tainted object yields tainted data
	out := newAval("obj")
	out.addTaint(obj)
	a.markValue(out, x)
	return out
}
