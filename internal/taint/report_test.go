package taint

import (
	"strings"
	"testing"

	"turnstile/internal/parser"
)

func TestReportHTML(t *testing.T) {
	src := `const net = require("net");
const sock = net.connect({ host: "cam", port: 1 });
sock.on("data", d => {
  sock.write(d.trim());
});
`
	prog := parser.MustParse("app.js", src)
	files := []File{{Name: "app.js", Prog: prog}}
	res := Analyze(files, DefaultOptions())
	out := ReportHTML(res, files, map[string]string{"app.js": src})
	for _, want := range []string{
		"<!DOCTYPE html>", "1 privacy-sensitive dataflow",
		"net.socket.on(data)", "net.socket.write",
		`class="src"`, `class="snk"`, "app.js",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// HTML-escape check: inject a <script> into the source
	evil := `const x = "<script>alert(1)</script>";`
	prog2 := parser.MustParse("evil.js", evil)
	files2 := []File{{Name: "evil.js", Prog: prog2}}
	res2 := Analyze(files2, DefaultOptions())
	out2 := ReportHTML(res2, files2, map[string]string{"evil.js": evil})
	if strings.Contains(out2, "<script>alert") {
		t.Fatal("unescaped HTML in report")
	}
}

func TestReportHTMLEmpty(t *testing.T) {
	out := ReportHTML(&Result{Selection: map[string]map[int]bool{}}, nil, nil)
	if !strings.Contains(out, "0 privacy-sensitive dataflow") {
		t.Fatal("empty report wrong")
	}
}
