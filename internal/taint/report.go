package taint

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"turnstile/internal/ast"
)

// ReportHTML renders an analysis result as a self-contained HTML page for
// visually inspecting the detected dataflows — the artifact's
// run-turnstile-single.js produces the same kind of page. Source lines on
// privacy-sensitive paths are highlighted; the path table links sources to
// sinks.
func ReportHTML(res *Result, files []File, sources map[string]string) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Turnstile dataflow report</title>
<style>
  body { font-family: ui-monospace, monospace; margin: 2rem; background: #fafafa; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
  table { border-collapse: collapse; margin: 1rem 0; }
  th, td { border: 1px solid #ccc; padding: 0.3rem 0.7rem; text-align: left; }
  th { background: #eee; }
  pre { background: #fff; border: 1px solid #ddd; padding: 0.8rem; line-height: 1.45; }
  .hl { background: #fde68a; }
  .src { color: #166534; font-weight: bold; }
  .snk { color: #991b1b; font-weight: bold; }
  .ln { color: #999; user-select: none; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>Turnstile dataflow report</h1>\n")
	fmt.Fprintf(&b, "<p>%d privacy-sensitive dataflow(s) across %d file(s); analysis took %v.</p>\n",
		len(res.Paths), len(files), res.Duration)

	b.WriteString("<h2>Privacy-sensitive dataflows</h2>\n<table>\n")
	b.WriteString("<tr><th>#</th><th>source</th><th>kind</th><th>sink</th><th>kind</th><th>steps</th></tr>\n")
	for i, p := range res.Paths {
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>\n",
			i+1, html.EscapeString(p.Source.String()), html.EscapeString(p.SourceKind),
			html.EscapeString(p.Sink.String()), html.EscapeString(p.SinkKind), len(p.Steps))
	}
	b.WriteString("</table>\n")

	// per-file annotated source
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		sel := res.SelectionFor(name)
		hlLines := map[int]bool{}
		for _, f := range files {
			if f.Name != name {
				continue
			}
			// mark the line of every selected node
			markSelectedLines(f, sel, hlLines)
		}
		srcLines := map[int]bool{}
		snkLines := map[int]bool{}
		for _, p := range res.Paths {
			if p.Source.File == name {
				srcLines[p.Source.Pos.Line] = true
			}
			if p.Sink.File == name {
				snkLines[p.Sink.Pos.Line] = true
			}
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n<pre>", html.EscapeString(name))
		for i, line := range strings.Split(sources[name], "\n") {
			n := i + 1
			class := ""
			switch {
			case srcLines[n]:
				class = "src"
			case snkLines[n]:
				class = "snk"
			case hlLines[n]:
				class = "hl"
			}
			if class != "" {
				fmt.Fprintf(&b, `<span class="ln">%4d</span> <span class="%s">%s</span>`+"\n",
					n, class, html.EscapeString(line))
			} else {
				fmt.Fprintf(&b, `<span class="ln">%4d</span> %s`+"\n", n, html.EscapeString(line))
			}
		}
		b.WriteString("</pre>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// markSelectedLines records the source lines of every selected AST node.
func markSelectedLines(f File, sel map[int]bool, out map[int]bool) {
	if len(sel) == 0 {
		return
	}
	walkLines(f, func(id, line int) {
		if sel[id] {
			out[line] = true
		}
	})
}

// walkLines visits every node of a file with its (id, line).
func walkLines(f File, visit func(id, line int)) {
	ast.Walk(f.Prog, func(n ast.Node) bool {
		if n.Pos().Valid() {
			visit(n.NodeID(), n.Pos().Line)
		}
		return true
	})
}
