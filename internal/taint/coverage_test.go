package taint

import (
	"testing"

	"turnstile/internal/parser"
)

// Statement- and expression-coverage battery: flows routed through every
// construct the analyzer models.

func TestFlowThroughSwitch(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
const rs = fs.createReadStream("/in");
rs.on("data", d => {
  let out;
  switch (d.length) {
    case 1: out = d; break;
    case 2: out = d + d; break;
    default: out = d.trim();
  }
  ws.write(out);
});
`)
	wantPaths(t, res, 1)
}

func TestFlowThroughTryCatch(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
const rs = fs.createReadStream("/in");
rs.on("data", d => {
  let parsed;
  try {
    parsed = JSON.parse(d);
  } catch (e) {
    parsed = d;
  } finally {
    ws.write(parsed);
  }
});
`)
	wantPaths(t, res, 1)
}

func TestFlowThroughTernaryAndLogical(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
const rs = fs.createReadStream("/in");
rs.on("data", d => {
  const a = d.length > 3 ? d : "short";
  const b = d || "fallback";
  ws.write(a + b);
});
`)
	wantPaths(t, res, 1)
}

func TestFlowThroughWhileAndDoWhile(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
const rs = fs.createReadStream("/in");
rs.on("data", d => {
  let acc = "";
  let i = 0;
  while (i < d.length) { acc += d[i]; i++; }
  do { acc += "!"; } while (acc.length < 3);
  ws.write(acc);
});
`)
	wantPaths(t, res, 1)
}

func TestFlowThroughSpreadAndSeq(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
const rs = fs.createReadStream("/in");
rs.on("data", d => {
  const parts = [...d.split(","), "tail"];
  const merged = { ...{ raw: d }, extra: 1 };
  let tmp = (1, d.length, parts);
  ws.write(merged.raw + tmp.length);
});
`)
	wantPaths(t, res, 1)
}

func TestFlowThroughMemberWrites(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
const rs = fs.createReadStream("/in");
const state = { last: null };
rs.on("data", d => {
  state.last = d;
  state["dynamic" + 1] = d;
  ws.write(state.last);
});
`)
	wantPaths(t, res, 1)
}

func TestThrowAndUpdateDoNotCrash(t *testing.T) {
	analyzeSrc(t, `
const fs = require("fs");
let counter = 0;
function bump() { counter++; --counter; return counter; }
fs.createReadStream("/x").on("data", d => {
  if (bump() > 2) { throw new Error("too many: " + d); }
});
`)
}

func TestTemplateAndUnaryFlow(t *testing.T) {
	res := analyzeSrc(t, "const fs = require(\"fs\");\n"+
		"const ws = fs.createWriteStream(\"/out\");\n"+
		"fs.createReadStream(\"/in\").on(\"data\", d => {\n"+
		"  const neg = -d.length;\n"+
		"  ws.write(`v=${d} n=${neg}`);\n"+
		"});\n")
	wantPaths(t, res, 1)
}

func TestImplicitFlowAnalysis(t *testing.T) {
	src := `
const fs = require("fs");
const ws = fs.createWriteStream("/state");
fs.createReadStream("/in").on("data", d => {
  let state = "closed";
  if (d.length > 3) {
    state = "open";
  }
  ws.write(state);
});
`
	explicit := analyzeOpts(t, src, Options{TypeSensitive: true})
	if len(explicit.Paths) != 0 {
		t.Fatalf("explicit analysis should miss the implicit flow: %+v", explicit.Paths)
	}
	implicit := analyzeOpts(t, src, Options{TypeSensitive: true, ImplicitFlows: true})
	if len(implicit.Paths) != 1 {
		t.Fatalf("implicit analysis should find the flow: %+v", implicit.Paths)
	}
	// the selection covers the branch and the sink
	if len(implicit.SelectionFor("app.js")) <= len(explicit.SelectionFor("app.js")) {
		t.Fatal("implicit selection should be strictly larger")
	}
}

func TestImplicitFlowThroughLoops(t *testing.T) {
	src := `
const fs = require("fs");
const ws = fs.createWriteStream("/count");
fs.createReadStream("/in").on("data", d => {
  let n = 0;
  while (n < d.length) { n = n + 1; }
  let m = 0;
  do { m = m + 1; } while (m < d.length);
  ws.write(n + ":" + m);
});
`
	res := analyzeOpts(t, src, Options{TypeSensitive: true, ImplicitFlows: true})
	wantPaths(t, res, 1)
}

func TestClassStaticsAndInstanceFlow(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
class Router {
  constructor(sink) { this.sink = sink; }
  forward(d) { this.sink.write(d); }
}
const r = new Router(fs.createWriteStream("/routed"));
fs.createReadStream("/in").on("data", d => r.forward(d));
`)
	wantPaths(t, res, 1)
}

func TestEmptySources(t *testing.T) {
	res := Analyze(nil, DefaultOptions())
	if len(res.Paths) != 0 || len(res.Sources) != 0 {
		t.Fatal("empty analysis should be empty")
	}
	if res.SelectionFor("ghost.js") == nil {
		t.Fatal("SelectionFor must return a usable map")
	}
}

func TestLocKeyFormat(t *testing.T) {
	p := Path{
		SourceKind: "s", SinkKind: "k",
		Source: Loc{File: "a.js"}, Sink: Loc{File: "b.js"},
	}
	if p.Key() == "" {
		t.Fatal("empty key")
	}
	p2 := p
	p2.SinkKind = "other"
	if p.Key() == p2.Key() {
		t.Fatal("kinds must disambiguate keys")
	}
}

func TestParseErrorsPropagateThroughAppFiles(t *testing.T) {
	if _, err := parser.Parse("bad.js", "let = ;"); err == nil {
		t.Fatal("sanity: parse should fail")
	}
}

// TestScalesToLargeApplications concatenates the whole corpus into one
// program (~10k lines) and checks the analyzer stays fast — the paper's
// practicality claim (milliseconds, not minutes).
func TestScalesToLargeApplications(t *testing.T) {
	t.Parallel()
	var b []byte
	b = append(b, []byte("const net = require(\"net\");\nconst fs = require(\"fs\");\n")...)
	for _, src := range corpusLikeSources() {
		b = append(b, []byte(src)...)
		b = append(b, '\n')
	}
	prog, err := parser.Parse("mega.js", string(b))
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze([]File{{Name: "mega.js", Prog: prog}}, DefaultOptions())
	if len(res.Paths) < 50 {
		t.Fatalf("mega-app paths = %d", len(res.Paths))
	}
	if res.Duration.Seconds() > 5 {
		t.Fatalf("analysis took %v on the mega-app", res.Duration)
	}
	t.Logf("mega-app: %d lines, %d paths, %v", countLines(string(b)), len(res.Paths), res.Duration)
}

func countLines(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			n++
		}
	}
	return n
}

// corpusLikeSources generates a large body of analyzer input without
// importing the corpus package (which would create an import cycle).
func corpusLikeSources() []string {
	var out []string
	for u := 0; u < 120; u++ {
		out = append(out, unitSrc(u))
	}
	return out
}

func unitSrc(u int) string {
	switch u % 3 {
	case 0:
		return sprintfUnit(`function feedX%d(conn, sink) {
  conn.on("data", d => sink.write(d.trim()));
}
feedX%d(net.connect({ host: "h%d", port: 1 }), fs.createWriteStream("/s%d"));`, u)
	case 1:
		return sprintfUnit(`const rdX%d = fs.createReadStream("/i%d");
const wrX%d = fs.createWriteStream("/o%d");
rdX%d.on("data", c => wrX%d.write(c.toUpperCase()));`, u)
	default:
		return sprintfUnit(`function helperX%d(a, b) {
  let out = a * 2 + b;
  for (let i = 0; i < 4; i++) { out = out + i; }
  return out;
}
const calX%d = helperX%d(%d, 2);`, u)
	}
}

func sprintfUnit(tmpl string, u int) string {
	// fill every %d with u
	out := ""
	for i := 0; i < len(tmpl); i++ {
		if tmpl[i] == '%' && i+1 < len(tmpl) && tmpl[i+1] == 'd' {
			out += itoa(u)
			i++
			continue
		}
		out += string(tmpl[i])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
