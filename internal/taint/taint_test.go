package taint

import (
	"testing"

	"turnstile/internal/parser"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := parser.Parse("app.js", src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze([]File{{Name: "app.js", Prog: prog}}, DefaultOptions())
}

func analyzeOpts(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := parser.Parse("app.js", src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze([]File{{Name: "app.js", Prog: prog}}, opts)
}

func wantPaths(t *testing.T, res *Result, n int) {
	t.Helper()
	if len(res.Paths) != n {
		t.Fatalf("paths = %d, want %d\n%+v", len(res.Paths), n, res.Paths)
	}
}

func TestDirectSocketFlow(t *testing.T) {
	res := analyzeSrc(t, `
const net = require("net");
const socket = net.connect({ host: "cam", port: 554 });
socket.on("data", frame => {
  socket.write(frame);
});
`)
	wantPaths(t, res, 1)
	p := res.Paths[0]
	if p.SourceKind != "net.socket.on(data)" || p.SinkKind != "net.socket.write" {
		t.Fatalf("path = %+v", p)
	}
	if len(res.SelectionFor("app.js")) == 0 {
		t.Fatal("empty selection")
	}
}

func TestFlowThroughTransformations(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const rs = fs.createReadStream("/in");
const ws = fs.createWriteStream("/out");
rs.on("data", chunk => {
  const upper = chunk.toUpperCase();
  const framed = "[" + upper + "]";
  const parts = framed.split(",");
  ws.write(parts.join(";"));
});
`)
	wantPaths(t, res, 1)
	if res.Paths[0].SinkKind != "fs.stream.write" {
		t.Fatalf("path = %+v", res.Paths[0])
	}
	if len(res.Paths[0].Steps) < 3 {
		t.Fatalf("steps = %v", res.Paths[0].Steps)
	}
}

func TestInterproceduralTypedFlow(t *testing.T) {
	// the type-sensitive flow CodeQL misses (§6.1): the source value and
	// the sink object both pass through user-function boundaries.
	res := analyzeSrc(t, `
const net = require("net");
const mqtt = require("mqtt");
function wire(conn, client) {
  conn.on("data", d => forward(client, d));
}
function forward(client, data) {
  client.publish("topic", data);
}
wire(net.connect({ host: "h", port: 1 }), mqtt.connect("mqtt://b"));
`)
	wantPaths(t, res, 1)
	if res.Paths[0].SinkKind != "mqtt.publish" {
		t.Fatalf("path = %+v", res.Paths[0])
	}
}

func TestTypeSensitivityAblation(t *testing.T) {
	src := `
const net = require("net");
const mqtt = require("mqtt");
function wire(conn, client) {
  conn.on("data", d => client.publish("t", d));
}
wire(net.connect({ host: "h", port: 1 }), mqtt.connect("mqtt://b"));
`
	withTypes := analyzeOpts(t, src, Options{TypeSensitive: true})
	without := analyzeOpts(t, src, Options{TypeSensitive: false})
	if len(withTypes.Paths) != 1 {
		t.Fatalf("type-sensitive should find the flow: %+v", withTypes.Paths)
	}
	if len(without.Paths) != 0 {
		t.Fatalf("ablated analysis should miss it: %+v", without.Paths)
	}
}

func TestClosureCapturedFlow(t *testing.T) {
	// dataflow through higher-order functions and closures (§4.5)
	res := analyzeSrc(t, `
const fs = require("fs");
const makeHandler = sink => (data => sink.write(data));
const rs = fs.createReadStream("/in");
const handler = makeHandler(fs.createWriteStream("/out"));
rs.on("data", handler);
`)
	wantPaths(t, res, 1)
}

func TestMultipleSourcesToOneSink(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/merged");
const a = fs.createReadStream("/a");
const b = fs.createReadStream("/b");
a.on("data", d => ws.write(d));
b.on("data", d => ws.write(d));
`)
	wantPaths(t, res, 2)
}

func TestOneSourceToMultipleSinks(t *testing.T) {
	// the Fig. 2a shape: one frame fans out to several services
	res := analyzeSrc(t, `
const net = require("net");
const fs = require("fs");
const nodemailer = require("nodemailer");
const transport = nodemailer.createTransport({});
const socket = net.connect({ host: "cam", port: 554 });
socket.on("data", frame => {
  fs.writeFile("/store/" + frame.id, frame, () => {});
  transport.sendMail({ to: "admin", attachments: [frame] });
});
`)
	wantPaths(t, res, 2)
	kinds := map[string]bool{}
	for _, p := range res.Paths {
		kinds[p.SinkKind] = true
	}
	if !kinds["fs.writeFile"] || !kinds["smtp.sendMail"] {
		t.Fatalf("sinks = %v", kinds)
	}
}

func TestNodeRedInputToSend(t *testing.T) {
	res := analyzeSrc(t, `
module.exports = function(RED) {
  function FilterNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      msg.payload = msg.payload.toUpperCase();
      node.send(msg);
    });
  }
  RED.nodes.registerType("filter", FilterNode);
};
`)
	wantPaths(t, res, 1)
	if res.Paths[0].SourceKind != "nodered.input" || res.Paths[0].SinkKind != "nodered.send" {
		t.Fatalf("path = %+v", res.Paths[0])
	}
}

func TestRedHttpNodeMissed(t *testing.T) {
	// the deliberate miss of §6.1: RED.httpNode is dynamically assigned
	// and cannot be statically typed as an HTTP server.
	res := analyzeSrc(t, `
module.exports = function(RED) {
  RED.httpNode.get("/faces", function(req, res) {
    res.send(req.query);
  });
};
`)
	wantPaths(t, res, 0)
}

func TestPrototypeChainMissed(t *testing.T) {
	// the deliberate prototype-chain gap (§6.1): a handler installed via
	// Foo.prototype is invisible to Turnstile's analysis.
	res := analyzeSrc(t, `
const fs = require("fs");
function Archiver() { this.out = fs.createWriteStream("/arch"); }
Archiver.prototype.store = function(data) { this.out.write(data); };
const arch = new Archiver();
const rs = fs.createReadStream("/in");
rs.on("data", d => arch.store(d));
`)
	wantPaths(t, res, 0)
}

func TestClassMethodFlowFound(t *testing.T) {
	// class declarations (unlike prototype assignment) are analyzed
	res := analyzeSrc(t, `
const fs = require("fs");
class Archiver {
  constructor() { this.out = fs.createWriteStream("/arch"); }
  store(data) { this.out.write(data); }
}
const arch = new Archiver();
const rs = fs.createReadStream("/in");
rs.on("data", d => arch.store(d));
`)
	wantPaths(t, res, 1)
}

func TestPromiseFlow(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
function fetchFrame() {
  return new Promise((resolve, reject) => {
    fs.readFile("/camera/frame", (err, data) => resolve(data));
  });
}
fetchFrame().then(frame => ws.write(frame));
`)
	wantPaths(t, res, 1)
	if res.Paths[0].SourceKind != "fs.readFile(cb)" {
		t.Fatalf("path = %+v", res.Paths[0])
	}
}

func TestAwaitFlow(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const mqtt = require("mqtt");
const client = mqtt.connect("mqtt://b");
async function main() {
  const data = await new Promise(resolve => {
    fs.readFile("/sensor", (e, d) => resolve(d));
  });
  client.publish("out", data);
}
main();
`)
	wantPaths(t, res, 1)
}

func TestExpressFlow(t *testing.T) {
	res := analyzeSrc(t, `
const express = require("express");
const app = express();
app.get("/device/:id", (req, res) => {
  res.json(req.params);
});
`)
	wantPaths(t, res, 1)
	if res.Paths[0].SinkKind != "http.response.json" {
		t.Fatalf("path = %+v", res.Paths[0])
	}
}

func TestHTTPRequestResponseFlow(t *testing.T) {
	res := analyzeSrc(t, `
const http = require("http");
const fs = require("fs");
const req = http.request({ host: "api" }, res => {
  res.on("data", body => fs.writeFileSync("/cache", body));
});
req.end();
`)
	wantPaths(t, res, 1)
}

func TestSqliteFlows(t *testing.T) {
	res := analyzeSrc(t, `
const sqlite3 = require("sqlite3").verbose();
const net = require("net");
const db = new sqlite3.Database("/data.db");
const sock = net.connect({ host: "h", port: 1 });
sock.on("data", reading => {
  db.run("INSERT INTO readings VALUES (?)", [reading]);
});
db.all("SELECT * FROM readings", (err, rows) => {
  sock.write(rows);
});
`)
	wantPaths(t, res, 2)
}

func TestChildProcessSource(t *testing.T) {
	res := analyzeSrc(t, `
const cp = require("child_process");
const fs = require("fs");
cp.exec("sensors", (err, stdout, stderr) => {
  fs.writeFileSync("/log", stdout);
});
`)
	wantPaths(t, res, 1)
}

func TestProcessStdinFlow(t *testing.T) {
	res := analyzeSrc(t, `
process.stdin.on("data", line => {
  process.stdout.write(line);
});
`)
	wantPaths(t, res, 1)
}

func TestMqttMessageFlow(t *testing.T) {
	res := analyzeSrc(t, `
const mqtt = require("mqtt");
const fs = require("fs");
const client = mqtt.connect("mqtt://broker");
client.subscribe("sensors/#");
client.on("message", (topic, payload) => {
  fs.appendFileSync("/log/" + topic, payload);
});
`)
	// both the topic and the payload taint the write
	wantPaths(t, res, 2)
}

func TestNoFalsePositiveOnPureCompute(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const config = { threshold: 10 };
function classify(v) { return v > config.threshold ? "high" : "low"; }
fs.writeFileSync("/out", classify(5));
`)
	wantPaths(t, res, 0)
	if len(res.Sinks) != 1 {
		t.Fatalf("sinks = %v", res.Sinks)
	}
}

func TestArrayAndObjectPropagation(t *testing.T) {
	res := analyzeSrc(t, `
const net = require("net");
const fs = require("fs");
const sock = net.connect({ host: "h", port: 1 });
sock.on("data", frame => {
  const batch = [];
  batch.push({ raw: frame, ts: 1 });
  const payloads = batch.map(item => item.raw);
  fs.writeFileSync("/out", payloads.join(","));
});
`)
	wantPaths(t, res, 1)
}

func TestTemplateLiteralPropagation(t *testing.T) {
	res := analyzeSrc(t, "const net = require(\"net\");\n"+
		"const s = net.connect({ host: \"h\", port: 1 });\n"+
		"s.on(\"data\", d => {\n  s.write(`frame=${d}`);\n});\n")
	wantPaths(t, res, 1)
}

func TestDedupSameSourceSinkPair(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
const rs = fs.createReadStream("/in");
rs.on("data", d => {
  ws.write(d);
  if (d.length > 10) { ws.write(d); }
});
`)
	// two write call sites → two distinct paths; re-analysis of the same
	// site must not duplicate
	wantPaths(t, res, 2)
}

func TestLocalRequire(t *testing.T) {
	mainSrc := `
const helper = require("./pipeline");
const net = require("net");
const sock = net.connect({ host: "h", port: 1 });
sock.on("data", d => helper.process(d, sock));
`
	helperSrc := `
module.exports = {
  process: function(data, out) { out.write(data); }
};
`
	mainProg := parser.MustParse("main.js", mainSrc)
	helperProg := parser.MustParse("pipeline.js", helperSrc)
	res := Analyze([]File{
		{Name: "main.js", Prog: mainProg},
		{Name: "pipeline.js", Prog: helperProg},
	}, DefaultOptions())
	if len(res.Paths) == 0 {
		t.Fatalf("cross-file flow missed: %+v", res)
	}
	if res.Paths[0].Sink.File != "pipeline.js" {
		t.Fatalf("sink should be in helper file: %+v", res.Paths[0])
	}
}

func TestSelectionCoversFlowNodes(t *testing.T) {
	src := `
const net = require("net");
const socket = net.connect({ host: "cam", port: 554 });
socket.on("data", frame => {
  const enriched = frame + "!";
  socket.write(enriched);
});
const untouched = 1 + 2;
`
	res := analyzeSrc(t, src)
	sel := res.SelectionFor("app.js")
	if len(sel) < 4 {
		t.Fatalf("selection too small: %v", sel)
	}
	// analysis is fast (sub-millisecond for this app — the paper reports
	// 325 ms average on real apps with a full corpus)
	if res.Duration <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestRecursionTerminates(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
function loop(x) { return loop(x); }
const rs = fs.createReadStream("/in");
rs.on("data", d => loop(d));
fs.writeFileSync("/out", loop(1));
`)
	wantPaths(t, res, 0)
}

func TestMutualRecursionTerminates(t *testing.T) {
	analyzeSrc(t, `
function a(x) { return b(x); }
function b(x) { return a(x); }
a(1);
`)
}

func TestComputedCallOverApproximation(t *testing.T) {
	// foo[x](y): all function properties of foo are considered (§4.5)
	res := analyzeSrc(t, `
const fs = require("fs");
const ws = fs.createWriteStream("/out");
const handlers = {
  archive: function(d) { ws.write(d); },
  drop: function(d) { return null; }
};
const rs = fs.createReadStream("/in");
rs.on("data", d => {
  handlers[pick()](d);
});
function pick() { return "archive"; }
`)
	wantPaths(t, res, 1)
}
