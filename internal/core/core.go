// Package core wires Turnstile's components into the end-to-end workflow
// of Fig. 3: the Dataflow Analyzer identifies privacy-sensitive code paths,
// the Code Instrumentor injects DIF Tracker calls along them, and the
// resulting privacy-managed application runs on the same runtime as the
// original with the inlined tracker enforcing the IFC policy.
package core

import (
	"fmt"
	"sort"

	"turnstile/internal/ast"

	"turnstile/internal/dift"
	"turnstile/internal/faults"
	"turnstile/internal/guard"
	"turnstile/internal/instrument"
	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
	"turnstile/internal/resolve"
	"turnstile/internal/taint"
	"turnstile/internal/telemetry"
	"turnstile/internal/vm"
)

// Options configures the pipeline.
type Options struct {
	// Mode selects selective (default) or exhaustive instrumentation.
	Mode instrument.Mode
	// Enforce blocks violating flows (true) or audits them (false).
	Enforce bool
	// Analyzer tunes the static analysis.
	Analyzer taint.Options
	// ImplicitFlows enables the experimental control-dependence tracking
	// of §8: the analyzer propagates taint across branches, the
	// instrumentor wraps conditionals in pc scopes, and the tracker labels
	// values written under secret control.
	ImplicitFlows bool
	// Metrics, when non-nil, is attached to the runtime and tracker before
	// deployment, so load-time tracker activity is counted too.
	Metrics *telemetry.Metrics
	// TraceCapacity > 0 attaches a structured event tracer (a ring buffer
	// of that many events, timestamped on the virtual clock) exposed as
	// ManagedApp.Tracer.
	TraceCapacity int
	// Guard, when non-nil, installs a resource guard with these limits on
	// the deployed runtime (fuel, call depth, allocation units, virtual
	// deadline). Budget trips surface as typed *guard.BudgetError.
	Guard *guard.Limits
	// FailClosed puts the tracker in fail-closed mode: any internal
	// inconsistency or guard trip poisons it and every subsequent sink
	// check (and sink write) is denied with reason "degraded".
	FailClosed bool
	// Faults, when non-nil, installs the deterministic fault injector on
	// the runtime before deployment, so load-time host operations are
	// subject to the schedule too.
	Faults *faults.Schedule
	// NoResolve skips the static scope-resolution pass on the deployed
	// programs and disables the interpreter's slot/inline-cache fast
	// paths, restoring the pure map-walk execution for A/B comparison.
	NoResolve bool
	// NoVM disables the bytecode VM on the deployed runtime, keeping the
	// tree-walking evaluator (the differential oracle) as the execution
	// engine. Implied by NoResolve — the VM builds on resolved programs.
	NoVM bool
	// ArtifactCache, when non-nil, serves instrumented programs from the
	// content-addressed compiled-bytecode cache: N deployments of the same
	// instrumented source (e.g. serve tenants of one app) share one
	// re-parse + resolve + compile. Ignored under NoResolve/NoVM, whose
	// execution modes never touch compiled artifacts.
	ArtifactCache *vm.Cache
}

// DefaultOptions returns the paper's configuration: selective
// instrumentation with enforcement on.
func DefaultOptions() Options {
	return Options{Mode: instrument.Selective, Enforce: true, Analyzer: taint.DefaultOptions()}
}

// ManagedApp is a deployed privacy-managed application: the instrumented
// code running with its inlined DIF Tracker.
type ManagedApp struct {
	IP      *interp.Interp
	Tracker *dift.Tracker
	Policy  *policy.Policy
	// Analysis is the static dataflow analysis that drove selection.
	Analysis *taint.Result
	// Instrumented maps file name → privacy-managed source.
	Instrumented map[string]string
	// Results per file from the instrumentor.
	Results map[string]*instrument.Result
	// Tracer is the structured event tracer (nil unless
	// Options.TraceCapacity was set).
	Tracer *telemetry.Tracer
	// Guard is the installed resource guard (nil unless Options.Guard was
	// set); inspect Guard.Tripped() after a run.
	Guard *guard.Guard
}

// Analyze runs only the Dataflow Analyzer over named sources.
func Analyze(sources map[string]string, opts taint.Options) (*taint.Result, error) {
	files, err := parseAll(sources)
	if err != nil {
		return nil, err
	}
	return taint.Analyze(files, opts), nil
}

// Manage runs the full workflow: analyze, instrument, deploy. The policy
// document is the developer-written IFC policy (Figs. 4 and 7); its label
// functions are MiniJS sources compiled against the managed runtime.
func Manage(sources map[string]string, policyJSON string, opts Options) (*ManagedApp, error) {
	files, err := parseAll(sources)
	if err != nil {
		return nil, err
	}
	if opts.ImplicitFlows {
		opts.Analyzer.ImplicitFlows = true
	}
	var analysis *taint.Result
	if err := guard.Contain("analyze", "", func() error {
		analysis = taint.Analyze(files, opts.Analyzer)
		return nil
	}); err != nil {
		return nil, err
	}

	ip := interp.New()
	ip.NoResolve = opts.NoResolve
	ip.NoVM = opts.NoVM
	if opts.Faults != nil {
		ip.InstallFaults(opts.Faults)
	}
	var tracer *telemetry.Tracer
	if opts.TraceCapacity > 0 {
		tracer = telemetry.NewTracer(opts.TraceCapacity, ip.Clock.Now)
	}
	if opts.Metrics != nil || tracer != nil {
		ip.EnableTelemetry(opts.Metrics, tracer)
	}
	pol, err := policy.ParseJSON([]byte(policyJSON), ip.CompileLabelFunc)
	if err != nil {
		return nil, err
	}

	app := &ManagedApp{
		IP:           ip,
		Policy:       pol,
		Analysis:     analysis,
		Instrumented: make(map[string]string, len(files)),
		Results:      make(map[string]*instrument.Result, len(files)),
		Tracer:       tracer,
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = opts.Enforce
	tr.FailClosed = opts.FailClosed
	if opts.ImplicitFlows {
		tr.EnableImplicit()
	}
	app.Tracker = tr
	if opts.Guard != nil {
		g := guard.New(*opts.Guard)
		g.SetMetrics(opts.Metrics)
		ip.SetGuard(g) // binds the deadline to ip.Clock and wires fail-closed poisoning
		app.Guard = g
	}

	// instrument every file before deployment; each stage is contained so
	// a panic on one adversarial input surfaces as a typed *PipelineError
	// instead of taking down the caller (e.g. a harness worker)
	managed := make(map[string]*ast.Program, len(files))
	for _, f := range files {
		var res *instrument.Result
		if err := guard.Contain("instrument", f.Name, func() error {
			r, err := instrument.Instrument(f.Prog, instrument.Options{
				Mode:          opts.Mode,
				Selection:     instrument.Selection(analysis.SelectionFor(f.Name)),
				Injections:    pol.Injections,
				File:          f.Name,
				ImplicitFlows: opts.ImplicitFlows,
			})
			res = r
			return err
		}); err != nil {
			return nil, fmt.Errorf("core: instrumenting %s: %w", f.Name, err)
		}
		src, err := printer.SafePrint(res.Program)
		if err != nil {
			return nil, fmt.Errorf("core: printing instrumented %s: %w", f.Name, err)
		}
		app.Instrumented[f.Name] = src
		app.Results[f.Name] = res
		build := func() (*ast.Program, error) {
			prog, err := parser.Parse(f.Name, src)
			if err != nil {
				return nil, fmt.Errorf("core: instrumented %s does not re-parse: %w", f.Name, err)
			}
			if !opts.NoResolve {
				// resolution must run on the re-parsed program: annotations do
				// not survive printing
				r := resolve.Resolve(prog)
				if opts.Metrics != nil {
					opts.Metrics.Add(telemetry.CtrResolveScopes, int64(r.Scopes))
					opts.Metrics.Add(telemetry.CtrResolveSlots, int64(r.Slots))
					opts.Metrics.Add(telemetry.CtrResolveResolved, int64(r.Resolved))
					opts.Metrics.Add(telemetry.CtrResolveDynamic, int64(r.Dynamic))
				}
			}
			return prog, nil
		}
		if opts.ArtifactCache != nil && !opts.NoResolve && !opts.NoVM {
			prog, mod, err := opts.ArtifactCache.Load(f.Name, src, build)
			if err != nil {
				return nil, err
			}
			ip.RegisterCode(prog, mod)
			managed[f.Name] = prog
		} else {
			prog, err := build()
			if err != nil {
				return nil, err
			}
			managed[f.Name] = prog
		}
	}

	// deploy with local-require support: each file is a module; requiring
	// "./x" loads the instrumented x.js on demand, with cycle protection
	loading := make(map[string]bool)
	exports := make(map[string]interp.Value)
	ip.SetLocalLoader(func(name string) (interp.Value, bool, error) {
		prog, ok := managed[name]
		if !ok {
			return nil, false, nil
		}
		if exp, done := exports[name]; done {
			return exp, true, nil
		}
		if loading[name] {
			return nil, false, fmt.Errorf("core: require cycle through %s", name)
		}
		loading[name] = true
		defer func() { loading[name] = false }()
		exp, err := ip.RunModule(prog)
		if err != nil {
			return nil, false, fmt.Errorf("core: loading %s: %w", name, err)
		}
		exports[name] = exp
		return exp, true, nil
	})
	for _, f := range files {
		if _, done := exports[f.Name]; done {
			continue
		}
		if err := guard.Contain("deploy", f.Name, func() error {
			_, _, err := mustLoad(ip, f.Name)
			return err
		}); err != nil {
			return nil, err
		}
	}
	return app, nil
}

// mustLoad drives the local loader for a deployment entry file.
func mustLoad(ip *interp.Interp, name string) (interp.Value, bool, error) {
	loaderRun := func() (interp.Value, error) {
		// route through require so caching and cycle detection apply
		reqV, _ := ip.Globals.Lookup("require")
		return ip.CallFunction(reqV, interp.Undefined{}, []interp.Value{"./" + name}, ast.Pos{})
	}
	v, err := loaderRun()
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Emit injects an event into one of the application's I/O sources (what
// the outside world does at run time).
func (m *ManagedApp) Emit(sourceName, event string, payload any) error {
	src, ok := m.IP.Source(sourceName)
	if !ok {
		return fmt.Errorf("core: unknown source %q (have %v)", sourceName, m.IP.SourceNames())
	}
	return m.IP.Emit(src, event, payload)
}

// Violations returns the policy violations detected so far.
func (m *ManagedApp) Violations() []*dift.Violation { return m.Tracker.Violations() }

// Writes returns the observable sink writes so far.
func (m *ManagedApp) Writes() []interp.SinkWrite { return m.IP.IO.Writes }

// parseAll parses named sources in deterministic order.
func parseAll(sources map[string]string) ([]taint.File, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]taint.File, 0, len(names))
	for _, n := range names {
		var prog *ast.Program
		if err := guard.Contain("parse", n, func() error {
			p, err := parser.Parse(n, sources[n])
			prog = p
			return err
		}); err != nil {
			return nil, err
		}
		files = append(files, taint.File{Name: n, Prog: prog})
	}
	return files, nil
}
