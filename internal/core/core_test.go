package core

import (
	"strings"
	"testing"

	"turnstile/internal/instrument"
	"turnstile/internal/taint"
)

const pipelineApp = `
const net = require("net");
const fs = require("fs");
const sock = net.connect({ host: "sensor", port: 7 });
const log = fs.createWriteStream("/log");
sock.on("data", reading => {
  log.write("r=" + reading);
});
`

const pipelinePolicy = `{
  "labellers": { "Reading": "v => \"telemetry\"" },
  "rules": [ "telemetry -> archive" ],
  "injections": [ { "object": "reading", "labeller": "Reading" } ]
}`

func TestAnalyzeOnly(t *testing.T) {
	res, err := Analyze(map[string]string{"app.js": pipelineApp}, taint.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
}

func TestManagePipeline(t *testing.T) {
	app, err := Manage(map[string]string{"app.js": pipelineApp}, pipelinePolicy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(app.Instrumented["app.js"], "__t.label(reading") {
		t.Fatalf("injection missing:\n%s", app.Instrumented["app.js"])
	}
	if err := app.Emit("net.socket:sensor:7", "data", "42"); err != nil {
		t.Fatal(err)
	}
	writes := app.Writes()
	if len(writes) != 1 || writes[0].Value != "r=42" {
		t.Fatalf("writes = %+v", writes)
	}
	if app.Tracker.Stats().Labelled != 1 {
		t.Fatalf("stats = %+v", app.Tracker.Stats())
	}
}

func TestManageMultiFileRequire(t *testing.T) {
	sources := map[string]string{
		"main.js": `
const net = require("net");
const pipe = require("./pipe");
const sock = net.connect({ host: "h", port: 1 });
sock.on("data", d => pipe.handle(d));
`,
		"pipe.js": `
const fs = require("fs");
const out = fs.createWriteStream("/piped");
module.exports = { handle: function(d) { out.write(d); } };
`,
	}
	app, err := Manage(sources, `{"rules":[]}`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Emit("net.socket:h:1", "data", "x"); err != nil {
		t.Fatal(err)
	}
	if len(app.Writes()) != 1 {
		t.Fatalf("writes = %+v", app.Writes())
	}
	// cross-file path found and instrumented
	if len(app.Analysis.Paths) != 1 || app.Analysis.Paths[0].Sink.File != "pipe.js" {
		t.Fatalf("analysis = %+v", app.Analysis.Paths)
	}
}

func TestManageRequireCycleSurvives(t *testing.T) {
	sources := map[string]string{
		"a.js": `const b = require("./b"); module.exports = { name: "a" };`,
		"b.js": `const a = require("./a"); module.exports = { name: "b" };`,
	}
	if _, err := Manage(sources, `{"rules":[]}`, DefaultOptions()); err == nil {
		t.Log("cycle tolerated (pre-seeded exports)")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestManageErrors(t *testing.T) {
	if _, err := Manage(map[string]string{"x.js": "let ="}, `{"rules":[]}`, DefaultOptions()); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := Manage(map[string]string{"x.js": "let a = 1;"}, `not json`, DefaultOptions()); err == nil {
		t.Fatal("policy error expected")
	}
	if _, err := Manage(map[string]string{"x.js": `undefinedFn();`}, `{"rules":[]}`, DefaultOptions()); err == nil {
		t.Fatal("runtime error expected")
	}
}

func TestManageExhaustiveMode(t *testing.T) {
	opts := DefaultOptions()
	opts.Mode = instrument.Exhaustive
	app, err := Manage(map[string]string{"app.js": pipelineApp}, pipelinePolicy, opts)
	if err != nil {
		t.Fatal(err)
	}
	if app.Results["app.js"].Tracks == 0 {
		t.Fatal("exhaustive mode should track literals")
	}
	if err := app.Emit("net.socket:sensor:7", "data", "y"); err != nil {
		t.Fatal(err)
	}
}

func TestManageAuditMode(t *testing.T) {
	opts := DefaultOptions()
	opts.Enforce = false
	// policy that forbids the flow: reading labelled "archive", sink "telemetry"
	pol := `{
	  "labellers": { "Reading": "v => \"archive\"", "Sink": "v => \"telemetry\"" },
	  "rules": [ "telemetry -> archive" ],
	  "injections": [
	    { "object": "reading", "labeller": "Reading" },
	    { "object": "log", "labeller": "Sink" }
	  ]
	}`
	app, err := Manage(map[string]string{"app.js": pipelineApp}, pol, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Emit("net.socket:sensor:7", "data", "z"); err != nil {
		t.Fatalf("audit mode must not block: %v", err)
	}
	if len(app.Violations()) != 1 {
		t.Fatalf("violations = %d", len(app.Violations()))
	}
	if len(app.Writes()) != 1 {
		t.Fatal("audited flow should proceed")
	}
}

func TestEmitUnknownSource(t *testing.T) {
	app, err := Manage(map[string]string{"x.js": "let a = 1;"}, `{"rules":[]}`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Emit("nope", "data", "x"); err == nil {
		t.Fatal("expected unknown source error")
	}
}

func TestManageStrictMode(t *testing.T) {
	// strict compound-label semantics (§2, Denning subset ordering): every
	// data label must reach some receiver label.
	pol := `{
	  "labellers": { "Reading": "v => [\"telemetry\", \"raw\"]", "Sink": "v => \"archive\"" },
	  "rules": [ "telemetry -> archive", "raw -> archive" ],
	  "mode": "strict",
	  "injections": [
	    { "object": "reading", "labeller": "Reading" },
	    { "object": "log", "labeller": "Sink" }
	  ]
	}`
	app, err := Manage(map[string]string{"app.js": pipelineApp}, pol, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// both labels flow to archive → allowed even in strict mode
	if err := app.Emit("net.socket:sensor:7", "data", "ok"); err != nil {
		t.Fatalf("strict-mode allowed flow blocked: %v", err)
	}
	// remove the raw → archive rule: now raw has nowhere to go
	polBlocked := `{
	  "labellers": { "Reading": "v => [\"telemetry\", \"raw\"]", "Sink": "v => \"archive\"" },
	  "rules": [ "telemetry -> archive" ],
	  "mode": "strict",
	  "injections": [
	    { "object": "reading", "labeller": "Reading" },
	    { "object": "log", "labeller": "Sink" }
	  ]
	}`
	app2, err := Manage(map[string]string{"app.js": pipelineApp}, polBlocked, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := app2.Emit("net.socket:sensor:7", "data", "leak"); err == nil {
		t.Fatal("strict mode should block the unreachable label")
	}
}
