// Package durable is the crash-consistent persistence layer of the serve
// daemon: a checksummed, labeled write-ahead log plus periodic snapshots,
// over a small Store abstraction with two backends — an in-memory store on
// the deterministic fault injector (the testing and battery surface) and a
// plain file store (the `turnstile serve -state DIR` surface).
//
// The design rule is the one *LIO\** and *IFC Inside* argue for: the IFC
// monitor's guarantees must hold at the level where state actually lives.
// Every record that crosses into the store carries the DIFT labels and the
// tracker integrity state of the moment it was written, every record is
// individually checksummed, and recovery is fail-closed: a WAL suffix that
// cannot be verified (torn write, bit rot, a snapshot ahead of the
// surviving log) recovers the affected tenant *poisoned* — sinks denied —
// never silently clean. A crash-restart cycle is therefore not a
// taint-laundering channel.
//
// Crash model. The store distinguishes appended bytes ("page cache") from
// synced bytes ("durable media"): Append buffers, Sync publishes. The
// in-memory backend routes every operation through the seeded fault
// injector's filesystem surface (torn writes, short reads, silent
// corruption, crash-before/after-sync), so the whole protocol — including
// its failure modes — replays byte-identically from a seed on the virtual
// clock. A crash (injected or via CrashAfterSyncs) abandons the page
// cache: only synced bytes survive, exactly like a power loss.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"turnstile/internal/faults"
)

// Store is the byte-level persistence abstraction the WAL and snapshot
// protocols run on. Append/Sync model a log file on a real filesystem:
// appended bytes are buffered and only durable after Sync returns.
// WriteFile models the atomic-replace protocol (write temp, rename) used
// for snapshots. Implementations must be safe for concurrent use by
// independent names (tenants own disjoint files).
type Store interface {
	// Append buffers data at the end of the named file.
	Append(name string, data []byte) error
	// Sync makes every buffered append to the named file durable.
	Sync(name string) error
	// ReadFile returns the durable contents of the named file.
	// A missing file is (nil, nil): an empty log, not an error.
	ReadFile(name string) ([]byte, error)
	// WriteFile atomically replaces the named file with data.
	WriteFile(name string, data []byte) error
	// List returns the existing file names, sorted.
	List() ([]string, error)
}

// memFile is one in-memory file: synced contents plus the pending page
// cache a crash would lose.
type memFile struct {
	durable []byte
	pending []byte
}

// MemStore is the deterministic in-memory Store: the backend of the
// crash-recovery battery and of every durable unit test. All fault
// behaviour — including simulated process death — comes from the optional
// injector, so a fixed seed replays the exact same torn bytes.
type MemStore struct {
	mu    sync.Mutex
	files map[string]*memFile

	// Injector, when non-nil, decides the fate of every operation via the
	// filesystem fault surface (module "store", ops append/sync/read/write).
	Injector *faults.Injector
	// Clock, when non-nil, advances SyncTicks per durable sync — the cost
	// model of an fsync on the virtual clock.
	Clock     *faults.Clock
	SyncTicks int64

	// CrashAfterSyncs, when > 0, injects a crash immediately after the n-th
	// successful Sync across the store (1-based): the sync completes — its
	// bytes are durable — and then the process dies. This is the battery's
	// "kill the daemon at a WAL record boundary" knob; with the per-record
	// sync discipline of the WAL, sync n is exactly record boundary n.
	CrashAfterSyncs int
	syncs           int

	// CrashAfterSyncsFor is the per-file twin of CrashAfterSyncs, keyed by
	// store file name. It lets the battery kill every tenant at its own
	// k-th record boundary regardless of how the scheduler interleaves
	// tenants — the crash point stays deterministic at any -parallel.
	CrashAfterSyncsFor map[string]int
	syncsPer           map[string]int
}

// NewMemStore returns an empty in-memory store with no fault injection.
func NewMemStore() *MemStore {
	return &MemStore{files: make(map[string]*memFile)}
}

// Syncs returns the number of successful durable syncs so far.
func (s *MemStore) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

func (s *MemStore) file(name string) *memFile {
	f := s.files[name]
	if f == nil {
		f = &memFile{}
		s.files[name] = f
	}
	return f
}

// decide consults the injector; a nil injector passes everything.
func (s *MemStore) decide(op, name string) faults.Decision {
	if s.Injector == nil {
		return faults.Decision{Action: faults.Pass}
	}
	return s.Injector.Decide("store", op, name)
}

// cut converts a decision fraction into a byte offset within n bytes.
func cut(frac float64, n int) int {
	c := int(frac * float64(n))
	if c < 0 {
		c = 0
	}
	if c > n {
		c = n
	}
	return c
}

// corrupt flips one bit of the byte at the fraction offset, in place.
func corrupt(frac float64, data []byte) {
	if len(data) == 0 {
		return
	}
	off := cut(frac, len(data))
	if off == len(data) {
		off--
	}
	data[off] ^= 0x40
}

// Append implements Store. A torn decision persists only a prefix —
// straight to durable media, as a crash mid-write would — and reports the
// process dead.
func (s *MemStore) Append(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.decide("append", name)
	f := s.file(name)
	switch d.Action {
	case faults.Fail:
		return fmt.Errorf("durable: append %s: %s", name, d.Err)
	case faults.Crash:
		return faults.ErrCrash
	case faults.Torn:
		f.durable = append(f.durable, f.pending...)
		f.pending = nil
		f.durable = append(f.durable, data[:cut(d.Frac, len(data))]...)
		return faults.ErrCrash
	case faults.Corrupt:
		buf := append([]byte(nil), data...)
		corrupt(d.Frac, buf)
		f.pending = append(f.pending, buf...)
		return nil
	case faults.Delay:
		if s.Clock != nil {
			s.Clock.Advance(d.Delay)
		}
	}
	f.pending = append(f.pending, data...)
	return nil
}

// Sync implements Store: publish the page cache to durable media.
func (s *MemStore) Sync(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.decide("sync", name)
	f := s.file(name)
	switch d.Action {
	case faults.Fail:
		return fmt.Errorf("durable: sync %s: %s", name, d.Err)
	case faults.Crash:
		if d.Point == "after" {
			f.durable = append(f.durable, f.pending...)
			f.pending = nil
		}
		// "before" (and unspecified): the page cache dies with the process
		return faults.ErrCrash
	case faults.Delay:
		if s.Clock != nil {
			s.Clock.Advance(d.Delay)
		}
	}
	f.durable = append(f.durable, f.pending...)
	f.pending = nil
	if s.Clock != nil && s.SyncTicks > 0 {
		s.Clock.Advance(s.SyncTicks)
	}
	s.syncs++
	if s.CrashAfterSyncs > 0 && s.syncs >= s.CrashAfterSyncs {
		return faults.ErrCrash
	}
	if len(s.CrashAfterSyncsFor) > 0 {
		if s.syncsPer == nil {
			s.syncsPer = make(map[string]int)
		}
		s.syncsPer[name]++
		if k := s.CrashAfterSyncsFor[name]; k > 0 && s.syncsPer[name] >= k {
			return faults.ErrCrash
		}
	}
	return nil
}

// ReadFile implements Store: durable contents only — recovery must never
// see bytes that would not have survived the crash.
func (s *MemStore) ReadFile(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.files[name]
	if f == nil {
		return nil, nil
	}
	out := append([]byte(nil), f.durable...)
	switch d := s.decide("read", name); d.Action {
	case faults.Fail:
		return nil, fmt.Errorf("durable: read %s: %s", name, d.Err)
	case faults.ShortRead:
		out = out[:cut(d.Frac, len(out))]
	case faults.Corrupt:
		corrupt(d.Frac, out)
	}
	return out, nil
}

// WriteFile implements Store with atomic-replace semantics: a crash during
// the write leaves the previous contents intact.
func (s *MemStore) WriteFile(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch d := s.decide("write", name); d.Action {
	case faults.Fail:
		return fmt.Errorf("durable: write %s: %s", name, d.Err)
	case faults.Crash, faults.Torn:
		// the rename never happened; the old file survives whole
		return faults.ErrCrash
	case faults.Corrupt:
		buf := append([]byte(nil), data...)
		corrupt(d.Frac, buf)
		s.files[name] = &memFile{durable: buf}
		return nil
	}
	s.files[name] = &memFile{durable: append([]byte(nil), data...)}
	return nil
}

// List implements Store.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.files))
	for n, f := range s.files {
		if len(f.durable) > 0 || len(f.pending) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Clone returns an independent deep copy of the store's files (without
// injector, clock or crash knobs). The battery clones a crashed store so
// it can prove recovery at several worker counts from the same surviving
// bytes.
func (s *MemStore) Clone() *MemStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := NewMemStore()
	for n, f := range s.files {
		c.files[n] = &memFile{
			durable: append([]byte(nil), f.durable...),
			pending: append([]byte(nil), f.pending...),
		}
	}
	return c
}

// Crash simulates process death outside any store operation: every page
// cache is dropped, only synced bytes survive. The battery calls this to
// model "kill -9 between I/O calls".
func (s *MemStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.files {
		f.pending = nil
	}
}

// FileStore is the real-filesystem Store behind `turnstile serve -state
// DIR`. File names map to paths under the root; Append keeps one open
// O_APPEND handle per file, Sync fsyncs it, WriteFile goes through the
// temp+rename protocol.
type FileStore struct {
	root string

	mu      sync.Mutex
	handles map[string]*os.File
}

// NewFileStore opens (creating if needed) a store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: state dir: %w", err)
	}
	return &FileStore{root: dir, handles: make(map[string]*os.File)}, nil
}

// Root returns the state directory.
func (s *FileStore) Root() string { return s.root }

// path validates a store name (tenant names become file names; no
// separators, no traversal) and joins it under the root.
func (s *FileStore) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return "", fmt.Errorf("durable: invalid store file name %q", name)
	}
	return filepath.Join(s.root, name), nil
}

func (s *FileStore) handle(name string) (*os.File, error) {
	if f := s.handles[name]; f != nil {
		return f, nil
	}
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.handles[name] = f
	return f, nil
}

// Append implements Store.
func (s *FileStore) Append(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.handle(name)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	return err
}

// Sync implements Store.
func (s *FileStore) Sync(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.handle(name)
	if err != nil {
		return err
	}
	return f.Sync()
}

// ReadFile implements Store; a missing file is an empty log.
func (s *FileStore) ReadFile(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// WriteFile implements Store via temp file + rename + dir-entry durability.
func (s *FileStore) WriteFile(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		return err
	}
	if d, err := os.Open(s.root); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// List implements Store.
func (s *FileStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() && !strings.HasSuffix(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Close releases the append handles.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.handles {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.handles = make(map[string]*os.File)
	return first
}
