package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Snapshot is a checksummed point-in-time capture of a tenant's recovered
// state, written atomically beside the WAL. Snapshots are an accelerator
// and a cross-check, never the source of truth: recovery still replays the
// WAL (the driver's taint is re-derived by re-processing, not resurrected
// from bytes), but the snapshot pins how many records the state covers. A
// snapshot that claims more records than the surviving WAL proves the WAL
// lost a verified suffix — the fail-closed rule fires even though the
// surviving prefix itself checksums clean.
type Snapshot struct {
	// Seq is the WAL sequence number the state covers (every record with
	// Seq ≤ this is folded in).
	Seq int `json:"seq"`
	// Tick is the virtual clock at capture.
	Tick int64 `json:"tick"`
	// State is the owner-defined payload (the serve layer stores its
	// tenant progress summary here).
	State json.RawMessage `json:"state,omitempty"`
}

// WriteSnapshot frames, checksums and atomically replaces the named
// snapshot file. The single-frame encoding reuses the WAL framing so one
// flipped byte is detectable the same way.
func WriteSnapshot(store Store, name string, snap Snapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("durable: encode snapshot: %w", err)
	}
	buf := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return store.WriteFile(name, append(buf, payload...))
}

// ReadSnapshot loads and verifies the named snapshot. A missing file is
// (zero, false, nil) — no snapshot is a normal state. A present but
// unverifiable file is also (zero, false, nil) with damaged=true folded
// into the bool pair below: the caller cannot distinguish "snapshot said
// more than the WAL" without a verified snapshot, so damage is reported
// separately for the fail-closed decision.
func ReadSnapshot(store Store, name string) (snap Snapshot, ok bool, damaged bool, err error) {
	data, err := store.ReadFile(name)
	if err != nil {
		return Snapshot{}, false, false, err
	}
	if len(data) == 0 {
		return Snapshot{}, false, false, nil
	}
	if len(data) < frameHeader {
		return Snapshot{}, false, true, nil
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	want := binary.LittleEndian.Uint32(data[4:8])
	if n > maxRecordLen || len(data)-frameHeader < n {
		return Snapshot{}, false, true, nil
	}
	payload := data[frameHeader : frameHeader+n]
	if crc32.ChecksumIEEE(payload) != want {
		return Snapshot{}, false, true, nil
	}
	if err := json.Unmarshal(payload, &snap); err != nil {
		return Snapshot{}, false, true, nil
	}
	return snap, true, false, nil
}
