package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Kind names the typed WAL record a serve-daemon event produces. Every
// state transition a tenant makes is one record; recovery replays them in
// order to reconstruct the tenant — queue, counters, driver taint — with
// labels intact.
type Kind string

const (
	// KindAdmit: a message passed admission control and joined the queue.
	// Carries the payload, its tick, and the DIFT label estimate the
	// policy's injection labellers assign to the payload.
	KindAdmit Kind = "admit"
	// KindDeny: admission control rejected an arrival (queue full).
	KindDeny Kind = "deny"
	// KindShed: a queued message exceeded the lag bound and was shed to the
	// dead-letter queue. Carries payload and labels — the DLQ must stay
	// labeled across restarts.
	KindShed Kind = "shed"
	// KindProcess is the commit record: appended after a message was fully
	// processed, carrying the outcome, step count, updated busy horizon and
	// latency. A crash between processing and this record leaves the
	// message in the queue; recovery re-processes it deterministically.
	KindProcess Kind = "process"
	// KindReload: a policy hot-swap was applied. Carries the full policy
	// JSON so recovery re-applies the same policy at the same point.
	KindReload Kind = "reload"
	// KindGuard: the containment guard tripped for this tenant.
	KindGuard Kind = "guard"
	// KindPoison: the tenant's tracker entered the degraded latch. Carries
	// the reason; recovery restores the latch fail-closed.
	KindPoison Kind = "poison"
	// KindAbandon: a queued message was abandoned at shutdown drain.
	KindAbandon Kind = "abandon"
	// KindComplete: the tenant ran to completion (clean shutdown marker).
	KindComplete Kind = "complete"
	// KindReplay: an operator replayed a dead letter via `turnstile dlq`;
	// records the DLQ index so a second replay is refused.
	KindReplay Kind = "replay"
)

// Record is one typed, labeled WAL entry. Fields are a union over the
// kinds; unused fields stay zero and are omitted from the encoding. Labels
// and Degraded carry the DIFT state of the moment the record was written,
// so persisted dead letters and recovery decisions never lose taint.
type Record struct {
	Seq  int   `json:"seq"`
	Kind Kind  `json:"kind"`
	Idx  int   `json:"idx,omitempty"`  // message / arrival / DLQ index
	Tick int64 `json:"tick,omitempty"` // virtual clock of the event

	Payload string   `json:"payload,omitempty"` // admit/shed: message payload
	Labels  []string `json:"labels,omitempty"`  // DIFT label estimate of the payload

	Outcome string `json:"outcome,omitempty"` // process: ok/violation/budget/throw/error
	Detail  string `json:"detail,omitempty"`  // process: outcome detail
	Steps   int64  `json:"steps,omitempty"`   // process: interpreter steps consumed
	Busy    int64  `json:"busy,omitempty"`    // process: busy horizon after service
	Latency int64  `json:"latency,omitempty"` // process: completion − arrival
	Drained bool   `json:"drained,omitempty"` // process: handled during shutdown drain

	Reason   string `json:"reason,omitempty"`   // shed/guard/poison: why
	Policy   string `json:"policy,omitempty"`   // reload: full policy JSON
	Degraded bool   `json:"degraded,omitempty"` // tracker degraded at write time
}

// Framing: every record is [u32 length][u32 CRC32-IEEE of payload][JSON
// payload], little-endian. The CRC makes each record individually
// verifiable; the length prefix makes a torn tail detectable as a short
// frame rather than a JSON parse ambiguity.
const frameHeader = 8

// maxRecordLen bounds a single record. A length prefix beyond it is
// treated as corruption, not an allocation request — a flipped high bit in
// the length field must not ask for gigabytes.
const maxRecordLen = 1 << 24

// appendFrame encodes one record onto buf.
func appendFrame(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("durable: encode record: %w", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// WAL is a per-tenant write-ahead log on a Store. One WAL owns one file;
// every Append is synced before it returns (group commit would trade the
// battery's record-boundary crash points for throughput — wrong trade
// here), so "crash after sync n" is exactly "crash at record boundary n".
type WAL struct {
	store Store
	name  string
	seq   int
}

// OpenWAL attaches a WAL to the named store file, continuing the sequence
// after the last verifiable record. The returned verdict and records are
// the recovery view: the verified prefix plus whether the suffix was
// clean. Callers that see an unverifiable verdict must recover the tenant
// fail-closed — the WAL itself keeps appending after the verified prefix
// only if the caller decides to resume at all.
func OpenWAL(store Store, name string) (*WAL, []Record, Verdict, error) {
	data, err := store.ReadFile(name)
	if err != nil {
		return nil, nil, Verdict{}, err
	}
	recs, verdict := DecodeRecords(data)
	seq := 0
	if n := len(recs); n > 0 {
		seq = recs[n-1].Seq
	}
	return &WAL{store: store, name: name, seq: seq}, recs, verdict, nil
}

// ResumeWAL attaches a WAL whose verified contents the caller has already
// decoded (and possibly repaired), continuing the sequence after seq
// without re-reading the file. Recovery uses it so the integrity verdict
// is rendered exactly once, from one read.
func ResumeWAL(store Store, name string, seq int) *WAL {
	return &WAL{store: store, name: name, seq: seq}
}

// Name returns the store file the WAL appends to.
func (w *WAL) Name() string { return w.name }

// Seq returns the sequence number of the last appended (or recovered)
// record.
func (w *WAL) Seq() int { return w.seq }

// Append assigns the next sequence number, frames, appends and syncs one
// record. On any error — including faults.ErrCrash from the store — the
// record must be considered not durable.
func (w *WAL) Append(rec Record) error {
	rec.Seq = w.seq + 1
	buf, err := appendFrame(nil, &rec)
	if err != nil {
		return err
	}
	if err := w.store.Append(w.name, buf); err != nil {
		return err
	}
	if err := w.store.Sync(w.name); err != nil {
		return err
	}
	w.seq = rec.Seq
	return nil
}

// Verdict is the integrity result of decoding a WAL file.
type Verdict struct {
	// Clean is true iff every byte of the file parsed into verified
	// records. False means an unverifiable suffix: the verified prefix is
	// trustworthy, everything after it is not, and the fail-closed rule
	// applies to the owning tenant.
	Clean bool
	// Reason says what broke the suffix: "", "torn frame", "bad crc",
	// "bad json", "bad seq", "oversized frame".
	Reason string
	// Verified is the byte offset of the end of the verified prefix.
	Verified int
}

// DecodeRecords walks the framed file and returns every record up to the
// first unverifiable byte. It never guesses past damage: a bad CRC, a
// short frame, a sequence gap or malformed JSON ends the verified prefix
// — even if later bytes would parse — because a log that lost its middle
// cannot prove anything about its tail.
func DecodeRecords(data []byte) ([]Record, Verdict) {
	var recs []Record
	off := 0
	lastSeq := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, Verdict{Reason: "torn frame", Verified: off}
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordLen {
			return recs, Verdict{Reason: "oversized frame", Verified: off}
		}
		if len(data)-off-frameHeader < n {
			return recs, Verdict{Reason: "torn frame", Verified: off}
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != want {
			return recs, Verdict{Reason: "bad crc", Verified: off}
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, Verdict{Reason: "bad json", Verified: off}
		}
		if rec.Seq != lastSeq+1 {
			return recs, Verdict{Reason: "bad seq", Verified: off}
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, Verdict{Clean: true, Verified: off}
}
