package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"turnstile/internal/faults"
)

func appendN(t *testing.T, w *WAL, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Append(Record{Kind: KindAdmit, Idx: i, Payload: fmt.Sprintf("msg-%d", i), Labels: []string{"PII"}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// TestWALRoundTrip: records come back verified, in order, with labels
// intact, and a reopened WAL continues the sequence.
func TestWALRoundTrip(t *testing.T) {
	st := NewMemStore()
	w, recs, v, err := OpenWAL(st, "t.wal")
	if err != nil || len(recs) != 0 || !v.Clean {
		t.Fatalf("fresh open: recs=%d verdict=%+v err=%v", len(recs), v, err)
	}
	appendN(t, w, 5)
	if err := w.Append(Record{Kind: KindPoison, Reason: "guard trip", Degraded: true}); err != nil {
		t.Fatal(err)
	}

	w2, recs, v, err := OpenWAL(st, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean || len(recs) != 6 {
		t.Fatalf("reopen: clean=%v reason=%q recs=%d", v.Clean, v.Reason, len(recs))
	}
	for i, r := range recs {
		if r.Seq != i+1 {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if recs[2].Payload != "msg-2" || len(recs[2].Labels) != 1 || recs[2].Labels[0] != "PII" {
		t.Fatalf("labels lost: %+v", recs[2])
	}
	last := recs[5]
	if last.Kind != KindPoison || !last.Degraded || last.Reason != "guard trip" {
		t.Fatalf("poison record mangled: %+v", last)
	}
	// the sequence continues where the verified log ended
	if err := w2.Append(Record{Kind: KindComplete}); err != nil {
		t.Fatal(err)
	}
	recs2, v2 := mustRead(t, st, "t.wal")
	if !v2.Clean || len(recs2) != 7 || recs2[6].Seq != 7 {
		t.Fatalf("resumed append: clean=%v n=%d", v2.Clean, len(recs2))
	}
}

func mustRead(t *testing.T, st Store, name string) ([]Record, Verdict) {
	t.Helper()
	data, err := st.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return DecodeRecords(data)
}

// TestDecodeRejectsDamage: each damage class ends the verified prefix with
// the right reason and never yields a record past the damage.
func TestDecodeRejectsDamage(t *testing.T) {
	st := NewMemStore()
	w, _, _, _ := OpenWAL(st, "t.wal")
	appendN(t, w, 3)
	clean, _ := st.ReadFile("t.wal")

	// truncated mid-record: torn frame, two survivors
	recs, v := DecodeRecords(clean[:len(clean)-3])
	if v.Clean || v.Reason != "torn frame" || len(recs) != 2 {
		t.Fatalf("truncate: %+v, %d recs", v, len(recs))
	}
	// flipped byte in the last record's payload: bad crc
	bad := append([]byte(nil), clean...)
	bad[len(bad)-2] ^= 0x01
	recs, v = DecodeRecords(bad)
	if v.Clean || v.Reason != "bad crc" || len(recs) != 2 {
		t.Fatalf("bitflip: %+v, %d recs", v, len(recs))
	}
	// flipped byte in the last length header: oversized or torn, never a panic
	bad = append([]byte(nil), clean...)
	hdrOff := v.Verified
	bad[hdrOff+3] ^= 0xFF
	recs, v2 := DecodeRecords(bad)
	if v2.Clean || len(recs) != 2 {
		t.Fatalf("length bitflip: %+v, %d recs", v2, len(recs))
	}
	// a record replayed out of sequence (duplicated tail): bad seq
	var dup []byte
	dup = append(dup, clean...)
	lastFrame := clean[hdrOff:]
	dup = append(dup, lastFrame...)
	recs, v = DecodeRecords(dup)
	if v.Clean || v.Reason != "bad seq" || len(recs) != 3 {
		t.Fatalf("dup tail: %+v, %d recs", v, len(recs))
	}
}

// TestMemStoreCrashModel: pending bytes die with the process, synced bytes
// survive, and CrashAfterSyncs fires exactly at the requested boundary
// with that record already durable.
func TestMemStoreCrashModel(t *testing.T) {
	st := NewMemStore()
	if err := st.Append("f", []byte("unsynced")); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	if data, _ := st.ReadFile("f"); len(data) != 0 {
		t.Fatalf("unsynced bytes survived the crash: %q", data)
	}
	if err := st.Append("f", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync("f"); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	if data, _ := st.ReadFile("f"); string(data) != "synced" {
		t.Fatalf("synced bytes lost: %q", data)
	}

	st2 := NewMemStore()
	st2.CrashAfterSyncs = 2
	w, _, _, _ := OpenWAL(st2, "t.wal")
	if err := w.Append(Record{Kind: KindAdmit, Idx: 0}); err != nil {
		t.Fatalf("record 1: %v", err)
	}
	err := w.Append(Record{Kind: KindAdmit, Idx: 1})
	if !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("record 2: err=%v, want ErrCrash at sync boundary 2", err)
	}
	st2.Crash()
	recs, v := mustRead(t, st2, "t.wal")
	if !v.Clean || len(recs) != 2 {
		t.Fatalf("after boundary crash: clean=%v recs=%d (sync completed before the kill)", v.Clean, len(recs))
	}
}

// TestInjectedTornWrite: a seeded torn append persists only a prefix; the
// decoder reports the torn suffix and the fault replays byte-identically
// under the same seed.
func TestInjectedTornWrite(t *testing.T) {
	sched := &faults.Schedule{Seed: 42, Rules: []faults.Rule{
		{Module: "store", Op: "append", Target: "t.wal", Mode: faults.ModeTorn, Prob: 0.5},
	}}
	run := func() ([]byte, int) {
		st := NewMemStore()
		st.Injector = faults.NewInjector(sched, nil)
		w, _, _, _ := OpenWAL(st, "t.wal")
		n := 0
		for i := 0; i < 50; i++ {
			if err := w.Append(Record{Kind: KindAdmit, Idx: i, Payload: "x"}); err != nil {
				if !errors.Is(err, faults.ErrCrash) {
					t.Fatalf("append %d: %v", i, err)
				}
				break
			}
			n++
		}
		st.Crash()
		data, _ := st.ReadFile("t.wal")
		return data, n
	}
	data1, n1 := run()
	data2, n2 := run()
	if n1 != n2 || !bytes.Equal(data1, data2) {
		t.Fatalf("torn write not deterministic: n=%d/%d bytes=%d/%d", n1, n2, len(data1), len(data2))
	}
	if n1 >= 50 {
		t.Fatal("schedule never tore a write; test is vacuous")
	}
	recs, v := DecodeRecords(data1)
	if len(recs) != n1 {
		// the tear may land exactly on a frame boundary, in which case the
		// prefix is clean but one record short — still fail-closed territory
		// because Append returned ErrCrash
		t.Fatalf("verified records %d != completed appends %d", len(recs), n1)
	}
	if v.Clean && len(data1) > v.Verified {
		t.Fatalf("verdict clean with %d unverified trailing bytes", len(data1)-v.Verified)
	}
}

// TestSnapshotRoundTripAndDamage: verified round trip, missing-file and
// flipped-byte behaviour, and the more-records-than-WAL cross-check data.
func TestSnapshotRoundTripAndDamage(t *testing.T) {
	st := NewMemStore()
	if _, ok, damaged, err := ReadSnapshot(st, "t.snap"); ok || damaged || err != nil {
		t.Fatalf("missing snapshot: ok=%v damaged=%v err=%v", ok, damaged, err)
	}
	state, _ := json.Marshal(map[string]int{"processed": 7})
	if err := WriteSnapshot(st, "t.snap", Snapshot{Seq: 9, Tick: 120, State: state}); err != nil {
		t.Fatal(err)
	}
	snap, ok, damaged, err := ReadSnapshot(st, "t.snap")
	if err != nil || !ok || damaged || snap.Seq != 9 || snap.Tick != 120 {
		t.Fatalf("round trip: %+v ok=%v damaged=%v err=%v", snap, ok, damaged, err)
	}
	// flip one byte: damaged, never trusted
	raw, _ := st.ReadFile("t.snap")
	raw[len(raw)-1] ^= 0x10
	if err := st.WriteFile("t.snap", raw); err != nil {
		t.Fatal(err)
	}
	if _, ok, damaged, _ := ReadSnapshot(st, "t.snap"); ok || !damaged {
		t.Fatalf("corrupt snapshot: ok=%v damaged=%v", ok, damaged)
	}
}

// TestFileStoreRoundTrip: the os-backed store honours the same contract —
// append+sync durability, atomic replace, list, missing file as empty.
func TestFileStoreRoundTrip(t *testing.T) {
	st, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if data, err := st.ReadFile("none.wal"); err != nil || data != nil {
		t.Fatalf("missing file: %q err=%v", data, err)
	}
	w, _, _, _ := OpenWAL(st, "t.wal")
	appendN(t, w, 4)
	recs, v := mustRead(t, st, "t.wal")
	if !v.Clean || len(recs) != 4 {
		t.Fatalf("file-backed WAL: clean=%v recs=%d", v.Clean, len(recs))
	}
	if err := WriteSnapshot(st, "t.snap", Snapshot{Seq: 4}); err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil || len(names) != 2 || names[0] != "t.snap" || names[1] != "t.wal" {
		t.Fatalf("list: %v err=%v", names, err)
	}
	if _, err := st.ReadFile("../escape"); err == nil {
		t.Fatal("path traversal accepted")
	}
}
