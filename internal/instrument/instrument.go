// Package instrument implements Turnstile's Code Instrumentor (§4.3): it
// rewrites an application's AST, injecting DIF Tracker API calls along
// dataflow expressions. In selective mode only the nodes identified as
// privacy-sensitive by the Dataflow Analyzer are instrumented; in
// exhaustive mode every dataflow expression is.
//
// The instrumentor produces a new AST; the original is not modified. The
// instrumented program references the __t global installed by
// interp.InstallTracker (the τ object of Fig. 2b).
package instrument

import (
	"fmt"

	"turnstile/internal/ast"
	"turnstile/internal/policy"
)

// Mode selects the instrumentation strategy of §6.2.
type Mode int

const (
	// Selective instruments only the nodes in the Selection (the paper's
	// selectively-managed configuration).
	Selective Mode = iota
	// Exhaustive instruments every dataflow expression in the program.
	Exhaustive
)

func (m Mode) String() string {
	if m == Exhaustive {
		return "exhaustive"
	}
	return "selective"
}

// Selection is the set of AST node IDs lying on privacy-sensitive code
// paths, as reported by the Dataflow Analyzer.
type Selection map[int]bool

// Options configures an instrumentation run.
type Options struct {
	Mode Mode
	// Selection is required in Selective mode.
	Selection Selection
	// Injections are the policy's labeller injection points for this file.
	Injections []policy.Injection
	// File is the name used to match injections; defaults to Program.File.
	File string
	// TrackerVar is the global name of the tracker object (default "__t").
	TrackerVar string
	// ImplicitFlows enables the experimental implicit-flow instrumentation
	// (the paper's §8 future work): conditional regions are wrapped in
	// pc-label scopes (τ.pushScope / τ.pc / τ.popScope, balanced with
	// try/finally) and assignments route through τ.assign so values written
	// under secret control inherit the branch condition's labels. Requires
	// a tracker with EnableImplicit().
	ImplicitFlows bool
}

// Result reports what the instrumentor did.
type Result struct {
	Program    *ast.Program
	BinaryOps  int // τ.binaryOp rewrites
	Invokes    int // τ.invoke / τ.call rewrites
	Labels     int // τ.label injections
	Tracks     int // τ.track wrappings (exhaustive mode)
	PCScopes   int // implicit-flow scope wrappings
	Statements int // statements visited
	// UnmatchedInjections lists policy injections that matched nothing in
	// this file — usually a stale line number or a renamed object after
	// the application changed (§4.6, maintaining the IFC policy).
	UnmatchedInjections []policy.Injection
}

// Instrument rewrites prog according to opts.
func Instrument(prog *ast.Program, opts Options) (*Result, error) {
	if opts.TrackerVar == "" {
		opts.TrackerVar = "__t"
	}
	if opts.File == "" {
		opts.File = prog.File
	}
	if opts.Mode == Selective && opts.Selection == nil {
		opts.Selection = Selection{}
	}
	ins := &instrumentor{
		opts:    opts,
		maxID:   prog.MaxID,
		nextID:  prog.MaxID,
		res:     &Result{},
		applied: make(map[int]bool),
	}
	out := &ast.Program{
		NodeInfo: prog.NodeInfo,
		File:     prog.File,
		Body:     ins.stmts(prog.Body),
	}
	out.MaxID = ins.nextID
	ins.res.Program = out
	for i, inj := range opts.Injections {
		relevant := inj.File == "" || inj.File == opts.File
		if relevant && !ins.applied[i] {
			ins.res.UnmatchedInjections = append(ins.res.UnmatchedInjections, inj)
		}
	}
	return ins.res, nil
}

type instrumentor struct {
	opts    Options
	maxID   int // IDs below this are original nodes
	nextID  int
	res     *Result
	applied map[int]bool // injection index → matched at least once
}

func (ins *instrumentor) id() int { id := ins.nextID; ins.nextID++; return id }

func (ins *instrumentor) info(pos ast.Pos) ast.NodeInfo {
	return ast.NodeInfo{Loc: pos, ID: ins.id()}
}

// selected reports whether an original node participates in a
// privacy-sensitive path (or everything, in exhaustive mode).
func (ins *instrumentor) selected(n ast.Node) bool {
	id := n.NodeID()
	if id >= ins.maxID {
		return false // synthetic node created by this instrumentor
	}
	if ins.opts.Mode == Exhaustive {
		return true
	}
	return ins.opts.Selection[id]
}

// tau builds a __t.<method>(args...) call expression.
func (ins *instrumentor) tau(pos ast.Pos, method string, args ...ast.Expr) *ast.CallExpr {
	return &ast.CallExpr{
		NodeInfo: ins.info(pos),
		Callee: &ast.MemberExpr{
			NodeInfo: ins.info(pos),
			Object:   &ast.Ident{NodeInfo: ins.info(pos), Name: ins.opts.TrackerVar},
			Property: method,
		},
		Args: args,
	}
}

func (ins *instrumentor) str(pos ast.Pos, s string) *ast.StringLit {
	return &ast.StringLit{NodeInfo: ins.info(pos), Value: s}
}

func (ins *instrumentor) site(pos ast.Pos) *ast.StringLit {
	return ins.str(pos, fmt.Sprintf("%s:%d:%d", ins.opts.File, pos.Line, pos.Col))
}

// injectionFor finds a labeller injection matching a declaration of name at
// the given line.
func (ins *instrumentor) injectionFor(name string, line int) (policy.Injection, bool) {
	for i, inj := range ins.opts.Injections {
		if inj.Object != name {
			continue
		}
		if inj.File != "" && inj.File != ins.opts.File {
			continue
		}
		if inj.Line != 0 && inj.Line != line {
			continue
		}
		ins.applied[i] = true
		return inj, true
	}
	return policy.Injection{}, false
}

// wrapLabel wraps e in __t.label(e, "labeller").
func (ins *instrumentor) wrapLabel(e ast.Expr, labeller string) ast.Expr {
	ins.res.Labels++
	return ins.tau(e.Pos(), "label", e, ins.str(e.Pos(), labeller))
}

// ---------------------------------------------------------------------------
// Statements

func (ins *instrumentor) stmts(in []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(in))
	for _, s := range in {
		out = append(out, ins.stmt(s))
	}
	return out
}

func (ins *instrumentor) stmt(s ast.Stmt) ast.Stmt {
	if s == nil {
		return nil
	}
	ins.res.Statements++
	switch x := s.(type) {
	case *ast.VarDecl:
		decls := make([]*ast.Declarator, len(x.Decls))
		for i, d := range x.Decls {
			init := ins.expr(d.Init)
			if init != nil {
				if inj, ok := ins.injectionFor(d.Name, d.Pos().Line); ok {
					init = ins.wrapLabel(init, inj.Labeller)
				}
				if ins.opts.ImplicitFlows {
					init = ins.tau(d.Pos(), "assign", init)
				}
			}
			decls[i] = &ast.Declarator{NodeInfo: d.NodeInfo, Name: d.Name, Init: init}
		}
		return &ast.VarDecl{NodeInfo: x.NodeInfo, Kind: x.Kind, Decls: decls}
	case *ast.FuncDecl:
		return &ast.FuncDecl{NodeInfo: x.NodeInfo, Name: x.Name, Fn: ins.funcLit(x.Fn)}
	case *ast.ExprStmt:
		return &ast.ExprStmt{NodeInfo: x.NodeInfo, X: ins.expr(x.X)}
	case *ast.ReturnStmt:
		return &ast.ReturnStmt{NodeInfo: x.NodeInfo, Value: ins.expr(x.Value)}
	case *ast.IfStmt:
		out := &ast.IfStmt{NodeInfo: x.NodeInfo, Cond: ins.expr(x.Cond),
			Then: ins.stmt(x.Then), Else: ins.stmt(x.Else)}
		if ins.wantPC(x.Cond) {
			out.Cond = ins.tau(x.Cond.Pos(), "pc", out.Cond)
			return ins.pcScope(x.Pos(), out)
		}
		return out
	case *ast.ForStmt:
		out := &ast.ForStmt{NodeInfo: x.NodeInfo, Init: ins.stmt(x.Init),
			Cond: ins.expr(x.Cond), Post: ins.expr(x.Post), Body: ins.stmt(x.Body)}
		if x.Cond != nil && ins.wantPC(x.Cond) {
			out.Cond = ins.tau(x.Cond.Pos(), "pc", out.Cond)
			return ins.pcScope(x.Pos(), out)
		}
		return out
	case *ast.ForInStmt:
		out := &ast.ForInStmt{NodeInfo: x.NodeInfo, Kind: x.Kind, DeclKind: x.DeclKind,
			Decl: x.Decl, Name: x.Name, Object: ins.expr(x.Object), Body: ins.stmt(x.Body)}
		if ins.wantPC(x.Object) {
			out.Object = ins.tau(x.Object.Pos(), "pc", out.Object)
			return ins.pcScope(x.Pos(), out)
		}
		return out
	case *ast.WhileStmt:
		out := &ast.WhileStmt{NodeInfo: x.NodeInfo, Cond: ins.expr(x.Cond), Body: ins.stmt(x.Body)}
		if ins.wantPC(x.Cond) {
			out.Cond = ins.tau(x.Cond.Pos(), "pc", out.Cond)
			return ins.pcScope(x.Pos(), out)
		}
		return out
	case *ast.DoWhileStmt:
		out := &ast.DoWhileStmt{NodeInfo: x.NodeInfo, Body: ins.stmt(x.Body), Cond: ins.expr(x.Cond)}
		if ins.wantPC(x.Cond) {
			out.Cond = ins.tau(x.Cond.Pos(), "pc", out.Cond)
			return ins.pcScope(x.Pos(), out)
		}
		return out
	case *ast.BlockStmt:
		return &ast.BlockStmt{NodeInfo: x.NodeInfo, Body: ins.stmts(x.Body)}
	case *ast.ThrowStmt:
		return &ast.ThrowStmt{NodeInfo: x.NodeInfo, Value: ins.expr(x.Value)}
	case *ast.TryStmt:
		out := &ast.TryStmt{NodeInfo: x.NodeInfo, CatchVar: x.CatchVar}
		out.Body = ins.block(x.Body)
		out.Catch = ins.block(x.Catch)
		out.Finally = ins.block(x.Finally)
		return out
	case *ast.SwitchStmt:
		cases := make([]*ast.SwitchCase, len(x.Cases))
		for i, c := range x.Cases {
			cases[i] = &ast.SwitchCase{NodeInfo: c.NodeInfo, Test: ins.expr(c.Test), Body: ins.stmts(c.Body)}
		}
		return &ast.SwitchStmt{NodeInfo: x.NodeInfo, Disc: ins.expr(x.Disc), Cases: cases}
	case *ast.ClassDecl:
		methods := make([]*ast.ClassMethod, len(x.Methods))
		for i, m := range x.Methods {
			methods[i] = &ast.ClassMethod{NodeInfo: m.NodeInfo, Name: m.Name, Static: m.Static, Fn: ins.funcLit(m.Fn)}
		}
		return &ast.ClassDecl{NodeInfo: x.NodeInfo, Name: x.Name,
			SuperClass: ins.expr(x.SuperClass), Methods: methods}
	default:
		return s
	}
}

func (ins *instrumentor) block(b *ast.BlockStmt) *ast.BlockStmt {
	if b == nil {
		return nil
	}
	return &ast.BlockStmt{NodeInfo: b.NodeInfo, Body: ins.stmts(b.Body)}
}

func (ins *instrumentor) funcLit(fn *ast.FuncLit) *ast.FuncLit {
	if fn == nil {
		return nil
	}
	out := &ast.FuncLit{NodeInfo: fn.NodeInfo, Name: fn.Name, Params: fn.Params,
		Arrow: fn.Arrow, Async: fn.Async}
	// parameter injections: result = __t.label(result, "L") prepended
	var prologue []ast.Stmt
	for _, p := range fn.Params {
		if inj, ok := ins.injectionFor(p.Name, p.Pos().Line); ok {
			pos := p.Pos()
			prologue = append(prologue, &ast.ExprStmt{
				NodeInfo: ins.info(pos),
				X: &ast.AssignExpr{
					NodeInfo: ins.info(pos),
					Op:       "=",
					Target:   &ast.Ident{NodeInfo: ins.info(pos), Name: p.Name},
					Value: ins.wrapLabel(
						&ast.Ident{NodeInfo: ins.info(pos), Name: p.Name}, inj.Labeller),
				},
			})
		}
	}
	switch {
	case fn.Body != nil:
		body := ins.block(fn.Body)
		if len(prologue) > 0 {
			body = &ast.BlockStmt{NodeInfo: body.NodeInfo, Body: append(prologue, body.Body...)}
		}
		out.Body = body
	case fn.ExprRet != nil:
		ret := ins.expr(fn.ExprRet)
		if len(prologue) > 0 {
			pos := fn.ExprRet.Pos()
			body := append(prologue, &ast.ReturnStmt{NodeInfo: ins.info(pos), Value: ret})
			out.Body = &ast.BlockStmt{NodeInfo: ins.info(pos), Body: body}
		} else {
			out.ExprRet = ret
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Expressions

// dataflowOps are the binary operators that derive a new value from their
// operands (Fig. 5 binaryOp rule). Comparisons are excluded: their results
// are control-flow data (implicit flows, out of scope per §4.6).
var dataflowOps = map[string]bool{
	"+": true, "-": true, "*": true, "/": true, "%": true, "**": true,
	"&": true, "|": true, "^": true, "<<": true, ">>": true, ">>>": true,
}

// comparisonOps produce control-flow data. They are only instrumented in
// implicit-flow mode, where branch predicates must carry the labels of
// their operands into the pc scope.
var comparisonOps = map[string]bool{
	"==": true, "!=": true, "===": true, "!==": true,
	"<": true, ">": true, "<=": true, ">=": true,
}

func (ins *instrumentor) expr(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.Ident, *ast.BoolLit, *ast.NullLit, *ast.UndefinedLit, *ast.ThisExpr:
		return e
	case *ast.NumberLit:
		if ins.opts.Mode == Exhaustive && ins.selected(x) {
			ins.res.Tracks++
			return ins.tau(x.Pos(), "track", x)
		}
		return e
	case *ast.StringLit:
		if ins.opts.Mode == Exhaustive && ins.selected(x) && len(x.Value) > 0 {
			ins.res.Tracks++
			return ins.tau(x.Pos(), "track", x)
		}
		return e
	case *ast.TemplateLit:
		exprs := make([]ast.Expr, len(x.Exprs))
		for i, sub := range x.Exprs {
			exprs[i] = ins.expr(sub)
		}
		out := &ast.TemplateLit{NodeInfo: x.NodeInfo, Quasis: x.Quasis, Exprs: exprs}
		if ins.selected(x) && len(exprs) > 0 {
			// the rendered string derives from the interpolated parts;
			// only side-effect-free reads are re-evaluated as sources
			args := []ast.Expr{out}
			for _, sub := range x.Exprs {
				if c, ok := ins.cloneRead(sub); ok {
					args = append(args, c)
				}
			}
			if len(args) > 1 {
				ins.res.BinaryOps++
				return ins.tau(x.Pos(), "derive", args...)
			}
		}
		return out
	case *ast.ArrayLit:
		elems := make([]ast.Expr, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = ins.expr(el)
		}
		out := &ast.ArrayLit{NodeInfo: x.NodeInfo, Elems: elems}
		if ins.selected(x) {
			ins.res.Tracks++
			// derive the array's label from its element reads
			args := []ast.Expr{out}
			for _, el := range x.Elems {
				if c, ok := ins.cloneRead(el); ok {
					args = append(args, c)
				}
			}
			return ins.tau(x.Pos(), "derive", args...)
		}
		return out
	case *ast.ObjectLit:
		props := make([]*ast.Property, len(x.Props))
		var sources []ast.Expr
		for i, p := range x.Props {
			np := &ast.Property{NodeInfo: p.NodeInfo, Key: p.Key, Computed: p.Computed, Spread: p.Spread}
			np.KeyExpr = ins.expr(p.KeyExpr)
			np.Value = ins.expr(p.Value)
			props[i] = np
			// property values that are simple reads contribute their labels
			if c, ok := ins.cloneRead(p.Value); ok {
				sources = append(sources, c)
			}
		}
		out := &ast.ObjectLit{NodeInfo: x.NodeInfo, Props: props}
		if ins.selected(x) {
			ins.res.Tracks++
			args := append([]ast.Expr{out}, sources...)
			return ins.tau(x.Pos(), "derive", args...)
		}
		return out
	case *ast.FuncLit:
		return ins.funcLit(x)
	case *ast.CallExpr:
		return ins.call(x)
	case *ast.NewExpr:
		args := make([]ast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = ins.expr(a)
		}
		return &ast.NewExpr{NodeInfo: x.NodeInfo, Callee: ins.expr(x.Callee), Args: args}
	case *ast.MemberExpr:
		obj := ins.expr(x.Object)
		// exhaustive mode pays the Proxy trap on every property read
		// (§4.4): route the access through τ.member
		if ins.opts.Mode == Exhaustive && ins.selected(x) && !x.Computed {
			ins.res.Tracks++
			return ins.tau(x.Pos(), "member", obj, ins.str(x.Pos(), x.Property))
		}
		return &ast.MemberExpr{NodeInfo: x.NodeInfo, Object: obj,
			Property: x.Property, Index: ins.expr(x.Index), Computed: x.Computed}
	case *ast.BinaryExpr:
		l, r := ins.expr(x.Left), ins.expr(x.Right)
		if ins.selected(x) && (dataflowOps[x.Op] ||
			(ins.opts.ImplicitFlows && comparisonOps[x.Op])) {
			ins.res.BinaryOps++
			return ins.tau(x.Pos(), "binaryOp", ins.str(x.Pos(), x.Op), l, r)
		}
		return &ast.BinaryExpr{NodeInfo: x.NodeInfo, Op: x.Op, Left: l, Right: r}
	case *ast.LogicalExpr:
		return &ast.LogicalExpr{NodeInfo: x.NodeInfo, Op: x.Op,
			Left: ins.expr(x.Left), Right: ins.expr(x.Right)}
	case *ast.UnaryExpr:
		if x.Op == "delete" || x.Op == "typeof" {
			// delete needs a raw member target; typeof of an undeclared
			// identifier must stay syntactic
			return x
		}
		return &ast.UnaryExpr{NodeInfo: x.NodeInfo, Op: x.Op, X: ins.expr(x.X)}
	case *ast.UpdateExpr:
		return &ast.UpdateExpr{NodeInfo: x.NodeInfo, Op: x.Op, Prefix: x.Prefix, X: x.X}
	case *ast.AssignExpr:
		target := x.Target // assignment targets are not rewritten
		val := ins.expr(x.Value)
		// compound assignments derive a value: rewrite a ⊕= b into
		// a = __t.binaryOp("⊕", a, b) on sensitive paths
		if op, isCompound := compoundOp(x.Op); isCompound && ins.selected(x) && dataflowOps[op] {
			ins.res.BinaryOps++
			return &ast.AssignExpr{
				NodeInfo: x.NodeInfo,
				Op:       "=",
				Target:   target,
				Value:    ins.tau(x.Pos(), "binaryOp", ins.str(x.Pos(), op), ins.mustCloneRead(x.Target), val),
			}
		}
		// labeller injections on assignments: x = __t.label(value, "L")
		if id, isIdent := target.(*ast.Ident); isIdent && x.Op == "=" {
			if inj, ok := ins.injectionFor(id.Name, x.Pos().Line); ok {
				val = ins.wrapLabel(val, inj.Labeller)
			}
		}
		if ins.opts.ImplicitFlows && x.Op == "=" {
			val = ins.tau(x.Pos(), "assign", val)
		}
		return &ast.AssignExpr{NodeInfo: x.NodeInfo, Op: x.Op, Target: target, Value: val}
	case *ast.CondExpr:
		return &ast.CondExpr{NodeInfo: x.NodeInfo, Cond: ins.expr(x.Cond),
			Then: ins.expr(x.Then), Else: ins.expr(x.Else)}
	case *ast.SeqExpr:
		exprs := make([]ast.Expr, len(x.Exprs))
		for i, sub := range x.Exprs {
			exprs[i] = ins.expr(sub)
		}
		return &ast.SeqExpr{NodeInfo: x.NodeInfo, Exprs: exprs}
	case *ast.SpreadExpr:
		return &ast.SpreadExpr{NodeInfo: x.NodeInfo, X: ins.expr(x.X)}
	case *ast.AwaitExpr:
		return &ast.AwaitExpr{NodeInfo: x.NodeInfo, X: ins.expr(x.X)}
	}
	return e
}

// call rewrites a call expression into τ.invoke / τ.call when selected.
func (ins *instrumentor) call(x *ast.CallExpr) ast.Expr {
	args := make([]ast.Expr, len(x.Args))
	hasSpread := false
	for i, a := range x.Args {
		args[i] = ins.expr(a)
		if _, sp := a.(*ast.SpreadExpr); sp {
			hasSpread = true
		}
	}
	if !ins.selected(x) || hasSpread {
		// spread calls stay native: τ.invoke takes a literal args array and
		// the interpreter's spread handling is already transparent
		return &ast.CallExpr{NodeInfo: x.NodeInfo, Callee: ins.expr(x.Callee), Args: args}
	}
	pos := x.Pos()
	argArr := &ast.ArrayLit{NodeInfo: ins.info(pos), Elems: args}
	switch callee := x.Callee.(type) {
	case *ast.MemberExpr:
		if isTrackerRef(callee.Object, ins.opts.TrackerVar) {
			return &ast.CallExpr{NodeInfo: x.NodeInfo, Callee: ins.expr(x.Callee), Args: args}
		}
		if !callee.Computed {
			ins.res.Invokes++
			return ins.tau(pos, "invoke", ins.expr(callee.Object), ins.str(pos, callee.Property), argArr, ins.site(pos))
		}
		ins.res.Invokes++
		// computed method call foo[x](y): sound over-approximation — invoke
		// through a dynamic name (§4.5)
		return ins.tau(pos, "invoke", ins.expr(callee.Object), ins.expr(callee.Index), argArr, ins.site(pos))
	case *ast.Ident:
		if callee.Name == ins.opts.TrackerVar || callee.Name == "require" {
			return &ast.CallExpr{NodeInfo: x.NodeInfo, Callee: callee, Args: args}
		}
		ins.res.Invokes++
		return ins.tau(pos, "call", callee, argArr, ins.site(pos))
	default:
		ins.res.Invokes++
		return ins.tau(pos, "call", ins.expr(x.Callee), argArr, ins.site(pos))
	}
}

// wantPC reports whether a branch condition should open a pc scope: the
// implicit mode is on and the condition touches the sensitive selection
// (always, in exhaustive mode).
func (ins *instrumentor) wantPC(cond ast.Expr) bool {
	if !ins.opts.ImplicitFlows || cond == nil {
		return false
	}
	if ins.opts.Mode == Exhaustive {
		return true
	}
	found := false
	ast.Walk(cond, func(n ast.Node) bool {
		if ins.opts.Selection[n.NodeID()] {
			found = true
			return false
		}
		return true
	})
	return found
}

// pcScope wraps a conditional statement in a balanced pc scope:
//
//	__t.pushScope();
//	try { <stmt> } finally { __t.popScope(); }
func (ins *instrumentor) pcScope(pos ast.Pos, stmt ast.Stmt) ast.Stmt {
	ins.res.PCScopes++
	push := &ast.ExprStmt{NodeInfo: ins.info(pos), X: ins.tau(pos, "pushScope")}
	pop := &ast.ExprStmt{NodeInfo: ins.info(pos), X: ins.tau(pos, "popScope")}
	try := &ast.TryStmt{
		NodeInfo: ins.info(pos),
		Body:     &ast.BlockStmt{NodeInfo: ins.info(pos), Body: []ast.Stmt{stmt}},
		Finally:  &ast.BlockStmt{NodeInfo: ins.info(pos), Body: []ast.Stmt{pop}},
	}
	return &ast.BlockStmt{NodeInfo: ins.info(pos), Body: []ast.Stmt{push, try}}
}

func isTrackerRef(e ast.Expr, trackerVar string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == trackerVar
}

func compoundOp(op string) (string, bool) {
	if len(op) >= 2 && op[len(op)-1] == '=' && op != "==" && op != "===" && op != "!=" && op != "!==" && op != "<=" && op != ">=" {
		base := op[:len(op)-1]
		if base == "" || base == "&&" || base == "||" || base == "??" {
			return "", false
		}
		return base, true
	}
	return "", false
}

// cloneRead duplicates a side-effect-free read expression (identifier,
// member chain, this, literal) with fresh node IDs, so the copy can appear
// elsewhere in the tree. It declines expressions with potential side
// effects (calls, assignments, updates).
func (ins *instrumentor) cloneRead(e ast.Expr) (ast.Expr, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return &ast.Ident{NodeInfo: ins.info(x.Pos()), Name: x.Name}, true
	case *ast.ThisExpr:
		return &ast.ThisExpr{NodeInfo: ins.info(x.Pos())}, true
	case *ast.StringLit:
		return &ast.StringLit{NodeInfo: ins.info(x.Pos()), Value: x.Value}, true
	case *ast.NumberLit:
		return &ast.NumberLit{NodeInfo: ins.info(x.Pos()), Value: x.Value}, true
	case *ast.MemberExpr:
		obj, ok := ins.cloneRead(x.Object)
		if !ok {
			return nil, false
		}
		out := &ast.MemberExpr{NodeInfo: ins.info(x.Pos()), Object: obj,
			Property: x.Property, Computed: x.Computed}
		if x.Computed {
			idx, ok := ins.cloneRead(x.Index)
			if !ok {
				return nil, false
			}
			out.Index = idx
		}
		return out, true
	}
	return nil, false
}

// mustCloneRead is cloneRead for assignment targets, which are always
// clonable reads (Ident or MemberExpr).
func (ins *instrumentor) mustCloneRead(e ast.Expr) ast.Expr {
	if c, ok := ins.cloneRead(e); ok {
		return c
	}
	return e
}
