package instrument

import (
	"strings"
	"testing"

	"turnstile/internal/ast"
	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
)

// The original FaceRecognizer of Figure 2a, over the host net module.
const fig2aSource = `
const net = require("net");
const socket = net.connect({ host: "cam", port: 554 });

const deviceControl = { send: function(p) { return "device" } };
const emailSender = { send: function(s) { return "email" } };
const storage = { send: function(s) { return "storage" } };

socket.on("data", frame => {
  const scene = analyzeVideoFrame(frame);
  for (let person of scene.persons) {
    person.description = person.action + " at " + scene.location;
    if (person.employeeID) {
      deviceControl.send(person);
    }
  }
  emailSender.send(scene);
  storage.send(scene);
});

function analyzeVideoFrame(frame) {
  const persons = [];
  for (let part of frame.split("|")) {
    const bits = part.split(":");
    const p = { name: bits[0], action: "walking" };
    if (bits[1] !== "") { p.employeeID = bits[1]; }
    persons.push(p);
  }
  return { persons: persons, location: "lobby" };
}
`

const fig4PolicyJSON = `{
  "labellers": {
    "Scene": { "persons": { "$map": "item => item.employeeID ? \"employee\" : \"customer\"" } }
  },
  "rules": [ "employee -> customer", "customer -> internal" ],
  "injections": [ { "object": "scene", "labeller": "Scene" } ]
}`

// allNodes selects every original node — for tests that need a full
// selection without running the analyzer.
func allNodes(prog *ast.Program) Selection {
	sel := Selection{}
	ast.Walk(prog, func(n ast.Node) bool {
		sel[n.NodeID()] = true
		return true
	})
	return sel
}

func setupInstrumented(t *testing.T, mode Mode, sel Selection) (*interp.Interp, *Result) {
	t.Helper()
	prog, err := parser.Parse("face-recognizer.js", fig2aSource)
	if err != nil {
		t.Fatal(err)
	}
	ip := interp.New()
	pol, err := policy.ParseJSON([]byte(fig4PolicyJSON), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Instrument(prog, Options{
		Mode:       mode,
		Selection:  sel,
		Injections: pol.Injections,
	})
	if err != nil {
		t.Fatal(err)
	}
	// print → re-parse → run: the deployed artifact is source code
	src := printer.Print(res.Program)
	reparsed, err := parser.Parse("face-recognizer.inst.js", src)
	if err != nil {
		t.Fatalf("instrumented output does not re-parse: %v\n%s", err, src)
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = true
	if err := ip.Run(reparsed); err != nil {
		t.Fatalf("instrumented program failed: %v\n%s", err, src)
	}
	return ip, res
}

func labelSink(t *testing.T, ip *interp.Interp, name string, labels ...policy.Label) {
	t.Helper()
	v, ok := ip.Globals.Lookup(name)
	if !ok {
		t.Fatalf("%s not defined", name)
	}
	ip.Tracker.Attach(v, policy.NewLabelSet(labels...))
}

func emit(t *testing.T, ip *interp.Interp, frame string) error {
	t.Helper()
	src, ok := ip.Source("net.socket:cam:554")
	if !ok {
		t.Fatal("socket source missing")
	}
	return ip.Emit(src, "data", frame)
}

func TestExhaustiveInstrumentationEnforces(t *testing.T) {
	ip, res := setupInstrumented(t, Exhaustive, nil)
	if res.BinaryOps == 0 || res.Invokes == 0 || res.Labels == 0 {
		t.Fatalf("result = %+v", res)
	}
	labelSink(t, ip, "deviceControl", "employee")
	labelSink(t, ip, "storage", "internal")
	labelSink(t, ip, "emailSender", "internal")

	if err := emit(t, ip, "kim:E7"); err != nil {
		t.Fatalf("employee frame should pass: %v", err)
	}
	// relabel email sink "employee": a frame with a customer must now be
	// blocked when the scene flows to it
	labelSink(t, ip, "emailSender", "employee")
	if err := emit(t, ip, "visitor:"); err == nil {
		t.Fatal("customer → employee sink should be blocked")
	}
	if len(ip.Tracker.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}
}

func TestSelectiveMatchesExhaustiveOnSelectedPath(t *testing.T) {
	prog, _ := parser.Parse("f.js", fig2aSource)
	ipSel, resSel := setupInstrumented(t, Selective, allNodes(prog))
	labelSink(t, ipSel, "emailSender", "employee")
	errSel := emit(t, ipSel, "visitor:")

	ipExh, _ := setupInstrumented(t, Exhaustive, nil)
	labelSink(t, ipExh, "emailSender", "employee")
	errExh := emit(t, ipExh, "visitor:")

	if (errSel == nil) != (errExh == nil) {
		t.Fatalf("verdicts differ: selective=%v exhaustive=%v", errSel, errExh)
	}
	if resSel.Invokes == 0 {
		t.Fatal("selective with full selection should instrument calls")
	}
}

func TestEmptySelectionOnlyInjectsLabels(t *testing.T) {
	ip, res := setupInstrumented(t, Selective, Selection{})
	if res.BinaryOps != 0 || res.Invokes != 0 || res.Tracks != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Labels == 0 {
		t.Fatal("labeller injection should still apply")
	}
	// program still runs and labels scenes, but no checks fire
	labelSink(t, ip, "emailSender", "employee")
	if err := emit(t, ip, "visitor:"); err != nil {
		t.Fatalf("uninstrumented path must not check: %v", err)
	}
	if ip.Tracker.Stats().Labelled == 0 {
		t.Fatal("label() not invoked")
	}
}

func TestOriginalBehaviourPreserved(t *testing.T) {
	// Instrumented and original versions must produce the same observable
	// I/O when no policy violations occur (non-invasiveness, C3).
	runApp := func(mode *Mode) *interp.Interp {
		prog, _ := parser.Parse("app.js", `
const fs = require("fs");
const rs = fs.createReadStream("/in");
let count = 0;
rs.on("data", chunk => {
  const upper = chunk.toUpperCase() + "!" + count;
  count = count + 1;
  fs.writeFileSync("/out" + count, upper);
});
`)
		ip := interp.New()
		pol, _ := policy.ParseJSON([]byte(`{"rules": ["a -> b"]}`), ip.CompileLabelFunc)
		var toRun = prog
		if mode != nil {
			res, err := Instrument(prog, Options{Mode: *mode})
			if err != nil {
				t.Fatal(err)
			}
			src := printer.Print(res.Program)
			toRun, err = parser.Parse("app.inst.js", src)
			if err != nil {
				t.Fatalf("%v\n%s", err, src)
			}
		}
		ip.InstallTracker(pol)
		if err := ip.Run(toRun); err != nil {
			t.Fatal(err)
		}
		src, _ := ip.Source("fs.readStream:/in")
		for _, msg := range []string{"alpha", "beta", "gamma"} {
			if err := ip.Emit(src, "data", msg); err != nil {
				t.Fatal(err)
			}
		}
		return ip
	}
	exh := Exhaustive
	sel := Selective
	orig := runApp(nil)
	instEx := runApp(&exh)
	instSel := runApp(&sel)
	for _, inst := range []*interp.Interp{instEx, instSel} {
		if len(inst.IO.Writes) != len(orig.IO.Writes) {
			t.Fatalf("write counts differ: %d vs %d", len(inst.IO.Writes), len(orig.IO.Writes))
		}
		for i := range orig.IO.Writes {
			if inst.IO.Writes[i].Value != orig.IO.Writes[i].Value || inst.IO.Writes[i].Target != orig.IO.Writes[i].Target {
				t.Fatalf("write %d differs: %+v vs %+v", i, inst.IO.Writes[i], orig.IO.Writes[i])
			}
		}
	}
}

func TestInstrumentedSourceContainsTauCalls(t *testing.T) {
	prog, _ := parser.Parse("f.js", fig2aSource)
	pol, err := policy.ParseJSON([]byte(fig4PolicyJSON), func(string) (policy.LabelFunc, error) {
		return func(...any) (policy.LabelSet, error) { return nil, nil }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Instrument(prog, Options{Mode: Exhaustive, Injections: pol.Injections})
	if err != nil {
		t.Fatal(err)
	}
	src := printer.Print(res.Program)
	for _, want := range []string{`__t.label(`, `__t.binaryOp("+"`, `__t.invoke(deviceControl, "send"`, `__t.invoke(storage, "send"`} {
		if !strings.Contains(src, want) {
			t.Errorf("instrumented source missing %q:\n%s", want, src)
		}
	}
}

func TestCompoundAssignRewrite(t *testing.T) {
	prog, _ := parser.Parse("c.js", "let s = seed; s += chunk;")
	res, err := Instrument(prog, Options{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	src := printer.Print(res.Program)
	if !strings.Contains(src, `s = __t.binaryOp("+", s, `) {
		t.Fatalf("compound assignment not rewritten:\n%s", src)
	}
}

func TestParamInjection(t *testing.T) {
	// Fig. 7 style: the injection target is a callback parameter.
	src := `
function onResult(result) {
  handle(result);
}
function handle(r) { return r; }
`
	prog, _ := parser.Parse("face-recognition.js", src)
	res, err := Instrument(prog, Options{
		Mode: Selective,
		Injections: []policy.Injection{
			{File: "face-recognition.js", Object: "result", Labeller: "onRecognize"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := printer.Print(res.Program)
	if !strings.Contains(out, `result = __t.label(result, "onRecognize");`) {
		t.Fatalf("param injection missing:\n%s", out)
	}
	if res.Labels != 1 {
		t.Fatalf("labels = %d", res.Labels)
	}
}

func TestInjectionLineFilter(t *testing.T) {
	src := "const x = mk();\nconst y = mk();\nfunction mk() { return {}; }"
	prog, _ := parser.Parse("a.js", src)
	res, _ := Instrument(prog, Options{
		Mode:       Selective,
		Injections: []policy.Injection{{Object: "y", Line: 2, Labeller: "L"}},
	})
	out := printer.Print(res.Program)
	if strings.Contains(out, `__t.label(mk(), "L")`) && strings.Contains(strings.Split(out, "\n")[0], "__t.label") {
		t.Fatalf("wrong line instrumented:\n%s", out)
	}
	if res.Labels != 1 {
		t.Fatalf("labels = %d", res.Labels)
	}
}

func TestSpreadCallsStayNative(t *testing.T) {
	prog, _ := parser.Parse("s.js", "f(...args); obj.m(...args);")
	res, _ := Instrument(prog, Options{Mode: Exhaustive})
	out := printer.Print(res.Program)
	if strings.Contains(out, "__t.invoke") || strings.Contains(out, "__t.call") {
		t.Fatalf("spread call should not be wrapped:\n%s", out)
	}
}

func TestComputedCallOverApproximation(t *testing.T) {
	// foo[x](y) — sound over-approximation of §4.5
	prog, _ := parser.Parse("d.js", "foo[x](y);")
	res, _ := Instrument(prog, Options{Mode: Exhaustive})
	out := printer.Print(res.Program)
	if !strings.Contains(out, "__t.invoke(foo, x, [y]") {
		t.Fatalf("computed call not instrumented:\n%s", out)
	}
	if res.Invokes != 1 {
		t.Fatalf("invokes = %d", res.Invokes)
	}
}

func TestRequireNotWrapped(t *testing.T) {
	prog, _ := parser.Parse("r.js", `const fs = require("fs");`)
	res, _ := Instrument(prog, Options{Mode: Exhaustive})
	out := printer.Print(res.Program)
	if strings.Contains(out, `__t.call(require`) {
		t.Fatalf("require must stay native:\n%s", out)
	}
	_ = res
}

func TestInstrumentIdempotentIDs(t *testing.T) {
	prog, _ := parser.Parse("i.js", fig2aSource)
	res, _ := Instrument(prog, Options{Mode: Exhaustive})
	seen := map[int]bool{}
	ast.Walk(res.Program, func(n ast.Node) bool {
		if n == res.Program {
			return true
		}
		if seen[n.NodeID()] {
			t.Fatalf("duplicate node ID %d in instrumented tree (%T)", n.NodeID(), n)
		}
		seen[n.NodeID()] = true
		return true
	})
	if res.Program.MaxID <= prog.MaxID {
		t.Fatal("MaxID should grow")
	}
}

func TestUnmatchedInjectionsReported(t *testing.T) {
	prog, _ := parser.Parse("a.js", "const x = mk();\nfunction mk() { return {}; }")
	res, err := Instrument(prog, Options{
		Mode: Selective,
		File: "a.js",
		Injections: []policy.Injection{
			{Object: "x", Labeller: "L"},                   // matches
			{Object: "ghost", Labeller: "L"},               // no such object
			{Object: "x", Line: 99, Labeller: "L"},         // wrong line
			{File: "other.js", Object: "y", Labeller: "L"}, // other file: not reported here
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels != 1 {
		t.Fatalf("labels = %d", res.Labels)
	}
	if len(res.UnmatchedInjections) != 2 {
		t.Fatalf("unmatched = %+v", res.UnmatchedInjections)
	}
	for _, inj := range res.UnmatchedInjections {
		if inj.Object != "ghost" && !(inj.Object == "x" && inj.Line == 99) {
			t.Fatalf("unexpected unmatched injection %+v", inj)
		}
	}
}
