package instrument

import (
	"strings"
	"testing"

	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
	"turnstile/internal/taint"
)

// The §4.6 side channel: an adversary deduces whether an authorized person
// was in the frame by observing whether the door opened. The door-state
// write carries no explicit flow from the frame; only the branch taken
// depends on it.
const doorChannelSrc = `
const net = require("net");
const fs = require("fs");
const doorLog = fs.createWriteStream("/public/door-state");
const sock = net.connect({ host: "cam", port: 554 });
sock.on("data", frame => {
  let doorState = "closed";
  if (frame.indexOf("E") >= 0) {
    doorState = "open";
  }
  doorLog.write(doorState);
});
`

const doorPolicy = `{
  "labellers": {
    "Frame": "v => \"secret\"",
    "PublicSink": "v => \"public\""
  },
  "rules": [ "public -> secret" ],
  "injections": [
    { "object": "frame", "labeller": "Frame" },
    { "object": "doorLog", "labeller": "PublicSink" }
  ]
}`

// buildDoorApp instruments and loads the side-channel app.
func buildDoorApp(t *testing.T, implicit bool) *interp.Interp {
	t.Helper()
	prog, err := parser.Parse("door.js", doorChannelSrc)
	if err != nil {
		t.Fatal(err)
	}
	ip := interp.New()
	pol, err := policy.ParseJSON([]byte(doorPolicy), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	topts := taint.DefaultOptions()
	topts.ImplicitFlows = implicit
	analysis := taint.Analyze([]taint.File{{Name: "door.js", Prog: prog}}, topts)
	res, err := Instrument(prog, Options{
		Mode:          Selective,
		Selection:     Selection(analysis.SelectionFor("door.js")),
		Injections:    pol.Injections,
		File:          "door.js",
		ImplicitFlows: implicit,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := printer.Print(res.Program)
	managed, err := parser.Parse("door.js", src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = true
	if implicit {
		tr.EnableImplicit()
		if res.PCScopes == 0 {
			t.Fatalf("no pc scopes injected:\n%s", src)
		}
	}
	if err := ip.Run(managed); err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	return ip
}

func emitFrame(t *testing.T, ip *interp.Interp, frame string) error {
	t.Helper()
	src, ok := ip.Source("net.socket:cam:554")
	if !ok {
		t.Fatal("source missing")
	}
	return ip.Emit(src, "data", frame)
}

func TestExplicitModeMissesSideChannel(t *testing.T) {
	// default Turnstile (explicit flows only, §4.6): the door-state write
	// is not constrained, even though it reveals the frame's content
	ip := buildDoorApp(t, false)
	if err := emitFrame(t, ip, "kim:E7"); err != nil {
		t.Fatalf("explicit mode must not block the side channel: %v", err)
	}
	if len(ip.Tracker.Violations()) != 0 {
		t.Fatal("explicit mode should record no violation")
	}
	w := ip.IO.WritesTo("fs")
	if len(w) != 1 || w[0].Value != "open" {
		t.Fatalf("writes = %+v", w)
	}
}

func TestImplicitModeCatchesSideChannel(t *testing.T) {
	ip := buildDoorApp(t, true)
	err := emitFrame(t, ip, "kim:E7")
	if err == nil {
		t.Fatal("implicit mode should block the door-state leak")
	}
	if !strings.Contains(err.Error(), "secret") {
		t.Fatalf("err = %v", err)
	}
	if len(ip.Tracker.Violations()) != 1 {
		t.Fatalf("violations = %d", len(ip.Tracker.Violations()))
	}
	// the pc stack must be balanced even though the branch threw
	if ip.Tracker.ScopeDepth() != 0 {
		t.Fatalf("pc stack leaked: depth %d", ip.Tracker.ScopeDepth())
	}
}

func TestImplicitModeBalancedAcrossControlFlow(t *testing.T) {
	src := `
const net = require("net");
const fs = require("fs");
const out = fs.createWriteStream("/o");
const sock = net.connect({ host: "h", port: 1 });
sock.on("data", d => {
  let n = 0;
  for (let i = 0; i < d.length; i++) {
    if (d[i] === "x") { continue; }
    if (i > 8) { break; }
    n = n + 1;
  }
  while (n > 0) {
    n = n - 1;
    if (n === 2) { continue; }
  }
  out.write("done:" + n);
});
`
	prog := parser.MustParse("cf.js", src)
	ip := interp.New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "D": "v => \"secret\"" },
	  "rules": [ "public -> secret" ],
	  "injections": [ { "object": "d", "labeller": "D" } ]
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	cfOpts := taint.DefaultOptions()
	cfOpts.ImplicitFlows = true
	analysis := taint.Analyze([]taint.File{{Name: "cf.js", Prog: prog}}, cfOpts)
	res, err := Instrument(prog, Options{
		Mode:          Selective,
		Selection:     Selection(analysis.SelectionFor("cf.js")),
		Injections:    pol.Injections,
		File:          "cf.js",
		ImplicitFlows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := printer.Print(res.Program)
	managed, err := parser.Parse("cf.js", out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	tr := ip.InstallTracker(pol)
	tr.EnableImplicit()
	if err := ip.Run(managed); err != nil {
		t.Fatal(err)
	}
	srcObj, _ := ip.Source("net.socket:h:1")
	for _, frame := range []string{"abcdefghij", "xxxx", ""} {
		if err := ip.Emit(srcObj, "data", frame); err != nil {
			t.Fatalf("frame %q: %v", frame, err)
		}
		if d := tr.ScopeDepth(); d != 0 {
			t.Fatalf("frame %q: pc depth = %d", frame, d)
		}
	}
	// the output derives from d via pc: it must carry the secret label
	w := ip.IO.WritesTo("fs")
	if len(w) != 3 {
		t.Fatalf("writes = %d", len(w))
	}
}

func TestImplicitOffIsFree(t *testing.T) {
	// with ImplicitFlows off the instrumented source contains no pc calls
	prog := parser.MustParse("p.js", doorChannelSrc)
	res, err := Instrument(prog, Options{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	out := printer.Print(res.Program)
	for _, forbidden := range []string{"pushScope", "popScope", "__t.pc(", "__t.assign("} {
		if strings.Contains(out, forbidden) {
			t.Fatalf("found %q without ImplicitFlows:\n%s", forbidden, out)
		}
	}
	if res.PCScopes != 0 {
		t.Fatalf("PCScopes = %d", res.PCScopes)
	}
}
