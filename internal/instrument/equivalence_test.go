package instrument

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
)

// genProgram builds a deterministic random program from a seed: arithmetic,
// string building, arrays, objects, loops, branches, functions and console
// output — everything observable goes through console.log.
func genProgram(seed uint64) string {
	rng := seed
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	var b strings.Builder
	b.WriteString("let acc = 1;\nlet text = \"t\";\nconst xs = [];\n")
	stmts := int(next(8)) + 3
	for i := 0; i < stmts; i++ {
		switch next(7) {
		case 0:
			fmt.Fprintf(&b, "acc = acc * %d + %d;\n", next(9)+1, next(5))
		case 1:
			fmt.Fprintf(&b, "text = text + \"s%d\" + acc;\n", next(100))
		case 2:
			fmt.Fprintf(&b, "xs.push(acc %% %d);\n", next(7)+2)
		case 3:
			fmt.Fprintf(&b, "if (acc %% %d === 0) { acc = acc + 1; } else { text = text + \"!\"; }\n", next(3)+2)
		case 4:
			fmt.Fprintf(&b, "for (let i%d = 0; i%d < %d; i%d++) { acc = acc + i%d; }\n", i, i, next(5)+1, i, i)
		case 5:
			fmt.Fprintf(&b, "function h%d(v) { return v * 2 - 1; }\nacc = h%d(acc %% 1000);\n", i, i)
		case 6:
			fmt.Fprintf(&b, "const o%d = { v: acc, tag: text.length };\nacc = o%d.v + o%d.tag;\n", i, i, i)
		}
	}
	b.WriteString("console.log(acc, text, xs.join(\",\"), JSON.stringify(xs));\n")
	return b.String()
}

// runVersion executes a program (optionally instrumented) and returns its
// console output.
func runVersion(t *testing.T, src string, mode *Mode) []string {
	t.Helper()
	prog, err := parser.Parse("gen.js", src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}
	ip := interp.New()
	toRun := prog
	if mode != nil {
		pol, err := policy.ParseJSON([]byte(`{"rules":["a -> b"]}`), ip.CompileLabelFunc)
		if err != nil {
			t.Fatal(err)
		}
		ip.InstallTracker(pol)
		res, err := Instrument(prog, Options{Mode: *mode})
		if err != nil {
			t.Fatal(err)
		}
		out := printer.Print(res.Program)
		toRun, err = parser.Parse("gen.inst.js", out)
		if err != nil {
			t.Fatalf("instrumented does not re-parse: %v\n%s", err, out)
		}
	}
	if err := ip.Run(toRun); err != nil {
		t.Fatalf("run failed: %v\nsource:\n%s", err, src)
	}
	return ip.ConsoleOut
}

// Property: exhaustive instrumentation — the maximal rewrite — never
// changes a program's observable behaviour (C3, non-invasiveness).
func TestQuickInstrumentationEquivalence(t *testing.T) {
	exh := Exhaustive
	sel := Selective
	f := func(seed uint64) bool {
		src := genProgram(seed)
		want := runVersion(t, src, nil)
		gotExh := runVersion(t, src, &exh)
		gotSel := runVersion(t, src, &sel)
		if len(want) != len(gotExh) || len(want) != len(gotSel) {
			t.Logf("line counts differ for seed %d", seed)
			return false
		}
		for i := range want {
			if want[i] != gotExh[i] {
				t.Logf("seed %d exhaustive line %d:\n  orig: %q\n  inst: %q\nsource:\n%s",
					seed, i, want[i], gotExh[i], src)
				return false
			}
			if want[i] != gotSel[i] {
				t.Logf("seed %d selective line %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
