package instrument

import (
	"testing"

	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
	"turnstile/internal/taint"
)

// FuzzPipeline drives the full Turnstile pipeline on arbitrary programs:
// anything that parses must analyze, instrument (both modes, with implicit
// flows), print, re-parse, and execute under a bounded step budget without
// panicking. Runtime errors are acceptable; crashes and non-reparseable
// instrumentation are not.
func FuzzPipeline(f *testing.F) {
	seeds := []string{
		`const fs = require("fs");
const ws = fs.createWriteStream("/out");
fs.createReadStream("/in").on("data", d => { ws.write(d.trim()); });`,
		`let a = 0; for (let i = 0; i < 3; i++) { a += i; } console.log(a);`,
		`function f(x) { return x ? f(x - 1) : 0; } f(3);`,
		`const o = { m() { return this.v; }, v: 7 }; o.m();`,
		`class C { constructor() { this.n = 1; } bump() { this.n++; } }
new C().bump();`,
		`try { JSON.parse("{"); } catch (e) { console.log(e.name); }`,
		"`a${1 + 2}b`.split('a');",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fz.js", src)
		if err != nil {
			return
		}
		topts := taint.DefaultOptions()
		topts.ImplicitFlows = true
		analysis := taint.Analyze([]taint.File{{Name: "fz.js", Prog: prog}}, topts)
		for _, mode := range []Mode{Selective, Exhaustive} {
			res, err := Instrument(prog, Options{
				Mode:          mode,
				Selection:     Selection(analysis.SelectionFor("fz.js")),
				ImplicitFlows: true,
			})
			if err != nil {
				t.Fatalf("instrument(%v): %v", mode, err)
			}
			out := printer.Print(res.Program)
			managed, err := parser.Parse("fz2.js", out)
			if err != nil {
				t.Fatalf("instrumented output does not re-parse (%v): %v\ninput: %q\noutput:\n%s",
					mode, err, src, out)
			}
			ip := interp.New()
			ip.MaxSteps = 200_000
			pol, err := policy.ParseJSON([]byte(`{"rules":["a -> b"]}`), ip.CompileLabelFunc)
			if err != nil {
				t.Fatal(err)
			}
			tr := ip.InstallTracker(pol)
			tr.EnableImplicit()
			_ = ip.Run(managed) // runtime errors are fine; panics are not
		}
	})
}
