package instrument

import (
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/guard"
	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
	"turnstile/internal/resolve"
	"turnstile/internal/taint"
)

// FuzzPipeline drives the full Turnstile pipeline on arbitrary programs:
// anything that parses must analyze, instrument (both modes, with implicit
// flows), print, re-parse, and execute under a bounded step budget without
// panicking. Runtime errors are acceptable; crashes and non-reparseable
// instrumentation are not.
func FuzzPipeline(f *testing.F) {
	seeds := []string{
		`const fs = require("fs");
const ws = fs.createWriteStream("/out");
fs.createReadStream("/in").on("data", d => { ws.write(d.trim()); });`,
		`let a = 0; for (let i = 0; i < 3; i++) { a += i; } console.log(a);`,
		`function f(x) { return x ? f(x - 1) : 0; } f(3);`,
		`const o = { m() { return this.v; }, v: 7 }; o.m();`,
		`class C { constructor() { this.n = 1; } bump() { this.n++; } }
new C().bump();`,
		`try { JSON.parse("{"); } catch (e) { console.log(e.name); }`,
		"`a${1 + 2}b`.split('a');",
		// async/await through a Promise chain
		`async function load(x) { return x + 1; }
async function main() { const v = await load(41); console.log(v); }
main();`,
		`new Promise((resolve) => resolve(7)).then(v => console.log(v * 2));`,
		// spread in calls, array literals and object literals
		`function sum(a, b, c) { return a + b + c; }
const xs = [1, 2, 3];
console.log(sum(...xs), [0, ...xs, 4].length);`,
		`const base = { a: 1, b: 2 };
const more = { ...base, c: 3 };
console.log(JSON.stringify(more));`,
		// template strings: nested interpolation and tainted-looking pipes
		"const who = \"cam\" ; console.log(`frame:${who}:${`inner${1+1}`}`);",
		"let acc = \"\"; for (let i = 0; i < 3; i++) { acc = `${acc}|${i * i}`; } console.log(acc);",
		// classes: inheritance, statics, methods touching this
		`class Sensor {
  constructor(id) { this.id = id; this.seen = 0; }
  read(v) { this.seen++; return this.id + ":" + v; }
  static kind() { return "sensor"; }
}
class Camera extends Sensor {
  read(v) { return "cam/" + v; }
}
console.log(new Camera("c1").read("f0"), Sensor.kind());`,
		// deeply nested invoke chains: every call site is an invoke-check
		// candidate, and the receivers of inner calls are themselves call
		// results
		`const w = { get(x) { return { get(y) { return { get(z) { return x + y + z; } }; } }; } };
console.log(w.get(1).get(2).get(3), w.get(w.get(0).get(0).get(0)).get(4).get(5));`,
		`function chain(n) { return { next() { return n > 0 ? chain(n - 1) : null; }, v: n }; }
console.log(chain(4).next().next().next().v);`,
		// implicit-flow shapes: branches, loops and early returns whose
		// conditions guard later assignments (exercises the pc-scope stack)
		`let secret = 1, leak = 0;
if (secret > 0) { leak = 1; } else { leak = 2; }
while (leak < 3) { if (secret) { leak++; } }
console.log(leak);`,
		`function gate(s) { let out = "lo"; if (s) { if (s > 1) { out = "hi"; } } return out; }
console.log(gate(0) + gate(1) + gate(2));`,
		// crash-corpus shapes: resource-abusive programs must trip the guard
		// budgets as typed errors even after instrumentation doubles their
		// step and allocation footprint
		`while (true) { }`,
		`function f(n) { return f(n + 1); } f(0);`,
		`function even(n) { return odd(n + 1); } function odd(n) { return even(n + 1); } even(0);`,
		`let s = "xxxxxxxx"; while (true) { s = s + s; }`,
		`let a = []; while (true) { a.push(1, 2, 3, 4); }`,
		`function t(n) { setTimeout(function() { t(n + 1); }, 1000); } t(0);`,
		// attack-corpus shapes: control-flow channel encoding, declassifier
		// and endorsement abuse, and computed-key label smuggling (the
		// declassify/endorse globals exist whenever a tracker is installed,
		// so these exercise the CNF refusal paths under the flat policy)
		`const secret = "TOP"; let out = "";
for (let i = 0; i < secret.length; i++) {
  const c = secret.charCodeAt(i) % 4;
  if (c === 0) { out += "a"; } if (c === 1) { out += "b"; }
  if (c === 2) { out += "c"; } if (c === 3) { out += "d"; }
}
console.log(out);`,
		`const secret = "s3cr3t";
const copy = declassify("" + secret, "release");
console.log(copy.length);`,
		`const secret = "k";
if (secret.length > 0) { declassify(secret, "release"); endorse(true, "audit"); }`,
		`const gate = endorse(1 + 1, "audit");
if (gate) { console.log(declassify("x", "release")); }`,
		`const pkg = { kind: "report" };
const key = "p" + "ayload";
pkg[key] = "hidden";
console.log(pkg.kind, Object.keys(pkg).length);`,
		`function node1(m) { return m.split(""); }
function node2(cs) { let r = ""; for (const c of cs) { r += c; } return r; }
console.log(node2(node1("wired")));`,
		// deep-but-parseable nesting: exercises analysis, instrumentation and
		// printing recursion well below the parser's depth limit
		"console.log(" + strings.Repeat("(", 200) + "1 + 2" + strings.Repeat(")", 200) + ");",
		"const deep = " + strings.Repeat("[", 200) + "7" + strings.Repeat("]", 200) + "; console.log(deep.length);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fz.js", src)
		if err != nil {
			return
		}
		topts := taint.DefaultOptions()
		topts.ImplicitFlows = true
		analysis := taint.Analyze([]taint.File{{Name: "fz.js", Prog: prog}}, topts)
		for _, mode := range []Mode{Selective, Exhaustive} {
			res, err := Instrument(prog, Options{
				Mode:          mode,
				Selection:     Selection(analysis.SelectionFor("fz.js")),
				ImplicitFlows: true,
			})
			if err != nil {
				t.Fatalf("instrument(%v): %v", mode, err)
			}
			out := printer.Print(res.Program)
			managed, err := parser.Parse("fz2.js", out)
			if err != nil {
				t.Fatalf("instrumented output does not re-parse (%v): %v\ninput: %q\noutput:\n%s",
					mode, err, src, out)
			}
			// run on the slot-env fast path, like the production pipeline
			resolve.Resolve(managed)
			ip := interp.New()
			ip.MaxSteps = 200_000
			// the guard bounds what the step budget cannot: exponential
			// allocation and timer-driven virtual-time runaways both end in a
			// typed BudgetError instead of exhausting host memory
			ip.SetGuard(guard.New(guard.Limits{
				Fuel:          400_000,
				MaxDepth:      512,
				MaxAlloc:      1 << 20,
				DeadlineTicks: 100_000,
			}))
			pol, err := policy.ParseJSON([]byte(`{"rules":["a -> b"]}`), ip.CompileLabelFunc)
			if err != nil {
				t.Fatal(err)
			}
			tr := ip.InstallTracker(pol)
			tr.EnableImplicit()
			_ = ip.Run(managed) // runtime errors are fine; panics are not
		}
	})
}

// execOutput runs one program version in a fresh interpreter and returns
// its observable output (console lines plus every sink write), or ok=false
// if it hit a runtime error or the step budget.
func execOutput(t *testing.T, file, src string, instrumented bool, maxSteps int64) (out []string, ok bool) {
	t.Helper()
	prog, err := parser.Parse(file, src)
	if err != nil {
		t.Fatalf("%s does not parse: %v\n%s", file, err, src)
	}
	resolve.Resolve(prog)
	ip := interp.New()
	ip.MaxSteps = maxSteps
	if instrumented {
		// a rule-free policy: nothing is ever labelled, so no flow can
		// violate — the program is violation-free by construction
		pol, err := policy.ParseJSON([]byte(`{"rules":[]}`), ip.CompileLabelFunc)
		if err != nil {
			t.Fatal(err)
		}
		tr := ip.InstallTracker(pol)
		tr.Enforce = false
	}
	if err := ip.Run(prog); err != nil {
		return nil, false
	}
	out = append(out, ip.ConsoleOut...)
	for _, w := range ip.IO.Writes {
		out = append(out, fmt.Sprintf("%s>%v", w.Module, w.Value))
	}
	return out, true
}

// FuzzInstrumentEquivalence is the non-invasiveness property (C3) as a
// fuzz target: on any violation-free program — enforced here by running
// under a rule-free policy, where no flow can be blocked — selective and
// exhaustive instrumentation must preserve the program's observable
// output exactly. Nondeterministic or erroring inputs are skipped (no
// parity claim exists for them); an output mismatch or an error
// introduced by instrumentation is a real bug.
func FuzzInstrumentEquivalence(f *testing.F) {
	seeds := []string{
		`let a = 2; for (let i = 0; i < 4; i++) { a = a * a % 97; } console.log(a);`,
		`const fs = require("fs");
const ws = fs.createWriteStream("/out");
ws.write("x:" + (1 + 2));
console.log("done");`,
		`async function twice(v) { return v * 2; }
twice(21).then(v => console.log(v));`,
		`const xs = [3, 1, 2];
console.log([...xs].sort().join("-"), { ...{ k: 1 } }.k);`,
		"let s = `p${3 * 3}q`;\nconsole.log(s.toUpperCase());",
		`class Box { constructor(v) { this.v = v; } get2() { return this.v + 2; } }
console.log(new Box(5).get2());`,
		`function rec(n) { return n <= 0 ? "" : rec(n - 1) + n; }
console.log(rec(5));`,
		// nested invoke chain: parity must survive invoke-checks on receivers
		// that are themselves call results
		`const mk = v => ({ add(d) { return mk(v + d); }, v() { return v; } });
console.log(mk(1).add(2).add(3).v());`,
		// implicit-flow branch shape: condition-guarded assignments inside a
		// loop, then the result flows to a sink
		`const fs = require("fs");
const ws = fs.createWriteStream("/out");
let acc = 0;
for (let i = 0; i < 5; i++) { if (i % 2) { acc += i; } else { acc -= 1; } }
ws.write("acc:" + acc);
console.log(acc > 0 ? "pos" : "neg");`,
		// bounded crash-corpus shapes: the terminating cousins of the guard
		// battery — parity must hold right up to the edge of the budgets
		`function f(n) { return n <= 0 ? 0 : f(n - 1) + 1; } console.log(f(60));`,
		`let s = "x"; for (let i = 0; i < 10; i++) { s = s + s; } console.log(s.length);`,
		`let a = []; for (let i = 0; i < 50; i++) { a.push(i, i * i); } console.log(a.length, a[99]);`,
		`function tick(n) { if (n <= 0) { console.log("done"); return; } setTimeout(function() { tick(n - 1); }, 10); }
tick(5);`,
		"const deep = " + strings.Repeat("[", 60) + "3" + strings.Repeat("]", 60) + "; console.log(deep.length);",
		// attack-corpus shapes (minus declassify/endorse, which only exist
		// under an installed tracker and would error in the uninstrumented
		// original): channel encoding and computed-key property stashing must
		// keep exact output parity under instrumentation
		`const word = "PLAN"; let enc = "";
for (let i = 0; i < word.length; i++) {
  const k = word.charCodeAt(i) % 3;
  if (k === 0) { enc += "0"; } if (k === 1) { enc += "1"; } if (k === 2) { enc += "2"; }
}
console.log(enc);`,
		`const pkg = { kind: "report" };
const key = "pay" + "load";
pkg[key] = "stash";
console.log(pkg.kind + ":" + pkg[key] + ":" + Object.keys(pkg).join(","));`,
		`function hop1(m) { let o = ""; for (let i = 0; i < m.length; i++) { o = o + m[i]; } return o; }
function hop2(m) { return hop1(m) + "!"; }
console.log(hop2("relay"));`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	const budget = 150_000
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("eq.js", src)
		if err != nil {
			return
		}
		want, ok := execOutput(t, "eq.js", src, false, budget)
		if !ok {
			return // original errors out: nothing to compare
		}
		// self-nondeterminism guard: only claim parity for programs whose
		// output is reproducible in the first place
		again, ok := execOutput(t, "eq.js", src, false, budget)
		if !ok || len(again) != len(want) {
			return
		}
		for i := range want {
			if want[i] != again[i] {
				return
			}
		}
		analysis := taint.Analyze([]taint.File{{Name: "eq.js", Prog: prog}}, taint.DefaultOptions())
		for _, mode := range []Mode{Selective, Exhaustive} {
			res, err := Instrument(prog, Options{
				Mode:      mode,
				Selection: Selection(analysis.SelectionFor("eq.js")),
			})
			if err != nil {
				t.Fatalf("instrument(%v): %v\ninput: %q", mode, err, src)
			}
			printed := printer.Print(res.Program)
			// the tracker calls cost extra interpreter steps, so the
			// instrumented budget is larger; parity failures below are
			// therefore real, not budget artifacts
			got, ok := execOutput(t, "eq.inst.js", printed, true, 20*budget)
			if !ok {
				t.Fatalf("%v instrumentation made a clean program fail\ninput: %q\ninstrumented:\n%s",
					mode, src, printed)
			}
			if len(got) != len(want) {
				t.Fatalf("%v instrumentation changed output length: %d vs %d\ninput: %q\n got: %q\nwant: %q",
					mode, len(got), len(want), src, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v instrumentation changed output line %d:\n got: %q\nwant: %q\ninput: %q",
						mode, i, got[i], want[i], src)
				}
			}
		}
	})
}
