package ghindex

import "testing"

func TestTable2Reproduction(t *testing.T) {
	idx := Build()
	rows := Table2(idx)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string][2]int{
		"Node-RED":       {2676, 677},
		"Azure IoT":      {727, 357},
		"HomeBridge":     {171, 57},
		"OpenHAB":        {70, 14},
		"SmartThings":    {42, 29},
		"AWS Greengrass": {27, 15},
	}
	totalRepos := 0
	for _, row := range rows {
		w, ok := want[row.Framework]
		if !ok {
			t.Fatalf("unexpected framework %q", row.Framework)
		}
		if row.Results != w[0] || row.Repos != w[1] {
			t.Errorf("%s: got %d/%d, want %d/%d", row.Framework, row.Results, row.Repos, w[0], w[1])
		}
		totalRepos += row.Repos
	}
	if totalRepos != 1149 {
		t.Fatalf("total repos = %d, want 1149", totalRepos)
	}
	// Node-RED leads with 58.9%
	if rows[0].Framework != "Node-RED" {
		t.Fatalf("leader = %s", rows[0].Framework)
	}
	if rows[0].RepoShare < 58.8 || rows[0].RepoShare > 59.0 {
		t.Fatalf("Node-RED share = %.1f%%, want ≈58.9%%", rows[0].RepoShare)
	}
}

func TestSearchIsRealScan(t *testing.T) {
	idx := Build()
	// a signature that appears nowhere
	if r, n := idx.Search("no.such.signature.anywhere"); r != 0 || n != 0 {
		t.Fatalf("phantom matches: %d/%d", r, n)
	}
	// every repo has a README
	if r, _ := idx.Search("An IoT application."); r != 1149 {
		t.Fatalf("README matches = %d", r)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := Build()
	b := Build()
	if len(a.Repos) != len(b.Repos) {
		t.Fatal("nondeterministic repo count")
	}
	for i := range a.Repos {
		if a.Repos[i].Name != b.Repos[i].Name || len(a.Repos[i].Files) != len(b.Repos[i].Files) {
			t.Fatalf("repo %d differs", i)
		}
	}
}
