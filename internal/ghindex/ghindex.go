// Package ghindex is a synthetic GitHub-like code-search index used to
// regenerate Table 2 of the paper (framework popularity). The paper
// crawled GitHub for code signatures characteristic of six IoT frameworks
// ("RED.nodes.createNode" for Node-RED, etc.); this package generates a
// deterministic repository corpus with the same aggregate signature
// statistics and implements the search the crawl performed.
package ghindex

import (
	"fmt"
	"sort"
	"strings"
)

// Framework describes one IoT framework and its search signature.
type Framework struct {
	Name      string
	Signature string
	// Results and Repos are the calibrated aggregate statistics of
	// Table 2 that the generator distributes over the corpus.
	Results int
	Repos   int
}

// Frameworks lists the six frameworks of Table 2 with the published
// aggregate counts (2676/677 for Node-RED, etc.).
func Frameworks() []Framework {
	return []Framework{
		{Name: "Node-RED", Signature: "RED.nodes.createNode", Results: 2676, Repos: 677},
		{Name: "Azure IoT", Signature: "ModuleClient.fromEnvironment", Results: 727, Repos: 357},
		{Name: "HomeBridge", Signature: "homebridge.registerAccessory", Results: 171, Repos: 57},
		{Name: "OpenHAB", Signature: "openhab.rules.JSRule", Results: 70, Repos: 14},
		{Name: "SmartThings", Signature: "smartapp.configured", Results: 42, Repos: 29},
		{Name: "AWS Greengrass", Signature: "greengrasssdk.publish", Results: 27, Repos: 15},
	}
}

// File is one indexed source file.
type File struct {
	Path    string
	Content string
}

// Repo is one indexed repository.
type Repo struct {
	Name  string
	Files []File
}

// Index is the searchable corpus.
type Index struct {
	Repos []Repo
}

// Build generates the deterministic corpus: for each framework, the
// calibrated number of repositories, with the signature occurrences
// distributed over their files, plus signature-free noise files.
func Build() *Index {
	idx := &Index{}
	for _, fw := range Frameworks() {
		base := fw.Results / fw.Repos
		extra := fw.Results % fw.Repos
		for r := 0; r < fw.Repos; r++ {
			occurrences := base
			if r < extra {
				occurrences++
			}
			repo := Repo{Name: fmt.Sprintf("%s/repo-%03d", slug(fw.Name), r)}
			for o := 0; o < occurrences; o++ {
				repo.Files = append(repo.Files, File{
					Path:    fmt.Sprintf("nodes/node-%d.js", o),
					Content: nodeFile(fw.Signature, r, o),
				})
			}
			// noise files with no signature
			repo.Files = append(repo.Files, File{
				Path:    "package.json",
				Content: fmt.Sprintf(`{"name":"repo-%03d","version":"1.%d.0"}`, r, r%9),
			}, File{
				Path:    "README.md",
				Content: "# " + repo.Name + "\nAn IoT application.\n",
			})
			idx.Repos = append(idx.Repos, repo)
		}
	}
	return idx
}

func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// nodeFile renders a plausible source file containing exactly one
// signature occurrence.
func nodeFile(signature string, r, o int) string {
	return fmt.Sprintf(`module.exports = function(ctx) {
  // generated node %d of repository %d
  function Handler(config) {
    %s(this, config);
    this.on("input", function(msg) { this.send(msg); });
  }
};
`, o, r, signature)
}

// SearchResult is one Table 2 row computed from the index.
type SearchResult struct {
	Framework string
	Results   int // total signature matches
	Repos     int // distinct repositories with ≥1 match
	RepoShare float64
}

// Search scans every indexed file for the signature, exactly as the
// paper's crawl did, and returns (match count, distinct repositories).
func (idx *Index) Search(signature string) (results, repos int) {
	for _, repo := range idx.Repos {
		found := false
		for _, f := range repo.Files {
			n := strings.Count(f.Content, signature)
			if n > 0 {
				results += n
				found = true
			}
		}
		if found {
			repos++
		}
	}
	return results, repos
}

// Table2 runs the six searches and computes repository shares (the
// percentages of Table 2, over the total repositories found).
func Table2(idx *Index) []SearchResult {
	var rows []SearchResult
	totalRepos := 0
	for _, fw := range Frameworks() {
		results, repos := idx.Search(fw.Signature)
		rows = append(rows, SearchResult{Framework: fw.Name, Results: results, Repos: repos})
		totalRepos += repos
	}
	for i := range rows {
		rows[i].RepoShare = 100 * float64(rows[i].Repos) / float64(totalRepos)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Repos > rows[j].Repos })
	return rows
}
