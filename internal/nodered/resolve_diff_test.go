package nodered

import (
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/interp"
)

// runHealthScenario deploys the resilience flow (a throwing node beside a
// healthy recorder) under one execution mode, pumps messages, and returns
// a canonical rendering of everything observable: the Health counters, the
// sink writes, and the console output.
func runHealthScenario(t *testing.T, noResolve bool) string {
	t.Helper()
	ip := interp.New()
	ip.NoResolve = noResolve
	rt := New(ip)
	for name, src := range map[string]string{
		"upper.js":  upperNodePkg,
		"boom.js":   boomNodePkg,
		"record.js": recordNodePkg,
	} {
		if err := rt.LoadPackage(name, src); err != nil {
			t.Fatal(err)
		}
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "src", Type: "upper", Wires: [][]string{{"bad", "ok"}}},
		{ID: "bad", Type: "boom"},
		{ID: "ok", Type: "record", Config: map[string]any{"path": "/ok"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := 0; i < 5; i++ {
		if err := rt.Inject("src", mkMsg(fmt.Sprintf("m%d", i))); err != nil {
			fmt.Fprintf(&b, "inject %d: %v\n", i, err)
		}
	}
	fmt.Fprintf(&b, "health: %+v\n", rt.Health)
	for _, w := range ip.IO.Writes {
		fmt.Fprintf(&b, "write: %s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
	}
	for _, line := range ip.ConsoleOut {
		fmt.Fprintf(&b, "console: %s\n", line)
	}
	return b.String()
}

// The flow runtime's degradation counters must not depend on the
// execution mode: handler errors, drops and sink writes are identical on
// the slot-env fast path and the -noresolve map walk.
func TestHealthCountersResolveDifferential(t *testing.T) {
	slot := runHealthScenario(t, false)
	mapWalk := runHealthScenario(t, true)
	if slot != mapWalk {
		t.Fatalf("health differential diverged:\n--- slot\n%s--- noresolve\n%s", slot, mapWalk)
	}
	// the breaker quarantines the throwing node after 3 consecutive
	// failures, so the counters must show 3 errors and 2 drops
	if !strings.Contains(slot, "HandlerErrors:3") || !strings.Contains(slot, "Dropped:2") {
		t.Fatalf("scenario did not exercise handler errors:\n%s", slot)
	}
}
