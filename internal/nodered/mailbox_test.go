package nodered

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"turnstile/internal/faults"
	"turnstile/internal/interp"
)

// fanNodePkg sends four derived messages per input — the backpressure
// workload.
const fanNodePkg = `
module.exports = function(RED) {
  function FanNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      for (let i = 0; i < 4; i++) {
        node.send({ payload: msg.payload + ":" + i });
      }
    });
  }
  RED.nodes.registerType("fan", FanNode);
};
`

func TestMailboxLinearFlowMatchesSynchronous(t *testing.T) {
	build := func(cap int) *Runtime {
		rt := newRuntime(t)
		rt.MailboxCap = cap
		for _, p := range []struct{ name, src string }{
			{"upper.js", upperNodePkg}, {"sink.js", sinkNodePkg},
		} {
			if err := rt.LoadPackage(p.name, p.src); err != nil {
				t.Fatal(err)
			}
		}
		flow := &Flow{Nodes: []NodeDef{
			{ID: "u", Type: "upper", Wires: [][]string{{"s"}}},
			{ID: "s", Type: "file-sink", Config: map[string]any{"path": "/out"}},
		}}
		if err := rt.Deploy(flow); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	sync := build(0)
	queued := build(8)
	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("m%d", i)
		if err := sync.Inject("u", mkMsg(msg)); err != nil {
			t.Fatal(err)
		}
		if err := queued.Inject("u", mkMsg(msg)); err != nil {
			t.Fatal(err)
		}
	}
	sw, qw := sync.IP.IO.WritesTo("fs"), queued.IP.IO.WritesTo("fs")
	if len(sw) != len(qw) {
		t.Fatalf("write counts diverged: sync %d vs queued %d", len(sw), len(qw))
	}
	for i := range sw {
		if sw[i].Value != qw[i].Value || sw[i].Target != qw[i].Target {
			t.Fatalf("write %d diverged: %+v vs %+v", i, sw[i], qw[i])
		}
	}
	if len(queued.DeadLetters) != 0 || queued.Health.DeadLettered != 0 {
		t.Fatalf("linear flow dead-lettered: %+v", queued.DeadLetters)
	}
}

func TestMailboxBackpressureShedsToDeadLetterQueue(t *testing.T) {
	rt := newRuntime(t)
	rt.MailboxCap = 2
	if err := rt.LoadPackage("fan.js", fanNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadPackage("sink.js", sinkNodePkg); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "f", Type: "fan", Wires: [][]string{{"s"}}},
		{ID: "s", Type: "file-sink", Config: map[string]any{"path": "/out"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	// the fan handler enqueues 4 messages for "s" in one invocation; with a
	// cap of 2, the last two are shed before the drain loop can pop any
	if err := rt.Inject("f", mkMsg("x")); err != nil {
		t.Fatal(err)
	}
	if w := rt.IP.IO.WritesTo("fs"); len(w) != 2 {
		t.Fatalf("writes = %+v", w)
	}
	if rt.Health.DeadLettered != 2 || len(rt.DeadLetters) != 2 {
		t.Fatalf("health = %+v, dlq = %+v", rt.Health, rt.DeadLetters)
	}
	for _, d := range rt.DeadLetters {
		if d.NodeID != "s" || d.Reason != ReasonOverflow {
			t.Fatalf("dead letter = %+v", d)
		}
	}
}

func TestMailboxQuarantinedTargetDeadLetters(t *testing.T) {
	rt := newRuntime(t)
	rt.MailboxCap = 4
	if err := rt.LoadPackage("boom.js", boomNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "bad", Type: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultBreakerThreshold; i++ {
		if err := rt.Inject("bad", mkMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Quarantined("bad") {
		t.Fatal("node not quarantined at threshold")
	}
	if err := rt.Inject("bad", mkMsg("post")); err != nil {
		t.Fatal(err)
	}
	if rt.Health.Dropped != 1 || rt.Health.DeadLettered != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
	last := rt.DeadLetters[len(rt.DeadLetters)-1]
	if last.NodeID != "bad" || last.Reason != ReasonQuarantined {
		t.Fatalf("dead letter = %+v", last)
	}
}

func TestMailboxCycleBudgetStopsLoops(t *testing.T) {
	rt := newRuntime(t)
	rt.MailboxCap = 1
	rt.MailboxBudget = 64
	if err := rt.LoadPackage("echo.js", `
module.exports = function(RED) {
  function EchoNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) { node.send(msg); });
  }
  RED.nodes.registerType("echo", EchoNode);
};
`); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "a", Type: "echo", Wires: [][]string{{"b"}}},
		{ID: "b", Type: "echo", Wires: [][]string{{"a"}}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	err := rt.Inject("a", mkMsg("loop"))
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestSupervisorRestartsWithExponentialBackoff(t *testing.T) {
	rt := newRuntime(t)
	rt.RestartBase = 100
	if err := rt.LoadPackage("boom.js", boomNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "bad", Type: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	quarantine := func() {
		t.Helper()
		for !rt.Quarantined("bad") {
			if err := rt.Inject("bad", mkMsg("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	quarantine()
	rt.IP.Clock.Advance(99)
	if !rt.Quarantined("bad") {
		t.Fatal("restarted before the backoff elapsed")
	}
	rt.IP.Clock.Advance(1)
	if rt.Quarantined("bad") {
		t.Fatal("supervisor did not restart the node")
	}
	if rt.Health.Restarts != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
	// the restart reset the failure count: the node runs again
	before := len(rt.Deliveries)
	if err := rt.Inject("bad", mkMsg("again")); err != nil {
		t.Fatal(err)
	}
	if len(rt.Deliveries) != before+1 {
		t.Fatal("restarted node did not execute")
	}
	// second quarantine backs off twice as long
	quarantine()
	rt.IP.Clock.Advance(199)
	if !rt.Quarantined("bad") {
		t.Fatal("second restart ignored the doubled backoff")
	}
	rt.IP.Clock.Advance(1)
	if rt.Quarantined("bad") || rt.Health.Restarts != 2 {
		t.Fatalf("health = %+v, quarantined = %v", rt.Health, rt.Quarantined("bad"))
	}
	restartNote := false
	for _, line := range rt.IP.ConsoleOut {
		if strings.Contains(line, "restarted by supervisor") {
			restartNote = true
		}
	}
	if !restartNote {
		t.Fatalf("console = %v", rt.IP.ConsoleOut)
	}
}

func TestSupervisorBackoffCap(t *testing.T) {
	rt := newRuntime(t)
	rt.RestartBase = 100
	rt.RestartMax = 150
	if err := rt.LoadPackage("boom.js", boomNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "bad", Type: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	quarantine := func() {
		t.Helper()
		for !rt.Quarantined("bad") {
			if err := rt.Inject("bad", mkMsg("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	quarantine()
	rt.IP.Clock.Advance(100)
	if rt.Quarantined("bad") {
		t.Fatal("first restart late")
	}
	quarantine()
	// uncapped this would be 200 ticks; RestartMax pins it at 150
	rt.IP.Clock.Advance(149)
	if !rt.Quarantined("bad") {
		t.Fatal("restarted before the capped backoff")
	}
	rt.IP.Clock.Advance(1)
	if rt.Quarantined("bad") {
		t.Fatal("capped backoff not honoured")
	}
}

func TestSupervisorDisabledByDefault(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("boom.js", boomNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "bad", Type: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultBreakerThreshold; i++ {
		if err := rt.Inject("bad", mkMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	rt.IP.Clock.Advance(1 << 20)
	if !rt.Quarantined("bad") || rt.Health.Restarts != 0 {
		t.Fatalf("supervisor ran without RestartBase: %+v", rt.Health)
	}
}

func TestQueuedCatchHandlerThrowDoesNotRecurse(t *testing.T) {
	rt := newRuntime(t)
	rt.MailboxCap = 4
	for _, p := range []struct{ name, src string }{
		{"boom.js", boomNodePkg},
		{"badcatch.js", `
module.exports = function(RED) {
  function BadCatchNode(config) {
    RED.nodes.createNode(this, config);
    this.on("input", function(msg) { throw new Error("catch is broken too"); });
  }
  RED.nodes.registerType("catch", BadCatchNode);
};
`},
	} {
		if err := rt.LoadPackage(p.name, p.src); err != nil {
			t.Fatal(err)
		}
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "bad", Type: "boom"},
		{ID: "trap", Type: "catch"},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("bad", mkMsg("x")); err != nil {
		t.Fatal(err)
	}
	// one error from the boom node, one from the catch handler; the catch
	// handler's own error is never re-dispatched, so the drain terminates
	if rt.Health.HandlerErrors != 2 || rt.Health.Caught != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
}

// runMailboxScenario drives a fixed workload — fan-out under a tight
// mailbox cap, a persistently failing node that trips the breaker, a
// supervisor on the virtual clock, and a catch chain — and returns the
// full observable record: the sink trace, the dead-letter queue, the
// console, and the Health counters. It never touches *testing.T so it can
// run on worker goroutines.
func runMailboxScenario(schedule *faults.Schedule) (string, Health, error) {
	ip := interp.New()
	if schedule != nil {
		ip.InstallFaults(schedule)
	}
	rt := New(ip)
	rt.MailboxCap = 2
	rt.RestartBase = 100
	rt.RestartMax = 400
	for _, p := range []struct{ name, src string }{
		{"fan.js", fanNodePkg},
		{"boom.js", boomNodePkg},
		{"catch.js", catchNodePkg},
		{"record.js", recordNodePkg},
	} {
		if err := rt.LoadPackage(p.name, p.src); err != nil {
			return "", Health{}, err
		}
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "src", Type: "fan", Wires: [][]string{{"out", "bad"}}},
		{ID: "out", Type: "record", Config: map[string]any{"path": "/out"}},
		{ID: "bad", Type: "boom"},
		{ID: "trap", Type: "catch", Wires: [][]string{{"errlog"}}},
		{ID: "errlog", Type: "record", Config: map[string]any{"path": "/errors"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		return "", Health{}, err
	}
	for i := 0; i < 6; i++ {
		if err := rt.Inject("src", mkMsg(fmt.Sprintf("m%d", i))); err != nil {
			return "", Health{}, err
		}
		// advance the virtual clock between rounds so supervisor restarts
		// fire at deterministic ticks
		ip.Clock.Advance(60)
	}
	var b strings.Builder
	for _, w := range ip.IO.Writes {
		fmt.Fprintf(&b, "%s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
	}
	for _, d := range rt.DeadLetters {
		fmt.Fprintf(&b, "dlq %s %s\n", d.NodeID, d.Reason)
	}
	for _, line := range ip.ConsoleOut {
		fmt.Fprintf(&b, "console %s\n", line)
	}
	return b.String(), rt.Health, nil
}

// mailboxEquivalence asserts that 8 concurrent runs of the scenario each
// reproduce the sequential golden record byte for byte — the queued
// engine, DLQ, breaker and supervisor hold no cross-runtime state and
// depend on nothing scheduler-ordered.
func mailboxEquivalence(t *testing.T, schedule *faults.Schedule) {
	t.Helper()
	want, wantHealth, err := runMailboxScenario(schedule)
	if err != nil {
		t.Fatal(err)
	}
	if want == "" {
		t.Fatal("scenario produced no observable record")
	}
	const workers = 8
	traces := make([]string, workers)
	healths := make([]Health, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			traces[w], healths[w], errs[w] = runMailboxScenario(schedule)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if traces[w] != want {
			t.Fatalf("worker %d trace diverged:\n--- sequential\n%s--- worker\n%s", w, want, traces[w])
		}
		if healths[w] != wantHealth {
			t.Fatalf("worker %d health = %+v, want %+v", w, healths[w], wantHealth)
		}
	}
}

func TestMailboxParallelEquivalence(t *testing.T) {
	mailboxEquivalence(t, nil)
}

func TestMailboxParallelEquivalenceUnderFaults(t *testing.T) {
	mailboxEquivalence(t, &faults.Schedule{Seed: 7, Rules: []faults.Rule{
		{Module: "fs", Op: "writeFileSync", Mode: faults.ModeFlaky, K: 3, Error: "EIO: injected write failure"},
		{Module: "*", Mode: faults.ModeDelay, Delay: 3, Prob: 0.5},
	}})
}

func TestMailboxScenarioExercisesEveryCounter(t *testing.T) {
	// guard against the golden scenario silently going stale: it must keep
	// exercising backpressure, quarantine, restarts and the catch chain
	_, h, err := runMailboxScenario(nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.HandlerErrors == 0 || h.Caught == 0 || h.DeadLettered == 0 || h.Restarts == 0 || h.Dropped == 0 {
		t.Fatalf("scenario no longer exercises the full failure surface: %+v", h)
	}
}
