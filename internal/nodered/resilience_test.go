package nodered

import (
	"strings"
	"testing"

	"turnstile/internal/dift"
	"turnstile/internal/faults"
	"turnstile/internal/interp"
	"turnstile/internal/policy"
)

const boomNodePkg = `
module.exports = function(RED) {
  function BoomNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      throw new Error("boom: " + msg.payload);
    });
  }
  RED.nodes.registerType("boom", BoomNode);
};
`

const catchNodePkg = `
module.exports = function(RED) {
  function CatchNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      node.send(msg);
    });
  }
  RED.nodes.registerType("catch", CatchNode);
};
`

const recordNodePkg = `
module.exports = function(RED) {
  function RecordNode(config) {
    RED.nodes.createNode(this, config);
    const fs = require("fs");
    const node = this;
    node.on("input", function(msg) {
      let text = msg.payload;
      if (msg.error) { text = msg.error.source.id + "|" + msg.error.message; }
      fs.writeFileSync(config.path, text);
    });
  }
  RED.nodes.registerType("record", RecordNode);
};
`

func loadResiliencePkgs(t *testing.T, rt *Runtime) {
	t.Helper()
	for name, src := range map[string]string{
		"upper.js":  upperNodePkg,
		"boom.js":   boomNodePkg,
		"catch.js":  catchNodePkg,
		"record.js": recordNodePkg,
	} {
		if err := rt.LoadPackage(name, src); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHandlerThrowIsolated(t *testing.T) {
	// a throwing node must not abort the flow: its sibling on the same
	// fan-out port still receives the message
	rt := newRuntime(t)
	loadResiliencePkgs(t, rt)
	flow := &Flow{Nodes: []NodeDef{
		{ID: "src", Type: "upper", Wires: [][]string{{"bad", "ok"}}},
		{ID: "bad", Type: "boom"},
		{ID: "ok", Type: "record", Config: map[string]any{"path": "/ok"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("src", mkMsg("x")); err != nil {
		t.Fatalf("throw escaped the runtime: %v", err)
	}
	if rt.Health.HandlerErrors != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
	w := rt.IP.IO.WritesTo("fs")
	if len(w) != 1 || w[0].Value != "X" {
		t.Fatalf("sibling starved: writes = %+v", w)
	}
}

func TestSiblingListenersRunAfterThrow(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("two.js", `
module.exports = function(RED) {
  function TwoNode(config) {
    RED.nodes.createNode(this, config);
    const fs = require("fs");
    const node = this;
    node.on("input", function(msg) { throw new Error("first"); });
    node.on("input", function(msg) { fs.writeFileSync("/second", msg.payload); });
  }
  RED.nodes.registerType("two", TwoNode);
};
`); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "n", Type: "two"}}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("n", mkMsg("p")); err != nil {
		t.Fatal(err)
	}
	if w := rt.IP.IO.WritesTo("fs"); len(w) != 1 || w[0].Target != "/second" {
		t.Fatalf("second listener starved: %+v", w)
	}
}

func TestCatchNodeReceivesError(t *testing.T) {
	rt := newRuntime(t)
	loadResiliencePkgs(t, rt)
	flow := &Flow{Nodes: []NodeDef{
		{ID: "bad", Type: "boom"},
		{ID: "trap", Type: "catch", Wires: [][]string{{"log"}}},
		{ID: "log", Type: "record", Config: map[string]any{"path": "/errors"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("bad", mkMsg("42")); err != nil {
		t.Fatal(err)
	}
	w := rt.IP.IO.WritesTo("fs")
	if len(w) != 1 {
		t.Fatalf("catch chain produced %+v", w)
	}
	got := interp.ToString(w[0].Value)
	if !strings.Contains(got, "bad|") || !strings.Contains(got, "boom: 42") {
		t.Fatalf("error message = %q", got)
	}
	if rt.Health.Caught != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
}

func TestThrowingCatchHandlerDoesNotRecurse(t *testing.T) {
	rt := newRuntime(t)
	loadResiliencePkgs(t, rt)
	if err := rt.LoadPackage("badcatch.js", `
module.exports = function(RED) {
  function BadCatchNode(config) {
    RED.nodes.createNode(this, config);
    this.on("input", function(msg) { throw new Error("catch is broken too"); });
  }
  RED.nodes.registerType("bad-catch", BadCatchNode);
};
`); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "bad", Type: "boom"},
		{ID: "trap", Type: "catch"},
	}}
	// replace the catch ctor with the throwing one for node "trap"
	rt.ctors["catch"] = rt.ctors["bad-catch"]
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("bad", mkMsg("x")); err != nil {
		t.Fatal(err)
	}
	// one error from the boom node, one from the catch handler itself;
	// the catch handler's error is not re-dispatched
	if rt.Health.HandlerErrors != 2 || rt.Health.Caught != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
}

func TestCircuitBreakerQuarantine(t *testing.T) {
	rt := newRuntime(t)
	loadResiliencePkgs(t, rt)
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "bad", Type: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultBreakerThreshold; i++ {
		if err := rt.Inject("bad", mkMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Quarantined("bad") {
		t.Fatal("node not quarantined at threshold")
	}
	before := len(rt.Deliveries)
	if err := rt.Inject("bad", mkMsg("post")); err != nil {
		t.Fatal(err)
	}
	if len(rt.Deliveries) != before {
		t.Fatal("quarantined node still executed")
	}
	if rt.Health.Dropped != 1 || rt.Health.HandlerErrors != DefaultBreakerThreshold {
		t.Fatalf("health = %+v", rt.Health)
	}
	quarantineNote := false
	for _, line := range rt.IP.ConsoleOut {
		if strings.Contains(line, "quarantined") {
			quarantineNote = true
		}
	}
	if !quarantineNote {
		t.Fatalf("console = %v", rt.IP.ConsoleOut)
	}
}

func TestBreakerResetsOnSuccess(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("alt.js", `
module.exports = function(RED) {
  let n = 0;
  function AltNode(config) {
    RED.nodes.createNode(this, config);
    this.on("input", function(msg) {
      n = n + 1;
      if (n % 2 === 1) { throw new Error("odd call"); }
    });
  }
  RED.nodes.registerType("alt", AltNode);
};
`); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "a", Type: "alt"}}}); err != nil {
		t.Fatal(err)
	}
	// alternating fail/success never reaches the consecutive threshold
	for i := 0; i < 10; i++ {
		if err := rt.Inject("a", mkMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Quarantined("a") {
		t.Fatal("breaker tripped without consecutive failures")
	}
	if rt.Health.HandlerErrors != 5 {
		t.Fatalf("health = %+v", rt.Health)
	}
}

func TestBreakerDisabled(t *testing.T) {
	rt := newRuntime(t)
	loadResiliencePkgs(t, rt)
	rt.BreakerThreshold = 0
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "bad", Type: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := rt.Inject("bad", mkMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Quarantined("bad") {
		t.Fatal("disabled breaker still tripped")
	}
	if rt.Health.HandlerErrors != 10 {
		t.Fatalf("health = %+v", rt.Health)
	}
}

func TestDeploySurvivesThrowingCtor(t *testing.T) {
	rt := newRuntime(t)
	loadResiliencePkgs(t, rt)
	if err := rt.LoadPackage("badctor.js", `
module.exports = function(RED) {
  function BadCtorNode(config) {
    RED.nodes.createNode(this, config);
    throw new Error("cannot init hardware");
  }
  RED.nodes.registerType("bad-ctor", BadCtorNode);
};
`); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "src", Type: "upper", Wires: [][]string{{"dead", "ok"}}},
		{ID: "dead", Type: "bad-ctor"},
		{ID: "ok", Type: "record", Config: map[string]any{"path": "/ok"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatalf("throwing ctor aborted Deploy: %v", err)
	}
	if rt.Health.CtorErrors != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
	// the degraded node is routable (a no-op shell); the healthy sibling
	// still works
	if err := rt.Inject("src", mkMsg("m")); err != nil {
		t.Fatal(err)
	}
	if w := rt.IP.IO.WritesTo("fs"); len(w) != 1 || w[0].Value != "M" {
		t.Fatalf("writes = %+v", w)
	}
}

func TestFaultedSinkKeepsLabelsAndFlowRunning(t *testing.T) {
	// a host-op failure inside a node handler is isolated by the runtime,
	// and the DIFT labels on the message survive to the next delivery
	ip := interp.New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "Payload": "v => \"sensitive\"" },
	  "rules": [ "sensitive -> archive" ]
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = false
	ip.InstallFaults(&faults.Schedule{Rules: []faults.Rule{
		{Module: "fs", Op: "writeFileSync", Mode: faults.ModeFlaky, K: 1, Error: "EIO: disk warming up"},
	}})
	rt := New(ip)
	err = rt.LoadPackage("lbl.js", `
module.exports = function(RED) {
  function LabelNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      msg.payload = __t.label(msg.payload, "Payload");
      node.send(msg);
    });
  }
  RED.nodes.registerType("labeler", LabelNode);
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadPackage("sink.js", sinkNodePkg); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "lab", Type: "labeler", Wires: [][]string{{"out"}}},
		{ID: "out", Type: "file-sink", Config: map[string]any{"path": "/arch"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	// first message: the sink's writeFileSync fails; the throw is isolated
	if err := rt.Inject("lab", mkMsg("frame-1")); err != nil {
		t.Fatalf("fault escaped the runtime: %v", err)
	}
	if rt.Health.HandlerErrors != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
	// second message: the flaky budget is spent, the tracked write lands
	if err := rt.Inject("lab", mkMsg("frame-2")); err != nil {
		t.Fatal(err)
	}
	w := rt.IP.IO.WritesTo("fs")
	if len(w) != 1 || w[0].Value != "frame-2" {
		t.Fatalf("writes = %+v", w)
	}
	if _, boxed := w[0].Value.(*dift.Box); boxed {
		t.Fatal("sink write not unwrapped")
	}
	// both payloads were labelled — the error path did not skip tracking
	if st := ip.Tracker.Stats(); st.Labelled != 2 {
		t.Fatalf("tracker stats = %+v", st)
	}
}

func TestRuntimeErrorStillPropagates(t *testing.T) {
	// step-budget exhaustion is an interpreter failure, not a node
	// failure: isolation must not swallow it
	rt := newRuntime(t)
	rt.IP.MaxSteps = 500
	if err := rt.LoadPackage("spin.js", `
module.exports = function(RED) {
  function SpinNode(config) {
    RED.nodes.createNode(this, config);
    this.on("input", function(msg) { while (true) { msg.payload = msg.payload + 1; } });
  }
  RED.nodes.registerType("spin", SpinNode);
};
`); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "s", Type: "spin"}}}); err != nil {
		t.Fatal(err)
	}
	err := rt.Inject("s", mkMsg(0))
	if err == nil || !strings.Contains(err.Error(), "step") {
		t.Fatalf("err = %v", err)
	}
	if rt.Health.HandlerErrors != 0 {
		t.Fatalf("runtime error miscounted as handler error: %+v", rt.Health)
	}
}
