package nodered

import (
	"fmt"

	"turnstile/internal/interp"
)

// This file is the queued delivery engine and the flow supervisor.
//
// With Runtime.MailboxCap > 0, node.send no longer delivers recursively:
// messages are appended to a global FIFO and drained one at a time from
// the top-level Inject, with at most MailboxCap messages pending per
// target node. A full mailbox applies backpressure by shedding: the
// message goes to the dead-letter queue instead of being buffered without
// bound or blocking the sender (there is no blocking in a single-threaded
// event loop — a sender that waited on a full downstream mailbox would
// deadlock the whole flow). Messages addressed to quarantined nodes are
// dead-lettered the same way, so the circuit breaker's sheds become
// observable records instead of silent drops.
//
// With Runtime.RestartBase > 0, a supervisor schedules quarantined nodes
// for restart on the virtual clock with bounded exponential backoff:
// RestartBase << priorRestarts ticks, capped at RestartMax. Restarts are
// deterministic — they fire during Clock.Advance, never from a host
// timer — so a run's recovery behaviour is a pure function of its inputs.

// queued is one message waiting in the global FIFO.
type queued struct {
	nodeID string
	msg    interp.Value
}

// DeadLetter records one message the queued engine shed instead of
// delivering.
type DeadLetter struct {
	// NodeID is the target the message was addressed to.
	NodeID string
	// Reason is ReasonOverflow or ReasonQuarantined.
	Reason string
	// Msg is the shed message.
	Msg interp.Value
}

// Dead-letter reasons.
const (
	// ReasonOverflow: the target's mailbox already held MailboxCap
	// messages.
	ReasonOverflow = "overflow"
	// ReasonQuarantined: the target was quarantined by the circuit
	// breaker.
	ReasonQuarantined = "quarantined"
)

// DefaultMailboxBudget is the per-drain delivery cap of the queued
// engine — its cyclic-flow protection, standing in for the synchronous
// engine's recursion depth guard.
const DefaultMailboxBudget = 4096

// enqueue appends a message to the global FIFO, or dead-letters it when
// the target is quarantined or its mailbox is full.
func (rt *Runtime) enqueue(nodeID string, msg interp.Value) {
	if rt.quarantined[nodeID] {
		rt.Health.Dropped++
		rt.deadLetter(nodeID, ReasonQuarantined, msg)
		return
	}
	if rt.pending == nil {
		rt.pending = make(map[string]int)
	}
	if rt.pending[nodeID] >= rt.MailboxCap {
		rt.deadLetter(nodeID, ReasonOverflow, msg)
		return
	}
	rt.pending[nodeID]++
	rt.queue = append(rt.queue, queued{nodeID: nodeID, msg: msg})
}

// deadLetter records a shed message.
func (rt *Runtime) deadLetter(nodeID, reason string, msg interp.Value) {
	rt.DeadLetters = append(rt.DeadLetters, DeadLetter{NodeID: nodeID, Reason: reason, Msg: msg})
	rt.Health.DeadLettered++
	if m := rt.IP.Metrics; m != nil {
		m.Add("nodered.deadletter."+reason, 1)
	}
}

// drain delivers queued messages in FIFO order until the queue is empty.
// Handlers running inside a delivery enqueue (via send) rather than
// recurse, so the stack stays flat no matter how deep the flow fans out.
// A reentrant call (a handler that somehow reaches Inject) is a no-op:
// the outer drain loop will pick up whatever it enqueued.
func (rt *Runtime) drain() error {
	if rt.draining {
		return nil
	}
	rt.draining = true
	defer func() { rt.draining = false }()
	budget := rt.MailboxBudget
	if budget <= 0 {
		budget = DefaultMailboxBudget
	}
	delivered := 0
	for len(rt.queue) > 0 {
		q := rt.queue[0]
		rt.queue = rt.queue[1:]
		rt.pending[q.nodeID]--
		delivered++
		if delivered > budget {
			return fmt.Errorf("nodered: mailbox delivery budget (%d) exceeded (cyclic flow?)", budget)
		}
		// quarantine may have happened after this message was enqueued
		if rt.quarantined[q.nodeID] {
			rt.Health.Dropped++
			rt.deadLetter(q.nodeID, ReasonQuarantined, q.msg)
			continue
		}
		node, ok := rt.instances[q.nodeID]
		if !ok {
			return fmt.Errorf("nodered: wire to unknown node %q", q.nodeID)
		}
		if err := rt.deliver(node, q.nodeID, q.msg); err != nil {
			return err
		}
	}
	return nil
}

// ReplayDeadLetters re-enqueues every dead-lettered message, in shed
// order, and drains the queue under a fresh delivery budget (each drain
// call starts a new MailboxBudget). It refuses to replay while any
// deployed node's breaker is open — re-injecting the very traffic that
// tripped the breaker before its cooldown elapsed would defeat the
// supervisor's backoff; callers should Advance the clock until the
// restart fires (half-open is fine: the first replayed message is the
// probe). Messages may dead-letter again — overflow or a re-opened
// breaker produce fresh DLQ records. Returns how many messages were
// re-enqueued.
func (rt *Runtime) ReplayDeadLetters() (int, error) {
	if rt.MailboxCap <= 0 {
		return 0, fmt.Errorf("nodered: dead-letter replay needs the queued engine (MailboxCap > 0)")
	}
	if rt.BreakerOpen() {
		return 0, fmt.Errorf("nodered: refusing dead-letter replay while a breaker is open")
	}
	letters := rt.DeadLetters
	rt.DeadLetters = nil
	for _, d := range letters {
		rt.enqueue(d.NodeID, d.Msg)
	}
	if m := rt.IP.Metrics; m != nil {
		m.Add("nodered.replay", int64(len(letters)))
	}
	return len(letters), rt.drain()
}

// scheduleRestart arms the supervisor for a freshly quarantined node:
// after a backoff of RestartBase << priorRestarts virtual ticks (capped
// at RestartMax) the node is un-quarantined into the breaker's half-open
// state — the next delivery is a probe. A failed probe re-quarantines
// immediately at the next backoff step, so a permanently broken node
// converges to the capped cadence instead of flapping; a successful probe
// closes the breaker fully and resets the backoff ladder.
func (rt *Runtime) scheduleRestart(nodeID string) {
	if rt.RestartBase <= 0 {
		return
	}
	if rt.restartCount == nil {
		rt.restartCount = make(map[string]int)
	}
	prior := rt.restartCount[nodeID]
	rt.restartCount[nodeID] = prior + 1
	max := rt.RestartMax
	if max <= 0 {
		max = rt.RestartBase << 6
	}
	delay := rt.RestartBase
	for i := 0; i < prior && delay < max; i++ {
		delay <<= 1
	}
	if delay > max {
		delay = max
	}
	rt.IP.Clock.AfterFunc(delay, func() {
		if !rt.quarantined[nodeID] {
			return
		}
		rt.quarantined[nodeID] = false
		rt.failures[nodeID] = 0
		if rt.halfOpen == nil {
			rt.halfOpen = make(map[string]bool)
		}
		rt.halfOpen[nodeID] = true
		rt.Health.Restarts++
		rt.IP.ConsoleOut = append(rt.IP.ConsoleOut,
			fmt.Sprintf("nodered: node %s restarted by supervisor (attempt %d, backoff %d ticks); breaker half-open", nodeID, prior+1, delay))
		if m := rt.IP.Metrics; m != nil {
			m.Add("nodered.restart."+nodeID, 1)
		}
	})
}
