package nodered

import (
	"strings"
	"testing"

	"turnstile/internal/dift"
	"turnstile/internal/interp"
	"turnstile/internal/policy"
)

const upperNodePkg = `
module.exports = function(RED) {
  function UpperNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg, send, done) {
      msg.payload = msg.payload.toUpperCase();
      send(msg);
      done();
    });
  }
  RED.nodes.registerType("upper", UpperNode);
};
`

const sinkNodePkg = `
module.exports = function(RED) {
  function FileSinkNode(config) {
    RED.nodes.createNode(this, config);
    const fs = require("fs");
    const node = this;
    node.on("input", function(msg) {
      fs.writeFileSync(config.path, msg.payload);
    });
  }
  RED.nodes.registerType("file-sink", FileSinkNode);
};
`

func newRuntime(t *testing.T) *Runtime {
	t.Helper()
	return New(interp.New())
}

func mkMsg(payload interp.Value) *interp.Object {
	msg := interp.NewObject()
	msg.Set("payload", payload)
	return msg
}

func TestLoadAndRegister(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("upper.js", upperNodePkg); err != nil {
		t.Fatal(err)
	}
	types := rt.RegisteredTypes()
	if len(types) != 1 || types[0] != "upper" {
		t.Fatalf("types = %v", types)
	}
}

func TestTopLevelRegisterStyle(t *testing.T) {
	rt := newRuntime(t)
	err := rt.LoadPackage("direct.js", `
function PassNode(config) {
  RED.nodes.createNode(this, config);
  this.on("input", function(msg, send) { send(msg); });
}
RED.nodes.registerType("pass", PassNode);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.RegisteredTypes()) != 1 {
		t.Fatal("top-level registration failed")
	}
}

func TestDeployAndRoute(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("upper.js", upperNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadPackage("sink.js", sinkNodePkg); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{
		Label: "copy",
		Nodes: []NodeDef{
			{ID: "n1", Type: "upper", Wires: [][]string{{"n2"}}},
			{ID: "n2", Type: "file-sink", Config: map[string]any{"path": "/out.txt"}},
		},
	}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("n1", mkMsg("hello")); err != nil {
		t.Fatal(err)
	}
	writes := rt.IP.IO.WritesTo("fs")
	if len(writes) != 1 || writes[0].Value != "HELLO" || writes[0].Target != "/out.txt" {
		t.Fatalf("writes = %+v", writes)
	}
	if len(rt.Deliveries) != 2 {
		t.Fatalf("deliveries = %+v", rt.Deliveries)
	}
}

func TestFanOutWires(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("upper.js", upperNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadPackage("sink.js", sinkNodePkg); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "src", Type: "upper", Wires: [][]string{{"a", "b"}}},
		{ID: "a", Type: "file-sink", Config: map[string]any{"path": "/a"}},
		{ID: "b", Type: "file-sink", Config: map[string]any{"path": "/b"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("src", mkMsg("x")); err != nil {
		t.Fatal(err)
	}
	if n := len(rt.IP.IO.WritesTo("fs")); n != 2 {
		t.Fatalf("writes = %d", n)
	}
}

func TestUnknownTypeAndWire(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "x", Type: "ghost"}}}); err == nil {
		t.Fatal("expected unknown-type error")
	}
	if err := rt.LoadPackage("upper.js", upperNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{
		{ID: "n1", Type: "upper", Wires: [][]string{{"nope"}}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("n1", mkMsg("x")); err == nil {
		t.Fatal("expected unknown-wire error")
	}
	if err := rt.Inject("ghost-node", mkMsg("x")); err == nil {
		t.Fatal("expected unknown-node error")
	}
}

func TestCyclicFlowGuard(t *testing.T) {
	rt := newRuntime(t)
	err := rt.LoadPackage("echo.js", `
module.exports = function(RED) {
  function EchoNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) { node.send(msg); });
  }
  RED.nodes.registerType("echo", EchoNode);
};
`)
	if err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "a", Type: "echo", Wires: [][]string{{"b"}}},
		{ID: "b", Type: "echo", Wires: [][]string{{"a"}}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	err = rt.Inject("a", mkMsg("loop"))
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPNodeRouting(t *testing.T) {
	rt := newRuntime(t)
	err := rt.LoadPackage("api.js", `
module.exports = function(RED) {
  RED.httpNode.get("/faces", function(req, res) {
    res.send("face:" + req.query.id);
  });
};
`)
	if err != nil {
		t.Fatal(err)
	}
	req := interp.NewObject()
	q := interp.NewObject()
	q.Set("id", "42")
	req.Set("query", q)
	body, err := rt.ServeHTTPNode("GET", "/faces", req)
	if err != nil {
		t.Fatal(err)
	}
	if interp.ToString(body) != "face:42" {
		t.Fatalf("body = %v", body)
	}
	if _, err := rt.ServeHTTPNode("GET", "/nope", req); err == nil {
		t.Fatal("expected no-handler error")
	}
}

func TestMultiOutputPorts(t *testing.T) {
	rt := newRuntime(t)
	err := rt.LoadPackage("split.js", `
module.exports = function(RED) {
  function SplitNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      node.send([ { payload: msg.payload + ":left" }, { payload: msg.payload + ":right" } ]);
    });
  }
  RED.nodes.registerType("split", SplitNode);
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadPackage("sink.js", sinkNodePkg); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "s", Type: "split", Wires: [][]string{{"l"}, {"r"}}},
		{ID: "l", Type: "file-sink", Config: map[string]any{"path": "/l"}},
		{ID: "r", Type: "file-sink", Config: map[string]any{"path": "/r"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("s", mkMsg("m")); err != nil {
		t.Fatal(err)
	}
	writes := rt.IP.IO.WritesTo("fs")
	if len(writes) != 2 || writes[0].Value != "m:left" || writes[1].Value != "m:right" {
		t.Fatalf("writes = %+v", writes)
	}
}

func TestCloneMessage(t *testing.T) {
	rt := newRuntime(t)
	err := rt.LoadPackage("cl.js", `
module.exports = function(RED) {
  function CloneNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      const copy = RED.util.cloneMessage(msg);
      copy.payload = "changed";
      node.send(msg);
    });
  }
  RED.nodes.registerType("clone", CloneNode);
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "c", Type: "clone"}}}); err != nil {
		t.Fatal(err)
	}
	msg := mkMsg("original")
	if err := rt.Inject("c", msg); err != nil {
		t.Fatal(err)
	}
	if v, _ := msg.Get("payload"); interp.ToString(v) != "original" {
		t.Fatal("clone aliased the original message")
	}
}

func TestTrackedMessagesFlowThroughRuntime(t *testing.T) {
	// end-to-end: an instrumented-style node labels the payload; the sink
	// node receives the boxed value and the write is unwrapped.
	ip := interp.New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "Payload": "v => \"sensitive\"" },
	  "rules": [ "sensitive -> archive" ]
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	ip.InstallTracker(pol)
	rt := New(ip)
	err = rt.LoadPackage("lbl.js", `
module.exports = function(RED) {
  function LabelNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      msg.payload = __t.label(msg.payload, "Payload");
      node.send(msg);
    });
  }
  RED.nodes.registerType("labeler", LabelNode);
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadPackage("sink.js", sinkNodePkg); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "lab", Type: "labeler", Wires: [][]string{{"out"}}},
		{ID: "out", Type: "file-sink", Config: map[string]any{"path": "/arch"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("lab", mkMsg("frame-1")); err != nil {
		t.Fatal(err)
	}
	writes := rt.IP.IO.WritesTo("fs")
	if len(writes) != 1 {
		t.Fatalf("writes = %+v", writes)
	}
	if _, boxed := writes[0].Value.(*dift.Box); boxed {
		t.Fatal("sink write not unwrapped")
	}
	if writes[0].Value != "frame-1" {
		t.Fatalf("value = %v", writes[0].Value)
	}
	if ip.Tracker.Stats().Labelled != 1 {
		t.Fatalf("stats = %+v", ip.Tracker.Stats())
	}
}

func TestParseFlowJSON(t *testing.T) {
	flow, err := ParseFlowJSON([]byte(`{
	  "label": "copy",
	  "nodes": [
	    { "id": "a", "type": "upper", "wires": [["b"]] },
	    { "id": "b", "type": "file-sink", "config": { "path": "/x" } }
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if flow.Label != "copy" || len(flow.Nodes) != 2 {
		t.Fatalf("flow = %+v", flow)
	}
	if flow.Nodes[1].Config["path"] != "/x" {
		t.Fatalf("config = %+v", flow.Nodes[1].Config)
	}
	// clipboard format: a bare node array
	flow2, err := ParseFlowJSON([]byte(`[ { "id": "x", "type": "t" } ]`))
	if err != nil || len(flow2.Nodes) != 1 {
		t.Fatalf("bare array: %v %+v", err, flow2)
	}
	// round trip
	data, err := MarshalFlowJSON(flow)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseFlowJSON(data)
	if err != nil || len(again.Nodes) != 2 {
		t.Fatalf("round trip: %v", err)
	}
}

func TestParseFlowJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{ "nodes": [] }`,
		`{ "nodes": [ { "id": "", "type": "t" } ] }`,
		`{ "nodes": [ { "id": "a", "type": "t" }, { "id": "a", "type": "t" } ] }`,
		`{ "nodes": [ { "id": "a", "type": "t", "wires": [["ghost"]] } ] }`,
	}
	for _, src := range cases {
		if _, err := ParseFlowJSON([]byte(src)); err == nil {
			t.Errorf("ParseFlowJSON(%q) should fail", src)
		}
	}
}

func TestDeployParsedFlow(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("upper.js", upperNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadPackage("sink.js", sinkNodePkg); err != nil {
		t.Fatal(err)
	}
	flow, err := ParseFlowJSON([]byte(`{
	  "nodes": [
	    { "id": "u", "type": "upper", "wires": [["s"]] },
	    { "id": "s", "type": "file-sink", "config": { "path": "/from-json" } }
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("u", mkMsg("hi")); err != nil {
		t.Fatal(err)
	}
	w := rt.IP.IO.WritesTo("fs")
	if len(w) != 1 || w[0].Value != "HI" || w[0].Target != "/from-json" {
		t.Fatalf("writes = %+v", w)
	}
}

func TestRegisterTypeErrors(t *testing.T) {
	rt := newRuntime(t)
	err := rt.LoadPackage("bad.js", `RED.nodes.registerType("only-name");`)
	if err == nil {
		t.Fatal("registerType with one arg should fail")
	}
	err = rt.LoadPackage("bad2.js", `RED.nodes.createNode("not-an-object");`)
	if err == nil {
		t.Fatal("createNode on primitive should fail")
	}
}

func TestConstructorWithoutCreateNodeStillWired(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("bare.js", `
function BareNode(config) { /* forgot RED.nodes.createNode */ }
RED.nodes.registerType("bare", BareNode);
`); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "b", Type: "bare"}}}); err != nil {
		t.Fatal(err)
	}
	// the runtime equips the instance anyway, so injection works
	if err := rt.Inject("b", mkMsg("x")); err != nil {
		t.Fatal(err)
	}
	if len(rt.Deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(rt.Deliveries))
	}
}

func TestNodeStatusErrorWarnLog(t *testing.T) {
	rt := newRuntime(t)
	if err := rt.LoadPackage("chatty.js", `
module.exports = function(RED) {
  function ChattyNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      node.status({ fill: "green" });
      node.warn("careful");
      node.log("note");
      node.error("bad thing");
    });
  }
  RED.nodes.registerType("chatty", ChattyNode);
};
`); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "c", Type: "chatty"}}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("c", mkMsg("m")); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range rt.IP.ConsoleOut {
		if strings.Contains(line, "node error: bad thing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("console = %v", rt.IP.ConsoleOut)
	}
}
