// Package nodered is a miniature Node-RED-compatible flow runtime (§5):
// applications are DAGs ("flows") of modular components ("nodes") whose
// implementations are MiniJS packages using the RED API
// (RED.nodes.createNode, RED.nodes.registerType, node.on("input"),
// node.send). It is the third-party IoT framework substrate on which the
// corpus applications and the NVR case study run.
package nodered

import (
	"encoding/json"
	"errors"
	"fmt"

	"turnstile/internal/ast"
	"turnstile/internal/dift"
	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/resolve"
)

// NodeDef is one node instance in a flow definition (the JSON objects a
// Node-RED editor exports).
type NodeDef struct {
	ID     string            `json:"id"`
	Type   string            `json:"type"`
	Name   string            `json:"name,omitempty"`
	Config map[string]any    `json:"config,omitempty"`
	Wires  [][]string        `json:"wires,omitempty"`
	Props  map[string]string `json:"props,omitempty"`
}

// Flow is a deployable DAG of nodes.
type Flow struct {
	Label string    `json:"label"`
	Nodes []NodeDef `json:"nodes"`
}

// Delivery records one message delivered to a node input (observable
// behaviour for tests).
type Delivery struct {
	NodeID string
	Msg    interp.Value
}

// Health aggregates the runtime's degradation counters: how often node
// handlers threw, how many of those errors reached catch nodes, and how
// many messages were shed at quarantined nodes. A healthy run is all
// zeros; under chaos mode these counters are part of the deterministic
// report.
type Health struct {
	// HandlerErrors counts JS exceptions thrown by node input handlers
	// and isolated by the runtime (the flow kept running).
	HandlerErrors int
	// CtorErrors counts node constructors that threw during Deploy; the
	// node is still wired in, degraded to a pass-through shell.
	CtorErrors int
	// Caught counts errors delivered to catch nodes.
	Caught int
	// Dropped counts messages shed at quarantined nodes.
	Dropped int
	// DeadLettered counts messages the queued engine refused to deliver
	// (mailbox overflow or a quarantined target); each has a DeadLetter
	// record in Runtime.DeadLetters.
	DeadLettered int
	// Restarts counts supervisor restarts of quarantined nodes. A restart
	// half-opens the breaker; it closes fully only after a probe succeeds.
	Restarts int
	// Probes counts trial deliveries made while a breaker was half-open.
	Probes int
}

// Runtime hosts node packages and deployed flows on one interpreter.
type Runtime struct {
	IP *interp.Interp

	ctors     map[string]interp.Value
	instances map[string]*interp.Object
	wires     map[string][][]string
	types     map[string]string
	// Deliveries counts input messages routed per node.
	Deliveries []Delivery
	// Depth guards against cyclic flows.
	depth int

	// BreakerThreshold is the circuit breaker: a node whose input handler
	// throws this many times consecutively is quarantined — subsequent
	// messages to it are shed instead of executed — until the runtime is
	// rebuilt. Zero or negative disables the breaker.
	BreakerThreshold int
	// Health holds the degradation counters for this runtime.
	Health Health

	// MailboxCap > 0 switches delivery to the queued engine (mailbox.go):
	// node.send enqueues onto a global FIFO instead of delivering
	// recursively, with at most MailboxCap messages pending per node.
	// Overflow is shed to the dead-letter queue instead of delivered —
	// backpressure by load shedding, never by unbounded buffering. Zero
	// keeps the synchronous recursive engine byte-identical.
	MailboxCap int
	// MailboxBudget caps deliveries per drain in the queued engine (its
	// cyclic-flow protection, replacing the recursion depth guard). Zero
	// means DefaultMailboxBudget.
	MailboxBudget int
	// RestartBase > 0 enables the supervisor: a quarantined node is
	// scheduled for un-quarantine after RestartBase << priorRestarts
	// virtual-clock ticks, capped at RestartMax (exponential backoff).
	RestartBase int64
	// RestartMax caps the supervisor backoff; zero means RestartBase << 6.
	RestartMax int64
	// DeadLetters records every message the queued engine shed, in shed
	// order.
	DeadLetters []DeadLetter

	catches      []string       // deployed catch-node IDs, in flow order
	failures     map[string]int // consecutive handler failures per node
	quarantined  map[string]bool
	halfOpen     map[string]bool // breaker half-open: next delivery is a probe
	inCatch      bool            // suppresses catch re-entry while a catch handler runs
	queue        []queued
	pending      map[string]int // queued-message count per target node
	draining     bool
	restartCount map[string]int // supervisor restarts scheduled per node
}

// DefaultBreakerThreshold is the consecutive-failure count after which a
// node is quarantined.
const DefaultBreakerThreshold = 3

// New creates a runtime and installs the RED API into the interpreter's
// globals.
func New(ip *interp.Interp) *Runtime {
	rt := &Runtime{
		IP:               ip,
		ctors:            make(map[string]interp.Value),
		instances:        make(map[string]*interp.Object),
		wires:            make(map[string][][]string),
		types:            make(map[string]string),
		BreakerThreshold: DefaultBreakerThreshold,
		failures:         make(map[string]int),
		quarantined:      make(map[string]bool),
	}
	ip.Globals.Define("RED", rt.redObject(), false)
	return rt
}

// Quarantined reports whether the circuit breaker has isolated a node.
func (rt *Runtime) Quarantined(id string) bool { return rt.quarantined[id] }

// HalfOpen reports whether a node's breaker is half-open: the supervisor
// has un-quarantined it, but the breaker closes fully only after the next
// delivery (the probe) succeeds.
func (rt *Runtime) HalfOpen(id string) bool { return rt.halfOpen[id] }

// BreakerOpen reports whether any deployed node's breaker is open
// (quarantined). Half-open does not count: the breaker is mid-probe, and
// admitting traffic is exactly what resolves it.
func (rt *Runtime) BreakerOpen() bool {
	for _, open := range rt.quarantined {
		if open {
			return true
		}
	}
	return false
}

// redObject builds the RED host API.
func (rt *Runtime) redObject() *interp.Object {
	red := interp.NewObject()
	red.Class = "RED"
	nodes := interp.NewObject()
	nodes.Set("createNode", interp.NewHostFunc("createNode", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Undefined{}, nil
		}
		node, ok := dift.Unwrap(args[0]).(*interp.Object)
		if !ok {
			return nil, fmt.Errorf("RED.nodes.createNode: node must be an object")
		}
		rt.initNode(node)
		if len(args) > 1 {
			node.Set("config", args[1])
		}
		return interp.Undefined{}, nil
	}))
	nodes.Set("registerType", interp.NewHostFunc("registerType", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("RED.nodes.registerType: want (name, ctor)")
		}
		rt.ctors[interp.ToString(args[0])] = args[1]
		return interp.Undefined{}, nil
	}))
	red.Set("nodes", nodes)
	util := interp.NewObject()
	util.Set("cloneMessage", interp.NewHostFunc("cloneMessage", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Undefined{}, nil
		}
		return cloneMsg(args[0]), nil
	}))
	red.Set("util", util)
	// RED.httpNode exists but is an opaque object (assigned dynamically by
	// the runtime — the statically-invisible surface of §6.1). It routes
	// requests when driven explicitly via ServeHTTPNode.
	httpNode := rt.httpNodeObject()
	red.Set("httpNode", httpNode)
	red.Set("httpAdmin", interp.NewObject())
	return red
}

// httpRoutes records handlers registered on RED.httpNode.
type httpRoutes struct {
	handlers map[string]interp.Value
}

func (rt *Runtime) httpNodeObject() *interp.Object {
	o := interp.NewObject()
	o.Class = "httpNode"
	routes := &httpRoutes{handlers: map[string]interp.Value{}}
	o.Host = routes
	register := func(method string) *interp.HostFunc {
		return interp.NewHostFunc(method, func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			if len(args) >= 2 {
				routes.handlers[method+" "+interp.ToString(args[0])] = args[len(args)-1]
			}
			return o, nil
		})
	}
	o.Set("get", register("GET"))
	o.Set("post", register("POST"))
	o.Set("put", register("PUT"))
	o.Set("use", register("USE"))
	return o
}

// ServeHTTPNode drives a handler registered on RED.httpNode with a request
// object; the response body writes are recorded as http sink writes.
func (rt *Runtime) ServeHTTPNode(method, path string, req interp.Value) (interp.Value, error) {
	redV, _ := rt.IP.Globals.Lookup("RED")
	red := redV.(*interp.Object)
	hn, _ := red.Get("httpNode")
	routes := hn.(*interp.Object).Host.(*httpRoutes)
	h, ok := routes.handlers[method+" "+path]
	if !ok {
		return nil, fmt.Errorf("nodered: no handler for %s %s", method, path)
	}
	res := interp.NewObject()
	var body interp.Value = interp.Undefined{}
	res.Set("send", interp.NewHostFunc("send", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) > 0 {
			body = args[0]
		}
		return res, nil
	}))
	res.Set("json", interp.NewHostFunc("json", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) > 0 {
			body = args[0]
		}
		return res, nil
	}))
	if _, err := rt.IP.CallFunction(h, interp.Undefined{}, []interp.Value{req, res}, ast.Pos{}); err != nil {
		return nil, err
	}
	return body, nil
}

// initNode equips a node object with the Node-RED node API.
func (rt *Runtime) initNode(node *interp.Object) {
	node.Class = "Node"
	node.Listeners = make(map[string][]interp.Value)
	node.Set("on", interp.NewHostFunc("on", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) >= 2 {
			ev := interp.ToString(args[0])
			node.Listeners[ev] = append(node.Listeners[ev], args[1])
		}
		return node, nil
	}))
	node.Set("send", interp.NewHostFunc("send", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Undefined{}, nil
		}
		return interp.Undefined{}, rt.route(node, args[0])
	}))
	node.Set("status", interp.NewHostFunc("status", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Undefined{}, nil
	}))
	node.Set("error", interp.NewHostFunc("error", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) > 0 {
			ip.ConsoleOut = append(ip.ConsoleOut, "node error: "+interp.ToString(args[0]))
		}
		return interp.Undefined{}, nil
	}))
	node.Set("warn", interp.NewHostFunc("warn", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Undefined{}, nil
	}))
	node.Set("log", interp.NewHostFunc("log", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Undefined{}, nil
	}))
}

// LoadPackage parses and executes a node package source. Packages either
// call RED.nodes.registerType at top level or export a function of RED.
func (rt *Runtime) LoadPackage(name, src string) error {
	prog, err := parser.Parse(name, src)
	if err != nil {
		return fmt.Errorf("nodered: package %s: %w", name, err)
	}
	if !rt.IP.NoResolve {
		resolve.Resolve(prog)
	}
	return rt.LoadPackageAST(name, prog)
}

// LoadPackageAST executes an already-parsed (possibly instrumented)
// package.
func (rt *Runtime) LoadPackageAST(name string, prog *ast.Program) error {
	// fresh module/exports per package
	moduleObj := interp.NewObject()
	exportsObj := interp.NewObject()
	moduleObj.Set("exports", exportsObj)
	rt.IP.Globals.Define("module", moduleObj, false)
	rt.IP.Globals.Define("exports", exportsObj, false)
	if err := rt.IP.Run(prog); err != nil {
		return fmt.Errorf("nodered: package %s: %w", name, err)
	}
	if exp, ok := moduleObj.Get("exports"); ok {
		switch dift.Unwrap(exp).(type) {
		case *interp.Function, *interp.HostFunc:
			redV, _ := rt.IP.Globals.Lookup("RED")
			if _, err := rt.IP.CallFunction(exp, interp.Undefined{}, []interp.Value{redV}, ast.Pos{}); err != nil {
				return fmt.Errorf("nodered: package %s exports: %w", name, err)
			}
		}
	}
	return nil
}

// RegisteredTypes lists node types registered so far.
func (rt *Runtime) RegisteredTypes() []string {
	out := make([]string, 0, len(rt.ctors))
	for t := range rt.ctors {
		out = append(out, t)
	}
	interp.SortStrings(out)
	return out
}

// Deploy instantiates a flow: every node is constructed with its config.
// A constructor that throws does not abort the deployment — the node is
// kept as a degraded pass-through shell (wired, but with no handlers) and
// the throw is counted, mirroring Node-RED's per-node isolation. Unknown
// node types remain fatal: that is a broken flow definition, not a
// runtime failure.
func (rt *Runtime) Deploy(flow *Flow) error {
	for _, def := range flow.Nodes {
		ctor, ok := rt.ctors[def.Type]
		if !ok {
			return fmt.Errorf("nodered: unknown node type %q for node %s", def.Type, def.ID)
		}
		cfg := interp.NewObject()
		cfg.Set("id", def.ID)
		cfg.Set("name", def.Name)
		for k, v := range def.Config {
			cfg.Set(k, goToValue(v))
		}
		inst := interp.NewObject()
		inst.Host = def.ID
		if _, err := rt.IP.CallFunction(ctor, inst, []interp.Value{cfg}, ast.Pos{}); err != nil {
			var throw *interp.Throw
			if !errors.As(err, &throw) {
				return fmt.Errorf("nodered: constructing node %s (%s): %w", def.ID, def.Type, err)
			}
			rt.Health.CtorErrors++
			rt.IP.ConsoleOut = append(rt.IP.ConsoleOut,
				fmt.Sprintf("nodered: node %s (%s) constructor failed: %s", def.ID, def.Type, throw.Error()))
			inst = interp.NewObject()
			inst.Host = def.ID
		}
		if inst.Listeners == nil {
			// the constructor did not call RED.nodes.createNode; equip the
			// instance anyway so wiring works
			rt.initNode(inst)
		}
		rt.instances[def.ID] = inst
		rt.wires[def.ID] = def.Wires
		rt.types[def.ID] = def.Type
		if def.Type == "catch" {
			rt.catches = append(rt.catches, def.ID)
		}
	}
	return nil
}

// Node returns a deployed node instance.
func (rt *Runtime) Node(id string) (*interp.Object, bool) {
	n, ok := rt.instances[id]
	return n, ok
}

// Inject delivers a message to a node's input (what an inject node or an
// external event source does).
func (rt *Runtime) Inject(nodeID string, msg interp.Value) error {
	node, ok := rt.instances[nodeID]
	if !ok {
		return fmt.Errorf("nodered: unknown node %q", nodeID)
	}
	if rt.MailboxCap > 0 {
		rt.enqueue(nodeID, msg)
		return rt.drain()
	}
	return rt.deliver(node, nodeID, msg)
}

const maxRouteDepth = 64

func (rt *Runtime) deliver(node *interp.Object, nodeID string, msg interp.Value) error {
	if rt.depth >= maxRouteDepth {
		return fmt.Errorf("nodered: routing depth exceeded (cyclic flow?)")
	}
	if rt.quarantined[nodeID] {
		rt.Health.Dropped++
		return nil
	}
	rt.depth++
	defer func() { rt.depth-- }()
	probe := rt.halfOpen[nodeID]
	if probe {
		delete(rt.halfOpen, nodeID)
		rt.Health.Probes++
	}
	rt.Deliveries = append(rt.Deliveries, Delivery{NodeID: nodeID, Msg: msg})
	if m := rt.IP.Metrics; m != nil {
		// per-node message latency is measured on the virtual clock, so it
		// attributes injected delays and timer waits — never host scheduling
		// noise — and stays byte-identical across runs
		m.Add("nodered.deliver."+nodeID, 1)
		start := rt.IP.Clock.Now()
		defer func() { m.Observe("nodered.latency."+nodeID, rt.IP.Clock.Now()-start) }()
	}
	send := interp.NewHostFunc("send", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Undefined{}, nil
		}
		return interp.Undefined{}, rt.route(node, args[0])
	})
	done := interp.NewHostFunc("done", func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Undefined{}, nil
	})
	threw := false
	for _, cb := range node.Listeners["input"] {
		if _, err := rt.IP.CallFunction(cb, node, []interp.Value{msg, send, done}, ast.Pos{}); err != nil {
			// A JS exception is a node failure, not a flow failure: isolate
			// it, tell the catch nodes, and keep delivering. Anything else
			// (step-budget exhaustion, cyclic-route guard, internal errors)
			// is the interpreter failing, and must propagate.
			var throw *interp.Throw
			if !errors.As(err, &throw) {
				return err
			}
			threw = true
			rt.Health.HandlerErrors++
			rt.dispatchCatch(nodeID, throw, msg)
		}
	}
	if threw {
		rt.failures[nodeID]++
		if probe {
			// the half-open trial failed: snap straight back to open and
			// re-arm the supervisor at the next backoff step — no need to
			// accumulate BreakerThreshold fresh failures to relearn what
			// the last quarantine already proved
			rt.quarantined[nodeID] = true
			rt.IP.ConsoleOut = append(rt.IP.ConsoleOut,
				fmt.Sprintf("nodered: node %s probe failed, breaker re-opened", nodeID))
			rt.scheduleRestart(nodeID)
		} else if rt.BreakerThreshold > 0 && rt.failures[nodeID] >= rt.BreakerThreshold {
			rt.quarantined[nodeID] = true
			rt.IP.ConsoleOut = append(rt.IP.ConsoleOut,
				fmt.Sprintf("nodered: node %s quarantined after %d consecutive failures", nodeID, rt.failures[nodeID]))
			rt.scheduleRestart(nodeID)
		}
	} else {
		rt.failures[nodeID] = 0
		if probe {
			// probe succeeded: the breaker closes fully and the backoff
			// ladder resets, so a recovered node that fails again later
			// starts from RestartBase rather than the capped cadence
			delete(rt.restartCount, nodeID)
			rt.IP.ConsoleOut = append(rt.IP.ConsoleOut,
				fmt.Sprintf("nodered: node %s probe succeeded, breaker closed", nodeID))
		}
	}
	return nil
}

// dispatchCatch delivers an isolated handler error to every deployed
// catch node, Node-RED style: the original message augmented with an
// error object naming the failing node. A throw inside a catch handler
// is counted but not re-dispatched, so error handling cannot recurse.
func (rt *Runtime) dispatchCatch(sourceID string, throw *interp.Throw, original interp.Value) {
	if rt.inCatch || len(rt.catches) == 0 {
		return
	}
	if rt.MailboxCap > 0 {
		// in the queued engine catch deliveries happen outside the inCatch
		// window, so an error thrown by a catch handler must be stopped
		// here — counted, never re-dispatched — or error handling recurses
		for _, cid := range rt.catches {
			if cid == sourceID {
				return
			}
		}
	}
	rt.inCatch = true
	defer func() { rt.inCatch = false }()
	msg := interp.NewObject()
	if o, ok := dift.Unwrap(original).(*interp.Object); ok {
		for _, k := range o.Keys() {
			pv, _ := o.GetOwn(k)
			msg.Set(k, pv)
		}
	}
	errObj := interp.NewObject()
	errObj.Set("message", throw.Error())
	src := interp.NewObject()
	src.Set("id", sourceID)
	src.Set("type", rt.types[sourceID])
	errObj.Set("source", src)
	msg.Set("error", errObj)
	for _, cid := range rt.catches {
		if cid == sourceID {
			continue
		}
		if node, ok := rt.instances[cid]; ok {
			rt.Health.Caught++
			if rt.MailboxCap > 0 {
				rt.enqueue(cid, msg)
				continue
			}
			_ = rt.deliver(node, cid, msg)
		}
	}
}

// route forwards a message from a node to its wired downstream nodes.
// An array message fans its elements out over the output ports.
func (rt *Runtime) route(from *interp.Object, msg interp.Value) error {
	fromID, _ := from.Host.(string)
	ports := rt.wires[fromID]
	if len(ports) == 0 {
		return nil
	}
	perPort := []interp.Value{msg}
	if arr, ok := dift.Unwrap(msg).(*interp.Array); ok && len(ports) > 1 {
		perPort = arr.Elems
	}
	for pi, port := range ports {
		var m interp.Value
		if pi < len(perPort) {
			m = perPort[pi]
		} else {
			continue
		}
		for _, targetID := range port {
			target, ok := rt.instances[targetID]
			if !ok {
				return fmt.Errorf("nodered: wire to unknown node %q", targetID)
			}
			if rt.MailboxCap > 0 {
				rt.enqueue(targetID, m)
				continue
			}
			if err := rt.deliver(target, targetID, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// goToValue converts plain Go config values into MiniJS values.
func goToValue(v any) interp.Value {
	switch x := v.(type) {
	case nil:
		return interp.Null{}
	case string, bool, float64:
		return x
	case int:
		return float64(x)
	case []any:
		arr := interp.NewArray()
		for _, el := range x {
			arr.Elems = append(arr.Elems, goToValue(el))
		}
		return arr
	case map[string]any:
		o := interp.NewObject()
		for k, val := range x {
			o.Set(k, goToValue(val))
		}
		return o
	default:
		return interp.ToString(fmt.Sprint(x))
	}
}

// cloneMsg shallow-copies a message object (RED.util.cloneMessage).
func cloneMsg(v interp.Value) interp.Value {
	o, ok := dift.Unwrap(v).(*interp.Object)
	if !ok {
		return v
	}
	c := interp.NewObject()
	for _, k := range o.Keys() {
		pv, _ := o.GetOwn(k)
		c.Set(k, pv)
	}
	return c
}

// ParseFlowJSON parses a flow definition from its JSON form (the format a
// Node-RED editor exports).
func ParseFlowJSON(data []byte) (*Flow, error) {
	var flow Flow
	if err := json.Unmarshal(data, &flow); err != nil {
		// also accept a bare node array, Node-RED's clipboard format
		var nodes []NodeDef
		if err2 := json.Unmarshal(data, &nodes); err2 != nil {
			return nil, fmt.Errorf("nodered: invalid flow JSON: %w", err)
		}
		flow.Nodes = nodes
	}
	if len(flow.Nodes) == 0 {
		return nil, fmt.Errorf("nodered: flow has no nodes")
	}
	seen := make(map[string]bool, len(flow.Nodes))
	for _, n := range flow.Nodes {
		if n.ID == "" || n.Type == "" {
			return nil, fmt.Errorf("nodered: node missing id or type: %+v", n)
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("nodered: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	for _, n := range flow.Nodes {
		for _, port := range n.Wires {
			for _, target := range port {
				if !seen[target] {
					return nil, fmt.Errorf("nodered: node %q wired to unknown node %q", n.ID, target)
				}
			}
		}
	}
	return &flow, nil
}

// MarshalFlowJSON renders a flow back to JSON.
func MarshalFlowJSON(flow *Flow) ([]byte, error) {
	return json.MarshalIndent(flow, "", "  ")
}
