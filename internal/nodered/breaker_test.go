package nodered

import (
	"strings"
	"testing"
)

// grumpyNodePkg throws only for payload "boom" — the recoverable-fault
// workload the half-open probe is for.
const grumpyNodePkg = `
module.exports = function(RED) {
  function GrumpyNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      if (msg.payload === "boom") { throw new Error("boom"); }
      node.send(msg);
    });
  }
  RED.nodes.registerType("grumpy", GrumpyNode);
};
`

func deployGrumpy(t *testing.T) *Runtime {
	t.Helper()
	rt := newRuntime(t)
	rt.RestartBase = 100
	if err := rt.LoadPackage("grumpy.js", grumpyNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "g", Type: "grumpy"}}}); err != nil {
		t.Fatal(err)
	}
	return rt
}

func tripBreaker(t *testing.T, rt *Runtime, id string) {
	t.Helper()
	for !rt.Quarantined(id) {
		if err := rt.Inject(id, mkMsg("boom")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBreakerOpenHalfOpenClosed(t *testing.T) {
	rt := deployGrumpy(t)
	tripBreaker(t, rt, "g")
	if rt.HalfOpen("g") {
		t.Fatal("breaker half-open while quarantined")
	}
	if !rt.BreakerOpen() {
		t.Fatal("BreakerOpen false with a quarantined node")
	}
	rt.IP.Clock.Advance(100)
	if rt.Quarantined("g") || !rt.HalfOpen("g") {
		t.Fatalf("after backoff: quarantined=%v halfOpen=%v", rt.Quarantined("g"), rt.HalfOpen("g"))
	}
	if rt.BreakerOpen() {
		t.Fatal("half-open should not count as open")
	}
	// the probe succeeds: breaker closes fully
	if err := rt.Inject("g", mkMsg("ok")); err != nil {
		t.Fatal(err)
	}
	if rt.HalfOpen("g") || rt.Quarantined("g") {
		t.Fatal("successful probe did not close the breaker")
	}
	if rt.Health.Probes != 1 || rt.Health.Restarts != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
	note := false
	for _, line := range rt.IP.ConsoleOut {
		if strings.Contains(line, "probe succeeded, breaker closed") {
			note = true
		}
	}
	if !note {
		t.Fatalf("console = %v", rt.IP.ConsoleOut)
	}
	// the successful probe reset the backoff ladder: a later quarantine
	// starts again from RestartBase, not the doubled step
	tripBreaker(t, rt, "g")
	rt.IP.Clock.Advance(99)
	if !rt.Quarantined("g") {
		t.Fatal("post-recovery backoff did not restart at RestartBase")
	}
	rt.IP.Clock.Advance(1)
	if rt.Quarantined("g") {
		t.Fatal("post-recovery restart did not fire at RestartBase")
	}
}

func TestBreakerOpenHalfOpenOpen(t *testing.T) {
	rt := deployGrumpy(t)
	tripBreaker(t, rt, "g")
	rt.IP.Clock.Advance(100)
	if !rt.HalfOpen("g") {
		t.Fatal("breaker not half-open after backoff")
	}
	// the probe fails: one throw re-opens immediately — no need for
	// BreakerThreshold consecutive failures
	if err := rt.Inject("g", mkMsg("boom")); err != nil {
		t.Fatal(err)
	}
	if !rt.Quarantined("g") || rt.HalfOpen("g") {
		t.Fatalf("failed probe: quarantined=%v halfOpen=%v", rt.Quarantined("g"), rt.HalfOpen("g"))
	}
	if rt.Health.Probes != 1 || rt.Health.Restarts != 1 {
		t.Fatalf("health = %+v", rt.Health)
	}
	note := false
	for _, line := range rt.IP.ConsoleOut {
		if strings.Contains(line, "probe failed, breaker re-opened") {
			note = true
		}
	}
	if !note {
		t.Fatalf("console = %v", rt.IP.ConsoleOut)
	}
	// the re-open doubled the backoff
	rt.IP.Clock.Advance(199)
	if !rt.Quarantined("g") {
		t.Fatal("re-opened breaker ignored the doubled backoff")
	}
	rt.IP.Clock.Advance(1)
	if rt.Quarantined("g") || !rt.HalfOpen("g") || rt.Health.Restarts != 2 {
		t.Fatalf("second restart: health = %+v", rt.Health)
	}
}

func TestSupervisorDefaultBackoffCapsAtBaseShift6(t *testing.T) {
	rt := newRuntime(t)
	rt.RestartBase = 2 // RestartMax unset: cap defaults to 2 << 6 = 128
	if err := rt.LoadPackage("boom.js", boomNodePkg); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(&Flow{Nodes: []NodeDef{{ID: "bad", Type: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	tripBreaker(t, rt, "bad")
	// each failed probe doubles the backoff: 2, 4, 8, 16, 32, 64, then the
	// default cap RestartBase << 6 = 128 forever after
	for _, want := range []int64{2, 4, 8, 16, 32, 64, 128, 128, 128} {
		rt.IP.Clock.Advance(want - 1)
		if !rt.Quarantined("bad") {
			t.Fatalf("released %d ticks early of backoff %d", 1, want)
		}
		rt.IP.Clock.Advance(1)
		if rt.Quarantined("bad") {
			t.Fatalf("backoff %d did not release on time", want)
		}
		// boom always throws: the probe fails and re-quarantines
		if err := rt.Inject("bad", mkMsg("x")); err != nil {
			t.Fatal(err)
		}
		if !rt.Quarantined("bad") {
			t.Fatal("failed probe did not re-quarantine")
		}
	}
	if rt.Health.Restarts != 9 || rt.Health.Probes != 9 {
		t.Fatalf("health = %+v", rt.Health)
	}
}

func TestReplayDeadLettersAfterOverflow(t *testing.T) {
	rt := newRuntime(t)
	rt.MailboxCap = 2
	for _, p := range []struct{ name, src string }{
		{"fan.js", fanNodePkg}, {"sink.js", sinkNodePkg},
	} {
		if err := rt.LoadPackage(p.name, p.src); err != nil {
			t.Fatal(err)
		}
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "f", Type: "fan", Wires: [][]string{{"s"}}},
		{ID: "s", Type: "file-sink", Config: map[string]any{"path": "/out"}},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	if err := rt.Inject("f", mkMsg("x")); err != nil {
		t.Fatal(err)
	}
	// cap 2 against a fan-out of 4: two writes landed, two shed
	if len(rt.IP.IO.WritesTo("fs")) != 2 || len(rt.DeadLetters) != 2 {
		t.Fatalf("writes=%d dlq=%d", len(rt.IP.IO.WritesTo("fs")), len(rt.DeadLetters))
	}
	n, err := rt.ReplayDeadLetters()
	if err != nil || n != 2 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if len(rt.IP.IO.WritesTo("fs")) != 4 {
		t.Fatalf("replayed writes missing: %d", len(rt.IP.IO.WritesTo("fs")))
	}
	if len(rt.DeadLetters) != 0 {
		t.Fatalf("replay left dead letters: %+v", rt.DeadLetters)
	}
}

func TestReplayRefusedWhileBreakerOpen(t *testing.T) {
	rt := deployGrumpy(t)
	rt.MailboxCap = 4
	tripBreaker(t, rt, "g")
	if err := rt.Inject("g", mkMsg("held")); err != nil {
		t.Fatal(err)
	}
	if len(rt.DeadLetters) != 1 {
		t.Fatalf("dlq = %+v", rt.DeadLetters)
	}
	if _, err := rt.ReplayDeadLetters(); err == nil ||
		!strings.Contains(err.Error(), "breaker is open") {
		t.Fatalf("replay while open: err = %v", err)
	}
	if len(rt.DeadLetters) != 1 {
		t.Fatal("refused replay must not consume the queue")
	}
	// after the cooldown the breaker is half-open: replay is allowed and
	// the first replayed message is the probe
	rt.IP.Clock.Advance(100)
	n, err := rt.ReplayDeadLetters()
	if err != nil || n != 1 {
		t.Fatalf("replay after cooldown: n=%d err=%v", n, err)
	}
	if rt.Health.Probes != 1 || rt.Quarantined("g") {
		t.Fatalf("probe accounting: %+v quarantined=%v", rt.Health, rt.Quarantined("g"))
	}
}

func TestReplayRequiresQueuedEngine(t *testing.T) {
	rt := newRuntime(t)
	if _, err := rt.ReplayDeadLetters(); err == nil ||
		!strings.Contains(err.Error(), "MailboxCap") {
		t.Fatalf("err = %v", err)
	}
}

func TestSupervisorReleaseOrderingOnVirtualClock(t *testing.T) {
	// two nodes quarantined at different ticks release in due order on the
	// shared virtual clock, independent of quarantine bookkeeping order
	rt := newRuntime(t)
	rt.RestartBase = 100
	if err := rt.LoadPackage("boom.js", boomNodePkg); err != nil {
		t.Fatal(err)
	}
	flow := &Flow{Nodes: []NodeDef{
		{ID: "a", Type: "boom"},
		{ID: "b", Type: "boom"},
	}}
	if err := rt.Deploy(flow); err != nil {
		t.Fatal(err)
	}
	tripBreaker(t, rt, "a") // due at tick 100
	rt.IP.Clock.Advance(50)
	tripBreaker(t, rt, "b") // due at tick 150
	rt.IP.Clock.Advance(49) // tick 99
	if !rt.Quarantined("a") || !rt.Quarantined("b") {
		t.Fatal("released before due")
	}
	rt.IP.Clock.Advance(1) // tick 100: a releases, b holds
	if rt.Quarantined("a") || !rt.Quarantined("b") {
		t.Fatalf("a=%v b=%v at tick 100", rt.Quarantined("a"), rt.Quarantined("b"))
	}
	rt.IP.Clock.Advance(49) // tick 149
	if !rt.Quarantined("b") {
		t.Fatal("b released early")
	}
	rt.IP.Clock.Advance(1) // tick 150
	if rt.Quarantined("b") {
		t.Fatal("b did not release at its due tick")
	}
	if rt.Health.Restarts != 2 {
		t.Fatalf("health = %+v", rt.Health)
	}
}
