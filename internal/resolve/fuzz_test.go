package resolve_test

import (
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/guard"
	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/resolve"
)

// observe runs src once under the given execution mode with bounded
// budgets and returns everything observable: console lines, sink writes,
// and the run error rendering ("" when the run is clean).
func observe(src string, noResolve bool) (out []string, errStr string) {
	prog, err := parser.Parse("eq.js", src)
	if err != nil {
		return nil, "parse: " + err.Error()
	}
	if !noResolve {
		resolve.Resolve(prog)
	}
	ip := interp.New()
	ip.NoResolve = noResolve
	ip.MaxSteps = 150_000
	ip.SetGuard(guard.New(guard.Limits{
		Fuel:          300_000,
		MaxDepth:      512,
		MaxAlloc:      1 << 20,
		DeadlineTicks: 100_000,
	}))
	if err := ip.Run(prog); err != nil {
		errStr = err.Error()
	}
	out = append(out, ip.ConsoleOut...)
	for _, w := range ip.IO.Writes {
		out = append(out, fmt.Sprintf("%s.%s %s %v", w.Module, w.Op, w.Target, w.Value))
	}
	return out, errStr
}

// FuzzResolveEquivalence is the resolver's semantics-preservation property
// as a fuzz target: on any parseable program, the slot-env fast path and
// the -noresolve map walk must produce identical console output, identical
// sink writes, and the identical error (or identical success) under the
// same budgets. The seeds mirror the instrument-fuzz corpus so the two
// batteries stress the same language surface.
func FuzzResolveEquivalence(f *testing.F) {
	seeds := []string{
		`const fs = require("fs");
const ws = fs.createWriteStream("/out");
fs.createReadStream("/in").on("data", d => { ws.write(d.trim()); });`,
		`let a = 0; for (let i = 0; i < 3; i++) { a += i; } console.log(a);`,
		`function f(x) { return x ? f(x - 1) : 0; } f(3);`,
		`const o = { m() { return this.v; }, v: 7 }; o.m();`,
		`class C { constructor() { this.n = 1; } bump() { this.n++; } }
new C().bump();`,
		`try { JSON.parse("{"); } catch (e) { console.log(e.name); }`,
		"`a${1 + 2}b`.split('a');",
		`async function load(x) { return x + 1; }
async function main() { const v = await load(41); console.log(v); }
main();`,
		`new Promise((resolve) => resolve(7)).then(v => console.log(v * 2));`,
		`function sum(a, b, c) { return a + b + c; }
const xs = [1, 2, 3];
console.log(sum(...xs), [0, ...xs, 4].length);`,
		`const base = { a: 1, b: 2 };
const more = { ...base, c: 3 };
console.log(JSON.stringify(more));`,
		"const who = \"cam\" ; console.log(`frame:${who}:${`inner${1+1}`}`);",
		"let acc = \"\"; for (let i = 0; i < 3; i++) { acc = `${acc}|${i * i}`; } console.log(acc);",
		`class Sensor {
  constructor(id) { this.id = id; this.seen = 0; }
  read(v) { this.seen++; return this.id + ":" + v; }
  static kind() { return "sensor"; }
}
class Camera extends Sensor {
  read(v) { return "cam/" + v; }
}
console.log(new Camera("c1").read("f0"), Sensor.kind());`,
		`const w = { get(x) { return { get(y) { return { get(z) { return x + y + z; } }; } }; } };
console.log(w.get(1).get(2).get(3), w.get(w.get(0).get(0).get(0)).get(4).get(5));`,
		`let secret = 1, leak = 0;
if (secret > 0) { leak = 1; } else { leak = 2; }
while (leak < 3) { if (secret) { leak++; } }
console.log(leak);`,
		// scoping-sweep shapes: implicit globals across assignment forms,
		// per-iteration let bindings, const loop variables, shadowed consts
		`plain = 1; compound += 2; update++;
for (k in { a: 1 }) { } for (v of [1, 2]) { }
console.log(plain, compound, update, k, v);`,
		`var fns = [];
for (let i = 0; i < 3; i = i + 1) { fns.push(function () { return i; }); }
var f0 = fns[0], f2 = fns[2];
console.log(f0() + f2());`,
		`for (const x of [1, 2]) { x = 9; }`,
		`const c = 1; { let c = 2; c = 3; console.log(c); } console.log(c);`,
		`const k = 1; { k = 2; }`,
		`console.log(nowhere);`,
		`function f() { return typeof ghost; } console.log(f());`,
		`while (true) { }`,
		`function f(n) { return f(n + 1); } f(0);`,
		`let s = "xxxxxxxx"; while (true) { s = s + s; }`,
		`function t(n) { setTimeout(function() { t(n + 1); }, 1000); } t(0);`,
		"console.log(" + strings.Repeat("(", 60) + "1 + 2" + strings.Repeat(")", 60) + ");",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		slotOut, slotErr := observe(src, false)
		mapOut, mapErr := observe(src, true)
		if slotErr != mapErr {
			t.Fatalf("error divergence:\n slot: %q\n  map: %q\ninput: %q", slotErr, mapErr, src)
		}
		if len(slotOut) != len(mapOut) {
			t.Fatalf("output length divergence: %d vs %d\n slot: %q\n  map: %q\ninput: %q",
				len(slotOut), len(mapOut), slotOut, mapOut, src)
		}
		for i := range slotOut {
			if slotOut[i] != mapOut[i] {
				t.Fatalf("output line %d divergence:\n slot: %q\n  map: %q\ninput: %q",
					i, slotOut[i], mapOut[i], src)
			}
		}
	})
}
