package resolve_test

import (
	"testing"

	"turnstile/internal/ast"
	"turnstile/internal/parser"
	"turnstile/internal/resolve"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("resolve.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

// slot asserts sc maps name to slot i.
func slot(t *testing.T, sc *ast.ScopeInfo, name string, want int) {
	t.Helper()
	if sc == nil {
		t.Fatalf("scope for %q is nil", name)
	}
	got, ok := sc.Slot(name)
	if !ok {
		t.Fatalf("scope has no slot for %q (names %v)", name, sc.Names)
	}
	if got != want {
		t.Fatalf("slot(%q) = %d, want %d", name, got, want)
	}
}

// Non-arrow function layout: this=0, arguments=1, params, then body
// declarations — the fixed prefix the interpreter's call path relies on.
func TestFunctionSlotLayout(t *testing.T) {
	prog := parse(t, `function f(a, b) { let x = 1; return a + b + x; }`)
	resolve.Resolve(prog)
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	slot(t, fn.Scope, "this", 0)
	slot(t, fn.Scope, "arguments", 1)
	slot(t, fn.Scope, "a", 2)
	slot(t, fn.Scope, "b", 3)
	slot(t, fn.Scope, "x", 4)
	if n := fn.Scope.NumSlots(); n != 5 {
		t.Fatalf("NumSlots = %d, want 5", n)
	}
	for i, p := range fn.Params {
		if p.Ref == nil || p.Ref.Depth != 0 || p.Ref.Slot != 2+i {
			t.Fatalf("param %d ref = %+v", i, p.Ref)
		}
	}
}

// Arrow functions have no this/arguments slots of their own.
func TestArrowSlotLayout(t *testing.T) {
	prog := parse(t, `const g = (a, b) => a + b;`)
	resolve.Resolve(prog)
	fn := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.FuncLit)
	slot(t, fn.Scope, "a", 0)
	slot(t, fn.Scope, "b", 1)
	if _, ok := fn.Scope.Slot("this"); ok {
		t.Fatal("arrow scope must not allocate a this slot")
	}
}

// References walk the static scope chain one depth unit per runtime
// environment hop; unresolvable names stay dynamic (nil Ref).
func TestReferenceDepths(t *testing.T) {
	prog := parse(t, `
function f() {
  let x = 1;
  {
    let y = 2;
    console.log(x + y);
  }
}`)
	resolve.Resolve(prog)
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	block := fn.Body.Body[1].(*ast.BlockStmt)
	call := block.Body[1].(*ast.ExprStmt).X.(*ast.CallExpr)
	sum := call.Args[0].(*ast.BinaryExpr)
	x := sum.Left.(*ast.Ident)
	y := sum.Right.(*ast.Ident)
	if x.Ref == nil || x.Ref.Depth != 1 {
		t.Fatalf("x ref = %+v, want depth 1", x.Ref)
	}
	if y.Ref == nil || y.Ref.Depth != 0 {
		t.Fatalf("y ref = %+v, want depth 0", y.Ref)
	}
	// console lives on the dynamic global env
	if mem, ok := call.Callee.(*ast.MemberExpr); ok {
		if id := mem.Object.(*ast.Ident); id.Ref != nil {
			t.Fatalf("console ref = %+v, want nil (dynamic)", id.Ref)
		}
	}
}

// The global (program) scope is deliberately dynamic: top-level
// declarations and uses get no slot coordinates.
func TestGlobalScopeStaysDynamic(t *testing.T) {
	prog := parse(t, `let a = 1; console.log(a);`)
	res := resolve.Resolve(prog)
	decl := prog.Body[0].(*ast.VarDecl).Decls[0]
	if decl.Ref != nil {
		t.Fatalf("top-level declaration ref = %+v, want nil", decl.Ref)
	}
	use := prog.Body[1].(*ast.ExprStmt).X.(*ast.CallExpr).Args[0].(*ast.Ident)
	if use.Ref != nil {
		t.Fatalf("top-level use ref = %+v, want nil", use.Ref)
	}
	if res.Dynamic == 0 {
		t.Fatal("Dynamic counter must record the unresolved references")
	}
}

// A var declared in a bare (non-block) branch body executes its Define in
// the surrounding environment, so it must be collected into the
// surrounding scope.
func TestBareBranchVarCollectedIntoEnclosingScope(t *testing.T) {
	prog := parse(t, `function f(c) { if (c) var x = 1; return x; }`)
	resolve.Resolve(prog)
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	slot(t, fn.Scope, "x", 3) // this, arguments, c, x
	ret := fn.Body.Body[1].(*ast.ReturnStmt).Value.(*ast.Ident)
	if ret.Ref == nil || ret.Ref.Depth != 0 || ret.Ref.Slot != 3 {
		t.Fatalf("x use ref = %+v, want {0 3}", ret.Ref)
	}
}

// The for header owns its init declarations; a block body hangs one
// environment below it.
func TestForHeaderScope(t *testing.T) {
	prog := parse(t, `
function f() {
  for (let i = 0; i < 3; i = i + 1) {
    console.log(i);
  }
}`)
	resolve.Resolve(prog)
	loop := prog.Body[0].(*ast.FuncDecl).Fn.Body.Body[0].(*ast.ForStmt)
	slot(t, loop.Scope, "i", 0)
	cond := loop.Cond.(*ast.BinaryExpr).Left.(*ast.Ident)
	if cond.Ref == nil || cond.Ref.Depth != 0 {
		t.Fatalf("cond i ref = %+v, want depth 0", cond.Ref)
	}
	body := loop.Body.(*ast.BlockStmt)
	use := body.Body[0].(*ast.ExprStmt).X.(*ast.CallExpr).Args[0].(*ast.Ident)
	if use.Ref == nil || use.Ref.Depth != 1 {
		t.Fatalf("body i ref = %+v, want depth 1", use.Ref)
	}
}

// A declared for-in/of loop variable gets its own per-iteration scope; a
// bare-name head resolves the name like any other reference.
func TestForInScopes(t *testing.T) {
	prog := parse(t, `
function f(o) {
  for (const k in o) { console.log(k); }
  let t = 0;
  for (t of o) { }
}`)
	resolve.Resolve(prog)
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	decl := fn.Body.Body[0].(*ast.ForInStmt)
	if decl.Scope == nil || decl.Ref == nil || decl.Ref.Depth != 0 || decl.Ref.Slot != 0 {
		t.Fatalf("declared loop var: scope=%v ref=%+v", decl.Scope, decl.Ref)
	}
	use := decl.Body.(*ast.BlockStmt).Body[0].(*ast.ExprStmt).X.(*ast.CallExpr).Args[0].(*ast.Ident)
	if use.Ref == nil || use.Ref.Depth != 1 {
		t.Fatalf("body k ref = %+v, want depth 1", use.Ref)
	}
	bare := fn.Body.Body[2].(*ast.ForInStmt)
	if bare.Scope != nil {
		t.Fatal("bare-name loop head must not allocate a scope")
	}
	if bare.Ref == nil || bare.Ref.Depth != 0 {
		t.Fatalf("bare loop var ref = %+v, want depth 0 into the function scope", bare.Ref)
	}
}

// The catch clause owns its binding at slot 0.
func TestCatchScope(t *testing.T) {
	prog := parse(t, `function f() { try { throw 1; } catch (e) { return e; } }`)
	resolve.Resolve(prog)
	try := prog.Body[0].(*ast.FuncDecl).Fn.Body.Body[0].(*ast.TryStmt)
	if try.CatchRef == nil || try.CatchRef.Slot != 0 {
		t.Fatalf("catch ref = %+v", try.CatchRef)
	}
	slot(t, try.Catch.Scope, "e", 0)
	ret := try.Catch.Body[0].(*ast.ReturnStmt).Value.(*ast.Ident)
	if ret.Ref == nil || ret.Ref.Depth != 0 || ret.Ref.Slot != 0 {
		t.Fatalf("e use ref = %+v, want {0 0}", ret.Ref)
	}
}

// All case bodies of a switch share one scope.
func TestSwitchSharedScope(t *testing.T) {
	prog := parse(t, `
function f(v) {
  switch (v) {
    case 1: let a = 1; return a;
    default: return a;
  }
}`)
	resolve.Resolve(prog)
	sw := prog.Body[0].(*ast.FuncDecl).Fn.Body.Body[0].(*ast.SwitchStmt)
	slot(t, sw.Scope, "a", 0)
	caseRet := sw.Cases[0].Body[1].(*ast.ReturnStmt).Value.(*ast.Ident)
	defRet := sw.Cases[1].Body[0].(*ast.ReturnStmt).Value.(*ast.Ident)
	for _, id := range []*ast.Ident{caseRet, defRet} {
		if id.Ref == nil || id.Ref.Depth != 0 || id.Ref.Slot != 0 {
			t.Fatalf("case-body a ref = %+v, want {0 0}", id.Ref)
		}
	}
}

// Resolution is idempotent: re-resolving an annotated program recomputes
// identical coverage statistics.
func TestResolveIdempotent(t *testing.T) {
	prog := parse(t, `
function outer(a) {
  let xs = [a, 2, 3];
  for (const x of xs) {
    try { console.log(x); } catch (e) { console.log(e); }
  }
  return function inner() { return a; };
}
outer(1)();
`)
	first := *resolve.Resolve(prog)
	second := *resolve.Resolve(prog)
	if first != second {
		t.Fatalf("resolve not idempotent: %+v vs %+v", first, second)
	}
	if first.Scopes == 0 || first.Slots == 0 || first.Resolved == 0 {
		t.Fatalf("coverage counters empty: %+v", first)
	}
}
