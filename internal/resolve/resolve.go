// Package resolve is the static scope-resolution pass that runs after
// parsing. It annotates the AST in place with the slot layout of every
// lexical scope the interpreter will create at run time, and with a
// (depth, slot) coordinate on every identifier reference that can be
// resolved statically. The interpreter turns those annotations into flat
// slot-array environments with indexed access; anything left un-annotated
// falls back to the original map-based name walk, so resolution is purely
// an optimization and never changes observable semantics.
//
// The static scope tree mirrors the runtime environment chain exactly,
// one scope per environment the interpreter creates:
//
//	function body   one scope: `this` (slot 0) and `arguments` (slot 1)
//	                for non-arrows, then parameters, then the body's
//	                declarations
//	block           one scope per { ... } executed as a statement, try
//	                body, catch clause (including the catch binding) or
//	                finally clause
//	for header      one scope holding the init declarations; with a
//	                let/const init the interpreter copies it per iteration
//	for-in/of       one scope per iteration holding the declared loop
//	                variable (none when the head assigns an outer name)
//	switch          one scope shared by every case body
//
// Non-block branch bodies (`if (c) var x = 1`) execute directly in the
// surrounding environment, so their declarations are collected into the
// surrounding scope rather than a scope of their own.
//
// The global (program) scope is deliberately dynamic: host modules, the
// tracker's __t object, module shims and sloppy-mode implicit globals are
// injected there at arbitrary times, so top-level names always take the
// map path. A name that resolves nowhere (a global or a genuinely
// undefined name) gets a nil Ref.
package resolve

import "turnstile/internal/ast"

// Result reports resolver coverage for telemetry.
type Result struct {
	// Scopes is the number of static scopes created.
	Scopes int
	// Slots is the total number of slots allocated across all scopes.
	Slots int
	// Resolved counts identifier references and declarations annotated
	// with a slot coordinate.
	Resolved int
	// Dynamic counts references left on the map path (globals, implicit
	// globals, names declared only in dynamic scopes).
	Dynamic int
}

// scope is one node of the static scope tree. A nil *scope is the dynamic
// global scope: resolution stops there and the reference stays dynamic.
type scope struct {
	parent *scope
	info   *ast.ScopeInfo
}

type resolver struct {
	res Result
}

// Resolve annotates prog in place and returns coverage statistics. It is
// idempotent: re-resolving an already-annotated program recomputes the
// same annotations.
func Resolve(prog *ast.Program) *Result {
	r := &resolver{}
	r.stmts(prog.Body, nil)
	return &r.res
}

func (r *resolver) newScope(parent *scope) *scope {
	r.res.Scopes++
	return &scope{parent: parent, info: &ast.ScopeInfo{}}
}

func (r *resolver) addSlot(sc *scope, name string) int {
	before := sc.info.NumSlots()
	i := sc.info.AddSlot(name)
	if sc.info.NumSlots() > before {
		r.res.Slots++
	}
	return i
}

// defineRef resolves a declaration executed in the current environment:
// it binds at depth 0 or not at all (a Define never walks outward).
func (r *resolver) defineRef(sc *scope, name string) *ast.VarRef {
	if sc != nil {
		if i, ok := sc.info.Slot(name); ok {
			r.res.Resolved++
			return &ast.VarRef{Depth: 0, Slot: i}
		}
	}
	r.res.Dynamic++
	return nil
}

// useRef resolves a reference by walking the static scope chain, one
// depth unit per runtime environment hop.
func (r *resolver) useRef(sc *scope, name string) *ast.VarRef {
	depth := 0
	for s := sc; s != nil; s = s.parent {
		if i, ok := s.info.Slot(name); ok {
			r.res.Resolved++
			return &ast.VarRef{Depth: depth, Slot: i}
		}
		depth++
	}
	r.res.Dynamic++
	return nil
}

// ---------------------------------------------------------------------------
// Declaration collection
//
// collect gathers every name a statement list will define into the
// environment it executes in: declarations in the list itself, plus
// declarations reached through non-block branch bodies, which the
// interpreter executes directly in the same environment.

func (r *resolver) collect(sc *scope, stmts []ast.Stmt) {
	for _, s := range stmts {
		r.collectStmt(sc, s, true)
	}
}

func (r *resolver) collectStmt(sc *scope, s ast.Stmt, direct bool) {
	switch x := s.(type) {
	case *ast.VarDecl:
		for _, d := range x.Decls {
			r.addSlot(sc, d.Name)
		}
	case *ast.FuncDecl:
		// hoisting is per statement list, so a FuncDecl appearing as a
		// bare branch body never executes its Define
		if direct {
			r.addSlot(sc, x.Name)
		}
	case *ast.ClassDecl:
		r.addSlot(sc, x.Name)
	case *ast.IfStmt:
		r.collectBranch(sc, x.Then)
		r.collectBranch(sc, x.Else)
	case *ast.WhileStmt:
		r.collectBranch(sc, x.Body)
	case *ast.DoWhileStmt:
		r.collectBranch(sc, x.Body)
	case *ast.ForInStmt:
		// with no head declaration the body runs in the surrounding
		// environment; a declared loop variable gets its own scope
		if !x.Decl {
			r.collectBranch(sc, x.Body)
		}
	}
}

// collectBranch collects from a branch/loop body unless it is a block
// (blocks own their environment and are collected separately).
func (r *resolver) collectBranch(sc *scope, s ast.Stmt) {
	if s == nil {
		return
	}
	if _, isBlock := s.(*ast.BlockStmt); isBlock {
		return
	}
	r.collectStmt(sc, s, false)
}

// ---------------------------------------------------------------------------
// Statements

func (r *resolver) stmts(list []ast.Stmt, sc *scope) {
	for _, s := range list {
		r.stmt(s, sc)
	}
}

func (r *resolver) block(b *ast.BlockStmt, sc *scope) {
	bs := r.newScope(sc)
	b.Scope = bs.info
	r.collect(bs, b.Body)
	r.stmts(b.Body, bs)
}

// branch resolves a branch/loop body: blocks get their own scope,
// anything else resolves in the surrounding scope (mirroring execBranch).
func (r *resolver) branch(s ast.Stmt, sc *scope) {
	if s == nil {
		return
	}
	if b, isBlock := s.(*ast.BlockStmt); isBlock {
		r.block(b, sc)
		return
	}
	r.stmt(s, sc)
}

func (r *resolver) stmt(s ast.Stmt, sc *scope) {
	switch x := s.(type) {
	case *ast.VarDecl:
		for _, d := range x.Decls {
			if d.Init != nil {
				r.expr(d.Init, sc)
			}
			d.Ref = r.defineRef(sc, d.Name)
		}
	case *ast.FuncDecl:
		x.Ref = r.defineRef(sc, x.Name)
		r.funcLit(x.Fn, sc)
	case *ast.ClassDecl:
		x.Ref = r.defineRef(sc, x.Name)
		if x.SuperClass != nil {
			r.expr(x.SuperClass, sc)
		}
		for _, m := range x.Methods {
			r.funcLit(m.Fn, sc)
		}
	case *ast.ExprStmt:
		r.expr(x.X, sc)
	case *ast.ReturnStmt:
		if x.Value != nil {
			r.expr(x.Value, sc)
		}
	case *ast.IfStmt:
		r.expr(x.Cond, sc)
		r.branch(x.Then, sc)
		r.branch(x.Else, sc)
	case *ast.BlockStmt:
		r.block(x, sc)
	case *ast.ForStmt:
		hs := r.newScope(sc)
		x.Scope = hs.info
		if vd, isDecl := x.Init.(*ast.VarDecl); isDecl {
			for _, d := range vd.Decls {
				r.addSlot(hs, d.Name)
			}
		}
		// a bare (non-block) body executes in the header environment
		r.collectBranch(hs, x.Body)
		if x.Init != nil {
			r.stmt(x.Init, hs)
		}
		if x.Cond != nil {
			r.expr(x.Cond, hs)
		}
		r.branch(x.Body, hs)
		if x.Post != nil {
			r.expr(x.Post, hs)
		}
	case *ast.ForInStmt:
		r.expr(x.Object, sc)
		if x.Decl {
			is := r.newScope(sc)
			x.Scope = is.info
			slot := r.addSlot(is, x.Name)
			x.Ref = &ast.VarRef{Depth: 0, Slot: slot}
			r.res.Resolved++
			r.collectBranch(is, x.Body)
			r.branch(x.Body, is)
		} else {
			x.Ref = r.useRef(sc, x.Name)
			r.branch(x.Body, sc)
		}
	case *ast.WhileStmt:
		r.expr(x.Cond, sc)
		r.branch(x.Body, sc)
	case *ast.DoWhileStmt:
		r.branch(x.Body, sc)
		r.expr(x.Cond, sc)
	case *ast.ThrowStmt:
		r.expr(x.Value, sc)
	case *ast.TryStmt:
		r.block(x.Body, sc)
		if x.Catch != nil {
			cs := r.newScope(sc)
			x.Catch.Scope = cs.info
			if x.CatchVar != "" {
				slot := r.addSlot(cs, x.CatchVar)
				x.CatchRef = &ast.VarRef{Depth: 0, Slot: slot}
				r.res.Resolved++
			}
			r.collect(cs, x.Catch.Body)
			r.stmts(x.Catch.Body, cs)
		}
		if x.Finally != nil {
			r.block(x.Finally, sc)
		}
	case *ast.SwitchStmt:
		r.expr(x.Disc, sc)
		ss := r.newScope(sc)
		x.Scope = ss.info
		for _, cs := range x.Cases {
			r.collect(ss, cs.Body)
		}
		for _, cs := range x.Cases {
			if cs.Test != nil {
				r.expr(cs.Test, ss)
			}
			r.stmts(cs.Body, ss)
		}
	}
	// Break/Continue/Empty: nothing to resolve
}

// ---------------------------------------------------------------------------
// Expressions

func (r *resolver) funcLit(fn *ast.FuncLit, sc *scope) {
	fs := r.newScope(sc)
	fn.Scope = fs.info
	if !fn.Arrow {
		// fixed layout relied on by the interpreter's call fast path
		r.addSlot(fs, "this")      // slot 0
		r.addSlot(fs, "arguments") // slot 1
	}
	for _, p := range fn.Params {
		slot := r.addSlot(fs, p.Name)
		p.Ref = &ast.VarRef{Depth: 0, Slot: slot}
		r.res.Resolved++
	}
	if fn.Body != nil {
		r.collect(fs, fn.Body.Body)
		r.stmts(fn.Body.Body, fs)
	}
	if fn.ExprRet != nil {
		r.expr(fn.ExprRet, fs)
	}
}

func (r *resolver) exprs(list []ast.Expr, sc *scope) {
	for _, e := range list {
		r.expr(e, sc)
	}
}

func (r *resolver) expr(e ast.Expr, sc *scope) {
	switch x := e.(type) {
	case *ast.Ident:
		x.Ref = r.useRef(sc, x.Name)
	case *ast.ThisExpr:
		x.Ref = r.useRef(sc, "this")
	case *ast.TemplateLit:
		r.exprs(x.Exprs, sc)
	case *ast.ArrayLit:
		r.exprs(x.Elems, sc)
	case *ast.ObjectLit:
		for _, p := range x.Props {
			if p.Computed && p.KeyExpr != nil {
				r.expr(p.KeyExpr, sc)
			}
			if p.Value != nil {
				r.expr(p.Value, sc)
			}
		}
	case *ast.FuncLit:
		r.funcLit(x, sc)
	case *ast.CallExpr:
		r.expr(x.Callee, sc)
		r.exprs(x.Args, sc)
	case *ast.NewExpr:
		r.expr(x.Callee, sc)
		r.exprs(x.Args, sc)
	case *ast.MemberExpr:
		r.expr(x.Object, sc)
		if x.Computed {
			r.expr(x.Index, sc)
		}
	case *ast.BinaryExpr:
		r.expr(x.Left, sc)
		r.expr(x.Right, sc)
	case *ast.LogicalExpr:
		r.expr(x.Left, sc)
		r.expr(x.Right, sc)
	case *ast.UnaryExpr:
		r.expr(x.X, sc)
	case *ast.UpdateExpr:
		r.expr(x.X, sc)
	case *ast.AssignExpr:
		r.expr(x.Target, sc)
		r.expr(x.Value, sc)
	case *ast.CondExpr:
		r.expr(x.Cond, sc)
		r.expr(x.Then, sc)
		r.expr(x.Else, sc)
	case *ast.SeqExpr:
		r.exprs(x.Exprs, sc)
	case *ast.AwaitExpr:
		r.expr(x.X, sc)
	case *ast.SpreadExpr:
		r.expr(x.X, sc)
	}
	// literals: nothing to resolve
}
