// Package workload implements the input-stream machinery of §6.2: message
// generation at a fixed rate f Hz and the computation of end-to-end
// processing time for a stream of n messages.
//
// The paper streams 1000 messages in real time at rates from 2 Hz to
// 1000 Hz. Re-running every configuration in real time costs hours of pure
// idle waiting (500 s per run at 2 Hz); this package instead measures the
// real per-message service times by executing the application, then
// computes the stream completion time with an exact single-server FIFO
// queue simulation: message i arrives at i/f, starts when the previous
// message finishes (or on arrival, whichever is later), and occupies the
// server for its measured service time. This reproduces precisely the
// rate-dependent behaviour of Fig. 11 — at low rates the stream is
// idle-dominated and the relative run-time approaches 1; at high rates it
// is service-dominated and approaches the service-time ratio. A real-time
// pacer (RealTimeStream) is also provided and used in integration tests.
package workload

import (
	"fmt"
	"time"
)

// Service is a per-message service-time profile, as measured by running
// the application under test.
type Service []time.Duration

// Total returns the sum of service times (the busy time of the server).
func (s Service) Total() time.Duration {
	var t time.Duration
	for _, d := range s {
		t += d
	}
	return t
}

// CompletionTime simulates a FIFO single-server queue fed at rate hz and
// returns when the last message finishes, measured from the first arrival.
func CompletionTime(s Service, hz float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	if hz <= 0 {
		return s.Total()
	}
	period := time.Duration(float64(time.Second) / hz)
	var finish time.Duration
	for i, d := range s {
		arrival := time.Duration(i) * period
		start := arrival
		if finish > start {
			start = finish
		}
		finish = start + d
	}
	return finish
}

// RelativeRuntime returns t/t_og for a managed service profile against the
// original profile at the given rate — the y-axis of Figs. 11 and 12.
func RelativeRuntime(managed, original Service, hz float64) float64 {
	ot := CompletionTime(original, hz)
	if ot == 0 {
		return 1
	}
	return float64(CompletionTime(managed, hz)) / float64(ot)
}

// Rates is the input-rate sweep of Fig. 11 (Hz).
var Rates = []float64{2, 5, 10, 30, 100, 250, 500, 1000}

// Measure runs process(i) for n messages and records each service time.
func Measure(n int, process func(i int) error) (Service, error) {
	s := make(Service, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := process(i); err != nil {
			return nil, fmt.Errorf("workload: message %d: %w", i, err)
		}
		s[i] = time.Since(start)
	}
	return s, nil
}

// RealTimeStream paces process(i) at hz in wall-clock time, like the
// paper's test rig, and returns the total elapsed time.
func RealTimeStream(n int, hz float64, process func(i int) error) (time.Duration, error) {
	period := time.Duration(float64(time.Second) / hz)
	start := time.Now()
	for i := 0; i < n; i++ {
		next := start.Add(time.Duration(i) * period)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		if err := process(i); err != nil {
			return 0, fmt.Errorf("workload: message %d: %w", i, err)
		}
	}
	return time.Since(start), nil
}

// Percentile returns the p-quantile (0..1) of already-sorted values.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
