// Package workload implements the input-stream machinery of §6.2: message
// generation at a fixed rate f Hz and the computation of end-to-end
// processing time for a stream of n messages.
//
// The paper streams 1000 messages in real time at rates from 2 Hz to
// 1000 Hz. Re-running every configuration in real time costs hours of pure
// idle waiting (500 s per run at 2 Hz); this package instead measures the
// real per-message service times by executing the application, then
// computes the stream completion time with an exact single-server FIFO
// queue simulation: message i arrives at i/f, starts when the previous
// message finishes (or on arrival, whichever is later), and occupies the
// server for its measured service time. This reproduces precisely the
// rate-dependent behaviour of Fig. 11 — at low rates the stream is
// idle-dominated and the relative run-time approaches 1; at high rates it
// is service-dominated and approaches the service-time ratio. A real-time
// pacer (RealTimeStream) is also provided and used in integration tests.
package workload

import (
	"fmt"
	"time"
)

// Service is a per-message service-time profile, as measured by running
// the application under test.
type Service []time.Duration

// Total returns the sum of service times (the busy time of the server).
func (s Service) Total() time.Duration {
	var t time.Duration
	for _, d := range s {
		t += d
	}
	return t
}

// CompletionTime simulates a FIFO single-server queue fed at rate hz and
// returns when the last message finishes, measured from the first arrival.
func CompletionTime(s Service, hz float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	if hz <= 0 {
		return s.Total()
	}
	period := time.Duration(float64(time.Second) / hz)
	var finish time.Duration
	for i, d := range s {
		arrival := time.Duration(i) * period
		start := arrival
		if finish > start {
			start = finish
		}
		finish = start + d
	}
	return finish
}

// RelativeRuntime returns t/t_og for a managed service profile against the
// original profile at the given rate — the y-axis of Figs. 11 and 12.
func RelativeRuntime(managed, original Service, hz float64) float64 {
	ot := CompletionTime(original, hz)
	if ot == 0 {
		return 1
	}
	return float64(CompletionTime(managed, hz)) / float64(ot)
}

// Rates is the input-rate sweep of Fig. 11 (Hz).
var Rates = []float64{2, 5, 10, 30, 100, 250, 500, 1000}

// Measure runs process(i) for n messages and records each service time.
func Measure(n int, process func(i int) error) (Service, error) {
	s := make(Service, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := process(i); err != nil {
			return nil, fmt.Errorf("workload: message %d: %w", i, err)
		}
		s[i] = time.Since(start)
	}
	return s, nil
}

// RealTimeStream paces process(i) at hz in wall-clock time, like the
// paper's test rig, and returns the total elapsed time.
func RealTimeStream(n int, hz float64, process func(i int) error) (time.Duration, error) {
	period := time.Duration(float64(time.Second) / hz)
	start := time.Now()
	for i := 0; i < n; i++ {
		next := start.Add(time.Duration(i) * period)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		if err := process(i); err != nil {
			return 0, fmt.Errorf("workload: message %d: %w", i, err)
		}
	}
	return time.Since(start), nil
}

// Arrival is one generated stream event for the serve daemon: an arrival
// tick on the tenant's virtual clock and a frame-shaped payload.
type Arrival struct {
	Tick    int64
	Payload string
}

// GenerateTrace builds a deterministic arrival trace for one tenant: n
// messages with seeded inter-arrival gaps in [1, maxGap] virtual ticks
// and paper-style frame payloads ("person<i>:E<k>" / "person<i>:",
// roughly half carrying the "E" marker so value-dependent labelling
// exercises both branches). The trace is a pure function of (seed, name)
// — no shared PRNG stream — so adding a tenant never perturbs another
// tenant's traffic.
func GenerateTrace(seed int64, name string, n int, maxGap int64) []Arrival {
	if maxGap < 1 {
		maxGap = 1
	}
	h := mix64(uint64(seed) ^ hash64(name))
	out := make([]Arrival, n)
	var tick int64
	for i := range out {
		h = mix64(h)
		tick += 1 + int64(h%uint64(maxGap))
		h = mix64(h)
		payload := fmt.Sprintf("person%d:", i)
		if h%2 == 0 {
			payload = fmt.Sprintf("person%d:E%d", i, h%97)
		}
		out[i] = Arrival{Tick: tick, Payload: payload}
	}
	return out
}

// mix64 is SplitMix64 — platform-stable seeded mixing, inlined to keep
// the package dependency-free (the repo's standard determinism idiom).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hash64 is FNV-1a, inlined for the same reason.
func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Percentile returns the p-quantile (0..1) of already-sorted values.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
