package workload

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func constService(n int, d time.Duration) Service {
	s := make(Service, n)
	for i := range s {
		s[i] = d
	}
	return s
}

func TestCompletionIdleDominated(t *testing.T) {
	// 10 messages at 2 Hz, 1 ms service each: the stream is idle-dominated
	// and completes at the last arrival + service.
	s := constService(10, time.Millisecond)
	got := CompletionTime(s, 2)
	want := 9*500*time.Millisecond + time.Millisecond
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCompletionServiceDominated(t *testing.T) {
	// service 10 ms, arrivals every 1 ms: the server is the bottleneck.
	s := constService(100, 10*time.Millisecond)
	got := CompletionTime(s, 1000)
	want := 100 * 10 * time.Millisecond
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRelativeRuntimeShape(t *testing.T) {
	// the Fig. 11 shape: with 20% slower processing, relative run-time is
	// ≈1 at low rates and →1.2 at high rates.
	orig := constService(1000, time.Millisecond)
	managed := constService(1000, 1200*time.Microsecond)
	low := RelativeRuntime(managed, orig, 2)
	high := RelativeRuntime(managed, orig, 1000)
	if low > 1.001 {
		t.Fatalf("low-rate relative runtime = %f, want ≈1", low)
	}
	if math.Abs(high-1.2) > 0.01 {
		t.Fatalf("high-rate relative runtime = %f, want ≈1.2", high)
	}
	// monotone growth across the sweep
	prev := 0.0
	for _, hz := range Rates {
		r := RelativeRuntime(managed, orig, hz)
		if r+1e-9 < prev {
			t.Fatalf("relative runtime not monotone at %v Hz: %f < %f", hz, r, prev)
		}
		prev = r
	}
}

func TestCrossoverRate(t *testing.T) {
	// the overhead becomes visible once the service time approaches the
	// inter-arrival period: 1 ms service ⇒ crossover near 1000 Hz.
	orig := constService(500, time.Millisecond)
	managed := constService(500, 2*time.Millisecond)
	at100 := RelativeRuntime(managed, orig, 100) // period 10 ms ≫ service
	at1000 := RelativeRuntime(managed, orig, 1000)
	if at100 > 1.01 {
		t.Fatalf("at 100 Hz = %f", at100)
	}
	if at1000 < 1.9 {
		t.Fatalf("at 1000 Hz = %f", at1000)
	}
}

func TestEmptyAndZeroRate(t *testing.T) {
	if CompletionTime(nil, 30) != 0 {
		t.Fatal("empty service")
	}
	s := constService(3, time.Millisecond)
	if CompletionTime(s, 0) != 3*time.Millisecond {
		t.Fatal("zero rate should be back-to-back")
	}
	if RelativeRuntime(s, nil, 30) != 1 {
		t.Fatal("empty original")
	}
}

func TestMeasure(t *testing.T) {
	calls := 0
	s, err := Measure(5, func(i int) error {
		calls++
		if i != calls-1 {
			t.Fatalf("order: %d", i)
		}
		return nil
	})
	if err != nil || len(s) != 5 {
		t.Fatalf("s=%v err=%v", s, err)
	}
	boom := errors.New("boom")
	if _, err := Measure(3, func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRealTimeStreamPaces(t *testing.T) {
	n := 20
	hz := 200.0 // 5 ms period → ≥95 ms total
	elapsed, err := RealTimeStream(n, hz, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	minimum := time.Duration(float64(n-1)*1000/hz) * time.Millisecond
	if elapsed < minimum {
		t.Fatalf("elapsed %v < floor %v", elapsed, minimum)
	}
	if elapsed > 3*minimum {
		t.Fatalf("elapsed %v way over floor %v", elapsed, minimum)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if Percentile(vals, 0) != 1 || Percentile(vals, 1) != 5 || Percentile(vals, 0.5) != 3 {
		t.Fatal("percentiles wrong")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

// Property: completion time is monotone in rate (faster arrivals never
// finish later) and bounded below by total service time.
func TestQuickCompletionBounds(t *testing.T) {
	f := func(raw []uint16, hzSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		s := make(Service, len(raw))
		for i, r := range raw {
			s[i] = time.Duration(r%5000) * time.Microsecond
		}
		hz1 := 1 + float64(hzSeed%100)
		hz2 := hz1 * 2
		c1 := CompletionTime(s, hz1)
		c2 := CompletionTime(s, hz2)
		if c2 > c1 {
			return false // higher rate must not slow completion
		}
		return c1 >= s.Total() && c2 >= s.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: relative runtime of identical profiles is exactly 1.
func TestQuickSelfRelative(t *testing.T) {
	f := func(raw []uint16, hzSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := make(Service, len(raw))
		for i, r := range raw {
			s[i] = time.Duration(r) * time.Microsecond
		}
		hz := 1 + float64(hzSeed)
		return RelativeRuntime(s, s, hz) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatesSweep(t *testing.T) {
	if len(Rates) < 5 || Rates[0] != 2 || Rates[len(Rates)-1] != 1000 {
		t.Fatalf("rates = %v", Rates)
	}
	if !sort.Float64sAreSorted(Rates) {
		t.Fatal("rates must ascend")
	}
}
