// CNF-mode tracker extensions: integrity facts, integrity-guarded
// exchange rewriting, robust declassification and transparent endorsement
// (the CFC model layered over the flat tracker of §4.4).
//
// Everything here is gated on t.cnf, which NewTracker derives from
// Policy.HasCNF: a flat policy never reaches any of this code, so the
// Figure-10 fast path — and its byte-identical output — is untouched.
package dift

import (
	"turnstile/internal/policy"
	"turnstile/internal/telemetry"
)

// CNFEnabled reports whether the tracker runs the clause-aware extensions.
func (t *Tracker) CNFEnabled() bool { return t.cnf }

// IntegrityOf returns the integrity facts attached directly to v (nil when
// untracked). Unlike confidentiality, integrity is read shallowly here;
// DataIntegrity walks containers.
func (t *Tracker) IntegrityOf(v any) policy.LabelSet {
	if r, ok := v.(Ref); ok {
		return t.integ[r.RefID()]
	}
	return nil
}

// AttachIntegrity binds integrity facts to v, boxing value types exactly
// like Attach; the (possibly boxed) value is returned and must replace v.
func (t *Tracker) AttachIntegrity(v any, is policy.LabelSet) any {
	if is.Empty() {
		return v
	}
	if r, ok := v.(Ref); ok {
		t.integ[r.RefID()] = t.integ[r.RefID()].Union(is)
		return v
	}
	if !t.Adapter.IsReference(v) {
		b := t.newBox(v)
		t.integ[b.RefID()] = is.Clone()
		return b
	}
	return v
}

// DataIntegrity collects the integrity facts of v and the values reachable
// from it (elements, boxes and — in CNF mode collection is always deep —
// object properties). Truncation at the depth bound simply stops: losing
// integrity facts is fail-safe (fewer exchanges fire, fewer
// declassifications are trusted), the opposite polarity of DataLabels'
// ⊤ join.
func (t *Tracker) DataIntegrity(v any) policy.LabelSet {
	var union policy.LabelSet
	seen := make(map[uint64]bool)
	t.collectInteg(v, &union, seen, 0)
	return union
}

func (t *Tracker) collectInteg(v any, union *policy.LabelSet, seen map[uint64]bool, depth int) {
	if depth > maxCollectDepth {
		return
	}
	if r, ok := v.(Ref); ok {
		id := r.RefID()
		if seen[id] {
			return
		}
		seen[id] = true
		if is := t.integ[id]; !is.Empty() {
			*union = union.Union(is)
		}
	}
	if elems, ok := t.Adapter.Elements(v); ok {
		for _, el := range elems {
			t.collectInteg(el, union, seen, depth+1)
		}
		return
	}
	if b, ok := v.(*Box); ok {
		t.collectInteg(b.Val, union, seen, depth+1)
		return
	}
	if t.props != nil {
		if names, ok := t.props.PropertyNames(v); ok {
			for _, n := range names {
				if pv, found := t.Adapter.Property(v, n); found {
					t.collectInteg(pv, union, seen, depth+1)
				}
			}
		}
	}
}

// deriveIntegrity propagates integrity facts onto a derived value: the
// union over the sources' facts. Union (not meet) is deliberate — in the
// CFC reading an integrity atom is a *fact in the flow's possession*
// ("this request carries a Paid token"), minted only at transparent
// endorsement points, not a statement that every contributing input was
// trusted. Robustness comes from the endorsement discipline, not from
// meet-propagation. DESIGN.md discusses the trade-off.
func (t *Tracker) deriveIntegrity(out any, sources []any) any {
	var iu policy.LabelSet
	for _, s := range sources {
		iu = iu.Union(t.IntegrityOf(s))
	}
	if iu.Empty() {
		return out
	}
	return t.AttachIntegrity(out, iu)
}

// exchanged applies the policy's exchange rules to a checked data label,
// enabled by the integrity facts reachable from the flowing values.
func (t *Tracker) exchanged(dl policy.LabelSet, values ...any) policy.LabelSet {
	if len(t.Policy.Exchanges) == 0 || dl.Empty() {
		return dl
	}
	var integ policy.LabelSet
	for _, v := range values {
		integ = integ.Union(t.DataIntegrity(v))
	}
	return policy.ApplyExchanges(dl, integ, t.Policy.Exchanges)
}

// cnfViolation records a CNF-rule refusal (declassifier/endorsement abuse)
// and returns it as an error in enforcement mode, mirroring verdict.
func (t *Tracker) cnfViolation(op, site, reason string, data policy.LabelSet) error {
	v := &Violation{Site: site, Op: op, Data: data.Clone(), Reason: reason}
	t.violations = append(t.violations, v)
	t.stats.Violations++
	if h := t.tel; h != nil {
		if h.violation != nil {
			h.violation.Inc()
		}
		t.trace(telemetry.Event{Op: "violation", Site: site, Detail: reason, Labels: LabelStrings(data)})
	}
	if t.OnViolation != nil {
		t.OnViolation(v)
	}
	if t.Enforce {
		return v
	}
	return nil
}

// Declassify implements declassify(v, name): discharge the declassifier's
// Removes atom from v's label, subject to robust declassification — every
// open pc scope whose condition labels are secret must have been guarded
// by a condition carrying the declassifier's Requires integrity fact.
// Otherwise low-integrity data would steer *which* secrets get released
// (the bit-steered declassification loop of the attack corpus). On refusal
// the value keeps its labels: in audit mode the tainted flow then
// surfaces again at the sink, in enforcement mode the error blocks it.
func (t *Tracker) Declassify(v any, name string) (out any, err error) {
	out = v
	site := "declassify:" + name
	if t.FailClosed {
		if t.degraded {
			t.stats.Checks++
			return v, t.denyDegraded("declassify", site)
		}
		defer t.recoverOp("declassify", site, &err)
	}
	if !t.cnf {
		return v, t.cnfViolation("declassify", site, "cnf-disabled", t.LabelsOf(v))
	}
	dec, ok := t.Policy.Declassifier(name)
	if !ok {
		return v, t.cnfViolation("declassify", site, "unknown-declassifier", t.LabelsOf(v))
	}
	if idx, bad := t.untrustedSecretScope(dec.Requires); bad {
		data := t.LabelsOf(v).Union(t.pcStack[idx])
		return v, t.cnfViolation("declassify", site, "robust-declassification", data)
	}
	r, isRef := v.(Ref)
	if !isRef {
		return v, nil // unlabelled value type: nothing to discharge
	}
	ls := t.labels[r.RefID()]
	if ls.Empty() {
		return v, nil
	}
	next := policy.Declassify(ls, dec.Removes)
	if next.Empty() {
		delete(t.labels, r.RefID())
	} else {
		t.labels[r.RefID()] = next
	}
	return v, nil
}

// untrustedSecretScope scans the open pc scopes for one that is secret-
// influenced (non-empty condition labels) but not guarded by the required
// integrity fact; it returns the scope index when found.
func (t *Tracker) untrustedSecretScope(requires policy.Label) (int, bool) {
	for i, scope := range t.pcStack {
		if scope.Empty() {
			continue
		}
		if requires == "" || i >= len(t.pcInteg) || !t.pcInteg[i].Contains(requires) {
			return i, true
		}
	}
	return 0, false
}

// Endorse implements endorse(v, name): attach the endorsement's integrity
// fact to v, subject to transparent endorsement — the pc must be public.
// Endorsing under secret control would both leak (which inputs got
// endorsed reveals the secret) and launder (the minted fact unlocks
// exchanges and declassification downstream).
func (t *Tracker) Endorse(v any, name string) (out any, err error) {
	out = v
	site := "endorse:" + name
	if t.FailClosed {
		if t.degraded {
			t.stats.Checks++
			return v, t.denyDegraded("endorse", site)
		}
		defer t.recoverOp("endorse", site, &err)
	}
	if !t.cnf {
		return v, t.cnfViolation("endorse", site, "cnf-disabled", nil)
	}
	end, ok := t.Policy.Endorsement(name)
	if !ok {
		return v, t.cnfViolation("endorse", site, "unknown-endorsement", nil)
	}
	if pc := t.PC(); !pc.Empty() {
		return v, t.cnfViolation("endorse", site, "opaque-endorsement", pc)
	}
	return t.AttachIntegrity(v, policy.NewLabelSet(end.Adds)), nil
}
