package dift

import "turnstile/internal/policy"

// Implicit-flow tracking (the paper's first future-work direction, §8).
//
// When enabled, the tracker maintains a stack of program-counter (pc)
// label scopes. Entering a conditional region whose condition depends on
// labelled data pushes those labels; values assigned or derived inside the
// region inherit them, so information leaked through *which branch ran*
// (e.g. "the door opened, therefore an authorized person was in the
// frame", §4.6) is caught at the sink like any explicit flow.
//
// The instrumentor's ImplicitFlows mode injects the pushScope/pc/popScope
// calls around conditionals and routes assignments through Assign.

// EnableImplicit turns on pc tracking.
func (t *Tracker) EnableImplicit() { t.implicit = true }

// ImplicitEnabled reports whether pc tracking is on.
func (t *Tracker) ImplicitEnabled() bool { return t.implicit }

// PushScope opens a conditional region with an (initially empty) pc label
// scope. Balanced by PopScope via the instrumentor's try/finally wrapper.
func (t *Tracker) PushScope() {
	if !t.implicit {
		return
	}
	t.pcStack = append(t.pcStack, nil)
	if t.cnf {
		t.pcInteg = append(t.pcInteg, nil)
	}
}

// PCCondition folds the labels of a branch condition into the innermost pc
// scope. Loop conditions are evaluated repeatedly; the scope accumulates.
func (t *Tracker) PCCondition(cond any) {
	if !t.implicit || len(t.pcStack) == 0 {
		return
	}
	top := len(t.pcStack) - 1
	t.pcStack[top] = t.pcStack[top].Union(t.DataLabels(cond))
	if t.cnf && top < len(t.pcInteg) {
		// Scope integrity is the MEET over the scope's conditions: a fact is
		// trusted for the region only if every condition evaluated for it
		// carried the fact. nil marks a scope whose first condition hasn't
		// arrived yet; an empty non-nil set means "initialized, no facts".
		ci := t.DataIntegrity(cond)
		if t.pcInteg[top] == nil {
			if ci == nil {
				ci = policy.NewLabelSet()
			}
			t.pcInteg[top] = ci
		} else {
			t.pcInteg[top] = t.pcInteg[top].Intersect(ci)
		}
	}
}

// PopScope closes the innermost conditional region.
func (t *Tracker) PopScope() {
	if !t.implicit || len(t.pcStack) == 0 {
		return
	}
	t.pcStack = t.pcStack[:len(t.pcStack)-1]
	if t.cnf && len(t.pcInteg) > 0 {
		t.pcInteg = t.pcInteg[:len(t.pcInteg)-1]
	}
}

// ScopeDepth returns the current pc nesting depth (for tests).
func (t *Tracker) ScopeDepth() int { return len(t.pcStack) }

// PC returns the effective pc label: the union over all open scopes.
func (t *Tracker) PC() policy.LabelSet {
	var union policy.LabelSet
	for _, s := range t.pcStack {
		union = union.Union(s)
	}
	return union
}

// Assign labels a value being stored under the current pc — the implicit-
// flow analogue of the Fig. 5 assignment rule. With pc tracking off or an
// empty pc it is the identity, so the instrumentation is free on
// non-secret paths.
func (t *Tracker) Assign(v any) any {
	if !t.implicit {
		return v
	}
	if h := t.tel; h != nil && h.assign != nil {
		h.assign.Inc()
	}
	pc := t.PC()
	if pc.Empty() {
		return v
	}
	t.stats.Derived++
	return t.Attach(v, pc)
}

// pcAugment extends a data label set with the current pc; used by the
// check paths so that even unlabelled data flowing out of a secret branch
// is constrained.
func (t *Tracker) pcAugment(dl policy.LabelSet) policy.LabelSet {
	if !t.implicit {
		return dl
	}
	return dl.Union(t.PC())
}
