package dift

import (
	"os"
	"testing"

	"turnstile/internal/policy"
	"turnstile/internal/telemetry"
)

// BenchmarkDIFTOps measures a representative tracker op mix — Derive,
// Track, Check and InvokeCheck over labelled values on an allowed flow —
// in three variants:
//
//	reference  a test-local copy of the hot path with no telemetry fields
//	           at all (the tracker as it was before the telemetry layer)
//	disabled   the real tracker with telemetry detached (t.tel == nil)
//	enabled    the real tracker with a metrics registry attached
//
// The disabled/reference pair is the regression gate: the telemetry-off
// path must cost no more than one predictable nil-check branch per op.
// scripts/verify.sh runs TestDisabledOverheadGate (below) to hold that
// line.

// disabledOverheadThreshold is the documented noise threshold for the
// gate: min-of-5 disabled ns/op must stay within 40% of min-of-5
// reference ns/op. The true branch cost is low single-digit percent; the
// margin absorbs scheduler and allocator noise on shared machines.
const disabledOverheadThreshold = 1.40

func benchPolicy(tb testing.TB) *policy.Policy {
	tb.Helper()
	r, err := policy.ParseRule("employee -> customer")
	if err != nil {
		tb.Fatal(err)
	}
	p, err := policy.New(nil, []policy.Rule{r}, nil, policy.FlowComparable)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// benchFixture is the shared workload shape: data labelled employee, a
// receiver labelled customer (the flow is allowed, so no violations
// accumulate across iterations), and a scratch object for Derive.
func benchFixture(tb testing.TB, tr *Tracker) (data, recv, tmp *tObj) {
	tb.Helper()
	data, recv, tmp = newObj(), newObj(), newObj()
	if _, err := tr.Label(data, constLabeller("employee")); err != nil {
		tb.Fatal(err)
	}
	if _, err := tr.Label(recv, constLabeller("customer")); err != nil {
		tb.Fatal(err)
	}
	return data, recv, tmp
}

func runOpMix(tr *Tracker, data, recv, tmp *tObj) {
	tr.Derive(tmp, data)
	tr.Track(42)
	_ = tr.Check(data, recv, "bench")
	_ = tr.InvokeCheck(recv, []any{data}, "bench")
}

func benchDisabled(b *testing.B) {
	tr := NewTracker(benchPolicy(b), tAdapter{})
	data, recv, tmp := benchFixture(b, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOpMix(tr, data, recv, tmp)
	}
}

func benchEnabled(b *testing.B) {
	tr := NewTracker(benchPolicy(b), tAdapter{})
	tr.EnableTelemetry(telemetry.NewMetrics(), nil)
	data, recv, tmp := benchFixture(b, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOpMix(tr, data, recv, tmp)
	}
}

func benchReference(b *testing.B) {
	tr := NewTracker(benchPolicy(b), tAdapter{})
	data, recv, tmp := benchFixture(b, tr)
	ref := newRefTracker(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.runOpMix(data, recv, tmp)
	}
}

func BenchmarkDIFTOps(b *testing.B) {
	b.Run("reference", benchReference)
	b.Run("disabled", benchDisabled)
	b.Run("enabled", benchEnabled)
}

// TestDisabledOverheadGate is the verify.sh regression gate on the
// telemetry-disabled path. It is opt-in (TURNSTILE_BENCH_GATE=1) because
// it costs ~10s of benchmarking and wall-clock comparisons do not belong
// in the default -race test sweep.
func TestDisabledOverheadGate(t *testing.T) {
	if os.Getenv("TURNSTILE_BENCH_GATE") == "" {
		t.Skip("set TURNSTILE_BENCH_GATE=1 to run the disabled-path overhead gate")
	}
	minOf := func(f func(b *testing.B)) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	ref := minOf(benchReference)
	dis := minOf(benchDisabled)
	ratio := dis / ref
	t.Logf("reference %.1f ns/op, disabled %.1f ns/op, ratio %.3f (threshold %.2f)",
		ref, dis, ratio, disabledOverheadThreshold)
	if ratio > disabledOverheadThreshold {
		t.Errorf("telemetry-disabled op mix is %.2fx the pre-telemetry reference (threshold %.2fx): "+
			"the disabled path must stay a single nil-check per op", ratio, disabledOverheadThreshold)
	}
}

// --- refTracker: the pre-telemetry hot path, verbatim minus t.tel ----------

// refTracker replays the tracker's Derive/Track/Check/InvokeCheck logic
// with no telemetry fields in the struct at all, as the code stood before
// the telemetry layer. It exists only as the benchmark baseline; keep it
// in lockstep with the real methods when the hot path changes.
type refTracker struct {
	pol       *policy.Policy
	adapter   ValueAdapter
	labels    map[uint64]policy.LabelSet
	invokeFns map[uint64]policy.LabelFunc
	stats     Stats
}

// newRefTracker shares the real tracker's label state so both variants
// operate on identically-labelled values.
func newRefTracker(t *Tracker) *refTracker {
	return &refTracker{pol: t.Policy, adapter: t.Adapter, labels: t.labels, invokeFns: t.invokeFns}
}

func (r *refTracker) runOpMix(data, recv, tmp *tObj) {
	r.derive(tmp, data)
	r.track(42)
	_ = r.check(data, recv, "bench")
	_ = r.invokeCheck(recv, []any{data}, "bench")
}

func (r *refTracker) labelsOf(v any) policy.LabelSet {
	if ref, ok := v.(Ref); ok {
		return r.labels[ref.RefID()]
	}
	return nil
}

func (r *refTracker) attach(v any, ls policy.LabelSet) any {
	if ls.Empty() {
		return v
	}
	if ref, ok := v.(Ref); ok {
		r.labels[ref.RefID()] = r.labels[ref.RefID()].Union(ls)
		return v
	}
	if !r.adapter.IsReference(v) {
		r.stats.Boxed++
		b := &Box{Val: v, id: NextRefID()}
		r.labels[b.RefID()] = ls.Clone()
		return b
	}
	return v
}

func (r *refTracker) derive(result any, sources ...any) any {
	r.stats.Derived++
	var union policy.LabelSet
	for _, s := range sources {
		union = union.Union(r.labelsOf(s))
	}
	if union.Empty() {
		return result
	}
	return r.attach(result, union)
}

func (r *refTracker) track(v any) any {
	if _, ok := v.(Ref); ok {
		return v
	}
	if r.adapter.IsReference(v) {
		return v
	}
	r.stats.Boxed++
	return &Box{Val: v, id: NextRefID()}
}

func (r *refTracker) dataLabels(v any) policy.LabelSet {
	var union policy.LabelSet
	seen := make(map[uint64]bool)
	r.collect(v, &union, seen, 0)
	return union
}

func (r *refTracker) collect(v any, union *policy.LabelSet, seen map[uint64]bool, depth int) {
	if depth > maxCollectDepth {
		return
	}
	if ref, ok := v.(Ref); ok {
		id := ref.RefID()
		if seen[id] {
			return
		}
		seen[id] = true
		if ls := r.labels[id]; !ls.Empty() {
			*union = union.Union(ls)
		}
	}
	if elems, ok := r.adapter.Elements(v); ok {
		for _, el := range elems {
			r.collect(el, union, seen, depth+1)
		}
		return
	}
	if b, ok := v.(*Box); ok {
		r.collect(b.Val, union, seen, depth+1)
	}
}

func (r *refTracker) receiverLabels(recv any, args []any) policy.LabelSet {
	ls := r.labelsOf(recv)
	if ref, ok := recv.(Ref); ok {
		if fn := r.invokeFns[ref.RefID()]; fn != nil {
			raw := make([]any, len(args))
			for i, a := range args {
				raw[i] = Unwrap(a)
			}
			if dyn, err := fn(Unwrap(recv), raw); err == nil {
				ls = ls.Union(dyn)
			}
		}
	}
	return ls
}

func (r *refTracker) verdict(dl, rl policy.LabelSet) error {
	if r.pol.Graph.FlowAllowed(dl, rl, r.pol.Mode) {
		return nil
	}
	r.stats.Violations++
	return nil
}

func (r *refTracker) check(data, recv any, site string) error {
	r.stats.Checks++
	dl := r.dataLabels(data)
	if dl.Empty() {
		return nil
	}
	rl := r.receiverLabels(recv, nil)
	return r.verdict(dl, rl)
}

func (r *refTracker) invokeCheck(fnVal any, args []any, site string) error {
	r.stats.Checks++
	var dl policy.LabelSet
	for _, a := range args {
		dl = dl.Union(r.dataLabels(a))
	}
	if dl.Empty() {
		return nil
	}
	rl := r.receiverLabels(fnVal, args)
	return r.verdict(dl, rl)
}
