package dift

import (
	"strings"
	"testing"

	"turnstile/internal/policy"
)

// cnfAdapter extends the test adapter with deterministic property listing,
// enabling the CNF-mode deep walks over object properties.
type cnfAdapter struct{ tAdapter }

func (cnfAdapter) PropertyNames(v any) ([]string, bool) {
	o, ok := v.(*tObj)
	if !ok {
		return nil, false
	}
	names := make([]string, 0, len(o.props))
	for n := range o.props {
		names = append(names, n)
	}
	return names, true
}

// cnfTracker builds an enforcing tracker over a CNF-extended policy.
func cnfTracker(t *testing.T, rules ...string) *Tracker {
	t.Helper()
	p := testPolicy(t, rules...)
	err := p.SetCNF(
		[]policy.Exchange{{Guard: "Paid", From: "Secret", Adds: []policy.Label{"Licensed"}}},
		[]policy.Declassifier{
			{Name: "release", Removes: "Secret", Requires: "Audited"},
			{Name: "open", Removes: "Secret"}, // no Requires: refuses under ANY secret pc
		},
		[]policy.Endorsement{
			{Name: "audit", Adds: "Audited"},
			{Name: "pay", Adds: "Paid"},
		})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(p, cnfAdapter{})
	tr.Enforce = true
	tr.EnableImplicit()
	return tr
}

func TestCNFEnabledFlag(t *testing.T) {
	if tracker(t, "a -> b").CNFEnabled() {
		t.Fatal("flat tracker claims CNF mode")
	}
	if !cnfTracker(t, "a -> b").CNFEnabled() {
		t.Fatal("CNF policy did not enable CNF mode")
	}
}

func TestDeclassifyOnFlatTrackerRefused(t *testing.T) {
	tr := tracker(t, "a -> b")
	o := newObj()
	if _, err := tr.Declassify(o, "release"); err == nil {
		t.Fatal("flat tracker accepted declassify")
	}
	vs := tr.Violations()
	if len(vs) != 1 || vs[0].Reason != "cnf-disabled" || vs[0].Op != "declassify" {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestDeclassifyUnknownName(t *testing.T) {
	tr := cnfTracker(t)
	if _, err := tr.Declassify(newObj(), "nope"); err == nil {
		t.Fatal("unknown declassifier accepted")
	}
	if vs := tr.Violations(); len(vs) != 1 || vs[0].Reason != "unknown-declassifier" {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestDeclassifyDischargesLabel(t *testing.T) {
	tr := cnfTracker(t)
	o, err := tr.Label(newObj(), constLabeller("Secret", "Other"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Declassify(o, "release")
	if err != nil {
		t.Fatalf("top-level declassify refused: %v", err)
	}
	if ls := tr.LabelsOf(out); !ls.Equal(policy.NewLabelSet("Other")) {
		t.Fatalf("labels after declassify = %v", ls)
	}
	// discharging the last clause removes the table entry entirely
	if out, err = tr.Declassify(out, "release"); err != nil {
		t.Fatal(err)
	}
	o2, _ := tr.Label(newObj(), constLabeller("Secret"))
	if o3, err := tr.Declassify(o2, "release"); err != nil {
		t.Fatal(err)
	} else if ls := tr.LabelsOf(o3); !ls.Empty() {
		t.Fatalf("label entry not removed: %v", ls)
	}
}

func TestRobustDeclassificationRefusesUntrustedScope(t *testing.T) {
	tr := cnfTracker(t)
	secret, _ := tr.Label(newObj(), constLabeller("Secret"))

	tr.PushScope()
	tr.PCCondition(secret) // secret-steered branch, no Audited guard
	if _, err := tr.Declassify(secret, "release"); err == nil {
		t.Fatal("declassify accepted under untrusted secret pc")
	}
	tr.PopScope()

	vs := tr.Violations()
	if len(vs) != 1 || vs[0].Reason != "robust-declassification" || vs[0].Site != "declassify:release" {
		t.Fatalf("violations = %+v", vs)
	}
	// refusal must leave the label intact so the sink still catches it
	if ls := tr.LabelsOf(secret); !ls.Contains("Secret") {
		t.Fatalf("refused declassify stripped the label: %v", ls)
	}
	// a declassifier with no Requires refuses under any secret pc
	tr.PushScope()
	tr.PCCondition(secret)
	if _, err := tr.Declassify(secret, "open"); err == nil {
		t.Fatal("requires-less declassify accepted under secret pc")
	}
	tr.PopScope()
}

func TestRobustDeclassificationAuditRecordsButAllows(t *testing.T) {
	tr := cnfTracker(t)
	tr.Enforce = false
	secret, _ := tr.Label(newObj(), constLabeller("Secret"))
	tr.PushScope()
	tr.PCCondition(secret)
	if _, err := tr.Declassify(secret, "release"); err != nil {
		t.Fatalf("audit mode returned an error: %v", err)
	}
	tr.PopScope()
	if vs := tr.Violations(); len(vs) != 1 || vs[0].Reason != "robust-declassification" {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestEndorsedScopePermitsDeclassification(t *testing.T) {
	tr := cnfTracker(t)
	secret, _ := tr.Label(newObj(), constLabeller("Secret"))

	// endorse a secret-derived gate at toplevel (public pc), then branch on
	// it: the one condition carries both the Secret label and the Audited
	// fact, so the scope is secret-influenced but trusted
	gate, err := tr.Endorse(tr.Derive(newObj(), secret), "audit")
	if err != nil {
		t.Fatal(err)
	}
	tr.PushScope()
	tr.PCCondition(gate)
	out, err := tr.Declassify(secret, "release")
	if err != nil {
		t.Fatalf("declassify refused in endorsed scope: %v", err)
	}
	tr.PopScope()
	if ls := tr.LabelsOf(out); ls.Contains("Secret") {
		t.Fatalf("labels not discharged: %v", ls)
	}
	if len(tr.Violations()) != 0 {
		t.Fatalf("violations = %+v", tr.Violations())
	}
}

func TestPCIntegrityIsMeetAcrossConditions(t *testing.T) {
	tr := cnfTracker(t)
	secret, _ := tr.Label(newObj(), constLabeller("Secret"))
	gate, _ := tr.Endorse(newObj(), "audit")

	// two conditions: one Audited, one not — the scope's integrity is the
	// meet, so the Audited fact must NOT survive
	tr.PushScope()
	tr.PCCondition(gate)
	tr.PCCondition(secret)
	if _, err := tr.Declassify(secret, "release"); err == nil {
		t.Fatal("meet over pc conditions kept a fact only one condition had")
	}
	tr.PopScope()
}

func TestTransparentEndorsementRefusedUnderSecretPC(t *testing.T) {
	tr := cnfTracker(t)
	secret, _ := tr.Label(newObj(), constLabeller("Secret"))
	tr.PushScope()
	tr.PCCondition(secret)
	if _, err := tr.Endorse(newObj(), "audit"); err == nil {
		t.Fatal("endorse accepted under secret pc")
	}
	tr.PopScope()
	if vs := tr.Violations(); len(vs) != 1 || vs[0].Reason != "opaque-endorsement" || vs[0].Site != "endorse:audit" {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestEndorseUnknownAndFlat(t *testing.T) {
	tr := cnfTracker(t)
	if _, err := tr.Endorse(newObj(), "nope"); err == nil {
		t.Fatal("unknown endorsement accepted")
	}
	fl := tracker(t)
	if _, err := fl.Endorse(newObj(), "audit"); err == nil {
		t.Fatal("flat tracker accepted endorse")
	}
}

func TestEndorseBoxesPrimitives(t *testing.T) {
	tr := cnfTracker(t)
	out, err := tr.Endorse(true, "pay")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := out.(*Box)
	if !ok {
		t.Fatalf("primitive not boxed: %T", out)
	}
	if is := tr.IntegrityOf(b); !is.Contains("Paid") {
		t.Fatalf("integrity = %v", is)
	}
}

func TestDeriveUnionsIntegrity(t *testing.T) {
	tr := cnfTracker(t)
	a, _ := tr.Endorse(newObj(), "pay")
	b, _ := tr.Endorse(newObj(), "audit")
	out := tr.Derive(newObj(), a, b)
	if is := tr.IntegrityOf(out); !is.Equal(policy.NewLabelSet("Paid", "Audited")) {
		t.Fatalf("derived integrity = %v", is)
	}
}

func TestDataIntegrityWalksContainers(t *testing.T) {
	tr := cnfTracker(t)
	token, _ := tr.Endorse(newObj(), "pay")
	bundle := newArr(token, newObj())
	if is := tr.DataIntegrity(bundle); !is.Contains("Paid") {
		t.Fatalf("array walk missed integrity: %v", is)
	}
	holder := newObj()
	holder.props["token"] = token
	if is := tr.DataIntegrity(holder); !is.Contains("Paid") {
		t.Fatalf("property walk missed integrity: %v", is)
	}
}

func TestExchangeUnlocksFlow(t *testing.T) {
	// Public -> Secret makes Secret comparable to (and forbidden at) a
	// Public receiver; a Paid token in the same bundle rewrites Secret to
	// Licensed|Secret, whose Licensed alternative is incomparable → allowed.
	tr := cnfTracker(t, "Public -> Secret")
	recv, _ := tr.Label(newObj(), constLabeller("Public"))
	secret, _ := tr.Label(newObj(), constLabeller("Secret"))

	if err := tr.Check(secret, recv, "sink"); err == nil {
		t.Fatal("bare secret flow allowed")
	}
	token, _ := tr.Endorse(newObj(), "pay")
	bundle := newArr(token, secret)
	if err := tr.Check(bundle, recv, "sink"); err != nil {
		t.Fatalf("exchange did not unlock the flow: %v", err)
	}
}

func TestCNFCollectWalksProperties(t *testing.T) {
	// the dynamic-property smuggling vector: a label reachable only through
	// an object property is invisible to the flat collector but found in
	// CNF mode
	secretIn := func(tr *Tracker) any {
		s, err := tr.Label(newObj(), constLabeller("Secret"))
		if err != nil {
			t.Fatal(err)
		}
		holder := newObj()
		holder.props["stash"] = s
		return holder
	}
	fl := tracker(t, "Public -> Secret")
	if dl := fl.DataLabels(secretIn(fl)); dl.Contains("Secret") {
		t.Fatal("flat collector unexpectedly walked properties; CNF traversal is not load-bearing")
	}
	cn := cnfTracker(t, "Public -> Secret")
	if dl := cn.DataLabels(secretIn(cn)); !dl.Contains("Secret") {
		t.Fatalf("CNF collector missed property-stashed label: %v", dl)
	}
}

func TestCNFViolationErrorText(t *testing.T) {
	tr := cnfTracker(t)
	secret, _ := tr.Label(newObj(), constLabeller("Secret"))
	tr.PushScope()
	tr.PCCondition(secret)
	_, err := tr.Declassify(secret, "release")
	tr.PopScope()
	if err == nil {
		t.Fatal("expected refusal")
	}
	msg := err.Error()
	for _, want := range []string{"declassify", "declassify:release", "robust-declassification"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestDeclassifyFailClosedDegraded(t *testing.T) {
	tr := cnfTracker(t)
	tr.FailClosed = true
	tr.Poison("test")
	if _, err := tr.Declassify(newObj(), "release"); err == nil {
		t.Fatal("degraded tracker accepted declassify")
	}
	if _, err := tr.Endorse(newObj(), "audit"); err == nil {
		t.Fatal("degraded tracker accepted endorse")
	}
}
