// Package dift implements Turnstile's Inlined Dynamic Information Flow
// Tracker (§4.4). The tracker is self-contained: it depends only on the
// policy package and an adapter over the host runtime's values, so it can
// be fused into any application (platform-independence, C2).
//
// The tracker maintains the global map from tracked objects to privacy
// labels. Reference-type values carry their own identity (RefID);
// value-type instances are wrapped in a Box container to give two equal
// values distinct labels, exactly as the paper wraps JavaScript primitives
// (§4.4, "Tracking privacy-sensitive information flow"). Boxes are
// unwrapped on writes to sinks so that external interfaces see native
// values.
package dift

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"turnstile/internal/policy"
	"turnstile/internal/telemetry"
)

// Ref is implemented by reference-type runtime values; the identity is used
// as the key in the tracker's label map.
type Ref interface {
	RefID() uint64
}

// Box wraps a value-type instance so it can be tracked. The runtime's
// property/element accesses treat boxes transparently (the MiniJS
// interpreter unwraps them at primitive-operation sites, the analogue of
// the paper's JavaScript Proxy interception).
type Box struct {
	Val any
	id  uint64
}

// RefID implements Ref.
func (b *Box) RefID() uint64 { return b.id }

func (b *Box) String() string { return fmt.Sprintf("Box(%v)", b.Val) }

// Unwrap removes a Box wrapper, returning the native value.
func Unwrap(v any) any {
	if b, ok := v.(*Box); ok {
		return b.Val
	}
	return v
}

// ValueAdapter lets the tracker traverse runtime values without a
// dependency on the interpreter package.
type ValueAdapter interface {
	// Property returns the named property of v, if v has properties.
	Property(v any, name string) (any, bool)
	// SetProperty overwrites the named property; reports success.
	SetProperty(v any, name string, val any) bool
	// Elements returns the element slice of v, if v is an array.
	Elements(v any) ([]any, bool)
	// SetElement overwrites element i; reports success.
	SetElement(v any, i int, val any) bool
	// IsReference reports whether v carries identity of its own.
	IsReference(v any) bool
}

// PropertyLister is an optional extension of ValueAdapter: adapters that
// can enumerate an object's property names let the CNF-mode tracker walk
// object graphs during label collection, closing the dynamic-property
// label-smuggling hole (a secret stashed under a computed key on an
// otherwise clean object). Flat-policy trackers never consult it, so the
// flat collection path — and its cost — is unchanged.
type PropertyLister interface {
	PropertyNames(v any) ([]string, bool)
}

// Violation records one forbidden flow detected at run time.
type Violation struct {
	Site string // source location or API description
	Op   string // "check" or "invoke"
	Data policy.LabelSet
	Recv policy.LabelSet
	// Reason distinguishes policy denials ("" — the rule DAG forbade the
	// flow) from fail-closed denials ("degraded" — the tracker was poisoned
	// by an internal inconsistency and denies everything).
	Reason string
}

func (v *Violation) Error() string {
	switch v.Reason {
	case "":
		return fmt.Sprintf("dift: policy violation at %s (%s): data %v may not flow to receiver %v",
			v.Site, v.Op, v.Data, v.Recv)
	case "degraded":
		return fmt.Sprintf("dift: flow denied at %s (%s): tracker %s", v.Site, v.Op, v.Reason)
	default:
		// CNF-rule refusals (robust-declassification, opaque-endorsement,
		// unknown-declassifier, ...) carry no receiver.
		return fmt.Sprintf("dift: %s denied at %s: %s (data %v)", v.Op, v.Site, v.Reason, v.Data)
	}
}

// MarshalJSON renders the violation for audit logs.
func (v *Violation) MarshalJSON() ([]byte, error) {
	type row struct {
		Site   string   `json:"site"`
		Op     string   `json:"op"`
		Data   []string `json:"data"`
		Recv   []string `json:"receiver"`
		Reason string   `json:"reason,omitempty"`
	}
	toStrings := func(ls policy.LabelSet) []string {
		out := make([]string, 0, len(ls))
		for _, l := range ls.Slice() {
			out = append(out, string(l))
		}
		return out
	}
	return json.Marshal(row{Site: v.Site, Op: v.Op, Data: toStrings(v.Data), Recv: toStrings(v.Recv), Reason: v.Reason})
}

// Stats counts tracker activity; used by the benchmarks and tests.
type Stats struct {
	Labelled   int // label() applications
	Boxed      int // value-type wrappings
	Derived    int // label propagations (binaryOp/assign/derive)
	Checks     int // flow checks
	Violations int
}

// Tracker is one inlined DIF Tracker instance (the τ object of Fig. 2b).
// A tracker is created at application startup with the application's IFC
// policy and is not safe for concurrent use (MiniJS, like Node.js, is
// single-threaded per application).
type Tracker struct {
	Policy  *policy.Policy
	Adapter ValueAdapter

	// Enforce selects enforcement mode: violating flows are blocked and
	// reported as errors. When false the tracker audits: violations are
	// recorded but flows proceed.
	Enforce bool

	// OnViolation, when set, observes each violation as it is found.
	OnViolation func(*Violation)

	// FailClosed selects fail-closed mode: any internal tracker
	// inconsistency — collect-depth overflow, label-table corruption, a
	// recovered panic inside a tracker op — poisons the tracker, after
	// which every sink check denies with reason "degraded" regardless of
	// Enforce. Off (the default), the tracker still never drops labels
	// silently (truncation joins policy.Top), but panics propagate to the
	// stage boundary and audit mode keeps auditing.
	FailClosed bool

	labels     map[uint64]policy.LabelSet
	invokeFns  map[uint64]policy.LabelFunc
	violations []*Violation
	stats      Stats

	// degraded/degradedReason form the poison latch (see Poison).
	degraded       bool
	degradedReason string

	// tel, when non-nil, holds the pre-resolved telemetry handles. Every
	// hook below guards on this one field, so the telemetry-off hot path
	// costs a single predictable branch per operation (the benchmark gate
	// in scripts/verify.sh holds that line).
	tel *telHooks

	// implicit-flow tracking (see implicit.go)
	implicit bool
	pcStack  []policy.LabelSet

	// CNF extension (see declass.go). cnf gates every clause-aware code
	// path and is derived from Policy.HasCNF at construction; integ is the
	// per-value integrity fact table; props deepens collection over object
	// properties when the adapter supports enumeration; pcInteg mirrors
	// pcStack with the integrity meet of each scope's conditions.
	cnf     bool
	integ   map[uint64]policy.LabelSet
	props   PropertyLister
	pcInteg []policy.LabelSet
}

// telHooks bundles the counter handles for the tracker's per-operation
// metrics, resolved once in EnableTelemetry, plus the optional tracer.
type telHooks struct {
	metrics *telemetry.Metrics
	tracer  *telemetry.Tracer

	label, binaryOp, assign, check, invoke, track, box, violation *telemetry.Counter
	checkLabels                                                   *telemetry.Histogram
}

// EnableTelemetry attaches a metrics registry and/or structured tracer to
// the tracker and its policy graph. Counter handles are resolved here so
// the per-operation hooks are lock-free atomic adds. Passing two nils
// detaches telemetry.
func (t *Tracker) EnableTelemetry(m *telemetry.Metrics, tr *telemetry.Tracer) {
	if m == nil && tr == nil {
		t.tel = nil
		if t.Policy != nil && t.Policy.Graph != nil {
			t.Policy.Graph.SetMetrics(nil)
		}
		return
	}
	h := &telHooks{metrics: m, tracer: tr}
	if m != nil {
		h.label = m.Counter("dift.label")
		h.binaryOp = m.Counter("dift.binaryOp")
		h.assign = m.Counter("dift.assign")
		h.check = m.Counter("dift.check")
		h.invoke = m.Counter("dift.invoke")
		h.track = m.Counter("dift.track")
		h.box = m.Counter("dift.box")
		h.violation = m.Counter("dift.violation")
		h.checkLabels = m.Histogram("dift.check.labels")
	}
	t.tel = h
	if t.Policy != nil && t.Policy.Graph != nil {
		t.Policy.Graph.SetMetrics(m)
	}
}

// Telemetry returns the attached metrics registry (nil when disabled).
func (t *Tracker) Telemetry() *telemetry.Metrics {
	if t.tel == nil {
		return nil
	}
	return t.tel.metrics
}

// Tracer returns the attached structured tracer (nil when disabled).
func (t *Tracker) Tracer() *telemetry.Tracer {
	if t.tel == nil {
		return nil
	}
	return t.tel.tracer
}

// LabelStrings converts a label set to its sorted string form for trace
// events (LabelSet.Slice is sorted, keeping traces deterministic).
func LabelStrings(ls policy.LabelSet) []string {
	if ls.Empty() {
		return nil
	}
	sl := ls.Slice()
	out := make([]string, len(sl))
	for i, l := range sl {
		out[i] = string(l)
	}
	return out
}

// refIDCounter is the global identity counter shared by every Ref value:
// boxes allocated here and reference values allocated by the runtime. A
// single ID space keeps the tracker's label map collision-free.
var refIDCounter uint64

// NextRefID allocates a fresh identity for a reference-type runtime value.
func NextRefID() uint64 { return atomic.AddUint64(&refIDCounter, 1) }

// NewTracker creates a tracker bound to a policy and value adapter. A
// policy carrying the CNF extension (exchange rules, declassifiers or
// endorsements) switches the tracker onto the clause-aware paths; a flat
// policy keeps every hot path identical to the pre-CNF tracker.
func NewTracker(p *policy.Policy, adapter ValueAdapter) *Tracker {
	t := &Tracker{
		Policy:    p,
		Adapter:   adapter,
		labels:    make(map[uint64]policy.LabelSet),
		invokeFns: make(map[uint64]policy.LabelFunc),
		integ:     make(map[uint64]policy.LabelSet),
	}
	if p != nil && p.HasCNF() {
		t.cnf = true
		t.props, _ = adapter.(PropertyLister)
	}
	return t
}

// SwapPolicy atomically replaces the tracker's policy — the serve
// daemon's hot-reload primitive, called only between messages (the
// tracker, like its interpreter, is single-threaded, so "between
// messages" is all the atomicity there is). Existing value labels are
// kept: labels name information categories, and a new policy reinterprets
// the same categories with new rules. The CNF gate and property lister
// are recomputed from the new policy, and the reachability-cache telemetry
// is re-bound so cache counters follow the live graph.
func (t *Tracker) SwapPolicy(p *policy.Policy) {
	t.Policy = p
	t.cnf = p != nil && p.HasCNF()
	t.props = nil
	if t.cnf {
		t.props, _ = t.Adapter.(PropertyLister)
	}
	if h := t.tel; h != nil && h.metrics != nil && p != nil && p.Graph != nil {
		p.Graph.SetMetrics(h.metrics)
	}
}

// Violations returns the violations recorded so far.
func (t *Tracker) Violations() []*Violation { return t.violations }

// Stats returns a copy of the activity counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Poison marks the tracker degraded. The latch is sticky and keeps the
// first reason; in fail-closed mode every subsequent sink check denies
// with reason "degraded". The interpreter calls this when a resource
// guard trips, and the tracker calls it on its own internal failures.
func (t *Tracker) Poison(reason string) {
	if t.degraded {
		return
	}
	t.degraded = true
	t.degradedReason = reason
	if h := t.tel; h != nil {
		if h.metrics != nil {
			h.metrics.Counter("dift.poisoned").Inc()
		}
		t.trace(telemetry.Event{Op: "poison", Detail: reason})
	}
}

// Degraded reports whether the tracker has been poisoned, and why.
func (t *Tracker) Degraded() (bool, string) { return t.degraded, t.degradedReason }

// PoisonState is the tracker's exportable integrity latch — the one piece
// of monitor state that must survive the monitor's own host process. A
// durable layer persists it with every state transition and hands it back
// on recovery, so a crash-restart cycle can never launder a poisoned
// tracker into a clean one.
type PoisonState struct {
	Degraded bool   `json:"degraded,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// ExportPoison snapshots the poison latch for persistence.
func (t *Tracker) ExportPoison() PoisonState {
	return PoisonState{Degraded: t.degraded, Reason: t.degradedReason}
}

// RestorePoison re-arms the latch from a persisted state. Restoring a
// degraded state forces fail-closed mode regardless of the tracker's
// configured posture: a recovered tracker that cannot vouch for the state
// it was rebuilt from must deny every sink, even if it was deployed in
// audit mode — recovery is exactly the moment fail-open is unacceptable.
// Restoring a clean state is a no-op (the latch only ever arms).
func (t *Tracker) RestorePoison(ps PoisonState) {
	if !ps.Degraded {
		return
	}
	t.FailClosed = true
	reason := ps.Reason
	if reason == "" {
		reason = "restored degraded state"
	}
	t.Poison(reason)
}

// VerifyLabelTable scans the label table for corruption (entries that
// should have been elided). On inconsistency it poisons the tracker and
// returns an error describing the first bad entry.
func (t *Tracker) VerifyLabelTable() error {
	for id, ls := range t.labels {
		if ls.Empty() {
			err := fmt.Errorf("dift: label table corrupt: ref %d has an empty label set", id)
			t.Poison(err.Error())
			return err
		}
	}
	return nil
}

// denyDegraded records and returns the fail-closed denial for a sink
// check against a poisoned tracker. It bypasses Enforce: fail-closed
// means no flow is permitted once the tracker cannot vouch for its own
// state, even in audit mode.
func (t *Tracker) denyDegraded(op, site string) error {
	v := &Violation{Site: site, Op: op, Reason: "degraded"}
	t.violations = append(t.violations, v)
	t.stats.Violations++
	if h := t.tel; h != nil {
		if h.violation != nil {
			h.violation.Inc()
		}
		t.trace(telemetry.Event{Op: "violation", Site: site, Detail: "degraded"})
	}
	if t.OnViolation != nil {
		t.OnViolation(v)
	}
	return v
}

// recoverOp is deferred by the fail-closed variants of the public tracker
// ops: a panic inside the op poisons the tracker and becomes a degraded
// denial instead of unwinding into the host runtime. Outside fail-closed
// mode ops do not defer it, so panics propagate to the stage boundary
// (guard.Contain) unchanged.
func (t *Tracker) recoverOp(op, site string, errp *error) {
	if r := recover(); r != nil {
		t.Poison(fmt.Sprintf("panic in tracker op %s: %v", op, r))
		*errp = t.denyDegraded(op, site)
	}
}

// newBox wraps a value-type v.
func (t *Tracker) newBox(v any) *Box {
	t.stats.Boxed++
	if h := t.tel; h != nil && h.box != nil {
		h.box.Inc()
	}
	return &Box{Val: v, id: NextRefID()}
}

// LabelsOf returns the labels attached to v (nil when untracked).
func (t *Tracker) LabelsOf(v any) policy.LabelSet {
	if r, ok := v.(Ref); ok {
		return t.labels[r.RefID()]
	}
	return nil
}

// Attach binds labels to v. Value-type values are boxed; the (possibly
// boxed) value is returned and must replace v at the call site.
func (t *Tracker) Attach(v any, ls policy.LabelSet) any {
	if ls.Empty() {
		return v
	}
	if r, ok := v.(Ref); ok {
		t.labels[r.RefID()] = t.labels[r.RefID()].Union(ls)
		return v
	}
	if !t.Adapter.IsReference(v) {
		b := t.newBox(v)
		t.labels[b.RefID()] = ls.Clone()
		return b
	}
	return v
}

// Label implements the label(target, labeller) API method (Table 1): it
// evaluates the value-dependent privacy label of v using the given
// labeller specification and attaches it. The returned value replaces v.
func (t *Tracker) Label(v any, l *policy.Labeller) (out any, err error) {
	if t.FailClosed {
		name := ""
		if l != nil {
			name = l.Name
		}
		out = v // keep the unlabelled value if the op panics
		defer t.recoverOp("label", name, &err)
	}
	t.stats.Labelled++
	if h := t.tel; h != nil {
		if h.label != nil {
			h.label.Inc()
		}
		out, err := t.applyLabeller(v, l)
		if h.tracer != nil {
			name := ""
			if l != nil {
				name = l.Name
			}
			t.trace(telemetry.Event{Op: "label", Site: name, Labels: LabelStrings(t.LabelsOf(out))})
		}
		return out, err
	}
	return t.applyLabeller(v, l)
}

// trace records one event on the attached tracer (telemetry-on path only).
func (t *Tracker) trace(ev telemetry.Event) {
	if h := t.tel; h != nil && h.tracer != nil {
		h.tracer.Record(ev)
	}
}

func (t *Tracker) applyLabeller(v any, l *policy.Labeller) (any, error) {
	switch {
	case l == nil:
		return v, nil
	case l.Fn != nil:
		ls, err := l.Fn(Unwrap(v))
		if err != nil {
			return v, fmt.Errorf("dift: label function for %q: %w", l.Name, err)
		}
		return t.Attach(v, ls), nil
	case l.Invoke != nil:
		// attach a dynamic labeller to the function value; evaluated when
		// the function is invoked (the mailer.sendMail case of Fig. 7).
		if r, ok := v.(Ref); ok {
			t.invokeFns[r.RefID()] = l.Invoke
			return v, nil
		}
		return v, fmt.Errorf("dift: $invoke labeller %q applied to non-reference value %T", l.Name, v)
	case l.Map != nil:
		elems, ok := t.Adapter.Elements(v)
		if !ok {
			return v, fmt.Errorf("dift: $map labeller %q applied to non-array value %T", l.Name, v)
		}
		var union policy.LabelSet
		for i, el := range elems {
			labelled, err := t.applyLabeller(el, l.Map)
			if err != nil {
				return v, err
			}
			if labelled != el {
				t.Adapter.SetElement(v, i, labelled)
			}
			union = union.Union(t.LabelsOf(labelled))
		}
		// the array itself carries the union of its element labels, so a
		// flow of the whole array is as constrained as its elements.
		return t.Attach(v, union), nil
	case l.Props != nil:
		for name, sub := range l.Props {
			pv, ok := t.Adapter.Property(v, name)
			if !ok {
				continue
			}
			labelled, err := t.applyLabeller(pv, sub)
			if err != nil {
				return v, err
			}
			if labelled != pv {
				t.Adapter.SetProperty(v, name, labelled)
			}
			t.Attach(v, t.LabelsOf(labelled))
		}
		return v, nil
	}
	return v, nil
}

// Track wraps a value-type v unconditionally, with no labels attached.
// Exhaustive instrumentation tracks every value it touches — the paper
// observes that this converts e.g. every dictionary string of nlp.js into a
// heap-allocated object (§6.2), which is exactly the overhead source the
// selective strategy avoids.
func (t *Tracker) Track(v any) any {
	if h := t.tel; h != nil && h.track != nil {
		h.track.Inc()
	}
	if _, ok := v.(Ref); ok {
		return v
	}
	if t.Adapter.IsReference(v) {
		return v
	}
	return t.newBox(v)
}

// Derive implements label propagation for derived values (the binaryOp,
// assignment and invoke rules of Fig. 5): result's label becomes the union
// of the sources' labels. The returned value replaces result.
func (t *Tracker) Derive(result any, sources ...any) (out any) {
	if t.FailClosed {
		out = result // a panicking derive poisons; the raw value is safe
		// because every later sink check now denies
		defer func() {
			if r := recover(); r != nil {
				t.Poison(fmt.Sprintf("panic in tracker op derive: %v", r))
			}
		}()
	}
	t.stats.Derived++
	if h := t.tel; h != nil && h.binaryOp != nil {
		h.binaryOp.Inc()
	}
	var union policy.LabelSet
	for _, s := range sources {
		union = union.Union(t.LabelsOf(s))
	}
	union = t.pcAugment(union)
	if t.cnf {
		out = result
		if !union.Empty() {
			out = t.Attach(out, union)
		}
		return t.deriveIntegrity(out, sources)
	}
	if union.Empty() {
		return result
	}
	return t.Attach(result, union)
}

// DataLabels collects the labels of v and, for containers, of the values
// reachable from it. Collection is cycle-safe. This is what a sink check
// inspects: sending an object leaks everything reachable from it.
func (t *Tracker) DataLabels(v any) policy.LabelSet {
	var union policy.LabelSet
	seen := make(map[uint64]bool)
	t.collect(v, &union, seen, 0)
	return union
}

const maxCollectDepth = 12

// topSet is the ⊤ singleton joined on truncation; hoisted so the bound
// check stays allocation-free.
var topSet = policy.NewLabelSet(policy.Top)

func (t *Tracker) collect(v any, union *policy.LabelSet, seen map[uint64]bool, depth int) {
	if depth > maxCollectDepth {
		// Truncating a plain value is lossless — it carries no identity
		// and reaches nothing — but truncating a Ref or a container may
		// hide labels below this point, and silently returning would
		// under-taint (fail-open). Join ⊤ instead — the sink check then
		// denies — and in fail-closed mode poison the tracker outright.
		// This also covers the `seen` cycle guard: a revisit can only lose
		// labels if the first visit truncated, and that truncation already
		// joined ⊤.
		if _, isRef := v.(Ref); !isRef {
			if _, isArr := t.Adapter.Elements(v); !isArr {
				return
			}
		}
		*union = union.Union(topSet)
		if t.FailClosed {
			t.Poison(fmt.Sprintf("collect depth overflow (> %d)", maxCollectDepth))
		}
		return
	}
	if r, ok := v.(Ref); ok {
		id := r.RefID()
		if seen[id] {
			return
		}
		seen[id] = true
		if ls := t.labels[id]; !ls.Empty() {
			*union = union.Union(ls)
		}
	}
	if elems, ok := t.Adapter.Elements(v); ok {
		for _, el := range elems {
			t.collect(el, union, seen, depth+1)
		}
		return
	}
	if b, ok := v.(*Box); ok {
		t.collect(b.Val, union, seen, depth+1)
		return
	}
	// CNF mode walks object properties too: a compound policy's attack
	// surface includes stashing a secret under a dynamically computed key,
	// so collection must be exhaustive over the object graph. The flat path
	// skips this (properties are labelled onto the holder by the labeller
	// specs), keeping pre-CNF collection costs and output intact.
	if t.cnf && t.props != nil {
		if names, ok := t.props.PropertyNames(v); ok {
			for _, n := range names {
				if pv, found := t.Adapter.Property(v, n); found {
					t.collect(pv, union, seen, depth+1)
				}
			}
		}
	}
}

// CollectProperties extends DataLabels over an object's properties. It is
// split from DataLabels so the adapter can decide which values have
// enumerable properties.
func (t *Tracker) CollectProperties(v any, names []string) policy.LabelSet {
	union := t.DataLabels(v)
	for _, n := range names {
		if pv, ok := t.Adapter.Property(v, n); ok {
			union = union.Union(t.DataLabels(pv))
		}
	}
	return union
}

// Check implements check(data, receiver) (Table 1): it verifies that the
// privacy rules allow data to flow into receiver. In enforcement mode a
// violation is returned as an error; in audit mode it is recorded and nil
// is returned.
func (t *Tracker) Check(data, recv any, site string) (err error) {
	if t.FailClosed {
		if t.degraded {
			t.stats.Checks++
			return t.denyDegraded("check", site)
		}
		defer t.recoverOp("check", site, &err)
	}
	t.stats.Checks++
	dl := t.pcAugment(t.DataLabels(data))
	if t.cnf {
		dl = t.exchanged(dl, data)
	}
	if h := t.tel; h != nil {
		if h.check != nil {
			h.check.Inc()
			h.checkLabels.Observe(int64(len(dl)))
		}
		// mirror the telemetry-off control flow exactly: receiverLabels may
		// run a MiniJS $invoke labeller, so it must only be called when the
		// off path would call it, or the two runs' step counts diverge
		if dl.Empty() {
			t.trace(telemetry.Event{Op: "check", Site: site})
			return nil
		}
		rl := t.receiverLabels(recv, nil)
		t.trace(telemetry.Event{Op: "check", Site: site, Labels: LabelStrings(dl), Recv: LabelStrings(rl)})
		return t.verdict(dl, rl, "check", site)
	}
	if dl.Empty() {
		return nil
	}
	rl := t.receiverLabels(recv, nil)
	return t.verdict(dl, rl, "check", site)
}

// receiverLabels computes the labels of a sink/receiver value. If the
// receiver has a dynamic $invoke labeller, it is evaluated with the call
// arguments.
func (t *Tracker) receiverLabels(recv any, args []any) policy.LabelSet {
	ls := t.LabelsOf(recv)
	if r, ok := recv.(Ref); ok {
		if fn := t.invokeFns[r.RefID()]; fn != nil {
			raw := make([]any, len(args))
			for i, a := range args {
				raw[i] = Unwrap(a)
			}
			if dyn, err := fn(Unwrap(recv), raw); err == nil {
				ls = ls.Union(dyn)
			}
		}
	}
	return ls
}

// InvokeCheck implements the flow check of invoke(target, func, args)
// (Table 1): each argument must be allowed to flow into the function
// receiver. It returns the error (blocking the call) in enforcement mode.
// The caller performs the actual invocation and then labels the returned
// value with DeriveInvoke.
func (t *Tracker) InvokeCheck(fnVal any, args []any, site string) error {
	return t.InvokeCheckTarget(fnVal, nil, args, site)
}

// InvokeCheckTarget is InvokeCheck with the receiver object included: the
// labels of both the function value and the object it was read from (the
// storage/db objects of §5 carry region labels on the object itself)
// constrain the flow, as do their dynamic $invoke labellers.
func (t *Tracker) InvokeCheckTarget(fnVal, target any, args []any, site string) (err error) {
	if t.FailClosed {
		if t.degraded {
			t.stats.Checks++
			return t.denyDegraded("invoke", site)
		}
		defer t.recoverOp("invoke", site, &err)
	}
	t.stats.Checks++
	var dl policy.LabelSet
	for _, a := range args {
		dl = dl.Union(t.DataLabels(a))
	}
	dl = t.pcAugment(dl)
	if t.cnf {
		dl = t.exchanged(dl, args...)
	}
	if h := t.tel; h != nil {
		if h.invoke != nil {
			h.invoke.Inc()
			h.checkLabels.Observe(int64(len(dl)))
		}
		// as in Check: receiverLabels may execute a labeller, so it is only
		// reached when the telemetry-off path would reach it
		if dl.Empty() {
			t.trace(telemetry.Event{Op: "invoke", Site: site})
			return nil
		}
		rl := t.receiverLabels(fnVal, args)
		if target != nil {
			rl = rl.Union(t.receiverLabels(target, args))
		}
		t.trace(telemetry.Event{Op: "invoke", Site: site, Labels: LabelStrings(dl), Recv: LabelStrings(rl)})
		return t.verdict(dl, rl, "invoke", site)
	}
	if dl.Empty() {
		return nil
	}
	rl := t.receiverLabels(fnVal, args)
	if target != nil {
		rl = rl.Union(t.receiverLabels(target, args))
	}
	return t.verdict(dl, rl, "invoke", site)
}

// DeriveInvoke labels a function's return value with the compound label of
// its arguments (the invoke rule of Fig. 5).
func (t *Tracker) DeriveInvoke(result any, args []any) any {
	srcs := make([]any, 0, len(args))
	srcs = append(srcs, args...)
	return t.Derive(result, srcs...)
}

func (t *Tracker) verdict(dl, rl policy.LabelSet, op, site string) error {
	if t.Policy.Graph.FlowAllowed(dl, rl, t.Policy.Mode) {
		return nil
	}
	v := &Violation{Site: site, Op: op, Data: dl.Clone(), Recv: rl.Clone()}
	t.violations = append(t.violations, v)
	t.stats.Violations++
	if h := t.tel; h != nil {
		if h.violation != nil {
			h.violation.Inc()
		}
		t.trace(telemetry.Event{Op: "violation", Site: site, Detail: op,
			Labels: LabelStrings(dl), Recv: LabelStrings(rl)})
	}
	if t.OnViolation != nil {
		t.OnViolation(v)
	}
	if t.Enforce {
		return v
	}
	return nil
}

// UnwrapDeep removes Box wrappers from v and, for arrays, from its
// elements, so values written to external sinks are native (§4.4: "wrapped
// values are unwrapped upon writing to a sink object").
func (t *Tracker) UnwrapDeep(v any) any {
	v = Unwrap(v)
	if elems, ok := t.Adapter.Elements(v); ok {
		for i, el := range elems {
			if b, isBox := el.(*Box); isBox {
				t.Adapter.SetElement(v, i, b.Val)
			}
		}
	}
	return v
}
