package dift

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"turnstile/internal/policy"
)

// --- minimal reference-typed test runtime ---------------------------------

type tObj struct {
	id    uint64
	props map[string]any
}

func newObj() *tObj           { return &tObj{id: NextRefID(), props: map[string]any{}} }
func (o *tObj) RefID() uint64 { return o.id }

type tArr struct {
	id    uint64
	elems []any
}

func newArr(elems ...any) *tArr { return &tArr{id: NextRefID(), elems: elems} }
func (a *tArr) RefID() uint64   { return a.id }

type tAdapter struct{}

func (tAdapter) Property(v any, name string) (any, bool) {
	if o, ok := v.(*tObj); ok {
		p, ok := o.props[name]
		return p, ok
	}
	return nil, false
}

func (tAdapter) SetProperty(v any, name string, val any) bool {
	if o, ok := v.(*tObj); ok {
		o.props[name] = val
		return true
	}
	return false
}

func (tAdapter) Elements(v any) ([]any, bool) {
	if a, ok := v.(*tArr); ok {
		return a.elems, true
	}
	return nil, false
}

func (tAdapter) SetElement(v any, i int, val any) bool {
	if a, ok := v.(*tArr); ok && i < len(a.elems) {
		a.elems[i] = val
		return true
	}
	return false
}

func (tAdapter) IsReference(v any) bool {
	switch v.(type) {
	case *tObj, *tArr, *Box:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------

func testPolicy(t *testing.T, rules ...string) *policy.Policy {
	t.Helper()
	var rs []policy.Rule
	for _, s := range rules {
		r, err := policy.ParseRule(s)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	p, err := policy.New(nil, rs, nil, policy.FlowComparable)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tracker(t *testing.T, rules ...string) *Tracker {
	tr := NewTracker(testPolicy(t, rules...), tAdapter{})
	tr.Enforce = true
	return tr
}

func constLabeller(labels ...policy.Label) *policy.Labeller {
	return &policy.Labeller{Fn: func(args ...any) (policy.LabelSet, error) {
		return policy.NewLabelSet(labels...), nil
	}}
}

func TestLabelReferenceType(t *testing.T) {
	tr := tracker(t, "employee -> customer")
	o := newObj()
	got, err := tr.Label(o, constLabeller("employee"))
	if err != nil {
		t.Fatal(err)
	}
	if got != any(o) {
		t.Fatal("reference types keep their identity")
	}
	if !tr.LabelsOf(o).Contains("employee") {
		t.Fatalf("labels = %v", tr.LabelsOf(o))
	}
}

func TestLabelValueTypeBoxes(t *testing.T) {
	tr := tracker(t, "a -> b")
	got, err := tr.Label("secret text", constLabeller("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := got.(*Box)
	if !ok {
		t.Fatalf("value type not boxed: %T", got)
	}
	if Unwrap(b) != "secret text" {
		t.Fatalf("unwrap = %v", Unwrap(b))
	}
	if !tr.LabelsOf(b).Contains("a") {
		t.Fatalf("labels = %v", tr.LabelsOf(b))
	}
}

func TestTwoEqualValuesGetDistinctLabels(t *testing.T) {
	// The paper's value-type problem: two instances with the same value
	// represent different information (§4.4).
	tr := tracker(t, "a -> b")
	v1, _ := tr.Label(42.0, constLabeller("a"))
	v2, _ := tr.Label(42.0, constLabeller("b"))
	if tr.LabelsOf(v1).Equal(tr.LabelsOf(v2)) {
		t.Fatal("equal primitive values must carry independent labels")
	}
}

func TestValueDependentLabel(t *testing.T) {
	tr := tracker(t, "employee -> customer")
	labeller := &policy.Labeller{Fn: func(args ...any) (policy.LabelSet, error) {
		o := args[0].(*tObj)
		if _, ok := o.props["employeeID"]; ok {
			return policy.NewLabelSet("employee"), nil
		}
		return policy.NewLabelSet("customer"), nil
	}}
	emp := newObj()
	emp.props["employeeID"] = 7.0
	cust := newObj()
	tr.Label(emp, labeller)
	tr.Label(cust, labeller)
	if !tr.LabelsOf(emp).Contains("employee") || !tr.LabelsOf(cust).Contains("customer") {
		t.Fatalf("emp=%v cust=%v", tr.LabelsOf(emp), tr.LabelsOf(cust))
	}
}

func TestMapLabeller(t *testing.T) {
	tr := tracker(t, "employee -> customer")
	perEl := &policy.Labeller{Map: &policy.Labeller{Fn: func(args ...any) (policy.LabelSet, error) {
		o := args[0].(*tObj)
		if _, ok := o.props["employeeID"]; ok {
			return policy.NewLabelSet("employee"), nil
		}
		return policy.NewLabelSet("customer"), nil
	}}}
	emp := newObj()
	emp.props["employeeID"] = 1.0
	cust := newObj()
	arr := newArr(emp, cust)
	if _, err := tr.Label(arr, perEl); err != nil {
		t.Fatal(err)
	}
	if !tr.LabelsOf(emp).Contains("employee") {
		t.Fatal("element 0 unlabelled")
	}
	if !tr.LabelsOf(cust).Contains("customer") {
		t.Fatal("element 1 unlabelled")
	}
	// array carries the union
	al := tr.LabelsOf(arr)
	if !al.Contains("employee") || !al.Contains("customer") {
		t.Fatalf("array labels = %v", al)
	}
}

func TestMapLabellerBoxesPrimitives(t *testing.T) {
	tr := tracker(t, "a -> b")
	arr := newArr("x", "y")
	if _, err := tr.Label(arr, &policy.Labeller{Map: constLabeller("a")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := arr.elems[0].(*Box); !ok {
		t.Fatalf("element not boxed: %T", arr.elems[0])
	}
}

func TestPropsLabeller(t *testing.T) {
	tr := tracker(t, "a -> b")
	o := newObj()
	o.props["payload"] = "secret"
	spec := &policy.Labeller{Props: map[string]*policy.Labeller{"payload": constLabeller("a")}}
	if _, err := tr.Label(o, spec); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.props["payload"].(*Box); !ok {
		t.Fatal("property not boxed")
	}
	if !tr.LabelsOf(o).Contains("a") {
		t.Fatal("object should carry property label")
	}
}

func TestLabelErrors(t *testing.T) {
	tr := tracker(t, "a -> b")
	if _, err := tr.Label(newObj(), &policy.Labeller{Map: constLabeller("a")}); err == nil {
		t.Fatal("$map on non-array should fail")
	}
	if _, err := tr.Label(3.0, &policy.Labeller{Invoke: func(...any) (policy.LabelSet, error) { return nil, nil }}); err == nil {
		t.Fatal("$invoke on value type should fail")
	}
}

func TestDeriveCompoundLabel(t *testing.T) {
	// Fig. 5 binaryOp rule: v1 ⊙ v2 → v3 ↦ P1 ∪ P2
	tr := tracker(t, "P -> Q")
	a, _ := tr.Label("hello", constLabeller("P"))
	b, _ := tr.Label("world", constLabeller("Q"))
	result := tr.Derive("helloworld", a, b)
	ls := tr.LabelsOf(result)
	if !ls.Contains("P") || !ls.Contains("Q") {
		t.Fatalf("compound = %v", ls)
	}
}

func TestDeriveNoSourcesNoBox(t *testing.T) {
	tr := tracker(t, "P -> Q")
	out := tr.Derive("plain", "x", 1.0)
	if _, ok := out.(*Box); ok {
		t.Fatal("unlabelled derivation must not box")
	}
}

func TestCheckAllowsAndBlocks(t *testing.T) {
	tr := tracker(t, "employee -> customer")
	data, _ := tr.Label("frame", constLabeller("employee"))
	sinkOK := newObj()
	tr.Attach(sinkOK, policy.NewLabelSet("customer"))
	sinkBad := newObj()
	tr.Attach(sinkBad, policy.NewLabelSet("employee"))

	if err := tr.Check(data, sinkOK, "app.js:10"); err != nil {
		t.Fatalf("allowed flow blocked: %v", err)
	}
	dataC, _ := tr.Label("frame2", constLabeller("customer"))
	if err := tr.Check(dataC, sinkBad, "app.js:11"); err == nil {
		t.Fatal("customer → employee should be blocked")
	}
	if len(tr.Violations()) != 1 {
		t.Fatalf("violations = %d", len(tr.Violations()))
	}
	v := tr.Violations()[0]
	if v.Site != "app.js:11" || !strings.Contains(v.Error(), "violation") {
		t.Fatalf("violation = %+v", v)
	}
}

func TestAuditModeRecordsButAllows(t *testing.T) {
	tr := tracker(t, "a -> b")
	tr.Enforce = false
	var seen int
	tr.OnViolation = func(*Violation) { seen++ }
	data, _ := tr.Label("x", constLabeller("b"))
	recv := newObj()
	tr.Attach(recv, policy.NewLabelSet("a"))
	if err := tr.Check(data, recv, "s"); err != nil {
		t.Fatalf("audit mode must not block: %v", err)
	}
	if seen != 1 || tr.Stats().Violations != 1 {
		t.Fatalf("seen=%d stats=%+v", seen, tr.Stats())
	}
}

func TestCheckReachesNestedData(t *testing.T) {
	tr := tracker(t, "hi -> lo")
	secret, _ := tr.Label("s3cr3t", constLabeller("lo"))
	arr := newArr(secret)
	recv := newObj()
	tr.Attach(recv, policy.NewLabelSet("hi"))
	if err := tr.Check(arr, recv, "nested"); err == nil {
		t.Fatal("label inside array must be found")
	}
}

func TestCollectHandlesCycles(t *testing.T) {
	tr := tracker(t, "a -> b")
	a1 := newArr(nil)
	a2 := newArr(a1)
	a1.elems[0] = a2 // cycle
	tr.Attach(a1, policy.NewLabelSet("a"))
	ls := tr.DataLabels(a2)
	if !ls.Contains("a") {
		t.Fatalf("labels = %v", ls)
	}
}

func TestInvokeDynamicReceiverLabel(t *testing.T) {
	// The NVR mailer scenario: sendMail's label depends on the recipient.
	tr := tracker(t, "L1 -> L2", "L2 -> L3")
	sendMail := newObj()
	spec := &policy.Labeller{Invoke: func(args ...any) (policy.LabelSet, error) {
		callArgs := args[1].([]any)
		opts := callArgs[0].(*tObj)
		to := opts.props["to"].(string)
		if to == "boss@corp" {
			return policy.NewLabelSet("L3"), nil
		}
		return policy.NewLabelSet("L2"), nil
	}}
	if _, err := tr.Label(sendMail, spec); err != nil {
		t.Fatal(err)
	}

	frameL3, _ := tr.Label("face-frame", constLabeller("L3"))
	optsBoss := newObj()
	optsBoss.props["to"] = "boss@corp"
	optsBoss.props["attachments"] = frameL3
	optsPeon := newObj()
	optsPeon.props["to"] = "peon@corp"
	optsPeon.props["attachments"] = frameL3

	// tracker sees the whole opts object as the data argument; its labels
	// include the attachment's (via property collection by the runtime).
	tr.Attach(optsBoss, tr.DataLabels(frameL3))
	tr.Attach(optsPeon, tr.DataLabels(frameL3))

	if err := tr.InvokeCheck(sendMail, []any{optsBoss}, "mail"); err != nil {
		t.Fatalf("L3 → L3 blocked: %v", err)
	}
	if err := tr.InvokeCheck(sendMail, []any{optsPeon}, "mail"); err == nil {
		t.Fatal("L3 → L2 should be blocked")
	}
}

func TestDeriveInvokeLabelsReturn(t *testing.T) {
	tr := tracker(t, "P -> Q")
	arg, _ := tr.Label("in", constLabeller("P"))
	out := tr.DeriveInvoke("out", []any{arg})
	if !tr.LabelsOf(out).Contains("P") {
		t.Fatal("return value must inherit argument labels")
	}
}

func TestUnwrapDeep(t *testing.T) {
	tr := tracker(t, "a -> b")
	b1, _ := tr.Label("x", constLabeller("a"))
	arr := newArr(b1, "plain")
	out := tr.UnwrapDeep(arr)
	if out != any(arr) {
		t.Fatal("array identity preserved")
	}
	if _, ok := arr.elems[0].(*Box); ok {
		t.Fatal("elements should be unwrapped")
	}
	single, _ := tr.Label(7.0, constLabeller("a"))
	if tr.UnwrapDeep(single) != 7.0 {
		t.Fatal("box should unwrap")
	}
}

func TestStatsCounters(t *testing.T) {
	tr := tracker(t, "a -> b")
	v, _ := tr.Label("x", constLabeller("a"))
	tr.Derive("y", v)
	tr.Check(v, newObj(), "s")
	st := tr.Stats()
	if st.Labelled != 1 || st.Derived != 1 || st.Checks != 1 || st.Boxed < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: Derive over any partition of sources yields the same compound
// label (union is order/partition independent).
func TestQuickDerivePartition(t *testing.T) {
	f := func(bits []uint8) bool {
		tr := NewTracker(mustPolicy(), tAdapter{})
		if len(bits) == 0 {
			return true
		}
		var sources []any
		for i, b := range bits {
			if i > 12 {
				break
			}
			l := policy.Label(string(rune('a' + b%6)))
			v, _ := tr.Label(float64(i), constLabeller(l))
			sources = append(sources, v)
		}
		all := tr.Derive("whole", sources...)
		step := any("step")
		for _, s := range sources {
			step = tr.Derive(step, step, s)
		}
		return tr.LabelsOf(all).Equal(tr.LabelsOf(step))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustPolicy() *policy.Policy {
	p, err := policy.New(nil, []policy.Rule{{From: "a", To: "b"}}, nil, policy.FlowComparable)
	if err != nil {
		panic(err)
	}
	return p
}

func TestViolationJSON(t *testing.T) {
	tr := tracker(t, "public -> secret")
	tr.Enforce = false
	data, _ := tr.Label("x", constLabeller("secret"))
	recv := newObj()
	tr.Attach(recv, policy.NewLabelSet("public"))
	tr.Check(data, recv, "app.js:9:1")
	out, err := json.Marshal(tr.Violations())
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"site":"app.js:9:1","op":"check","data":["secret"],"receiver":["public"]}]`
	if string(out) != want {
		t.Fatalf("json = %s", out)
	}
}
