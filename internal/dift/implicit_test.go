package dift

import (
	"testing"

	"turnstile/internal/policy"
)

func TestImplicitScopesOffByDefault(t *testing.T) {
	tr := tracker(t, "public -> secret")
	if tr.ImplicitEnabled() {
		t.Fatal("implicit mode should default off")
	}
	// scope operations are no-ops when disabled
	tr.PushScope()
	tr.PCCondition("x")
	if tr.ScopeDepth() != 0 {
		t.Fatal("disabled tracker should not push scopes")
	}
	if tr.Assign("x") != "x" {
		t.Fatal("disabled Assign should be identity")
	}
	tr.PopScope()
}

func TestPCScopesAccumulate(t *testing.T) {
	tr := tracker(t, "public -> secret")
	tr.EnableImplicit()
	if !tr.ImplicitEnabled() {
		t.Fatal("not enabled")
	}
	secret, _ := tr.Label("s", constLabeller("secret"))
	tr.PushScope()
	tr.PCCondition(secret)
	if !tr.PC().Contains("secret") {
		t.Fatalf("pc = %v", tr.PC())
	}
	// nested scope with another label
	other, _ := tr.Label("o", constLabeller("public"))
	tr.PushScope()
	tr.PCCondition(other)
	pc := tr.PC()
	if !pc.Contains("secret") || !pc.Contains("public") {
		t.Fatalf("nested pc = %v", pc)
	}
	if tr.ScopeDepth() != 2 {
		t.Fatalf("depth = %d", tr.ScopeDepth())
	}
	tr.PopScope()
	if tr.PC().Contains("public") {
		t.Fatal("inner scope label leaked")
	}
	tr.PopScope()
	if tr.ScopeDepth() != 0 || !tr.PC().Empty() {
		t.Fatal("scopes not drained")
	}
	// popping an empty stack is safe
	tr.PopScope()
}

func TestAssignUnderPC(t *testing.T) {
	tr := tracker(t, "public -> secret")
	tr.EnableImplicit()
	secret, _ := tr.Label("cond", constLabeller("secret"))
	tr.PushScope()
	tr.PCCondition(secret)
	v := tr.Assign("written-under-secret")
	if !tr.LabelsOf(v).Contains("secret") {
		t.Fatalf("labels = %v", tr.LabelsOf(v))
	}
	tr.PopScope()
	// outside the scope Assign is the identity again
	if out := tr.Assign("plain"); out != "plain" {
		t.Fatal("assign outside scope must not box")
	}
}

func TestChecksSeePC(t *testing.T) {
	tr := tracker(t, "public -> secret")
	tr.EnableImplicit()
	recv := newObj()
	tr.Attach(recv, policy.NewLabelSet("public"))
	secret, _ := tr.Label("cond", constLabeller("secret"))
	tr.PushScope()
	tr.PCCondition(secret)
	// unlabelled data flowing to a public sink inside a secret branch
	if err := tr.Check("unlabelled", recv, "inside"); err == nil {
		t.Fatal("check inside secret scope should fail")
	}
	if err := tr.InvokeCheck(newObj(), []any{"unlabelled"}, "inv"); err == nil {
		t.Log("invoke with unlabelled receiver allowed (incomparable)") // receiver empty → allowed in comparable mode
	}
	tr.PopScope()
	if err := tr.Check("unlabelled", recv, "outside"); err != nil {
		t.Fatalf("check outside scope should pass: %v", err)
	}
}

func TestDeriveUnderPC(t *testing.T) {
	tr := tracker(t, "public -> secret")
	tr.EnableImplicit()
	secret, _ := tr.Label("cond", constLabeller("secret"))
	tr.PushScope()
	tr.PCCondition(secret)
	out := tr.Derive("computed", "plain-a", "plain-b")
	if !tr.LabelsOf(out).Contains("secret") {
		t.Fatal("derivation under secret pc must carry pc labels")
	}
	tr.PopScope()
}

func TestTrackBoxesUnconditionally(t *testing.T) {
	tr := tracker(t, "a -> b")
	v := tr.Track("primitive")
	if _, ok := v.(*Box); !ok {
		t.Fatalf("Track should box primitives: %T", v)
	}
	if !tr.LabelsOf(v).Empty() {
		t.Fatal("Track attaches no labels")
	}
	o := newObj()
	if tr.Track(o) != any(o) {
		t.Fatal("Track keeps reference identity")
	}
	b := tr.Track(42.0)
	if tr.Track(b) != b {
		t.Fatal("Track is idempotent on boxes")
	}
}

func TestCollectProperties(t *testing.T) {
	tr := tracker(t, "a -> b")
	o := newObj()
	inner, _ := tr.Label("payload", constLabeller("a"))
	o.props["data"] = inner
	ls := tr.CollectProperties(o, []string{"data", "missing"})
	if !ls.Contains("a") {
		t.Fatalf("labels = %v", ls)
	}
}

func TestBoxString(t *testing.T) {
	tr := tracker(t, "a -> b")
	v, _ := tr.Label("inner", constLabeller("a"))
	b := v.(*Box)
	if b.String() != "Box(inner)" {
		t.Fatalf("String = %q", b.String())
	}
}
