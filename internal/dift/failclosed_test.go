package dift

import (
	"errors"
	"strings"
	"testing"

	"turnstile/internal/policy"
)

// nest wraps v in n levels of single-element arrays.
func nest(v any, n int) any {
	for i := 0; i < n; i++ {
		v = newArr(v)
	}
	return v
}

// TestCollectTruncationJoinsTop is the fail-open regression test from the
// issue: a labelled value buried 13 levels deep must still deny at a sink.
// Before this fix, collect silently returned past maxCollectDepth, so the
// label was dropped and the flow was allowed.
func TestCollectTruncationJoinsTop(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")

	secret := tr.Attach("secret", policy.NewLabelSet("Alpha"))
	deep := nest(secret, maxCollectDepth+1) // labelled value at depth 13

	dl := tr.DataLabels(deep)
	if !dl.Contains(policy.Top) {
		t.Fatalf("truncated collection did not join ⊤: got %v", dl)
	}

	sink := newObj()
	err := tr.Check(deep, sink, "deep-sink")
	if err == nil {
		t.Fatal("depth-13 labelled structure reached the sink without a violation (fail-open)")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected *Violation, got %T: %v", err, err)
	}
	if !v.Data.Contains(policy.Top) {
		t.Fatalf("violation data labels missing ⊤: %v", v.Data)
	}
}

// TestCollectWithinDepthIsExact: at exactly the depth bound no precision is
// lost and no ⊤ appears, so the fix is invisible to well-behaved data.
func TestCollectWithinDepthIsExact(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")
	secret := tr.Attach("secret", policy.NewLabelSet("Alpha"))
	deep := nest(secret, maxCollectDepth) // labelled value at depth 12: reachable

	dl := tr.DataLabels(deep)
	if dl.Contains(policy.Top) {
		t.Fatalf("in-budget collection joined ⊤: %v", dl)
	}
	if !dl.Contains("Alpha") {
		t.Fatalf("in-budget collection lost the label: %v", dl)
	}
	if deg, reason := tr.Degraded(); deg {
		t.Fatalf("in-budget collection poisoned the tracker: %s", reason)
	}
}

// TestCollectTruncationFailClosedPoisons: with FailClosed on, a truncated
// collection poisons the tracker, and the poison is sticky: even checks on
// shallow, unlabelled data deny afterwards.
func TestCollectTruncationFailClosedPoisons(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")
	tr.FailClosed = true

	secret := tr.Attach("secret", policy.NewLabelSet("Alpha"))
	tr.DataLabels(nest(secret, maxCollectDepth+5))

	deg, reason := tr.Degraded()
	if !deg {
		t.Fatal("collect overflow did not poison the fail-closed tracker")
	}
	if !strings.Contains(reason, "collect depth overflow") {
		t.Fatalf("unexpected poison reason: %q", reason)
	}

	err := tr.Check("plain string", newObj(), "later-sink")
	var v *Violation
	if !errors.As(err, &v) || v.Reason != "degraded" {
		t.Fatalf("poisoned tracker allowed a sink check: %v", err)
	}
	if !strings.Contains(v.Error(), "degraded") {
		t.Fatalf("violation text missing reason: %q", v.Error())
	}
	if err := tr.InvokeCheck(newObj(), []any{"x"}, "later-invoke"); err == nil {
		t.Fatal("poisoned tracker allowed an invoke check")
	}
}

// TestDegradedDenyBypassesEnforce: fail-closed denial applies even in audit
// mode — a degraded tracker cannot vouch for any flow.
func TestDegradedDenyBypassesEnforce(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")
	tr.Enforce = false
	tr.FailClosed = true
	tr.Poison("test poison")

	if err := tr.Check("v", newObj(), "sink"); err == nil {
		t.Fatal("audit-mode degraded tracker allowed a flow")
	}
	if got := len(tr.Violations()); got != 1 {
		t.Fatalf("degraded denial not recorded: %d violations", got)
	}
	if tr.Violations()[0].Reason != "degraded" {
		t.Fatalf("recorded violation reason = %q", tr.Violations()[0].Reason)
	}
}

// TestFailOpenModeStillDeniesTruncationButDoesNotPoison: without
// FailClosed the ⊤ join still denies the truncated check, but the tracker
// keeps serving precise answers for other data.
func TestFailOpenModeStillDeniesTruncationButDoesNotPoison(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")

	secret := tr.Attach("secret", policy.NewLabelSet("Alpha"))
	if err := tr.Check(nest(secret, maxCollectDepth+1), newObj(), "deep"); err == nil {
		t.Fatal("truncated check allowed")
	}
	if deg, _ := tr.Degraded(); deg {
		t.Fatal("non-fail-closed tracker was poisoned")
	}
	if err := tr.Check("plain", newObj(), "shallow"); err != nil {
		t.Fatalf("shallow check on healthy tracker denied: %v", err)
	}
}

// TestPanicInLabellerFailClosed: a panicking labeller poisons a fail-closed
// tracker and surfaces as a degraded denial instead of unwinding.
func TestPanicInLabellerFailClosed(t *testing.T) {
	tr := tracker(t)
	tr.FailClosed = true

	bomb := &policy.Labeller{Name: "bomb", Fn: func(args ...any) (policy.LabelSet, error) {
		panic("labeller bug")
	}}
	out, err := tr.Label("v", bomb)
	if err == nil {
		t.Fatal("panicking labeller returned no error")
	}
	if out != "v" {
		t.Fatalf("panicking labeller mangled the value: %v", out)
	}
	if deg, reason := tr.Degraded(); !deg || !strings.Contains(reason, "panic in tracker op label") {
		t.Fatalf("tracker not poisoned by labeller panic: %v %q", deg, reason)
	}
	if err := tr.Check("anything", newObj(), "sink"); err == nil {
		t.Fatal("sink check allowed after labeller panic")
	}
}

// TestPanicInLabellerFailOpenPropagates: without FailClosed the panic
// escapes to the stage boundary (where guard.Contain converts it), keeping
// seed behaviour for unguarded runs.
func TestPanicInLabellerFailOpenPropagates(t *testing.T) {
	tr := tracker(t)
	bomb := &policy.Labeller{Name: "bomb", Fn: func(args ...any) (policy.LabelSet, error) {
		panic("labeller bug")
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected the panic to propagate in fail-open mode")
		}
	}()
	tr.Label("v", bomb)
}

// TestDerivePanicPoisonsFailClosed: a panic inside Derive (no error
// channel) poisons the tracker and returns the raw result; later sink
// checks deny.
func TestDerivePanicPoisonsFailClosed(t *testing.T) {
	tr := tracker(t)
	tr.FailClosed = true

	out := tr.Derive("result", panicSource{}) // panics inside LabelsOf via RefID
	if out != "result" {
		t.Fatalf("derive panic mangled the result: %v", out)
	}
	if deg, reason := tr.Degraded(); !deg || !strings.Contains(reason, "derive") {
		t.Fatalf("derive panic did not poison the fail-closed tracker: %v %q", deg, reason)
	}
	if err := tr.Check("anything", newObj(), "sink"); err == nil {
		t.Fatal("sink check allowed after derive panic")
	}
}

// panicSource implements Ref but detonates when its identity is read,
// simulating label-table corruption mid-op.
type panicSource struct{}

func (panicSource) RefID() uint64 { panic("corrupt ref") }

// TestVerifyLabelTable: injected corruption (an empty label set, which
// Attach never stores) is detected and poisons the tracker.
func TestVerifyLabelTable(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")
	if err := tr.VerifyLabelTable(); err != nil {
		t.Fatalf("healthy table reported corrupt: %v", err)
	}
	tr.labels[12345] = policy.LabelSet{} // corrupt: empty set stored
	if err := tr.VerifyLabelTable(); err == nil {
		t.Fatal("corrupt label table not detected")
	}
	if deg, reason := tr.Degraded(); !deg || !strings.Contains(reason, "label table corrupt") {
		t.Fatalf("corruption did not poison: %v %q", deg, reason)
	}
}

// TestViolationReasonJSON: the audit-log form carries the reason.
func TestViolationReasonJSON(t *testing.T) {
	v := &Violation{Site: "s", Op: "check", Reason: "degraded"}
	b, err := v.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"reason":"degraded"`) {
		t.Fatalf("reason missing from JSON: %s", b)
	}
	// and a policy violation omits it
	v2 := &Violation{Site: "s", Op: "check", Data: policy.NewLabelSet("A")}
	b2, err := v2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b2), "reason") {
		t.Fatalf("empty reason serialized: %s", b2)
	}
}

// TestCyclicLabelledStructure: a labelled cycle terminates and keeps its
// labels (the `seen` guard is not lossy when no truncation occurs).
func TestCyclicLabelledStructure(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")
	a := newArr()
	b := newArr(a)
	a.elems = append(a.elems, b) // a <-> b cycle
	tr.Attach(a, policy.NewLabelSet("Alpha"))

	dl := tr.DataLabels(b)
	if !dl.Contains("Alpha") {
		t.Fatalf("cycle traversal lost label: %v", dl)
	}
	if dl.Contains(policy.Top) {
		t.Fatalf("shallow cycle joined ⊤: %v", dl)
	}
}
