package dift

import (
	"testing"

	"turnstile/internal/policy"
)

// TestPoisonExportRestoreRoundTrip: the latch survives an export/restore
// cycle across tracker instances — the durable layer's recovery contract.
func TestPoisonExportRestoreRoundTrip(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")
	tr.FailClosed = true
	tr.Poison("wal suffix unverifiable")

	ps := tr.ExportPoison()
	if !ps.Degraded || ps.Reason != "wal suffix unverifiable" {
		t.Fatalf("exported state = %+v", ps)
	}

	// a freshly deployed tracker (a restarted process) restores the latch
	fresh := tracker(t, "Alpha -> Beta")
	fresh.RestorePoison(ps)
	if deg, reason := fresh.Degraded(); !deg || reason != "wal suffix unverifiable" {
		t.Fatalf("restored tracker: degraded=%v reason=%q", deg, reason)
	}
	// and denies sinks even on clean, unlabelled data
	if err := fresh.Check("plain", newObj(), "post-restart-sink"); err == nil {
		t.Fatal("restored poisoned tracker allowed a sink check (fail-open recovery)")
	}
}

// TestRestorePoisonForcesFailClosed: restoring a degraded state onto an
// audit-mode tracker (FailClosed off, Enforce off) still denies sinks —
// recovered corruption must never fail open.
func TestRestorePoisonForcesFailClosed(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")
	tr.Enforce = false
	if tr.FailClosed {
		t.Fatal("test premise: tracker starts fail-open")
	}
	tr.RestorePoison(PoisonState{Degraded: true, Reason: "torn record"})
	if !tr.FailClosed {
		t.Fatal("RestorePoison left FailClosed off")
	}
	secret := tr.Attach("s", policy.NewLabelSet("Alpha"))
	if err := tr.Check(secret, newObj(), "sink"); err == nil {
		t.Fatal("audit-mode tracker with restored poison allowed a flow")
	}
	if got := len(tr.Violations()); got != 1 {
		t.Fatalf("violations = %d, want 1 degraded denial", got)
	}
	if tr.Violations()[0].Reason != "degraded" {
		t.Fatalf("violation reason = %q", tr.Violations()[0].Reason)
	}
}

// TestRestorePoisonCleanStateIsNoOp: a clean export restores to a clean
// tracker with its configured posture untouched.
func TestRestorePoisonCleanStateIsNoOp(t *testing.T) {
	tr := tracker(t, "Alpha -> Beta")
	tr.RestorePoison(PoisonState{})
	if deg, _ := tr.Degraded(); deg || tr.FailClosed {
		t.Fatal("clean restore perturbed the tracker")
	}
	// empty reason on a degraded state still arms with a fallback reason
	tr.RestorePoison(PoisonState{Degraded: true})
	if deg, reason := tr.Degraded(); !deg || reason == "" {
		t.Fatalf("degraded restore without reason: degraded=%v reason=%q", deg, reason)
	}
}
