package policy

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, ruleStrs ...string) *Graph {
	t.Helper()
	var rules []Rule
	for _, rs := range ruleStrs {
		r, err := ParseRule(rs)
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, r)
	}
	g, err := NewGraph(rules)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule("employee -> customer")
	if err != nil {
		t.Fatal(err)
	}
	if r.From != "employee" || r.To != "customer" {
		t.Fatalf("rule = %+v", r)
	}
	for _, bad := range []string{"", "x", "-> y", "x ->", "a -> b -> c"} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) should fail", bad)
		}
	}
}

func TestCanFlowChain(t *testing.T) {
	// paper example: employee -> customer -> internal
	g := mustGraph(t, "employee -> customer", "customer -> internal")
	cases := []struct {
		from, to Label
		want     bool
	}{
		{"employee", "customer", true},
		{"customer", "internal", true},
		{"employee", "internal", true}, // transitive
		{"internal", "employee", false},
		{"customer", "employee", false},
		{"employee", "employee", true}, // reflexive
		{"ghost", "ghost", true},
		{"ghost", "customer", false},
	}
	for _, c := range cases {
		if got := g.CanFlow(c.from, c.to); got != c.want {
			t.Errorf("CanFlow(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	_, err := NewGraph([]Rule{
		{"a", "b"}, {"b", "c"}, {"c", "a"},
	})
	if err == nil {
		t.Fatal("expected cycle error")
	}
	ce, ok := err.(*CycleError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(ce.Cycle) < 3 {
		t.Fatalf("cycle = %v", ce.Cycle)
	}
	if !strings.Contains(ce.Error(), "cycle") {
		t.Fatalf("message = %q", ce.Error())
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	if _, err := NewGraph([]Rule{{"a", "a"}}); err == nil {
		t.Fatal("self-loop should be a cycle")
	}
}

func TestDiamondIsAcyclic(t *testing.T) {
	g := mustGraph(t, "a -> b", "a -> c", "b -> d", "c -> d")
	if !g.CanFlow("a", "d") {
		t.Fatal("a should reach d")
	}
	if g.CanFlow("b", "c") {
		t.Fatal("b and c are incomparable")
	}
	if !g.Comparable("a", "d") || g.Comparable("b", "c") {
		t.Fatal("comparability wrong")
	}
}

func TestCacheGrowsAndIsConsistent(t *testing.T) {
	g := mustGraph(t, "a -> b", "b -> c")
	if g.CacheSize() != 0 {
		t.Fatalf("initial cache = %d", g.CacheSize())
	}
	first := g.CanFlow("a", "c")
	if g.CacheSize() != 1 {
		t.Fatalf("cache after one check = %d", g.CacheSize())
	}
	second := g.CanFlow("a", "c")
	if first != second {
		t.Fatal("cached result differs")
	}
	if g.CacheSize() != 1 {
		t.Fatalf("cache should not grow on repeat: %d", g.CacheSize())
	}
}

func TestConcurrentCanFlow(t *testing.T) {
	g := mustGraph(t, "a -> b", "b -> c", "c -> d", "x -> y")
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 200; j++ {
				g.CanFlow("a", "d")
				g.CanFlow("d", "a")
				g.CanFlow("x", "y")
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if !g.CanFlow("a", "d") || g.CanFlow("d", "a") {
		t.Fatal("wrong results after concurrent access")
	}
}

func TestLabelSetOps(t *testing.T) {
	s := NewLabelSet("P", "Q")
	u := s.Union(NewLabelSet("Q", "R"))
	if len(u) != 3 || !u.Contains("P") || !u.Contains("R") {
		t.Fatalf("union = %v", u)
	}
	if u.String() != "{P, Q, R}" {
		t.Fatalf("string = %q", u.String())
	}
	if !s.Equal(NewLabelSet("Q", "P")) {
		t.Fatal("sets should be order-insensitive")
	}
	if s.Equal(u) {
		t.Fatal("different sets reported equal")
	}
	empty := NewLabelSet()
	if !empty.Empty() || !empty.Union(s).Equal(s) {
		t.Fatal("empty-set union")
	}
	c := s.Clone()
	c["Z"] = struct{}{}
	if s.Contains("Z") {
		t.Fatal("clone aliases original")
	}
}

// Denning's model: X ⊑ Y if X ⊆ Y for compound labels (§2). In strict
// mode a subset always flows to its superset when every element is present.
func TestStrictSubsetFlow(t *testing.T) {
	g := mustGraph(t, "P -> Q") // P, Q known labels
	pq := NewLabelSet("P", "Q")
	if !g.FlowAllowed(NewLabelSet("P"), pq, FlowStrict) {
		t.Fatal("P should flow to {P,Q}")
	}
	if !g.FlowAllowed(NewLabelSet("Q"), pq, FlowStrict) {
		t.Fatal("Q should flow to {P,Q}")
	}
	if g.FlowAllowed(pq, NewLabelSet("P"), FlowStrict) {
		t.Fatal("{P,Q} must not flow to {P}")
	}
}

func TestFlowStrictRequiresPathForEveryLabel(t *testing.T) {
	g := mustGraph(t, "US -> EU", "L1 -> L2", "L2 -> L3")
	data := NewLabelSet("US", "L1")
	recv := NewLabelSet("EU", "L3")
	if !g.FlowAllowed(data, recv, FlowStrict) {
		t.Fatal("US→EU and L1→L3 both hold")
	}
	if g.FlowAllowed(NewLabelSet("EU", "L1"), NewLabelSet("US", "L3"), FlowStrict) {
		t.Fatal("EU cannot flow to US")
	}
	// a label with no receiver counterpart forbids the flow in strict mode
	if g.FlowAllowed(NewLabelSet("EU", "L1"), NewLabelSet("L3"), FlowStrict) {
		t.Fatal("strict: EU has no receiver label to flow to")
	}
}

// The NVR case study (§5, Fig. 7): region and clearance are independent
// dimensions; comparable mode lets them coexist.
func TestFlowComparableNVRScenario(t *testing.T) {
	g := mustGraph(t, "US -> EU", "L1 -> L2", "L2 -> L3")
	frameEU_L3 := NewLabelSet("EU", "L3")
	frameUS_L1 := NewLabelSet("US", "L1")

	mailerL2 := NewLabelSet("L2")
	mailerL3 := NewLabelSet("L3")
	dbUS := NewLabelSet("US")
	dbEU := NewLabelSet("EU")

	// L3 face must not be emailed to an L2 recipient.
	if g.FlowAllowed(frameEU_L3, mailerL2, FlowComparable) {
		t.Fatal("L3 → L2 email should be forbidden")
	}
	// L3 face may be emailed to an L3 recipient (EU is unconstrained here).
	if !g.FlowAllowed(frameEU_L3, mailerL3, FlowComparable) {
		t.Fatal("L3 → L3 email should be allowed")
	}
	// EU face must not be stored in a US database.
	if g.FlowAllowed(frameEU_L3, dbUS, FlowComparable) {
		t.Fatal("EU → US storage should be forbidden")
	}
	// US face may be stored in an EU database.
	if !g.FlowAllowed(frameUS_L1, dbEU, FlowComparable) {
		t.Fatal("US → EU storage should be allowed")
	}
}

// Top is above everything: data carrying ⊤ flows nowhere, in either mode,
// even to receivers whose labels are unrelated to it (the comparable-mode
// fail-open gap the tracker's truncation fix relies on).
func TestFlowTopDeniesEverywhere(t *testing.T) {
	g := mustGraph(t, "a -> b")
	withTop := NewLabelSet("a", Top)
	for _, mode := range []FlowMode{FlowComparable, FlowStrict} {
		if g.FlowAllowed(withTop, NewLabelSet("b"), mode) {
			t.Fatalf("⊤ flowed to a labelled receiver (%v)", mode)
		}
		if g.FlowAllowed(NewLabelSet(Top), NewLabelSet(), mode) {
			t.Fatalf("⊤ flowed to an unlabelled receiver (%v)", mode)
		}
		if g.FlowAllowed(NewLabelSet(Top), NewLabelSet(Top), mode) {
			t.Fatalf("⊤ flowed to a ⊤ receiver (%v)", mode)
		}
	}
	// receivers labelled ⊤ accept ordinary data as usual
	if !g.FlowAllowed(NewLabelSet("a"), NewLabelSet(Top), FlowComparable) {
		t.Fatal("⊤ on the receiver side should not reject unrelated data")
	}
}

func TestFlowUnlabelledData(t *testing.T) {
	g := mustGraph(t, "a -> b")
	if !g.FlowAllowed(NewLabelSet(), NewLabelSet("a"), FlowStrict) {
		t.Fatal("unlabelled data flows anywhere (strict)")
	}
	if !g.FlowAllowed(NewLabelSet(), NewLabelSet(), FlowComparable) {
		t.Fatal("unlabelled data flows anywhere (comparable)")
	}
}

// Property: CanFlow is transitive on random DAGs (layered construction
// guarantees acyclicity).
func TestQuickTransitivity(t *testing.T) {
	f := func(edges []uint16) bool {
		const layers = 5
		var rules []Rule
		for _, e := range edges {
			from := int(e) % layers
			to := from + 1 + int(e>>8)%(layers-from)
			if to >= layers {
				continue
			}
			rules = append(rules, Rule{
				Label(string(rune('A' + from))),
				Label(string(rune('A' + to))),
			})
		}
		g, err := NewGraph(rules)
		if err != nil {
			return false // layered edges can never cycle
		}
		labels := g.Labels()
		for _, a := range labels {
			for _, b := range labels {
				for _, c := range labels {
					if g.CanFlow(a, b) && g.CanFlow(b, c) && !g.CanFlow(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative, associative, idempotent.
func TestQuickUnionLaws(t *testing.T) {
	mk := func(bits uint8) LabelSet {
		s := NewLabelSet()
		for i := 0; i < 8; i++ {
			if bits&(1<<i) != 0 {
				s[Label(string(rune('a'+i)))] = struct{}{}
			}
		}
		return s
	}
	f := func(x, y, z uint8) bool {
		a, b, c := mk(x), mk(y), mk(z)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		return a.Union(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
