package policy

import (
	"fmt"
	"strings"
	"testing"
)

// stubCompile returns a LabelFunc that yields the source string itself as a
// label, so tests can verify wiring without a JS engine.
func stubCompile(src string) (LabelFunc, error) {
	if strings.Contains(src, "BAD") {
		return nil, fmt.Errorf("stub compile error")
	}
	return func(args ...any) (LabelSet, error) {
		return NewLabelSet(Label(src)), nil
	}, nil
}

const fig4Policy = `{
  "labellers": {
    "Scene": { "persons": { "$map": "employeeOrCustomer" } }
  },
  "rules": [ "employee -> customer", "customer -> internal" ],
  "injections": [
    { "line": 2, "object": "scene", "labeller": "Scene" }
  ]
}`

func TestParseFig4Policy(t *testing.T) {
	p, err := ParseJSON([]byte(fig4Policy), stubCompile)
	if err != nil {
		t.Fatal(err)
	}
	scene, err := p.Labeller("Scene")
	if err != nil {
		t.Fatal(err)
	}
	persons := scene.Props["persons"]
	if persons == nil || persons.Map == nil || persons.Map.Fn == nil {
		t.Fatalf("labeller shape wrong: %+v", scene)
	}
	if len(p.Injections) != 1 || p.Injections[0].Object != "scene" || p.Injections[0].Line != 2 {
		t.Fatalf("injections = %+v", p.Injections)
	}
	if !p.Graph.CanFlow("employee", "internal") {
		t.Fatal("rule DAG not built")
	}
	if p.Mode != FlowComparable {
		t.Fatal("default mode should be comparable")
	}
}

const fig7Policy = `{
  "labellers": {
    "onRecognize": { "predictions": { "$map": "regionAndLevel" } },
    "mailer": { "sendMail": { "$invoke": "recipientLevel" } },
    "nodeRegion": { "mydb": "dbRegion" }
  },
  "rules": [ "US -> EU", "L1 -> L2", "L2 -> L3" ],
  "injections": [
    { "file": "face-recognition.js", "line": 5, "object": "result", "labeller": "onRecognize" },
    { "file": "email-notification.js", "line": 7, "object": "smtpTransport", "labeller": "mailer" },
    { "file": "frame-storage.js", "line": 44, "object": "node", "labeller": "nodeRegion" }
  ],
  "mode": "comparable"
}`

func TestParseFig7Policy(t *testing.T) {
	p, err := ParseJSON([]byte(fig7Policy), stubCompile)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Injections) != 3 {
		t.Fatalf("injections = %d", len(p.Injections))
	}
	mailer, _ := p.Labeller("mailer")
	if mailer.Props["sendMail"].Invoke == nil {
		t.Fatal("$invoke labeller not parsed")
	}
	if !p.Graph.CanFlow("L1", "L3") {
		t.Fatal("rules not transitive")
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{ "rules": ["a <- b"] }`,
		`{ "rules": ["a -> b", "b -> a"] }`,
		`{ "labellers": { "x": 42 } }`,
		`{ "labellers": { "x": {} } }`,
		`{ "labellers": { "x": "BAD source" } }`,
		`{ "labellers": { "x": { "$map": "f", "p": "g" } } }`,
		`{ "injections": [ { "object": "o", "labeller": "missing" } ] }`,
		`{ "mode": "bogus" }`,
	}
	for _, src := range cases {
		if _, err := ParseJSON([]byte(src), stubCompile); err == nil {
			t.Errorf("ParseJSON(%q) should fail", src)
		}
	}
}

func TestParseJSONNoCompilerNeeded(t *testing.T) {
	// policies without leaf functions parse with a nil compiler
	if _, err := ParseJSON([]byte(`{ "rules": ["a -> b"] }`), nil); err != nil {
		t.Fatal(err)
	}
	// but leaf functions require one
	if _, err := ParseJSON([]byte(`{ "labellers": { "x": "f" } }`), nil); err == nil {
		t.Fatal("expected error without compiler")
	}
}

func TestStrictModeParsed(t *testing.T) {
	p, err := ParseJSON([]byte(`{ "rules": ["a -> b"], "mode": "strict" }`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != FlowStrict {
		t.Fatalf("mode = %v", p.Mode)
	}
}

func TestLabellerUnknown(t *testing.T) {
	p, err := New(map[string]*Labeller{"a": {Fn: func(...any) (LabelSet, error) { return nil, nil }}}, nil, nil, FlowComparable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Labeller("zzz"); err == nil || !strings.Contains(err.Error(), "zzz") {
		t.Fatalf("err = %v", err)
	}
}

// Declassification (§4.3): a label function that ignores its input and
// always returns a fixed label implements declassify/endorse.
func TestDeclassifyViaConstantLabeller(t *testing.T) {
	declassify := func(args ...any) (LabelSet, error) {
		return NewLabelSet("public"), nil
	}
	l := &Labeller{Fn: declassify}
	got, err := l.Fn("super secret value")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(NewLabelSet("public")) {
		t.Fatalf("labels = %v", got)
	}
}
