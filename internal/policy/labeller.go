package policy

import (
	"encoding/json"
	"fmt"
	"sort"
)

// LabelFunc is a compiled label function l(x): V → L (§4.3). It receives
// the runtime value(s) it labels — one argument for value labellers, or
// (object, args) for $invoke labellers — and returns the label set.
// Label functions are written by the developer in the IFC policy; in this
// reproduction they are MiniJS arrow-function sources compiled by the core
// package, or plain Go functions in tests.
type LabelFunc func(args ...any) (LabelSet, error)

// CompileFunc turns a label-function source string from a policy document
// into an executable LabelFunc.
type CompileFunc func(source string) (LabelFunc, error)

// Labeller is the (possibly nested) labelling specification for one object
// type. Exactly one of the fields is set:
//
//   - Fn: a leaf — evaluate the label function on the value itself.
//   - Map: "$map" — apply the sub-labeller to each element of an array.
//   - Invoke: "$invoke" — the value is a function; its label is computed at
//     invocation time from (object, args).
//   - Props: property sub-labellers; each named property of the value is
//     labelled by its sub-labeller.
type Labeller struct {
	Name   string // top-level labeller name, for diagnostics
	Fn     LabelFunc
	Map    *Labeller
	Invoke LabelFunc
	Props  map[string]*Labeller
}

// Injection maps a source-code object (identified by file, line and
// variable name) to the labeller that must be attached there (§4.3,
// Figs. 4 and 7). When Line is zero, the injection applies to every
// occurrence of the named object in the file.
type Injection struct {
	File     string `json:"file,omitempty"`
	Line     int    `json:"line"`
	Object   string `json:"object"`
	Labeller string `json:"labeller"`
}

// Policy is a complete IFC policy: labellers, privacy rules (validated into
// a DAG), injection points, and the optional CNF extension (exchange
// rules, declassifiers, endorsements — see cnf.go).
type Policy struct {
	Labellers  map[string]*Labeller
	Rules      []Rule
	Graph      *Graph
	Injections []Injection
	Mode       FlowMode

	// CNF extension; all empty for a flat policy, which keeps the tracker
	// on the flat fast path (HasCNF reports false).
	Exchanges     []Exchange
	Declassifiers map[string]*Declassifier
	Endorsements  map[string]*Endorsement
}

// HasCNF reports whether the policy uses the CNF extension. Trackers use
// this to decide between the flat fast path and the clause-aware path.
func (p *Policy) HasCNF() bool {
	return len(p.Exchanges) > 0 || len(p.Declassifiers) > 0 || len(p.Endorsements) > 0
}

// SetCNF validates and installs the CNF extension. Slices are copied, so
// the caller's backing arrays are never aliased into the policy — two
// applications sharing parsed policy parts through the pipeline cache must
// not be able to corrupt each other's clause lists.
func (p *Policy) SetCNF(exchanges []Exchange, decs []Declassifier, ends []Endorsement) error {
	if err := validateCNF(exchanges, decs, ends); err != nil {
		return err
	}
	p.Exchanges = make([]Exchange, len(exchanges))
	for i, ex := range exchanges {
		p.Exchanges[i] = Exchange{Guard: ex.Guard, From: ex.From, Adds: append([]Label(nil), ex.Adds...)}
	}
	p.Declassifiers = make(map[string]*Declassifier, len(decs))
	for i := range decs {
		d := decs[i]
		p.Declassifiers[d.Name] = &d
	}
	p.Endorsements = make(map[string]*Endorsement, len(ends))
	for i := range ends {
		e := ends[i]
		p.Endorsements[e.Name] = &e
	}
	return nil
}

// Declassifier returns the named declassifier, if declared.
func (p *Policy) Declassifier(name string) (*Declassifier, bool) {
	d, ok := p.Declassifiers[name]
	return d, ok
}

// Endorsement returns the named endorsement, if declared.
func (p *Policy) Endorsement(name string) (*Endorsement, bool) {
	e, ok := p.Endorsements[name]
	return e, ok
}

// Labeller returns the named labeller, or an error naming the available
// ones.
func (p *Policy) Labeller(name string) (*Labeller, error) {
	if l, ok := p.Labellers[name]; ok {
		return l, nil
	}
	var names []string
	for n := range p.Labellers {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("policy: unknown labeller %q (have %v)", name, names)
}

// New assembles and validates a policy from parts. The labeller map and
// the rule/injection slices are copied: a Policy never aliases its
// caller's backing storage, so policies built from shared parts (e.g. by a
// harness reusing one parsed document across cached apps) stay independent
// of later caller-side mutation.
func New(labellers map[string]*Labeller, rules []Rule, injections []Injection, mode FlowMode) (*Policy, error) {
	g, err := NewGraph(rules)
	if err != nil {
		return nil, err
	}
	for _, inj := range injections {
		if _, ok := labellers[inj.Labeller]; !ok {
			return nil, fmt.Errorf("policy: injection for %q at %s:%d references unknown labeller %q",
				inj.Object, inj.File, inj.Line, inj.Labeller)
		}
	}
	owned := make(map[string]*Labeller, len(labellers))
	for name, l := range labellers {
		owned[name] = l
	}
	return &Policy{
		Labellers:  owned,
		Rules:      append([]Rule(nil), rules...),
		Graph:      g,
		Injections: append([]Injection(nil), injections...),
		Mode:       mode,
	}, nil
}

// jsonPolicy mirrors the JSON policy document format of Figs. 4 and 7,
// plus the CNF extension blocks (all optional).
type jsonPolicy struct {
	Labellers     map[string]json.RawMessage `json:"labellers"`
	Rules         []string                   `json:"rules"`
	Injections    []Injection                `json:"injections"`
	Mode          string                     `json:"mode,omitempty"`
	Exchanges     []Exchange                 `json:"exchanges,omitempty"`
	Declassifiers []Declassifier             `json:"declassifiers,omitempty"`
	Endorsements  []Endorsement              `json:"endorsements,omitempty"`
}

// ParseJSON parses a policy document. Leaf label-function sources are
// compiled with the supplied compiler.
func ParseJSON(data []byte, compile CompileFunc) (*Policy, error) {
	var doc jsonPolicy
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("policy: invalid JSON: %w", err)
	}
	labellers := make(map[string]*Labeller, len(doc.Labellers))
	for name, raw := range doc.Labellers {
		l, err := parseLabeller(raw, compile)
		if err != nil {
			return nil, fmt.Errorf("policy: labeller %q: %w", name, err)
		}
		l.Name = name
		labellers[name] = l
	}
	rules := make([]Rule, 0, len(doc.Rules))
	for _, rs := range doc.Rules {
		r, err := ParseRule(rs)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	mode := FlowComparable
	switch doc.Mode {
	case "", "comparable":
	case "strict":
		mode = FlowStrict
	default:
		return nil, fmt.Errorf("policy: unknown mode %q", doc.Mode)
	}
	p, err := New(labellers, rules, doc.Injections, mode)
	if err != nil {
		return nil, err
	}
	if err := p.SetCNF(doc.Exchanges, doc.Declassifiers, doc.Endorsements); err != nil {
		return nil, err
	}
	return p, nil
}

func parseLabeller(raw json.RawMessage, compile CompileFunc) (*Labeller, error) {
	// leaf: a label-function source string
	var src string
	if err := json.Unmarshal(raw, &src); err == nil {
		if compile == nil {
			return nil, fmt.Errorf("label-function source present but no compiler provided")
		}
		fn, err := compile(src)
		if err != nil {
			return nil, fmt.Errorf("compiling %q: %w", src, err)
		}
		return &Labeller{Fn: fn}, nil
	}
	// node: an object with $map / $invoke / property keys
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, fmt.Errorf("labeller must be a string or object")
	}
	out := &Labeller{}
	for key, sub := range obj {
		switch key {
		case "$map":
			inner, err := parseLabeller(sub, compile)
			if err != nil {
				return nil, fmt.Errorf("$map: %w", err)
			}
			out.Map = inner
		case "$invoke":
			var fsrc string
			if err := json.Unmarshal(sub, &fsrc); err != nil {
				return nil, fmt.Errorf("$invoke must be a function source string")
			}
			if compile == nil {
				return nil, fmt.Errorf("$invoke present but no compiler provided")
			}
			fn, err := compile(fsrc)
			if err != nil {
				return nil, fmt.Errorf("compiling $invoke %q: %w", fsrc, err)
			}
			out.Invoke = fn
		default:
			inner, err := parseLabeller(sub, compile)
			if err != nil {
				return nil, fmt.Errorf("property %q: %w", key, err)
			}
			if out.Props == nil {
				out.Props = map[string]*Labeller{}
			}
			out.Props[key] = inner
		}
	}
	if out.Map != nil && (out.Invoke != nil || out.Props != nil) ||
		(out.Invoke != nil && out.Props != nil) {
		return nil, fmt.Errorf("labeller mixes $map, $invoke and property keys")
	}
	if out.Map == nil && out.Invoke == nil && out.Props == nil {
		return nil, fmt.Errorf("empty labeller")
	}
	return out, nil
}
