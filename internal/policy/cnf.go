package policy

import (
	"fmt"
	"sort"
	"strings"
)

// CNF confidentiality labels, after the CFC model: a compound label is a
// conjunction (AND) of clauses, and a clause is a disjunction (OR) of
// alternative atoms. The encoding reuses LabelSet unchanged — each map key
// is one clause, and a clause with alternatives spells them '|'-separated
// in sorted order ("GoogleAuth|UserResource"). A flat label is exactly a
// singleton clause, so the whole pre-CNF policy model, its Union join
// (clause concatenation) and its memoized graph all keep working verbatim;
// FlowAllowed only takes the clause-aware path when a '|' is actually
// present, which keeps the Figure-10 fast path byte-identical.
//
// Integrity is a second LabelSet per value holding endorsement facts
// ("Paid", "Audited"). Integrity facts guard the exchange rules — rewrites
// that add disjunctive alternatives to matching clauses — and the
// robustness condition on declassification.

// ClauseSep separates the alternative atoms inside one OR-clause label.
const ClauseSep = '|'

// IsClause reports whether the label is an OR-clause (has alternatives).
func IsClause(l Label) bool {
	return strings.IndexByte(string(l), ClauseSep) >= 0
}

// HasClauses reports whether any label in the set is an OR-clause — the
// trigger for FlowAllowed's clause-aware path.
func (s LabelSet) HasClauses() bool {
	for l := range s {
		if IsClause(l) {
			return true
		}
	}
	return false
}

// ClauseAtoms returns the alternative atoms of a clause label (a single
// atom for a flat label). The returned slice is always freshly allocated,
// so callers may keep or mutate it without aliasing policy state.
func ClauseAtoms(l Label) []Label {
	if !IsClause(l) {
		return []Label{l}
	}
	parts := strings.Split(string(l), string(ClauseSep))
	out := make([]Label, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, Label(p))
		}
	}
	return out
}

// AtomizeClauses expands every OR-clause in the set into its alternative
// atoms, returning a flat label set. On the receiver side of a flow check
// a clause "r1|r2" offers each alternative as a clearance in its own
// right, so the per-label tests run over atoms — exactly what makes a
// mirrored-clause policy ("l|lM" over a doubled rule graph) decide like
// its flat original. Clause-free sets are returned unchanged (no copy).
func (s LabelSet) AtomizeClauses() LabelSet {
	if !s.HasClauses() {
		return s
	}
	out := make(LabelSet, len(s))
	for l := range s {
		for _, a := range ClauseAtoms(l) {
			out[a] = struct{}{}
		}
	}
	return out
}

// MakeClause builds a normalized clause label from alternative atoms:
// deduplicated, sorted, '|'-joined. ⊤ as one alternative among several is
// dropped — ⊤ can never satisfy a flow, and keeping it as a dead branch
// would only bloat the canonical form. Zero usable atoms yield ⊤ (the
// unsatisfiable clause: nobody may read).
func MakeClause(atoms ...Label) Label {
	set := make(map[Label]struct{}, len(atoms))
	for _, a := range atoms {
		a = Label(strings.TrimSpace(string(a)))
		if a == "" {
			continue
		}
		set[a] = struct{}{}
	}
	if len(set) > 1 {
		delete(set, Top)
	}
	if len(set) == 0 {
		return Top
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, string(a))
	}
	sort.Strings(out)
	return Label(strings.Join(out, string(ClauseSep)))
}

// NormalizeClause canonicalizes one clause label. Flat labels pass through
// untouched on a single IndexByte — the fast path the whole pre-CNF corpus
// takes.
func NormalizeClause(l Label) Label {
	if !IsClause(l) {
		return l
	}
	return MakeClause(ClauseAtoms(l)...)
}

// NormalizeCNF canonicalizes a compound label: every clause is normalized,
// and absorbed clauses are dropped — if clause D's alternatives are a
// subset of clause C's, then D implies C (fewer escape hatches is the
// stronger constraint), so C is redundant. The result is the canonical
// form two joins are compared under; the input is never mutated.
func NormalizeCNF(s LabelSet) LabelSet {
	if s == nil {
		return nil
	}
	norm := make(LabelSet, len(s))
	for l := range s {
		norm[NormalizeClause(l)] = struct{}{}
	}
	if len(norm) < 2 {
		return norm
	}
	clauses := make([]Label, 0, len(norm))
	for l := range norm {
		clauses = append(clauses, l)
	}
	atoms := make(map[Label]map[Label]struct{}, len(clauses))
	for _, c := range clauses {
		as := make(map[Label]struct{})
		for _, a := range ClauseAtoms(c) {
			as[a] = struct{}{}
		}
		atoms[c] = as
	}
	out := make(LabelSet, len(norm))
	for _, c := range clauses {
		absorbed := false
		for _, d := range clauses {
			if d == c || len(atoms[d]) >= len(atoms[c]) {
				continue
			}
			sub := true
			for a := range atoms[d] {
				if _, ok := atoms[c][a]; !ok {
					sub = false
					break
				}
			}
			if sub {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out[c] = struct{}{}
		}
	}
	return out
}

// ParseCNF parses the textual compound-label form: clauses separated by
// commas, alternatives inside a clause separated by '|'. "Secret, a|b"
// means Secret AND (a OR b). Empty clauses are skipped; the result is
// normalized.
func ParseCNF(s string) LabelSet {
	out := NewLabelSet()
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		out[NormalizeClause(Label(strings.TrimSpace(part)))] = struct{}{}
	}
	return NormalizeCNF(out)
}

// CNFString renders the canonical textual form (clauses sorted).
func CNFString(s LabelSet) string {
	parts := NormalizeCNF(s).Slice()
	strs := make([]string, len(parts))
	for i, l := range parts {
		strs[i] = string(l)
	}
	return strings.Join(strs, ", ")
}

// Intersect returns the meet s ∩ t, used to combine the integrity of the
// conditions guarding one pc scope: only facts every condition carried are
// trusted for the scope.
func (s LabelSet) Intersect(t LabelSet) LabelSet {
	out := NewLabelSet()
	for l := range s {
		if t.Contains(l) {
			out[l] = struct{}{}
		}
	}
	return out
}

// Exchange is one integrity-guarded exchange rule: when the flowing data
// carries the Guard integrity fact, every clause mentioning the From atom
// gains the Adds atoms as extra alternatives. Exchanges only ever widen
// clauses, so they are monotone — applying them can only turn a denied
// flow into an allowed one, never the reverse.
type Exchange struct {
	Guard Label   `json:"guard"`
	From  Label   `json:"from"`
	Adds  []Label `json:"adds"`
}

// maxExchangeRounds bounds the exchange fixpoint; alternatives only grow
// within the finite atom universe of the rule set, so this is a defensive
// bound, not a semantic one.
const maxExchangeRounds = 16

// ApplyExchanges rewrites a data label under the exchange rules enabled by
// the given integrity facts, to fixpoint (an added alternative may match a
// later rule's From). The input set is never mutated; when no rule fires
// the input is returned as-is, so the flat fast path stays allocation-free.
func ApplyExchanges(data, integ LabelSet, exchanges []Exchange) LabelSet {
	if len(exchanges) == 0 || data.Empty() || integ.Empty() {
		return data
	}
	cur := data
	for round := 0; round < maxExchangeRounds; round++ {
		var next LabelSet
		for clause := range cur {
			atoms := ClauseAtoms(clause)
			have := make(map[Label]struct{}, len(atoms))
			for _, a := range atoms {
				have[a] = struct{}{}
			}
			grew := false
			for _, ex := range exchanges {
				if !integ.Contains(ex.Guard) {
					continue
				}
				if _, ok := have[ex.From]; !ok {
					continue
				}
				for _, add := range ex.Adds {
					if _, ok := have[add]; !ok {
						have[add] = struct{}{}
						atoms = append(atoms, add)
						grew = true
					}
				}
			}
			if grew && next == nil {
				next = cur.Clone()
			}
			if grew {
				delete(next, clause)
				next[MakeClause(atoms...)] = struct{}{}
			}
		}
		if next == nil {
			return cur
		}
		cur = next
	}
	return cur
}

// Declassifier names one sanctioned downgrade: clauses mentioning the
// Removes atom are discharged from the value's label. Requires is the
// integrity fact the *decision context* must carry — every secret-tainted
// pc scope open at the declassification must be guarded by a condition
// endorsed with Requires, or the declassification is refused (robust
// declassification: low-integrity inputs cannot steer what is released).
type Declassifier struct {
	Name     string `json:"name"`
	Removes  Label  `json:"removes"`
	Requires Label  `json:"requires,omitempty"`
}

// Declassify returns data with every clause mentioning the atom dropped.
// The input is never mutated; when nothing matches it is returned as-is.
func Declassify(data LabelSet, removes Label) LabelSet {
	var out LabelSet
	for clause := range data {
		hit := false
		for _, a := range ClauseAtoms(clause) {
			if a == removes {
				hit = true
				break
			}
		}
		if hit && out == nil {
			out = data.Clone()
		}
		if hit {
			delete(out, clause)
		}
	}
	if out == nil {
		return data
	}
	return out
}

// Endorsement names one sanctioned integrity upgrade: the endorsed value
// gains the Adds fact. Endorsement must be transparent — it may not run
// under a secret pc, or which inputs get endorsed would itself leak (and a
// laundered endorsement would unlock exchanges and declassification).
type Endorsement struct {
	Name string `json:"name"`
	Adds Label  `json:"adds"`
}

// validateCNF checks the CNF extension of a policy for structural errors.
func validateCNF(exchanges []Exchange, decs []Declassifier, ends []Endorsement) error {
	for _, ex := range exchanges {
		if ex.Guard == "" || ex.From == "" || len(ex.Adds) == 0 {
			return fmt.Errorf("policy: exchange rule needs guard, from and adds (got guard=%q from=%q adds=%v)",
				ex.Guard, ex.From, ex.Adds)
		}
		if IsClause(ex.From) || IsClause(ex.Guard) {
			return fmt.Errorf("policy: exchange guard/from must be atoms, not clauses (guard=%q from=%q)", ex.Guard, ex.From)
		}
	}
	seen := map[string]string{}
	for _, d := range decs {
		if d.Name == "" || d.Removes == "" {
			return fmt.Errorf("policy: declassifier needs name and removes (got name=%q removes=%q)", d.Name, d.Removes)
		}
		if prev, dup := seen["d:"+d.Name]; dup {
			return fmt.Errorf("policy: duplicate declassifier %q (removes %s)", d.Name, prev)
		}
		seen["d:"+d.Name] = string(d.Removes)
	}
	for _, e := range ends {
		if e.Name == "" || e.Adds == "" {
			return fmt.Errorf("policy: endorsement needs name and adds (got name=%q adds=%q)", e.Name, e.Adds)
		}
		if prev, dup := seen["e:"+e.Name]; dup {
			return fmt.Errorf("policy: duplicate endorsement %q (adds %s)", e.Name, prev)
		}
		seen["e:"+e.Name] = string(e.Adds)
	}
	return nil
}
