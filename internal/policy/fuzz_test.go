package policy

import (
	"strings"
	"testing"
)

// FuzzCNFNormalize feeds arbitrary strings through the CNF pipeline:
// parse → normalize → join → exchange. None of it may panic, normalization
// must be idempotent, and CNFString/ParseCNF must round-trip on canonical
// forms.
func FuzzCNFNormalize(f *testing.F) {
	f.Add("Secret", "GoogleAuth|UserResource")
	f.Add("A|B, C", "A")
	f.Add("", "⊤")
	f.Add("|||", " , , ")
	f.Add("A|⊤|A", "⊤|⊤")
	f.Add("x", strings.Repeat("Z|", 64))
	f.Add("Paid", "Licensed|Secret")
	for _, fz := range [][2]string{{"a,b,c,d", "a|b|c|d"}, {"\x00|\xff", "🔒|🔑"}} {
		f.Add(fz[0], fz[1])
	}
	f.Fuzz(func(t *testing.T, sa, sb string) {
		a, b := ParseCNF(sa), ParseCNF(sb)

		na := NormalizeCNF(a)
		if again := NormalizeCNF(na); CNFString(again) != CNFString(na) {
			t.Fatalf("NormalizeCNF not idempotent on %q: %q then %q", sa, CNFString(na), CNFString(again))
		}

		// round-trip: parsing the canonical rendering is a fixpoint
		if rt := NormalizeCNF(ParseCNF(CNFString(na))); CNFString(rt) != CNFString(na) {
			t.Fatalf("CNFString/ParseCNF round-trip drifted on %q: %q vs %q", sa, CNFString(na), CNFString(rt))
		}

		// joins never panic and normalize consistently in either order
		l := NormalizeCNF(a.Union(b))
		r := NormalizeCNF(b.Union(a))
		if CNFString(l) != CNFString(r) {
			t.Fatalf("join not commutative under normalization: %q vs %q", CNFString(l), CNFString(r))
		}

		// exchanges on arbitrary parsed input must terminate and not panic
		ex := []Exchange{
			{Guard: "Paid", From: "Secret", Adds: []Label{"Licensed"}},
			{Guard: "Paid", From: "Licensed", Adds: []Label{"Resold"}},
		}
		out := ApplyExchanges(na, NewLabelSet("Paid"), ex)
		// and stay monotone: never fewer clauses than the input
		if len(out) != len(na) {
			t.Fatalf("ApplyExchanges changed clause count on %q: %d -> %d", sa, len(na), len(out))
		}

		// declassification on arbitrary input must not panic either
		_ = Declassify(na, "Secret")
	})
}
