package policy

import "testing"

// The paper's third future-work direction (§8): "we can use a different
// labelling framework to express more complex policies including integrity
// labels". Integrity is the dual of confidentiality and needs no new
// machinery — the rule DAG simply points the other way: data may flow from
// high-integrity to low-integrity, never up. These tests document the
// encoding.

func TestIntegrityLatticeEncoding(t *testing.T) {
	// trusted ⊑ … means trusted data may flow anywhere; untrusted data may
	// only flow to untrusted sinks.
	g := mustGraph(t,
		"trusted -> validated",
		"validated -> untrusted",
	)
	// firmware-update sink is trusted-only: untrusted data must not reach it
	if g.FlowAllowed(NewLabelSet("untrusted"), NewLabelSet("trusted"), FlowComparable) {
		t.Fatal("untrusted data must not flow to a trusted sink")
	}
	// trusted data may be displayed on an untrusted dashboard
	if !g.FlowAllowed(NewLabelSet("trusted"), NewLabelSet("untrusted"), FlowComparable) {
		t.Fatal("trusted data may flow down")
	}
	// a validation step endorses data: re-labelling untrusted → validated
	// is the label function's job (a constant labeller, §4.3); after
	// endorsement the data may reach validated sinks but still not trusted
	if !g.FlowAllowed(NewLabelSet("validated"), NewLabelSet("untrusted"), FlowComparable) {
		t.Fatal("validated data may flow to untrusted sinks")
	}
	if g.FlowAllowed(NewLabelSet("validated"), NewLabelSet("trusted"), FlowComparable) {
		t.Fatal("validated data must not reach trusted-only sinks")
	}
}

func TestMixedConfidentialityIntegrity(t *testing.T) {
	// both dimensions coexist in one policy: confidentiality levels
	// (public ⊑ secret) and integrity levels (trusted ⊑ untrusted).
	g := mustGraph(t,
		"public -> secret",
		"trusted -> untrusted",
	)
	data := NewLabelSet("secret", "untrusted")
	// an untrusted-secret value cannot reach a public log...
	if g.FlowAllowed(data, NewLabelSet("public", "untrusted"), FlowComparable) {
		t.Fatal("secret must not reach public")
	}
	// ...nor a trusted actuator...
	if g.FlowAllowed(data, NewLabelSet("secret", "trusted"), FlowComparable) {
		t.Fatal("untrusted must not reach trusted")
	}
	// ...but may reach a secret, untrusted store.
	if !g.FlowAllowed(data, NewLabelSet("secret", "untrusted"), FlowComparable) {
		t.Fatal("matching sink should accept")
	}
}
