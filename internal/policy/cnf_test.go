package policy

import (
	"reflect"
	"testing"
)

func TestClauseBasics(t *testing.T) {
	if IsClause("Alpha") {
		t.Error("flat label reported as clause")
	}
	if !IsClause("Alpha|Beta") {
		t.Error("clause not detected")
	}
	got := ClauseAtoms("Beta|Alpha|Beta")
	want := []Label{"Beta", "Alpha", "Beta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ClauseAtoms = %v, want %v", got, want)
	}
	if atoms := ClauseAtoms("Solo"); len(atoms) != 1 || atoms[0] != "Solo" {
		t.Errorf("ClauseAtoms flat = %v", atoms)
	}
}

func TestMakeClause(t *testing.T) {
	cases := []struct {
		atoms []Label
		want  Label
	}{
		{[]Label{"B", "A"}, "A|B"},
		{[]Label{"A", "A", "A"}, "A"},
		{[]Label{" A ", "", "B"}, "A|B"},
		{[]Label{}, Top},
		{[]Label{""}, Top},
		// ⊤ among alternatives is a dead branch (it can never satisfy a
		// flow) and is dropped; alone it stays the unsatisfiable clause.
		{[]Label{Top, "A"}, "A"},
		{[]Label{Top}, Top},
	}
	for _, c := range cases {
		if got := MakeClause(c.atoms...); got != c.want {
			t.Errorf("MakeClause(%v) = %q, want %q", c.atoms, got, c.want)
		}
	}
}

func TestNormalizeClauseIdempotent(t *testing.T) {
	for _, l := range []Label{"A", "B|A", "A|B|A", "⊤|X", "  ", "A| |B"} {
		once := NormalizeClause(l)
		if twice := NormalizeClause(once); twice != once {
			t.Errorf("NormalizeClause not idempotent on %q: %q then %q", l, once, twice)
		}
	}
}

func TestNormalizeCNFAbsorption(t *testing.T) {
	// {A, A|B} — clause A is the stronger constraint, A|B is redundant.
	in := NewLabelSet("A", "A|B")
	out := NormalizeCNF(in)
	if !out.Equal(NewLabelSet("A")) {
		t.Errorf("absorption failed: %v", out)
	}
	// input must not be mutated
	if !in.Equal(NewLabelSet("A", "A|B")) {
		t.Errorf("NormalizeCNF mutated its input: %v", in)
	}
	// incomparable clauses both survive
	out = NormalizeCNF(NewLabelSet("A|B", "B|C"))
	if !out.Equal(NewLabelSet("A|B", "B|C")) {
		t.Errorf("incomparable clauses dropped: %v", out)
	}
	if NormalizeCNF(nil) != nil {
		t.Error("NormalizeCNF(nil) != nil")
	}
}

func TestParseCNFAndString(t *testing.T) {
	s := ParseCNF("Secret, GoogleAuth|UserResource , ")
	if !s.Equal(NewLabelSet("Secret", "GoogleAuth|UserResource")) {
		t.Errorf("ParseCNF = %v", s)
	}
	if got := CNFString(s); got != "GoogleAuth|UserResource, Secret" {
		t.Errorf("CNFString = %q", got)
	}
	if got := CNFString(nil); got != "" {
		t.Errorf("CNFString(nil) = %q", got)
	}
}

func TestIntersect(t *testing.T) {
	got := NewLabelSet("A", "B", "C").Intersect(NewLabelSet("B", "C", "D"))
	if !got.Equal(NewLabelSet("B", "C")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := NewLabelSet("A").Intersect(nil); !got.Empty() {
		t.Errorf("Intersect with nil = %v", got)
	}
}

func TestApplyExchanges(t *testing.T) {
	ex := []Exchange{{Guard: "Paid", From: "Secret", Adds: []Label{"Licensed"}}}
	data := NewLabelSet("Secret", "Other")

	// no integrity fact: unchanged, and the very same set is returned
	out := ApplyExchanges(data, nil, ex)
	if !out.Equal(data) {
		t.Errorf("exchange fired without guard: %v", out)
	}

	// guard present: Secret clause gains the alternative, Other untouched
	out = ApplyExchanges(data, NewLabelSet("Paid"), ex)
	if !out.Equal(NewLabelSet("Licensed|Secret", "Other")) {
		t.Errorf("exchange result = %v", out)
	}
	// input never mutated
	if !data.Equal(NewLabelSet("Secret", "Other")) {
		t.Errorf("ApplyExchanges mutated its input: %v", data)
	}
}

func TestApplyExchangesFixpoint(t *testing.T) {
	// a cascade: Secret gains Stage1, Stage1 gains Stage2
	ex := []Exchange{
		{Guard: "G", From: "Secret", Adds: []Label{"Stage1"}},
		{Guard: "G", From: "Stage1", Adds: []Label{"Stage2"}},
	}
	out := ApplyExchanges(NewLabelSet("Secret"), NewLabelSet("G"), ex)
	if !out.Equal(NewLabelSet("Secret|Stage1|Stage2")) {
		t.Errorf("fixpoint result = %v", out)
	}
}

func TestDeclassifyDropsMatchingClauses(t *testing.T) {
	data := NewLabelSet("Secret", "Secret|Backup", "Other")
	out := Declassify(data, "Secret")
	if !out.Equal(NewLabelSet("Other")) {
		t.Errorf("Declassify = %v", out)
	}
	if !data.Equal(NewLabelSet("Secret", "Secret|Backup", "Other")) {
		t.Errorf("Declassify mutated its input: %v", data)
	}
	// no match: same set back
	out = Declassify(data, "NoSuch")
	if !out.Equal(data) {
		t.Errorf("no-op Declassify = %v", out)
	}
}

func TestValidateCNF(t *testing.T) {
	bad := []struct {
		name string
		ex   []Exchange
		dec  []Declassifier
		end  []Endorsement
	}{
		{"empty exchange", []Exchange{{}}, nil, nil},
		{"clause guard", []Exchange{{Guard: "A|B", From: "X", Adds: []Label{"Y"}}}, nil, nil},
		{"nameless declassifier", nil, []Declassifier{{Removes: "X"}}, nil},
		{"dup declassifier", nil, []Declassifier{{Name: "d", Removes: "X"}, {Name: "d", Removes: "Y"}}, nil},
		{"empty endorsement", nil, nil, []Endorsement{{Name: "e"}}},
		{"dup endorsement", nil, nil, []Endorsement{{Name: "e", Adds: "X"}, {Name: "e", Adds: "Y"}}},
	}
	for _, c := range bad {
		if err := validateCNF(c.ex, c.dec, c.end); err == nil {
			t.Errorf("%s: validateCNF accepted invalid input", c.name)
		}
	}
	ok := validateCNF(
		[]Exchange{{Guard: "Paid", From: "Secret", Adds: []Label{"Licensed"}}},
		[]Declassifier{{Name: "release", Removes: "Secret", Requires: "Audited"}},
		[]Endorsement{{Name: "audit", Adds: "Audited"}})
	if ok != nil {
		t.Errorf("validateCNF rejected valid input: %v", ok)
	}
}

func TestFlowAllowedClauses(t *testing.T) {
	g, err := NewGraph([]Rule{{From: "Public", To: "Secret"}})
	if err != nil {
		t.Fatal(err)
	}
	recv := NewLabelSet("Public")

	// flat Secret: comparable (edge) but not allowed → denied
	if g.FlowAllowed(NewLabelSet("Secret"), recv, FlowComparable) {
		t.Error("flat Secret allowed to Public sink")
	}
	// clause Secret|Licensed: Licensed is incomparable to Public, so the
	// clause is satisfiable → allowed in comparable mode
	if !g.FlowAllowed(NewLabelSet("Licensed|Secret"), recv, FlowComparable) {
		t.Error("clause with incomparable alternative denied in comparable mode")
	}
	// strict mode needs a positive edge: neither atom reaches Public
	if g.FlowAllowed(NewLabelSet("Licensed|Secret"), recv, FlowStrict) {
		t.Error("clause allowed in strict mode without a reaching atom")
	}
	// strict mode with a reaching alternative
	g2, err := NewGraph([]Rule{{From: "Secret", To: "Public"}})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.FlowAllowed(NewLabelSet("Licensed|Secret"), recv, FlowStrict) {
		t.Error("clause with reaching alternative denied in strict mode")
	}
	// AND semantics: every clause must pass
	if g.FlowAllowed(NewLabelSet("Licensed|Secret", "Secret"), recv, FlowComparable) {
		t.Error("compound label allowed although one clause is blocked")
	}
	// ⊤ anywhere denies outright
	if g.FlowAllowed(NewLabelSet(Top, "Licensed|Secret"), recv, FlowComparable) {
		t.Error("⊤ label allowed")
	}
}

func TestPolicyCNFAccessorsAndCopies(t *testing.T) {
	p, err := New(map[string]*Labeller{}, nil, nil, FlowComparable)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasCNF() {
		t.Error("flat policy reports HasCNF")
	}
	adds := []Label{"Licensed"}
	exchanges := []Exchange{{Guard: "Paid", From: "Secret", Adds: adds}}
	decs := []Declassifier{{Name: "release", Removes: "Secret"}}
	ends := []Endorsement{{Name: "audit", Adds: "Audited"}}
	if err := p.SetCNF(exchanges, decs, ends); err != nil {
		t.Fatal(err)
	}
	if !p.HasCNF() {
		t.Error("CNF policy reports !HasCNF")
	}
	// caller-side mutation must not reach the policy (the pipeline-cache
	// aliasing regression)
	adds[0] = "CORRUPTED"
	exchanges[0].Guard = "CORRUPTED"
	decs[0].Removes = "CORRUPTED"
	if p.Exchanges[0].Adds[0] != "Licensed" || p.Exchanges[0].Guard != "Paid" {
		t.Errorf("exchange aliased caller storage: %+v", p.Exchanges[0])
	}
	if d, ok := p.Declassifier("release"); !ok || d.Removes != "Secret" {
		t.Errorf("declassifier aliased caller storage: %+v", d)
	}
	if _, ok := p.Endorsement("audit"); !ok {
		t.Error("endorsement lookup failed")
	}
	if _, ok := p.Declassifier("nope"); ok {
		t.Error("unknown declassifier found")
	}
}

func TestPolicyNewDefensiveCopies(t *testing.T) {
	rules := []Rule{{From: "A", To: "B"}}
	injections := []Injection{{Object: "x", Labeller: "L"}}
	labellers := map[string]*Labeller{"L": {Name: "L"}}
	p, err := New(labellers, rules, injections, FlowComparable)
	if err != nil {
		t.Fatal(err)
	}
	rules[0].From = "CORRUPTED"
	injections[0].Object = "CORRUPTED"
	delete(labellers, "L")
	if p.Rules[0].From != "A" {
		t.Errorf("rules aliased: %+v", p.Rules[0])
	}
	if p.Injections[0].Object != "x" {
		t.Errorf("injections aliased: %+v", p.Injections[0])
	}
	if _, ok := p.Labellers["L"]; !ok {
		t.Error("labeller map aliased caller storage")
	}
}

func TestParseJSONCNF(t *testing.T) {
	doc := `{
	  "labellers": {},
	  "rules": ["Public -> Secret"],
	  "injections": [],
	  "exchanges": [ { "guard": "Paid", "from": "Secret", "adds": ["Licensed"] } ],
	  "declassifiers": [ { "name": "release", "removes": "Secret", "requires": "Audited" } ],
	  "endorsements": [ { "name": "audit", "adds": "Audited" } ]
	}`
	p, err := ParseJSON([]byte(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasCNF() || len(p.Exchanges) != 1 || len(p.Declassifiers) != 1 || len(p.Endorsements) != 1 {
		t.Errorf("CNF blocks not parsed: %+v", p)
	}
	if d, _ := p.Declassifier("release"); d.Requires != "Audited" {
		t.Errorf("declassifier requires = %q", d.Requires)
	}
	// invalid CNF block is rejected at parse time
	bad := `{"labellers": {}, "rules": [], "declassifiers": [ { "name": "" } ]}`
	if _, err := ParseJSON([]byte(bad), nil); err == nil {
		t.Error("invalid declassifier accepted")
	}
}
