// Package policy implements Turnstile's IFC policy model (§2, §4.3):
// privacy labels, compound labels, the privacy-rule DAG with cycle
// detection, and O(1) cached flow checks after a one-time O(V+E) traversal.
//
// A policy is written once per application by the developer. It consists of
// a set of label functions ("labellers"), a set of privacy rules forming a
// DAG over labels, and a set of injection points mapping source-code
// objects to labellers.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"turnstile/internal/telemetry"
)

// Label is a single privacy label, e.g. "employee" or "EU".
type Label string

// Top is the maximal privacy label ⊤. The tracker joins it whenever it
// must over-approximate — e.g. when label collection is truncated by its
// depth bound — so lost precision surfaces as a denial at the sink rather
// than a silent leak. Data carrying Top may not flow to any receiver, in
// either flow mode.
const Top Label = "⊤"

// LabelSet is a compound privacy label (§2): a set of simple labels.
// Following Denning's lattice model, compound labels arise when values
// derived from multiple labelled objects are combined.
type LabelSet map[Label]struct{}

// NewLabelSet builds a LabelSet from the given labels.
func NewLabelSet(labels ...Label) LabelSet {
	s := make(LabelSet, len(labels))
	for _, l := range labels {
		s[l] = struct{}{}
	}
	return s
}

// Union returns the compound label s ∪ t (the label of a value derived
// from values labelled s and t, per the binaryOp/invoke rules of Fig. 5).
func (s LabelSet) Union(t LabelSet) LabelSet {
	if len(s) == 0 {
		return t.Clone()
	}
	if len(t) == 0 {
		return s.Clone()
	}
	u := make(LabelSet, len(s)+len(t))
	for l := range s {
		u[l] = struct{}{}
	}
	for l := range t {
		u[l] = struct{}{}
	}
	return u
}

// Clone returns a copy of s.
func (s LabelSet) Clone() LabelSet {
	if s == nil {
		return nil
	}
	c := make(LabelSet, len(s))
	for l := range s {
		c[l] = struct{}{}
	}
	return c
}

// Contains reports whether l is in the set.
func (s LabelSet) Contains(l Label) bool {
	_, ok := s[l]
	return ok
}

// Empty reports whether the set has no labels.
func (s LabelSet) Empty() bool { return len(s) == 0 }

// Slice returns the labels in sorted order.
func (s LabelSet) Slice() []Label {
	out := make([]Label, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as {a, b}.
func (s LabelSet) String() string {
	parts := s.Slice()
	strs := make([]string, len(parts))
	for i, l := range parts {
		strs[i] = string(l)
	}
	return "{" + strings.Join(strs, ", ") + "}"
}

// Equal reports whether two sets contain the same labels.
func (s LabelSet) Equal(t LabelSet) bool {
	if len(s) != len(t) {
		return false
	}
	for l := range s {
		if !t.Contains(l) {
			return false
		}
	}
	return true
}

// Rule states From ⊑ To: data labelled From may flow to To ("To is more
// private than From"). Written "From -> To" in policy files.
type Rule struct {
	From Label
	To   Label
}

// ParseRule parses "X -> Y".
func ParseRule(s string) (Rule, error) {
	parts := strings.Split(s, "->")
	if len(parts) != 2 {
		return Rule{}, fmt.Errorf("policy: bad rule %q (want \"X -> Y\")", s)
	}
	from := Label(strings.TrimSpace(parts[0]))
	to := Label(strings.TrimSpace(parts[1]))
	if from == "" || to == "" {
		return Rule{}, fmt.Errorf("policy: bad rule %q (empty label)", s)
	}
	return Rule{From: from, To: to}, nil
}

// FlowMode selects the compound-label comparison semantics. The paper
// defines simple-label checks precisely (a path in the rule DAG) but is
// loose about multi-dimensional compound labels (the NVR policy of Fig. 7
// mixes region labels and clearance-level labels); both readings are
// provided.
type FlowMode int

const (
	// FlowComparable (default): only comparable label pairs constrain the
	// flow. A data label p forbids the flow if some receiver label q is
	// related to p (a path exists in either direction) and p does not flow
	// to q. Labels from independent dimensions (e.g. region vs clearance)
	// do not interfere. This matches the NVR case study's intended
	// behaviour.
	FlowComparable FlowMode = iota
	// FlowStrict: every data label must flow to at least one receiver
	// label (Denning-style subset ordering lifted over the DAG). The
	// conservative reading of "if no path is found, the flow is forbidden".
	FlowStrict
)

func (m FlowMode) String() string {
	if m == FlowStrict {
		return "strict"
	}
	return "comparable"
}

// CycleError reports a cycle found while building the rule DAG, which makes
// a policy invalid (§4.3).
type CycleError struct {
	Cycle []Label
}

func (e *CycleError) Error() string {
	parts := make([]string, len(e.Cycle))
	for i, l := range e.Cycle {
		parts[i] = string(l)
	}
	return "policy: privacy rules contain a cycle: " + strings.Join(parts, " -> ")
}

// Graph is the privacy-label hierarchy: a DAG whose edges are the privacy
// rules, with memoized reachability. It is safe for concurrent use.
type Graph struct {
	edges map[Label][]Label
	nodes map[Label]struct{}

	mu    sync.RWMutex
	cache map[[2]Label]bool
	// telHits/telMisses, when non-nil, count memoized reachability lookups.
	// Guarded by mu so SetMetrics is safe while checks are in flight; the
	// telemetry-off cost is one nil check under the lock already held.
	telHits, telMisses *telemetry.Counter
}

// SetMetrics attaches (or, with nil, detaches) reachability-cache hit and
// miss counters to the graph.
func (g *Graph) SetMetrics(m *telemetry.Metrics) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m == nil {
		g.telHits, g.telMisses = nil, nil
		return
	}
	g.telHits = m.Counter("policy.cache.hit")
	g.telMisses = m.Counter("policy.cache.miss")
}

// NewGraph builds the rule DAG and validates it. A *CycleError is returned
// if the rules are cyclic.
func NewGraph(rules []Rule) (*Graph, error) {
	g := &Graph{
		edges: make(map[Label][]Label),
		nodes: make(map[Label]struct{}),
		cache: make(map[[2]Label]bool),
	}
	for _, r := range rules {
		g.nodes[r.From] = struct{}{}
		g.nodes[r.To] = struct{}{}
		g.edges[r.From] = append(g.edges[r.From], r.To)
	}
	if cyc := g.findCycle(); cyc != nil {
		return nil, &CycleError{Cycle: cyc}
	}
	return g, nil
}

// findCycle returns a cycle as a label sequence, or nil.
func (g *Graph) findCycle() []Label {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Label]int, len(g.nodes))
	parent := make(map[Label]Label)
	var cycleStart, cycleEnd Label
	var dfs func(u Label) bool
	dfs = func(u Label) bool {
		color[u] = gray
		for _, v := range g.edges[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				cycleStart, cycleEnd = v, u
				return true
			}
		}
		color[u] = black
		return false
	}
	// deterministic iteration for reproducible error messages
	var nodes []Label
	for n := range g.nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			cycle := []Label{cycleStart}
			for v := cycleEnd; v != cycleStart; v = parent[v] {
				cycle = append(cycle, v)
			}
			cycle = append(cycle, cycleStart)
			// reverse into forward edge order
			for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
				cycle[i], cycle[j] = cycle[j], cycle[i]
			}
			return cycle
		}
	}
	return nil
}

// Labels returns all labels in the graph, sorted.
func (g *Graph) Labels() []Label {
	out := make([]Label, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Has reports whether the label appears in any rule.
func (g *Graph) Has(l Label) bool {
	_, ok := g.nodes[l]
	return ok
}

// CanFlow reports whether data labelled `from` may flow to an object
// labelled `to`: from == to, or a path from→to exists in the rule DAG.
// The first check for a pair costs O(V+E); the result is cached so
// subsequent checks are O(1) (§4.4).
func (g *Graph) CanFlow(from, to Label) bool {
	if from == to {
		return true
	}
	key := [2]Label{from, to}
	g.mu.RLock()
	if r, ok := g.cache[key]; ok {
		if g.telHits != nil {
			g.telHits.Inc()
		}
		g.mu.RUnlock()
		return r
	}
	miss := g.telMisses
	g.mu.RUnlock()
	if miss != nil {
		miss.Inc()
	}

	r := g.reach(from, to)
	g.mu.Lock()
	g.cache[key] = r
	g.mu.Unlock()
	return r
}

// reach is an uncached BFS from → to.
func (g *Graph) reach(from, to Label) bool {
	if _, ok := g.nodes[from]; !ok {
		return false
	}
	seen := map[Label]bool{from: true}
	queue := []Label{from}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.edges[u] {
			if v == to {
				return true
			}
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return false
}

// Comparable reports whether two labels are related in either direction.
func (g *Graph) Comparable(a, b Label) bool {
	return a == b || g.CanFlow(a, b) || g.CanFlow(b, a)
}

// CacheSize returns the number of memoized pair decisions (for tests and
// the cache-ablation bench).
func (g *Graph) CacheSize() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.cache)
}

// FlowAllowed decides whether data with compound label `data` may flow to a
// receiver with compound label `recv` under the given mode.
//
// An unlabelled receiver (empty recv) accepts any data in FlowComparable
// mode — it is an untracked sink and the check sites for it are never
// instrumented — and rejects labelled data in FlowStrict mode.
//
// When data contains OR-clauses (see cnf.go), every clause must be
// satisfied, and a clause is satisfied when at least one of its
// alternative atoms would be allowed on its own under the mode. Flat
// labels are singleton clauses, so the clause semantics coincide with the
// flat semantics on clause-free sets — which therefore take the original
// loop verbatim (the Figure-10 fast path).
func (g *Graph) FlowAllowed(data, recv LabelSet, mode FlowMode) bool {
	if data.Empty() {
		return true
	}
	// Top is above every receiver label: in FlowComparable mode an
	// otherwise-unrelated label would fail open, which would defeat its
	// purpose as the truncation over-approximation.
	if data.Contains(Top) {
		return false
	}
	// A clause on the receiver side offers each alternative atom as a
	// clearance in its own right; expanding here keeps every loop below —
	// flat and clause-aware alike — in terms of rule-graph nodes. Treating
	// a receiver clause as an opaque atom would make it incomparable to
	// everything and silently fail open in FlowComparable mode.
	recv = recv.AtomizeClauses()
	if data.HasClauses() {
		for p := range data {
			if !g.clauseAllowed(p, recv, mode) {
				return false
			}
		}
		return true
	}
	switch mode {
	case FlowStrict:
		for p := range data {
			ok := false
			for q := range recv {
				if g.CanFlow(p, q) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	default: // FlowComparable
		for p := range data {
			for q := range recv {
				if p == q {
					continue
				}
				if g.Comparable(p, q) && !g.CanFlow(p, q) {
					return false
				}
			}
		}
		return true
	}
}

// clauseAllowed decides one clause: some alternative atom must pass the
// mode's per-label test against the receiver. ⊤ is never a usable
// alternative (it flows nowhere, and in comparable mode its
// incomparability would fail open), matching the whole-set Contains(Top)
// guard on the flat path.
func (g *Graph) clauseAllowed(clause Label, recv LabelSet, mode FlowMode) bool {
	for _, a := range ClauseAtoms(clause) {
		if a == Top {
			continue
		}
		if mode == FlowStrict {
			for q := range recv {
				if g.CanFlow(a, q) {
					return true
				}
			}
			continue
		}
		blocked := false
		for q := range recv {
			if a != q && g.Comparable(a, q) && !g.CanFlow(a, q) {
				blocked = true
				break
			}
		}
		if !blocked {
			return true
		}
	}
	return false
}
