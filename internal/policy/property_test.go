package policy

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"turnstile/internal/telemetry"
)

// Property-based tests over randomized rule DAGs and label sets. All
// randomness is seeded, so failures reproduce: re-run with the seed from
// the subtest name.

// randRules generates a random rule set over nLabels labels. With
// allowCycles the edge set is unrestricted; otherwise edges only go from a
// lower-numbered label to a higher one, which guarantees acyclicity.
func randRules(rng *rand.Rand, nLabels, nEdges int, allowCycles bool) []Rule {
	name := func(i int) Label { return Label(fmt.Sprintf("L%02d", i)) }
	seen := make(map[Rule]bool)
	var rules []Rule
	for len(rules) < nEdges {
		a, b := rng.Intn(nLabels), rng.Intn(nLabels)
		if a == b {
			continue
		}
		if !allowCycles && a > b {
			a, b = b, a
		}
		r := Rule{From: name(a), To: name(b)}
		if seen[r] {
			// a duplicate edge: keep it occasionally to exercise parallel
			// edges, which the graph must tolerate
			if rng.Intn(4) != 0 {
				continue
			}
		}
		seen[r] = true
		rules = append(rules, r)
	}
	return rules
}

// refReach is an independent uncached DFS over the raw rule list — the
// specification CanFlow must agree with.
func refReach(rules []Rule, from, to Label) bool {
	if from == to {
		return true
	}
	adj := make(map[Label][]Label)
	nodes := make(map[Label]bool)
	for _, r := range rules {
		adj[r.From] = append(adj[r.From], r.To)
		nodes[r.From], nodes[r.To] = true, true
	}
	if !nodes[from] {
		return false
	}
	seen := map[Label]bool{from: true}
	stack := []Label{from}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if v == to {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// TestPropCachedReachabilityMatchesDFS checks that the memoized CanFlow
// agrees with an uncached DFS on every label pair of randomized DAGs, and
// that answers do not change once cached (queried twice, in two different
// random orders).
func TestPropCachedReachabilityMatchesDFS(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nLabels := 2 + rng.Intn(10)
			nEdges := 1 + rng.Intn(2*nLabels)
			rules := randRules(rng, nLabels, nEdges, false)
			g, err := NewGraph(rules)
			if err != nil {
				t.Fatalf("acyclic generator produced a rejected graph: %v", err)
			}
			m := telemetry.NewMetrics()
			g.SetMetrics(m)
			labels := g.Labels()
			type pair struct{ from, to Label }
			var pairs []pair
			for _, a := range labels {
				for _, b := range labels {
					pairs = append(pairs, pair{a, b})
				}
			}
			// two passes over the pairs in independent shuffles: pass one
			// fills the cache, pass two must read only cached decisions
			for pass := 0; pass < 2; pass++ {
				order := rng.Perm(len(pairs))
				for _, i := range order {
					p := pairs[i]
					got := g.CanFlow(p.from, p.to)
					want := refReach(rules, p.from, p.to)
					if got != want {
						t.Fatalf("pass %d: CanFlow(%s, %s) = %v, DFS says %v (rules %v)",
							pass, p.from, p.to, got, want, rules)
					}
				}
			}
			// every distinct-label pair was decided once and re-read at least
			// once: the cache must have registered hits and misses
			if m.CounterValue("policy.cache.miss") == 0 {
				t.Fatal("no cache misses counted over a fresh graph")
			}
			if m.CounterValue("policy.cache.hit") == 0 {
				t.Fatal("no cache hits counted over the second pass")
			}
		})
	}
}

// TestPropCyclicRulesRejected checks that graphs with cycles are rejected
// with a CycleError naming a real cycle in the rule set.
func TestPropCyclicRulesRejected(t *testing.T) {
	rejected := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		nLabels := 2 + rng.Intn(6)
		nEdges := 2 + rng.Intn(3*nLabels)
		rules := randRules(rng, nLabels, nEdges, true)
		g, err := NewGraph(rules)
		if err == nil {
			// accepted: must genuinely be acyclic — CanFlow(a,b) && CanFlow(b,a)
			// for distinct labels would betray a cycle
			for _, a := range g.Labels() {
				for _, b := range g.Labels() {
					if a != b && g.CanFlow(a, b) && g.CanFlow(b, a) {
						t.Fatalf("seed %d: accepted graph has mutual reachability %s <-> %s (rules %v)",
							seed, a, b, rules)
					}
				}
			}
			continue
		}
		rejected++
		var ce *CycleError
		if !errors.As(err, &ce) {
			t.Fatalf("seed %d: NewGraph error is not a CycleError: %v", seed, err)
		}
		if len(ce.Cycle) < 2 || ce.Cycle[0] != ce.Cycle[len(ce.Cycle)-1] {
			t.Fatalf("seed %d: reported cycle %v does not close", seed, ce.Cycle)
		}
		edge := make(map[Rule]bool)
		for _, r := range rules {
			edge[r] = true
		}
		for i := 0; i+1 < len(ce.Cycle); i++ {
			if !edge[(Rule{From: ce.Cycle[i], To: ce.Cycle[i+1]})] {
				t.Fatalf("seed %d: reported cycle %v uses nonexistent edge %s -> %s",
					seed, ce.Cycle, ce.Cycle[i], ce.Cycle[i+1])
			}
		}
	}
	if rejected == 0 {
		t.Fatal("cycle generator never produced a cyclic rule set; property untested")
	}
}

// randLabelSet draws a random subset of a small label universe (nil and
// empty sets included).
func randLabelSet(rng *rand.Rand) LabelSet {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return NewLabelSet()
	}
	s := NewLabelSet()
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		s[Label(fmt.Sprintf("l%d", rng.Intn(6)))] = struct{}{}
	}
	return s
}

// TestPropLabelJoinLaws checks the lattice-join laws the compound-label
// semantics of Fig. 5 rely on: Union is commutative, associative and
// idempotent, with the empty set as identity, and never mutates its
// operands.
func TestPropLabelJoinLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := randLabelSet(rng), randLabelSet(rng), randLabelSet(rng)
		ac, bc := a.Clone(), b.Clone()

		if ab, ba := a.Union(b), b.Union(a); !ab.Equal(ba) {
			t.Fatalf("commutativity: %v ∪ %v = %v, but %v ∪ %v = %v", a, b, ab, b, a, ba)
		}
		if l, r := a.Union(b).Union(c), a.Union(b.Union(c)); !l.Equal(r) {
			t.Fatalf("associativity: (%v ∪ %v) ∪ %v = %v ≠ %v", a, b, c, l, r)
		}
		if aa := a.Union(a); !aa.Equal(a) {
			t.Fatalf("idempotence: %v ∪ %v = %v", a, a, aa)
		}
		if ae := a.Union(NewLabelSet()); !ae.Equal(a) {
			t.Fatalf("identity: %v ∪ {} = %v", a, ae)
		}
		if an := a.Union(nil); !an.Equal(a) {
			t.Fatalf("identity(nil): %v ∪ nil = %v", a, an)
		}

		// union must be fresh: growing it must not alter the operands
		// (a nil union — both operands empty — has nothing to alias)
		if u := a.Union(b); u != nil {
			u[Label("poison")] = struct{}{}
			if !a.Equal(ac) || !b.Equal(bc) {
				t.Fatalf("Union aliases an operand: a=%v (was %v), b=%v (was %v)", a, ac, b, bc)
			}
		}
	}
}

// TestPropFlowAllowedModes cross-checks the compound-label comparison of
// FlowAllowed against a direct re-statement of its definition for both
// modes, over random graphs and label sets.
func TestPropFlowAllowedModes(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		rules := randRules(rng, 2+rng.Intn(6), 1+rng.Intn(10), false)
		g, err := NewGraph(rules)
		if err != nil {
			t.Fatal(err)
		}
		labelOf := func() LabelSet {
			s := NewLabelSet()
			for i, n := 0, rng.Intn(4); i < n; i++ {
				s[Label(fmt.Sprintf("L%02d", rng.Intn(8)))] = struct{}{}
			}
			return s
		}
		for i := 0; i < 50; i++ {
			data, recv := labelOf(), labelOf()

			wantStrict := true
			for p := range data {
				ok := false
				for q := range recv {
					if g.CanFlow(p, q) {
						ok = true
						break
					}
				}
				if !ok {
					wantStrict = false
					break
				}
			}
			if data.Empty() {
				wantStrict = true
			}
			if got := g.FlowAllowed(data, recv, FlowStrict); got != wantStrict {
				t.Fatalf("seed %d: strict FlowAllowed(%v, %v) = %v, want %v", seed, data, recv, got, wantStrict)
			}

			wantCmp := true
			if !data.Empty() {
				for p := range data {
					for q := range recv {
						if p != q && g.Comparable(p, q) && !g.CanFlow(p, q) {
							wantCmp = false
						}
					}
				}
			}
			if got := g.FlowAllowed(data, recv, FlowComparable); got != wantCmp {
				t.Fatalf("seed %d: comparable FlowAllowed(%v, %v) = %v, want %v", seed, data, recv, got, wantCmp)
			}
		}
	}
}
