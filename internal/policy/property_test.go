package policy

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"turnstile/internal/telemetry"
)

// Property-based tests over randomized rule DAGs and label sets. All
// randomness is seeded, so failures reproduce: re-run with the seed from
// the subtest name.

// randRules generates a random rule set over nLabels labels. With
// allowCycles the edge set is unrestricted; otherwise edges only go from a
// lower-numbered label to a higher one, which guarantees acyclicity.
func randRules(rng *rand.Rand, nLabels, nEdges int, allowCycles bool) []Rule {
	name := func(i int) Label { return Label(fmt.Sprintf("L%02d", i)) }
	seen := make(map[Rule]bool)
	var rules []Rule
	for len(rules) < nEdges {
		a, b := rng.Intn(nLabels), rng.Intn(nLabels)
		if a == b {
			continue
		}
		if !allowCycles && a > b {
			a, b = b, a
		}
		r := Rule{From: name(a), To: name(b)}
		if seen[r] {
			// a duplicate edge: keep it occasionally to exercise parallel
			// edges, which the graph must tolerate
			if rng.Intn(4) != 0 {
				continue
			}
		}
		seen[r] = true
		rules = append(rules, r)
	}
	return rules
}

// refReach is an independent uncached DFS over the raw rule list — the
// specification CanFlow must agree with.
func refReach(rules []Rule, from, to Label) bool {
	if from == to {
		return true
	}
	adj := make(map[Label][]Label)
	nodes := make(map[Label]bool)
	for _, r := range rules {
		adj[r.From] = append(adj[r.From], r.To)
		nodes[r.From], nodes[r.To] = true, true
	}
	if !nodes[from] {
		return false
	}
	seen := map[Label]bool{from: true}
	stack := []Label{from}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if v == to {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// TestPropCachedReachabilityMatchesDFS checks that the memoized CanFlow
// agrees with an uncached DFS on every label pair of randomized DAGs, and
// that answers do not change once cached (queried twice, in two different
// random orders).
func TestPropCachedReachabilityMatchesDFS(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nLabels := 2 + rng.Intn(10)
			nEdges := 1 + rng.Intn(2*nLabels)
			rules := randRules(rng, nLabels, nEdges, false)
			g, err := NewGraph(rules)
			if err != nil {
				t.Fatalf("acyclic generator produced a rejected graph: %v", err)
			}
			m := telemetry.NewMetrics()
			g.SetMetrics(m)
			labels := g.Labels()
			type pair struct{ from, to Label }
			var pairs []pair
			for _, a := range labels {
				for _, b := range labels {
					pairs = append(pairs, pair{a, b})
				}
			}
			// two passes over the pairs in independent shuffles: pass one
			// fills the cache, pass two must read only cached decisions
			for pass := 0; pass < 2; pass++ {
				order := rng.Perm(len(pairs))
				for _, i := range order {
					p := pairs[i]
					got := g.CanFlow(p.from, p.to)
					want := refReach(rules, p.from, p.to)
					if got != want {
						t.Fatalf("pass %d: CanFlow(%s, %s) = %v, DFS says %v (rules %v)",
							pass, p.from, p.to, got, want, rules)
					}
				}
			}
			// every distinct-label pair was decided once and re-read at least
			// once: the cache must have registered hits and misses
			if m.CounterValue("policy.cache.miss") == 0 {
				t.Fatal("no cache misses counted over a fresh graph")
			}
			if m.CounterValue("policy.cache.hit") == 0 {
				t.Fatal("no cache hits counted over the second pass")
			}
		})
	}
}

// TestPropCyclicRulesRejected checks that graphs with cycles are rejected
// with a CycleError naming a real cycle in the rule set.
func TestPropCyclicRulesRejected(t *testing.T) {
	rejected := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		nLabels := 2 + rng.Intn(6)
		nEdges := 2 + rng.Intn(3*nLabels)
		rules := randRules(rng, nLabels, nEdges, true)
		g, err := NewGraph(rules)
		if err == nil {
			// accepted: must genuinely be acyclic — CanFlow(a,b) && CanFlow(b,a)
			// for distinct labels would betray a cycle
			for _, a := range g.Labels() {
				for _, b := range g.Labels() {
					if a != b && g.CanFlow(a, b) && g.CanFlow(b, a) {
						t.Fatalf("seed %d: accepted graph has mutual reachability %s <-> %s (rules %v)",
							seed, a, b, rules)
					}
				}
			}
			continue
		}
		rejected++
		var ce *CycleError
		if !errors.As(err, &ce) {
			t.Fatalf("seed %d: NewGraph error is not a CycleError: %v", seed, err)
		}
		if len(ce.Cycle) < 2 || ce.Cycle[0] != ce.Cycle[len(ce.Cycle)-1] {
			t.Fatalf("seed %d: reported cycle %v does not close", seed, ce.Cycle)
		}
		edge := make(map[Rule]bool)
		for _, r := range rules {
			edge[r] = true
		}
		for i := 0; i+1 < len(ce.Cycle); i++ {
			if !edge[(Rule{From: ce.Cycle[i], To: ce.Cycle[i+1]})] {
				t.Fatalf("seed %d: reported cycle %v uses nonexistent edge %s -> %s",
					seed, ce.Cycle, ce.Cycle[i], ce.Cycle[i+1])
			}
		}
	}
	if rejected == 0 {
		t.Fatal("cycle generator never produced a cyclic rule set; property untested")
	}
}

// randLabelSet draws a random subset of a small label universe (nil and
// empty sets included).
func randLabelSet(rng *rand.Rand) LabelSet {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return NewLabelSet()
	}
	s := NewLabelSet()
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		s[Label(fmt.Sprintf("l%d", rng.Intn(6)))] = struct{}{}
	}
	return s
}

// TestPropLabelJoinLaws checks the lattice-join laws the compound-label
// semantics of Fig. 5 rely on: Union is commutative, associative and
// idempotent, with the empty set as identity, and never mutates its
// operands.
func TestPropLabelJoinLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := randLabelSet(rng), randLabelSet(rng), randLabelSet(rng)
		ac, bc := a.Clone(), b.Clone()

		if ab, ba := a.Union(b), b.Union(a); !ab.Equal(ba) {
			t.Fatalf("commutativity: %v ∪ %v = %v, but %v ∪ %v = %v", a, b, ab, b, a, ba)
		}
		if l, r := a.Union(b).Union(c), a.Union(b.Union(c)); !l.Equal(r) {
			t.Fatalf("associativity: (%v ∪ %v) ∪ %v = %v ≠ %v", a, b, c, l, r)
		}
		if aa := a.Union(a); !aa.Equal(a) {
			t.Fatalf("idempotence: %v ∪ %v = %v", a, a, aa)
		}
		if ae := a.Union(NewLabelSet()); !ae.Equal(a) {
			t.Fatalf("identity: %v ∪ {} = %v", a, ae)
		}
		if an := a.Union(nil); !an.Equal(a) {
			t.Fatalf("identity(nil): %v ∪ nil = %v", a, an)
		}

		// union must be fresh: growing it must not alter the operands
		// (a nil union — both operands empty — has nothing to alias)
		if u := a.Union(b); u != nil {
			u[Label("poison")] = struct{}{}
			if !a.Equal(ac) || !b.Equal(bc) {
				t.Fatalf("Union aliases an operand: a=%v (was %v), b=%v (was %v)", a, ac, b, bc)
			}
		}
	}
}

// --- CNF lattice properties (cnf.go) -------------------------------------

// randClause draws a random OR-clause over a small atom universe.
func randClause(rng *rand.Rand) Label {
	n := 1 + rng.Intn(3)
	atoms := make([]Label, 0, n)
	for i := 0; i < n; i++ {
		atoms = append(atoms, Label(fmt.Sprintf("C%d", rng.Intn(6))))
	}
	return MakeClause(atoms...)
}

// randCNF draws a random conjunction of random clauses (nil included).
func randCNF(rng *rand.Rand) LabelSet {
	if rng.Intn(8) == 0 {
		return nil
	}
	s := NewLabelSet()
	for i, n := 0, rng.Intn(4); i < n; i++ {
		s[randClause(rng)] = struct{}{}
	}
	return s
}

// TestPropCNFJoinLaws checks that the clause-concatenation join (Union over
// clause-bearing sets) obeys the lattice laws under canonical forms, and
// that normalization is idempotent and compatible with the join:
// normalizing before or after joining lands on the same canonical CNF.
func TestPropCNFJoinLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a, b, c := randCNF(rng), randCNF(rng), randCNF(rng)

		if ab, ba := a.Union(b), b.Union(a); CNFString(NormalizeCNF(ab)) != CNFString(NormalizeCNF(ba)) {
			t.Fatalf("join commutativity: %v vs %v", ab, ba)
		}
		if l, r := a.Union(b).Union(c), a.Union(b.Union(c)); CNFString(NormalizeCNF(l)) != CNFString(NormalizeCNF(r)) {
			t.Fatalf("join associativity: %v vs %v", l, r)
		}
		if aa := a.Union(a); CNFString(NormalizeCNF(aa)) != CNFString(NormalizeCNF(a)) {
			t.Fatalf("join idempotence: %v vs %v", aa, a)
		}

		na := NormalizeCNF(a)
		if again := NormalizeCNF(na); CNFString(again) != CNFString(na) {
			t.Fatalf("NormalizeCNF not idempotent: %v then %v", na, again)
		}
		// join of normal forms ≡ normal form of join
		if l, r := NormalizeCNF(a.Union(b)), NormalizeCNF(NormalizeCNF(a).Union(NormalizeCNF(b))); CNFString(l) != CNFString(r) {
			t.Fatalf("normalization incompatible with join: %v vs %v", l, r)
		}
		// normalization only removes redundant (absorbed) clauses: every
		// surviving clause was in the input
		for cl := range na {
			if !a.Contains(cl) {
				t.Fatalf("NormalizeCNF invented clause %q from %v", cl, a)
			}
		}
	}
}

// TestPropClauseCanonicalForm checks MakeClause/NormalizeClause produce a
// canonical form: sorted, deduplicated, idempotent under re-normalization,
// and order-insensitive in the input.
func TestPropClauseCanonicalForm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(4)
		atoms := make([]Label, n)
		for j := range atoms {
			atoms[j] = Label(fmt.Sprintf("C%d", rng.Intn(5)))
		}
		c := MakeClause(atoms...)
		if NormalizeClause(c) != c {
			t.Fatalf("MakeClause(%v) = %q is not normal", atoms, c)
		}
		// input order must not matter
		perm := rng.Perm(n)
		shuffled := make([]Label, n)
		for j, p := range perm {
			shuffled[j] = atoms[p]
		}
		if c2 := MakeClause(shuffled...); c2 != c {
			t.Fatalf("MakeClause order-sensitive: %v -> %q, %v -> %q", atoms, c, shuffled, c2)
		}
		// atoms of the canonical clause are strictly increasing (sorted, deduped)
		as := ClauseAtoms(c)
		for j := 1; j < len(as); j++ {
			if !(as[j-1] < as[j]) {
				t.Fatalf("clause %q atoms not strictly sorted: %v", c, as)
			}
		}
	}
}

// TestPropFlatSingletonEquivalence is the flat ≡ CNF-singleton differential:
// rewriting every flat label l as the (unnormalized) singleton clause "l|l"
// forces FlowAllowed onto the clause path, which must reach the same
// decision as the flat fast path for every graph, receiver and mode.
func TestPropFlatSingletonEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		rules := randRules(rng, 2+rng.Intn(6), 1+rng.Intn(10), false)
		g, err := NewGraph(rules)
		if err != nil {
			t.Fatal(err)
		}
		labelOf := func() LabelSet {
			s := NewLabelSet()
			for i, n := 0, rng.Intn(4); i < n; i++ {
				s[Label(fmt.Sprintf("L%02d", rng.Intn(8)))] = struct{}{}
			}
			return s
		}
		for i := 0; i < 60; i++ {
			data, recv := labelOf(), labelOf()
			dup := NewLabelSet()
			for l := range data {
				dup[l+Label(ClauseSep)+l] = struct{}{}
			}
			if !data.Empty() && !dup.HasClauses() {
				t.Fatal("dup set did not take the clause path; property untested")
			}
			for _, mode := range []FlowMode{FlowComparable, FlowStrict} {
				flat := g.FlowAllowed(data, recv, mode)
				clause := g.FlowAllowed(dup, recv, mode)
				if flat != clause {
					t.Fatalf("seed %d mode %v: flat %v vs singleton-clause %v for data %v recv %v",
						seed, mode, flat, clause, data, recv)
				}
			}
		}
	}
}

// TestPropMirrorEquivalence checks the construction the corpus-wide
// differential harness relies on: replacing every flat label l with the
// clause "l|l_M" under a graph extended with an isomorphic mirrored copy of
// the rules (and receivers extended with their mirrors) decides identically
// to the flat original in both modes.
func TestPropMirrorEquivalence(t *testing.T) {
	mirror := func(l Label) Label { return l + "M" }
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		rules := randRules(rng, 2+rng.Intn(6), 1+rng.Intn(10), false)
		g, err := NewGraph(rules)
		if err != nil {
			t.Fatal(err)
		}
		mirrored := make([]Rule, 0, 2*len(rules))
		for _, r := range rules {
			mirrored = append(mirrored, r, Rule{From: mirror(r.From), To: mirror(r.To)})
		}
		g2, err := NewGraph(mirrored)
		if err != nil {
			t.Fatal(err)
		}
		labelOf := func() LabelSet {
			s := NewLabelSet()
			for i, n := 0, rng.Intn(4); i < n; i++ {
				s[Label(fmt.Sprintf("L%02d", rng.Intn(8)))] = struct{}{}
			}
			return s
		}
		for i := 0; i < 60; i++ {
			data, recv := labelOf(), labelOf()
			dataM := NewLabelSet()
			for l := range data {
				dataM[MakeClause(l, mirror(l))] = struct{}{}
			}
			recvM := recv.Clone()
			if recvM == nil {
				recvM = NewLabelSet()
			}
			for l := range recv {
				recvM[mirror(l)] = struct{}{}
			}
			for _, mode := range []FlowMode{FlowComparable, FlowStrict} {
				flat := g.FlowAllowed(data, recv, mode)
				cnf := g2.FlowAllowed(dataM, recvM, mode)
				if flat != cnf {
					t.Fatalf("seed %d mode %v: flat %v vs mirrored-CNF %v for data %v recv %v",
						seed, mode, flat, cnf, data, recv)
				}
			}
		}
	}
}

// TestPropExchangeMonotonicity checks that integrity-guarded exchanges only
// weaken labels: every output clause extends an input clause with extra
// alternatives, and a flow that was allowed before applying exchanges is
// still allowed afterwards (exchanges can never turn an allowed flow into a
// denial, only unlock previously-denied ones).
func TestPropExchangeMonotonicity(t *testing.T) {
	atom := func(rng *rand.Rand) Label { return Label(fmt.Sprintf("C%d", rng.Intn(6))) }
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(5000 + seed))
		var ex []Exchange
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			adds := []Label{atom(rng)}
			if rng.Intn(2) == 0 {
				adds = append(adds, atom(rng))
			}
			ex = append(ex, Exchange{Guard: Label(fmt.Sprintf("G%d", rng.Intn(3))), From: atom(rng), Adds: adds})
		}
		var rules []Rule
		for i, n := 0, 1+rng.Intn(8); i < n; i++ {
			a, b := rng.Intn(6), rng.Intn(6)
			if a >= b {
				continue
			}
			rules = append(rules, Rule{From: Label(fmt.Sprintf("C%d", a)), To: Label(fmt.Sprintf("C%d", b))})
		}
		g, err := NewGraph(rules)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			data := randCNF(rng)
			integ := NewLabelSet()
			for j, n := 0, rng.Intn(3); j < n; j++ {
				integ[Label(fmt.Sprintf("G%d", rng.Intn(3)))] = struct{}{}
			}
			out := ApplyExchanges(data, integ, ex)
			// structural monotonicity: every input clause grew (or stayed)
			for cl := range data {
				found := false
				in := ClauseAtoms(NormalizeClause(cl))
			candidates:
				for ocl := range out {
					os := NewLabelSet(ClauseAtoms(ocl)...)
					for _, a := range in {
						if !os.Contains(a) {
							continue candidates
						}
					}
					found = true
					break
				}
				if !found {
					t.Fatalf("seed %d: no output clause extends input clause %q (in %v, out %v)", seed, cl, data, out)
				}
			}
			// decision monotonicity: allowed stays allowed
			recv := NewLabelSet()
			for j, n := 0, rng.Intn(3); j < n; j++ {
				recv[atom(rng)] = struct{}{}
			}
			for _, mode := range []FlowMode{FlowComparable, FlowStrict} {
				if g.FlowAllowed(data, recv, mode) && !g.FlowAllowed(out, recv, mode) {
					t.Fatalf("seed %d mode %v: exchange turned allowed into denied (data %v, out %v, recv %v, integ %v)",
						seed, mode, data, out, recv, integ)
				}
			}
		}
	}
}

// TestPropFlowAllowedModes cross-checks the compound-label comparison of
// FlowAllowed against a direct re-statement of its definition for both
// modes, over random graphs and label sets.
func TestPropFlowAllowedModes(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		rules := randRules(rng, 2+rng.Intn(6), 1+rng.Intn(10), false)
		g, err := NewGraph(rules)
		if err != nil {
			t.Fatal(err)
		}
		labelOf := func() LabelSet {
			s := NewLabelSet()
			for i, n := 0, rng.Intn(4); i < n; i++ {
				s[Label(fmt.Sprintf("L%02d", rng.Intn(8)))] = struct{}{}
			}
			return s
		}
		for i := 0; i < 50; i++ {
			data, recv := labelOf(), labelOf()

			wantStrict := true
			for p := range data {
				ok := false
				for q := range recv {
					if g.CanFlow(p, q) {
						ok = true
						break
					}
				}
				if !ok {
					wantStrict = false
					break
				}
			}
			if data.Empty() {
				wantStrict = true
			}
			if got := g.FlowAllowed(data, recv, FlowStrict); got != wantStrict {
				t.Fatalf("seed %d: strict FlowAllowed(%v, %v) = %v, want %v", seed, data, recv, got, wantStrict)
			}

			wantCmp := true
			if !data.Empty() {
				for p := range data {
					for q := range recv {
						if p != q && g.Comparable(p, q) && !g.CanFlow(p, q) {
							wantCmp = false
						}
					}
				}
			}
			if got := g.FlowAllowed(data, recv, FlowComparable); got != wantCmp {
				t.Fatalf("seed %d: comparable FlowAllowed(%v, %v) = %v, want %v", seed, data, recv, got, wantCmp)
			}
		}
	}
}
