package interp

import (
	"errors"
	"fmt"

	"turnstile/internal/ast"
	"turnstile/internal/dift"
	"turnstile/internal/guard"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/resolve"
)

// Adapter implements dift.ValueAdapter over MiniJS values.
type Adapter struct{}

// Property implements dift.ValueAdapter.
func (Adapter) Property(v any, name string) (any, bool) {
	if o, ok := dift.Unwrap(v).(*Object); ok {
		return o.Get(name)
	}
	return nil, false
}

// SetProperty implements dift.ValueAdapter.
func (Adapter) SetProperty(v any, name string, val any) bool {
	if o, ok := dift.Unwrap(v).(*Object); ok {
		o.Set(name, val)
		return true
	}
	return false
}

// Elements implements dift.ValueAdapter.
func (Adapter) Elements(v any) ([]any, bool) {
	if a, ok := dift.Unwrap(v).(*Array); ok {
		return a.Elems, true
	}
	return nil, false
}

// SetElement implements dift.ValueAdapter.
func (Adapter) SetElement(v any, i int, val any) bool {
	if a, ok := dift.Unwrap(v).(*Array); ok && i < len(a.Elems) {
		a.Elems[i] = val
		return true
	}
	return false
}

// PropertyNames implements dift.PropertyLister: insertion-ordered property
// names, so CNF-mode label collection over object graphs is deterministic.
func (Adapter) PropertyNames(v any) ([]string, bool) {
	if o, ok := dift.Unwrap(v).(*Object); ok {
		return o.Keys(), true
	}
	return nil, false
}

// IsReference implements dift.ValueAdapter.
func (Adapter) IsReference(v any) bool {
	switch v.(type) {
	case *Object, *Array, *Function, *HostFunc, *dift.Box:
		return true
	}
	return false
}

// InstallTracker creates the inlined DIF Tracker for a policy and exposes
// it to the application as the global __t object (the τ of Fig. 2b). It
// returns the tracker for host-side inspection.
func (ip *Interp) InstallTracker(pol *policy.Policy) *dift.Tracker {
	tr := dift.NewTracker(pol, Adapter{})
	ip.Tracker = tr
	// telemetry enabled before the tracker was installed: wire it through
	if ip.Metrics != nil || ip.Tracer != nil {
		tr.EnableTelemetry(ip.Metrics, ip.Tracer)
	}
	tau := NewObject()
	tau.Class = "DIFTracker"

	// label(target, labellerName): evaluate and attach the value-dependent
	// privacy label (Table 1).
	tau.Set("label", NewHostFunc("label", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return argOr(args, 0), nil
		}
		l, err := pol.Labeller(ToString(args[1]))
		if err != nil {
			return nil, &Throw{Val: ip.MakeError("Error", err.Error())}
		}
		out, err := tr.Label(args[0], l)
		if err != nil {
			// a guard budget trip inside the label function is a resource
			// abort, not an application exception: it must stay typed and
			// uncatchable, or a try/catch could swallow the enforcement
			var be *guard.BudgetError
			if errors.As(err, &be) {
				return nil, err
			}
			return nil, &Throw{Val: ip.MakeError("Error", err.Error())}
		}
		return out, nil
	}))

	// binaryOp(op, left, right): perform the operation and attach the
	// compound label (Fig. 5 binaryOp rule).
	tau.Set("binaryOp", NewHostFunc("binaryOp", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 3 {
			return undef, nil
		}
		res, err := ip.BinaryOp(ToString(args[0]), args[1], args[2], ast.Pos{})
		if err != nil {
			return nil, err
		}
		return tr.Derive(res, args[1], args[2]), nil
	}))

	// derive(result, ...sources): label a constructed value (object/array/
	// template literals on privacy-sensitive paths).
	tau.Set("derive", NewHostFunc("derive", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return undef, nil
		}
		return tr.Derive(args[0], args[1:]...), nil
	}))

	// check(data, receiver): verify the flow is allowed.
	tau.Set("check", NewHostFunc("check", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return args[0], nil
		}
		site := "check"
		if len(args) > 2 {
			site = ToString(args[2])
		}
		if err := tr.Check(args[0], args[1], site); err != nil {
			return nil, &Throw{Val: ip.MakeError("PrivacyViolation", err.Error())}
		}
		return args[0], nil
	}))

	// invoke(target, funcName, argsArray): flow-check the arguments against
	// the (possibly dynamically labelled) receiver, invoke, and label the
	// return value with the compound label of the arguments.
	tau.Set("invoke", NewHostFunc("invoke", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 3 {
			return undef, nil
		}
		target := args[0]
		fname := ToString(args[1])
		callArgs, ok := dift.Unwrap(args[2]).(*Array)
		if !ok {
			return nil, &Throw{Val: ip.MakeError("TypeError", "__t.invoke: args must be an array")}
		}
		site := "invoke:" + fname
		if len(args) > 3 {
			site = ToString(args[3])
		}
		// receiver labels: the function value's own labels plus the labels
		// and dynamic labellers of the object it is read from
		fnVal, err := ip.GetMember(target, fname, ast.Pos{})
		if err != nil {
			return nil, err
		}
		if err := tr.InvokeCheckTarget(fnVal, target, callArgs.Elems, site); err != nil {
			return nil, &Throw{Val: ip.MakeError("PrivacyViolation", err.Error())}
		}
		ret, err := ip.CallMethod(target, fname, callArgs.Elems, ast.Pos{})
		if err != nil {
			return nil, err
		}
		// methods that return their receiver for chaining (db.run, client
		// .publish) yield the receiver itself, not a derived value; labelling
		// it would conflate the sink's clearance with its contents. Only
		// references qualify: on value types == means equality, not
		// identity, and e.g. trim() on an already-trimmed secret returns an
		// equal string whose label must still derive from the receiver
		if retU := dift.Unwrap(ret); retU == dift.Unwrap(target) && tr.Adapter.IsReference(retU) {
			return ret, nil
		}
		// the return value derives from the arguments AND the receiver
		// (frame.indexOf, frame.split, ... extract the receiver's data)
		return tr.DeriveInvoke(ret, append(append([]Value{}, callArgs.Elems...), target)), nil
	}))

	// call(fn, argsArray): like invoke for bare function calls.
	tau.Set("call", NewHostFunc("call", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return undef, nil
		}
		callArgs, ok := dift.Unwrap(args[1]).(*Array)
		if !ok {
			return nil, &Throw{Val: ip.MakeError("TypeError", "__t.call: args must be an array")}
		}
		site := "call"
		if len(args) > 2 {
			site = ToString(args[2])
		}
		if err := tr.InvokeCheck(args[0], callArgs.Elems, site); err != nil {
			return nil, &Throw{Val: ip.MakeError("PrivacyViolation", err.Error())}
		}
		ret, err := ip.CallFunction(args[0], undef, callArgs.Elems, ast.Pos{})
		if err != nil {
			return nil, err
		}
		// declassify/endorse manage labels themselves; deriving their return
		// from the arguments would re-attach exactly the labels a sanctioned
		// declassification just discharged
		if hf, ok := dift.Unwrap(args[0]).(*HostFunc); ok && (hf.Name == "declassify" || hf.Name == "endorse") {
			return ret, nil
		}
		return tr.DeriveInvoke(ret, callArgs.Elems), nil
	}))

	// member(obj, name): read a property through the tracker — the Proxy
	// interception of §4.4. Exhaustive instrumentation routes every
	// property access through this trap; the result inherits the
	// container's labels.
	tau.Set("member", NewHostFunc("member", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return undef, nil
		}
		v, err := ip.GetMember(args[0], ToString(args[1]), ast.Pos{})
		if err != nil {
			return nil, err
		}
		return tr.Derive(v, args[0]), nil
	}))

	// track(v): wrap a value for tracking without labels (exhaustive mode).
	tau.Set("track", NewHostFunc("track", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return undef, nil
		}
		return tr.Track(args[0]), nil
	}))

	// implicit-flow extension (§8): pc-scope management injected by the
	// instrumentor's ImplicitFlows mode.
	tau.Set("pushScope", NewHostFunc("pushScope", func(ip *Interp, this Value, args []Value) (Value, error) {
		tr.PushScope()
		return undef, nil
	}))
	tau.Set("pc", NewHostFunc("pc", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return undef, nil
		}
		tr.PCCondition(args[0])
		return args[0], nil
	}))
	tau.Set("popScope", NewHostFunc("popScope", func(ip *Interp, this Value, args []Value) (Value, error) {
		tr.PopScope()
		return undef, nil
	}))
	tau.Set("assign", NewHostFunc("assign", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return undef, nil
		}
		return tr.Assign(args[0]), nil
	}))

	// unwrap(v): strip tracking for explicit declassification points.
	tau.Set("unwrap", NewHostFunc("unwrap", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return undef, nil
		}
		return tr.UnwrapDeep(args[0]), nil
	}))

	// declassify(v, name) / endorse(v, name): the CNF extension's sanctioned
	// downgrade and integrity-upgrade points (declass.go). Exposed both on τ
	// and as plain globals so application code can call them like ordinary
	// library functions; a refusal surfaces as PrivacyViolation in
	// enforcement mode and is recorded silently in audit mode.
	declassFn := NewHostFunc("declassify", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return argOr(args, 0), nil
		}
		out, err := tr.Declassify(args[0], ToString(args[1]))
		if err != nil {
			return nil, &Throw{Val: ip.MakeError("PrivacyViolation", err.Error())}
		}
		return out, nil
	})
	endorseFn := NewHostFunc("endorse", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return argOr(args, 0), nil
		}
		out, err := tr.Endorse(args[0], ToString(args[1]))
		if err != nil {
			return nil, &Throw{Val: ip.MakeError("PrivacyViolation", err.Error())}
		}
		return out, nil
	})
	tau.Set("declassify", declassFn)
	tau.Set("endorse", endorseFn)
	ip.Globals.Define("declassify", declassFn, false)
	ip.Globals.Define("endorse", endorseFn, false)

	ip.Globals.Define("__t", tau, false)

	// snapshot for the VM's fused __t.* call opcode: method table plus the
	// version the object had at install time. Any later mutation of τ or
	// dynamic rebinding of __t invalidates the fast path (see trackerCall).
	ip.tauObj = tau
	ip.tauVer = tau.version
	ip.tauRebound = false
	ip.tauMethods = make(map[string]Value, tau.Len())
	for _, k := range tau.Keys() {
		if v, ok := tau.GetOwn(k); ok {
			ip.tauMethods[k] = v
		}
	}
	return tr
}

func argOr(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return undef
}

// CompileLabelFunc compiles a MiniJS function source (typically an arrow
// function, as written in the IFC policy documents of Figs. 4 and 7) into a
// policy.LabelFunc executed on this interpreter. The function may return a
// string label or an array of string labels.
func (ip *Interp) CompileLabelFunc(source string) (policy.LabelFunc, error) {
	prog, err := parser.Parse("<labeller>", "const __lf = ("+source+");")
	if err != nil {
		return nil, fmt.Errorf("label function %q: %w", source, err)
	}
	if !ip.NoResolve {
		resolve.Resolve(prog)
		ip.ensureICs(prog.MaxID)
	}
	env := NewEnv(ip.Globals)
	if err := func() error {
		c, _, err := ip.execStmts(prog.Body, env)
		_ = c
		return err
	}(); err != nil {
		return nil, fmt.Errorf("label function %q: %w", source, err)
	}
	fnVal, ok := env.Lookup("__lf")
	if !ok {
		return nil, fmt.Errorf("label function %q did not evaluate", source)
	}
	return func(args ...any) (policy.LabelSet, error) {
		vals := make([]Value, len(args))
		for i, a := range args {
			vals[i] = toValue(a)
		}
		out, err := ip.CallFunction(fnVal, undef, vals, ast.Pos{})
		if err != nil {
			return nil, err
		}
		return valueToLabels(out)
	}, nil
}

// toValue converts a Go value from the tracker back into a MiniJS value.
// Tracker arguments are already MiniJS values except for []any argument
// lists passed by $invoke labellers.
func toValue(a any) Value {
	switch x := a.(type) {
	case nil:
		return null
	case []any:
		arr := NewArray()
		arr.Elems = append(arr.Elems, x...)
		return arr
	default:
		return x
	}
}

// valueToLabels converts a label-function result into a LabelSet.
func valueToLabels(v Value) (policy.LabelSet, error) {
	switch x := dift.Unwrap(v).(type) {
	case Undefined, Null:
		return nil, nil
	case string:
		if x == "" {
			return nil, nil
		}
		// NormalizeClause canonicalizes '|'-clause labels and is a no-op
		// passthrough for flat ones.
		return policy.NewLabelSet(policy.NormalizeClause(policy.Label(x))), nil
	case *Array:
		out := policy.NewLabelSet()
		for _, el := range x.Elems {
			s := ToString(el)
			if s != "" {
				out[policy.NormalizeClause(policy.Label(s))] = struct{}{}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("label function returned %s; want string or array of strings", TypeOf(v))
}
