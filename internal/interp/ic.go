package interp

import (
	"turnstile/internal/ast"
	"turnstile/internal/telemetry"
)

// Per-call-site monomorphic inline caches for property dispatch.
//
// Each non-computed MemberExpr gets one cache slot, indexed by its AST
// node ID. An entry remembers the receiver object and the value last
// fetched from it, guarded by the receiver's version counter (bumped on
// every property write or delete). Method-call sites additionally cache
// one-hop prototype loads — the class-method pattern — guarded by the
// receiver's shape counter (bumped only when keys are added or removed,
// so `this.x = 5` on an existing field does not invalidate the method
// cache), the prototype's identity and the prototype's version.
//
// Caching is restricted to cases where the uncached path performs no
// observable side effect: own properties of plain *Object receivers, and
// for call sites one-hop prototype hits. Reads that would clone a bound
// method (GetMember on a non-own *Function) allocate a fresh RefID and
// are never cached, keeping RefID allocation order — and therefore sink
// traces — identical with and without the caches.

// icEntry is one call site's cache line.
type icEntry struct {
	node      *ast.MemberExpr // owning site; guards against cross-program node-ID collisions
	epoch     uint64          // ip.icEpoch at fill time; a program swap retires the entry
	recv      *Object
	recvVer   uint64
	recvShape uint64
	proto     *Object // non-nil for a one-hop prototype method entry
	protoVer  uint64
	val       Value
}

// identIC is one OpIdent site's dynamic-global lookup cache line. A
// valid entry asserts: the last full chain walk for this identifier
// resolved to the Globals vars map, and envMapDefines has not moved
// since, so no environment anywhere can have gained a nearer map
// binding — the current value is whatever Globals holds now (in-place
// assignments stay visible; map bindings are never deleted). The VM
// then skips the walk and its per-scope slot-layout probes.
type identIC struct {
	node  *ast.Ident
	epoch uint64 // ip.icEpoch at fill time
	dyn   uint64 // envMapDefines at fill time
}

// ensureICs sizes the cache tables for a program's node-ID space. Tables
// only grow; entries from previously-run programs are retired by the
// interpreter's IC epoch (bumped on program swap in Run), not just the
// node-pointer guard — a reused node ID with an aliasing AST allocation
// must never validate a stale cached Value.
func (ip *Interp) ensureICs(maxID int) {
	if maxID <= len(ip.ics) {
		return
	}
	ics := make([]icEntry, maxID)
	copy(ics, ip.ics)
	ip.ics = ics
	idents := make([]identIC, maxID)
	copy(idents, ip.identICs)
	ip.identICs = idents
}

// icRead serves a non-computed property read on a plain object. It
// returns (value, true) on an own-property hit or fill; (nil, false)
// sends the caller to the uncached GetMember path (prototype chains,
// misses, host fallbacks).
func (ip *Interp) icRead(node *ast.MemberExpr, o *Object, name string) (Value, bool) {
	id := node.NodeID()
	if id < 0 || id >= len(ip.ics) {
		return nil, false
	}
	e := &ip.ics[id]
	if e.node == node && e.epoch == ip.icEpoch && e.recv == o && e.proto == nil && e.recvVer == o.version {
		ip.icHits++
		return e.val, true
	}
	ip.icMisses++
	if v, own := o.GetOwn(name); own {
		*e = icEntry{node: node, epoch: ip.icEpoch, recv: o, recvVer: o.version, val: v}
		return v, true
	}
	return nil, false
}

// icMethod serves a non-computed method-call callee lookup on a plain
// object, caching own properties and one-hop prototype methods. A false
// return sends the caller to the uncached CallMethod path.
func (ip *Interp) icMethod(node *ast.MemberExpr, o *Object, name string) (Value, bool) {
	id := node.NodeID()
	if id < 0 || id >= len(ip.ics) {
		return nil, false
	}
	e := &ip.ics[id]
	if e.node == node && e.epoch == ip.icEpoch && e.recv == o {
		if e.proto == nil {
			if e.recvVer == o.version {
				ip.icHits++
				return e.val, true
			}
		} else if e.recvShape == o.shape && e.proto == o.Proto && e.protoVer == e.proto.version {
			ip.icHits++
			return e.val, true
		}
	}
	ip.icMisses++
	if v, own := o.GetOwn(name); own {
		*e = icEntry{node: node, epoch: ip.icEpoch, recv: o, recvVer: o.version, val: v}
		return v, true
	}
	if p := o.Proto; p != nil {
		if v, ok := p.GetOwn(name); ok {
			*e = icEntry{node: node, epoch: ip.icEpoch, recv: o, recvShape: o.shape, proto: p, protoVer: p.version, val: v}
			return v, true
		}
	}
	return nil, false
}

// EnvStats is a snapshot of the resolver fast-path counters.
type EnvStats struct {
	SlotReads, DynReads   int64
	SlotWrites, DynWrites int64
	ICHits, ICMisses      int64
}

// EnvStats returns the current fast-path counters without resetting them.
func (ip *Interp) EnvStats() EnvStats {
	return EnvStats{
		SlotReads: ip.envSlotReads, DynReads: ip.envDynReads,
		SlotWrites: ip.envSlotWrites, DynWrites: ip.envDynWrites,
		ICHits: ip.icHits, ICMisses: ip.icMisses,
	}
}

// FlushEnvTelemetry moves the accumulated fast-path counters into the
// attached metrics registry (under "interp.*", outside the "dift." prefix
// rendered in overhead-breakdown tables) and resets them. No-op without a
// registry.
func (ip *Interp) FlushEnvTelemetry() {
	m := ip.Metrics
	if m == nil {
		return
	}
	flush := func(name string, n *int64) {
		if *n != 0 {
			m.Add(name, *n)
			*n = 0
		}
	}
	flush(telemetry.CtrEnvSlotReads, &ip.envSlotReads)
	flush(telemetry.CtrEnvDynReads, &ip.envDynReads)
	flush(telemetry.CtrEnvSlotWrites, &ip.envSlotWrites)
	flush(telemetry.CtrEnvDynWrites, &ip.envDynWrites)
	flush(telemetry.CtrICHits, &ip.icHits)
	flush(telemetry.CtrICMisses, &ip.icMisses)
}
