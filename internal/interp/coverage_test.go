package interp

import (
	"math"
	"strings"
	"testing"

	"turnstile/internal/parser"
)

// Tests for the corners that day-to-day application code rarely touches:
// coercion tables, member access on every value kind, string/array method
// edge cases, Promise combinators, JSON escapes, and module loading.

func TestToStringAllKinds(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{undef, "undefined"},
		{null, "null"},
		{true, "true"},
		{false, "false"},
		{3.0, "3"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Infinity"},
		{math.Inf(-1), "-Infinity"},
		{1e20, "1e+20"},
		{"s", "s"},
		{NewArray(1.0, null, "x"), "1,,x"},
		{NewObject(), "[object Object]"},
	}
	for _, c := range cases {
		if got := ToString(c.v); got != c.want {
			t.Errorf("ToString(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	fn := NewFunction("f", nil, nil)
	if !strings.Contains(ToString(fn), "function f") {
		t.Errorf("function ToString = %q", ToString(fn))
	}
	hf := NewHostFunc("h", nil)
	if !strings.Contains(ToString(hf), "native code") {
		t.Errorf("hostfunc ToString = %q", ToString(hf))
	}
}

func TestToNumberTable(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
	}{
		{"42", 42}, {" 3.5 ", 3.5}, {"", 0}, {true, 1}, {false, 0}, {null, 0},
	}
	for _, c := range cases {
		if got := ToNumber(c.v); got != c.want {
			t.Errorf("ToNumber(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	for _, nan := range []Value{"abc", undef, NewObject()} {
		if !math.IsNaN(ToNumber(nan)) {
			t.Errorf("ToNumber(%v) should be NaN", nan)
		}
	}
}

func TestLooseEqualsTable(t *testing.T) {
	eq := []struct{ a, b Value }{
		{1.0, "1"}, {true, 1.0}, {false, ""}, {null, undef}, {undef, undef},
	}
	for _, c := range eq {
		if !LooseEquals(c.a, c.b) {
			t.Errorf("%v == %v should hold", c.a, c.b)
		}
	}
	neq := []struct{ a, b Value }{
		{null, 0.0}, {undef, 0.0}, {"a", "b"}, {NewObject(), NewObject()},
	}
	for _, c := range neq {
		if LooseEquals(c.a, c.b) {
			t.Errorf("%v == %v should not hold", c.a, c.b)
		}
	}
	o := NewObject()
	if !LooseEquals(o, o) || !StrictEquals(o, o) {
		t.Error("object identity equality")
	}
}

func TestInspectCircularAndNested(t *testing.T) {
	o := NewObject()
	o.Set("name", "root")
	arr := NewArray(o, "leaf")
	o.Set("self", o)
	o.Set("list", arr)
	out := Inspect(o)
	if !strings.Contains(out, "[Circular]") {
		t.Fatalf("circular marker missing: %q", out)
	}
	if !strings.Contains(out, "'leaf'") {
		t.Fatalf("nested string should be quoted: %q", out)
	}
}

func TestObjectHelpers(t *testing.T) {
	o := NewObject()
	o.Set("a", 1.0)
	o.Set("b", 2.0)
	o.Set("a", 3.0) // overwrite keeps order
	if o.Len() != 2 {
		t.Fatalf("len = %d", o.Len())
	}
	if keys := o.Keys(); keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	o.Delete("a")
	o.Delete("ghost")
	if o.Len() != 1 || o.Keys()[0] != "b" {
		t.Fatalf("after delete: %v", o.Keys())
	}
	if o.RefID() == 0 || NewArray().RefID() == 0 || NewHostFunc("x", nil).RefID() == 0 {
		t.Fatal("ref ids must be non-zero")
	}
}

func TestStringMethodEdges(t *testing.T) {
	wantLogs(t, `
console.log("abc".charCodeAt(1), "abc".charCodeAt(9));
console.log("abc".lastIndexOf("b"), "a,b,,c".split(",").length);
console.log("xyz".substr(1), "xyz".substr(-2), "xyz".substr(0, 2));
console.log("5".padStart(3, "0"), "ab".padStart(1));
console.log("abcabc".replaceAll("a", "-"), "abcabc".replace("a", "-"));
console.log("hello".endsWith("lo"), "hello".includes("ell"));
console.log("a".concat("b", 1, true));
console.log("abc".slice(-2), "abc".slice(1, -1));
console.log("hi".toString(), (42).toString(), (1.5).toFixed(2));
console.log("needle in haystack".match("needle") !== null);
`,
		"98 NaN", "1 4", "yz yz xy", "005 ab", "-bc-bc -bcabc",
		"true true", "ab1true", "bc b", "hi 42 1.50", "true")
}

func TestStringRepeatRangeError(t *testing.T) {
	wantLogs(t, `
try { "x".repeat(-1); } catch (e) { console.log(e.name); }
`, "RangeError")
}

func TestArrayMethodEdges(t *testing.T) {
	wantLogs(t, `
const a = [1, 2, 3, 4];
console.log(a.splice(1, 2).join(","), a.join(","));
a.splice(1, 0, 9, 8);
console.log(a.join(","));
console.log([3, 1, 2].sort().join(","));
console.log([].pop(), [].shift());
console.log([1, 2].unshift(0), [0, 1, 2].reverse().join(","));
try { [].reduce((x, y) => x + y); } catch (e) { console.log("caught", e.name); }
console.log([1, [2, 3], 4].flat().join(","));
console.log([1, 2, 3].reduce((acc, v) => acc + v));
const arr2 = [5, 6];
arr2.length = 1;
console.log(arr2.join(","));
`,
		"2,3 1,4", "1,9,8,4", "1,2,3", "undefined undefined", "3 2,1,0",
		"caught TypeError", "1,2,3,4", "6", "5")
}

func TestPromiseCombinators(t *testing.T) {
	wantLogs(t, `
Promise.all([Promise.resolve(1), 2, Promise.resolve(3)]).then(vs => console.log(vs.join("+")));
Promise.reject("nope").catch(e => console.log("caught", e));
Promise.resolve("v").finally(() => console.log("cleanup")).then(v => console.log("still", v));
new Promise((res, rej) => { throw new Error("in executor"); }).catch(e => console.log("exec:", e.message));
`,
		"1+2+3", "caught nope", "cleanup", "still v", "exec: in executor")
}

func TestThenOnRejectedWithHandler(t *testing.T) {
	wantLogs(t, `
Promise.reject("r").then(v => console.log("ok"), e => console.log("err", e));
`, "err r")
}

func TestJSONEscapes(t *testing.T) {
	wantLogs(t, `
const o = JSON.parse('{"s": "a\\nb\\t\\u0041", "n": -1.5e2, "deep": {"x": [true, false, null]}}');
console.log(o.s.length, o.n, o.deep.x.length);
console.log(JSON.stringify("he\"llo"));
console.log(JSON.stringify({ f: function() {}, u: undefined, n: 1 }));
const circ = { a: 1 };
circ.self = circ;
console.log(JSON.stringify(circ));
`,
		"5 -150 3", `"he\"llo"`, `{"n":1}`, `{"a":1,"self":null}`)
}

func TestJSONParseErrorCases(t *testing.T) {
	for _, bad := range []string{`{`, `[1,`, `{"a"}`, `{"a":}`, `"unterminated`, `tru`, `12x34extra`} {
		ip := New()
		prog := parser.MustParse("t.js", "JSON.parse("+quoteForJS(bad)+");")
		if err := ip.Run(prog); err == nil {
			t.Errorf("JSON.parse(%q) should throw", bad)
		}
	}
}

func quoteForJS(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}

func TestGetSetMemberKinds(t *testing.T) {
	wantLogs(t, `
const s = "hello";
console.log(s.length, s[1], s[99]);
const a = [10, 20];
console.log(a.length, a[0], a["1"], a[5]);
function f() {}
f.custom = 7;
console.log(f.name, f.custom, typeof f.prototype);
const hf = console.log;
console.log(hf.name);
const num = 5;
num.x = 1;
console.log(num.x);
`,
		"5 e undefined", "2 10 20 undefined", "f 7 object", "log", "undefined")
}

func TestSetMemberOnNullThrows(t *testing.T) {
	wantLogs(t, `
try { null.x = 1; } catch (e) { console.log("set:", e.name); }
try { undefined.y; } catch (e) { console.log("get:", e.name); }
`, "set: TypeError", "get: TypeError")
}

func TestBinaryOpCorners(t *testing.T) {
	wantLogs(t, `
console.log([1, 2] + "!", ({}) + "");
console.log(5 & 3, 5 | 3, 5 ^ 3, 1 << 4, 256 >> 4, 256 >>> 4, ~5);
console.log("b" in { b: 1 }, "z" in { b: 1 }, "x" in "str");
console.log(10 % 3, 2 ** -1);
console.log("a" < "b", "b" <= "a", 3 >= "3");
`,
		"1,2! [object Object]", "1 7 6 16 16 16 -6",
		"true false false", "1 0.5", "true false true")
}

func TestLogicalAssignOps(t *testing.T) {
	wantLogs(t, `
let a = null; a ??= 5;
let b = 0; b ||= 7;
let c = 1; c &&= 9;
let d = 3; d ??= 99;
console.log(a, b, c, d);
`, "5 7 9 3")
}

func TestForOfObjectWithHostElems(t *testing.T) {
	ip := New()
	container := NewObject()
	container.Host = NewArray("p", "q")
	ip.Globals.Define("container", container, false)
	prog := parser.MustParse("t.js", `
let out = "";
for (const v of container) out += v;
console.log(out, container.length);
`)
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	if ip.ConsoleOut[0] != "pq 2" {
		t.Fatalf("out = %v", ip.ConsoleOut)
	}
}

func TestForOfNonIterableThrows(t *testing.T) {
	ip := New()
	prog := parser.MustParse("t.js", "for (const v of 42) { }")
	if err := ip.Run(prog); err == nil {
		t.Fatal("expected error")
	}
}

func TestSteps(t *testing.T) {
	ip := run(t, "let x = 0; for (let i = 0; i < 100; i++) x += i;")
	if ip.Steps() < 100 {
		t.Fatalf("steps = %d", ip.Steps())
	}
}

func TestIORecorderReset(t *testing.T) {
	ip := run(t, `require("fs").writeFileSync("/a", "x");`)
	if len(ip.IO.Writes) != 1 {
		t.Fatal("write missing")
	}
	ip.IO.Reset()
	if len(ip.IO.Writes) != 0 {
		t.Fatal("reset failed")
	}
}

func TestRunModuleRestoresBindings(t *testing.T) {
	ip := New()
	first := parser.MustParse("first.js", `module.exports = { tag: "first" };`)
	exp1, err := ip.RunModule(first)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := exp1.(*Object).Get("tag"); ToString(v) != "first" {
		t.Fatalf("exports = %v", exp1)
	}
	// the global module binding is restored after RunModule
	second := parser.MustParse("second.js", `exports.tag = "second";`)
	exp2, err := ip.RunModule(second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := exp2.(*Object).Get("tag"); ToString(v) != "second" {
		t.Fatalf("exports2 = %v", exp2)
	}
}

func TestLocalLoader(t *testing.T) {
	ip := New()
	helper := parser.MustParse("helper.js", `module.exports = { mul: x => x * 3 };`)
	ip.SetLocalLoader(func(name string) (Value, bool, error) {
		if name == "helper.js" {
			exp, err := ip.RunModule(helper)
			if err != nil {
				return nil, false, err
			}
			return exp, true, nil
		}
		return nil, false, nil
	})
	prog := parser.MustParse("main.js", `
const h = require("./helper");
const again = require("./helper");
console.log(h.mul(4), h === again);
`)
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	if ip.ConsoleOut[0] != "12 true" {
		t.Fatalf("out = %v", ip.ConsoleOut)
	}
	// unknown local module still errors
	bad := parser.MustParse("bad.js", `require("./missing");`)
	if err := ip.Run(bad); err == nil {
		t.Fatal("expected missing module error")
	}
}

func TestCompoundAssignTargets(t *testing.T) {
	wantLogs(t, `
const o = { n: 10 };
o.n += 5; o.n -= 1; o.n *= 2;
console.log(o.n);
const a = [1, 2, 3];
a[0] **= 3;
a[1] <<= 2;
console.log(a.join(","));
const m = { k: "x" };
m["k"] += "y";
console.log(m.k);
let obj = { flag: null };
obj.flag ??= "set";
obj.flag ??= "ignored";
console.log(obj.flag);
`, "28", "1,8,3", "xy", "set")
}

func TestDeleteComputedAndExpressions(t *testing.T) {
	wantLogs(t, `
const o = { a: 1, b: 2 };
const key = "a";
console.log(delete o[key], o.a, delete (1 + 2));
`, "true undefined true")
}

func TestSwitchDefaultFallthrough(t *testing.T) {
	wantLogs(t, `
function f(x) {
  let out = "";
  switch (x) {
    case 1: out += "one";
    default: out += "-dflt";
    case 9: out += "-nine";
  }
  return out;
}
console.log(f(1), f(5), f(9));
`, "one-dflt-nine -dflt-nine -nine")
}

func TestReturnInsideFinally(t *testing.T) {
	wantLogs(t, `
function f() {
  try { return "try"; } finally { console.log("cleanup"); }
}
console.log(f());
function g() {
  try { throw "x"; } catch (e) { return "caught"; } finally { console.log("g-cleanup"); }
}
console.log(g());
`, "cleanup", "try", "g-cleanup", "caught")
}
