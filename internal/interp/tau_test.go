package interp

import (
	"strings"
	"testing"

	"turnstile/internal/parser"
	"turnstile/internal/policy"
)

// Tests for the τ host object's edge cases: missing arguments, wrong
// types, unknown labellers — the kinds of calls only malformed
// instrumentation would make, which must degrade gracefully.

func tauInterp(t *testing.T) *Interp {
	t.Helper()
	ip := New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "L": "v => \"a\"" },
	  "rules": [ "a -> b" ]
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = true
	return ip
}

func runIn(t *testing.T, ip *Interp, src string) error {
	t.Helper()
	prog, err := parser.Parse("tau.js", src)
	if err != nil {
		t.Fatal(err)
	}
	return ip.Run(prog)
}

func TestTauDegenerateCalls(t *testing.T) {
	ip := tauInterp(t)
	err := runIn(t, ip, `
console.log(__t.label("x"));
console.log(__t.binaryOp("+"));
console.log(__t.derive());
console.log(__t.check("only-data"));
console.log(__t.invoke({}, "m"));
console.log(__t.call(1));
console.log(__t.track());
console.log(__t.unwrap());
console.log(__t.pc());
console.log(__t.assign());
`)
	if err != nil {
		t.Fatalf("degenerate τ calls must not crash: %v", err)
	}
}

func TestTauUnknownLabeller(t *testing.T) {
	ip := tauInterp(t)
	err := runIn(t, ip, `__t.label("x", "NoSuchLabeller");`)
	if err == nil || !strings.Contains(err.Error(), "NoSuchLabeller") {
		t.Fatalf("err = %v", err)
	}
}

func TestTauInvokeBadArgs(t *testing.T) {
	ip := tauInterp(t)
	if err := runIn(t, ip, `__t.invoke({ m: function() {} }, "m", "not-an-array");`); err == nil {
		t.Fatal("expected TypeError for non-array args")
	}
	if err := runIn(t, ip, `__t.call(function() {}, 42);`); err == nil {
		t.Fatal("expected TypeError for non-array args")
	}
}

func TestTauCheckBlocksDirectly(t *testing.T) {
	ip := tauInterp(t)
	err := runIn(t, ip, `
const data = __t.label("payload", "L");
const recv = __t.label({}, "RecvB");
__t.check(data, recv, "manual-site");
`)
	// RecvB is unknown → error surfaces from the labeller lookup
	if err == nil {
		t.Fatal("unknown labeller should fail")
	}
}

func TestTauCheckWithLabelledReceiver(t *testing.T) {
	ip := New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "Hi": "v => \"hi\"", "Lo": "v => \"lo\"" },
	  "rules": [ "lo -> hi" ]
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = true
	// hi data into lo receiver: forbidden
	err = runIn(t, ip, `
const data = __t.label("secret", "Hi");
const recv = __t.label({}, "Lo");
__t.check(data, recv, "site-x");
`)
	if err == nil || !strings.Contains(err.Error(), "site-x") {
		t.Fatalf("err = %v", err)
	}
	// lo data into hi receiver: fine
	if err := runIn(t, ip, `
const d2 = __t.label("open", "Lo");
const r2 = __t.label({}, "Hi");
__t.check(d2, r2, "site-y");
`); err != nil {
		t.Fatalf("allowed flow blocked: %v", err)
	}
}

func TestTauMemberTrap(t *testing.T) {
	ip := tauInterp(t)
	if err := runIn(t, ip, `
const o = __t.label({ inner: "v" }, "L");
const got = __t.member(o, "inner");
console.log(got);
`); err != nil {
		t.Fatal(err)
	}
	if ip.ConsoleOut[0] != "v" {
		t.Fatalf("out = %v", ip.ConsoleOut)
	}
	// the read value inherits the container's label
	v, _ := ip.Globals.Lookup("got")
	if !ip.Tracker.LabelsOf(v).Contains("a") {
		t.Fatal("member trap lost the container label")
	}
}

func TestLabelFunctionThrowSurfaces(t *testing.T) {
	ip := New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "Boom": "v => { throw new Error(\"labeller failed\"); }" },
	  "rules": []
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	ip.InstallTracker(pol)
	err = runIn(t, ip, `__t.label("x", "Boom");`)
	if err == nil || !strings.Contains(err.Error(), "labeller failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestAdapterDirect(t *testing.T) {
	var a Adapter
	o := NewObject()
	o.Set("k", "v")
	if got, ok := a.Property(o, "k"); !ok || got != "v" {
		t.Fatal("Property")
	}
	if !a.SetProperty(o, "k2", 1.0) {
		t.Fatal("SetProperty")
	}
	if a.SetProperty("str", "k", 1.0) {
		t.Fatal("SetProperty on primitive should fail")
	}
	arr := NewArray("a", "b")
	if elems, ok := a.Elements(arr); !ok || len(elems) != 2 {
		t.Fatal("Elements")
	}
	if !a.SetElement(arr, 1, "c") || arr.Elems[1] != "c" {
		t.Fatal("SetElement")
	}
	if a.SetElement(arr, 9, "z") {
		t.Fatal("SetElement out of range should fail")
	}
	if !a.IsReference(o) || !a.IsReference(arr) || a.IsReference(1.0) || a.IsReference("s") {
		t.Fatal("IsReference")
	}
}
