package interp

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/dift"
	"turnstile/internal/vm"
)

// This file is the bytecode executor: a flat dispatch loop over
// vm.Chunk instructions. Every opcode is a transcription of the
// corresponding tree-walker case and either calls the same helpers
// (defineVar, icRead/icMethod, GetMember, SetMember, CallFunction,
// CallMethod, BinaryOp, eval, execStmt) or inlines their exact bodies
// (ident slot read/write), so the two engines share semantics, charge
// accounting and RefID allocation order by construction. The win is
// structural: no recursive eval dispatch, no per-node interface switch,
// variables via (depth, slot) environments, tracker calls fused into one
// opcode, and an unboxed float lane for arithmetic temporaries.

// RegisterCode makes a compiled module's function chunks available for
// closure creation and call dispatch on this interpreter.
func (ip *Interp) RegisterCode(prog *ast.Program, mod *vm.Module) {
	if mod == nil {
		return
	}
	if ip.progMods == nil {
		ip.progMods = make(map[*ast.Program]*vm.Module)
		ip.funcCode = make(map[*ast.FuncLit]*vm.Chunk)
	}
	ip.progMods[prog] = mod
	for fl, ch := range mod.Funcs {
		ip.funcCode[fl] = ch
	}
}

// moduleFor returns the compiled module for a program, compiling on
// demand. It returns nil — sending the caller down the tree-walking path
// — when the VM is disabled or resolver fast paths are off (the VM
// requires resolved coordinates to be worthwhile; -noresolve is the
// map-walk oracle).
func (ip *Interp) moduleFor(prog *ast.Program) *vm.Module {
	if ip.NoVM || ip.NoResolve {
		return nil
	}
	if m, ok := ip.progMods[prog]; ok {
		return m
	}
	m := vm.Compile(prog)
	ip.RegisterCode(prog, m)
	return m
}

// codeFor looks up the compiled chunk for a function literal (nil when
// the VM is off or the literal was never compiled).
func (ip *Interp) codeFor(decl *ast.FuncLit) *vm.Chunk {
	if ip.NoVM || ip.funcCode == nil || decl == nil {
		return nil
	}
	return ip.funcCode[decl]
}

// withCode attaches the compiled chunk to a freshly created closure so
// calls dispatch straight into the VM without a map lookup.
func (ip *Interp) withCode(fn *Function) *Function {
	if !ip.NoVM && fn.Code == nil && fn.Decl != nil && ip.funcCode != nil {
		fn.Code = ip.funcCode[fn.Decl]
	}
	return fn
}

func popEnvs(env *Env, n int32) *Env {
	for ; n > 0; n-- {
		env = env.parent
	}
	return env
}

// vmFrame is one chunk invocation's register file. regs is the boxed
// lane; fregs/ftag form the unboxed float lane: when ftag[i] is set, the
// live value of register i is fregs[i] and regs[i] is stale. Arithmetic
// opcodes keep intermediate numbers in the float lane; any opcode that
// needs a Value materializes through rval, which is where the one
// unavoidable interface boxing per externally-visible number happens —
// the same count the tree-walker pays at its store sites.
type vmFrame struct {
	regs  []Value
	fregs []float64
	ftag  []bool
}

// getFrame pops a pooled register file (or grows one) sized for n
// registers, cleared exactly like a fresh make.
func (ip *Interp) getFrame(n int) *vmFrame {
	var f *vmFrame
	if k := len(ip.framePool); k > 0 {
		f = ip.framePool[k-1]
		ip.framePool = ip.framePool[:k-1]
	} else {
		f = &vmFrame{}
	}
	if n > cap(f.regs) {
		f.regs = make([]Value, n)
		f.fregs = make([]float64, n)
		f.ftag = make([]bool, n)
		return f
	}
	f.regs = f.regs[:n]
	f.fregs = f.fregs[:n]
	f.ftag = f.ftag[:n]
	for i := range f.regs {
		f.regs[i] = nil
	}
	for i := range f.ftag {
		f.ftag[i] = false
	}
	return f
}

func (ip *Interp) putFrame(f *vmFrame) {
	if len(ip.framePool) < 64 {
		ip.framePool = append(ip.framePool, f)
	}
}

// getCallEnv pops a pooled call environment re-initialized for scope
// (non-nil, slot-resolved), behaving exactly like NewScopeEnv: all slots
// unbound, no maps, no const tracking. Only invoked for chunks whose
// compiled body cannot capture the environment (vm.Chunk.NoCapture), so
// recycling after the call is sound.
func (ip *Interp) getCallEnv(parent *Env, scope *ast.ScopeInfo) *Env {
	k := len(ip.envPool)
	if k == 0 {
		return NewScopeEnv(parent, scope)
	}
	e := ip.envPool[k-1]
	ip.envPool = ip.envPool[:k-1]
	n := scope.NumSlots()
	if n > cap(e.slots) {
		e.slots = make([]Value, n)
	} else {
		e.slots = e.slots[:n]
	}
	for i := range e.slots {
		e.slots[i] = unboundSlot{}
	}
	e.parent, e.scope = parent, scope
	e.slotConsts, e.vars, e.consts = nil, nil, nil
	return e
}

// putCallEnv clears slot references and returns the environment to the
// pool.
func (ip *Interp) putCallEnv(e *Env) {
	for i := range e.slots {
		e.slots[i] = nil
	}
	e.parent, e.scope = nil, nil
	e.slotConsts, e.vars, e.consts = nil, nil, nil
	if len(ip.envPool) < 64 {
		ip.envPool = append(ip.envPool, e)
	}
}

// vmArgs materializes the packed argument window like callArgs, but may
// reuse a pooled slice when the caller guarantees the callee cannot
// retain it (a compiled MiniJS body that never materializes `arguments`;
// rest parameters always copy). Pool slices carry spare capacity so the
// common 0–8 arity range recycles cleanly.
func (ip *Interp) vmArgs(regs []Value, fregs []float64, ftag []bool, packed int32, pooled bool) []Value {
	argc := int(packed & 0xffff)
	if argc == 0 {
		return nil
	}
	base := int(packed >> 16)
	var args []Value
	if pooled {
		if k := len(ip.argPool); k > 0 && cap(ip.argPool[k-1]) >= argc {
			args = ip.argPool[k-1][:argc]
			ip.argPool = ip.argPool[:k-1]
		}
	}
	if args == nil {
		c := argc
		if pooled && c < 8 {
			c = 8
		}
		args = make([]Value, argc, c)
	}
	for i := 0; i < argc; i++ {
		if ftag[base+i] {
			args[i] = fregs[base+i]
		} else {
			args[i] = regs[base+i]
		}
	}
	return args
}

// putArgs clears and returns an argument slice obtained from vmArgs with
// pooled=true.
func (ip *Interp) putArgs(args []Value) {
	if args == nil {
		return
	}
	for i := range args {
		args[i] = nil
	}
	if len(ip.argPool) < 64 {
		ip.argPool = append(ip.argPool, args)
	}
}

// smallFloats interns the boxed form of small non-negative integral
// numbers. The float lane gives the VM a single materialization point per
// externally-visible number, which makes interning effective: loop
// counters and small arithmetic results stop allocating. Negative zero is
// excluded (smallFloats[0] is +0, and -0 must keep its sign bit for
// division).
var smallFloats [1024]Value

func init() {
	for i := range smallFloats {
		smallFloats[i] = float64(i)
	}
}

// boxFloat converts a float-lane number to a Value, reusing an interned
// box for small non-negative integers.
func boxFloat(f float64) Value {
	i := int64(f)
	if i >= 0 && i < int64(len(smallFloats)) && float64(i) == f && !math.Signbit(f) {
		return smallFloats[i]
	}
	return f
}

// rval materializes register i as a Value (boxing a float-lane number).
func rval(regs []Value, fregs []float64, ftag []bool, i int32) Value {
	if ftag[i] {
		return boxFloat(fregs[i])
	}
	return regs[i]
}

// trackerCall dispatches a fused `__t.method(...)` call site. The fast
// path is valid while the tracker object installed by InstallTracker is
// still the unshadowed `__t` binding (no dynamic rebinding anywhere, no
// property writes on τ itself since install); otherwise it falls back to
// the exact tree-walker sequence: ident lookup, IC method dispatch,
// CallMethod.
func (ip *Interp) trackerCall(site *vm.CallSite, env *Env, args []Value) (Value, error) {
	pos := site.Node.Pos()
	if ip.tauObj != nil && !ip.tauRebound && ip.tauObj.version == ip.tauVer {
		if fn, ok := ip.tauMethods[site.Name]; ok {
			return ip.CallFunction(fn, ip.tauObj, args, pos)
		}
	}
	mem := site.Mem
	id := mem.Object.(*ast.Ident)
	recv, ok := ip.lookupIdent(env, id.Name, id.Ref)
	if !ok {
		return nil, &RuntimeError{Msg: fmt.Sprintf("%q is not defined", id.Name), Pos: id.Pos()}
	}
	if o, isObj := dift.Unwrap(recv).(*Object); isObj {
		if fn, hit := ip.icMethod(mem, o, site.Name); hit {
			return ip.CallFunction(fn, o, args, pos)
		}
	}
	return ip.CallMethod(recv, site.Name, args, pos)
}

// runChunk executes one compiled chunk in env. Completions mirror
// execStmts: (ctrlNormal, undef, nil) off the end, ctrlReturn/Break/
// Continue from the corresponding opcodes, errors (including *Throw and
// budget trips) propagated unwound.
func (ip *Interp) runChunk(ch *vm.Chunk, env *Env) (ctrlKind, Value, error) {
	fr := ip.getFrame(ch.NumRegs)
	c, v, err := ip.runFrame(ch, env, fr)
	ip.putFrame(fr)
	return c, v, err
}

func (ip *Interp) runFrame(ch *vm.Chunk, env *Env, fr *vmFrame) (ctrlKind, Value, error) {
	regs, fregs, ftag := fr.regs, fr.fregs, fr.ftag
	code := ch.Code
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		if in.CN > 0 {
			// pre-charges: the step charges the tree-walker would have made
			// at the entries of the nodes this instruction fuses, in order.
			// Far from the budget ceiling and unguarded, the whole batch is
			// one add; otherwise fall back to per-position step so the trip
			// surfaces at the exact node the tree-walker would report.
			if ip.Guard == nil && ip.steps+int64(in.CN) <= ip.MaxSteps {
				ip.steps += int64(in.CN)
			} else {
				for _, p := range ch.Charges[in.CIdx : in.CIdx+in.CN] {
					if err := ip.step(p); err != nil {
						return ctrlNormal, nil, err
					}
				}
			}
		}
		switch in.Op {
		case vm.OpNop:
		case vm.OpConst:
			// number literals land in the pointer-free float lane: no
			// interface write, no write barrier
			if f, isF := ch.Consts[in.B].(float64); isF {
				fregs[in.A], ftag[in.A] = f, true
			} else {
				regs[in.A], ftag[in.A] = ch.Consts[in.B], false
			}
		case vm.OpUndefV:
			regs[in.A], ftag[in.A] = undef, false
		case vm.OpNullV:
			regs[in.A], ftag[in.A] = null, false
		case vm.OpMove:
			regs[in.A], fregs[in.A], ftag[in.A] = regs[in.B], fregs[in.B], ftag[in.B]
		case vm.OpIdent:
			// inlined lookupIdent: slot fast path, dynamic walk fallback
			id := ch.Consts[in.B].(*ast.Ident)
			if ref := id.Ref; ref != nil {
				cur := env
				for d := 0; d < ref.Depth && cur != nil; d++ {
					cur = cur.parent
				}
				if cur != nil && ref.Slot >= 0 && ref.Slot < len(cur.slots) {
					v := cur.slots[ref.Slot]
					if _, ub := v.(unboundSlot); !ub {
						ip.envSlotReads++
						// floats go to the pointer-free lane: downstream
						// arithmetic skips the assert and the register
						// write needs no barrier
						if f, isF := v.(float64); isF {
							fregs[in.A], ftag[in.A] = f, true
						} else {
							regs[in.A], ftag[in.A] = v, false
						}
						continue
					}
				}
			}
			ip.envDynReads++
			// dynamic-global cache: unresolved identifiers are mostly
			// top-level functions and vars living in the Globals map (the
			// program scope is deliberately dynamic); see identIC
			if nid := id.NodeID(); nid >= 0 && nid < len(ip.identICs) {
				e := &ip.identICs[nid]
				if e.node == id && e.epoch == ip.icEpoch && e.dyn == envMapDefines.Load() {
					if v, ok := ip.Globals.vars[id.Name]; ok {
						regs[in.A], ftag[in.A] = v, false
						continue
					}
				}
				v, owner, ok := env.lookupOwner(id.Name)
				if !ok {
					return ctrlNormal, nil, &RuntimeError{Msg: fmt.Sprintf("%q is not defined", id.Name), Pos: id.Pos()}
				}
				if owner == ip.Globals {
					*e = identIC{node: id, epoch: ip.icEpoch, dyn: envMapDefines.Load()}
				}
				regs[in.A], ftag[in.A] = v, false
				continue
			}
			v, ok := env.Lookup(id.Name)
			if !ok {
				return ctrlNormal, nil, &RuntimeError{Msg: fmt.Sprintf("%q is not defined", id.Name), Pos: id.Pos()}
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpThis:
			t := ch.Consts[in.B].(*ast.ThisExpr)
			if v, ok := ip.lookupIdent(env, "this", t.Ref); ok {
				regs[in.A] = v
			} else {
				regs[in.A] = undef
			}
			ftag[in.A] = false
		case vm.OpDefine:
			site := ch.Consts[in.B].(*vm.DefineSite)
			ip.defineVar(env, site.Name, site.Ref, rval(regs, fregs, ftag, in.A), site.Const)
		case vm.OpStoreIdent:
			// inlined assignIdent: slot fast path, dynamic walk fallback,
			// implicit-global definition, __t rebind latch
			id := ch.Consts[in.B].(*ast.Ident)
			v := rval(regs, fregs, ftag, in.A)
			if id.Name == "__t" {
				ip.tauRebound = true
			}
			if ref := id.Ref; ref != nil {
				cur := env
				for d := 0; d < ref.Depth && cur != nil; d++ {
					cur = cur.parent
				}
				if cur != nil && ref.Slot >= 0 && ref.Slot < len(cur.slots) {
					if _, ub := cur.slots[ref.Slot].(unboundSlot); !ub {
						if cur.slotConsts != nil && cur.slotConsts[ref.Slot] {
							return ctrlNormal, nil, &RuntimeError{
								Msg: fmt.Sprintf("assignment to constant variable %q", cur.scope.Names[ref.Slot]),
								Pos: id.Pos(),
							}
						}
						cur.slots[ref.Slot] = v
						ip.envSlotWrites++
						continue
					}
				}
			}
			ip.envDynWrites++
			if err := env.Assign(id.Name, v); err != nil {
				if errors.Is(err, ErrNotDefined) {
					env.Global().Define(id.Name, v, false)
				} else {
					return ctrlNormal, nil, &RuntimeError{Msg: err.Error(), Pos: id.Pos()}
				}
			}
		case vm.OpIncDec:
			x := ch.Consts[in.B].(*ast.UpdateExpr)
			id := x.X.(*ast.Ident)
			var old Value = undef
			if v, ok := ip.lookupIdent(env, id.Name, id.Ref); ok {
				old = v
			}
			n := ToNumber(old)
			next := n + 1
			if x.Op == "--" {
				next = n - 1
			}
			if err := ip.assignIdent(env, id.Name, id.Ref, next); err != nil {
				return ctrlNormal, nil, &RuntimeError{Msg: err.Error(), Pos: id.Pos()}
			}
			if x.Prefix {
				fregs[in.A], ftag[in.A] = next, true
			} else {
				fregs[in.A], ftag[in.A] = n, true
			}
		case vm.OpJump:
			pc = int(in.A) - 1
		case vm.OpJumpUnless:
			var t bool
			if ftag[in.A] {
				f := fregs[in.A]
				t = f == f && f != 0
			} else if b, ok := regs[in.A].(bool); ok {
				t = b
			} else {
				t = Truthy(regs[in.A])
			}
			if !t {
				pc = int(in.B) - 1
			}
		case vm.OpJumpIf:
			var t bool
			if ftag[in.A] {
				f := fregs[in.A]
				t = f == f && f != 0
			} else if b, ok := regs[in.A].(bool); ok {
				t = b
			} else {
				t = Truthy(regs[in.A])
			}
			if t {
				pc = int(in.B) - 1
			}
		case vm.OpJumpNotNull:
			if ftag[in.A] || !IsNullish(dift.Unwrap(regs[in.A])) {
				pc = int(in.B) - 1
			}
		case vm.OpAdd:
			var lf, rf float64
			var lok, rok bool
			if ftag[in.B] {
				lf, lok = fregs[in.B], true
			} else {
				lf, lok = regs[in.B].(float64)
			}
			if ftag[in.C] {
				rf, rok = fregs[in.C], true
			} else {
				rf, rok = regs[in.C].(float64)
			}
			if lok && rok {
				fregs[in.A], ftag[in.A] = lf+rf, true
				continue
			}
			node := ch.Consts[in.D].(*ast.BinaryExpr)
			v, err := ip.BinaryOp(node.Op, rval(regs, fregs, ftag, in.B), rval(regs, fregs, ftag, in.C), node.Pos())
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod:
			var lf, rf float64
			var lok, rok bool
			if ftag[in.B] {
				lf, lok = fregs[in.B], true
			} else {
				lf, lok = regs[in.B].(float64)
			}
			if ftag[in.C] {
				rf, rok = fregs[in.C], true
			} else {
				rf, rok = regs[in.C].(float64)
			}
			// a register that misses both lanes coerces exactly like the
			// BinaryOp arithmetic cases: ToNumber of the unwrapped value
			if !lok {
				lf = ToNumber(dift.Unwrap(regs[in.B]))
			}
			if !rok {
				rf = ToNumber(dift.Unwrap(regs[in.C]))
			}
			switch in.Op {
			case vm.OpSub:
				fregs[in.A] = lf - rf
			case vm.OpMul:
				fregs[in.A] = lf * rf
			case vm.OpDiv:
				fregs[in.A] = lf / rf
			default:
				// integral operands take the integer remainder, which
				// agrees with math.Mod (truncated division, sign of the
				// dividend) at a fraction of the cost; -0 dividends keep
				// math.Mod so the result preserves the sign bit
				li, ri := int64(lf), int64(rf)
				if ri != 0 && float64(li) == lf && float64(ri) == rf && !(lf == 0 && math.Signbit(lf)) {
					fregs[in.A] = float64(li % ri)
				} else {
					fregs[in.A] = math.Mod(lf, rf)
				}
			}
			ftag[in.A] = true
		case vm.OpCmpLt, vm.OpCmpGt, vm.OpCmpLe, vm.OpCmpGe:
			var lf, rf float64
			var lok, rok bool
			if ftag[in.B] {
				lf, lok = fregs[in.B], true
			} else {
				lf, lok = regs[in.B].(float64)
			}
			if ftag[in.C] {
				rf, rok = fregs[in.C], true
			} else {
				rf, rok = regs[in.C].(float64)
			}
			if lok && rok {
				switch in.Op {
				case vm.OpCmpLt:
					regs[in.A] = lf < rf
				case vm.OpCmpGt:
					regs[in.A] = lf > rf
				case vm.OpCmpLe:
					regs[in.A] = lf <= rf
				default:
					regs[in.A] = lf >= rf
				}
				ftag[in.A] = false
				continue
			}
			node := ch.Consts[in.D].(*ast.BinaryExpr)
			v, err := ip.BinaryOp(node.Op, rval(regs, fregs, ftag, in.B), rval(regs, fregs, ftag, in.C), node.Pos())
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpStrictEq, vm.OpStrictNeq:
			var eq bool
			if ftag[in.B] && ftag[in.C] {
				eq = fregs[in.B] == fregs[in.C]
			} else if ftag[in.B] {
				f, ok := dift.Unwrap(regs[in.C]).(float64)
				eq = ok && fregs[in.B] == f
			} else if ftag[in.C] {
				f, ok := dift.Unwrap(regs[in.B]).(float64)
				eq = ok && fregs[in.C] == f
			} else {
				eq = StrictEquals(regs[in.B], regs[in.C])
			}
			if in.Op == vm.OpStrictNeq {
				eq = !eq
			}
			regs[in.A], ftag[in.A] = eq, false
		case vm.OpBinOp:
			node := ch.Consts[in.D].(*ast.BinaryExpr)
			v, err := ip.BinaryOp(node.Op, rval(regs, fregs, ftag, in.B), rval(regs, fregs, ftag, in.C), node.Pos())
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpNot:
			if ftag[in.B] {
				f := fregs[in.B]
				regs[in.A] = !(f == f && f != 0)
			} else {
				regs[in.A] = !Truthy(regs[in.B])
			}
			ftag[in.A] = false
		case vm.OpNeg:
			var f float64
			if ftag[in.B] {
				f = fregs[in.B]
			} else {
				f = ToNumber(regs[in.B])
			}
			fregs[in.A], ftag[in.A] = -f, true
		case vm.OpToNum:
			if ftag[in.B] {
				fregs[in.A] = fregs[in.B]
			} else {
				fregs[in.A] = ToNumber(regs[in.B])
			}
			ftag[in.A] = true
		case vm.OpBitNot:
			var f float64
			if ftag[in.B] {
				f = fregs[in.B]
			} else {
				f = ToNumber(regs[in.B])
			}
			fregs[in.A], ftag[in.A] = float64(^int64(f)), true
		case vm.OpAwait:
			regs[in.A], ftag[in.A] = ip.ResolvePromise(rval(regs, fregs, ftag, in.B)), false
		case vm.OpTemplate:
			x := ch.Consts[in.D].(*ast.TemplateLit)
			var b strings.Builder
			base := int(in.B)
			for i, q := range x.Quasis {
				b.WriteString(q)
				if i < len(x.Exprs) {
					b.WriteString(ToString(rval(regs, fregs, ftag, int32(base+i))))
				}
			}
			if err := ip.alloc(int64(b.Len()), x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = b.String(), false
		case vm.OpArray:
			x := ch.Consts[in.D].(*ast.ArrayLit)
			n := int(in.C)
			var elems []Value
			if n > 0 {
				elems = make([]Value, n)
				for i := 0; i < n; i++ {
					elems[i] = rval(regs, fregs, ftag, in.B+int32(i))
				}
			}
			if err := ip.alloc(int64(n)+1, x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = NewArray(elems...), false
		case vm.OpNewObject:
			x := ch.Consts[in.B].(*ast.ObjectLit)
			if err := ip.alloc(int64(len(x.Props))+1, x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = NewObject(), false
		case vm.OpSetProp:
			regs[in.A].(*Object).Set(ch.Consts[in.C].(string), rval(regs, fregs, ftag, in.B))
		case vm.OpClosure:
			p := ch.Consts[in.B].(*vm.FuncProto)
			fn := NewFunction(p.Name, p.Decl, env)
			fn.Code = p.Chunk
			regs[in.A], ftag[in.A] = fn, false
		case vm.OpHoist:
			p := ch.Consts[in.B].(*vm.FuncProto)
			fn := NewFunction(p.Name, p.Decl, env)
			fn.Code = p.Chunk
			ip.defineVar(env, p.Name, p.Ref, fn, false)
		case vm.OpMemberGet:
			x := ch.Consts[in.C].(*ast.MemberExpr)
			obj := rval(regs, fregs, ftag, in.B)
			if o, isObj := dift.Unwrap(obj).(*Object); isObj {
				if v, hit := ip.icRead(x, o, x.Property); hit {
					regs[in.A], ftag[in.A] = v, false
					continue
				}
			}
			v, err := ip.GetMember(obj, x.Property, x.Pos())
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpMemberGetC:
			x := ch.Consts[in.D].(*ast.MemberExpr)
			v, err := ip.GetMember(rval(regs, fregs, ftag, in.B), ToString(rval(regs, fregs, ftag, in.C)), x.Pos())
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpMemberSet:
			x := ch.Consts[in.C].(*ast.MemberExpr)
			if err := ip.SetMember(rval(regs, fregs, ftag, in.B), x.Property, rval(regs, fregs, ftag, in.A), x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
		case vm.OpMemberSetC:
			x := ch.Consts[in.D].(*ast.MemberExpr)
			if err := ip.SetMember(rval(regs, fregs, ftag, in.B), ToString(rval(regs, fregs, ftag, in.C)), rval(regs, fregs, ftag, in.A), x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
		case vm.OpCall:
			site := ch.Consts[in.D].(*vm.CallSite)
			fnv := rval(regs, fregs, ftag, in.B)
			var v Value
			var err error
			// direct fast path for plain MiniJS functions: skip the
			// CallFunction dispatch and pool the argument slice when the
			// callee's compiled body provably cannot retain it
			if f, ok := dift.Unwrap(fnv).(*Function); ok && !f.IsClass {
				this := Value(undef)
				if f.This != nil {
					this = f.This
				}
				pooledArgs := f.Code != nil && !ip.NoVM && !f.Code.NeedsArguments
				args := ip.vmArgs(regs, fregs, ftag, in.C, pooledArgs)
				v, err = ip.invokeFunc(f.Decl, f.Code, f.Env, this, args, site.Node.Pos())
				if pooledArgs {
					ip.putArgs(args)
				}
			} else {
				v, err = ip.CallFunction(fnv, undef, callArgs(regs, fregs, ftag, in.C), site.Node.Pos())
			}
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpCallMethod:
			site := ch.Consts[in.D].(*vm.CallSite)
			recv := rval(regs, fregs, ftag, in.B)
			var v Value
			var err error
			dispatched := false
			if o, isObj := dift.Unwrap(recv).(*Object); isObj {
				if fnv, hit := ip.icMethod(site.Mem, o, site.Name); hit {
					if f, ok := dift.Unwrap(fnv).(*Function); ok && !f.IsClass {
						this := Value(o)
						if f.This != nil {
							this = f.This
						}
						pooledArgs := f.Code != nil && !ip.NoVM && !f.Code.NeedsArguments
						args := ip.vmArgs(regs, fregs, ftag, in.C, pooledArgs)
						v, err = ip.invokeFunc(f.Decl, f.Code, f.Env, this, args, site.Node.Pos())
						if pooledArgs {
							ip.putArgs(args)
						}
					} else {
						v, err = ip.CallFunction(fnv, o, callArgs(regs, fregs, ftag, in.C), site.Node.Pos())
					}
					dispatched = true
				}
			}
			if !dispatched {
				v, err = ip.CallMethod(recv, site.Name, callArgs(regs, fregs, ftag, in.C), site.Node.Pos())
			}
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpCallMethodC:
			site := ch.Consts[in.D].(*vm.CallSite)
			args := callArgs(regs, fregs, ftag, in.C)
			name := ToString(rval(regs, fregs, ftag, in.B+1))
			v, err := ip.CallMethod(rval(regs, fregs, ftag, in.B), name, args, site.Node.Pos())
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpTrackerCall:
			site := ch.Consts[in.D].(*vm.CallSite)
			v, err := ip.trackerCall(site, env, callArgs(regs, fregs, ftag, in.C))
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpEvalExpr:
			v, err := ip.eval(ch.Consts[in.B].(ast.Expr), env)
			if err != nil {
				return ctrlNormal, nil, err
			}
			regs[in.A], ftag[in.A] = v, false
		case vm.OpExecStmt:
			c, v, err := ip.execStmt(ch.Consts[in.A].(ast.Stmt), env)
			if err != nil {
				return ctrlNormal, nil, err
			}
			switch c {
			case ctrlNormal:
			case ctrlReturn:
				return ctrlReturn, v, nil
			case ctrlBreak:
				if in.B < 0 {
					return ctrlBreak, v, nil
				}
				e := ch.Edges[in.B]
				env = popEnvs(env, e.PopN)
				pc = int(e.PC) - 1
			case ctrlContinue:
				if in.C < 0 {
					return ctrlContinue, v, nil
				}
				e := ch.Edges[in.C]
				env = popEnvs(env, e.PopN)
				pc = int(e.PC) - 1
			}
		case vm.OpTry:
			ti := ch.Consts[in.A].(*vm.TryInfo)
			x := ti.Node
			c, v, err := ip.runChunk(ti.Body, newEnvFor(env, x.Body.Scope))
			if err != nil {
				if th, ok := err.(*Throw); ok && x.Catch != nil {
					catchEnv := newEnvFor(env, x.Catch.Scope)
					if x.CatchVar != "" {
						ip.defineVar(catchEnv, x.CatchVar, x.CatchRef, th.Val, false)
					}
					c, v, err = ip.runChunk(ti.Catch, catchEnv)
				}
			}
			if x.Finally != nil {
				fc, fv, ferr := ip.runChunk(ti.Finally, newEnvFor(env, x.Finally.Scope))
				if ferr != nil {
					return ctrlNormal, nil, ferr
				}
				if fc != ctrlNormal {
					c, v, err = fc, fv, nil
				}
			}
			if err != nil {
				return ctrlNormal, nil, err
			}
			switch c {
			case ctrlNormal:
			case ctrlReturn:
				return ctrlReturn, v, nil
			case ctrlBreak:
				if in.B < 0 {
					return ctrlBreak, v, nil
				}
				e := ch.Edges[in.B]
				env = popEnvs(env, e.PopN)
				pc = int(e.PC) - 1
			case ctrlContinue:
				if in.C < 0 {
					return ctrlContinue, v, nil
				}
				e := ch.Edges[in.C]
				env = popEnvs(env, e.PopN)
				pc = int(e.PC) - 1
			}
		case vm.OpPushScope:
			env = newEnvFor(env, ch.Scopes[in.B])
		case vm.OpPopScope:
			env = env.parent
		case vm.OpPopN:
			env = popEnvs(env, in.A)
		case vm.OpIterCopy:
			env = env.IterCopy()
		case vm.OpRet:
			return ctrlReturn, rval(regs, fregs, ftag, in.A), nil
		case vm.OpRetUndef:
			return ctrlReturn, undef, nil
		case vm.OpCtrl:
			if in.A == 1 {
				return ctrlBreak, undef, nil
			}
			return ctrlContinue, undef, nil
		case vm.OpThrow:
			return ctrlNormal, nil, &Throw{Val: rval(regs, fregs, ftag, in.A)}
		default:
			return ctrlNormal, nil, &RuntimeError{Msg: fmt.Sprintf("unknown opcode %d", in.Op)}
		}
	}
	return ctrlNormal, undef, nil
}

// callArgs copies the packed argument window (base<<16|argc) out of the
// register file, materializing float-lane values. Arguments must be
// copied, not aliased: the callee's `arguments` array may outlive this
// frame's registers.
func callArgs(regs []Value, fregs []float64, ftag []bool, packed int32) []Value {
	argc := int(packed & 0xffff)
	if argc == 0 {
		return nil
	}
	base := int(packed >> 16)
	args := make([]Value, argc)
	for i := 0; i < argc; i++ {
		if ftag[base+i] {
			args[i] = fregs[base+i]
		} else {
			args[i] = regs[base+i]
		}
	}
	return args
}
