package interp

import (
	"strings"
	"testing"
	"testing/quick"

	"turnstile/internal/parser"
)

// run executes src in a fresh interpreter and returns it.
func run(t *testing.T, src string) *Interp {
	t.Helper()
	ip := New()
	prog, err := parser.Parse("test.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ip.Run(prog); err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return ip
}

// logs runs src and returns console output lines.
func logs(t *testing.T, src string) []string {
	t.Helper()
	return run(t, src).ConsoleOut
}

func wantLogs(t *testing.T, src string, want ...string) {
	t.Helper()
	got := logs(t, src)
	if len(got) != len(want) {
		t.Fatalf("log lines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestArithmeticAndStrings(t *testing.T) {
	wantLogs(t, `
console.log(1 + 2 * 3);
console.log("a" + "b" + 1);
console.log(10 / 4);
console.log(7 % 3);
console.log(2 ** 10);
console.log("x" + undefined);
console.log(5 + null);
`, "7", "ab1", "2.5", "1", "1024", "xundefined", "5")
}

func TestComparisonsAndLogic(t *testing.T) {
	wantLogs(t, `
console.log(1 < 2, 2 <= 2, 3 > 4, "a" < "b");
console.log(1 == "1", 1 === "1", null == undefined, null === undefined);
console.log(true && "yes", false || "fallback", null ?? "default");
`, "true true false true", "true false true false", "yes fallback default")
}

func TestVarScopingAndClosures(t *testing.T) {
	wantLogs(t, `
function counter() {
  let n = 0;
  return () => { n = n + 1; return n; };
}
const c1 = counter();
const c2 = counter();
console.log(c1(), c1(), c1(), c2());
`, "1 2 3 1")
}

func TestHigherOrderClosure(t *testing.T) {
	// the paper's §4.5 example: x => (y => x + y)
	wantLogs(t, `
const add = x => (y => x + y);
const add5 = add(5);
console.log(add5(3), add(1)(2));
`, "8 3")
}

func TestControlFlow(t *testing.T) {
	wantLogs(t, `
let total = 0;
for (let i = 0; i < 10; i++) {
  if (i % 2 === 0) continue;
  if (i > 7) break;
  total += i;
}
console.log(total);
let n = 0;
while (n < 5) { n++; }
do { n++; } while (n < 3);
console.log(n);
`, "16", "6")
}

func TestForInForOf(t *testing.T) {
	wantLogs(t, `
const obj = { a: 1, b: 2, c: 3 };
let keys = "";
for (const k in obj) keys += k;
console.log(keys);
let sum = 0;
for (const v of [10, 20, 30]) sum += v;
console.log(sum);
let chars = "";
for (const ch of "abc") chars += ch + ".";
console.log(chars);
`, "abc", "60", "a.b.c.")
}

func TestSwitch(t *testing.T) {
	wantLogs(t, `
function cls(x) {
  switch (x) {
    case 1: return "one";
    case 2:
    case 3: return "few";
    default: return "many";
  }
}
console.log(cls(1), cls(2), cls(3), cls(9));
let log = "";
switch (2) {
  case 1: log += "a";
  case 2: log += "b";
  case 3: log += "c"; break;
  case 4: log += "d";
}
console.log(log);
`, "one few few many", "bc")
}

func TestExceptions(t *testing.T) {
	wantLogs(t, `
function risky(x) {
  if (x < 0) throw new Error("negative: " + x);
  return x * 2;
}
try {
  console.log(risky(5));
  console.log(risky(-1));
  console.log("unreached");
} catch (e) {
  console.log("caught", e.message);
} finally {
  console.log("finally");
}
`, "10", "caught negative: -1", "finally")
}

func TestThrowNonError(t *testing.T) {
	wantLogs(t, `
try { throw "plain"; } catch (e) { console.log(e); }
`, "plain")
}

func TestUncaughtThrowSurfaces(t *testing.T) {
	ip := New()
	prog := parser.MustParse("t.js", `throw new Error("boom");`)
	err := ip.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestObjectsAndArrays(t *testing.T) {
	wantLogs(t, `
const person = { name: "kim", tags: ["a", "b"] };
person.age = 30;
person["role"] = "dev";
console.log(person.name, person.age, person.role, person.tags.length);
delete person.age;
console.log(person.age);
const arr = [1, 2, 3];
arr.push(4);
arr[10] = 99;
console.log(arr.length, arr[10], arr[5]);
`, "kim 30 dev 2", "undefined", "11 99 undefined")
}

func TestSpreadAndShorthand(t *testing.T) {
	wantLogs(t, `
const base = { a: 1, b: 2 };
const ext = { ...base, c: 3 };
console.log(ext.a + ext.b + ext.c);
const xs = [1, 2];
const ys = [...xs, 3, ...xs];
console.log(ys.join("-"));
function sum(...nums) { return nums.reduce((a, b) => a + b, 0); }
console.log(sum(1, 2, 3), sum(...ys));
const x = 5;
const short = { x };
console.log(short.x);
`, "6", "1-2-3-1-2", "6 9", "5")
}

func TestArrayMethods(t *testing.T) {
	wantLogs(t, `
const xs = [3, 1, 4, 1, 5];
console.log(xs.map(x => x * 2).join(","));
console.log(xs.filter(x => x > 1).join(","));
console.log(xs.indexOf(4), xs.includes(9));
console.log(xs.slice(1, 3).join(","));
console.log([["a", 1], ["b", 2]].flat().join(","));
console.log([5, 3, 9].sort((a, b) => a - b).join(","));
console.log(xs.find(x => x > 3), xs.findIndex(x => x > 3));
console.log(xs.some(x => x === 5), xs.every(x => x < 6));
`, "6,2,8,2,10", "3,4,5", "2 false", "1,4", "a,1,b,2", "3,5,9", "4 2", "true true")
}

func TestStringMethods(t *testing.T) {
	wantLogs(t, `
const s = "Hello World";
console.log(s.toUpperCase(), s.toLowerCase());
console.log(s.split(" ").join("|"));
console.log(s.indexOf("World"), s.includes("World"), s.startsWith("He"));
console.log(s.slice(0, 5), s.substring(6), s.charAt(0));
console.log("  pad  ".trim(), "ab".repeat(3));
console.log(s.replace("World", "MiniJS"));
`, "HELLO WORLD hello world", "Hello|World",
		"6 true true", "Hello World H", "pad ababab", "Hello MiniJS")
}

func TestTemplateLiterals(t *testing.T) {
	wantLogs(t, `
const rate = 30;
const n = 1000;
console.log(`+"`streaming ${n} messages at ${rate}Hz = ${n / rate} seconds`"+`);
`, "streaming 1000 messages at 30Hz = 33.333333333333336 seconds")
}

func TestClasses(t *testing.T) {
	wantLogs(t, `
class Device {
  constructor(id) { this.id = id; }
  describe() { return "device:" + this.id; }
  static kind() { return "generic"; }
}
class Camera extends Device {
  capture() { return this.describe() + ":frame"; }
}
const cam = new Camera("c1");
console.log(cam.id, cam.capture(), Device.kind());
console.log(cam instanceof Camera);
`, "c1 device:c1:frame generic", "true")
}

func TestConstructorFunctionPrototype(t *testing.T) {
	// the prototype-chain reflective idiom (what CodeQL handles, §6.1)
	wantLogs(t, `
function Sensor(id) { this.id = id; }
Sensor.prototype.read = function() { return "reading:" + this.id; };
const s = new Sensor("s9");
console.log(s.read());
`, "reading:s9")
}

func TestThisBinding(t *testing.T) {
	wantLogs(t, `
const obj = {
  name: "gadget",
  label() { return "I am " + this.name; }
};
console.log(obj.label());
const arrowCtx = {
  name: "outer",
  make() { return () => this.name; }
};
console.log(arrowCtx.make()());
`, "I am gadget", "outer")
}

func TestFunctionCallApplyBind(t *testing.T) {
	wantLogs(t, `
function greet(greeting) { return greeting + ", " + this.name; }
const who = { name: "ada" };
console.log(greet.call(who, "hi"));
console.log(greet.apply(who, ["yo"]));
const bound = greet.bind(who);
console.log(bound("hey"));
`, "hi, ada", "yo, ada", "hey, ada")
}

func TestPromisesAndAwait(t *testing.T) {
	wantLogs(t, `
async function fetchData() {
  return new Promise((resolve, reject) => { resolve("payload"); });
}
async function main() {
  const v = await fetchData();
  console.log("got", v);
  const w = await Promise.resolve(42);
  console.log(w);
}
main();
new Promise((resolve) => resolve("chained")).then(v => console.log("then:", v));
`, "got payload", "42", "then: chained")
}

func TestPromiseRejection(t *testing.T) {
	wantLogs(t, `
new Promise((resolve, reject) => reject("bad"))
  .then(v => console.log("ok", v))
  .catch(e => console.log("err", e));
`, "err bad")
}

func TestJSONBuiltins(t *testing.T) {
	wantLogs(t, `
const o = JSON.parse('{"a": 1, "items": ["x", "y"], "flag": true}');
console.log(o.a, o.items[1], o.flag);
console.log(JSON.stringify({ b: 2, a: [1, null] }));
`, "1 y true", `{"a":[1,null],"b":2}`)
}

func TestJSONParseErrors(t *testing.T) {
	ip := New()
	prog := parser.MustParse("t.js", `JSON.parse("{bad json");`)
	if err := ip.Run(prog); err == nil {
		t.Fatal("expected throw")
	}
}

func TestMathAndNumbers(t *testing.T) {
	wantLogs(t, `
console.log(Math.floor(3.7), Math.ceil(3.2), Math.abs(-4), Math.max(1, 9, 5));
console.log(parseInt("42px"), parseFloat("3.5kg"), isNaN(parseInt("zz")));
console.log((3.14159).toFixed(2));
console.log(Number("17") + Number(true));
`, "3 4 4 9", "42 3.5 true", "3.14", "18")
}

func TestObjectNamespace(t *testing.T) {
	wantLogs(t, `
const o = { x: 1, y: 2 };
console.log(Object.keys(o).join(","));
console.log(Object.values(o).join(","));
const merged = Object.assign({}, o, { z: 3 });
console.log(JSON.stringify(merged));
console.log(Array.isArray([1]), Array.isArray("no"));
`, "x,y", "1,2", `{"x":1,"y":2,"z":3}`, "true false")
}

func TestTypeofAndUnary(t *testing.T) {
	wantLogs(t, `
console.log(typeof 1, typeof "s", typeof true, typeof undefined, typeof null);
console.log(typeof {}, typeof [], typeof (() => 1));
console.log(typeof neverDeclared);
console.log(!0, -"5", +true, ~3);
`, "number string boolean undefined object",
		"object object function", "undefined", "true -5 1 -4")
}

func TestUpdateAndCompoundAssign(t *testing.T) {
	wantLogs(t, `
let i = 5;
console.log(i++, i, ++i, i--);
let s = "a";
s += "b";
let n = 10;
n *= 3; n -= 5; n /= 5;
console.log(s, n);
const o = { count: 0 };
o.count += 7;
console.log(o.count);
`, "5 6 7 7", "ab 5", "7")
}

func TestImplicitGlobalAssignment(t *testing.T) {
	wantLogs(t, `
function setup() { leaked = "visible"; }
setup();
console.log(leaked);
`, "visible")
}

func TestConstReassignFails(t *testing.T) {
	ip := New()
	prog := parser.MustParse("t.js", "const c = 1; c = 2;")
	if err := ip.Run(prog); err == nil {
		t.Fatal("expected const assignment error")
	}
}

func TestUndefinedVariableError(t *testing.T) {
	ip := New()
	prog := parser.MustParse("t.js", "console.log(nope);")
	err := ip.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
}

func TestNullPropertyAccessThrows(t *testing.T) {
	wantLogs(t, `
try {
  const x = null;
  console.log(x.prop);
} catch (e) { console.log("caught:", e.name); }
`, "caught: TypeError")
}

func TestStepBudget(t *testing.T) {
	ip := New()
	ip.MaxSteps = 10_000
	prog := parser.MustParse("t.js", "while (true) { }")
	err := ip.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestSequencingDeterminism(t *testing.T) {
	src := `
let out = [];
for (let i = 0; i < 20; i++) out.push(Math.random());
console.log(out.length);
console.log(Date.now() < Date.now());
`
	a := logs(t, src)
	b := logs(t, src)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("runs differ")
	}
	if a[1] != "true" {
		t.Fatal("Date.now should be monotonic")
	}
}

// Property: interpreting a generated arithmetic expression matches Go's
// evaluation of the same expression.
func TestQuickArithAgreement(t *testing.T) {
	f := func(a, b, c int16) bool {
		x, y, z := float64(a), float64(b), float64(c)
		src := "console.log(" +
			formatNumber(x) + " + " + formatNumber(y) + " * " + formatNumber(z) +
			" - (" + formatNumber(x) + " - " + formatNumber(z) + "));"
		ip := New()
		prog, err := parser.Parse("q.js", src)
		if err != nil {
			return false
		}
		if err := ip.Run(prog); err != nil {
			return false
		}
		want := formatNumber(x + y*z - (x - z))
		return len(ip.ConsoleOut) == 1 && ip.ConsoleOut[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: array push/pop behaves like a stack.
func TestQuickArrayStack(t *testing.T) {
	f := func(vals []int8) bool {
		if len(vals) > 30 {
			vals = vals[:30]
		}
		var b strings.Builder
		b.WriteString("const s = [];\n")
		for _, v := range vals {
			b.WriteString("s.push(" + formatNumber(float64(v)) + ");\n")
		}
		b.WriteString("let out = [];\nwhile (s.length > 0) out.push(s.pop());\nconsole.log(out.join(','));")
		ip := New()
		prog, err := parser.Parse("q.js", b.String())
		if err != nil {
			return false
		}
		if err := ip.Run(prog); err != nil {
			return false
		}
		var want []string
		for i := len(vals) - 1; i >= 0; i-- {
			want = append(want, formatNumber(float64(vals[i])))
		}
		return ip.ConsoleOut[0] == strings.Join(want, ",")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
