package interp

import (
	"strings"
	"testing"

	"turnstile/internal/parser"
	"turnstile/internal/policy"
)

// loadPolicy parses a JSON policy whose label functions are MiniJS sources
// compiled against the given interpreter.
func loadPolicy(t *testing.T, ip *Interp, doc string) *policy.Policy {
	t.Helper()
	p, err := policy.ParseJSON([]byte(doc), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Figure 4's IFC policy, with MiniJS label functions.
const fig4PolicyJSON = `{
  "labellers": {
    "Scene": { "persons": { "$map": "item => item.employeeID ? \"employee\" : \"customer\"" } }
  },
  "rules": [ "employee -> customer", "customer -> internal" ],
  "injections": [ { "line": 2, "object": "scene", "labeller": "Scene" } ]
}`

// The hand-instrumented FaceRecognizer of Figure 2b, adapted to the host
// modules. storage is labelled "internal" (anything may flow there);
// deviceControl is labelled "employee" (only employee data may flow).
const fig2bSource = `
const net = require("net");
const socket = net.connect({ host: "cam", port: 554 });

const deviceControl = { send: function(p) { sent.push("device:" + p.name) } };
const emailSender = { send: function(s) { sent.push("email") } };
const storage = { send: function(s) { sent.push("storage") } };
let sent = [];

socket.on("data", frame => {
  const scene = __t.label(analyzeVideoFrame(frame), "Scene");
  for (let person of scene.persons) {
    person.description =
      __t.binaryOp("+",
        __t.binaryOp("+", person.action, " at "),
        scene.location);
    if (person.employeeID) {
      __t.invoke(deviceControl, "send", [ person ]);
    }
  }
  __t.invoke(emailSender, "send", [ scene ]);
  __t.invoke(storage, "send", [ scene ]);
});

function analyzeVideoFrame(frame) {
  const persons = [];
  for (let part of frame.split("|")) {
    const bits = part.split(":");
    const p = { name: bits[0], action: "walking" };
    if (bits[1] !== "") { p.employeeID = bits[1]; }
    persons.push(p);
  }
  return { persons: persons, location: "lobby" };
}
`

func setupFig2b(t *testing.T, attachSinkLabels func(*Interp)) *Interp {
	t.Helper()
	ip := New()
	pol := loadPolicy(t, ip, fig4PolicyJSON)
	tr := ip.InstallTracker(pol)
	tr.Enforce = true
	prog, err := parser.Parse("face-recognizer.js", fig2bSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	if attachSinkLabels != nil {
		attachSinkLabels(ip)
	}
	return ip
}

func sinkObject(t *testing.T, ip *Interp, name string) *Object {
	t.Helper()
	v, ok := ip.Globals.Lookup(name)
	if !ok {
		t.Fatalf("%s not defined", name)
	}
	return v.(*Object)
}

func TestFig2bEmployeeFlowAllowed(t *testing.T) {
	ip := setupFig2b(t, func(ip *Interp) {
		ip.Tracker.Attach(sinkObject(t, ip, "deviceControl"), policy.NewLabelSet("employee"))
		ip.Tracker.Attach(sinkObject(t, ip, "storage"), policy.NewLabelSet("internal"))
		ip.Tracker.Attach(sinkObject(t, ip, "emailSender"), policy.NewLabelSet("internal"))
	})
	src, _ := ip.Source("net.socket:cam:554")
	// one employee in the frame: all flows allowed
	if err := ip.Emit(src, "data", "kim:E7"); err != nil {
		t.Fatalf("employee frame should pass: %v", err)
	}
	if n := len(ip.Tracker.Violations()); n != 0 {
		t.Fatalf("violations = %d", n)
	}
}

func TestFig2bCustomerToEmployeeSinkBlocked(t *testing.T) {
	ip := setupFig2b(t, func(ip *Interp) {
		ip.Tracker.Attach(sinkObject(t, ip, "deviceControl"), policy.NewLabelSet("employee"))
		ip.Tracker.Attach(sinkObject(t, ip, "storage"), policy.NewLabelSet("internal"))
		ip.Tracker.Attach(sinkObject(t, ip, "emailSender"), policy.NewLabelSet("internal"))
	})
	src, _ := ip.Source("net.socket:cam:554")
	// a customer (no employeeID): sending the whole scene to storage and
	// email is fine (customer -> internal), and deviceControl.send is never
	// reached because there is no employeeID. Mixed frame with a spoofed
	// employeeID on a customer would hit deviceControl.
	if err := ip.Emit(src, "data", "visitor:"); err != nil {
		t.Fatalf("customer frame to internal sinks should pass: %v", err)
	}
	// Now relabel deviceControl as "customer"-level and push an employee:
	// employee data may flow to customer level (employee -> customer).
	// The reverse — customer data into an employee-labelled sink — must be
	// blocked; simulate by labelling emailSender "employee".
	ip2 := setupFig2b(t, func(ip *Interp) {
		ip.Tracker.Attach(sinkObject(t, ip, "deviceControl"), policy.NewLabelSet("employee"))
		ip.Tracker.Attach(sinkObject(t, ip, "emailSender"), policy.NewLabelSet("employee"))
		ip.Tracker.Attach(sinkObject(t, ip, "storage"), policy.NewLabelSet("internal"))
	})
	src2, _ := ip2.Source("net.socket:cam:554")
	err := ip2.Emit(src2, "data", "visitor:")
	if err == nil {
		t.Fatal("customer → employee-labelled email sink should be blocked")
	}
	if !strings.Contains(err.Error(), "PrivacyViolation") && !strings.Contains(err.Error(), "violation") {
		t.Fatalf("err = %v", err)
	}
	if len(ip2.Tracker.Violations()) == 0 {
		t.Fatal("violation not recorded")
	}
}

func TestFig2bCompoundDescription(t *testing.T) {
	ip := setupFig2b(t, nil)
	src, _ := ip.Source("net.socket:cam:554")
	if err := ip.Emit(src, "data", "kim:E7|visitor:"); err != nil {
		t.Fatal(err)
	}
	// person.description was computed via τ.binaryOp from labelled parts;
	// check a description box carries a label.
	st := ip.Tracker.Stats()
	if st.Labelled == 0 || st.Derived < 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestValueDependentLabelsFromJS(t *testing.T) {
	ip := setupFig2b(t, nil)
	src, _ := ip.Source("net.socket:cam:554")
	if err := ip.Emit(src, "data", "kim:E7|visitor:"); err != nil {
		t.Fatal(err)
	}
	// find the scene variable is gone (local), but the persons were
	// labelled individually: employee for kim, customer for visitor. We
	// verify via the tracker by scanning labels on the sent messages.
	// Instead of introspecting, run again with an enforcing sink.
	st := ip.Tracker.Stats()
	if st.Labelled != 1 {
		t.Fatalf("label() calls = %d", st.Labelled)
	}
}

func TestAuditModeCollectsViolations(t *testing.T) {
	ip := New()
	pol := loadPolicy(t, ip, fig4PolicyJSON)
	tr := ip.InstallTracker(pol)
	tr.Enforce = false
	prog := parser.MustParse("audit.js", `
const data = __t.label({ persons: [ { name: "guest" } ] }, "Scene");
const sink = { send: function(x) { return "sent" } };
__t.invoke(sink, "send", [ data ]);
`)
	// label the sink "employee": customer data → employee sink = violation
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	// no labels on sink: allowed. Re-run with labelled sink.
	ip2 := New()
	pol2 := loadPolicy(t, ip2, fig4PolicyJSON)
	tr2 := ip2.InstallTracker(pol2)
	tr2.Enforce = false
	prog2 := parser.MustParse("audit2.js", `
const sink = { send: function(x) { return "sent" } };
__t.label(sink, "EmployeeSink");
const data = __t.label({ persons: [ { name: "guest" } ] }, "Scene");
const out = __t.invoke(sink, "send", [ data ]);
console.log(out);
`)
	// need an EmployeeSink labeller: extend policy
	pol2.Labellers["EmployeeSink"] = &policy.Labeller{Fn: func(args ...any) (policy.LabelSet, error) {
		return policy.NewLabelSet("employee"), nil
	}}
	if err := ip2.Run(prog2); err != nil {
		t.Fatalf("audit mode must not block: %v", err)
	}
	if len(tr2.Violations()) != 1 {
		t.Fatalf("violations = %d", len(tr2.Violations()))
	}
	if ip2.ConsoleOut[0] != "sent" {
		t.Fatalf("flow should have proceeded: %v", ip2.ConsoleOut)
	}
}

func TestInvokeLabelsReturnValue(t *testing.T) {
	ip := New()
	pol := loadPolicy(t, ip, fig4PolicyJSON)
	ip.InstallTracker(pol)
	prog := parser.MustParse("ret.js", `
const data = __t.label({ persons: [ { name: "x", employeeID: 3 } ] }, "Scene");
const svc = { process: function(d) { return { derived: true } } };
const out = __t.invoke(svc, "process", [ data ]);
`)
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	// out should carry the compound label of its arguments
	outV, _ := ip.Globals.Lookup("out")
	if ls := ip.Tracker.DataLabels(outV); !ls.Contains("employee") {
		t.Fatalf("return labels = %v", ls)
	}
}

func TestSinkWritesUnwrapped(t *testing.T) {
	ip := New()
	pol := loadPolicy(t, ip, fig4PolicyJSON)
	ip.InstallTracker(pol)
	prog := parser.MustParse("unwrap.js", `
const fs = require("fs");
const secret = __t.label("top-secret", "Plain");
fs.writeFileSync("/out", secret);
`)
	pol.Labellers["Plain"] = &policy.Labeller{Fn: func(args ...any) (policy.LabelSet, error) {
		return policy.NewLabelSet("customer"), nil
	}}
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	w := ip.IO.WritesTo("fs")
	if len(w) != 1 {
		t.Fatalf("writes = %+v", w)
	}
	if _, boxed := w[0].Value.(interface{ RefID() uint64 }); boxed {
		t.Fatalf("sink write still wrapped: %#v", w[0].Value)
	}
	if w[0].Value != "top-secret" {
		t.Fatalf("value = %v", w[0].Value)
	}
}

func TestCompileLabelFuncErrors(t *testing.T) {
	ip := New()
	if _, err := ip.CompileLabelFunc("not ( valid"); err == nil {
		t.Fatal("expected compile error")
	}
	lf, err := ip.CompileLabelFunc(`x => 42`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lf("v"); err == nil {
		t.Fatal("numeric label should be rejected")
	}
}

func TestCompileLabelFuncArrayResult(t *testing.T) {
	ip := New()
	lf, err := ip.CompileLabelFunc(`item => [ "EU", "L2" ]`)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := lf(NewObject())
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Equal(policy.NewLabelSet("EU", "L2")) {
		t.Fatalf("labels = %v", ls)
	}
}

func TestBoxTransparency(t *testing.T) {
	// boxed primitives behave like their values in uninstrumented code —
	// the Proxy-transparency property of §4.4.
	ip := New()
	pol := loadPolicy(t, ip, fig4PolicyJSON)
	pol.Labellers["Any"] = &policy.Labeller{Fn: func(args ...any) (policy.LabelSet, error) {
		return policy.NewLabelSet("customer"), nil
	}}
	ip.InstallTracker(pol)
	prog := parser.MustParse("box.js", `
const n = __t.label(21, "Any");
const s = __t.label("abc", "Any");
console.log(n * 2, s.length, s.toUpperCase(), n + 1 > 21, typeof n, typeof s);
const arr = [n, s];
console.log(arr.join("/"));
if (n) { console.log("truthy"); }
`)
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	want := []string{"42 3 ABC true number string", "21/abc", "truthy"}
	for i, w := range want {
		if ip.ConsoleOut[i] != w {
			t.Fatalf("line %d = %q, want %q", i, ip.ConsoleOut[i], w)
		}
	}
}
