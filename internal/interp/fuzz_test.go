package interp

import (
	"errors"
	"testing"

	"turnstile/internal/guard"
	"turnstile/internal/parser"
)

// FuzzInterpNoPanicWithinFuel is the resource-governance property as a
// fuzz target: any program that parses must run to a typed outcome under
// tight guard budgets — no panic, no hang, no unbounded allocation.
// Budget trips, runtime errors and throws are all fine; guard.Contain
// converts any residual panic into a *guard.PipelineError, which this
// target treats as the bug it is hunting.
func FuzzInterpNoPanicWithinFuel(f *testing.F) {
	seeds := []string{
		// the crash-corpus shapes, inlined
		`while (true) { }`,
		`function f(n) { return f(n + 1); } f(0);`,
		`function even(n) { return odd(n + 1); } function odd(n) { return even(n + 1); } even(0);`,
		`let s = "xxxxxxxx"; while (true) { s = s + s; }`,
		`let a = []; while (true) { a.push(1, 2, 3, 4); }`,
		`function t(n) { setTimeout(function() { t(n + 1); }, 1000); } t(0);`,
		`const fs = require("fs"); while (true) { fs.writeFileSync("/flood", "chunk"); }`,
		`const o = { n: 1 }; o.self = o; console.log(o.n);`,
		// ordinary programs must finish clean inside the budgets
		`let acc = 0; for (let i = 0; i < 10; i++) { acc += i * i; } console.log(acc);`,
		"console.log(`t${`u${`v${1 + 2}`}`}`);",
		`const xs = [3, 1, 2]; console.log(xs.sort().join("-"));`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fz.js", src)
		if err != nil {
			return
		}
		ip := New()
		ip.SetGuard(guard.New(guard.Limits{
			Fuel:          200_000,
			MaxDepth:      256,
			MaxAlloc:      1 << 20,
			DeadlineTicks: 50_000,
		}))
		runErr := guard.Contain("interp", "fz.js", func() error {
			return ip.Run(prog)
		})
		// Contain passes plain errors (budget trips, runtime errors, throws)
		// through untouched; a *guard.PipelineError here can only come from
		// a recovered panic
		var pe *guard.PipelineError
		if errors.As(runErr, &pe) {
			t.Fatalf("interpreter panicked: %v\ninput: %q", pe, src)
		}
	})
}
