package interp

import (
	"errors"
	"fmt"
	"sync/atomic"

	"turnstile/internal/ast"
)

// envMapDefines counts map-based (dynamic) variable definitions across
// all environments in the process. The VM's dynamic-global identifier
// cache (exec_vm.go) snapshots it at fill time: as long as no environment
// anywhere has gained a map binding, a name that previously resolved to
// the Globals map cannot have acquired a nearer provider — slot layouts
// are static, map bindings are never deleted, and IterCopy only copies
// bindings that already shadowed Globals at fill time. Atomic because
// independent interpreters run concurrently (serve workers, -parallel
// harness runs); cross-interpreter bumps only cost a cache refill.
var envMapDefines atomic.Uint64

// ErrNotDefined reports assignment to an undeclared name; sloppy-mode code
// handles it by creating an implicit global.
var ErrNotDefined = errors.New("not defined")

// unboundSlot marks a slot whose declaration has not executed yet. It is a
// dedicated sentinel rather than Go nil because host functions can return
// nil and that nil must remain a real, lookupable binding.
type unboundSlot struct{}

// Env is one lexical scope in the environment chain.
//
// A scope-resolved environment stores slot-declared names in a flat value
// array indexed by the resolver's slot assignment; every other binding
// (implicit globals, host injection, names the resolver left dynamic)
// lives in the vars map. An environment with no ScopeInfo is fully
// map-based and behaves exactly like the pre-resolver implementation.
type Env struct {
	parent     *Env
	scope      *ast.ScopeInfo // static slot layout; nil → map-only scope
	slots      []Value
	slotConsts []bool // lazy; nil until a const slot is defined
	vars       map[string]Value
	consts     map[string]bool
}

// NewEnv creates a map-based scope nested in parent (nil for the global
// scope).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent}
}

// NewScopeEnv creates a scope with the resolver's slot layout. All slots
// start unbound: a lookup or assignment reaching an unbound slot behaves
// as if the scope did not declare the name, matching the map path where
// the binding only exists once its Define has executed.
func NewScopeEnv(parent *Env, scope *ast.ScopeInfo) *Env {
	if scope == nil {
		return &Env{parent: parent}
	}
	e := &Env{parent: parent, scope: scope}
	if n := scope.NumSlots(); n > 0 {
		e.slots = make([]Value, n)
		for i := range e.slots {
			e.slots[i] = unboundSlot{}
		}
	}
	return e
}

// Define declares a variable in this scope.
func (e *Env) Define(name string, v Value, isConst bool) {
	if e.scope != nil {
		if i, ok := e.scope.Slot(name); ok {
			e.defineSlot(i, v, isConst)
			return
		}
	}
	if e.vars == nil {
		e.vars = make(map[string]Value)
	}
	envMapDefines.Add(1)
	e.vars[name] = v
	if isConst {
		if e.consts == nil {
			e.consts = make(map[string]bool)
		}
		e.consts[name] = true
	}
}

func (e *Env) defineSlot(i int, v Value, isConst bool) {
	e.slots[i] = v
	if isConst {
		if e.slotConsts == nil {
			e.slotConsts = make([]bool, len(e.slots))
		}
		e.slotConsts[i] = true
	}
}

// DefineSlot declares directly into slot i of this scope, bypassing the
// name lookup. It returns false when the environment has no such slot, in
// which case the caller falls back to Define.
func (e *Env) DefineSlot(i int, v Value, isConst bool) bool {
	if i < 0 || i >= len(e.slots) {
		return false
	}
	e.defineSlot(i, v, isConst)
	return true
}

// lookupOwner resolves a name exactly like Lookup and additionally
// reports the environment whose vars map provided the binding (nil for
// slot hits), so the VM can cache dynamic-global resolutions.
func (e *Env) lookupOwner(name string) (Value, *Env, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.scope != nil {
			if i, ok := cur.scope.Slot(name); ok {
				v := cur.slots[i]
				if _, isUnbound := v.(unboundSlot); !isUnbound {
					return v, nil, true
				}
				continue // declared here but not yet bound: keep walking
			}
		}
		if v, ok := cur.vars[name]; ok {
			return v, cur, true
		}
	}
	return nil, nil, false
}

// Lookup resolves a name through the scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.scope != nil {
			if i, ok := cur.scope.Slot(name); ok {
				v := cur.slots[i]
				if _, isUnbound := v.(unboundSlot); !isUnbound {
					return v, true
				}
				continue // declared here but not yet bound: keep walking
			}
		}
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Assign updates an existing binding; it fails for undeclared names and
// const bindings.
func (e *Env) Assign(name string, v Value) error {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.scope != nil {
			if i, ok := cur.scope.Slot(name); ok {
				if _, isUnbound := cur.slots[i].(unboundSlot); !isUnbound {
					if cur.slotConsts != nil && cur.slotConsts[i] {
						return fmt.Errorf("assignment to constant variable %q", name)
					}
					cur.slots[i] = v
					return nil
				}
				continue
			}
		}
		if _, ok := cur.vars[name]; ok {
			if cur.consts[name] {
				return fmt.Errorf("assignment to constant variable %q", name)
			}
			cur.vars[name] = v
			return nil
		}
	}
	return fmt.Errorf("%q is %w", name, ErrNotDefined)
}

// SlotRead reads the binding at a resolved (depth, slot) coordinate. It
// returns false — sending the caller to the dynamic Lookup walk — when the
// coordinate does not land on a bound slot (environment chain shorter than
// expected, scope created without a layout, or declaration not yet
// executed).
func (e *Env) SlotRead(depth, slot int) (Value, bool) {
	cur := e
	for d := 0; d < depth && cur != nil; d++ {
		cur = cur.parent
	}
	if cur == nil || slot < 0 || slot >= len(cur.slots) {
		return nil, false
	}
	v := cur.slots[slot]
	if _, isUnbound := v.(unboundSlot); isUnbound {
		return nil, false
	}
	return v, true
}

// SlotAssign writes through a resolved coordinate. done reports whether
// the write was handled here; (false, nil) sends the caller to the
// dynamic Assign walk. A const slot yields the same error Assign would.
func (e *Env) SlotAssign(depth, slot int, v Value) (bool, error) {
	cur := e
	for d := 0; d < depth && cur != nil; d++ {
		cur = cur.parent
	}
	if cur == nil || slot < 0 || slot >= len(cur.slots) {
		return false, nil
	}
	if _, isUnbound := cur.slots[slot].(unboundSlot); isUnbound {
		return false, nil
	}
	if cur.slotConsts != nil && cur.slotConsts[slot] {
		return true, fmt.Errorf("assignment to constant variable %q", cur.scope.Names[slot])
	}
	cur.slots[slot] = v
	return true, nil
}

// IterCopy clones the scope's bindings into a fresh environment with the
// same parent and layout. Loops with let/const headers use it to give
// each iteration its own binding, so closures created in the body capture
// that iteration's value.
func (e *Env) IterCopy() *Env {
	ne := &Env{parent: e.parent, scope: e.scope}
	if e.slots != nil {
		ne.slots = make([]Value, len(e.slots))
		copy(ne.slots, e.slots)
	}
	if e.slotConsts != nil {
		ne.slotConsts = make([]bool, len(e.slotConsts))
		copy(ne.slotConsts, e.slotConsts)
	}
	if e.vars != nil {
		ne.vars = make(map[string]Value, len(e.vars))
		for k, v := range e.vars {
			ne.vars[k] = v
		}
	}
	if e.consts != nil {
		ne.consts = make(map[string]bool, len(e.consts))
		for k, v := range e.consts {
			ne.consts[k] = v
		}
	}
	return ne
}

// Global returns the outermost scope.
func (e *Env) Global() *Env {
	cur := e
	for cur.parent != nil {
		cur = cur.parent
	}
	return cur
}
