package interp

import (
	"errors"
	"fmt"
)

// ErrNotDefined reports assignment to an undeclared name; sloppy-mode code
// handles it by creating an implicit global.
var ErrNotDefined = errors.New("not defined")

// Env is one lexical scope in the environment chain.
type Env struct {
	vars   map[string]Value
	consts map[string]bool
	parent *Env
}

// NewEnv creates a scope nested in parent (nil for the global scope).
func NewEnv(parent *Env) *Env {
	return &Env{vars: make(map[string]Value), parent: parent}
}

// Define declares a variable in this scope.
func (e *Env) Define(name string, v Value, isConst bool) {
	e.vars[name] = v
	if isConst {
		if e.consts == nil {
			e.consts = make(map[string]bool)
		}
		e.consts[name] = true
	}
}

// Lookup resolves a name through the scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Assign updates an existing binding; it fails for undeclared names and
// const bindings.
func (e *Env) Assign(name string, v Value) error {
	for cur := e; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			if cur.consts[name] {
				return fmt.Errorf("assignment to constant variable %q", name)
			}
			cur.vars[name] = v
			return nil
		}
	}
	return fmt.Errorf("%q is %w", name, ErrNotDefined)
}

// Global returns the outermost scope.
func (e *Env) Global() *Env {
	cur := e
	for cur.parent != nil {
		cur = cur.parent
	}
	return cur
}
