package interp

import (
	"strings"
	"testing"

	"turnstile/internal/faults"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
)

// runFaulted executes src in a fresh interpreter with a fault schedule
// installed.
func runFaulted(t *testing.T, s *faults.Schedule, src string) *Interp {
	t.Helper()
	ip := New()
	ip.InstallFaults(s)
	prog, err := parser.Parse("test.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ip.Run(prog); err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return ip
}

func failRule(module, op string) *faults.Schedule {
	return &faults.Schedule{Rules: []faults.Rule{
		{Module: module, Op: op, Mode: faults.ModeFail, Error: "EIO: injected failure"},
	}}
}

func TestFaultFailAsyncCallback(t *testing.T) {
	// async ops surface Node-style (err, result) callbacks
	ip := runFaulted(t, failRule("fs", "readFile"), `
const fs = require("fs");
fs.readFile("/etc/conf", function(err, data) {
  if (err) { console.log("err:", err.message, err.code, err.syscall, data); }
  else { console.log("ok:", data); }
});
`)
	if len(ip.ConsoleOut) != 1 || !strings.Contains(ip.ConsoleOut[0], "err: EIO: injected failure EIO fs.readFile null") {
		t.Fatalf("console = %v", ip.ConsoleOut)
	}
}

func TestFaultSyncThrowCatchable(t *testing.T) {
	// sync ops throw a catchable Error; the failed write leaves no record
	ip := runFaulted(t, failRule("fs", "writeFileSync"), `
const fs = require("fs");
try {
  fs.writeFileSync("/out", "data");
  console.log("unreachable");
} catch (e) { console.log("caught:", e.message); }
`)
	if len(ip.ConsoleOut) != 1 || ip.ConsoleOut[0] != "caught: EIO: injected failure" {
		t.Fatalf("console = %v", ip.ConsoleOut)
	}
	if n := len(ip.IO.Writes); n != 0 {
		t.Fatalf("failed write was recorded: %d", n)
	}
}

func TestFaultDropSilentSuccess(t *testing.T) {
	// dropped ops vanish but the caller observes success
	s := &faults.Schedule{Rules: []faults.Rule{
		{Module: "fs", Op: "writeFile", Mode: faults.ModeDrop},
	}}
	ip := runFaulted(t, s, `
const fs = require("fs");
fs.writeFile("/out", "lost", function(err) { console.log("cb err:", err); });
`)
	if len(ip.ConsoleOut) != 1 || ip.ConsoleOut[0] != "cb err: null" {
		t.Fatalf("console = %v", ip.ConsoleOut)
	}
	if n := len(ip.IO.Writes); n != 0 {
		t.Fatalf("dropped write was recorded: %d", n)
	}
}

func TestFaultDelayAdvancesClock(t *testing.T) {
	s := &faults.Schedule{Rules: []faults.Rule{
		{Module: "fs", Op: "writeFileSync", Mode: faults.ModeDelay, Delay: 7},
	}}
	ip := runFaulted(t, s, `
const fs = require("fs");
fs.writeFileSync("/slow", "x");
`)
	if ip.Clock.Now() != 7 {
		t.Fatalf("clock = %d", ip.Clock.Now())
	}
	// a delayed op still completes
	if n := len(ip.IO.Writes); n != 1 {
		t.Fatalf("writes = %d", n)
	}
}

func TestRetryGlobalRidesOutFlaky(t *testing.T) {
	s := &faults.Schedule{Rules: []faults.Rule{
		{Module: "fs", Op: "writeFileSync", Mode: faults.ModeFlaky, K: 2, Error: "EIO: warming up"},
	}}
	ip := runFaulted(t, s, `
const fs = require("fs");
const out = retry(function() { fs.writeFileSync("/flaky", "v"); return "done"; }, 5, 2);
console.log(out);
`)
	if len(ip.ConsoleOut) != 1 || ip.ConsoleOut[0] != "done" {
		t.Fatalf("console = %v", ip.ConsoleOut)
	}
	if n := len(ip.IO.Writes); n != 1 {
		t.Fatalf("writes = %d", n)
	}
	// two backoff waits: 2 + 4 virtual ticks
	if ip.Clock.Now() != 6 {
		t.Fatalf("clock = %d", ip.Clock.Now())
	}
}

func TestRetryGlobalExhaustionRethrows(t *testing.T) {
	ip := runFaulted(t, failRule("fs", "writeFileSync"), `
try {
  retry(function() { require("fs").writeFileSync("/never", "v"); }, 3, 1);
} catch (e) { console.log("gave up:", e.message); }
`)
	if len(ip.ConsoleOut) != 1 || ip.ConsoleOut[0] != "gave up: EIO: injected failure" {
		t.Fatalf("console = %v", ip.ConsoleOut)
	}
	if ip.Clock.Now() != 3 { // 1 + 2
		t.Fatalf("clock = %d", ip.Clock.Now())
	}
}

func TestSetTimeoutAdvancesClock(t *testing.T) {
	ip := run(t, `
setTimeout(function() { console.log("later"); }, 25);
console.log("after");
`)
	if ip.Clock.Now() != 25 {
		t.Fatalf("clock = %d", ip.Clock.Now())
	}
	if len(ip.ConsoleOut) != 2 || ip.ConsoleOut[0] != "later" {
		t.Fatalf("console = %v", ip.ConsoleOut)
	}
}

func TestEmitDeliversToAllListeners(t *testing.T) {
	// one throwing listener must not starve its siblings, and Emit must
	// report every failure
	ip := run(t, `
process.stdin.on("data", function(d) { throw new Error("first broke: " + d); });
process.stdin.on("data", function(d) { console.log("second got:", d); });
process.stdin.on("data", function(d) { throw new Error("third broke"); });
`)
	src, ok := ip.Source("process.stdin")
	if !ok {
		t.Fatal("stdin source missing")
	}
	err := ip.Emit(src, "data", "m1")
	if err == nil {
		t.Fatal("Emit swallowed the listener errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "first broke: m1") || !strings.Contains(msg, "third broke") {
		t.Fatalf("joined error = %q", msg)
	}
	if len(ip.ConsoleOut) != 1 || ip.ConsoleOut[0] != "second got: m1" {
		t.Fatalf("sibling starved: console = %v", ip.ConsoleOut)
	}
}

func TestIORecorderResetClearsIntervals(t *testing.T) {
	ip := run(t, `
const fs = require("fs");
fs.writeFileSync("/x", "v");
setInterval(function() {}, 100);
`)
	if len(ip.IO.Writes) != 1 || len(ip.IO.Intervals) != 1 {
		t.Fatalf("precondition: writes=%d intervals=%d", len(ip.IO.Writes), len(ip.IO.Intervals))
	}
	ip.IO.Reset()
	if len(ip.IO.Writes) != 0 {
		t.Fatalf("writes not cleared: %d", len(ip.IO.Writes))
	}
	if len(ip.IO.Intervals) != 0 {
		t.Fatalf("intervals not cleared: %d", len(ip.IO.Intervals))
	}
	// the deployment environment survives a reset
	if ip.IO.Files == nil || ip.IO.Sources == nil {
		t.Fatal("Reset dropped the environment maps")
	}
}

func TestLabelsSurviveFaultErrorPath(t *testing.T) {
	// a host-op failure on the primary sink must not strip DIFT labels:
	// the fallback write on the error path still carries them
	ip := New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "Reading": "v => \"sensitive\"" },
	  "rules": [ "sensitive -> archive" ]
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = false
	ip.InstallFaults(failRule("fs", "writeFileSync"))
	prog, err := parser.Parse("test.js", `
const fs = require("fs");
let kept = __t.label("reading-7", "Reading");
try {
  fs.writeFileSync("/primary", kept);
} catch (e) {
  fs.appendFileSync("/fallback", kept);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	w := ip.IO.Writes
	if len(w) != 1 || w[0].Target != "/fallback" || w[0].Value != "reading-7" {
		t.Fatalf("writes = %+v", w)
	}
	kept, found := ip.Globals.Lookup("kept")
	if !found {
		t.Fatal("kept missing from globals")
	}
	if labels := ip.Tracker.DataLabels(kept); labels.Empty() {
		t.Fatal("error path dropped the DIFT labels")
	}
	if st := ip.Tracker.Stats(); st.Labelled != 1 || st.Boxed < 1 {
		t.Fatalf("tracker stats = %+v", st)
	}
}
