package interp

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/dift"
	"turnstile/internal/faults"
	"turnstile/internal/guard"
	"turnstile/internal/telemetry"
	"turnstile/internal/vm"
)

// Throw is a MiniJS exception in flight.
type Throw struct {
	Val Value
}

func (t *Throw) Error() string {
	if o, ok := t.Val.(*Object); ok {
		if msg, found := o.Get("message"); found {
			return o.Class + ": " + ToString(msg)
		}
	}
	return "Throw: " + ToString(t.Val)
}

// RuntimeError is an internal evaluation error (not a JS exception), e.g.
// calling a non-function or exceeding the step budget.
type RuntimeError struct {
	Msg string
	Pos ast.Pos
}

func (e *RuntimeError) Error() string {
	if e.Pos.Valid() {
		return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

type ctrlKind int

const (
	ctrlNormal ctrlKind = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// Interp executes MiniJS programs. One Interp is one application runtime
// instance (the analogue of one Node.js process).
type Interp struct {
	Globals *Env
	// IO records all writes to host sink modules, and provides the handles
	// used to inject source events.
	IO *IORecorder
	// Tracker, when non-nil, is the inlined DIF Tracker exposed to the
	// application as the __t global.
	Tracker *dift.Tracker
	// ConsoleOut collects console.log lines.
	ConsoleOut []string
	// MaxSteps bounds evaluation steps to catch runaway programs.
	MaxSteps int64
	// Clock is the virtual time source: injected delays, retry backoff and
	// setTimeout deferrals advance it instead of sleeping, so temporal
	// behaviour is a deterministic function of the executed operations.
	Clock *faults.Clock
	// Faults, when non-nil, consults a seeded fault schedule before every
	// host-module operation (chaos mode). Nil means every op succeeds.
	Faults *faults.Injector
	// Metrics, when non-nil, receives host-module call counters and sink
	// write counters; the tracker's per-op counters share the registry.
	Metrics *telemetry.Metrics
	// Tracer, when non-nil, records structured flow events (sink writes
	// here; label/check/invoke/violation events from the tracker) with
	// timestamps from the virtual Clock.
	Tracer *telemetry.Tracer
	// Guard, when non-nil, enforces resource budgets (fuel, call depth,
	// allocation, virtual-clock deadline) on top of MaxSteps, surfacing
	// trips as typed *guard.BudgetError. Install via SetGuard so the
	// fail-closed tracker integration is wired up.
	Guard *guard.Guard
	// MaxCallDepth hard-caps MiniJS call-stack depth even with no Guard
	// installed: a Go stack overflow is unrecoverable and would kill the
	// whole process, so this cooperative cap must trip first. 0 disables
	// (tests only).
	MaxCallDepth int
	// NoResolve disables the resolver fast paths (slot-indexed variable
	// access and per-call-site inline caches) even on resolved programs,
	// restoring the pure map-walk interpreter for A/B comparison.
	NoResolve bool
	// NoVM disables the bytecode VM, restoring the tree-walking
	// evaluator as the execution engine (the differential oracle). The VM
	// also stays off under NoResolve — it builds on resolved coordinates.
	NoVM bool

	steps       int64
	callDepth   int
	modules     map[string]Value
	localLoader func(name string) (Value, bool, error)
	now         float64 // deterministic Date.now() counter

	// ics holds the per-call-site monomorphic inline caches, indexed by
	// AST node ID (see ic.go). Sized lazily from Program.MaxID.
	ics      []icEntry
	identICs []identIC

	// icEpoch invalidates every inline cache on program swap: IC tables
	// only grow and are guarded by AST node identity, so without an epoch a
	// reused node ID from an aliasing allocation in a later program could
	// validate a stale cached Value (a cross-program label-leak channel).
	// Entries record the epoch they were filled in; Run bumps it whenever
	// the executed program changes.
	icEpoch  uint64
	lastProg *ast.Program

	// bytecode VM state: compiled modules per program and the function
	// chunk registry used to attach Code to closures (see exec_vm.go)
	progMods map[*ast.Program]*vm.Module
	funcCode map[*ast.FuncLit]*vm.Chunk
	// framePool recycles register files across chunk invocations (LIFO,
	// so nested calls reuse the hottest frames); envPool and argPool do
	// the same for call environments and argument slices on calls whose
	// compiled body provably cannot capture them (Chunk.NoCapture,
	// Chunk.NeedsArguments)
	framePool []*vmFrame
	envPool   []*Env
	argPool   [][]Value

	// fused-tracker fast path: snapshot of the __t object taken at
	// InstallTracker time. Valid while the binding was never dynamically
	// rebound (tauRebound) and the object itself is unmutated (version
	// compare); OpTrackerCall then dispatches without an environment walk
	// or member lookup.
	tauObj     *Object
	tauVer     uint64
	tauMethods map[string]Value
	tauRebound bool

	// resolver fast-path telemetry, flushed into Metrics by
	// FlushEnvTelemetry
	envSlotReads, envDynReads   int64
	envSlotWrites, envDynWrites int64
	icHits, icMisses            int64
}

// New creates an interpreter with the standard global environment and host
// modules installed.
func New() *Interp {
	ip := &Interp{
		Globals:      NewEnv(nil),
		IO:           NewIORecorder(),
		MaxSteps:     200_000_000,
		MaxCallDepth: DefaultMaxCallDepth,
		Clock:        faults.NewClock(),
		modules:      make(map[string]Value),
	}
	ip.installGlobals()
	return ip
}

// EnableTelemetry attaches a metrics registry and/or structured tracer to
// the interpreter and, if a tracker is installed, to the tracker and its
// policy graph. Call with two nils to detach. A nil tracer with metrics
// enables counting only; NewTracer(cap, ip.Clock.Now) builds a tracer on
// this interpreter's virtual clock.
func (ip *Interp) EnableTelemetry(m *telemetry.Metrics, tr *telemetry.Tracer) {
	ip.Metrics = m
	ip.Tracer = tr
	if ip.Tracker != nil {
		ip.Tracker.EnableTelemetry(m, tr)
	}
}

// InstallFaults attaches a seeded fault injector running on this
// interpreter's virtual clock and returns it for inspection. Passing a
// nil schedule removes the injector.
func (ip *Interp) InstallFaults(s *faults.Schedule) *faults.Injector {
	if s == nil {
		ip.Faults = nil
		return nil
	}
	ip.Faults = faults.NewInjector(s, ip.Clock)
	return ip.Faults
}

// DefaultMaxCallDepth is the hard call-stack cap installed by New. It is
// far above what the corpus applications reach while keeping the Go stack
// well clear of its unrecoverable limit (each MiniJS frame costs a bounded
// number of Go frames).
const DefaultMaxCallDepth = 20_000

// step charges one unit against the step budget and, when a Guard is
// installed, against its fuel/deadline budgets.
func (ip *Interp) step(pos ast.Pos) error {
	ip.steps++
	if ip.steps > ip.MaxSteps {
		return &RuntimeError{Msg: "step budget exceeded (possible infinite loop)", Pos: pos}
	}
	if ip.Guard != nil {
		// the site string is only materialized on the first trip; the hot
		// path must not format a position per step
		if err := ip.Guard.Step(1, ""); err != nil {
			ip.siteOnTrip(pos)
			return err
		}
	}
	return nil
}

// alloc charges n allocation units against the guard at the runtime's
// amplification sites (literals, string growth, array growth). No-op when
// unguarded.
func (ip *Interp) alloc(n int64, pos ast.Pos) error {
	if ip.Guard == nil {
		return nil
	}
	if err := ip.Guard.Alloc(n, ""); err != nil {
		ip.siteOnTrip(pos)
		return err
	}
	return nil
}

// siteOnTrip back-fills the source position onto the sticky budget error
// the first time it surfaces (the trip site itself passed "" to avoid
// per-operation formatting).
func (ip *Interp) siteOnTrip(pos ast.Pos) {
	if be := ip.Guard.Tripped(); be != nil && be.Site == "" {
		be.Site = pos.String()
	}
}

// SetGuard installs (or with nil removes) the resource guard, binds its
// deadline to this interpreter's virtual clock, and arranges the
// fail-closed integration: when the tracker is in fail-closed mode, any
// budget trip poisons it, so no sink write is permitted afterwards.
func (ip *Interp) SetGuard(g *guard.Guard) {
	ip.Guard = g
	if g == nil {
		return
	}
	g.SetClock(ip.Clock.Now)
	g.OnTrip = func(be *guard.BudgetError) {
		if ip.Tracker != nil && ip.Tracker.FailClosed {
			ip.Tracker.Poison("guard trip: " + string(be.Kind))
		}
	}
}

// Steps returns the number of evaluation steps consumed so far.
func (ip *Interp) Steps() int64 { return ip.steps }

// Run parses nothing — it executes an already-parsed program in the global
// scope.
func (ip *Interp) Run(prog *ast.Program) error {
	if !ip.NoResolve {
		ip.ensureICs(prog.MaxID)
	}
	if ip.lastProg != prog {
		// program swap: retire every inline-cache entry filled under the
		// previous program before any of its node IDs can alias
		ip.lastProg = prog
		ip.icEpoch++
	}
	var c ctrlKind
	var err error
	if mod := ip.moduleFor(prog); mod != nil {
		c, _, err = ip.runChunk(mod.Top, ip.Globals)
	} else {
		c, _, err = ip.execStmts(prog.Body, ip.Globals)
	}
	if err != nil {
		return err
	}
	if c == ctrlBreak || c == ctrlContinue {
		return &RuntimeError{Msg: "break/continue outside loop"}
	}
	return nil
}

func (ip *Interp) execStmts(stmts []ast.Stmt, env *Env) (ctrlKind, Value, error) {
	// hoist function declarations (JS semantics; corpus apps rely on it)
	for _, s := range stmts {
		if fd, ok := s.(*ast.FuncDecl); ok {
			ip.defineVar(env, fd.Name, fd.Ref, ip.withCode(NewFunction(fd.Name, fd.Fn, env)), false)
		}
	}
	for _, s := range stmts {
		c, v, err := ip.execStmt(s, env)
		if err != nil || c != ctrlNormal {
			return c, v, err
		}
	}
	return ctrlNormal, undef, nil
}

func (ip *Interp) execStmt(s ast.Stmt, env *Env) (ctrlKind, Value, error) {
	if err := ip.step(s.Pos()); err != nil {
		return ctrlNormal, nil, err
	}
	switch x := s.(type) {
	case *ast.VarDecl:
		for _, d := range x.Decls {
			var v Value = undef
			if d.Init != nil {
				var err error
				v, err = ip.eval(d.Init, env)
				if err != nil {
					return ctrlNormal, nil, err
				}
			}
			ip.defineVar(env, d.Name, d.Ref, v, x.Kind == ast.DeclConst)
		}
		return ctrlNormal, undef, nil
	case *ast.FuncDecl:
		// already hoisted
		return ctrlNormal, undef, nil
	case *ast.ExprStmt:
		_, err := ip.eval(x.X, env)
		return ctrlNormal, undef, err
	case *ast.ReturnStmt:
		var v Value = undef
		if x.Value != nil {
			var err error
			v, err = ip.eval(x.Value, env)
			if err != nil {
				return ctrlNormal, nil, err
			}
		}
		return ctrlReturn, v, nil
	case *ast.IfStmt:
		cond, err := ip.eval(x.Cond, env)
		if err != nil {
			return ctrlNormal, nil, err
		}
		// branch bodies run directly in the surrounding environment; a
		// block body creates its own scope in the BlockStmt case below
		if Truthy(cond) {
			return ip.execStmt(x.Then, env)
		}
		if x.Else != nil {
			return ip.execStmt(x.Else, env)
		}
		return ctrlNormal, undef, nil
	case *ast.BlockStmt:
		return ip.execStmts(x.Body, newEnvFor(env, x.Scope))
	case *ast.ForStmt:
		loopEnv := newEnvFor(env, x.Scope)
		if x.Init != nil {
			if c, v, err := ip.execStmt(x.Init, loopEnv); err != nil || c != ctrlNormal {
				return c, v, err
			}
		}
		// a let/const header gets a fresh binding per iteration, so
		// closures created in the body capture that iteration's value
		perIter := false
		if vd, isDecl := x.Init.(*ast.VarDecl); isDecl && vd.Kind != ast.DeclVar {
			perIter = true
		}
		for {
			if err := ip.step(x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
			if x.Cond != nil {
				cond, err := ip.eval(x.Cond, loopEnv)
				if err != nil {
					return ctrlNormal, nil, err
				}
				if !Truthy(cond) {
					break
				}
			}
			c, v, err := ip.execStmt(x.Body, loopEnv)
			if err != nil {
				return ctrlNormal, nil, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v, nil
			}
			if perIter {
				// copy-before-post: the update expression mutates the next
				// iteration's binding, leaving captured ones untouched
				loopEnv = loopEnv.IterCopy()
			}
			if x.Post != nil {
				if _, err := ip.eval(x.Post, loopEnv); err != nil {
					return ctrlNormal, nil, err
				}
			}
		}
		return ctrlNormal, undef, nil
	case *ast.ForInStmt:
		obj, err := ip.eval(x.Object, env)
		if err != nil {
			return ctrlNormal, nil, err
		}
		items, err := ip.iterationItems(obj, x.Kind, x.Pos())
		if err != nil {
			return ctrlNormal, nil, err
		}
		for _, item := range items {
			if err := ip.step(x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
			iterEnv := env
			if x.Decl {
				// fresh binding each iteration; const loop vars are const
				iterEnv = newEnvFor(env, x.Scope)
				ip.defineVar(iterEnv, x.Name, x.Ref, item, x.DeclKind == ast.DeclConst)
			} else if err := ip.assignIdent(iterEnv, x.Name, x.Ref, item); err != nil {
				return ctrlNormal, nil, &RuntimeError{Msg: err.Error(), Pos: x.Pos()}
			}
			c, v, err := ip.execStmt(x.Body, iterEnv)
			if err != nil {
				return ctrlNormal, nil, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v, nil
			}
		}
		return ctrlNormal, undef, nil
	case *ast.WhileStmt:
		for {
			if err := ip.step(x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
			cond, err := ip.eval(x.Cond, env)
			if err != nil {
				return ctrlNormal, nil, err
			}
			if !Truthy(cond) {
				break
			}
			c, v, err := ip.execStmt(x.Body, env)
			if err != nil {
				return ctrlNormal, nil, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v, nil
			}
		}
		return ctrlNormal, undef, nil
	case *ast.DoWhileStmt:
		for {
			if err := ip.step(x.Pos()); err != nil {
				return ctrlNormal, nil, err
			}
			c, v, err := ip.execStmt(x.Body, env)
			if err != nil {
				return ctrlNormal, nil, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v, nil
			}
			cond, err := ip.eval(x.Cond, env)
			if err != nil {
				return ctrlNormal, nil, err
			}
			if !Truthy(cond) {
				break
			}
		}
		return ctrlNormal, undef, nil
	case *ast.BreakStmt:
		return ctrlBreak, undef, nil
	case *ast.ContinueStmt:
		return ctrlContinue, undef, nil
	case *ast.ThrowStmt:
		v, err := ip.eval(x.Value, env)
		if err != nil {
			return ctrlNormal, nil, err
		}
		return ctrlNormal, nil, &Throw{Val: v}
	case *ast.TryStmt:
		c, v, err := ip.execStmts(x.Body.Body, newEnvFor(env, x.Body.Scope))
		if err != nil {
			if th, ok := err.(*Throw); ok && x.Catch != nil {
				catchEnv := newEnvFor(env, x.Catch.Scope)
				if x.CatchVar != "" {
					ip.defineVar(catchEnv, x.CatchVar, x.CatchRef, th.Val, false)
				}
				c, v, err = ip.execStmts(x.Catch.Body, catchEnv)
			}
		}
		if x.Finally != nil {
			fc, fv, ferr := ip.execStmts(x.Finally.Body, newEnvFor(env, x.Finally.Scope))
			if ferr != nil {
				return ctrlNormal, nil, ferr
			}
			if fc != ctrlNormal {
				return fc, fv, nil
			}
		}
		return c, v, err
	case *ast.SwitchStmt:
		disc, err := ip.eval(x.Disc, env)
		if err != nil {
			return ctrlNormal, nil, err
		}
		swEnv := newEnvFor(env, x.Scope)
		matched := false
		for _, cs := range x.Cases {
			if !matched && cs.Test != nil {
				tv, err := ip.eval(cs.Test, swEnv)
				if err != nil {
					return ctrlNormal, nil, err
				}
				if !StrictEquals(disc, tv) {
					continue
				}
				matched = true
			} else if !matched {
				continue // default only matches on fallthrough pass below
			}
			c, v, err := ip.execStmts(cs.Body, swEnv)
			if err != nil {
				return ctrlNormal, nil, err
			}
			if c == ctrlBreak {
				return ctrlNormal, undef, nil
			}
			if c != ctrlNormal {
				return c, v, nil
			}
		}
		if !matched {
			// run default clause (and fall through) if present
			started := false
			for _, cs := range x.Cases {
				if cs.Test == nil {
					started = true
				}
				if !started {
					continue
				}
				c, v, err := ip.execStmts(cs.Body, swEnv)
				if err != nil {
					return ctrlNormal, nil, err
				}
				if c == ctrlBreak {
					return ctrlNormal, undef, nil
				}
				if c != ctrlNormal {
					return c, v, nil
				}
			}
		}
		return ctrlNormal, undef, nil
	case *ast.ClassDecl:
		fn := ip.makeClass(x, env)
		ip.defineVar(env, x.Name, x.Ref, fn, false)
		return ctrlNormal, undef, nil
	case *ast.EmptyStmt:
		return ctrlNormal, undef, nil
	}
	return ctrlNormal, nil, &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", s), Pos: s.Pos()}
}

func (ip *Interp) makeClass(x *ast.ClassDecl, env *Env) *Function {
	fn := &Function{
		id:      dift.NextRefID(),
		Name:    x.Name,
		Env:     env,
		IsClass: true,
		Methods: map[string]*ast.FuncLit{},
		Statics: map[string]*ast.FuncLit{},
	}
	if x.SuperClass != nil {
		if sv, err := ip.eval(x.SuperClass, env); err == nil {
			if sf, ok := sv.(*Function); ok {
				fn.Super = sf
			}
		}
	}
	for _, m := range x.Methods {
		if m.Static {
			fn.Statics[m.Name] = m.Fn
		} else {
			fn.Methods[m.Name] = m.Fn
		}
	}
	return fn
}

// iterationItems materializes the iteration sequence for for-in / for-of.
func (ip *Interp) iterationItems(obj Value, kind ast.ForInKind, pos ast.Pos) ([]Value, error) {
	obj = dift.Unwrap(obj)
	switch kind {
	case ast.ForOf:
		switch x := obj.(type) {
		case *Array:
			out := make([]Value, len(x.Elems))
			copy(out, x.Elems)
			return out, nil
		case string:
			out := make([]Value, 0, len(x))
			for _, r := range x {
				out = append(out, string(r))
			}
			return out, nil
		case *Object:
			// allow iterating objects that carry an internal element list
			if arr, ok := x.Host.(*Array); ok {
				out := make([]Value, len(arr.Elems))
				copy(out, arr.Elems)
				return out, nil
			}
		}
		return nil, &RuntimeError{Msg: fmt.Sprintf("%s is not iterable", TypeOf(obj)), Pos: pos}
	default: // ForIn: keys
		switch x := obj.(type) {
		case *Object:
			keys := x.Keys()
			out := make([]Value, len(keys))
			for i, k := range keys {
				out[i] = k
			}
			return out, nil
		case *Array:
			out := make([]Value, len(x.Elems))
			for i := range x.Elems {
				out[i] = formatNumber(float64(i))
			}
			return out, nil
		}
		return nil, nil // for-in over primitives iterates nothing
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (ip *Interp) eval(e ast.Expr, env *Env) (Value, error) {
	if err := ip.step(e.Pos()); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := ip.lookupIdent(env, x.Name, x.Ref); ok {
			return v, nil
		}
		return nil, &RuntimeError{Msg: fmt.Sprintf("%q is not defined", x.Name), Pos: x.Pos()}
	case *ast.NumberLit:
		return x.Value, nil
	case *ast.StringLit:
		return x.Value, nil
	case *ast.BoolLit:
		return x.Value, nil
	case *ast.NullLit:
		return null, nil
	case *ast.UndefinedLit:
		return undef, nil
	case *ast.ThisExpr:
		if v, ok := ip.lookupIdent(env, "this", x.Ref); ok {
			return v, nil
		}
		return undef, nil
	case *ast.TemplateLit:
		var b strings.Builder
		for i, q := range x.Quasis {
			b.WriteString(q)
			if i < len(x.Exprs) {
				v, err := ip.eval(x.Exprs[i], env)
				if err != nil {
					return nil, err
				}
				b.WriteString(ToString(v))
			}
		}
		if err := ip.alloc(int64(b.Len()), x.Pos()); err != nil {
			return nil, err
		}
		return b.String(), nil
	case *ast.ArrayLit:
		var elems []Value
		for _, el := range x.Elems {
			if sp, ok := el.(*ast.SpreadExpr); ok {
				sv, err := ip.eval(sp.X, env)
				if err != nil {
					return nil, err
				}
				if arr, ok := dift.Unwrap(sv).(*Array); ok {
					elems = append(elems, arr.Elems...)
					continue
				}
				return nil, &RuntimeError{Msg: "spread of non-array", Pos: sp.Pos()}
			}
			v, err := ip.eval(el, env)
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
		}
		if err := ip.alloc(int64(len(elems))+1, x.Pos()); err != nil {
			return nil, err
		}
		return NewArray(elems...), nil
	case *ast.ObjectLit:
		if err := ip.alloc(int64(len(x.Props))+1, x.Pos()); err != nil {
			return nil, err
		}
		o := NewObject()
		for _, prop := range x.Props {
			switch {
			case prop.Spread:
				sv, err := ip.eval(prop.Value, env)
				if err != nil {
					return nil, err
				}
				if src, ok := dift.Unwrap(sv).(*Object); ok {
					for _, k := range src.Keys() {
						pv, _ := src.GetOwn(k)
						o.Set(k, pv)
					}
				}
			case prop.Computed:
				kv, err := ip.eval(prop.KeyExpr, env)
				if err != nil {
					return nil, err
				}
				v, err := ip.eval(prop.Value, env)
				if err != nil {
					return nil, err
				}
				o.Set(ToString(kv), v)
			default:
				v, err := ip.eval(prop.Value, env)
				if err != nil {
					return nil, err
				}
				o.Set(prop.Key, v)
			}
		}
		return o, nil
	case *ast.FuncLit:
		return ip.withCode(NewFunction(x.Name, x, env)), nil
	case *ast.CallExpr:
		return ip.evalCall(x, env)
	case *ast.NewExpr:
		return ip.evalNew(x, env)
	case *ast.MemberExpr:
		obj, err := ip.eval(x.Object, env)
		if err != nil {
			return nil, err
		}
		name, err := ip.memberName(x, env)
		if err != nil {
			return nil, err
		}
		if !x.Computed && !ip.NoResolve {
			if o, isObj := dift.Unwrap(obj).(*Object); isObj {
				if v, hit := ip.icRead(x, o, name); hit {
					return v, nil
				}
			}
		}
		return ip.GetMember(obj, name, x.Pos())
	case *ast.BinaryExpr:
		l, err := ip.eval(x.Left, env)
		if err != nil {
			return nil, err
		}
		r, err := ip.eval(x.Right, env)
		if err != nil {
			return nil, err
		}
		return ip.BinaryOp(x.Op, l, r, x.Pos())
	case *ast.LogicalExpr:
		l, err := ip.eval(x.Left, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "&&":
			if !Truthy(l) {
				return l, nil
			}
		case "||":
			if Truthy(l) {
				return l, nil
			}
		case "??":
			if !IsNullish(dift.Unwrap(l)) {
				return l, nil
			}
		}
		return ip.eval(x.Right, env)
	case *ast.UnaryExpr:
		if x.Op == "delete" {
			if mem, ok := x.X.(*ast.MemberExpr); ok {
				obj, err := ip.eval(mem.Object, env)
				if err != nil {
					return nil, err
				}
				name, err := ip.memberName(mem, env)
				if err != nil {
					return nil, err
				}
				if o, ok := dift.Unwrap(obj).(*Object); ok {
					o.Delete(name)
				}
				return true, nil
			}
			return true, nil
		}
		if x.Op == "typeof" {
			// typeof of an undefined identifier does not throw
			if id, ok := x.X.(*ast.Ident); ok {
				if _, found := ip.lookupIdent(env, id.Name, id.Ref); !found {
					return "undefined", nil
				}
			}
		}
		v, err := ip.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "!":
			return !Truthy(v), nil
		case "-":
			return -ToNumber(v), nil
		case "+":
			return ToNumber(v), nil
		case "~":
			return float64(^int64(ToNumber(v))), nil
		case "typeof":
			return TypeOf(v), nil
		case "void":
			return undef, nil
		}
		return nil, &RuntimeError{Msg: "unknown unary op " + x.Op, Pos: x.Pos()}
	case *ast.UpdateExpr:
		old, err := ip.evalTarget(x.X, env, x.Pos())
		if err != nil {
			return nil, err
		}
		n := ToNumber(old)
		var next float64
		if x.Op == "++" {
			next = n + 1
		} else {
			next = n - 1
		}
		if err := ip.assignTo(x.X, next, env); err != nil {
			return nil, err
		}
		if x.Prefix {
			return next, nil
		}
		return n, nil
	case *ast.AssignExpr:
		return ip.evalAssign(x, env)
	case *ast.CondExpr:
		c, err := ip.eval(x.Cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(c) {
			return ip.eval(x.Then, env)
		}
		return ip.eval(x.Else, env)
	case *ast.SeqExpr:
		var last Value = undef
		for _, sub := range x.Exprs {
			var err error
			last, err = ip.eval(sub, env)
			if err != nil {
				return nil, err
			}
		}
		return last, nil
	case *ast.AwaitExpr:
		v, err := ip.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		return ip.ResolvePromise(v), nil
	case *ast.SpreadExpr:
		return nil, &RuntimeError{Msg: "spread in unexpected position", Pos: x.Pos()}
	}
	return nil, &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e), Pos: e.Pos()}
}

// memberName resolves the property name of a member expression.
func (ip *Interp) memberName(x *ast.MemberExpr, env *Env) (string, error) {
	if !x.Computed {
		return x.Property, nil
	}
	idx, err := ip.eval(x.Index, env)
	if err != nil {
		return "", err
	}
	return ToString(idx), nil
}

// evalTarget reads the current value of an assignable expression.
func (ip *Interp) evalTarget(e ast.Expr, env *Env, pos ast.Pos) (Value, error) {
	switch t := e.(type) {
	case *ast.Ident:
		if v, ok := ip.lookupIdent(env, t.Name, t.Ref); ok {
			return v, nil
		}
		return undef, nil
	case *ast.MemberExpr:
		obj, err := ip.eval(t.Object, env)
		if err != nil {
			return nil, err
		}
		name, err := ip.memberName(t, env)
		if err != nil {
			return nil, err
		}
		return ip.GetMember(obj, name, pos)
	}
	return nil, &RuntimeError{Msg: "invalid assignment target", Pos: pos}
}

func (ip *Interp) evalAssign(x *ast.AssignExpr, env *Env) (Value, error) {
	var newVal Value
	if x.Op == "=" {
		v, err := ip.eval(x.Value, env)
		if err != nil {
			return nil, err
		}
		newVal = v
	} else if x.Op == "&&=" || x.Op == "||=" || x.Op == "??=" {
		old, err := ip.evalTarget(x.Target, env, x.Pos())
		if err != nil {
			return nil, err
		}
		shortCircuit := false
		switch x.Op {
		case "&&=":
			shortCircuit = !Truthy(old)
		case "||=":
			shortCircuit = Truthy(old)
		case "??=":
			shortCircuit = !IsNullish(dift.Unwrap(old))
		}
		if shortCircuit {
			return old, nil
		}
		v, err := ip.eval(x.Value, env)
		if err != nil {
			return nil, err
		}
		newVal = v
	} else {
		old, err := ip.evalTarget(x.Target, env, x.Pos())
		if err != nil {
			return nil, err
		}
		rhs, err := ip.eval(x.Value, env)
		if err != nil {
			return nil, err
		}
		op := strings.TrimSuffix(x.Op, "=")
		v, err := ip.BinaryOp(op, old, rhs, x.Pos())
		if err != nil {
			return nil, err
		}
		newVal = v
	}
	if err := ip.assignTo(x.Target, newVal, env); err != nil {
		return nil, err
	}
	return newVal, nil
}

func (ip *Interp) assignTo(target ast.Expr, v Value, env *Env) error {
	switch t := target.(type) {
	case *ast.Ident:
		if err := ip.assignIdent(env, t.Name, t.Ref, v); err != nil {
			return &RuntimeError{Msg: err.Error(), Pos: target.Pos()}
		}
		return nil
	case *ast.MemberExpr:
		obj, err := ip.eval(t.Object, env)
		if err != nil {
			return err
		}
		name, err := ip.memberName(t, env)
		if err != nil {
			return err
		}
		return ip.SetMember(obj, name, v, t.Pos())
	}
	return &RuntimeError{Msg: "invalid assignment target", Pos: target.Pos()}
}

// newEnvFor creates the environment for a statically-resolved scope, or a
// plain map-based one when the resolver left it un-annotated.
func newEnvFor(parent *Env, scope *ast.ScopeInfo) *Env {
	if scope == nil {
		return NewEnv(parent)
	}
	return NewScopeEnv(parent, scope)
}

// defineVar declares name in env, going through the resolved slot when the
// declaration carries one.
func (ip *Interp) defineVar(env *Env, name string, ref *ast.VarRef, v Value, isConst bool) {
	if name == "__t" {
		// any user-level (re)declaration of the tracker binding kills the
		// fused-opcode fast path permanently for this interpreter
		ip.tauRebound = true
	}
	if ref != nil && env.DefineSlot(ref.Slot, v, isConst) {
		ip.envSlotWrites++
		return
	}
	ip.envDynWrites++
	env.Define(name, v, isConst)
}

// lookupIdent reads a variable, through the resolved slot coordinate when
// available and bound, falling back to the dynamic map walk.
func (ip *Interp) lookupIdent(env *Env, name string, ref *ast.VarRef) (Value, bool) {
	if ref != nil {
		if v, ok := env.SlotRead(ref.Depth, ref.Slot); ok {
			ip.envSlotReads++
			return v, true
		}
	}
	ip.envDynReads++
	return env.Lookup(name)
}

// assignIdent writes a variable through the resolved coordinate when
// available, falling back to the dynamic walk. An undeclared name becomes
// an implicit global — the single sloppy-mode semantics shared by plain
// assignments, compound assignments, update expressions and undeclared
// for-in/of loop variables.
func (ip *Interp) assignIdent(env *Env, name string, ref *ast.VarRef, v Value) error {
	if name == "__t" {
		ip.tauRebound = true
	}
	if ref != nil {
		done, err := env.SlotAssign(ref.Depth, ref.Slot, v)
		if err != nil {
			return err
		}
		if done {
			ip.envSlotWrites++
			return nil
		}
	}
	ip.envDynWrites++
	if err := env.Assign(name, v); err != nil {
		if errors.Is(err, ErrNotDefined) {
			// implicit global definition (sloppy-mode JS; some corpus
			// apps assign undeclared names)
			env.Global().Define(name, v, false)
			return nil
		}
		return err
	}
	return nil
}

// BinaryOp evaluates a binary operator with JS-lite semantics. Tracked
// operands are transparently unwrapped (the uninstrumented path does not
// propagate labels — that is precisely what τ.binaryOp instrumentation
// adds).
func (ip *Interp) BinaryOp(op string, l, r Value, pos ast.Pos) (Value, error) {
	lu, ru := dift.Unwrap(l), dift.Unwrap(r)
	switch op {
	case "+":
		// string concatenation is the classic memory amplifier (s = s + s
		// doubles per iteration); charge the result length
		if ls, ok := lu.(string); ok {
			rs := ToString(ru)
			if err := ip.alloc(int64(len(ls)+len(rs)), pos); err != nil {
				return nil, err
			}
			return ls + rs, nil
		}
		if rs, ok := ru.(string); ok {
			ls := ToString(lu)
			if err := ip.alloc(int64(len(ls)+len(rs)), pos); err != nil {
				return nil, err
			}
			return ls + rs, nil
		}
		if _, ok := lu.(*Array); ok {
			return ToString(lu) + ToString(ru), nil
		}
		if _, ok := lu.(*Object); ok {
			return ToString(lu) + ToString(ru), nil
		}
		return ToNumber(lu) + ToNumber(ru), nil
	case "-":
		return ToNumber(lu) - ToNumber(ru), nil
	case "*":
		return ToNumber(lu) * ToNumber(ru), nil
	case "/":
		return ToNumber(lu) / ToNumber(ru), nil
	case "%":
		return math.Mod(ToNumber(lu), ToNumber(ru)), nil
	case "**":
		return math.Pow(ToNumber(lu), ToNumber(ru)), nil
	case "==":
		return LooseEquals(lu, ru), nil
	case "!=":
		return !LooseEquals(lu, ru), nil
	case "===":
		return StrictEquals(lu, ru), nil
	case "!==":
		return !StrictEquals(lu, ru), nil
	case "<", ">", "<=", ">=":
		if ls, lok := lu.(string); lok {
			if rs, rok := ru.(string); rok {
				switch op {
				case "<":
					return ls < rs, nil
				case ">":
					return ls > rs, nil
				case "<=":
					return ls <= rs, nil
				default:
					return ls >= rs, nil
				}
			}
		}
		ln, rn := ToNumber(lu), ToNumber(ru)
		switch op {
		case "<":
			return ln < rn, nil
		case ">":
			return ln > rn, nil
		case "<=":
			return ln <= rn, nil
		default:
			return ln >= rn, nil
		}
	case "&":
		return float64(int64(ToNumber(lu)) & int64(ToNumber(ru))), nil
	case "|":
		return float64(int64(ToNumber(lu)) | int64(ToNumber(ru))), nil
	case "^":
		return float64(int64(ToNumber(lu)) ^ int64(ToNumber(ru))), nil
	case "<<":
		return float64(int64(ToNumber(lu)) << (int64(ToNumber(ru)) & 63)), nil
	case ">>", ">>>":
		return float64(int64(ToNumber(lu)) >> (int64(ToNumber(ru)) & 63)), nil
	case "in":
		if o, ok := ru.(*Object); ok {
			_, found := o.Get(ToString(lu))
			return found, nil
		}
		return false, nil
	case "instanceof":
		if fn, ok := ru.(*Function); ok {
			if o, isObj := lu.(*Object); isObj {
				return o.Class == fn.Name, nil
			}
		}
		return false, nil
	}
	return nil, &RuntimeError{Msg: "unknown binary op " + op, Pos: pos}
}
