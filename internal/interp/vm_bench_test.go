package interp

import (
	"testing"

	"turnstile/internal/parser"
	"turnstile/internal/resolve"
)

// Go-benchmark twins of the harness microbench workloads, for profiling
// the VM dispatch loop against the slot-env tree-walker in isolation
// (`go test -bench VM -cpuprofile ...`). The authoritative speedup
// numbers live in BENCH_vm.json via `turnstile-bench -benchvm`.

const benchIdentSrc = `
function spin(n) {
  let a = 1, b = 2, c = 3, d = 4;
  let s = 0;
  for (let i = 0; i < n; i = i + 1) {
    s = s + a + b - c + d + i;
    a = b;
    b = c;
    c = d;
    d = (s % 7) + 1;
  }
  return s;
}
var out = 0;
for (let r = 0; r < 4; r = r + 1) {
  out = out + spin(400);
}
`

const benchCallSrc = `
function add(a, b) { return a + b; }
function mul(a, b) { return a * b; }
var counter = {
  n: 0,
  step: function (d) { this.n = this.n + d; return this.n; }
};
function work(n) {
  let s = 0;
  for (let i = 0; i < n; i = i + 1) {
    s = add(s, mul(i, 3));
    s = add(s, counter.step(1));
  }
  return s;
}
var out = 0;
for (let r = 0; r < 3; r = r + 1) {
  out = out + work(300);
}
`

func benchRun(b *testing.B, src string, noVM bool) {
	b.Helper()
	prog, err := parser.Parse("bench.js", src)
	if err != nil {
		b.Fatal(err)
	}
	resolve.Resolve(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := New()
		ip.NoVM = noVM
		if err := ip.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMIdentHeavy(b *testing.B)     { benchRun(b, benchIdentSrc, false) }
func BenchmarkWalkerIdentHeavy(b *testing.B) { benchRun(b, benchIdentSrc, true) }
func BenchmarkVMCallHeavy(b *testing.B)      { benchRun(b, benchCallSrc, false) }
func BenchmarkWalkerCallHeavy(b *testing.B)  { benchRun(b, benchCallSrc, true) }
