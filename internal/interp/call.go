package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/dift"
	"turnstile/internal/vm"
)

// evalCall evaluates a call expression, routing method calls so `this` is
// bound to the receiver.
func (ip *Interp) evalCall(x *ast.CallExpr, env *Env) (Value, error) {
	args, err := ip.evalArgs(x.Args, env)
	if err != nil {
		return nil, err
	}
	if mem, ok := x.Callee.(*ast.MemberExpr); ok {
		recv, err := ip.eval(mem.Object, env)
		if err != nil {
			return nil, err
		}
		name, err := ip.memberName(mem, env)
		if err != nil {
			return nil, err
		}
		if !mem.Computed && !ip.NoResolve {
			if o, isObj := dift.Unwrap(recv).(*Object); isObj {
				if fn, hit := ip.icMethod(mem, o, name); hit {
					return ip.CallFunction(fn, o, args, x.Pos())
				}
			}
		}
		return ip.CallMethod(recv, name, args, x.Pos())
	}
	fn, err := ip.eval(x.Callee, env)
	if err != nil {
		return nil, err
	}
	return ip.CallFunction(fn, undef, args, x.Pos())
}

func (ip *Interp) evalArgs(exprs []ast.Expr, env *Env) ([]Value, error) {
	var args []Value
	for _, a := range exprs {
		if sp, ok := a.(*ast.SpreadExpr); ok {
			sv, err := ip.eval(sp.X, env)
			if err != nil {
				return nil, err
			}
			if arr, ok := dift.Unwrap(sv).(*Array); ok {
				args = append(args, arr.Elems...)
				continue
			}
			return nil, &RuntimeError{Msg: "spread of non-array argument", Pos: sp.Pos()}
		}
		v, err := ip.eval(a, env)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

// CallMethod invokes recv[name](args...), covering builtin methods on
// strings, arrays, objects and functions.
func (ip *Interp) CallMethod(recv Value, name string, args []Value, pos ast.Pos) (Value, error) {
	recvU := dift.Unwrap(recv)
	switch r := recvU.(type) {
	case string:
		return ip.stringMethod(r, name, args, pos)
	case float64:
		return ip.numberMethod(r, name, args, pos)
	case *Array:
		return ip.arrayMethod(r, name, args, pos)
	case *Object:
		if v, ok := r.Get(name); ok {
			return ip.CallFunction(v, r, args, pos)
		}
		return nil, &RuntimeError{Msg: fmt.Sprintf("%s.%s is not a function", r.Class, name), Pos: pos}
	case *Function:
		// static class methods and function-object properties
		if r.IsClass {
			if fl, ok := r.Statics[name]; ok {
				return ip.invokeFuncLit(fl, r.Env, r, args, pos)
			}
		}
		switch name {
		case "call":
			this := Value(undef)
			rest := args
			if len(args) > 0 {
				this = args[0]
				rest = args[1:]
			}
			return ip.CallFunction(r, this, rest, pos)
		case "apply":
			this := Value(undef)
			var rest []Value
			if len(args) > 0 {
				this = args[0]
			}
			if len(args) > 1 {
				if arr, ok := dift.Unwrap(args[1]).(*Array); ok {
					rest = arr.Elems
				}
			}
			return ip.CallFunction(r, this, rest, pos)
		case "bind":
			this := Value(undef)
			if len(args) > 0 {
				this = args[0]
			}
			bound := *r
			bound.id = dift.NextRefID()
			bound.This = this
			return &bound, nil
		}
		if v, ok := r.Get(name); ok {
			return ip.CallFunction(v, r, args, pos)
		}
		return nil, &RuntimeError{Msg: fmt.Sprintf("%s.%s is not a function", r.Name, name), Pos: pos}
	case *HostFunc:
		if v, ok := r.Get(name); ok {
			return ip.CallFunction(v, r, args, pos)
		}
		return nil, &RuntimeError{Msg: fmt.Sprintf("%s.%s is not a function", r.Name, name), Pos: pos}
	}
	return nil, &RuntimeError{Msg: fmt.Sprintf("cannot call method %q of %s", name, TypeOf(recvU)), Pos: pos}
}

// CallFunction invokes a callable value with an explicit this binding.
func (ip *Interp) CallFunction(fn Value, this Value, args []Value, pos ast.Pos) (Value, error) {
	switch f := dift.Unwrap(fn).(type) {
	case *Function:
		if f.IsClass {
			return nil, &RuntimeError{Msg: fmt.Sprintf("class %s cannot be called without new", f.Name), Pos: pos}
		}
		if f.This != nil {
			this = f.This
		}
		return ip.invokeFunc(f.Decl, f.Code, f.Env, this, args, pos)
	case *HostFunc:
		return f.Fn(ip, this, args)
	}
	return nil, &RuntimeError{Msg: fmt.Sprintf("%s is not a function", TypeOf(fn)), Pos: pos}
}

func (ip *Interp) invokeFuncLit(decl *ast.FuncLit, closure *Env, this Value, args []Value, pos ast.Pos) (Value, error) {
	return ip.invokeFunc(decl, ip.codeFor(decl), closure, this, args, pos)
}

// invokeFunc is the shared call prologue (budget charges, depth caps,
// this/arguments/param binding); the body then runs either as bytecode
// (code non-nil, normally taken straight off Function.Code so the hot
// path pays no registry lookup) or through the tree-walker.
func (ip *Interp) invokeFunc(decl *ast.FuncLit, code *vm.Chunk, closure *Env, this Value, args []Value, pos ast.Pos) (Value, error) {
	if err := ip.step(pos); err != nil {
		return nil, err
	}
	// Cooperative call-depth cap: a Go stack overflow is unrecoverable, so
	// this must trip before MiniJS recursion can reach it. The hard cap
	// applies even with no Guard; a Guard with a tighter MaxDepth trips
	// first with a typed BudgetError.
	ip.callDepth++
	if g := ip.Guard; g != nil {
		// guarded path: defers keep depth and guard frames balanced even
		// when a contained panic unwinds through the call
		defer func() { ip.callDepth-- }()
		if err := g.Enter(""); err != nil {
			ip.siteOnTrip(pos)
			return nil, err
		}
		defer g.Exit()
		return ip.invokeBody(decl, code, closure, this, args, pos)
	}
	// unguarded path: explicit decrement — two deferred frames per call
	// are measurable on call-heavy code, and without a Guard a panic
	// abandons the interpreter anyway (guard.Contain discards it)
	v, err := ip.invokeBody(decl, code, closure, this, args, pos)
	ip.callDepth--
	return v, err
}

func (ip *Interp) invokeBody(decl *ast.FuncLit, code *vm.Chunk, closure *Env, this Value, args []Value, pos ast.Pos) (Value, error) {
	if ip.MaxCallDepth > 0 && ip.callDepth > ip.MaxCallDepth {
		return nil, &RuntimeError{
			Msg: fmt.Sprintf("call stack exceeded %d frames (possible unbounded recursion)", ip.MaxCallDepth),
			Pos: pos,
		}
	}
	vmBody := code != nil && !ip.NoVM
	// compiled bodies that provably cannot capture their environment run
	// in a pooled env recycled after the call (two allocations saved per
	// call on closure-free hot paths)
	pooledEnv := vmBody && code.NoCapture && decl.Scope != nil
	var env *Env
	if pooledEnv {
		env = ip.getCallEnv(closure, decl.Scope)
	} else {
		env = newEnvFor(closure, decl.Scope)
	}
	// arrow functions inherit `this` lexically: do not rebind
	if !decl.Arrow {
		// resolver slot layout: non-arrow scopes place this/arguments at
		// slots 0 and 1; DefineSlot falls back for unresolved programs
		if !env.DefineSlot(0, this, false) {
			env.Define("this", this, false)
		}
		// the arguments array is only materialized when the compiler saw
		// an `arguments` identifier somewhere in the body (tree-walked
		// bodies always materialize: no compile-time scan ran)
		if !vmBody || code.NeedsArguments {
			argsArr := NewArray(args...)
			if !env.DefineSlot(1, argsArr, false) {
				env.Define("arguments", argsArr, false)
			}
		}
	}
	for i, p := range decl.Params {
		var v Value
		switch {
		case p.Rest:
			rest := NewArray()
			if i < len(args) {
				rest.Elems = append(rest.Elems, args[i:]...)
			}
			v = rest
		case i < len(args):
			v = args[i]
		default:
			v = undef
		}
		if p.Ref == nil || !env.DefineSlot(p.Ref.Slot, v, false) {
			env.Define(p.Name, v, false)
		}
	}
	if vmBody {
		c, v, err := ip.runChunk(code, env)
		if pooledEnv {
			ip.putCallEnv(env)
		}
		if err != nil {
			return nil, err
		}
		if c == ctrlReturn {
			return v, nil
		}
		return undef, nil
	}
	if decl.ExprRet != nil {
		return ip.eval(decl.ExprRet, env)
	}
	c, v, err := ip.execStmts(decl.Body.Body, env)
	if err != nil {
		return nil, err
	}
	if c == ctrlReturn {
		return v, nil
	}
	return undef, nil
}

// evalNew constructs an object: user classes, constructor functions (with
// prototype chains) and host constructors (Promise, Error, ...).
func (ip *Interp) evalNew(x *ast.NewExpr, env *Env) (Value, error) {
	callee, err := ip.eval(x.Callee, env)
	if err != nil {
		return nil, err
	}
	args, err := ip.evalArgs(x.Args, env)
	if err != nil {
		return nil, err
	}
	return ip.Construct(callee, args, x.Pos())
}

// Construct implements `new callee(args...)`.
func (ip *Interp) Construct(callee Value, args []Value, pos ast.Pos) (Value, error) {
	switch f := dift.Unwrap(callee).(type) {
	case *Function:
		obj := NewObject()
		obj.Class = f.Name
		if f.IsClass {
			obj.Proto = ip.classProto(f)
			// the constructor may be inherited from a superclass
			for cls := f; cls != nil; cls = cls.Super {
				if ctor, ok := cls.Methods["constructor"]; ok {
					if _, err := ip.invokeFuncLit(ctor, cls.Env, obj, args, pos); err != nil {
						return nil, err
					}
					break
				}
			}
			return obj, nil
		}
		// constructor function: instance inherits Foo.prototype
		obj.Proto = f.Prototype()
		ret, err := ip.invokeFuncLit(f.Decl, f.Env, obj, args, pos)
		if err != nil {
			return nil, err
		}
		if ro, ok := dift.Unwrap(ret).(*Object); ok {
			return ro, nil
		}
		return obj, nil
	case *HostFunc:
		return f.Fn(ip, undef, args)
	}
	return nil, &RuntimeError{Msg: fmt.Sprintf("%s is not a constructor", TypeOf(callee)), Pos: pos}
}

// classProto builds (and caches on the class) the prototype object holding
// the class methods, linking superclass prototypes.
func (ip *Interp) classProto(f *Function) *Object {
	if p, ok := f.Get("__proto_cache__"); ok {
		if po, isObj := p.(*Object); isObj {
			return po
		}
	}
	proto := NewObject()
	if f.Super != nil {
		proto.Proto = ip.classProto(f.Super)
	}
	for name, fl := range f.Methods {
		if name == "constructor" {
			continue
		}
		proto.Set(name, ip.withCode(NewFunction(name, fl, f.Env)))
	}
	f.Set("__proto_cache__", proto)
	return proto
}

// GetMember reads obj[name] with builtin semantics for every value kind.
func (ip *Interp) GetMember(obj Value, name string, pos ast.Pos) (Value, error) {
	objU := dift.Unwrap(obj)
	switch o := objU.(type) {
	case *Object:
		if v, ok := o.Get(name); ok {
			// methods read via the prototype chain bind their receiver so
			// extracted handlers (cb = obj.handler) keep working
			if f, isFn := v.(*Function); isFn && f.This == nil {
				if _, own := o.GetOwn(name); !own {
					bound := *f
					bound.id = dift.NextRefID()
					bound.This = o
					return &bound, nil
				}
			}
			return v, nil
		}
		if name == "length" {
			if arr, ok := o.Host.(*Array); ok {
				return float64(len(arr.Elems)), nil
			}
		}
		return undef, nil
	case *Array:
		if name == "length" {
			return float64(len(o.Elems)), nil
		}
		if idx, err := strconv.Atoi(name); err == nil {
			if idx >= 0 && idx < len(o.Elems) {
				return o.Elems[idx], nil
			}
			return undef, nil
		}
		return undef, nil
	case string:
		if name == "length" {
			return float64(len(o)), nil
		}
		if idx, err := strconv.Atoi(name); err == nil {
			if idx >= 0 && idx < len(o) {
				return string(o[idx]), nil
			}
			return undef, nil
		}
		return undef, nil
	case *Function:
		if name == "prototype" {
			return o.Prototype(), nil
		}
		if name == "name" {
			return o.Name, nil
		}
		if v, ok := o.Get(name); ok {
			return v, nil
		}
		return undef, nil
	case *HostFunc:
		if name == "name" {
			return o.Name, nil
		}
		if v, ok := o.Get(name); ok {
			return v, nil
		}
		return undef, nil
	case Undefined, Null:
		return nil, &Throw{Val: ip.MakeError("TypeError",
			fmt.Sprintf("cannot read property %q of %s (at %s)", name, ToString(objU), pos))}
	}
	return undef, nil
}

// SetMember writes obj[name] = v.
func (ip *Interp) SetMember(obj Value, name string, v Value, pos ast.Pos) error {
	objU := dift.Unwrap(obj)
	switch o := objU.(type) {
	case *Object:
		o.Set(name, v)
		return nil
	case *Array:
		if idx, err := strconv.Atoi(name); err == nil && idx >= 0 {
			for len(o.Elems) <= idx {
				o.Elems = append(o.Elems, undef)
			}
			o.Elems[idx] = v
			return nil
		}
		if name == "length" {
			n := int(ToNumber(v))
			if n < len(o.Elems) {
				o.Elems = o.Elems[:n]
			}
			return nil
		}
		return nil
	case *Function:
		o.Set(name, v)
		return nil
	case Undefined, Null:
		return &Throw{Val: ip.MakeError("TypeError",
			fmt.Sprintf("cannot set property %q of %s (at %s)", name, ToString(objU), pos))}
	}
	// writing properties on primitives is a silent no-op in sloppy JS
	return nil
}

// MakeError builds an Error-like object.
func (ip *Interp) MakeError(class, message string) *Object {
	o := NewObject()
	o.Class = class
	o.Set("name", class)
	o.Set("message", message)
	return o
}

// ---------------------------------------------------------------------------
// String / number / array builtin methods

func (ip *Interp) stringMethod(s string, name string, args []Value, pos ast.Pos) (Value, error) {
	arg := func(i int) Value {
		if i < len(args) {
			return dift.Unwrap(args[i])
		}
		return undef
	}
	switch name {
	case "split":
		sep, ok := arg(0).(string)
		if !ok {
			return NewArray(s), nil
		}
		var parts []string
		if sep == "" {
			for _, r := range s {
				parts = append(parts, string(r))
			}
		} else {
			parts = strings.Split(s, sep)
		}
		arr := NewArray()
		for _, p := range parts {
			arr.Elems = append(arr.Elems, p)
		}
		return arr, nil
	case "toUpperCase":
		return strings.ToUpper(s), nil
	case "toLowerCase":
		return strings.ToLower(s), nil
	case "trim":
		return strings.TrimSpace(s), nil
	case "indexOf":
		return float64(strings.Index(s, ToString(arg(0)))), nil
	case "lastIndexOf":
		return float64(strings.LastIndex(s, ToString(arg(0)))), nil
	case "includes":
		return strings.Contains(s, ToString(arg(0))), nil
	case "startsWith":
		return strings.HasPrefix(s, ToString(arg(0))), nil
	case "endsWith":
		return strings.HasSuffix(s, ToString(arg(0))), nil
	case "slice", "substring":
		start, end := sliceRange(len(s), args, name == "slice")
		return s[start:end], nil
	case "substr":
		start := int(ToNumber(arg(0)))
		if start < 0 {
			start = max(0, len(s)+start)
		}
		start = min(start, len(s))
		length := len(s) - start
		if len(args) > 1 {
			length = min(length, int(ToNumber(arg(1))))
		}
		return s[start : start+max(0, length)], nil
	case "charAt":
		i := int(ToNumber(arg(0)))
		if i < 0 || i >= len(s) {
			return "", nil
		}
		return string(s[i]), nil
	case "charCodeAt":
		i := int(ToNumber(arg(0)))
		if i < 0 || i >= len(s) {
			return math.NaN(), nil
		}
		return float64(s[i]), nil
	case "replace":
		old := ToString(arg(0))
		return strings.Replace(s, old, ToString(arg(1)), 1), nil
	case "replaceAll":
		return strings.ReplaceAll(s, ToString(arg(0)), ToString(arg(1))), nil
	case "repeat":
		n := int(ToNumber(arg(0)))
		if n < 0 || n > 1<<20 {
			return nil, &Throw{Val: ip.MakeError("RangeError", "invalid repeat count")}
		}
		if err := ip.alloc(int64(len(s))*int64(n), pos); err != nil {
			return nil, err
		}
		return strings.Repeat(s, n), nil
	case "padStart":
		width := int(ToNumber(arg(0)))
		if err := ip.alloc(int64(max(0, width-len(s))), pos); err != nil {
			return nil, err
		}
		pad := " "
		if p, ok := arg(1).(string); ok && p != "" {
			pad = p
		}
		for len(s) < width {
			s = pad + s
		}
		return s, nil
	case "concat":
		var b strings.Builder
		b.WriteString(s)
		for _, a := range args {
			b.WriteString(ToString(a))
		}
		if err := ip.alloc(int64(b.Len()), pos); err != nil {
			return nil, err
		}
		return b.String(), nil
	case "toString":
		return s, nil
	case "match", "search":
		// regex is out of scope for MiniJS; substring match
		if strings.Contains(s, ToString(arg(0))) {
			return NewArray(ToString(arg(0))), nil
		}
		return null, nil
	}
	return nil, &RuntimeError{Msg: fmt.Sprintf("string has no method %q", name), Pos: pos}
}

func (ip *Interp) numberMethod(n float64, name string, args []Value, pos ast.Pos) (Value, error) {
	switch name {
	case "toFixed":
		digits := 0
		if len(args) > 0 {
			digits = int(ToNumber(args[0]))
		}
		return strconv.FormatFloat(n, 'f', digits, 64), nil
	case "toString":
		return formatNumber(n), nil
	}
	return nil, &RuntimeError{Msg: fmt.Sprintf("number has no method %q", name), Pos: pos}
}

func (ip *Interp) arrayMethod(a *Array, name string, args []Value, pos ast.Pos) (Value, error) {
	arg := func(i int) Value {
		if i < len(args) {
			return args[i]
		}
		return undef
	}
	callCB := func(cb Value, el Value, i int) (Value, error) {
		return ip.CallFunction(cb, undef, []Value{el, float64(i), a}, pos)
	}
	switch name {
	case "push":
		if err := ip.alloc(int64(len(args)), pos); err != nil {
			return nil, err
		}
		a.Elems = append(a.Elems, args...)
		return float64(len(a.Elems)), nil
	case "pop":
		if len(a.Elems) == 0 {
			return undef, nil
		}
		v := a.Elems[len(a.Elems)-1]
		a.Elems = a.Elems[:len(a.Elems)-1]
		return v, nil
	case "shift":
		if len(a.Elems) == 0 {
			return undef, nil
		}
		v := a.Elems[0]
		a.Elems = a.Elems[1:]
		return v, nil
	case "unshift":
		if err := ip.alloc(int64(len(args)), pos); err != nil {
			return nil, err
		}
		a.Elems = append(append([]Value{}, args...), a.Elems...)
		return float64(len(a.Elems)), nil
	case "map":
		out := NewArray()
		for i, el := range a.Elems {
			v, err := callCB(arg(0), el, i)
			if err != nil {
				return nil, err
			}
			out.Elems = append(out.Elems, v)
		}
		return out, nil
	case "filter":
		out := NewArray()
		for i, el := range a.Elems {
			v, err := callCB(arg(0), el, i)
			if err != nil {
				return nil, err
			}
			if Truthy(v) {
				out.Elems = append(out.Elems, el)
			}
		}
		return out, nil
	case "forEach":
		for i, el := range a.Elems {
			if _, err := callCB(arg(0), el, i); err != nil {
				return nil, err
			}
		}
		return undef, nil
	case "reduce":
		var acc Value
		start := 0
		if len(args) > 1 {
			acc = args[1]
		} else {
			if len(a.Elems) == 0 {
				return nil, &Throw{Val: ip.MakeError("TypeError", "reduce of empty array with no initial value")}
			}
			acc = a.Elems[0]
			start = 1
		}
		for i := start; i < len(a.Elems); i++ {
			v, err := ip.CallFunction(arg(0), undef, []Value{acc, a.Elems[i], float64(i), a}, pos)
			if err != nil {
				return nil, err
			}
			acc = v
		}
		return acc, nil
	case "find":
		for i, el := range a.Elems {
			v, err := callCB(arg(0), el, i)
			if err != nil {
				return nil, err
			}
			if Truthy(v) {
				return el, nil
			}
		}
		return undef, nil
	case "findIndex":
		for i, el := range a.Elems {
			v, err := callCB(arg(0), el, i)
			if err != nil {
				return nil, err
			}
			if Truthy(v) {
				return float64(i), nil
			}
		}
		return float64(-1), nil
	case "some":
		for i, el := range a.Elems {
			v, err := callCB(arg(0), el, i)
			if err != nil {
				return nil, err
			}
			if Truthy(v) {
				return true, nil
			}
		}
		return false, nil
	case "every":
		for i, el := range a.Elems {
			v, err := callCB(arg(0), el, i)
			if err != nil {
				return nil, err
			}
			if !Truthy(v) {
				return false, nil
			}
		}
		return true, nil
	case "join":
		sep := ","
		if len(args) > 0 {
			sep = ToString(arg(0))
		}
		parts := make([]string, len(a.Elems))
		for i, el := range a.Elems {
			if IsNullish(dift.Unwrap(el)) {
				parts[i] = ""
			} else {
				parts[i] = ToString(el)
			}
		}
		return strings.Join(parts, sep), nil
	case "indexOf":
		for i, el := range a.Elems {
			if StrictEquals(el, arg(0)) {
				return float64(i), nil
			}
		}
		return float64(-1), nil
	case "includes":
		for _, el := range a.Elems {
			if StrictEquals(el, arg(0)) {
				return true, nil
			}
		}
		return false, nil
	case "slice":
		start, end := sliceRange(len(a.Elems), args, true)
		out := NewArray()
		out.Elems = append(out.Elems, a.Elems[start:end]...)
		return out, nil
	case "splice":
		start := int(ToNumber(arg(0)))
		if start < 0 {
			start = max(0, len(a.Elems)+start)
		}
		start = min(start, len(a.Elems))
		count := len(a.Elems) - start
		if len(args) > 1 {
			count = min(count, max(0, int(ToNumber(arg(1)))))
		}
		removed := NewArray()
		removed.Elems = append(removed.Elems, a.Elems[start:start+count]...)
		rest := append([]Value{}, a.Elems[start+count:]...)
		a.Elems = append(a.Elems[:start], append(args[min(2, len(args)):], rest...)...)
		return removed, nil
	case "concat":
		out := NewArray()
		out.Elems = append(out.Elems, a.Elems...)
		for _, ag := range args {
			if arr, ok := dift.Unwrap(ag).(*Array); ok {
				out.Elems = append(out.Elems, arr.Elems...)
			} else {
				out.Elems = append(out.Elems, ag)
			}
		}
		if err := ip.alloc(int64(len(out.Elems)), pos); err != nil {
			return nil, err
		}
		return out, nil
	case "reverse":
		for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
			a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
		}
		return a, nil
	case "sort":
		var sortErr error
		cmp := arg(0)
		elems := a.Elems
		// insertion sort: stable, no closures over testing hooks
		for i := 1; i < len(elems); i++ {
			for j := i; j > 0; j-- {
				var less bool
				if IsUndefined(cmp) {
					less = ToString(elems[j]) < ToString(elems[j-1])
				} else {
					v, err := ip.CallFunction(cmp, undef, []Value{elems[j], elems[j-1]}, pos)
					if err != nil {
						sortErr = err
						break
					}
					less = ToNumber(v) < 0
				}
				if !less {
					break
				}
				elems[j], elems[j-1] = elems[j-1], elems[j]
			}
			if sortErr != nil {
				return nil, sortErr
			}
		}
		return a, nil
	case "flat":
		out := NewArray()
		for _, el := range a.Elems {
			if inner, ok := dift.Unwrap(el).(*Array); ok {
				out.Elems = append(out.Elems, inner.Elems...)
			} else {
				out.Elems = append(out.Elems, el)
			}
		}
		return out, nil
	case "toString":
		return ToString(a), nil
	}
	return nil, &RuntimeError{Msg: fmt.Sprintf("array has no method %q", name), Pos: pos}
}

// sliceRange computes [start, end) for slice/substring semantics.
func sliceRange(n int, args []Value, negFromEnd bool) (int, int) {
	start, end := 0, n
	if len(args) > 0 && !IsUndefined(dift.Unwrap(args[0])) {
		start = int(ToNumber(args[0]))
	}
	if len(args) > 1 && !IsUndefined(dift.Unwrap(args[1])) {
		end = int(ToNumber(args[1]))
	}
	norm := func(i int) int {
		if i < 0 {
			if negFromEnd {
				i += n
			} else {
				i = 0
			}
		}
		return min(max(i, 0), n)
	}
	start, end = norm(start), norm(end)
	if end < start {
		if negFromEnd {
			end = start
		} else {
			start, end = end, start
		}
	}
	return start, end
}
