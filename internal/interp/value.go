// Package interp is a tree-walking interpreter for MiniJS — the "runtime
// platform" substrate of the reproduction. It stands in for Node.js: it
// executes original and instrumented application code identically, hosts
// the stand-in I/O modules (fs, net, http, mqtt, smtp, sqlite), and wires
// the inlined DIF Tracker into instrumented applications via the __t host
// object.
package interp

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/dift"
	"turnstile/internal/vm"
)

// Value is any MiniJS runtime value:
//
//	undefined       Undefined
//	null            Null
//	number          float64
//	string          string
//	boolean         bool
//	object          *Object
//	array           *Array
//	function        *Function (user) or *HostFunc (builtin)
//	tracked value   *dift.Box (transparent wrapper around a primitive)
type Value = any

// Undefined is the undefined value.
type Undefined struct{}

// Null is the null value.
type Null struct{}

var (
	undef Value = Undefined{}
	null  Value = Null{}
)

// Object is a MiniJS object. Property insertion order is preserved for
// deterministic iteration and printing.
type Object struct {
	id    uint64
	props map[string]Value
	keys  []string
	// version counts every property write or delete; shape counts only
	// key-set changes (add/delete). The interpreter's inline caches use
	// them as invalidation guards (see ic.go). They are uint64: a
	// long-lived serve tenant could wrap a 32-bit counter in 2^32 writes
	// and re-validate a stale IC entry, so the counter must be wide enough
	// to never wrap within a process lifetime.
	version uint64
	shape   uint64
	Proto   *Object
	// Class names the constructor for diagnostics ("Object", "Error", ...).
	Class string
	// Listeners holds event callbacks registered via .on(event, cb) on
	// host I/O objects.
	Listeners map[string][]Value
	// Host carries module-internal state for host objects.
	Host any
}

// NewObject allocates an empty object.
func NewObject() *Object {
	return &Object{id: dift.NextRefID(), props: make(map[string]Value), Class: "Object"}
}

// RefID implements dift.Ref.
func (o *Object) RefID() uint64 { return o.id }

// Get returns the named property, consulting the prototype chain.
func (o *Object) Get(name string) (Value, bool) {
	for cur := o; cur != nil; cur = cur.Proto {
		if v, ok := cur.props[name]; ok {
			return v, true
		}
	}
	return undef, false
}

// GetOwn returns the named own property.
func (o *Object) GetOwn(name string) (Value, bool) {
	v, ok := o.props[name]
	return v, ok
}

// Set assigns an own property, preserving first-insertion order.
func (o *Object) Set(name string, v Value) {
	if _, exists := o.props[name]; !exists {
		o.keys = append(o.keys, name)
		o.shape++
	}
	o.version++
	o.props[name] = v
}

// Delete removes an own property.
func (o *Object) Delete(name string) {
	if _, ok := o.props[name]; !ok {
		return
	}
	o.version++
	o.shape++
	delete(o.props, name)
	for i, k := range o.keys {
		if k == name {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
}

// Keys returns own property names in insertion order.
func (o *Object) Keys() []string {
	out := make([]string, len(o.keys))
	copy(out, o.keys)
	return out
}

// Len returns the number of own properties.
func (o *Object) Len() int { return len(o.props) }

// Array is a MiniJS array.
type Array struct {
	id    uint64
	Elems []Value
}

// NewArray allocates an array with the given elements.
func NewArray(elems ...Value) *Array {
	return &Array{id: dift.NextRefID(), Elems: elems}
}

// RefID implements dift.Ref.
func (a *Array) RefID() uint64 { return a.id }

// Function is a user-defined MiniJS function or class.
type Function struct {
	id   uint64
	Name string
	Decl *ast.FuncLit
	Env  *Env
	This Value // bound receiver for methods extracted via member access

	// Code is the compiled bytecode chunk for Decl, attached at closure
	// creation when the VM is on (nil dispatches the tree-walker).
	Code *vm.Chunk

	// Class support.
	IsClass bool
	Methods map[string]*ast.FuncLit
	Statics map[string]*ast.FuncLit
	Super   *Function

	// props makes functions usable as objects (Foo.prototype = ...).
	props map[string]Value
}

// NewFunction wraps a function literal closing over env.
func NewFunction(name string, decl *ast.FuncLit, env *Env) *Function {
	return &Function{id: dift.NextRefID(), Name: name, Decl: decl, Env: env}
}

// RefID implements dift.Ref.
func (f *Function) RefID() uint64 { return f.id }

// Get returns a property of the function object (e.g. "prototype").
func (f *Function) Get(name string) (Value, bool) {
	if f.props == nil {
		return undef, false
	}
	v, ok := f.props[name]
	return v, ok
}

// Set assigns a property on the function object.
func (f *Function) Set(name string, v Value) {
	if f.props == nil {
		f.props = make(map[string]Value)
	}
	f.props[name] = v
}

// Prototype returns the function's prototype object, creating it on first
// use (supports the prototype-chain idiom the baseline analyzer handles).
func (f *Function) Prototype() *Object {
	if p, ok := f.Get("prototype"); ok {
		if po, isObj := p.(*Object); isObj {
			return po
		}
	}
	p := NewObject()
	f.Set("prototype", p)
	return p
}

// HostFunc is a builtin function implemented in Go. Like user functions it
// can carry properties (Promise.resolve, Date.now, ...).
type HostFunc struct {
	id    uint64
	Name  string
	Fn    func(ip *Interp, this Value, args []Value) (Value, error)
	props map[string]Value
}

// Get returns a property of the host function object.
func (h *HostFunc) Get(name string) (Value, bool) {
	if h.props == nil {
		return undef, false
	}
	v, ok := h.props[name]
	return v, ok
}

// Set assigns a property on the host function object.
func (h *HostFunc) Set(name string, v Value) {
	if h.props == nil {
		h.props = make(map[string]Value)
	}
	h.props[name] = v
}

// NewHostFunc wraps a Go function as a MiniJS callable.
func NewHostFunc(name string, fn func(ip *Interp, this Value, args []Value) (Value, error)) *HostFunc {
	return &HostFunc{id: dift.NextRefID(), Name: name, Fn: fn}
}

// RefID implements dift.Ref.
func (h *HostFunc) RefID() uint64 { return h.id }

// ---------------------------------------------------------------------------
// Conversions and predicates (ECMAScript-lite semantics)

// IsUndefined reports whether v is undefined.
func IsUndefined(v Value) bool { _, ok := v.(Undefined); return ok }

// IsNull reports whether v is null.
func IsNull(v Value) bool { _, ok := v.(Null); return ok }

// IsNullish reports undefined or null.
func IsNullish(v Value) bool { return IsUndefined(v) || IsNull(v) }

// Truthy implements JS boolean coercion.
func Truthy(v Value) bool {
	v = dift.Unwrap(v)
	switch x := v.(type) {
	case Undefined, Null:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	default:
		return true
	}
}

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	v = dift.Unwrap(v)
	switch v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "object"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Function, *HostFunc:
		return "function"
	default:
		return "object"
	}
}

// ToNumber implements JS numeric coercion.
func ToNumber(v Value) float64 {
	v = dift.Unwrap(v)
	switch x := v.(type) {
	case float64:
		return x
	case bool:
		if x {
			return 1
		}
		return 0
	case string:
		s := strings.TrimSpace(x)
		if s == "" {
			return 0
		}
		n, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return n
	case Null:
		return 0
	default:
		return math.NaN()
	}
}

// ToString implements JS string coercion (used by +, template literals,
// console.log).
func ToString(v Value) string {
	v = dift.Unwrap(v)
	switch x := v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return formatNumber(x)
	case string:
		return x
	case *Array:
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			if IsNullish(dift.Unwrap(el)) {
				parts[i] = ""
			} else {
				parts[i] = ToString(el)
			}
		}
		return strings.Join(parts, ",")
	case *Object:
		return "[object " + x.Class + "]"
	case *Function:
		return "function " + x.Name + "() { ... }"
	case *HostFunc:
		return "function " + x.Name + "() { [native code] }"
	default:
		return fmt.Sprintf("%v", x)
	}
}

func formatNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	a, b = dift.Unwrap(a), dift.Unwrap(b)
	switch x := a.(type) {
	case Undefined:
		return IsUndefined(b)
	case Null:
		return IsNull(b)
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	default:
		return a == b // reference identity
	}
}

// LooseEquals implements == with the common coercions.
func LooseEquals(a, b Value) bool {
	a, b = dift.Unwrap(a), dift.Unwrap(b)
	if IsNullish(a) && IsNullish(b) {
		return true
	}
	if IsNullish(a) || IsNullish(b) {
		return false
	}
	switch a.(type) {
	case float64, string, bool:
		switch b.(type) {
		case float64, string, bool:
			if sa, okA := a.(string); okA {
				if sb, okB := b.(string); okB {
					return sa == sb
				}
			}
			return ToNumber(a) == ToNumber(b)
		}
		return false
	}
	return a == b
}

// Inspect renders v for console.log: strings unquoted at top level,
// objects/arrays in literal-ish form.
func Inspect(v Value) string {
	return inspect(v, make(map[uint64]bool), true)
}

func inspect(v Value, seen map[uint64]bool, top bool) string {
	v = dift.Unwrap(v)
	switch x := v.(type) {
	case string:
		if top {
			return x
		}
		return "'" + x + "'"
	case *Array:
		if seen[x.id] {
			return "[Circular]"
		}
		seen[x.id] = true
		defer delete(seen, x.id)
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = inspect(el, seen, false)
		}
		return "[ " + strings.Join(parts, ", ") + " ]"
	case *Object:
		if seen[x.id] {
			return "[Circular]"
		}
		seen[x.id] = true
		defer delete(seen, x.id)
		keys := x.Keys()
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			pv, _ := x.GetOwn(k)
			parts = append(parts, k+": "+inspect(pv, seen, false))
		}
		return "{ " + strings.Join(parts, ", ") + " }"
	default:
		return ToString(v)
	}
}

// SortStrings is a tiny helper re-exported for host modules that need
// deterministic ordering.
func SortStrings(s []string) { sort.Strings(s) }
