package interp

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"turnstile/internal/ast"
	"turnstile/internal/parser"
	"turnstile/internal/resolve"
	"turnstile/internal/vm"
)

// The bytecode VM must be observationally identical to the tree-walker:
// same console output, same errors (message and position), same step
// counts (charge parity). These tests run every source three ways — VM
// (default), -novm tree-walk on slots, and -noresolve map walk — and
// require exact agreement.

func runVMMode(t *testing.T, src string, noVM, noResolve bool) (*Interp, error) {
	t.Helper()
	prog, err := parser.Parse("vm.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !noResolve {
		resolve.Resolve(prog)
	}
	ip := New()
	ip.NoVM = noVM
	ip.NoResolve = noResolve
	return ip, ip.Run(prog)
}

// vmTriModes asserts VM, tree-walk and map-walk agree on console output,
// error text and step count for src.
func vmTriModes(t *testing.T, src string) {
	t.Helper()
	type out struct {
		logs  []string
		err   string
		steps int64
	}
	obs := func(noVM, noResolve bool) out {
		ip, err := runVMMode(t, src, noVM, noResolve)
		o := out{logs: ip.ConsoleOut, steps: ip.Steps()}
		if err != nil {
			o.err = err.Error()
		}
		return o
	}
	vmOut := obs(false, false)
	walkOut := obs(true, false)
	mapOut := obs(true, true)
	if fmt.Sprint(vmOut.logs) != fmt.Sprint(walkOut.logs) || vmOut.err != walkOut.err {
		t.Fatalf("vm/walker divergence\nvm:   %v err=%q\nwalk: %v err=%q\nsource:\n%s",
			vmOut.logs, vmOut.err, walkOut.logs, walkOut.err, src)
	}
	if vmOut.steps != walkOut.steps {
		t.Fatalf("charge divergence: vm steps=%d walker steps=%d\nsource:\n%s",
			vmOut.steps, walkOut.steps, src)
	}
	if fmt.Sprint(vmOut.logs) != fmt.Sprint(mapOut.logs) || vmOut.err != mapOut.err {
		t.Fatalf("vm/map-walk divergence\nvm:  %v err=%q\nmap: %v err=%q\nsource:\n%s",
			vmOut.logs, vmOut.err, mapOut.logs, mapOut.err, src)
	}
}

func TestVMIsActuallyExercised(t *testing.T) {
	prog, err := parser.Parse("vm.js", "function f(x){ return x + 1; } console.log(f(41));")
	if err != nil {
		t.Fatal(err)
	}
	resolve.Resolve(prog)
	ip := New()
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	if len(ip.progMods) != 1 {
		t.Fatalf("program was not compiled: progMods=%d", len(ip.progMods))
	}
	if len(ip.funcCode) == 0 {
		t.Fatal("no function chunks registered")
	}
	if len(ip.ConsoleOut) != 1 || ip.ConsoleOut[0] != "42" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
	// the -novm escape hatch must keep the compiler entirely out of play
	ip2 := New()
	ip2.NoVM = true
	if err := ip2.Run(prog); err != nil {
		t.Fatal(err)
	}
	if len(ip2.progMods) != 0 {
		t.Fatal("-novm still compiled the program")
	}
}

func TestVMConstructMatrix(t *testing.T) {
	cases := map[string]string{
		"arith": `
			var a = 1 + 2 * 3 - 4 / 2;
			console.log(a, a % 3, 2 ** 3, 7 // comment
				& 5 | 2 ^ 1, 1 << 4 >> 2);`,
		"strings": `
			var s = "a" + "b" + 1;
			console.log(s, s.length, s.toUpperCase(), "x" + [1,2], "y" + {});
			console.log(` + "`tmpl ${s} ${1+1}`" + `);`,
		"compare": `
			console.log(1 < 2, "a" < "b", 3 >= 3, 1 === "1", 1 == "1", null ?? "d", 0 || "z", "" && "q");`,
		"loops": `
			var total = 0;
			for (var i = 0; i < 5; i++) { if (i === 2) continue; total += i; }
			var j = 0;
			while (j < 3) { j++; if (j === 2) break; }
			var k = 0;
			do { k++; } while (k < 2);
			console.log(total, j, k);`,
		"nested-break": `
			var hits = 0;
			for (let i = 0; i < 3; i++) {
				for (let j = 0; j < 3; j++) {
					if (j > i) break;
					if (i === 2 && j === 1) continue;
					hits++;
				}
			}
			console.log(hits);`,
		"closures": `
			function counter() { let n = 0; return function(){ n++; return n; }; }
			var c1 = counter(), c2 = counter();
			c1(); c1();
			console.log(c1(), c2());`,
		"let-capture": `
			var fns = [];
			for (let i = 0; i < 3; i++) { fns.push(function(){ return i; }); }
			console.log(fns[0](), fns[1](), fns[2]());`,
		"objects": `
			var o = { a: 1, b: { c: 2 } };
			o.d = o.a + o.b.c;
			o["e"] = "x";
			delete o.a;
			console.log(JSON.stringify(o), o.missing, typeof o.b);`,
		"arrays": `
			var a = [1, 2, 3];
			a.push(4); a.unshift(0);
			console.log(a.map(function(x){ return x * 2; }).filter(function(x){ return x > 2; }).join(","), a.length, a[2]);`,
		"update-compound": `
			var n = 10;
			console.log(n++, ++n, n--, --n, n += 5, n -= 2, n *= 2, n /= 4);`,
		"member-update": `
			var o = { n: 1 };
			o.n++; ++o.n; o.n += 10;
			console.log(o.n);`,
		"cond-seq": `
			var x = (1, 2, 3);
			console.log(x > 2 ? "big" : "small", x);`,
		"switch": `
			function f(v) {
				switch (v) {
				case 1: return "one";
				case 2: case 3: return "few";
				default: return "many";
				}
			}
			console.log(f(1), f(3), f(9));`,
		"forin": `
			var o = { a: 1, b: 2 }, keys = [];
			for (var k in o) { keys.push(k); }
			for (var v of [10, 20]) { keys.push(v); }
			console.log(keys.join(","));`,
		"classes": `
			class Animal {
				constructor(name) { this.name = name; }
				speak() { return this.name + " makes a sound"; }
			}
			class Dog extends Animal {
				speak() { return this.name + " barks"; }
			}
			var d = new Dog("Rex");
			console.log(d.speak(), d instanceof Animal);`,
		"ctor-func": `
			function Point(x, y) { this.x = x; this.y = y; }
			Point.prototype.norm = function(){ return this.x * this.x + this.y * this.y; };
			var p = new Point(3, 4);
			console.log(p.norm());`,
		"rest-spread": `
			function sum() { var t = 0; for (var i = 0; i < arguments.length; i++) t += arguments[i]; return t; }
			function rest(first, ...more) { return first + ":" + more.join("+"); }
			var a = [1, 2, 3];
			console.log(sum(...a, 4), rest(0, ...a));`,
		"implicit-global": `
			function f() { leaked = 99; }
			f();
			console.log(leaked);`,
		"arrow-this": `
			var o = { n: 7, get: function(){ var f = () => this.n; return f(); } };
			console.log(o.get());`,
		"throw-catch": `
			function boom() { throw new Error("pow"); }
			try { boom(); } catch (e) { console.log("caught", e.message); }
			finally { console.log("finally"); }`,
		"try-control": `
			function f() {
				for (var i = 0; i < 5; i++) {
					try {
						if (i === 1) continue;
						if (i === 3) break;
						console.log("body", i);
					} finally { console.log("fin", i); }
				}
				try { return "ret"; } finally { console.log("fin ret"); }
			}
			console.log(f());`,
		"finally-overrides": `
			function f() {
				try { throw new Error("x"); }
				finally { return "from-finally"; }
			}
			console.log(f());`,
		"nested-try": `
			try {
				try { throw new Error("inner"); }
				catch (e) { console.log("inner caught"); throw new Error("re"); }
				finally { console.log("inner fin"); }
			} catch (e) { console.log("outer", e.message); }`,
		"undefined-ident": `console.log(nope);`,
		"not-function":    `var x = 5; x();`,
		"const-assign":    `const c = 1; c = 2;`,
		"uncaught-throw":  `throw { message: "raw" };`,
		"recursion": `
			function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
			console.log(fib(15));`,
		"string-builtins": `
			var s = "hello world";
			console.log(s.split(" ")[1], s.indexOf("o"), s.slice(1, 4), s.replace("world", "vm"), "ab".repeat(3), "5".padStart(3, "0"));`,
		"json-math": `
			console.log(JSON.parse('{"a":[1,2]}').a[1], Math.max(1, 9, 4), Math.floor(2.7), Number("12") + 1, String(7) + "!", parseInt("42px"));`,
		"logical-assign-delegated": `
			var a = null, b = 0, c = 1;
			a ??= "na"; b ||= "nb"; c &&= "nc";
			console.log(a, b, c);`,
		"void-typeof-delete": `
			var o = { k: 1 };
			console.log(void 0, typeof 1, typeof "s", typeof undef_thing, delete o.k, o.k);`,
		"negative-unary": `
			var n = "5";
			console.log(-n, +n, !n, ~n, -"x");`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { vmTriModes(t, src) })
	}
}

// TestICEpochCrossProgramStaleness is the regression test for the IC
// cross-program staleness bugfix: IC tables only grow and were guarded
// solely by the AST node pointer, so a reused node ID whose AST
// allocation aliases a retired program's node could validate a stale
// cached Value against a receiver that survives in the globals — a
// cross-program (and under serve, cross-tenant) label-leak channel. The
// test deploys two programs back-to-back on one interpreter, forges the
// pointer-aliasing collision the allocator cannot be forced to produce,
// and asserts the stale value is not served.
func TestICEpochCrossProgramStaleness(t *testing.T) {
	parseResolved := func(src string) *ast.Program {
		prog, err := parser.Parse("app.js", src)
		if err != nil {
			t.Fatal(err)
		}
		resolve.Resolve(prog)
		return prog
	}
	// progA fills the IC for the o.secret read site; o survives in globals.
	progA := parseResolved(`var o = { secret: "A" }; console.log(o.secret);`)
	// progB reads the same global receiver through a fresh AST.
	progB := parseResolved(`o.secret = "B"; console.log(o.secret);`)

	ip := New()
	if err := ip.Run(progA); err != nil {
		t.Fatal(err)
	}

	// Locate progB's o.secret read site and the live receiver.
	var siteB *ast.MemberExpr
	for _, s := range progB.Body {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if m, ok := call.Args[0].(*ast.MemberExpr); ok {
			siteB = m
		}
	}
	if siteB == nil {
		t.Fatal("could not locate o.secret read in progB")
	}
	ov, ok := ip.Globals.Lookup("o")
	if !ok {
		t.Fatal("global o missing after progA")
	}
	o := ov.(*Object)

	// Forge the aliasing collision: progB's node pointer occupying an IC
	// slot filled under progA, still holding progA's cached Value and a
	// receiver version that will be current at read time (o.secret = "B"
	// bumps version once before the read).
	ip.ensureICs(progB.MaxID)
	id := siteB.NodeID()
	if id < 0 || id >= len(ip.ics) {
		t.Fatalf("bad node id %d", id)
	}
	ip.ics[id] = icEntry{
		node:    siteB,
		epoch:   ip.icEpoch, // progA's epoch
		recv:    o,
		recvVer: o.version + 1,
		val:     "A-stale",
	}

	if err := ip.Run(progB); err != nil {
		t.Fatal(err)
	}
	got := ip.ConsoleOut[len(ip.ConsoleOut)-1]
	if got != "B" {
		t.Fatalf("stale IC value served across program swap: logged %q, want \"B\"", got)
	}
	if e := &ip.ics[id]; e.node == siteB && e.epoch != ip.icEpoch {
		t.Fatalf("refilled entry carries wrong epoch %d (interp at %d)", e.epoch, ip.icEpoch)
	}
}

// TestICVersionWraparound is the regression test for the version-counter
// widening: with uint32 counters, exactly 2^32 property writes return the
// version to the value cached in an IC entry, re-validating a stale
// Value. The counters are now uint64; this forces an object across the
// 2^32 boundary and asserts the cache misses.
func TestICVersionWraparound(t *testing.T) {
	prog, err := parser.Parse("wrap.js", `var o = { x: "old" }; console.log(o.x);`)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Resolve(prog)
	ip := New()
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}

	ov, _ := ip.Globals.Lookup("o")
	o := ov.(*Object)
	var site *ast.MemberExpr
	var filled *icEntry
	for i := range ip.ics {
		if ip.ics[i].recv == o {
			filled = &ip.ics[i]
			site = ip.ics[i].node
		}
	}
	if filled == nil {
		t.Fatal("IC entry for o.x was not filled")
	}
	cachedVer := filled.recvVer

	// Simulate 2^32 writes landing back on the cached version modulo 2^32:
	// the property changes, the 64-bit counter advances by exactly 1<<32.
	o.props["x"] = "new"
	o.version = cachedVer + (1 << 32)
	if uint32(o.version) != uint32(cachedVer) {
		t.Fatal("test setup: 32-bit view of the version must collide")
	}

	v, hit := ip.icRead(site, o, "x")
	if !hit {
		t.Fatal("expected a refill hit on the own property")
	}
	if v != "new" {
		t.Fatalf("wrapped version counter re-validated a stale IC entry: got %q, want \"new\"", v)
	}
	if filled.recvVer != o.version {
		t.Fatalf("refill recorded version %d, want %d", filled.recvVer, o.version)
	}
	if o.version <= math.MaxUint32 {
		t.Fatal("counter did not cross the 2^32 boundary")
	}
}

// TestTrackerFusionRebindFallback pins the fused __t fast path's safety
// valves: a dynamic rebinding of __t or a mutation of the tracker object
// must drop OpTrackerCall back to the generic lookup path.
func TestTrackerFusionRebindFallback(t *testing.T) {
	ip := New()
	ip.defineVar(ip.Globals, "__t", nil, "shadow", false)
	if !ip.tauRebound {
		t.Fatal("defineVar of __t did not latch tauRebound")
	}
	ip2 := New()
	if err := ip2.assignIdent(ip2.Globals, "__t", nil, "shadow"); err != nil {
		t.Fatal(err)
	}
	if !ip2.tauRebound {
		t.Fatal("assignIdent of __t did not latch tauRebound")
	}
}

// TestArtifactCacheSingleflight pins the content-addressed compiled
// artifact cache: one build per content, distinct content distinct
// entries, and a version-salted key.
func TestArtifactCacheSingleflight(t *testing.T) {
	cache := vm.NewCache()
	builds := 0
	build := func(src string) func() (*ast.Program, error) {
		return func() (*ast.Program, error) {
			builds++
			prog, err := parser.Parse("a.js", src)
			if err != nil {
				return nil, err
			}
			resolve.Resolve(prog)
			return prog, nil
		}
	}
	p1, m1, err := cache.Load("a.js", "var x = 1;", build("var x = 1;"))
	if err != nil || p1 == nil || m1 == nil {
		t.Fatalf("load: %v", err)
	}
	p2, m2, _ := cache.Load("a.js", "var x = 1;", build("var x = 1;"))
	if p2 != p1 || m2 != m1 {
		t.Fatal("same content must return the identical artifact")
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	p3, _, _ := cache.Load("a.js", "var x = 2;", build("var x = 2;"))
	if p3 == p1 {
		t.Fatal("distinct content aliased one artifact")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("stats = (%d, %d), want (1, 2)", hits, misses)
	}
	if vm.Key("a.js", "src") == vm.Key("a.js", "src2") || vm.Key("a.js", "s") == vm.Key("b.js", "s") {
		t.Fatal("key must cover file and source")
	}
	if !strings.Contains(vm.Version, "vm") {
		t.Fatal("bytecode version tag missing")
	}
}

// TestVMBudgetParity: guard budget trips must fire at the same step with
// the same site attribution under both engines.
func TestVMBudgetParity(t *testing.T) {
	src := `var i = 0; while (true) { i = i + 1; }`
	trip := func(noVM bool) (int64, string) {
		prog, err := parser.Parse("spin.js", src)
		if err != nil {
			t.Fatal(err)
		}
		resolve.Resolve(prog)
		ip := New()
		ip.NoVM = noVM
		ip.MaxSteps = 10_000
		err = ip.Run(prog)
		if err == nil {
			t.Fatal("expected step budget trip")
		}
		return ip.Steps(), err.Error()
	}
	vmSteps, vmErr := trip(false)
	wkSteps, wkErr := trip(true)
	if vmSteps != wkSteps || vmErr != wkErr {
		t.Fatalf("budget divergence: vm (%d, %q) vs walker (%d, %q)", vmSteps, vmErr, wkSteps, wkErr)
	}
}
