package interp

import (
	"testing"

	"turnstile/internal/ast"
	"turnstile/internal/parser"
)

func astPos() ast.Pos { return ast.Pos{} }

func TestFsModule(t *testing.T) {
	ip := run(t, `
const fs = require("fs");
fs.writeFileSync("/data/out.txt", "hello");
console.log(fs.existsSync("/data/out.txt"), fs.existsSync("/nope"));
console.log(fs.readFileSync("/data/out.txt"));
fs.readFile("/etc/config", (err, data) => console.log("cb:", data));
fs.appendFileSync("/data/out.txt", "+more");
`)
	if got := ip.ConsoleOut; got[0] != "true false" || got[1] != "hello" || got[2] != "cb: contents-of:/etc/config" {
		t.Fatalf("logs = %v", got)
	}
	writes := ip.IO.WritesTo("fs")
	if len(writes) != 2 {
		t.Fatalf("writes = %+v", writes)
	}
	if ip.IO.Files["/data/out.txt"] != "hello+more" {
		t.Fatalf("file = %q", ip.IO.Files["/data/out.txt"])
	}
}

func TestFsStreams(t *testing.T) {
	ip := run(t, `
const fs = require("fs");
const rs = fs.createReadStream("/video/cam0");
rs.on("data", chunk => {
  const ws = fs.createWriteStream("/store/archive");
  ws.write(chunk);
});
`)
	src, ok := ip.Source("fs.readStream:/video/cam0")
	if !ok {
		t.Fatalf("sources = %v", ip.SourceNames())
	}
	if err := ip.Emit(src, "data", "frame-001"); err != nil {
		t.Fatal(err)
	}
	writes := ip.IO.WritesTo("fs")
	if len(writes) != 1 || writes[0].Value != "frame-001" || writes[0].Target != "/store/archive" {
		t.Fatalf("writes = %+v", writes)
	}
}

func TestNetModule(t *testing.T) {
	ip := run(t, `
const net = require("net");
const socket = net.connect({ host: "camera.local", port: 554 });
socket.on("data", frame => {
  socket.write("ack:" + frame);
});
`)
	src, ok := ip.Source("net.socket:camera.local:554")
	if !ok {
		t.Fatalf("sources = %v", ip.SourceNames())
	}
	if err := ip.Emit(src, "data", "f1"); err != nil {
		t.Fatal(err)
	}
	writes := ip.IO.WritesTo("net")
	if len(writes) != 1 || writes[0].Value != "ack:f1" {
		t.Fatalf("writes = %+v", writes)
	}
}

func TestMqttModule(t *testing.T) {
	ip := run(t, `
const mqtt = require("mqtt");
const client = mqtt.connect("mqtt://broker:1883");
client.subscribe("door/command");
client.on("message", (topic, payload) => {
  client.publish("door/state", "processed:" + payload);
});
`)
	src, _ := ip.Source("mqtt:mqtt://broker:1883")
	if err := ip.Emit(src, "message", "door/command", "unlock"); err != nil {
		t.Fatal(err)
	}
	writes := ip.IO.WritesTo("mqtt")
	if len(writes) != 1 || writes[0].Target != "door/state" || writes[0].Value != "processed:unlock" {
		t.Fatalf("writes = %+v", writes)
	}
}

func TestMailModule(t *testing.T) {
	ip := run(t, `
const nodemailer = require("nodemailer");
const smtpTransport = nodemailer.createTransport({ host: "smtp.corp" });
smtpTransport.sendMail({ to: "admin@corp", attachments: ["frame-9"] }, (error, info) => {
  console.log("sent to", info.accepted[0]);
});
`)
	if ip.ConsoleOut[0] != "sent to admin@corp" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
	writes := ip.IO.WritesTo("smtp")
	if len(writes) != 1 || writes[0].Target != "admin@corp" {
		t.Fatalf("writes = %+v", writes)
	}
}

func TestSqliteModule(t *testing.T) {
	ip := run(t, `
const sqlite3 = require("sqlite3").verbose();
const db = new sqlite3.Database("/var/nvr.db");
db.run("INSERT INTO frames VALUES (?)", ["frame-7"], err => console.log("stored", err));
db.all("SELECT * FROM frames", (err, rows) => console.log("rows:", rows.length));
`)
	writes := ip.IO.WritesTo("sqlite")
	if len(writes) != 1 || writes[0].Target != "/var/nvr.db:INSERT" {
		t.Fatalf("writes = %+v", writes)
	}
	if ip.ConsoleOut[0] != "stored null" || ip.ConsoleOut[1] != "rows: 0" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
}

func TestHTTPModule(t *testing.T) {
	ip := run(t, `
const http = require("http");
const req = http.request({ host: "api.saas.example" }, res => {
  res.on("data", body => console.log("response:", body));
});
req.write("payload-x");
req.end();
http.createServer((rq, rs) => {}).listen(8080);
`)
	writes := ip.IO.WritesTo("http")
	if len(writes) != 1 || writes[0].Target != "api.saas.example" {
		t.Fatalf("writes = %+v", writes)
	}
	res, ok := ip.Source("http.response:api.saas.example")
	if !ok {
		t.Fatalf("sources = %v", ip.SourceNames())
	}
	if err := ip.Emit(res, "data", "200-ok"); err != nil {
		t.Fatal(err)
	}
	if ip.ConsoleOut[0] != "response: 200-ok" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
	if _, ok := ip.Source("http.server"); !ok {
		t.Fatal("http server not registered as source")
	}
}

func TestProcessStdinStdout(t *testing.T) {
	ip := run(t, `
process.stdin.on("data", line => {
  process.stdout.write("echo:" + line);
});
`)
	src, _ := ip.Source("process.stdin")
	if err := ip.Emit(src, "data", "hello"); err != nil {
		t.Fatal(err)
	}
	writes := ip.IO.WritesTo("process")
	if len(writes) != 1 || writes[0].Value != "echo:hello" {
		t.Fatalf("writes = %+v", writes)
	}
}

func TestChildProcessExec(t *testing.T) {
	ip := run(t, `
const cp = require("child_process");
cp.exec("sensors --json", (err, stdout, stderr) => console.log(stdout));
`)
	if ip.ConsoleOut[0] != "output-of:sensors --json" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
}

func TestEventsModule(t *testing.T) {
	ip := run(t, `
const events = require("events");
const em = new events.EventEmitter();
em.on("tick", n => console.log("tick", n));
em.emit("tick", 1);
em.emit("tick", 2);
em.removeAllListeners("tick");
em.emit("tick", 3);
`)
	if len(ip.ConsoleOut) != 2 || ip.ConsoleOut[1] != "tick 2" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
}

func TestUnknownModuleThrows(t *testing.T) {
	ip := New()
	prog := parser.MustParse("t.js", `require("left-pad");`)
	if err := ip.Run(prog); err == nil {
		t.Fatal("expected module-not-found throw")
	}
}

func TestRegisterModule(t *testing.T) {
	ip := New()
	deepstack := NewObject()
	deepstack.Set("faceRecognition", NewHostFunc("faceRecognition", func(ip *Interp, this Value, args []Value) (Value, error) {
		result := NewObject()
		result.Set("predictions", NewArray())
		return ip.NewPromise(result, false), nil
	}))
	ip.RegisterModule("node-red-contrib-deepstack", deepstack)
	prog := parser.MustParse("t.js", `
const deepstack = require("node-red-contrib-deepstack");
deepstack.faceRecognition("frame").then(r => console.log("preds:", r.predictions.length));
`)
	if err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	if ip.ConsoleOut[0] != "preds: 0" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
}

func TestModuleCaching(t *testing.T) {
	ip := run(t, `
const a = require("fs");
const b = require("fs");
console.log(a === b);
`)
	if ip.ConsoleOut[0] != "true" {
		t.Fatal("modules should be cached")
	}
}

func TestMiscModules(t *testing.T) {
	ip := run(t, `
const path = require("path");
console.log(path.join("a", "b", "c.txt"), path.basename("/x/y/z.js"));
const crypto = require("crypto");
const h = crypto.createHash("sha1");
h.update("abc");
const d1 = h.digest("hex");
const h2 = crypto.createHash("sha1");
h2.update("abc");
console.log(d1 === h2.digest("hex"), d1.length);
const os = require("os");
console.log(os.hostname());
`)
	out := ip.ConsoleOut
	if out[0] != "a/b/c.txt z.js" || out[1] != "true 16" || out[2] != "iot-gateway" {
		t.Fatalf("logs = %v", out)
	}
}

func TestSetIntervalRegistersPumpCallback(t *testing.T) {
	ip := run(t, `
let ticks = 0;
const id = setInterval(() => { ticks = ticks + 1; }, 100);
clearInterval(id);
console.log(typeof id);
`)
	if ip.ConsoleOut[0] != "number" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
	if len(ip.IO.Intervals) != 1 {
		t.Fatalf("intervals = %d", len(ip.IO.Intervals))
	}
	// the workload pump drives registered intervals explicitly
	for i := 0; i < 3; i++ {
		if _, err := ip.CallFunction(ip.IO.Intervals[0], Undefined{}, nil, astPos()); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := ip.Globals.Lookup("ticks")
	if ToNumber(v) != 3 {
		t.Fatalf("ticks = %v", v)
	}
}

func TestSetTimeoutRunsSynchronously(t *testing.T) {
	ip := run(t, `
let order = "";
setTimeout(() => { order += "a"; }, 0);
order += "b";
console.log(order);
`)
	// the synchronous timer model of §4.5 runs deferred work inline
	if ip.ConsoleOut[0] != "ab" {
		t.Fatalf("logs = %v", ip.ConsoleOut)
	}
}
