package interp

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/dift"
	"turnstile/internal/faults"
)

// promiseState is the Host payload of a Promise object.
type promiseState struct {
	resolved bool
	rejected bool
	value    Value
}

// ResolvePromise returns the settled value of a Promise, or v itself for
// non-promises. Per §4.5, `await foo` is treated as `foo`.
func (ip *Interp) ResolvePromise(v Value) Value {
	if o, ok := dift.Unwrap(v).(*Object); ok {
		if ps, isP := o.Host.(*promiseState); isP {
			return ps.value
		}
	}
	return v
}

// NewPromise builds a resolved/rejected promise object with then/catch/
// finally methods (synchronous settlement model, §4.5).
func (ip *Interp) NewPromise(value Value, rejected bool) *Object {
	p := NewObject()
	p.Class = "Promise"
	ps := &promiseState{resolved: !rejected, rejected: rejected, value: value}
	p.Host = ps
	p.Set("then", NewHostFunc("then", func(ip *Interp, this Value, args []Value) (Value, error) {
		if ps.rejected {
			if len(args) > 1 {
				ret, err := ip.CallFunction(args[1], undef, []Value{ps.value}, ast.Pos{})
				if err != nil {
					return nil, err
				}
				return ip.promisify(ret, false), nil
			}
			return p, nil
		}
		if len(args) > 0 {
			ret, err := ip.CallFunction(args[0], undef, []Value{ps.value}, ast.Pos{})
			if err != nil {
				if th, isThrow := err.(*Throw); isThrow {
					return ip.NewPromise(th.Val, true), nil
				}
				return nil, err
			}
			return ip.promisify(ret, false), nil
		}
		return p, nil
	}))
	p.Set("catch", NewHostFunc("catch", func(ip *Interp, this Value, args []Value) (Value, error) {
		if ps.rejected && len(args) > 0 {
			ret, err := ip.CallFunction(args[0], undef, []Value{ps.value}, ast.Pos{})
			if err != nil {
				return nil, err
			}
			return ip.promisify(ret, false), nil
		}
		return p, nil
	}))
	p.Set("finally", NewHostFunc("finally", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 0 {
			if _, err := ip.CallFunction(args[0], undef, nil, ast.Pos{}); err != nil {
				return nil, err
			}
		}
		return p, nil
	}))
	return p
}

// promisify flattens nested promises.
func (ip *Interp) promisify(v Value, rejected bool) *Object {
	if o, ok := dift.Unwrap(v).(*Object); ok {
		if _, isP := o.Host.(*promiseState); isP {
			return o
		}
	}
	return ip.NewPromise(v, rejected)
}

func (ip *Interp) installGlobals() {
	g := ip.Globals

	// console
	console := NewObject()
	logFn := NewHostFunc("log", func(ip *Interp, this Value, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = Inspect(a)
		}
		ip.ConsoleOut = append(ip.ConsoleOut, strings.Join(parts, " "))
		return undef, nil
	})
	console.Set("log", logFn)
	console.Set("error", logFn)
	console.Set("warn", logFn)
	console.Set("info", logFn)
	g.Define("console", console, false)

	// JSON
	jsonObj := NewObject()
	jsonObj.Set("stringify", NewHostFunc("stringify", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return "undefined", nil
		}
		return jsonStringify(args[0], make(map[uint64]bool)), nil
	}))
	jsonObj.Set("parse", NewHostFunc("parse", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return nil, &Throw{Val: ip.MakeError("SyntaxError", "JSON.parse: no input")}
		}
		v, rest, err := jsonParse(ToString(args[0]))
		if err != nil || strings.TrimSpace(rest) != "" {
			return nil, &Throw{Val: ip.MakeError("SyntaxError", "JSON.parse: invalid JSON")}
		}
		return v, nil
	}))
	g.Define("JSON", jsonObj, false)

	// Math
	mathObj := NewObject()
	unary := func(name string, fn func(float64) float64) {
		mathObj.Set(name, NewHostFunc(name, func(ip *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return math.NaN(), nil
			}
			return fn(ToNumber(args[0])), nil
		}))
	}
	unary("floor", math.Floor)
	unary("ceil", math.Ceil)
	unary("round", math.Round)
	unary("abs", math.Abs)
	unary("sqrt", math.Sqrt)
	unary("log", math.Log)
	unary("exp", math.Exp)
	unary("sin", math.Sin)
	unary("cos", math.Cos)
	unary("trunc", math.Trunc)
	mathObj.Set("pow", NewHostFunc("pow", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return math.NaN(), nil
		}
		return math.Pow(ToNumber(args[0]), ToNumber(args[1])), nil
	}))
	mathObj.Set("max", NewHostFunc("max", func(ip *Interp, this Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, ToNumber(a))
		}
		return out, nil
	}))
	mathObj.Set("min", NewHostFunc("min", func(ip *Interp, this Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, ToNumber(a))
		}
		return out, nil
	}))
	// deterministic pseudo-random: xorshift seeded constant, reproducible runs
	var rngState uint64 = 0x9E3779B97F4A7C15
	mathObj.Set("random", NewHostFunc("random", func(ip *Interp, this Value, args []Value) (Value, error) {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return float64(rngState%1_000_000) / 1_000_000, nil
	}))
	mathObj.Set("PI", math.Pi)
	mathObj.Set("E", math.E)
	g.Define("Math", mathObj, false)

	// Object
	objectNS := NewObject()
	objectNS.Set("keys", NewHostFunc("keys", func(ip *Interp, this Value, args []Value) (Value, error) {
		arr := NewArray()
		if len(args) > 0 {
			if o, ok := dift.Unwrap(args[0]).(*Object); ok {
				for _, k := range o.Keys() {
					arr.Elems = append(arr.Elems, k)
				}
			}
		}
		return arr, nil
	}))
	objectNS.Set("values", NewHostFunc("values", func(ip *Interp, this Value, args []Value) (Value, error) {
		arr := NewArray()
		if len(args) > 0 {
			if o, ok := dift.Unwrap(args[0]).(*Object); ok {
				for _, k := range o.Keys() {
					v, _ := o.GetOwn(k)
					arr.Elems = append(arr.Elems, v)
				}
			}
		}
		return arr, nil
	}))
	objectNS.Set("entries", NewHostFunc("entries", func(ip *Interp, this Value, args []Value) (Value, error) {
		arr := NewArray()
		if len(args) > 0 {
			if o, ok := dift.Unwrap(args[0]).(*Object); ok {
				for _, k := range o.Keys() {
					v, _ := o.GetOwn(k)
					arr.Elems = append(arr.Elems, NewArray(k, v))
				}
			}
		}
		return arr, nil
	}))
	objectNS.Set("assign", NewHostFunc("assign", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return NewObject(), nil
		}
		dst, ok := dift.Unwrap(args[0]).(*Object)
		if !ok {
			return args[0], nil
		}
		for _, src := range args[1:] {
			if so, ok := dift.Unwrap(src).(*Object); ok {
				for _, k := range so.Keys() {
					v, _ := so.GetOwn(k)
					dst.Set(k, v)
				}
			}
		}
		return dst, nil
	}))
	objectNS.Set("freeze", NewHostFunc("freeze", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 0 {
			return args[0], nil
		}
		return undef, nil
	}))
	g.Define("Object", objectNS, false)

	// Array namespace
	arrayNS := NewObject()
	arrayNS.Set("isArray", NewHostFunc("isArray", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		_, ok := dift.Unwrap(args[0]).(*Array)
		return ok, nil
	}))
	arrayNS.Set("from", NewHostFunc("from", func(ip *Interp, this Value, args []Value) (Value, error) {
		out := NewArray()
		if len(args) > 0 {
			switch src := dift.Unwrap(args[0]).(type) {
			case *Array:
				out.Elems = append(out.Elems, src.Elems...)
			case string:
				for _, r := range src {
					out.Elems = append(out.Elems, string(r))
				}
			}
		}
		return out, nil
	}))
	g.Define("Array", arrayNS, false)

	// Promise namespace (constructor + resolve/reject/all)
	promiseCtor := NewHostFunc("Promise", func(ip *Interp, this Value, args []Value) (Value, error) {
		// new Promise((resolve, reject) => ...): executor runs synchronously
		if len(args) == 0 {
			return ip.NewPromise(undef, false), nil
		}
		var settled Value = undef
		rejected := false
		resolve := NewHostFunc("resolve", func(ip *Interp, this Value, args []Value) (Value, error) {
			if len(args) > 0 {
				settled = ip.ResolvePromise(args[0])
			}
			return undef, nil
		})
		reject := NewHostFunc("reject", func(ip *Interp, this Value, args []Value) (Value, error) {
			rejected = true
			if len(args) > 0 {
				settled = args[0]
			}
			return undef, nil
		})
		if _, err := ip.CallFunction(args[0], undef, []Value{resolve, reject}, ast.Pos{}); err != nil {
			if th, ok := err.(*Throw); ok {
				return ip.NewPromise(th.Val, true), nil
			}
			return nil, err
		}
		return ip.NewPromise(settled, rejected), nil
	})
	promiseCtor.Set("resolve", NewHostFunc("resolve", func(ip *Interp, this Value, args []Value) (Value, error) {
		var v Value = undef
		if len(args) > 0 {
			v = args[0]
		}
		return ip.promisify(v, false), nil
	}))
	promiseCtor.Set("reject", NewHostFunc("reject", func(ip *Interp, this Value, args []Value) (Value, error) {
		var v Value = undef
		if len(args) > 0 {
			v = args[0]
		}
		return ip.NewPromise(v, true), nil
	}))
	promiseCtor.Set("all", NewHostFunc("all", func(ip *Interp, this Value, args []Value) (Value, error) {
		out := NewArray()
		if len(args) > 0 {
			if arr, ok := dift.Unwrap(args[0]).(*Array); ok {
				for _, el := range arr.Elems {
					out.Elems = append(out.Elems, ip.ResolvePromise(el))
				}
			}
		}
		return ip.NewPromise(out, false), nil
	}))
	g.Define("Promise", promiseCtor, false)

	// Error constructors
	for _, name := range []string{"Error", "TypeError", "RangeError", "SyntaxError"} {
		cls := name
		g.Define(name, NewHostFunc(name, func(ip *Interp, this Value, args []Value) (Value, error) {
			msg := ""
			if len(args) > 0 {
				msg = ToString(args[0])
			}
			return ip.MakeError(cls, msg), nil
		}), false)
	}

	// primitive conversion functions
	g.Define("String", NewHostFunc("String", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return ToString(args[0]), nil
	}), false)
	g.Define("Number", NewHostFunc("Number", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return 0.0, nil
		}
		return ToNumber(args[0]), nil
	}), false)
	g.Define("Boolean", NewHostFunc("Boolean", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		return Truthy(args[0]), nil
	}), false)
	g.Define("parseInt", NewHostFunc("parseInt", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		s := strings.TrimSpace(ToString(args[0]))
		base := 10
		if len(args) > 1 {
			if b := int(ToNumber(args[1])); b >= 2 && b <= 36 {
				base = b
			}
		}
		end := 0
		neg := false
		if end < len(s) && (s[end] == '-' || s[end] == '+') {
			neg = s[end] == '-'
			end++
		}
		start := end
		for end < len(s) && isBaseDigit(s[end], base) {
			end++
		}
		if end == start {
			return math.NaN(), nil
		}
		n, err := strconv.ParseInt(s[start:end], base, 64)
		if err != nil {
			return math.NaN(), nil
		}
		if neg {
			n = -n
		}
		return float64(n), nil
	}), false)
	g.Define("parseFloat", NewHostFunc("parseFloat", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		s := strings.TrimSpace(ToString(args[0]))
		end := 0
		for end < len(s) && (s[end] == '-' || s[end] == '+' || s[end] == '.' || s[end] == 'e' || s[end] == 'E' || (s[end] >= '0' && s[end] <= '9')) {
			end++
		}
		for end > 0 {
			if n, err := strconv.ParseFloat(s[:end], 64); err == nil {
				return n, nil
			}
			end--
		}
		return math.NaN(), nil
	}), false)
	g.Define("isNaN", NewHostFunc("isNaN", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return true, nil
		}
		return math.IsNaN(ToNumber(args[0])), nil
	}), false)
	g.Define("NaN", math.NaN(), false)
	g.Define("Infinity", math.Inf(1), false)
	g.Define("globalThis", NewObject(), false)

	// Date: deterministic — now() is a monotonic virtual-millisecond counter
	dateNS := NewHostFunc("Date", func(ip *Interp, this Value, args []Value) (Value, error) {
		o := NewObject()
		o.Class = "Date"
		ip.now++
		t := ip.now
		o.Set("getTime", NewHostFunc("getTime", func(ip *Interp, this Value, args []Value) (Value, error) {
			return t, nil
		}))
		o.Set("toISOString", NewHostFunc("toISOString", func(ip *Interp, this Value, args []Value) (Value, error) {
			return fmt.Sprintf("1970-01-01T00:00:%06.3fZ", t/1000), nil
		}))
		return o, nil
	})
	dateNS.Set("now", NewHostFunc("now", func(ip *Interp, this Value, args []Value) (Value, error) {
		ip.now++
		return ip.now, nil
	}))
	g.Define("Date", dateNS, false)

	// timers: synchronous model — callbacks run immediately after advancing
	// the virtual clock by the requested delay (the corpus apps use
	// setTimeout(fn, 0) style deferrals only, so eager execution preserves
	// their semantics while keeping virtual time honest)
	g.Define("setTimeout", NewHostFunc("setTimeout", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 1 {
			if ms := ToNumber(args[1]); ms > 0 {
				ip.Clock.Advance(int64(ms))
				// probe the guard deadline at the advance site: a timer
				// chain moves virtual time without burning much fuel
				if err := ip.Guard.CheckDeadline("setTimeout"); err != nil {
					return nil, err
				}
			}
		}
		if len(args) > 0 {
			if _, err := ip.CallFunction(args[0], undef, nil, ast.Pos{}); err != nil {
				return nil, err
			}
		}
		return 0.0, nil
	}), false)
	// retry(fn, attempts?, baseDelay?) — exponential backoff on the virtual
	// clock. Retries only JS exceptions (a failing host op surfaced as a
	// throw); interpreter-level errors such as step-budget exhaustion
	// propagate immediately. Returns fn's value from the first success;
	// rethrows the last exception once attempts are exhausted.
	g.Define("retry", NewHostFunc("retry", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return undef, nil
		}
		attempts := 3
		if len(args) > 1 {
			if n := int(ToNumber(args[1])); n > 0 {
				attempts = n
			}
		}
		base := int64(1)
		if len(args) > 2 {
			if b := int64(ToNumber(args[2])); b > 0 {
				base = b
			}
		}
		var result Value = undef
		var fatal error
		err := faults.Retry(ip.Clock, attempts, base, func() error {
			v, callErr := ip.CallFunction(args[0], undef, nil, ast.Pos{})
			if callErr != nil {
				if _, isThrow := callErr.(*Throw); isThrow {
					return callErr
				}
				fatal = callErr
				return nil
			}
			result = v
			return nil
		})
		if fatal != nil {
			return nil, fatal
		}
		if err != nil {
			return nil, err
		}
		return result, nil
	}), false)
	g.Define("setInterval", NewHostFunc("setInterval", func(ip *Interp, this Value, args []Value) (Value, error) {
		// intervals are driven externally by the workload pump; register
		// the callback so tests can fire it
		if len(args) > 0 {
			ip.IO.Intervals = append(ip.IO.Intervals, args[0])
		}
		return float64(len(ip.IO.Intervals)), nil
	}), false)
	g.Define("clearInterval", NewHostFunc("clearInterval", func(ip *Interp, this Value, args []Value) (Value, error) {
		return undef, nil
	}), false)

	ip.installHostModules()
}

func isBaseDigit(c byte, base int) bool {
	var d int
	switch {
	case c >= '0' && c <= '9':
		d = int(c - '0')
	case c >= 'a' && c <= 'z':
		d = int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		d = int(c-'A') + 10
	default:
		return false
	}
	return d < base
}

// ---------------------------------------------------------------------------
// JSON

func jsonStringify(v Value, seen map[uint64]bool) string {
	v = dift.Unwrap(v)
	switch x := v.(type) {
	case Undefined:
		return "null"
	case Null:
		return "null"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return "null"
		}
		return formatNumber(x)
	case string:
		return strconv.Quote(x)
	case *Array:
		if seen[x.id] {
			return "null"
		}
		seen[x.id] = true
		defer delete(seen, x.id)
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = jsonStringify(el, seen)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case *Object:
		if seen[x.id] {
			return "null"
		}
		seen[x.id] = true
		defer delete(seen, x.id)
		keys := x.Keys()
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			pv, _ := x.GetOwn(k)
			switch dift.Unwrap(pv).(type) {
			case *Function, *HostFunc, Undefined:
				continue
			}
			parts = append(parts, strconv.Quote(k)+":"+jsonStringify(pv, seen))
		}
		return "{" + strings.Join(parts, ",") + "}"
	default:
		return "null"
	}
}

func jsonParse(s string) (Value, string, error) {
	s = strings.TrimLeft(s, " \t\n\r")
	if s == "" {
		return nil, s, fmt.Errorf("unexpected end of JSON")
	}
	switch {
	case strings.HasPrefix(s, "null"):
		return null, s[4:], nil
	case strings.HasPrefix(s, "true"):
		return true, s[4:], nil
	case strings.HasPrefix(s, "false"):
		return false, s[5:], nil
	case s[0] == '"':
		unq, rest, err := jsonParseString(s)
		return unq, rest, err
	case s[0] == '[':
		s = s[1:]
		arr := NewArray()
		s = strings.TrimLeft(s, " \t\n\r")
		if strings.HasPrefix(s, "]") {
			return arr, s[1:], nil
		}
		for {
			v, rest, err := jsonParse(s)
			if err != nil {
				return nil, rest, err
			}
			arr.Elems = append(arr.Elems, v)
			s = strings.TrimLeft(rest, " \t\n\r")
			if strings.HasPrefix(s, ",") {
				s = s[1:]
				continue
			}
			if strings.HasPrefix(s, "]") {
				return arr, s[1:], nil
			}
			return nil, s, fmt.Errorf("bad array")
		}
	case s[0] == '{':
		s = s[1:]
		obj := NewObject()
		s = strings.TrimLeft(s, " \t\n\r")
		if strings.HasPrefix(s, "}") {
			return obj, s[1:], nil
		}
		for {
			s = strings.TrimLeft(s, " \t\n\r")
			key, rest, err := jsonParseString(s)
			if err != nil {
				return nil, rest, err
			}
			s = strings.TrimLeft(rest, " \t\n\r")
			if !strings.HasPrefix(s, ":") {
				return nil, s, fmt.Errorf("bad object")
			}
			v, rest2, err := jsonParse(s[1:])
			if err != nil {
				return nil, rest2, err
			}
			obj.Set(key, v)
			s = strings.TrimLeft(rest2, " \t\n\r")
			if strings.HasPrefix(s, ",") {
				s = s[1:]
				continue
			}
			if strings.HasPrefix(s, "}") {
				return obj, s[1:], nil
			}
			return nil, s, fmt.Errorf("bad object")
		}
	default:
		end := 0
		for end < len(s) && (s[end] == '-' || s[end] == '+' || s[end] == '.' ||
			s[end] == 'e' || s[end] == 'E' || (s[end] >= '0' && s[end] <= '9')) {
			end++
		}
		if end == 0 {
			return nil, s, fmt.Errorf("unexpected character %q", s[0])
		}
		n, err := strconv.ParseFloat(s[:end], 64)
		if err != nil {
			return nil, s, err
		}
		return n, s[end:], nil
	}
}

func jsonParseString(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", s, fmt.Errorf("expected string")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", s, fmt.Errorf("bad escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'u':
				if i+4 < len(s) {
					if code, err := strconv.ParseUint(s[i+1:i+5], 16, 32); err == nil {
						b.WriteRune(rune(code))
					}
					i += 4
				}
			default:
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(c)
		}
		i++
	}
	return "", s, fmt.Errorf("unterminated string")
}
