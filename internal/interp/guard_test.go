package interp

import (
	"errors"
	"strings"
	"testing"

	"turnstile/internal/guard"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
)

// runGuarded executes src with the given guard limits and returns the
// interpreter and the run error.
func runGuarded(t *testing.T, src string, lim guard.Limits) (*Interp, error) {
	t.Helper()
	ip := New()
	ip.SetGuard(guard.New(lim))
	prog, err := parser.Parse("test.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ip, ip.Run(prog)
}

func wantBudgetErr(t *testing.T, err error, kind guard.Kind) *guard.BudgetError {
	t.Helper()
	var be *guard.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *guard.BudgetError(%s), got %T: %v", kind, err, err)
	}
	if be.Kind != kind {
		t.Fatalf("budget kind = %s, want %s", be.Kind, kind)
	}
	return be
}

func TestGuardFuelTripsInfiniteLoop(t *testing.T) {
	_, err := runGuarded(t, `while (true) { }`, guard.Limits{Fuel: 10_000})
	be := wantBudgetErr(t, err, guard.KindFuel)
	if be.Site == "" {
		t.Fatal("trip site not back-filled with a source position")
	}
}

func TestGuardDepthTripsRecursion(t *testing.T) {
	_, err := runGuarded(t, `function f() { return f(); } f();`, guard.Limits{MaxDepth: 100})
	wantBudgetErr(t, err, guard.KindDepth)
}

func TestGuardDepthReleasedOnReturn(t *testing.T) {
	// sequential calls never accumulate depth
	ip, err := runGuarded(t, `
function f(n) { return n <= 0 ? 0 : f(n - 1); }
let total = 0;
for (let i = 0; i < 50; i++) { total = total + f(40); }
console.log(total);
`, guard.Limits{MaxDepth: 100})
	if err != nil {
		t.Fatalf("bounded recursion tripped: %v", err)
	}
	if ip.Guard.Depth() != 0 {
		t.Fatalf("depth not released: %d", ip.Guard.Depth())
	}
}

func TestHardCallDepthCapWithoutGuard(t *testing.T) {
	// Even with no guard installed, unbounded MiniJS recursion must return
	// a typed error instead of overflowing the Go stack (which would kill
	// the process: recover cannot catch it).
	ip := New()
	prog, err := parser.Parse("test.js", `function f() { return f(); } f();`)
	if err != nil {
		t.Fatal(err)
	}
	err = ip.Run(prog)
	var re *RuntimeError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "call stack exceeded") {
		t.Fatalf("expected call-stack RuntimeError, got %T: %v", err, err)
	}
}

func TestGuardAllocTripsStringDoubling(t *testing.T) {
	_, err := runGuarded(t, `
let s = "x";
while (true) { s = s + s; }
`, guard.Limits{Fuel: 1_000_000, MaxAlloc: 1 << 20})
	wantBudgetErr(t, err, guard.KindAlloc)
}

func TestGuardAllocTripsArrayGrowth(t *testing.T) {
	_, err := runGuarded(t, `
let a = [];
while (true) { a.push(1, 2, 3, 4); }
`, guard.Limits{Fuel: 10_000_000, MaxAlloc: 50_000})
	wantBudgetErr(t, err, guard.KindAlloc)
}

func TestGuardDeadlineTripsTimerChain(t *testing.T) {
	// each setTimeout advances the virtual clock by 1000 ticks while
	// burning almost no fuel; the deadline probe at the advance site trips
	_, err := runGuarded(t, `
function tick(n) {
  if (n <= 0) { return; }
  setTimeout(function() { tick(n - 1); }, 1000);
}
tick(100);
`, guard.Limits{DeadlineTicks: 10_000})
	wantBudgetErr(t, err, guard.KindDeadline)
}

func TestGuardGenerousLimitsAreTransparent(t *testing.T) {
	src := `
let acc = [];
for (let i = 0; i < 100; i++) { acc.push(i * i); }
console.log(acc.length, acc[99]);
`
	plain := run(t, src)
	ip, err := runGuarded(t, src, guard.Limits{
		Fuel: 100_000_000, MaxDepth: 10_000, MaxAlloc: 1 << 30, DeadlineTicks: 1 << 40,
	})
	if err != nil {
		t.Fatalf("guarded run failed: %v", err)
	}
	if strings.Join(ip.ConsoleOut, "\n") != strings.Join(plain.ConsoleOut, "\n") {
		t.Fatalf("guarded output diverged:\n%v\nvs\n%v", ip.ConsoleOut, plain.ConsoleOut)
	}
}

// failClosedInterp builds a guarded interpreter with a fail-closed tracker.
func failClosedInterp(t *testing.T, lim guard.Limits) *Interp {
	t.Helper()
	ip := New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "Reading": "v => \"sensitive\"" },
	  "rules": [ "sensitive -> archive" ]
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = false
	tr.FailClosed = true
	ip.SetGuard(guard.New(lim))
	return ip
}

func TestFailClosedGuardTripPoisonsTrackerAndGatesSinks(t *testing.T) {
	ip := failClosedInterp(t, guard.Limits{Fuel: 10_000})
	prog, err := parser.Parse("test.js", `
const fs = require("fs");
fs.writeFileSync("/before", "ok");
while (true) { }
`)
	if err != nil {
		t.Fatal(err)
	}
	runErr := ip.Run(prog)
	wantBudgetErr(t, runErr, guard.KindFuel)

	if deg, reason := ip.Tracker.Degraded(); !deg || !strings.Contains(reason, "guard trip: fuel") {
		t.Fatalf("guard trip did not poison fail-closed tracker: %v %q", deg, reason)
	}
	// the pre-trip write went through
	if len(ip.IO.Writes) != 1 || ip.IO.Writes[0].Target != "/before" {
		t.Fatalf("pre-trip writes = %+v", ip.IO.Writes)
	}

	// after the trip, no sink write is permitted — even via a fresh
	// host-op with no labelled data near it
	prog2, err := parser.Parse("after.js", `
const fs = require("fs");
fs.writeFileSync("/after", "leak");
`)
	if err != nil {
		t.Fatal(err)
	}
	_ = ip.Run(prog2) // the sticky guard aborts this run before any host op
	for _, w := range ip.IO.Writes {
		if w.Target == "/after" {
			t.Fatalf("sink write permitted after guard trip: %+v", ip.IO.Writes)
		}
	}
}

// TestFailClosedRecordGateSuppressesWrites exercises the record() gate
// directly: a poisoned tracker with a healthy guard still runs code, but
// no sink write goes through (the Emit multi-listener path is exactly this
// shape — a sibling listener keeps running after one trips).
func TestFailClosedRecordGateSuppressesWrites(t *testing.T) {
	ip := failClosedInterp(t, guard.Limits{})
	ip.Tracker.Poison("test: simulated mid-run inconsistency")
	prog, err := parser.Parse("test.js", `
const fs = require("fs");
fs.writeFileSync("/gated", "leak");
console.log("still running");
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Run(prog); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(ip.IO.Writes) != 0 {
		t.Fatalf("poisoned tracker permitted sink writes: %+v", ip.IO.Writes)
	}
	if ip.IO.Denied != 1 {
		t.Fatalf("denied counter = %d, want 1", ip.IO.Denied)
	}
	if len(ip.ConsoleOut) != 1 {
		t.Fatalf("non-sink execution should continue: %v", ip.ConsoleOut)
	}
}

func TestFailClosedOffGuardTripDoesNotPoison(t *testing.T) {
	ip := New()
	pol, err := policy.ParseJSON([]byte(`{
	  "labellers": { "Reading": "v => \"sensitive\"" },
	  "rules": [ "sensitive -> archive" ]
	}`), ip.CompileLabelFunc)
	if err != nil {
		t.Fatal(err)
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = false // fail-open default
	ip.SetGuard(guard.New(guard.Limits{Fuel: 10_000}))
	prog, err := parser.Parse("test.js", `while (true) { }`)
	if err != nil {
		t.Fatal(err)
	}
	wantBudgetErr(t, ip.Run(prog), guard.KindFuel)
	if deg, _ := ip.Tracker.Degraded(); deg {
		t.Fatal("guard trip poisoned a fail-open tracker")
	}
}

func TestGuardTripIsStickyAcrossRuns(t *testing.T) {
	ip, err := runGuarded(t, `while (true) { }`, guard.Limits{Fuel: 5_000})
	wantBudgetErr(t, err, guard.KindFuel)
	// a second program on the same interpreter (same guard) fails fast
	prog, perr := parser.Parse("again.js", `console.log("hi");`)
	if perr != nil {
		t.Fatal(perr)
	}
	err = ip.Run(prog)
	wantBudgetErr(t, err, guard.KindFuel)
	if len(ip.ConsoleOut) != 0 {
		t.Fatalf("post-trip program produced output: %v", ip.ConsoleOut)
	}
}
