package interp

import (
	"strings"
	"testing"

	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/resolve"
)

// Regression tests for the sloppy-mode and block-scoping sweep that landed
// with the resolver: implicit-global creation unified across assignment
// forms, per-iteration let/const loop bindings, and const enforcement on
// loop variables and through shadowing. Every test runs on both execution
// modes — the resolved slot path and the -noresolve map walk — since the
// two must agree observably.

// bothModes runs the test body once per execution mode.
func bothModes(t *testing.T, f func(t *testing.T, noResolve bool)) {
	t.Run("slots", func(t *testing.T) { f(t, false) })
	t.Run("noresolve", func(t *testing.T) { f(t, true) })
}

// runMode executes src in a fresh interpreter under one execution mode and
// returns the interpreter and the run error.
func runMode(t *testing.T, src string, noResolve bool) (*Interp, error) {
	t.Helper()
	prog, err := parser.Parse("scope.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !noResolve {
		resolve.Resolve(prog)
	}
	ip := New()
	ip.NoResolve = noResolve
	return ip, ip.Run(prog)
}

func wantModeLogs(t *testing.T, src string, noResolve bool, want ...string) {
	t.Helper()
	ip, err := runMode(t, src, noResolve)
	if err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	got := ip.ConsoleOut
	if len(got) != len(want) {
		t.Fatalf("log lines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// wantModeError asserts the run fails and the error mentions substr.
func wantModeError(t *testing.T, src string, noResolve bool, substr string) {
	t.Helper()
	_, err := runMode(t, src, noResolve)
	if err == nil {
		t.Fatalf("run succeeded, want error containing %q\nsource:\n%s", substr, src)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("err = %v, want substring %q", err, substr)
	}
}

// Sloppy-mode implicit globals: every assignment form targeting an
// undeclared name creates the global, including compound assignment,
// update expressions, and non-declared for-in/of loop variables (the
// latter used to error out).
func TestImplicitGlobalUnifiedAcrossAssignmentForms(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeLogs(t, `
plain = 1;
compound += 2;
update++;
for (k in { a: 1 }) { }
for (v of [1, 2, 3]) { }
function f() { inner = 7; }
f();
console.log(plain, compound, update, k, v, inner);
`, noResolve, "1 NaN NaN a 3 7")
	})
}

// An implicit global created inside a function is visible at top level and
// from sibling calls — it lands on the global env, not the caller's.
func TestImplicitGlobalLandsOnGlobalEnv(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeLogs(t, `
function set() { shared = "s1"; }
function get() { return shared; }
set();
console.log(get(), shared);
`, noResolve, "s1 s1")
	})
}

// A for-of loop variable declared with let in an enclosing scope is
// assigned, not shadowed, by a bare-name loop head.
func TestForOfAssignsOuterDeclaredVariable(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeLogs(t, `
let x = "init";
function f() { for (x of [10, 20]) { } }
f();
console.log(x);
`, noResolve, "20")
	})
}

// Per-iteration let bindings: closures created in different iterations of
// a for-let loop capture distinct bindings.
func TestForLetPerIterationBinding(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeLogs(t, `
var fns = [];
for (let i = 0; i < 3; i = i + 1) {
  fns.push(function () { return i; });
}
var f0 = fns[0], f1 = fns[1], f2 = fns[2];
console.log(f0(), f1(), f2());
`, noResolve, "0 1 2")
	})
}

// Writes through a captured binding stay confined to that iteration's
// copy: mutating iteration 0's binding never shows through iteration 1's.
func TestForLetCapturedBindingIsolation(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeLogs(t, `
var fns = [];
for (let i = 0; i < 2; i = i + 1) {
  fns.push(function () { i = i + 10; return i; });
}
var f0 = fns[0], f1 = fns[1];
console.log(f0(), f0(), f1());
`, noResolve, "10 20 11")
	})
}

// for (const x of ...) declares a fresh per-iteration const binding.
func TestForOfConstPerIteration(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeLogs(t, `
var fns = [];
for (const m of ["a", "b", "c"]) {
  fns.push(function () { return m; });
}
var f0 = fns[0], f1 = fns[1], f2 = fns[2];
console.log(f0(), f1(), f2());
`, noResolve, "a b c")
	})
}

// Assigning to a const loop variable is an error, for both for-of and
// for-in heads (the DeclKind used to be ignored here).
func TestForOfConstAssignmentBlocked(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeError(t, `for (const x of [1, 2]) { x = 9; }`,
			noResolve, `assignment to constant variable "x"`)
		wantModeError(t, `for (const k in { a: 1 }) { k = "z"; }`,
			noResolve, `assignment to constant variable "k"`)
	})
}

// let loop variables in for-of/for-in heads stay writable.
func TestForOfLetAssignmentAllowed(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeLogs(t, `
let out = "";
for (let x of [1, 2]) { x = x * 10; out = out + x + ";"; }
console.log(out);
`, noResolve, "10;20;")
	})
}

// Shadowing: an inner let over an outer const is freely writable, and the
// outer const stays intact.
func TestShadowedConstInnerLetWritable(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeLogs(t, `
const c = 1;
{
  let c = 2;
  c = 3;
  console.log(c);
}
console.log(c);
`, noResolve, "3", "1")
	})
}

// Writing to an outer const from a nested block or function is an error —
// the const flag must survive the slot-path scope walk.
func TestOuterConstNotWritableThroughNesting(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeError(t, `const k = 1; { k = 2; }`,
			noResolve, `assignment to constant variable "k"`)
		wantModeError(t, `const g = 1; function f() { g = 2; } f();`,
			noResolve, `assignment to constant variable "g"`)
	})
}

// Reading a genuinely undefined name is still an error under both modes.
func TestUndefinedReadStillErrors(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		wantModeError(t, `console.log(nowhere);`, noResolve, `"nowhere" is not defined`)
	})
}

// labelLeakPolicy marks anything passed to __t.label("Mark") as Beta; the
// only rule allows Alpha → Beta, so Beta data flowing into an
// Alpha-labelled sink is comparable but not permitted — a violation.
const labelLeakPolicy = `{
  "labellers": { "Mark": "v => \"Beta\"" },
  "rules": [ "Alpha -> Beta" ]
}`

// Labels must not leak across loop iterations: with per-iteration
// bindings, only the closure that captured the labelled element trips the
// sink check. (Before the per-iteration fix all closures shared one
// binding holding the final — unlabelled — element, which masked the
// labelled flow entirely.)
func TestTrackerLabelsDoNotLeakAcrossIterations(t *testing.T) {
	bothModes(t, func(t *testing.T, noResolve bool) {
		prog, err := parser.Parse("leak.js", `
const sink = { send: function (x) { return x; } };
const items = ["a", __t.label({ v: "b" }, "Mark"), "c"];
const fns = [];
for (const m of items) {
  fns.push(function () { __t.invoke(sink, "send", [m]); });
}
`)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if !noResolve {
			resolve.Resolve(prog)
		}
		ip := New()
		ip.NoResolve = noResolve
		pol := loadPolicy(t, ip, labelLeakPolicy)
		tr := ip.InstallTracker(pol)
		tr.Enforce = false // audit: record, don't block
		if err := ip.Run(prog); err != nil {
			t.Fatalf("run: %v", err)
		}
		sinkV, ok := ip.Globals.Lookup("sink")
		if !ok {
			t.Fatal("sink not defined")
		}
		ip.Tracker.Attach(sinkV.(*Object), policy.NewLabelSet("Alpha"))

		// re-run the three captured closures against the labelled sink
		fnsV, _ := ip.Globals.Lookup("fns")
		arr := fnsV.(*Array)
		if len(arr.Elems) != 3 {
			t.Fatalf("captured %d closures, want 3", len(arr.Elems))
		}
		for i, el := range arr.Elems {
			if _, err := ip.CallFunction(el, Undefined{}, nil, prog.Body[0].Pos()); err != nil {
				t.Fatalf("closure %d: %v", i, err)
			}
		}
		if n := len(ip.Tracker.Violations()); n != 1 {
			t.Fatalf("violations = %d, want exactly 1 (the labelled iteration)", n)
		}
	})
}
