package interp

import (
	"errors"
	"fmt"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/dift"
	"turnstile/internal/faults"
	"turnstile/internal/telemetry"
)

// SinkWrite records one write to a host I/O sink — the observable output of
// an application run. Tests and the harness compare sink traces between
// original and instrumented runs.
type SinkWrite struct {
	Module string // "fs", "net", "http", "mqtt", "smtp", "sqlite", "process"
	Op     string // "writeFile", "write", "publish", "sendMail", "run", ...
	Target string // path / host / topic / recipient / table
	Value  Value  // the written value (unwrapped)
}

// IORecorder aggregates the host modules' observable I/O and the source
// objects that the workload pump injects events into.
type IORecorder struct {
	Writes []SinkWrite
	// Sources maps a stable name ("net.socket:camera:554", "process.stdin")
	// to the event-emitting object the application registered callbacks on.
	Sources map[string]*Object
	// Files is the virtual filesystem backing the fs module.
	Files map[string]string
	// Intervals holds callbacks registered via setInterval.
	Intervals []Value
	// Denied counts sink writes suppressed by the fail-closed gate (the
	// tracker was degraded when the write reached the sink boundary).
	Denied int
}

// NewIORecorder returns an empty recorder with a few seed files.
func NewIORecorder() *IORecorder {
	return &IORecorder{
		Sources: make(map[string]*Object),
		Files:   make(map[string]string),
	}
}

// Reset prepares the recorder for a fresh run: it clears the recorded
// writes and the interval callbacks registered by the previous run (a
// reused interpreter must not re-fire a prior program's setInterval
// handlers). Sources and Files are intentionally kept — they model the
// deployment environment (attached devices, the virtual disk), which
// persists across runs of the same interpreter.
func (r *IORecorder) Reset() {
	r.Writes = r.Writes[:0]
	r.Intervals = nil
	r.Denied = 0
}

// WritesTo returns the writes whose module matches.
func (r *IORecorder) WritesTo(module string) []SinkWrite {
	var out []SinkWrite
	for _, w := range r.Writes {
		if w.Module == module {
			out = append(out, w)
		}
	}
	return out
}

// record appends a sink write, unwrapping tracked values so external
// interfaces receive native data (§4.4).
func (ip *Interp) record(module, op, target string, v Value) {
	// Fail-closed gate: every sink write funnels through here, so a
	// degraded tracker suppresses the write no matter how the op was
	// reached — including paths with no instrumented check in front of
	// them. This is what makes "no sink write after a guard trip" a
	// property of the runtime rather than of the instrumentation.
	if ip.Tracker != nil && ip.Tracker.FailClosed {
		if degraded, _ := ip.Tracker.Degraded(); degraded {
			ip.IO.Denied++
			if ip.Metrics != nil {
				ip.Metrics.Add("sink.denied."+module+"."+op, 1)
			}
			return
		}
	}
	// the labels are read before unwrapping: UnwrapDeep strips Box
	// wrappers, and with them the identities the label map is keyed on
	if ip.Tracer != nil {
		var labels []string
		if ip.Tracker != nil {
			labels = dift.LabelStrings(ip.Tracker.DataLabels(v))
		}
		ip.Tracer.Record(telemetry.Event{Op: "sink", Site: module + "." + op, Target: target, Labels: labels})
	}
	if ip.Tracker != nil {
		v = ip.Tracker.UnwrapDeep(v)
	} else {
		v = dift.Unwrap(v)
	}
	if ip.Metrics != nil {
		ip.Metrics.Add("sink."+module+"."+op, 1)
	}
	ip.IO.Writes = append(ip.IO.Writes, SinkWrite{Module: module, Op: op, Target: target, Value: v})
}

// fault consults the injector (when installed) before a host operation.
// An injected delay is performed here, on the virtual clock; an injected
// failure returns the Node-style error object the op should surface
// (throw for sync ops, first callback argument for async ones). The
// decision is a pure function of the operation's identity and invocation
// count, so the original and instrumented versions of an application see
// an identical fault sequence.
func (ip *Interp) fault(module, op, target string) (faults.Decision, *Object) {
	// every host-module operation funnels through here, making it the one
	// interception point for host-call metrics
	if ip.Metrics != nil {
		ip.Metrics.Add("host."+module+"."+op, 1)
	}
	if ip.Faults == nil {
		return faults.Decision{Action: faults.Pass}, nil
	}
	d := ip.Faults.Decide(module, op, target)
	switch d.Action {
	case faults.Delay:
		ip.Clock.Advance(d.Delay)
		// the clock just moved: probe the guard deadline immediately so an
		// injected-delay storm cannot outrun the periodic fuel-based probe
		ip.Guard.CheckDeadline(module + "." + op)
	case faults.Fail:
		return d, ip.faultError(d, module, op)
	}
	return d, nil
}

// faultError builds the Node-style error object for an injected failure:
// the conventional "CODE: detail" message is split into a code property.
func (ip *Interp) faultError(d faults.Decision, module, op string) *Object {
	e := ip.MakeError("Error", d.Err)
	if i := strings.IndexByte(d.Err, ':'); i > 0 {
		e.Set("code", d.Err[:i])
	}
	e.Set("syscall", module+"."+op)
	return e
}

// Emit fires the named event on an emitter object, invoking every listener
// registered via .on(event, cb). It is how the workload pump injects
// messages into the application. Every listener is delivered to even when
// an earlier one fails — one bad callback must not starve its siblings —
// and the collected errors are returned joined.
func (ip *Interp) Emit(obj *Object, event string, args ...Value) error {
	var errs []error
	for _, cb := range obj.Listeners[event] {
		if _, err := ip.CallFunction(cb, obj, args, ast.Pos{}); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// RegisterModule installs a custom module for require(name); used by the
// Node-RED substrate to provide third-party node packages.
func (ip *Interp) RegisterModule(name string, v Value) { ip.modules[name] = v }

// SetLocalLoader installs the resolver for local requires ("./x"). The
// loader returns the module's exports value; results are cached.
func (ip *Interp) SetLocalLoader(loader func(name string) (Value, bool, error)) {
	ip.localLoader = loader
}

// RunModule executes a parsed file with fresh module/exports bindings and
// returns its module.exports. The previous bindings are restored, so
// nested requires work.
func (ip *Interp) RunModule(prog *ast.Program) (Value, error) {
	g := ip.Globals
	prevModule, hadModule := g.Lookup("module")
	prevExports, hadExports := g.Lookup("exports")
	moduleObj := NewObject()
	exportsObj := NewObject()
	moduleObj.Set("exports", exportsObj)
	g.Define("module", moduleObj, false)
	g.Define("exports", exportsObj, false)
	err := ip.Run(prog)
	var out Value = exportsObj
	if v, ok := moduleObj.Get("exports"); ok {
		out = v
	}
	if hadModule {
		g.Define("module", prevModule, false)
	}
	if hadExports {
		g.Define("exports", prevExports, false)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// newEmitter creates an object with an .on method registering listeners.
func (ip *Interp) newEmitter(class string) *Object {
	o := NewObject()
	o.Class = class
	o.Listeners = make(map[string][]Value)
	o.Set("on", NewHostFunc("on", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) >= 2 {
			ev := ToString(args[0])
			o.Listeners[ev] = append(o.Listeners[ev], args[1])
		}
		return o, nil
	}))
	o.Set("once", NewHostFunc("once", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) >= 2 {
			ev := ToString(args[0])
			o.Listeners[ev] = append(o.Listeners[ev], args[1])
		}
		return o, nil
	}))
	o.Set("emit", NewHostFunc("emit", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) >= 1 {
			if err := ip.Emit(o, ToString(args[0]), args[1:]...); err != nil {
				return nil, err
			}
		}
		return true, nil
	}))
	o.Set("removeAllListeners", NewHostFunc("removeAllListeners", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) >= 1 {
			delete(o.Listeners, ToString(args[0]))
		} else {
			o.Listeners = make(map[string][]Value)
		}
		return o, nil
	}))
	return o
}

// registerSource exposes an emitter to the workload pump under a stable
// name.
func (ip *Interp) registerSource(name string, o *Object) {
	ip.IO.Sources[name] = o
}

// Source returns a previously-registered source emitter.
func (ip *Interp) Source(name string) (*Object, bool) {
	o, ok := ip.IO.Sources[name]
	return o, ok
}

// SourceNames lists registered sources (sorted) — handy in tests.
func (ip *Interp) SourceNames() []string {
	names := make([]string, 0, len(ip.IO.Sources))
	for n := range ip.IO.Sources {
		names = append(names, n)
	}
	SortStrings(names)
	return names
}

func (ip *Interp) installHostModules() {
	g := ip.Globals

	// require()
	g.Define("require", NewHostFunc("require", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return nil, &Throw{Val: ip.MakeError("Error", "require: missing module name")}
		}
		name := ToString(args[0])
		if m, ok := ip.modules[name]; ok {
			return m, nil
		}
		// local file require: "./device-control" resolves through the
		// loader installed by the deployment pipeline
		if strings.HasPrefix(name, "./") || strings.HasPrefix(name, "../") {
			key := localModuleKey(name)
			if m, ok := ip.modules[key]; ok {
				return m, nil
			}
			if ip.localLoader != nil {
				m, ok, err := ip.localLoader(key)
				if err != nil {
					return nil, err
				}
				if ok {
					ip.modules[key] = m
					return m, nil
				}
			}
			return nil, &Throw{Val: ip.MakeError("Error", fmt.Sprintf("cannot find module '%s'", name))}
		}
		m, err := ip.buildModule(name)
		if err != nil {
			return nil, err
		}
		ip.modules[name] = m
		return m, nil
	}), false)

	// process
	proc := NewObject()
	proc.Class = "process"
	stdin := ip.newEmitter("ReadStream")
	ip.registerSource("process.stdin", stdin)
	proc.Set("stdin", stdin)
	stdout := NewObject()
	stdout.Set("write", NewHostFunc("write", func(ip *Interp, this Value, args []Value) (Value, error) {
		d, errObj := ip.fault("process", "stdout.write", "stdout")
		switch d.Action {
		case faults.Fail:
			return nil, &Throw{Val: errObj}
		case faults.Drop:
			return true, nil
		}
		if len(args) > 0 {
			ip.record("process", "stdout.write", "stdout", args[0])
		}
		return true, nil
	}))
	proc.Set("stdout", stdout)
	env := NewObject()
	env.Set("NODE_ENV", "production")
	env.Set("REGION", "EU")
	proc.Set("env", env)
	proc.Set("exit", NewHostFunc("exit", func(ip *Interp, this Value, args []Value) (Value, error) {
		return undef, nil
	}))
	g.Define("process", proc, false)

	// module/exports skeleton so CommonJS-style files run unmodified
	moduleObj := NewObject()
	exportsObj := NewObject()
	moduleObj.Set("exports", exportsObj)
	g.Define("module", moduleObj, false)
	g.Define("exports", exportsObj, false)
}

// buildModule constructs a stand-in for a built-in Node module. Each module
// exposes the same call patterns as the real one so that the analyzers see
// the genuine source/sink shapes, and each sink records its writes.
func (ip *Interp) buildModule(name string) (Value, error) {
	switch name {
	case "fs":
		return ip.fsModule(), nil
	case "net":
		return ip.netModule(), nil
	case "http", "https":
		return ip.httpModule(), nil
	case "mqtt":
		return ip.mqttModule(), nil
	case "nodemailer":
		return ip.mailModule(), nil
	case "sqlite3":
		return ip.sqliteModule(), nil
	case "child_process":
		return ip.childProcessModule(), nil
	case "events":
		m := NewObject()
		m.Set("EventEmitter", NewHostFunc("EventEmitter", func(ip *Interp, this Value, args []Value) (Value, error) {
			return ip.newEmitter("EventEmitter"), nil
		}))
		return m, nil
	case "util", "path", "os", "crypto":
		return ip.miscModule(name), nil
	}
	return nil, &Throw{Val: ip.MakeError("Error", fmt.Sprintf("cannot find module '%s'", name))}
}

func (ip *Interp) fsModule() *Object {
	m := NewObject()
	m.Class = "fs"
	m.Set("readFile", NewHostFunc("readFile", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return undef, nil
		}
		path := ToString(args[0])
		cb := args[len(args)-1]
		d, errObj := ip.fault("fs", "readFile", path)
		switch d.Action {
		case faults.Fail:
			return ip.CallFunction(cb, undef, []Value{errObj, null}, ast.Pos{})
		case faults.Drop:
			return undef, nil // the callback is never invoked
		}
		content, ok := ip.IO.Files[path]
		if !ok {
			content = "contents-of:" + path
		}
		return ip.CallFunction(cb, undef, []Value{null, content}, ast.Pos{})
	}))
	m.Set("readFileSync", NewHostFunc("readFileSync", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		path := ToString(args[0])
		d, errObj := ip.fault("fs", "readFileSync", path)
		switch d.Action {
		case faults.Fail:
			return nil, &Throw{Val: errObj}
		case faults.Drop:
			return "", nil
		}
		if content, ok := ip.IO.Files[path]; ok {
			return content, nil
		}
		return "contents-of:" + path, nil
	}))
	m.Set("writeFile", NewHostFunc("writeFile", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return undef, nil
		}
		path := ToString(args[0])
		d, errObj := ip.fault("fs", "writeFile", path)
		if d.Action == faults.Fail {
			if len(args) > 2 {
				return ip.CallFunction(args[len(args)-1], undef, []Value{errObj}, ast.Pos{})
			}
			return undef, nil
		}
		if d.Action != faults.Drop {
			ip.record("fs", "writeFile", path, args[1])
			ip.IO.Files[path] = ToString(args[1])
		}
		if len(args) > 2 {
			return ip.CallFunction(args[len(args)-1], undef, []Value{null}, ast.Pos{})
		}
		return undef, nil
	}))
	m.Set("writeFileSync", NewHostFunc("writeFileSync", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return undef, nil
		}
		path := ToString(args[0])
		d, errObj := ip.fault("fs", "writeFileSync", path)
		switch d.Action {
		case faults.Fail:
			return nil, &Throw{Val: errObj}
		case faults.Drop:
			return undef, nil
		}
		ip.record("fs", "writeFileSync", path, args[1])
		ip.IO.Files[path] = ToString(args[1])
		return undef, nil
	}))
	m.Set("appendFileSync", NewHostFunc("appendFileSync", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return undef, nil
		}
		path := ToString(args[0])
		d, errObj := ip.fault("fs", "appendFileSync", path)
		switch d.Action {
		case faults.Fail:
			return nil, &Throw{Val: errObj}
		case faults.Drop:
			return undef, nil
		}
		ip.record("fs", "appendFileSync", path, args[1])
		ip.IO.Files[path] += ToString(args[1])
		return undef, nil
	}))
	m.Set("existsSync", NewHostFunc("existsSync", func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		_, ok := ip.IO.Files[ToString(args[0])]
		return ok, nil
	}))
	m.Set("createReadStream", NewHostFunc("createReadStream", func(ip *Interp, this Value, args []Value) (Value, error) {
		path := "?"
		if len(args) > 0 {
			path = ToString(args[0])
		}
		stream := ip.newEmitter("ReadStream")
		stream.Set("path", path)
		ip.registerSource("fs.readStream:"+path, stream)
		return stream, nil
	}))
	m.Set("createWriteStream", NewHostFunc("createWriteStream", func(ip *Interp, this Value, args []Value) (Value, error) {
		path := "?"
		if len(args) > 0 {
			path = ToString(args[0])
		}
		stream := NewObject()
		stream.Class = "WriteStream"
		stream.Set("write", NewHostFunc("write", func(ip *Interp, this Value, args []Value) (Value, error) {
			d, errObj := ip.fault("fs", "stream.write", path)
			switch d.Action {
			case faults.Fail:
				return nil, &Throw{Val: errObj}
			case faults.Drop:
				return true, nil
			}
			if len(args) > 0 {
				ip.record("fs", "stream.write", path, args[0])
			}
			return true, nil
		}))
		stream.Set("end", NewHostFunc("end", func(ip *Interp, this Value, args []Value) (Value, error) {
			d, errObj := ip.fault("fs", "stream.end", path)
			switch d.Action {
			case faults.Fail:
				return nil, &Throw{Val: errObj}
			case faults.Drop:
				return undef, nil
			}
			if len(args) > 0 {
				ip.record("fs", "stream.end", path, args[0])
			}
			return undef, nil
		}))
		return stream, nil
	}))
	return m
}

func (ip *Interp) netModule() *Object {
	m := NewObject()
	m.Class = "net"
	newSocket := func(tag string) *Object {
		sock := ip.newEmitter("Socket")
		ip.registerSource("net.socket:"+tag, sock)
		sock.Set("write", NewHostFunc("write", func(ip *Interp, this Value, args []Value) (Value, error) {
			d, errObj := ip.fault("net", "socket.write", tag)
			switch d.Action {
			case faults.Fail:
				// Node signals write failure through the optional trailing
				// callback; without one, the write just reports failure
				if len(args) > 1 {
					if _, isFn := dift.Unwrap(args[len(args)-1]).(*Function); isFn {
						if _, err := ip.CallFunction(args[len(args)-1], undef, []Value{errObj}, ast.Pos{}); err != nil {
							return nil, err
						}
					}
				}
				return false, nil
			case faults.Drop:
				return true, nil
			}
			if len(args) > 0 {
				ip.record("net", "socket.write", tag, args[0])
			}
			return true, nil
		}))
		sock.Set("end", NewHostFunc("end", func(ip *Interp, this Value, args []Value) (Value, error) {
			return undef, nil
		}))
		return sock
	}
	m.Set("connect", NewHostFunc("connect", func(ip *Interp, this Value, args []Value) (Value, error) {
		tag := "default"
		if len(args) > 0 {
			switch a := dift.Unwrap(args[0]).(type) {
			case *Object:
				host, _ := a.Get("host")
				port, _ := a.Get("port")
				tag = ToString(host) + ":" + ToString(port)
			default:
				tag = ToString(a)
			}
		}
		return newSocket(tag), nil
	}))
	m.Set("createConnection", NewHostFunc("createConnection", func(ip *Interp, this Value, args []Value) (Value, error) {
		return newSocket("connection"), nil
	}))
	m.Set("createServer", NewHostFunc("createServer", func(ip *Interp, this Value, args []Value) (Value, error) {
		server := ip.newEmitter("Server")
		if len(args) > 0 {
			server.Listeners["connection"] = append(server.Listeners["connection"], args[0])
		}
		server.Set("listen", NewHostFunc("listen", func(ip *Interp, this Value, args []Value) (Value, error) {
			return server, nil
		}))
		ip.registerSource("net.server", server)
		return server, nil
	}))
	return m
}

func (ip *Interp) httpModule() *Object {
	m := NewObject()
	m.Class = "http"
	m.Set("request", NewHostFunc("request", func(ip *Interp, this Value, args []Value) (Value, error) {
		target := "http-endpoint"
		if len(args) > 0 {
			switch a := dift.Unwrap(args[0]).(type) {
			case *Object:
				if h, ok := a.Get("host"); ok {
					target = ToString(h)
				} else if h, ok := a.Get("hostname"); ok {
					target = ToString(h)
				}
			default:
				target = ToString(a)
			}
		}
		req := NewObject()
		req.Class = "ClientRequest"
		req.Set("write", NewHostFunc("write", func(ip *Interp, this Value, args []Value) (Value, error) {
			d, _ := ip.fault("http", "request.write", target)
			if d.Action == faults.Fail {
				return false, nil
			}
			if d.Action != faults.Drop && len(args) > 0 {
				ip.record("http", "request.write", target, args[0])
			}
			return true, nil
		}))
		req.Set("end", NewHostFunc("end", func(ip *Interp, this Value, args []Value) (Value, error) {
			d, _ := ip.fault("http", "request.end", target)
			if d.Action == faults.Fail || d.Action == faults.Drop {
				return undef, nil
			}
			if len(args) > 0 {
				ip.record("http", "request.end", target, args[0])
			}
			return undef, nil
		}))
		req.Set("on", NewHostFunc("on", func(ip *Interp, this Value, args []Value) (Value, error) {
			return req, nil
		}))
		// response callback receives an emitter the pump can feed
		if len(args) > 1 {
			res := ip.newEmitter("IncomingMessage")
			ip.registerSource("http.response:"+target, res)
			if _, err := ip.CallFunction(args[1], undef, []Value{res}, ast.Pos{}); err != nil {
				return nil, err
			}
		}
		return req, nil
	}))
	m.Set("get", NewHostFunc("get", func(ip *Interp, this Value, args []Value) (Value, error) {
		target := "http-endpoint"
		if len(args) > 0 {
			target = ToString(args[0])
		}
		if len(args) > 1 {
			res := ip.newEmitter("IncomingMessage")
			ip.registerSource("http.response:"+target, res)
			if _, err := ip.CallFunction(args[1], undef, []Value{res}, ast.Pos{}); err != nil {
				return nil, err
			}
		}
		req := NewObject()
		req.Set("on", NewHostFunc("on", func(ip *Interp, this Value, args []Value) (Value, error) { return req, nil }))
		req.Set("end", NewHostFunc("end", func(ip *Interp, this Value, args []Value) (Value, error) { return undef, nil }))
		return req, nil
	}))
	m.Set("createServer", NewHostFunc("createServer", func(ip *Interp, this Value, args []Value) (Value, error) {
		server := ip.newEmitter("Server")
		if len(args) > 0 {
			server.Listeners["request"] = append(server.Listeners["request"], args[0])
		}
		server.Set("listen", NewHostFunc("listen", func(ip *Interp, this Value, args []Value) (Value, error) {
			return server, nil
		}))
		ip.registerSource("http.server", server)
		return server, nil
	}))
	return m
}

func (ip *Interp) mqttModule() *Object {
	m := NewObject()
	m.Class = "mqtt"
	m.Set("connect", NewHostFunc("connect", func(ip *Interp, this Value, args []Value) (Value, error) {
		url := "broker"
		if len(args) > 0 {
			url = ToString(args[0])
		}
		client := ip.newEmitter("MqttClient")
		ip.registerSource("mqtt:"+url, client)
		client.Set("publish", NewHostFunc("publish", func(ip *Interp, this Value, args []Value) (Value, error) {
			topic := "?"
			if len(args) > 0 {
				topic = ToString(args[0])
			}
			d, errObj := ip.fault("mqtt", "publish", topic)
			switch d.Action {
			case faults.Fail:
				// publish(topic, msg, [cb]): failure goes to the callback
				// when given, otherwise it throws like a lost connection
				if len(args) > 2 {
					if _, isFn := dift.Unwrap(args[len(args)-1]).(*Function); isFn {
						if _, err := ip.CallFunction(args[len(args)-1], undef, []Value{errObj}, ast.Pos{}); err != nil {
							return nil, err
						}
						return client, nil
					}
				}
				return nil, &Throw{Val: errObj}
			case faults.Drop:
				return client, nil
			}
			if len(args) > 1 {
				ip.record("mqtt", "publish", topic, args[1])
			}
			return client, nil
		}))
		client.Set("subscribe", NewHostFunc("subscribe", func(ip *Interp, this Value, args []Value) (Value, error) {
			return client, nil
		}))
		client.Set("end", NewHostFunc("end", func(ip *Interp, this Value, args []Value) (Value, error) {
			return undef, nil
		}))
		return client, nil
	}))
	return m
}

func (ip *Interp) mailModule() *Object {
	m := NewObject()
	m.Class = "nodemailer"
	m.Set("createTransport", NewHostFunc("createTransport", func(ip *Interp, this Value, args []Value) (Value, error) {
		transport := NewObject()
		transport.Class = "SMTPTransport"
		transport.Set("sendMail", NewHostFunc("sendMail", func(ip *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return undef, nil
			}
			to := "?"
			if opts, ok := dift.Unwrap(args[0]).(*Object); ok {
				if t, found := opts.Get("to"); found {
					to = ToString(t)
				}
			}
			d, errObj := ip.fault("smtp", "sendMail", to)
			switch d.Action {
			case faults.Fail:
				if len(args) > 1 {
					return ip.CallFunction(args[1], undef, []Value{errObj, null}, ast.Pos{})
				}
				return nil, &Throw{Val: errObj}
			case faults.Drop:
				// the mail vanishes in transit; the caller sees success
				if len(args) > 1 {
					info := NewObject()
					info.Set("accepted", NewArray(to))
					return ip.CallFunction(args[1], undef, []Value{null, info}, ast.Pos{})
				}
				return undef, nil
			}
			ip.record("smtp", "sendMail", to, args[0])
			if len(args) > 1 {
				info := NewObject()
				info.Set("accepted", NewArray(to))
				return ip.CallFunction(args[1], undef, []Value{null, info}, ast.Pos{})
			}
			return undef, nil
		}))
		return transport, nil
	}))
	return m
}

func (ip *Interp) sqliteModule() *Object {
	m := NewObject()
	m.Class = "sqlite3"
	m.Set("Database", NewHostFunc("Database", func(ip *Interp, this Value, args []Value) (Value, error) {
		path := "db.sqlite"
		if len(args) > 0 {
			path = ToString(args[0])
		}
		db := NewObject()
		db.Class = "Database"
		db.Set("run", NewHostFunc("run", func(ip *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return db, nil
			}
			sql := ToString(args[0])
			d, errObj := ip.fault("sqlite", "run", path+":"+firstWord(sql))
			switch d.Action {
			case faults.Fail:
				if len(args) > 2 {
					if _, isFn := dift.Unwrap(args[len(args)-1]).(*Function); isFn {
						if _, err := ip.CallFunction(args[len(args)-1], undef, []Value{errObj}, ast.Pos{}); err != nil {
							return nil, err
						}
						return db, nil
					}
				}
				return nil, &Throw{Val: errObj}
			case faults.Drop:
				return db, nil
			}
			var payload Value = undef
			if len(args) > 1 {
				payload = args[1]
			}
			ip.record("sqlite", "run", path+":"+firstWord(sql), payload)
			// optional trailing callback
			if len(args) > 2 {
				if _, isFn := dift.Unwrap(args[len(args)-1]).(*Function); isFn {
					return ip.CallFunction(args[len(args)-1], undef, []Value{null}, ast.Pos{})
				}
			}
			return db, nil
		}))
		db.Set("all", NewHostFunc("all", func(ip *Interp, this Value, args []Value) (Value, error) {
			if len(args) < 2 {
				return db, nil
			}
			sql := ""
			if len(args) > 0 {
				sql = ToString(args[0])
			}
			d, errObj := ip.fault("sqlite", "all", path+":"+firstWord(sql))
			switch d.Action {
			case faults.Fail:
				return ip.CallFunction(args[len(args)-1], undef, []Value{errObj, null}, ast.Pos{})
			case faults.Drop:
				return db, nil
			}
			rows := NewArray()
			return ip.CallFunction(args[len(args)-1], undef, []Value{null, rows}, ast.Pos{})
		}))
		db.Set("close", NewHostFunc("close", func(ip *Interp, this Value, args []Value) (Value, error) {
			return undef, nil
		}))
		return db, nil
	}))
	m.Set("verbose", NewHostFunc("verbose", func(ip *Interp, this Value, args []Value) (Value, error) {
		return m, nil
	}))
	return m
}

func (ip *Interp) childProcessModule() *Object {
	m := NewObject()
	m.Class = "child_process"
	m.Set("exec", NewHostFunc("exec", func(ip *Interp, this Value, args []Value) (Value, error) {
		cmd := "?"
		if len(args) > 0 {
			cmd = ToString(args[0])
		}
		d, errObj := ip.fault("child_process", "exec", cmd)
		switch d.Action {
		case faults.Fail:
			if len(args) > 1 {
				return ip.CallFunction(args[len(args)-1], undef, []Value{errObj, "", ""}, ast.Pos{})
			}
			return nil, &Throw{Val: errObj}
		case faults.Drop:
			return undef, nil
		}
		ip.record("child_process", "exec", cmd, cmd)
		if len(args) > 1 {
			return ip.CallFunction(args[len(args)-1], undef, []Value{null, "output-of:" + cmd, ""}, ast.Pos{})
		}
		return undef, nil
	}))
	return m
}

func (ip *Interp) miscModule(name string) *Object {
	m := NewObject()
	m.Class = name
	switch name {
	case "path":
		m.Set("join", NewHostFunc("join", func(ip *Interp, this Value, args []Value) (Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = ToString(a)
			}
			out := ""
			for i, p := range parts {
				if i > 0 {
					out += "/"
				}
				out += p
			}
			return out, nil
		}))
		m.Set("basename", NewHostFunc("basename", func(ip *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return "", nil
			}
			s := ToString(args[0])
			for i := len(s) - 1; i >= 0; i-- {
				if s[i] == '/' {
					return s[i+1:], nil
				}
			}
			return s, nil
		}))
	case "os":
		m.Set("hostname", NewHostFunc("hostname", func(ip *Interp, this Value, args []Value) (Value, error) {
			return "iot-gateway", nil
		}))
	case "crypto":
		m.Set("createHash", NewHostFunc("createHash", func(ip *Interp, this Value, args []Value) (Value, error) {
			h := NewObject()
			acc := ""
			h.Set("update", NewHostFunc("update", func(ip *Interp, this Value, args []Value) (Value, error) {
				if len(args) > 0 {
					acc += ToString(args[0])
				}
				return h, nil
			}))
			h.Set("digest", NewHostFunc("digest", func(ip *Interp, this Value, args []Value) (Value, error) {
				// tiny deterministic FNV-style digest
				var sum uint64 = 1469598103934665603
				for i := 0; i < len(acc); i++ {
					sum ^= uint64(acc[i])
					sum *= 1099511628211
				}
				return fmt.Sprintf("%016x", sum), nil
			}))
			return h, nil
		}))
	case "util":
		m.Set("inspect", NewHostFunc("inspect", func(ip *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return "undefined", nil
			}
			return Inspect(args[0]), nil
		}))
	}
	return m
}

// localModuleKey normalizes "./device-control" to "device-control.js".
func localModuleKey(name string) string {
	for strings.HasPrefix(name, "./") {
		name = name[2:]
	}
	for strings.HasPrefix(name, "../") {
		name = name[3:]
	}
	if !strings.HasSuffix(name, ".js") {
		name += ".js"
	}
	return name
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}
