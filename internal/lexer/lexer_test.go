package lexer

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func mustTokenize(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	return toks
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks := mustTokenize(t, "let x = foo;")
	want := []Kind{Keyword, Ident, Punct, Ident, Punct, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v (%v)", i, got[i], want[i], toks)
		}
	}
	if toks[0].Text != "let" || toks[1].Text != "x" || toks[3].Text != "foo" {
		t.Fatalf("bad texts: %v", texts(toks))
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.14":    "3.14",
		"0x1F":    "0x1F",
		"1e6":     "1e6",
		"2.5e-3":  "2.5e-3",
		".5":      ".5",
		"1E+2":    "1E+2",
		"1000000": "1000000",
	}
	for src, want := range cases {
		toks := mustTokenize(t, src)
		if toks[0].Kind != Number || toks[0].Text != want {
			t.Errorf("Tokenize(%q) = %v, want Number(%q)", src, toks[0], want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	toks := mustTokenize(t, `"a\nb\t\"q\""`)
	if toks[0].Kind != String {
		t.Fatalf("kind = %v", toks[0].Kind)
	}
	if toks[0].Text != "a\nb\t\"q\"" {
		t.Fatalf("text = %q", toks[0].Text)
	}
}

func TestSingleQuoteString(t *testing.T) {
	toks := mustTokenize(t, `'it\'s'`)
	if toks[0].Text != "it's" {
		t.Fatalf("text = %q", toks[0].Text)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize(`"abc`); err == nil {
		t.Fatal("expected error for unterminated string")
	}
	if _, err := Tokenize("\"a\nb\""); err == nil {
		t.Fatal("expected error for newline in string")
	}
}

func TestComments(t *testing.T) {
	toks := mustTokenize(t, "a // line\n/* block\nstill */ b")
	got := texts(toks)
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
	if !toks[1].NLBefor {
		t.Fatal("expected newline-before flag on token after line comment")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := Tokenize("/* never closed"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPunctLongestMatch(t *testing.T) {
	toks := mustTokenize(t, "a === b !== c => d ... ** >>> ?.")
	var ps []string
	for _, tk := range toks {
		if tk.Kind == Punct {
			ps = append(ps, tk.Text)
		}
	}
	want := []string{"===", "!==", "=>", "...", "**", ">>>", "?."}
	if len(ps) != len(want) {
		t.Fatalf("puncts = %v, want %v", ps, want)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("punct %d = %q want %q", i, ps[i], want[i])
		}
	}
}

func TestTemplateLiteralPlain(t *testing.T) {
	toks := mustTokenize(t, "`hello world`")
	if toks[0].Kind != TemplateFull || toks[0].Text != "hello world" {
		t.Fatalf("got %v", toks[0])
	}
}

func TestTemplateLiteralInterp(t *testing.T) {
	toks := mustTokenize(t, "`a${x}b${y}c`")
	want := []Kind{TemplateStart, Ident, TemplateMid, Ident, TemplateEnd, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v (%v)", i, got[i], want[i], toks)
		}
	}
	if toks[0].Text != "a" || toks[2].Text != "b" || toks[4].Text != "c" {
		t.Fatalf("chunks: %v", texts(toks))
	}
}

func TestTemplateWithNestedBraces(t *testing.T) {
	toks := mustTokenize(t, "`v=${ {a: 1}.a }!`")
	last := toks[len(toks)-2]
	if last.Kind != TemplateEnd || last.Text != "!" {
		t.Fatalf("got %v", toks)
	}
}

func TestTemplateUnterminated(t *testing.T) {
	if _, err := Tokenize("`abc${x}"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPositions(t *testing.T) {
	toks := mustTokenize(t, "a\n  bb\n    c")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("bb at %d:%d", toks[1].Line, toks[1].Col)
	}
	if toks[2].Line != 3 || toks[2].Col != 5 {
		t.Fatalf("c at %d:%d", toks[2].Line, toks[2].Col)
	}
}

func TestNewlineBeforeFlag(t *testing.T) {
	toks := mustTokenize(t, "return\nx")
	if toks[0].NLBefor {
		t.Fatal("first token should not have NLBefor")
	}
	if !toks[1].NLBefor {
		t.Fatal("x should have NLBefor after newline")
	}
}

func TestIsKeyword(t *testing.T) {
	for _, kw := range []string{"var", "let", "const", "function", "await", "class"} {
		if !IsKeyword(kw) {
			t.Errorf("IsKeyword(%q) = false", kw)
		}
	}
	for _, id := range []string{"x", "letx", "classy", "Function"} {
		if IsKeyword(id) {
			t.Errorf("IsKeyword(%q) = true", id)
		}
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Tokenize("a # b"); err == nil {
		t.Fatal("expected error for '#'")
	}
}

// Property: tokenizing any identifier-safe string round-trips its text.
func TestQuickIdentRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		var b strings.Builder
		b.WriteByte('v')
		for _, c := range raw {
			c = 'a' + c%26
			b.WriteByte(c)
		}
		name := b.String()
		toks, err := Tokenize(name)
		if err != nil {
			return false
		}
		return len(toks) == 2 && (toks[0].Kind == Ident || toks[0].Kind == Keyword) && toks[0].Text == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the lexer terminates and either errors or ends with EOF for
// arbitrary printable input.
func TestQuickNoPanic(t *testing.T) {
	f := func(raw []byte) bool {
		var b strings.Builder
		for _, c := range raw {
			b.WriteByte(' ' + c%95) // printable ASCII
		}
		toks, err := Tokenize(b.String())
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringEscapeDefaults(t *testing.T) {
	toks := mustTokenize(t, `"\\ \b \0 \r"`)
	want := "\\ \b \x00 \r"
	if toks[0].Text != want {
		t.Fatalf("got %q want %q", toks[0].Text, want)
	}
}

func TestHexLiteralRequiresDigits(t *testing.T) {
	if _, err := Tokenize("0x"); err == nil {
		t.Fatal("0x without digits should fail")
	}
	if _, err := Tokenize("0X}"); err == nil {
		t.Fatal("0X without digits should fail")
	}
	toks := mustTokenize(t, "0x0")
	if toks[0].Kind != Number || toks[0].Text != "0x0" {
		t.Fatalf("tok = %v", toks[0])
	}
}
