// Package lexer tokenizes MiniJS source code.
//
// The lexer supports the ES6 subset used by the corpus applications:
// identifiers, numeric and string literals (single, double and template
// quotes), the full operator set used by the parser, and // and /* */
// comments. Automatic semicolon insertion is handled in the parser by
// treating newlines as soft statement boundaries; the lexer records, for
// each token, whether a newline preceded it.
package lexer

import (
	"fmt"
	"strings"
)

// Kind classifies a token.
type Kind int

// Token kinds produced by the lexer.
const (
	EOF Kind = iota
	Ident
	Keyword
	Number
	String   // 'x' or "x"
	Template // `x${ ... }y` — emitted as TemplateStart/Chunk/End sequence
	Punct    // operators and delimiters

	// Template literal structure. A template literal `a${b}c` lexes as
	//   TemplateStart("a") <tokens for b> TemplateMid/TemplateEnd("c")
	// where TemplateMid closes one interpolation and opens the next chunk.
	TemplateStart
	TemplateMid
	TemplateEnd
	TemplateFull // template with no interpolations: `abc`
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case Keyword:
		return "Keyword"
	case Number:
		return "Number"
	case String:
		return "String"
	case Punct:
		return "Punct"
	case TemplateStart:
		return "TemplateStart"
	case TemplateMid:
		return "TemplateMid"
	case TemplateEnd:
		return "TemplateEnd"
	case TemplateFull:
		return "TemplateFull"
	}
	return "Token?"
}

// Token is one lexical token.
type Token struct {
	Kind    Kind
	Text    string // raw text for idents/puncts, decoded value for strings
	Line    int
	Col     int
	NLBefor bool // a newline appeared between the previous token and this one
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

var keywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true,
	"return": true, "if": true, "else": true, "for": true, "while": true,
	"do": true, "break": true, "continue": true, "new": true, "class": true,
	"extends": true, "this": true, "null": true, "true": true, "false": true,
	"undefined": true, "typeof": true, "delete": true, "in": true, "of": true,
	"async": true, "await": true, "throw": true, "try": true, "catch": true,
	"finally": true, "switch": true, "case": true, "default": true,
	"instanceof": true, "static": true, "void": true,
}

// IsKeyword reports whether name is a MiniJS keyword.
func IsKeyword(name string) bool { return keywords[name] }

// multi-character punctuators, longest-match-first.
var puncts = []string{
	"===", "!==", "**=", "...", ">>>", "<<=", ">>=", "&&=", "||=", "??=",
	"=>", "==", "!=", "<=", ">=", "&&", "||", "??", "++", "--", "+=", "-=",
	"*=", "/=", "%=", "&=", "|=", "^=", "**", "<<", ">>", "?.",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?",
	":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
}

// Error is a lexical error with position information.
type Error struct {
	Msg  string
	Line int
	Col  int
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// Lexer scans a MiniJS source string.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int

	// template interpolation nesting: counts unbalanced '{' since the last
	// '${'. When a '}' is seen at depth 0 with pending template state, the
	// lexer resumes the enclosing template literal.
	templateDepth []int
	nlPending     bool
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the whole input and returns the token list, terminated by
// an EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Line: lx.line, Col: lx.col}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
		lx.nlPending = true
	} else {
		lx.col++
	}
	return c
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	nl := lx.nlPending
	lx.nlPending = false
	line, col := lx.line, lx.col
	mk := func(k Kind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col, NLBefor: nl}
	}
	if lx.pos >= len(lx.src) {
		return mk(EOF, ""), nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		text := lx.scanIdent()
		if keywords[text] {
			return mk(Keyword, text), nil
		}
		return mk(Ident, text), nil
	case c >= '0' && c <= '9', c == '.' && isDigit(lx.peekAt(1)):
		text, err := lx.scanNumber()
		if err != nil {
			return Token{}, err
		}
		return mk(Number, text), nil
	case c == '"' || c == '\'':
		text, err := lx.scanString(c)
		if err != nil {
			return Token{}, err
		}
		return mk(String, text), nil
	case c == '`':
		lx.advance()
		chunk, term, err := lx.scanTemplateChunk()
		if err != nil {
			return Token{}, err
		}
		if term == '`' {
			return mk(TemplateFull, chunk), nil
		}
		lx.templateDepth = append(lx.templateDepth, 0)
		return mk(TemplateStart, chunk), nil
	case c == '}' && len(lx.templateDepth) > 0 && lx.templateDepth[len(lx.templateDepth)-1] == 0:
		// resume template literal
		lx.advance()
		chunk, term, err := lx.scanTemplateChunk()
		if err != nil {
			return Token{}, err
		}
		if term == '`' {
			lx.templateDepth = lx.templateDepth[:len(lx.templateDepth)-1]
			return mk(TemplateEnd, chunk), nil
		}
		return mk(TemplateMid, chunk), nil
	default:
		for _, p := range puncts {
			if strings.HasPrefix(lx.src[lx.pos:], p) {
				for range p {
					lx.advance()
				}
				if len(lx.templateDepth) > 0 {
					top := len(lx.templateDepth) - 1
					switch p {
					case "{":
						lx.templateDepth[top]++
					case "}":
						lx.templateDepth[top]--
					}
				}
				return mk(Punct, p), nil
			}
		}
	}
	return Token{}, lx.errf("unexpected character %q", string(c))
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) scanIdent() string {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	return lx.src[start:lx.pos]
}

func (lx *Lexer) scanNumber() (string, error) {
	start := lx.pos
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		if !isHexDigit(lx.peek()) {
			return "", lx.errf("hexadecimal literal needs at least one digit")
		}
		for isHexDigit(lx.peek()) {
			lx.advance()
		}
		return lx.src[start:lx.pos], nil
	}
	for isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' && isDigit(lx.peekAt(1)) {
		lx.advance()
		for isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if c := lx.peek(); c == 'e' || c == 'E' {
		save := lx.pos
		lx.advance()
		if c := lx.peek(); c == '+' || c == '-' {
			lx.advance()
		}
		if !isDigit(lx.peek()) {
			lx.pos = save // not an exponent; leave for the parser to reject
			return lx.src[start:lx.pos], nil
		}
		for isDigit(lx.peek()) {
			lx.advance()
		}
	}
	return lx.src[start:lx.pos], nil
}

func (lx *Lexer) scanString(quote byte) (string, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return "", lx.errf("unterminated string literal")
		}
		c := lx.advance()
		switch {
		case c == quote:
			return b.String(), nil
		case c == '\n':
			return "", lx.errf("newline in string literal")
		case c == '\\':
			if lx.pos >= len(lx.src) {
				return "", lx.errf("unterminated string escape")
			}
			e := lx.advance()
			b.WriteByte(unescape(e))
		default:
			b.WriteByte(c)
		}
	}
}

// scanTemplateChunk scans template text until a '${' (returns term '$') or
// closing backquote (returns term '`').
func (lx *Lexer) scanTemplateChunk() (string, byte, error) {
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return "", 0, lx.errf("unterminated template literal")
		}
		c := lx.advance()
		switch {
		case c == '`':
			return b.String(), '`', nil
		case c == '$' && lx.peek() == '{':
			lx.advance()
			return b.String(), '$', nil
		case c == '\\':
			if lx.pos >= len(lx.src) {
				return "", 0, lx.errf("unterminated template escape")
			}
			e := lx.advance()
			b.WriteByte(unescape(e))
		default:
			b.WriteByte(c)
		}
	}
}

func unescape(e byte) byte {
	switch e {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case 'b':
		return '\b'
	default:
		return e
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
