package guard

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/telemetry"
)

func TestNilGuardIsNoGovernance(t *testing.T) {
	var g *Guard
	if err := g.Step(1, "x"); err != nil {
		t.Fatalf("nil guard Step: %v", err)
	}
	if err := g.Enter("x"); err != nil {
		t.Fatalf("nil guard Enter: %v", err)
	}
	g.Exit()
	if err := g.Alloc(1<<40, "x"); err != nil {
		t.Fatalf("nil guard Alloc: %v", err)
	}
	if err := g.CheckDeadline("x"); err != nil {
		t.Fatalf("nil guard CheckDeadline: %v", err)
	}
	if g.Tripped() != nil {
		t.Fatal("nil guard reports tripped")
	}
	if g.FuelUsed() != 0 || g.AllocUsed() != 0 || g.Depth() != 0 {
		t.Fatal("nil guard reports nonzero usage")
	}
	g.SetMetrics(telemetry.NewMetrics())
}

func TestZeroLimitsNeverTrip(t *testing.T) {
	g := New(Limits{})
	for i := 0; i < 10_000; i++ {
		if err := g.Step(1, "loop"); err != nil {
			t.Fatalf("unlimited guard tripped: %v", err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := g.Enter("call"); err != nil {
			t.Fatalf("unlimited guard depth tripped: %v", err)
		}
	}
	if err := g.Alloc(1<<40, "big"); err != nil {
		t.Fatalf("unlimited guard alloc tripped: %v", err)
	}
	if g.Tripped() != nil {
		t.Fatal("unlimited guard tripped")
	}
}

func TestFuelTripIsSticky(t *testing.T) {
	g := New(Limits{Fuel: 10})
	var first error
	for i := 0; i < 10; i++ {
		if err := g.Step(1, "ok"); err != nil {
			t.Fatalf("step %d within budget tripped: %v", i, err)
		}
	}
	first = g.Step(1, "pos:11")
	if first == nil {
		t.Fatal("expected fuel trip")
	}
	var be *BudgetError
	if !errors.As(first, &be) || be.Kind != KindFuel || be.Limit != 10 || be.Used != 11 || be.Site != "pos:11" {
		t.Fatalf("unexpected budget error: %#v", first)
	}
	// sticky: same error object, site unchanged, no further accounting
	again := g.Step(1, "pos:12")
	if again != first {
		t.Fatalf("trip not sticky: %v vs %v", again, first)
	}
	if err := g.Alloc(1, "later"); err != first {
		t.Fatalf("alloc after trip should return sticky error, got %v", err)
	}
	if err := g.Enter("later"); err != first {
		t.Fatalf("enter after trip should return sticky error, got %v", err)
	}
	if g.FuelUsed() != 11 {
		t.Fatalf("fuel accounting continued after trip: %d", g.FuelUsed())
	}
}

func TestDepthTripAndExit(t *testing.T) {
	g := New(Limits{MaxDepth: 3})
	for i := 0; i < 3; i++ {
		if err := g.Enter(fmt.Sprintf("call%d", i)); err != nil {
			t.Fatalf("enter %d: %v", i, err)
		}
	}
	err := g.Enter("deep")
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != KindDepth {
		t.Fatalf("expected depth trip, got %v", err)
	}
	// Exit never underflows.
	g2 := New(Limits{MaxDepth: 3})
	g2.Exit()
	if g2.Depth() != 0 {
		t.Fatalf("exit underflowed: %d", g2.Depth())
	}
	if err := g2.Enter("a"); err != nil {
		t.Fatal(err)
	}
	g2.Exit()
	if g2.Depth() != 0 {
		t.Fatalf("depth after enter/exit: %d", g2.Depth())
	}
}

func TestAllocTrip(t *testing.T) {
	g := New(Limits{MaxAlloc: 100})
	if err := g.Alloc(60, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Alloc(0, "zero"); err != nil {
		t.Fatal(err)
	}
	if err := g.Alloc(-5, "neg"); err != nil {
		t.Fatal(err)
	}
	err := g.Alloc(41, "b")
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != KindAlloc || be.Used != 101 {
		t.Fatalf("expected alloc trip at 101, got %v", err)
	}
}

func TestDeadlineTrip(t *testing.T) {
	var now int64
	g := New(Limits{DeadlineTicks: 50, Now: func() int64 { return now }})
	// Fuel steps only probe the deadline every deadlineCheckInterval.
	now = 100
	if err := g.CheckDeadline("timer"); err == nil {
		t.Fatal("expected deadline trip")
	}
	var be *BudgetError
	if !errors.As(g.Tripped(), &be) || be.Kind != KindDeadline || be.Used != 100 {
		t.Fatalf("unexpected deadline trip: %#v", g.Tripped())
	}

	// Via Step: only fires on the periodic probe.
	now = 0
	g2 := New(Limits{DeadlineTicks: 50, Now: func() int64 { return now }})
	for i := 0; i < deadlineCheckInterval-1; i++ {
		if err := g2.Step(1, "s"); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	now = 200
	err := g2.Step(1, "boundary")
	if !errors.As(err, &be) || be.Kind != KindDeadline {
		t.Fatalf("expected deadline trip at probe boundary, got %v", err)
	}
}

func TestDeadlineWithoutClockNeverTrips(t *testing.T) {
	g := New(Limits{DeadlineTicks: 1})
	if err := g.CheckDeadline("x"); err != nil {
		t.Fatalf("deadline without Now tripped: %v", err)
	}
}

func TestOnTripFiresOnce(t *testing.T) {
	g := New(Limits{Fuel: 1})
	var fired []Kind
	g.OnTrip = func(be *BudgetError) { fired = append(fired, be.Kind) }
	g.Step(1, "a")
	g.Step(1, "b")
	g.Step(1, "c")
	if len(fired) != 1 || fired[0] != KindFuel {
		t.Fatalf("OnTrip fired %v", fired)
	}
}

func TestTripCountersExported(t *testing.T) {
	m := telemetry.NewMetrics()
	g := New(Limits{Fuel: 1})
	g.SetMetrics(m)
	g.Step(5, "x")
	g.Step(5, "x")
	if got := m.Counter("guard.trip.fuel").Value(); got != 1 {
		t.Fatalf("guard.trip.fuel = %d, want 1", got)
	}
	if got := m.Counter("guard.trip.depth").Value(); got != 0 {
		t.Fatalf("guard.trip.depth = %d, want 0", got)
	}
}

func TestErrorStrings(t *testing.T) {
	be := &BudgetError{Kind: KindFuel, Limit: 10, Used: 11, Site: "app.js:3:1"}
	if !strings.Contains(be.Error(), "fuel") || !strings.Contains(be.Error(), "app.js:3:1") {
		t.Fatalf("budget error text: %q", be.Error())
	}
	pe := &PipelineError{Stage: "parse", Pos: "x.js:1:1", Cause: errors.New("boom")}
	if !strings.Contains(pe.Error(), "parse") || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("pipeline error text: %q", pe.Error())
	}
	if !errors.Is(pe, pe.Cause) {
		t.Fatal("PipelineError does not unwrap to cause")
	}
}

func TestContain(t *testing.T) {
	// Plain error passes through.
	sentinel := errors.New("plain")
	if err := Contain("interp", "", func() error { return sentinel }); err != sentinel {
		t.Fatalf("plain error not passed through: %v", err)
	}
	// nil passes through.
	if err := Contain("interp", "", func() error { return nil }); err != nil {
		t.Fatalf("nil not passed through: %v", err)
	}
	// Panic becomes PipelineError.
	err := Contain("instrument", "f.js", func() error { panic("kaboom") })
	var pe *PipelineError
	if !errors.As(err, &pe) || pe.Stage != "instrument" || pe.Pos != "f.js" {
		t.Fatalf("panic not contained: %#v", err)
	}
	if !strings.Contains(pe.Cause.Error(), "kaboom") {
		t.Fatalf("cause lost: %v", pe.Cause)
	}
	// A panicked *PipelineError is passed through verbatim (stage-local
	// aborts like the parser's depth limit).
	orig := &PipelineError{Stage: "parse", Pos: "p", Cause: errors.New("deep")}
	err = Contain("outer", "", func() error { panic(orig) })
	if err != orig {
		t.Fatalf("inner PipelineError not preserved: %#v", err)
	}
}

func TestResetOpensFreshBudgetEpoch(t *testing.T) {
	var now int64
	g := New(Limits{Fuel: 10, MaxAlloc: 50, MaxDepth: 3, DeadlineTicks: 100, Now: func() int64 { return now }})
	if err := g.Step(11, "a"); err == nil {
		t.Fatal("fuel not tripped")
	}
	if g.Tripped() == nil {
		t.Fatal("trip not sticky before reset")
	}
	g.Reset()
	if g.Tripped() != nil || g.FuelUsed() != 0 || g.AllocUsed() != 0 || g.Depth() != 0 {
		t.Fatalf("reset left residue: tripped=%v fuel=%d alloc=%d depth=%d",
			g.Tripped(), g.FuelUsed(), g.AllocUsed(), g.Depth())
	}
	if err := g.Step(9, "b"); err != nil {
		t.Fatalf("fresh epoch charged against old usage: %v", err)
	}
}

func TestResetRebasesDeadlineWindow(t *testing.T) {
	var now int64
	g := New(Limits{DeadlineTicks: 100, Now: func() int64 { return now }})
	now = 150
	if err := g.CheckDeadline("a"); err == nil {
		t.Fatal("deadline not tripped 150 ticks from birth")
	}
	g.Reset()
	now = 240
	if err := g.CheckDeadline("b"); err != nil {
		t.Fatalf("deadline measured from birth, not from reset: %v", err)
	}
	now = 251
	if err := g.CheckDeadline("c"); err == nil {
		t.Fatal("rebased deadline never tripped")
	}
	var be *BudgetError
	if !errors.As(g.Tripped(), &be) || be.Kind != KindDeadline {
		t.Fatalf("tripped = %v, want deadline kind", g.Tripped())
	}
}

func TestResetOnNilGuard(t *testing.T) {
	var g *Guard
	g.Reset() // must not panic
}
