// Package guard is Turnstile's resource-governance and failure-containment
// layer. The framework's security argument assumes the analyzer, runtime
// and tracker survive whatever the subject program does; guard makes that
// assumption hold: cooperative budgets turn runaway programs (unbounded
// loops, deep recursion, allocation blow-ups, timer storms) into typed
// BudgetErrors, and panic containment at every pipeline stage boundary
// turns internal failures into typed PipelineErrors, so one adversarial
// application can never hang or kill a harness worker pool.
//
// Design constraints (see DESIGN.md, "Failure domains and fail-closed
// semantics"):
//
//   - Guards-off must be free and transparent. Every charge site guards on
//     a nilable *Guard, and all Guard methods are safe on a nil receiver,
//     so the unguarded hot path pays one predictable branch and behaves
//     byte-identically to the pre-guard code.
//
//   - Trips are sticky and deterministic. Budgets count operations — steps,
//     call frames, allocation units, virtual-clock ticks — never wall time,
//     so the same program trips the same budget at the same operation on
//     every run, at any worker count, and under any fault schedule. Once a
//     guard trips, every subsequent charge returns the same *BudgetError.
//
//   - Zero repository dependencies except telemetry (itself leaf), so the
//     lexer, parser, printer, interpreter, tracker and harness can all use
//     it without import cycles.
package guard

import (
	"fmt"

	"turnstile/internal/telemetry"
)

// Kind names the budget a BudgetError exhausted.
type Kind string

const (
	// KindFuel is the cooperative step budget (evaluation steps).
	KindFuel Kind = "fuel"
	// KindDepth is the call-stack depth cap.
	KindDepth Kind = "depth"
	// KindAlloc is the allocation-unit budget.
	KindAlloc Kind = "alloc"
	// KindDeadline is the virtual-clock deadline.
	KindDeadline Kind = "deadline"
)

// BudgetError reports a tripped resource budget. It is the typed
// alternative to a hang (fuel, deadline), a process-killing Go stack
// overflow (depth) or an OOM (alloc).
type BudgetError struct {
	Kind  Kind
	Limit int64 // the configured budget
	Used  int64 // the charge that tripped it
	Site  string
}

func (e *BudgetError) Error() string {
	if e.Site != "" {
		return fmt.Sprintf("guard: %s budget exceeded at %s (%d > limit %d)", e.Kind, e.Site, e.Used, e.Limit)
	}
	return fmt.Sprintf("guard: %s budget exceeded (%d > limit %d)", e.Kind, e.Used, e.Limit)
}

// PipelineError is a failure contained at a pipeline stage boundary: a
// recovered panic, or a stage-local resource trip (e.g. parser recursion
// depth), converted into a structured error so the caller — a CLI, a
// harness worker — keeps running.
type PipelineError struct {
	Stage string // "lex", "parse", "analyze", "instrument", "print", "interp", "deploy"
	Pos   string // source position or site description, when known
	Cause error
}

func (e *PipelineError) Error() string {
	if e.Pos != "" {
		return fmt.Sprintf("pipeline: %s stage failed at %s: %v", e.Stage, e.Pos, e.Cause)
	}
	return fmt.Sprintf("pipeline: %s stage failed: %v", e.Stage, e.Cause)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *PipelineError) Unwrap() error { return e.Cause }

// Contain runs fn, converting a panic into a *PipelineError for the given
// stage. Non-panic errors pass through unchanged. Go runtime stack
// exhaustion is not recoverable; depth budgets exist to trip first.
func Contain(stage, pos string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PipelineError); ok {
				err = pe
				return
			}
			err = &PipelineError{Stage: stage, Pos: pos, Cause: fmt.Errorf("panic: %v", r)}
		}
	}()
	return fn()
}

// Limits configures a Guard. Zero values mean "unlimited" for each budget.
type Limits struct {
	// Fuel bounds cooperative evaluation steps.
	Fuel int64
	// MaxDepth bounds the interpreter call-stack depth.
	MaxDepth int64
	// MaxAlloc bounds allocation units (elements, properties, bytes of
	// string growth) charged by the runtime's amplification sites.
	MaxAlloc int64
	// DeadlineTicks bounds the virtual clock: once Now() passes this many
	// ticks the deadline budget trips. Requires Now to be set.
	DeadlineTicks int64
	// Now reads the virtual clock (e.g. faults.Clock.Now). Nil disables the
	// deadline even when DeadlineTicks is set.
	Now func() int64
}

// Guard tracks resource budgets for one pipeline run. It is not safe for
// concurrent use: one Guard belongs to one interpreter (MiniJS, like
// Node.js, is single-threaded per application). All methods are safe on a
// nil receiver, which behaves as "no governance".
type Guard struct {
	lim Limits

	fuelUsed  int64
	depth     int64
	allocUsed int64
	tripped   *BudgetError
	// deadlineBase rebases the deadline window: the budget trips when the
	// clock passes deadlineBase + DeadlineTicks. Zero until Reset, so a
	// guard that is never reset keeps the original birth-relative window.
	deadlineBase int64

	// OnTrip, when set, observes the first budget trip (the fail-closed
	// integration point: the interpreter poisons the tracker here).
	OnTrip func(*BudgetError)

	// trip counters, resolved once in SetMetrics
	telFuel, telDepth, telAlloc, telDeadline *telemetry.Counter
}

// New creates a guard with the given limits.
func New(lim Limits) *Guard { return &Guard{lim: lim} }

// SetMetrics attaches guard-trip counters (guard.trip.<kind>) to a metrics
// registry; nil detaches.
func (g *Guard) SetMetrics(m *telemetry.Metrics) {
	if g == nil {
		return
	}
	if m == nil {
		g.telFuel, g.telDepth, g.telAlloc, g.telDeadline = nil, nil, nil, nil
		return
	}
	g.telFuel = m.Counter("guard.trip.fuel")
	g.telDepth = m.Counter("guard.trip.depth")
	g.telAlloc = m.Counter("guard.trip.alloc")
	g.telDeadline = m.Counter("guard.trip.deadline")
}

// SetClock installs the virtual-clock reader the deadline budget uses.
// The runtime calls this when a guard is attached, so callers can build
// Limits before an interpreter (and its clock) exists.
func (g *Guard) SetClock(now func() int64) {
	if g == nil {
		return
	}
	g.lim.Now = now
}

// Limits returns the configured limits (zero Limits on a nil guard).
func (g *Guard) Limits() Limits {
	if g == nil {
		return Limits{}
	}
	return g.lim
}

// Tripped returns the first budget error, or nil while within budget.
// Trips are sticky: after the first, every charge returns the same error.
func (g *Guard) Tripped() *BudgetError {
	if g == nil {
		return nil
	}
	return g.tripped
}

// FuelUsed returns the steps charged so far.
func (g *Guard) FuelUsed() int64 {
	if g == nil {
		return 0
	}
	return g.fuelUsed
}

// AllocUsed returns the allocation units charged so far.
func (g *Guard) AllocUsed() int64 {
	if g == nil {
		return 0
	}
	return g.allocUsed
}

// Depth returns the current call-stack depth.
func (g *Guard) Depth() int64 {
	if g == nil {
		return 0
	}
	return g.depth
}

// Reset clears the used budgets and the sticky trip, opening a fresh
// budget epoch with the same limits — the serve daemon calls this between
// messages so one message's exhaustion cannot starve every message after
// it. The deadline window is rebased to the current virtual-clock
// reading: DeadlineTicks of D now trips D ticks from the reset, not D
// ticks from interpreter birth. Depth is cleared too; between messages a
// well-nested interpreter is back at depth zero, and a trip mid-call can
// leave unpaired Enters behind.
func (g *Guard) Reset() {
	if g == nil {
		return
	}
	g.fuelUsed = 0
	g.allocUsed = 0
	g.depth = 0
	g.tripped = nil
	if g.lim.Now != nil {
		g.deadlineBase = g.lim.Now()
	}
}

// trip records the first budget error and returns the sticky error.
func (g *Guard) trip(kind Kind, limit, used int64, site string, c *telemetry.Counter) *BudgetError {
	if g.tripped == nil {
		g.tripped = &BudgetError{Kind: kind, Limit: limit, Used: used, Site: site}
		if c != nil {
			c.Inc()
		}
		if g.OnTrip != nil {
			g.OnTrip(g.tripped)
		}
	}
	return g.tripped
}

// deadlineCheckInterval spaces the deadline reads: the virtual clock only
// moves on explicit advances, so checking every step would be pure
// overhead.
const deadlineCheckInterval = 256

// Step charges n evaluation steps and, periodically, checks the deadline.
// It returns the sticky *BudgetError once any budget has tripped.
func (g *Guard) Step(n int64, site string) error {
	if g == nil {
		return nil
	}
	if g.tripped != nil {
		return g.tripped
	}
	g.fuelUsed += n
	if g.lim.Fuel > 0 && g.fuelUsed > g.lim.Fuel {
		return g.trip(KindFuel, g.lim.Fuel, g.fuelUsed, site, g.telFuel)
	}
	if g.lim.DeadlineTicks > 0 && g.lim.Now != nil && g.fuelUsed%deadlineCheckInterval == 0 {
		if now := g.lim.Now(); now-g.deadlineBase > g.lim.DeadlineTicks {
			return g.trip(KindDeadline, g.lim.DeadlineTicks, now, site, g.telDeadline)
		}
	}
	return nil
}

// CheckDeadline reads the virtual clock immediately (used at timer and
// host-op boundaries, where the clock actually advances).
func (g *Guard) CheckDeadline(site string) error {
	if g == nil {
		return nil
	}
	if g.tripped != nil {
		return g.tripped
	}
	if g.lim.DeadlineTicks > 0 && g.lim.Now != nil {
		if now := g.lim.Now(); now-g.deadlineBase > g.lim.DeadlineTicks {
			return g.trip(KindDeadline, g.lim.DeadlineTicks, now, site, g.telDeadline)
		}
	}
	return nil
}

// Enter charges one call frame; pair with Exit on all return paths.
func (g *Guard) Enter(site string) error {
	if g == nil {
		return nil
	}
	if g.tripped != nil {
		return g.tripped
	}
	g.depth++
	if g.lim.MaxDepth > 0 && g.depth > g.lim.MaxDepth {
		return g.trip(KindDepth, g.lim.MaxDepth, g.depth, site, g.telDepth)
	}
	return nil
}

// Exit releases one call frame.
func (g *Guard) Exit() {
	if g == nil {
		return
	}
	if g.depth > 0 {
		g.depth--
	}
}

// Alloc charges n allocation units.
func (g *Guard) Alloc(n int64, site string) error {
	if g == nil || n <= 0 {
		return nil
	}
	if g.tripped != nil {
		return g.tripped
	}
	g.allocUsed += n
	if g.lim.MaxAlloc > 0 && g.allocUsed > g.lim.MaxAlloc {
		return g.trip(KindAlloc, g.lim.MaxAlloc, g.allocUsed, site, g.telAlloc)
	}
	return nil
}
