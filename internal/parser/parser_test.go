package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"turnstile/internal/ast"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("test.js", src)
	if err != nil {
		t.Fatalf("Parse error: %v\nsource:\n%s", err, src)
	}
	return prog
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Parse("test.js", src)
	if err == nil {
		t.Fatalf("expected parse error for %q", src)
	}
	return err
}

func TestVarDeclKinds(t *testing.T) {
	prog := parse(t, "var a = 1; let b = 2; const c = 3;")
	if len(prog.Body) != 3 {
		t.Fatalf("got %d statements", len(prog.Body))
	}
	kinds := []ast.DeclKind{ast.DeclVar, ast.DeclLet, ast.DeclConst}
	for i, k := range kinds {
		vd, ok := prog.Body[i].(*ast.VarDecl)
		if !ok || vd.Kind != k {
			t.Fatalf("stmt %d: %#v", i, prog.Body[i])
		}
	}
}

func TestMultiDeclarator(t *testing.T) {
	prog := parse(t, "let a = 1, b, c = 3;")
	vd := prog.Body[0].(*ast.VarDecl)
	if len(vd.Decls) != 3 {
		t.Fatalf("decls = %d", len(vd.Decls))
	}
	if vd.Decls[1].Init != nil {
		t.Fatal("b should have no init")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	prog := parse(t, "x = 1 + 2 * 3;")
	assign := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	add := assign.Value.(*ast.BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op = %q", add.Op)
	}
	mul := add.Right.(*ast.BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("right op = %q", mul.Op)
	}
}

func TestExponentRightAssoc(t *testing.T) {
	prog := parse(t, "y = 2 ** 3 ** 2;")
	assign := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	top := assign.Value.(*ast.BinaryExpr)
	if _, ok := top.Right.(*ast.BinaryExpr); !ok {
		t.Fatal("** should be right-associative")
	}
}

func TestLogicalVsBinary(t *testing.T) {
	prog := parse(t, "a && b || c ?? d;")
	x := prog.Body[0].(*ast.ExprStmt).X
	if _, ok := x.(*ast.LogicalExpr); !ok {
		t.Fatalf("got %#v", x)
	}
}

func TestMemberAndCallChain(t *testing.T) {
	prog := parse(t, `socket.on("data", frame => handle(frame));`)
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	mem := call.Callee.(*ast.MemberExpr)
	if mem.Property != "on" {
		t.Fatalf("property = %q", mem.Property)
	}
	if obj := mem.Object.(*ast.Ident); obj.Name != "socket" {
		t.Fatalf("object = %#v", mem.Object)
	}
	if len(call.Args) != 2 {
		t.Fatalf("args = %d", len(call.Args))
	}
	arrow := call.Args[1].(*ast.FuncLit)
	if !arrow.Arrow || arrow.ExprRet == nil {
		t.Fatalf("second arg should be expression-bodied arrow: %#v", arrow)
	}
}

func TestComputedMember(t *testing.T) {
	prog := parse(t, "foo[x](y);")
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	mem := call.Callee.(*ast.MemberExpr)
	if !mem.Computed {
		t.Fatal("expected computed member")
	}
}

func TestArrowForms(t *testing.T) {
	cases := []string{
		"x => x + 1;",
		"(a, b) => a * b;",
		"() => 42;",
		"(a) => { return a; };",
		"async x => x;",
		"async (a, b) => { return a; };",
		"(...rest) => rest;",
	}
	for _, src := range cases {
		prog := parse(t, src)
		fn, ok := prog.Body[0].(*ast.ExprStmt).X.(*ast.FuncLit)
		if !ok || !fn.Arrow {
			t.Errorf("%q: expected arrow function, got %#v", src, prog.Body[0])
		}
	}
}

func TestParenExprNotArrow(t *testing.T) {
	prog := parse(t, "(a + b) * c;")
	if _, ok := prog.Body[0].(*ast.ExprStmt).X.(*ast.BinaryExpr); !ok {
		t.Fatalf("got %#v", prog.Body[0])
	}
}

func TestFunctionDeclAndExpr(t *testing.T) {
	prog := parse(t, `
function add(a, b) { return a + b; }
const f = function(x) { return x; };
const g = async function named(y) { return y; };
`)
	fd := prog.Body[0].(*ast.FuncDecl)
	if fd.Name != "add" || len(fd.Fn.Params) != 2 {
		t.Fatalf("bad func decl: %#v", fd)
	}
	g := prog.Body[2].(*ast.VarDecl).Decls[0].Init.(*ast.FuncLit)
	if !g.Async || g.Name != "named" {
		t.Fatalf("bad async func expr: %#v", g)
	}
}

func TestClassDecl(t *testing.T) {
	prog := parse(t, `
class Camera extends Device {
  constructor(id) { this.id = id; }
  capture() { return frame(this.id); }
  static list() { return []; }
  async poll() { return await next(); }
}`)
	cd := prog.Body[0].(*ast.ClassDecl)
	if cd.Name != "Camera" {
		t.Fatalf("name = %q", cd.Name)
	}
	if cd.SuperClass == nil {
		t.Fatal("missing superclass")
	}
	if len(cd.Methods) != 4 {
		t.Fatalf("methods = %d", len(cd.Methods))
	}
	if !cd.Methods[2].Static {
		t.Fatal("list should be static")
	}
	if !cd.Methods[3].Fn.Async {
		t.Fatal("poll should be async")
	}
}

func TestForVariants(t *testing.T) {
	prog := parse(t, `
for (let i = 0; i < 10; i++) { work(i); }
for (const k in obj) { use(k); }
for (let p of scene.persons) { use(p); }
for (x of items) { use(x); }
for (;;) { break; }
`)
	if _, ok := prog.Body[0].(*ast.ForStmt); !ok {
		t.Fatalf("stmt 0: %#v", prog.Body[0])
	}
	fin := prog.Body[1].(*ast.ForInStmt)
	if fin.Kind != ast.ForIn || !fin.Decl {
		t.Fatalf("stmt 1: %#v", fin)
	}
	fof := prog.Body[2].(*ast.ForInStmt)
	if fof.Kind != ast.ForOf || fof.Name != "p" {
		t.Fatalf("stmt 2: %#v", fof)
	}
	bare := prog.Body[3].(*ast.ForInStmt)
	if bare.Decl {
		t.Fatal("stmt 3 should not declare")
	}
	inf := prog.Body[4].(*ast.ForStmt)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Fatalf("stmt 4: %#v", inf)
	}
}

func TestIfElseChain(t *testing.T) {
	prog := parse(t, "if (a) f(); else if (b) g(); else h();")
	ifs := prog.Body[0].(*ast.IfStmt)
	if _, ok := ifs.Else.(*ast.IfStmt); !ok {
		t.Fatalf("else: %#v", ifs.Else)
	}
}

func TestTrySwitchThrow(t *testing.T) {
	prog := parse(t, `
try { risky(); } catch (e) { log(e); } finally { done(); }
switch (x) { case 1: one(); break; default: other(); }
throw new Error("boom");
`)
	ts := prog.Body[0].(*ast.TryStmt)
	if ts.CatchVar != "e" || ts.Finally == nil {
		t.Fatalf("try: %#v", ts)
	}
	sw := prog.Body[1].(*ast.SwitchStmt)
	if len(sw.Cases) != 2 || sw.Cases[1].Test != nil {
		t.Fatalf("switch: %#v", sw)
	}
	th := prog.Body[2].(*ast.ThrowStmt)
	if _, ok := th.Value.(*ast.NewExpr); !ok {
		t.Fatalf("throw: %#v", th.Value)
	}
}

func TestTryWithoutHandlers(t *testing.T) {
	parseErr(t, "try { x(); }")
}

func TestObjectLiteralForms(t *testing.T) {
	prog := parse(t, `const o = { a: 1, "b c": 2, [k]: 3, short, ...rest, method(x) { return x; } };`)
	ol := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.ObjectLit)
	if len(ol.Props) != 6 {
		t.Fatalf("props = %d", len(ol.Props))
	}
	if ol.Props[1].Key != "b c" {
		t.Fatalf("string key = %q", ol.Props[1].Key)
	}
	if !ol.Props[2].Computed {
		t.Fatal("third prop should be computed")
	}
	if ol.Props[3].Key != "short" {
		t.Fatal("shorthand prop")
	}
	if !ol.Props[4].Spread {
		t.Fatal("spread prop")
	}
	if _, ok := ol.Props[5].Value.(*ast.FuncLit); !ok {
		t.Fatal("method prop")
	}
}

func TestArrayAndSpread(t *testing.T) {
	prog := parse(t, "f([1, 2, ...xs], ...args);")
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	arr := call.Args[0].(*ast.ArrayLit)
	if _, ok := arr.Elems[2].(*ast.SpreadExpr); !ok {
		t.Fatal("array spread")
	}
	if _, ok := call.Args[1].(*ast.SpreadExpr); !ok {
		t.Fatal("call spread")
	}
}

func TestTemplateLiteral(t *testing.T) {
	prog := parse(t, "const s = `a${x + 1}b${y}c`;")
	tl := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.TemplateLit)
	if len(tl.Quasis) != 3 || len(tl.Exprs) != 2 {
		t.Fatalf("quasis=%d exprs=%d", len(tl.Quasis), len(tl.Exprs))
	}
	if tl.Quasis[0] != "a" || tl.Quasis[2] != "c" {
		t.Fatalf("quasis = %v", tl.Quasis)
	}
}

func TestAwaitAndPromise(t *testing.T) {
	prog := parse(t, `
async function go() {
  const result = await fetchData();
  return new Promise((resolve, reject) => { resolve(result); });
}`)
	fd := prog.Body[0].(*ast.FuncDecl)
	if !fd.Fn.Async {
		t.Fatal("go should be async")
	}
	vd := fd.Fn.Body.Body[0].(*ast.VarDecl)
	if _, ok := vd.Decls[0].Init.(*ast.AwaitExpr); !ok {
		t.Fatalf("init: %#v", vd.Decls[0].Init)
	}
}

func TestTernaryAndSeq(t *testing.T) {
	prog := parse(t, "r = a ? b : c, s = 1;")
	seq := prog.Body[0].(*ast.ExprStmt).X.(*ast.SeqExpr)
	if len(seq.Exprs) != 2 {
		t.Fatalf("seq = %d", len(seq.Exprs))
	}
	first := seq.Exprs[0].(*ast.AssignExpr)
	if _, ok := first.Value.(*ast.CondExpr); !ok {
		t.Fatalf("value: %#v", first.Value)
	}
}

func TestUpdateExprs(t *testing.T) {
	prog := parse(t, "i++; --j; k += 2;")
	post := prog.Body[0].(*ast.ExprStmt).X.(*ast.UpdateExpr)
	if post.Prefix {
		t.Fatal("i++ should be postfix")
	}
	pre := prog.Body[1].(*ast.ExprStmt).X.(*ast.UpdateExpr)
	if !pre.Prefix || pre.Op != "--" {
		t.Fatalf("--j: %#v", pre)
	}
	cmp := prog.Body[2].(*ast.ExprStmt).X.(*ast.AssignExpr)
	if cmp.Op != "+=" {
		t.Fatalf("k: %#v", cmp)
	}
}

func TestUnaryOps(t *testing.T) {
	prog := parse(t, "a = typeof x; b = !y; c = -z; delete o.p;")
	u := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.UnaryExpr)
	if u.Op != "typeof" {
		t.Fatalf("op = %q", u.Op)
	}
	d := prog.Body[3].(*ast.ExprStmt).X.(*ast.UnaryExpr)
	if d.Op != "delete" {
		t.Fatalf("op = %q", d.Op)
	}
}

func TestASISoftBoundaries(t *testing.T) {
	prog := parse(t, "let a = 1\nlet b = 2\nf(a)\n")
	if len(prog.Body) != 3 {
		t.Fatalf("stmts = %d", len(prog.Body))
	}
}

func TestMissingSemicolonSameLine(t *testing.T) {
	parseErr(t, "let a = 1 let b = 2")
}

func TestInvalidAssignTarget(t *testing.T) {
	parseErr(t, "1 = x;")
	parseErr(t, "f() = x;")
}

func TestNodeIDsUnique(t *testing.T) {
	prog := parse(t, `
function handler(msg) {
  const data = msg.payload;
  for (let item of data.items) { send(item); }
  return data;
}`)
	seen := map[int]bool{}
	ast.Walk(prog, func(n ast.Node) bool {
		if n == prog {
			return true
		}
		id := n.NodeID()
		if id <= 0 {
			t.Errorf("node %T has id %d", n, id)
		}
		if seen[id] {
			t.Errorf("duplicate node id %d (%T)", id, n)
		}
		seen[id] = true
		return true
	})
	if len(seen) < 15 {
		t.Fatalf("only %d nodes visited", len(seen))
	}
	if prog.MaxID <= len(seen) {
		t.Fatalf("MaxID %d should exceed node count %d", prog.MaxID, len(seen))
	}
}

func TestPositionsRecorded(t *testing.T) {
	prog := parse(t, "let a = 1;\nlet b = 2;")
	vd := prog.Body[1].(*ast.VarDecl)
	if vd.Pos().Line != 2 {
		t.Fatalf("line = %d", vd.Pos().Line)
	}
}

func TestNewWithMemberCallee(t *testing.T) {
	prog := parse(t, "const c = new aws.S3Client(config);")
	ne := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.NewExpr)
	mem := ne.Callee.(*ast.MemberExpr)
	if mem.Property != "S3Client" {
		t.Fatalf("callee: %#v", ne.Callee)
	}
	if len(ne.Args) != 1 {
		t.Fatalf("args = %d", len(ne.Args))
	}
}

func TestNewThenMethodCall(t *testing.T) {
	prog := parse(t, "new Foo(1).start();")
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	mem := call.Callee.(*ast.MemberExpr)
	if _, ok := mem.Object.(*ast.NewExpr); !ok {
		t.Fatalf("object: %#v", mem.Object)
	}
}

func TestOptionalChaining(t *testing.T) {
	prog := parse(t, "const v = a?.b?.c;")
	m := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.MemberExpr)
	if m.Property != "c" {
		t.Fatalf("prop = %q", m.Property)
	}
}

func TestKeywordPropertyNames(t *testing.T) {
	prog := parse(t, "x.delete(); y.new; z.catch(f);")
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	if call.Callee.(*ast.MemberExpr).Property != "delete" {
		t.Fatal("keyword property")
	}
}

func TestRealWorldSnippet(t *testing.T) {
	// The FaceRecognizer snippet from Figure 2a of the paper.
	src := `
socket.on("data", frame => {
  const scene = analyzeVideoFrame(frame);
  for (let person of scene.persons) {
    person.description =
      person.action + " at " + scene.location;
    if (person.employeeID) {
      deviceControl.send(person);
    }
  }
  emailSender.send(scene);
  storage.send(scene);
});`
	prog := parse(t, src)
	if len(prog.Body) != 1 {
		t.Fatalf("stmts = %d", len(prog.Body))
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	err := parseErr(t, "let a = ;")
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 1 || pe.File != "test.js" {
		t.Fatalf("err = %#v", pe)
	}
	if !strings.Contains(pe.Error(), "test.js:1:") {
		t.Fatalf("message = %q", pe.Error())
	}
}

func TestDeepNesting(t *testing.T) {
	src := "x = " + strings.Repeat("(", 50) + "1" + strings.Repeat(")", 50) + ";"
	parse(t, src)
}

// Property: parsing never panics on arbitrary printable input.
func TestQuickParseNoPanic(t *testing.T) {
	f := func(raw []byte) bool {
		var b strings.Builder
		for _, c := range raw {
			b.WriteByte(' ' + c%95)
		}
		_, _ = Parse("fuzz.js", b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: generated variable declarations always parse to the same count.
func TestQuickManyDecls(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		var b strings.Builder
		for i := 0; i < count; i++ {
			b.WriteString("let v")
			b.WriteString(strings.Repeat("x", i+1))
			b.WriteString(" = ")
			b.WriteString("1 + 2;")
			b.WriteString("\n")
		}
		prog, err := Parse("gen.js", b.String())
		return err == nil && len(prog.Body) == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrorTable(t *testing.T) {
	cases := []string{
		"class C { 123 }",       // bad method name
		"x = class {};",         // class expressions unsupported
		"let 5 = 1;",            // bad declarator
		"for (;;",               // unterminated head
		"switch (x) { nope }",   // bad switch body
		"a.;",                   // missing property name
		"f(,);",                 // bad argument
		"({ , });",              // bad property
		"new ;",                 // bad constructor
		"x = { a: };",           // missing value
		"(a, b =>",              // broken arrow lookahead
		"do f(); while",         // missing cond
		"try { } catch (1) { }", // bad catch binding
		"`${}`",                 // empty interpolation
	}
	for _, src := range cases {
		if _, err := Parse("err.js", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestContextualKeywordsAsIdentifiers(t *testing.T) {
	prog := parse(t, `
let of = 1;
let async = 2;
let staticValue = of + async;
obj.static = 3;
obj.of(4);
`)
	if len(prog.Body) != 5 {
		t.Fatalf("stmts = %d", len(prog.Body))
	}
}

func TestNestedArrowsAndCalls(t *testing.T) {
	prog := parse(t, "const pipe = f => g => x => g(f(x));")
	fn := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.FuncLit)
	inner := fn.ExprRet.(*ast.FuncLit)
	if !inner.Arrow || inner.ExprRet == nil {
		t.Fatalf("nested arrows lost: %#v", inner)
	}
}

func TestRestParamRules(t *testing.T) {
	prog := parse(t, "function f(a, ...rest) { return rest; }")
	fd := prog.Body[0].(*ast.FuncDecl)
	if !fd.Fn.Params[1].Rest {
		t.Fatal("rest flag missing")
	}
}

func TestShorthandRequiresIdentifier(t *testing.T) {
	parseErr(t, "const o = { 0 };")
	parseErr(t, "const o = { 12.5 };")
	parse(t, "const o = { valid };") // sanity
}
