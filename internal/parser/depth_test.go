package parser

import (
	"errors"
	"strings"
	"testing"

	"turnstile/internal/guard"
	"turnstile/internal/printer"
)

// deepParens returns "x" wrapped in n layers of parentheses.
func deepParens(n int) string {
	return strings.Repeat("(", n) + "x" + strings.Repeat(")", n)
}

// TestParseDepthBoundary: nesting just under the limit parses; nesting
// past it returns a typed *guard.PipelineError instead of overflowing the
// Go stack (which would kill the process — recover cannot catch it).
func TestParseDepthBoundary(t *testing.T) {
	// Comfortably inside the limit. (Parenthesized expressions charge one
	// level per layer via unaryExpr.)
	if _, err := Parse("ok.js", "let y = "+deepParens(maxParseDepth/2)+";"); err != nil {
		t.Fatalf("in-budget nesting rejected: %v", err)
	}

	// Past the limit: typed error, same process still alive.
	_, err := Parse("deep.js", "let y = "+deepParens(maxParseDepth+10)+";")
	if err == nil {
		t.Fatal("over-budget nesting parsed")
	}
	var pe *guard.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *guard.PipelineError, got %T: %v", err, err)
	}
	if pe.Stage != "parse" {
		t.Fatalf("stage = %q, want parse", pe.Stage)
	}
	if !strings.Contains(pe.Pos, "deep.js") {
		t.Fatalf("position lost: %q", pe.Pos)
	}
}

// TestParseDepthUnaryChain: long prefix-operator chains recurse through
// unaryExpr directly (never re-entering expression), and must also trip.
func TestParseDepthUnaryChain(t *testing.T) {
	src := "let y = " + strings.Repeat("!", maxParseDepth+10) + "x;"
	_, err := Parse("bangs.js", src)
	var pe *guard.PipelineError
	if !errors.As(err, &pe) || pe.Stage != "parse" {
		t.Fatalf("unary chain: expected parse PipelineError, got %v", err)
	}
}

// TestParseDepthNestedBlocks: statement nesting trips the same limit.
func TestParseDepthNestedBlocks(t *testing.T) {
	n := maxParseDepth + 10
	src := strings.Repeat("{", n) + strings.Repeat("}", n)
	_, err := Parse("blocks.js", src)
	var pe *guard.PipelineError
	if !errors.As(err, &pe) || pe.Stage != "parse" {
		t.Fatalf("nested blocks: expected parse PipelineError, got %v", err)
	}
}

// TestParseDepthResetsBetweenStatements: depth is per-nesting, not
// cumulative — many sequential statements must not trip it.
func TestParseDepthResetsBetweenStatements(t *testing.T) {
	var b strings.Builder
	for i := 0; i < maxParseDepth+100; i++ {
		b.WriteString("x = 1;\n")
	}
	if _, err := Parse("many.js", b.String()); err != nil {
		t.Fatalf("sequential statements tripped the depth limit: %v", err)
	}
}

// TestPrinterDepthLimit: a program-built AST deep enough to exceed the
// printer's walk bound returns a typed error from SafePrint.
func TestPrinterDepthLimit(t *testing.T) {
	// The parser's cap (10k) is below the printer's (100k), so any
	// parseable program prints. Build the deep AST from a parse at half the
	// parser limit and verify SafePrint handles it, then check the printer
	// error path via a tree the parser can't make: reuse printer's own
	// limit by nesting parse output is impossible, so this test only
	// asserts the happy path plus the error type contract.
	prog, err := Parse("deep.js", "let y = "+deepParens(maxParseDepth/2)+";")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := printer.SafePrint(prog); err != nil {
		t.Fatalf("SafePrint failed on parseable program: %v", err)
	}
}
