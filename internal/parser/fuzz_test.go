package parser

import (
	"testing"

	"turnstile/internal/printer"
)

// Native fuzz targets. Run with `go test -fuzz=FuzzParse ./internal/parser`;
// under plain `go test` the seed corpus below is exercised.

func FuzzParse(f *testing.F) {
	seeds := []string{
		"let a = 1;",
		"function f(a, ...rest) { return a + rest.length; }",
		`socket.on("data", frame => handle(frame));`,
		"class A extends B { m() { return new A(); } }",
		"const o = { [k]: v, ...spread, short };",
		"x = `tpl ${a + `nested ${b}`} end`;",
		"for (const k in o) for (const v of xs) if (k) break; else continue;",
		"try { a(); } catch (e) { b(); } finally { c(); }",
		"a?.b?.[c]?.(d);",
		"x = a ?? b ?? c; y ??= 1; z &&= 2;",
		"switch (x) { case 1: case 2: f(); default: }",
		"async function g() { return await (async () => 1)(); }",
		"do ; while (0)",
		"({} + [])",
		"0x1F + .5e2 - 1e-9;",
		"\"\\u0041\\n\" + '\\''",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz.js", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// printing anything we parsed must re-parse, and be a fixpoint
		out1 := printer.Print(prog)
		prog2, err := Parse("fuzz2.js", out1)
		if err != nil {
			t.Fatalf("printed output does not re-parse: %v\ninput: %q\noutput:\n%s", err, src, out1)
		}
		if out2 := printer.Print(prog2); out2 != out1 {
			t.Fatalf("print not idempotent\ninput: %q\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
	})
}

func FuzzParseNeverPanics(f *testing.F) {
	f.Add([]byte("let x = 1;"))
	f.Add([]byte("\x00\xff{{{"))
	f.Add([]byte("`${`${`${a}`}`}`"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _ = Parse("bin.js", string(raw))
	})
}
