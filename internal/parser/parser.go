// Package parser builds MiniJS ASTs from source text.
//
// The grammar is the ES6 subset described in the paper (§4.5): classes,
// arrow functions, spread, template literals, async/await and Promise
// construction, plus all the statement and expression forms the corpus
// applications use. Automatic semicolon insertion follows the pragmatic
// rule: a statement may end at a newline, '}' or EOF.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/guard"
	"turnstile/internal/lexer"
)

// Error is a parse error with position information.
type Error struct {
	File string
	Msg  string
	Line int
	Col  int
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	file   string
	toks   []lexer.Token
	pos    int
	nextID int
	depth  int
}

// maxParseDepth bounds grammar-level nesting (statements and expressions).
// The recursive-descent grammar burns a bounded number of Go frames per
// level, so this cap keeps the parser far from the unrecoverable Go stack
// limit while admitting any program a human (or the instrumentor) writes.
const maxParseDepth = 10_000

// enter charges one grammar nesting level; leave releases it. Called at
// the two recursion hubs every nesting level passes through — statement()
// and unaryExpr() — so pathological inputs (deep literal nesting, long
// unary chains, deeply parenthesized expressions) abort with a typed
// *guard.PipelineError instead of overflowing the Go stack, which recover
// cannot catch.
func (p *parser) enter() {
	p.depth++
	if p.depth > maxParseDepth {
		t := p.cur()
		panic(parseAbort{&guard.PipelineError{
			Stage: "parse",
			Pos:   fmt.Sprintf("%s:%d:%d", p.file, t.Line, t.Col),
			Cause: fmt.Errorf("nesting exceeds %d levels", maxParseDepth),
		}})
	}
}

func (p *parser) leave() { p.depth-- }

// Parse parses src and returns the program. file is used in error messages
// and recorded on the returned Program.
func Parse(file, src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		if le, ok := err.(*lexer.Error); ok {
			return nil, &Error{File: file, Msg: le.Msg, Line: le.Line, Col: le.Col}
		}
		return nil, err
	}
	p := &parser{file: file, toks: toks, nextID: 1}
	prog := &ast.Program{File: file}
	// Parsing can fail deep in recursion; surface errors via panic/recover
	// to keep the grammar code readable.
	defer func() {}()
	body, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	prog.Body = body
	prog.MaxID = p.nextID
	return prog, nil
}

// MustParse is Parse that panics on error; for tests and builtin sources.
func MustParse(file, src string) *ast.Program {
	prog, err := Parse(file, src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parseAbort struct{ err error }

func (p *parser) parseProgram() (body []ast.Stmt, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pa, ok := r.(parseAbort); ok {
				err = pa.err
				return
			}
			panic(r)
		}
	}()
	for !p.at(lexer.EOF, "") {
		body = append(body, p.statement())
	}
	return body, nil
}

func (p *parser) fail(format string, args ...any) {
	t := p.cur()
	panic(parseAbort{&Error{File: p.file, Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}})
}

func (p *parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *parser) next() lexer.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k lexer.Kind, text string) bool {
	t := p.cur()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *parser) atPunct(text string) bool   { return p.at(lexer.Punct, text) }
func (p *parser) atKeyword(text string) bool { return p.at(lexer.Keyword, text) }

func (p *parser) eat(k lexer.Kind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k lexer.Kind, text string) lexer.Token {
	if !p.at(k, text) {
		p.fail("expected %q, found %q", text, p.cur().Text)
	}
	return p.next()
}

func (p *parser) loc() ast.Pos {
	t := p.cur()
	return ast.Pos{Line: t.Line, Col: t.Col}
}

func (p *parser) id() int { id := p.nextID; p.nextID++; return id }

// base allocates position+id bookkeeping at the current token.
func (p *parser) base() ast.NodeInfo { return ast.NodeInfo{Loc: p.loc(), ID: p.id()} }

// baseAt allocates bookkeeping anchored at an already-parsed node's position.
func (p *parser) baseAt(pos ast.Pos) ast.NodeInfo { return ast.NodeInfo{Loc: pos, ID: p.id()} }

// semi consumes a statement terminator: an explicit ';', or accepts a soft
// boundary (newline before next token, '}' or EOF).
func (p *parser) semi() {
	if p.eat(lexer.Punct, ";") {
		return
	}
	t := p.cur()
	if t.Kind == lexer.EOF || (t.Kind == lexer.Punct && t.Text == "}") || t.NLBefor {
		return
	}
	p.fail("expected ';' or newline, found %q", t.Text)
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) statement() ast.Stmt {
	p.enter()
	defer p.leave()
	t := p.cur()
	switch {
	case t.Kind == lexer.Punct && t.Text == "{":
		return p.blockStmt()
	case t.Kind == lexer.Punct && t.Text == ";":
		b := p.base()
		p.next()
		return &ast.EmptyStmt{NodeInfo: b}
	case t.Kind == lexer.Keyword:
		switch t.Text {
		case "var", "let", "const":
			s := p.varDecl()
			p.semi()
			return s
		case "function":
			return p.funcDecl(false)
		case "async":
			// "async function" declaration; otherwise fall through to
			// expression statement (async arrow).
			if p.toks[p.pos+1].Kind == lexer.Keyword && p.toks[p.pos+1].Text == "function" {
				p.next() // async
				return p.funcDecl(true)
			}
		case "return":
			b := p.base()
			p.next()
			var val ast.Expr
			if !p.atPunct(";") && !p.atPunct("}") && p.cur().Kind != lexer.EOF && !p.cur().NLBefor {
				val = p.expression()
			}
			p.semi()
			return &ast.ReturnStmt{NodeInfo: b, Value: val}
		case "if":
			return p.ifStmt()
		case "for":
			return p.forStmt()
		case "while":
			b := p.base()
			p.next()
			p.expect(lexer.Punct, "(")
			cond := p.expression()
			p.expect(lexer.Punct, ")")
			body := p.statement()
			return &ast.WhileStmt{NodeInfo: b, Cond: cond, Body: body}
		case "do":
			b := p.base()
			p.next()
			body := p.statement()
			p.expect(lexer.Keyword, "while")
			p.expect(lexer.Punct, "(")
			cond := p.expression()
			p.expect(lexer.Punct, ")")
			p.semi()
			return &ast.DoWhileStmt{NodeInfo: b, Body: body, Cond: cond}
		case "break":
			b := p.base()
			p.next()
			p.semi()
			return &ast.BreakStmt{NodeInfo: b}
		case "continue":
			b := p.base()
			p.next()
			p.semi()
			return &ast.ContinueStmt{NodeInfo: b}
		case "throw":
			b := p.base()
			p.next()
			val := p.expression()
			p.semi()
			return &ast.ThrowStmt{NodeInfo: b, Value: val}
		case "try":
			return p.tryStmt()
		case "switch":
			return p.switchStmt()
		case "class":
			return p.classDecl()
		}
	}
	b := p.base()
	x := p.expression()
	p.semi()
	return &ast.ExprStmt{NodeInfo: b, X: x}
}

func (p *parser) blockStmt() *ast.BlockStmt {
	b := p.base()
	p.expect(lexer.Punct, "{")
	var body []ast.Stmt
	for !p.atPunct("}") {
		if p.cur().Kind == lexer.EOF {
			p.fail("unexpected EOF in block")
		}
		body = append(body, p.statement())
	}
	p.expect(lexer.Punct, "}")
	return &ast.BlockStmt{NodeInfo: b, Body: body}
}

func (p *parser) varDecl() *ast.VarDecl {
	b := p.base()
	kw := p.next().Text
	var kind ast.DeclKind
	switch kw {
	case "var":
		kind = ast.DeclVar
	case "let":
		kind = ast.DeclLet
	case "const":
		kind = ast.DeclConst
	}
	var decls []*ast.Declarator
	for {
		db := p.base()
		name := p.identName()
		var init ast.Expr
		if p.eat(lexer.Punct, "=") {
			init = p.assignExpr()
		}
		decls = append(decls, &ast.Declarator{NodeInfo: db, Name: name, Init: init})
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	return &ast.VarDecl{NodeInfo: b, Kind: kind, Decls: decls}
}

func (p *parser) identName() string {
	t := p.cur()
	if t.Kind != lexer.Ident {
		// allow contextual keywords as identifiers where unambiguous
		if t.Kind == lexer.Keyword && (t.Text == "of" || t.Text == "async" || t.Text == "static" || t.Text == "undefined") {
			p.next()
			return t.Text
		}
		p.fail("expected identifier, found %q", t.Text)
	}
	p.next()
	return t.Text
}

func (p *parser) funcDecl(async bool) *ast.FuncDecl {
	b := p.base()
	p.expect(lexer.Keyword, "function")
	name := p.identName()
	fn := p.funcRest(name, async)
	return &ast.FuncDecl{NodeInfo: b, Name: name, Fn: fn}
}

// funcRest parses "(params) { body }" after the function keyword and name.
func (p *parser) funcRest(name string, async bool) *ast.FuncLit {
	b := p.base()
	params := p.paramList()
	body := p.blockStmt()
	return &ast.FuncLit{NodeInfo: b, Name: name, Params: params, Body: body, Async: async}
}

func (p *parser) paramList() []*ast.Param {
	p.expect(lexer.Punct, "(")
	var params []*ast.Param
	for !p.atPunct(")") {
		pb := p.base()
		rest := p.eat(lexer.Punct, "...")
		name := p.identName()
		params = append(params, &ast.Param{NodeInfo: pb, Name: name, Rest: rest})
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, ")")
	return params
}

func (p *parser) ifStmt() *ast.IfStmt {
	b := p.base()
	p.expect(lexer.Keyword, "if")
	p.expect(lexer.Punct, "(")
	cond := p.expression()
	p.expect(lexer.Punct, ")")
	then := p.statement()
	var els ast.Stmt
	if p.eat(lexer.Keyword, "else") {
		els = p.statement()
	}
	return &ast.IfStmt{NodeInfo: b, Cond: cond, Then: then, Else: els}
}

func (p *parser) forStmt() ast.Stmt {
	b := p.base()
	p.expect(lexer.Keyword, "for")
	p.expect(lexer.Punct, "(")

	// Distinguish for-in / for-of from classic for.
	if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
		declKindTok := p.cur().Text
		// lookahead: decl-kind ident (in|of)
		if p.toks[p.pos+1].Kind == lexer.Ident &&
			p.toks[p.pos+2].Kind == lexer.Keyword &&
			(p.toks[p.pos+2].Text == "in" || p.toks[p.pos+2].Text == "of") {
			p.next() // decl kind
			name := p.identName()
			kindTok := p.next().Text
			obj := p.expression()
			p.expect(lexer.Punct, ")")
			body := p.statement()
			kind := ast.ForIn
			if kindTok == "of" {
				kind = ast.ForOf
			}
			dk := ast.DeclVar
			switch declKindTok {
			case "let":
				dk = ast.DeclLet
			case "const":
				dk = ast.DeclConst
			}
			return &ast.ForInStmt{NodeInfo: b, Kind: kind, DeclKind: dk, Decl: true, Name: name, Object: obj, Body: body}
		}
	} else if p.cur().Kind == lexer.Ident &&
		p.toks[p.pos+1].Kind == lexer.Keyword &&
		(p.toks[p.pos+1].Text == "in" || p.toks[p.pos+1].Text == "of") {
		name := p.identName()
		kindTok := p.next().Text
		obj := p.expression()
		p.expect(lexer.Punct, ")")
		body := p.statement()
		kind := ast.ForIn
		if kindTok == "of" {
			kind = ast.ForOf
		}
		return &ast.ForInStmt{NodeInfo: b, Kind: kind, Decl: false, Name: name, Object: obj, Body: body}
	}

	var init ast.Stmt
	if !p.atPunct(";") {
		if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
			init = p.varDecl()
		} else {
			ib := p.base()
			init = &ast.ExprStmt{NodeInfo: ib, X: p.expression()}
		}
	}
	p.expect(lexer.Punct, ";")
	var cond ast.Expr
	if !p.atPunct(";") {
		cond = p.expression()
	}
	p.expect(lexer.Punct, ";")
	var post ast.Expr
	if !p.atPunct(")") {
		post = p.expression()
	}
	p.expect(lexer.Punct, ")")
	body := p.statement()
	return &ast.ForStmt{NodeInfo: b, Init: init, Cond: cond, Post: post, Body: body}
}

func (p *parser) tryStmt() *ast.TryStmt {
	b := p.base()
	p.expect(lexer.Keyword, "try")
	body := p.blockStmt()
	out := &ast.TryStmt{NodeInfo: b, Body: body}
	if p.eat(lexer.Keyword, "catch") {
		if p.eat(lexer.Punct, "(") {
			out.CatchVar = p.identName()
			p.expect(lexer.Punct, ")")
		}
		out.Catch = p.blockStmt()
	}
	if p.eat(lexer.Keyword, "finally") {
		out.Finally = p.blockStmt()
	}
	if out.Catch == nil && out.Finally == nil {
		p.fail("try statement requires catch or finally")
	}
	return out
}

func (p *parser) switchStmt() *ast.SwitchStmt {
	b := p.base()
	p.expect(lexer.Keyword, "switch")
	p.expect(lexer.Punct, "(")
	disc := p.expression()
	p.expect(lexer.Punct, ")")
	p.expect(lexer.Punct, "{")
	var cases []*ast.SwitchCase
	for !p.atPunct("}") {
		cb := p.base()
		var test ast.Expr
		if p.eat(lexer.Keyword, "case") {
			test = p.expression()
		} else if !p.eat(lexer.Keyword, "default") {
			p.fail("expected case or default in switch")
		}
		p.expect(lexer.Punct, ":")
		var body []ast.Stmt
		for !p.atPunct("}") && !p.atKeyword("case") && !p.atKeyword("default") {
			body = append(body, p.statement())
		}
		cases = append(cases, &ast.SwitchCase{NodeInfo: cb, Test: test, Body: body})
	}
	p.expect(lexer.Punct, "}")
	return &ast.SwitchStmt{NodeInfo: b, Disc: disc, Cases: cases}
}

func (p *parser) classDecl() *ast.ClassDecl {
	b := p.base()
	p.expect(lexer.Keyword, "class")
	name := p.identName()
	var super ast.Expr
	if p.eat(lexer.Keyword, "extends") {
		super = p.lhsExpr()
	}
	p.expect(lexer.Punct, "{")
	var methods []*ast.ClassMethod
	for !p.atPunct("}") {
		if p.eat(lexer.Punct, ";") {
			continue
		}
		mb := p.base()
		static := false
		if p.atKeyword("static") && !p.punctFollows(1, "(") {
			p.next()
			static = true
		}
		async := false
		if p.atKeyword("async") && !p.punctFollows(1, "(") {
			p.next()
			async = true
		}
		mname := p.methodName()
		fn := p.funcRest(mname, async)
		methods = append(methods, &ast.ClassMethod{NodeInfo: mb, Name: mname, Static: static, Fn: fn})
	}
	p.expect(lexer.Punct, "}")
	return &ast.ClassDecl{NodeInfo: b, Name: name, SuperClass: super, Methods: methods}
}

// punctFollows reports whether the token `off` ahead is the given punct —
// used to disambiguate method names that are contextual keywords, e.g. a
// method literally named "static".
func (p *parser) punctFollows(off int, text string) bool {
	t := p.toks[p.pos+off]
	return t.Kind == lexer.Punct && t.Text == text
}

func (p *parser) methodName() string {
	t := p.cur()
	if t.Kind == lexer.Ident || t.Kind == lexer.Keyword {
		p.next()
		return t.Text
	}
	if t.Kind == lexer.String {
		p.next()
		return t.Text
	}
	p.fail("expected method name, found %q", t.Text)
	return ""
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) expression() ast.Expr {
	x := p.assignExpr()
	if p.atPunct(",") {
		b := p.baseAt(x.Pos())
		exprs := []ast.Expr{x}
		for p.eat(lexer.Punct, ",") {
			exprs = append(exprs, p.assignExpr())
		}
		return &ast.SeqExpr{NodeInfo: b, Exprs: exprs}
	}
	return x
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "**=": true, "<<=": true, ">>=": true,
	"&&=": true, "||=": true, "??=": true,
}

func (p *parser) assignExpr() ast.Expr {
	// arrow functions need arbitrary lookahead over a parenthesized
	// parameter list; detect them first.
	if arrow := p.tryArrow(); arrow != nil {
		return arrow
	}
	left := p.condExpr()
	t := p.cur()
	if t.Kind == lexer.Punct && assignOps[t.Text] {
		switch left.(type) {
		case *ast.Ident, *ast.MemberExpr:
		default:
			p.fail("invalid assignment target")
		}
		b := p.baseAt(left.Pos())
		op := p.next().Text
		val := p.assignExpr()
		return &ast.AssignExpr{NodeInfo: b, Op: op, Target: left, Value: val}
	}
	return left
}

// tryArrow attempts to parse an arrow function at the current position.
// Returns nil (with position restored) if the lookahead does not match.
func (p *parser) tryArrow() ast.Expr {
	start := p.pos
	startID := p.nextID
	b := p.base()
	async := false
	if p.atKeyword("async") && !p.toks[p.pos+1].NLBefor &&
		(p.toks[p.pos+1].Kind == lexer.Ident || p.punctFollows(1, "(")) {
		// could be `async x =>` or `async (…) =>`; verified below.
		p.next()
		async = true
	}
	var params []*ast.Param
	switch {
	case p.cur().Kind == lexer.Ident:
		pb := p.base()
		name := p.next().Text
		if !p.atPunct("=>") {
			p.pos, p.nextID = start, startID
			return nil
		}
		params = []*ast.Param{{NodeInfo: pb, Name: name}}
	case p.atPunct("("):
		// scan ahead to the matching ')' and check for '=>'
		depth := 0
		i := p.pos
		for ; i < len(p.toks); i++ {
			t := p.toks[i]
			if t.Kind == lexer.Punct {
				switch t.Text {
				case "(":
					depth++
				case ")":
					depth--
				}
				if depth == 0 {
					break
				}
			}
			if t.Kind == lexer.EOF {
				break
			}
		}
		if i+1 >= len(p.toks) || p.toks[i+1].Kind != lexer.Punct || p.toks[i+1].Text != "=>" {
			p.pos, p.nextID = start, startID
			return nil
		}
		params = p.paramList()
	default:
		p.pos, p.nextID = start, startID
		return nil
	}
	p.expect(lexer.Punct, "=>")
	fn := &ast.FuncLit{NodeInfo: b, Params: params, Arrow: true, Async: async}
	if p.atPunct("{") {
		fn.Body = p.blockStmt()
	} else {
		fn.ExprRet = p.assignExpr()
	}
	return fn
}

func (p *parser) condExpr() ast.Expr {
	cond := p.binaryExpr(0)
	if p.atPunct("?") && !p.atPunct("?.") {
		b := p.baseAt(cond.Pos())
		p.next()
		then := p.assignExpr()
		p.expect(lexer.Punct, ":")
		els := p.assignExpr()
		return &ast.CondExpr{NodeInfo: b, Cond: cond, Then: then, Else: els}
	}
	return cond
}

// binary operator precedence, higher binds tighter.
var binPrec = map[string]int{
	"??": 1, "||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "in": 7, "instanceof": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
	"**": 11,
}

func isLogical(op string) bool { return op == "&&" || op == "||" || op == "??" }

func (p *parser) binaryExpr(minPrec int) ast.Expr {
	left := p.unaryExpr()
	for {
		t := p.cur()
		var op string
		if t.Kind == lexer.Punct {
			op = t.Text
		} else if t.Kind == lexer.Keyword && (t.Text == "in" || t.Text == "instanceof") {
			op = t.Text
		} else {
			return left
		}
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return left
		}
		b := p.baseAt(left.Pos())
		p.next()
		// ** is right-associative; everything else left-associative.
		nextMin := prec + 1
		if op == "**" {
			nextMin = prec
		}
		right := p.binaryExpr(nextMin)
		if isLogical(op) {
			left = &ast.LogicalExpr{NodeInfo: b, Op: op, Left: left, Right: right}
		} else {
			left = &ast.BinaryExpr{NodeInfo: b, Op: op, Left: left, Right: right}
		}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	// Every expression nesting level passes through here exactly once
	// (primary's bracketed forms re-enter via expression/assignExpr), so
	// this single charge bounds expression recursion as a whole.
	p.enter()
	defer p.leave()
	t := p.cur()
	if t.Kind == lexer.Punct && (t.Text == "!" || t.Text == "-" || t.Text == "+" || t.Text == "~") {
		b := p.base()
		op := p.next().Text
		x := p.unaryExpr()
		return &ast.UnaryExpr{NodeInfo: b, Op: op, X: x}
	}
	if t.Kind == lexer.Punct && (t.Text == "++" || t.Text == "--") {
		b := p.base()
		op := p.next().Text
		x := p.unaryExpr()
		return &ast.UpdateExpr{NodeInfo: b, Op: op, Prefix: true, X: x}
	}
	if t.Kind == lexer.Keyword {
		switch t.Text {
		case "typeof", "delete", "void":
			b := p.base()
			op := p.next().Text
			x := p.unaryExpr()
			return &ast.UnaryExpr{NodeInfo: b, Op: op, X: x}
		case "await":
			b := p.base()
			p.next()
			x := p.unaryExpr()
			return &ast.AwaitExpr{NodeInfo: b, X: x}
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() ast.Expr {
	x := p.lhsExpr()
	t := p.cur()
	if t.Kind == lexer.Punct && (t.Text == "++" || t.Text == "--") && !t.NLBefor {
		b := p.baseAt(x.Pos())
		op := p.next().Text
		return &ast.UpdateExpr{NodeInfo: b, Op: op, Prefix: false, X: x}
	}
	return x
}

// lhsExpr parses primary expressions followed by call/member suffixes.
func (p *parser) lhsExpr() ast.Expr {
	var x ast.Expr
	if p.atKeyword("new") {
		b := p.base()
		p.next()
		callee := p.primaryWithMembers()
		var args []ast.Expr
		if p.atPunct("(") {
			args = p.argList()
		}
		x = &ast.NewExpr{NodeInfo: b, Callee: callee, Args: args}
	} else {
		x = p.primary()
	}
	return p.memberSuffixes(x)
}

// primaryWithMembers parses a primary expression plus only member accesses
// (no calls), used for `new a.b.C(...)`.
func (p *parser) primaryWithMembers() ast.Expr {
	x := p.primary()
	for p.atPunct(".") {
		b := p.baseAt(x.Pos())
		p.next()
		name := p.propertyName()
		x = &ast.MemberExpr{NodeInfo: b, Object: x, Property: name}
	}
	return x
}

func (p *parser) memberSuffixes(x ast.Expr) ast.Expr {
	for {
		switch {
		case p.atPunct("."):
			b := p.baseAt(x.Pos())
			p.next()
			name := p.propertyName()
			x = &ast.MemberExpr{NodeInfo: b, Object: x, Property: name}
		case p.atPunct("?."):
			// optional chaining is treated as plain member access for
			// dataflow purposes (MiniJS objects tolerate missing props).
			b := p.baseAt(x.Pos())
			p.next()
			name := p.propertyName()
			x = &ast.MemberExpr{NodeInfo: b, Object: x, Property: name}
		case p.atPunct("["):
			b := p.baseAt(x.Pos())
			p.next()
			idx := p.expression()
			p.expect(lexer.Punct, "]")
			x = &ast.MemberExpr{NodeInfo: b, Object: x, Index: idx, Computed: true}
		case p.atPunct("("):
			b := p.baseAt(x.Pos())
			args := p.argList()
			x = &ast.CallExpr{NodeInfo: b, Callee: x, Args: args}
		default:
			return x
		}
	}
}

// propertyName parses the name after '.'; keywords are valid property names.
func (p *parser) propertyName() string {
	t := p.cur()
	if t.Kind == lexer.Ident || t.Kind == lexer.Keyword {
		p.next()
		return t.Text
	}
	p.fail("expected property name, found %q", t.Text)
	return ""
}

func (p *parser) argList() []ast.Expr {
	p.expect(lexer.Punct, "(")
	var args []ast.Expr
	for !p.atPunct(")") {
		if p.atPunct("...") {
			b := p.base()
			p.next()
			args = append(args, &ast.SpreadExpr{NodeInfo: b, X: p.assignExpr()})
		} else {
			args = append(args, p.assignExpr())
		}
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, ")")
	return args
}

func (p *parser) primary() ast.Expr {
	t := p.cur()
	b := p.base()
	switch t.Kind {
	case lexer.Number:
		p.next()
		v, err := parseNumber(t.Text)
		if err != nil {
			p.fail("bad number literal %q", t.Text)
		}
		return &ast.NumberLit{NodeInfo: b, Value: v}
	case lexer.String:
		p.next()
		return &ast.StringLit{NodeInfo: b, Value: t.Text}
	case lexer.TemplateFull:
		p.next()
		return &ast.TemplateLit{NodeInfo: b, Quasis: []string{t.Text}}
	case lexer.TemplateStart:
		return p.templateLit()
	case lexer.Ident:
		p.next()
		return &ast.Ident{NodeInfo: b, Name: t.Text}
	case lexer.Keyword:
		switch t.Text {
		case "true", "false":
			p.next()
			return &ast.BoolLit{NodeInfo: b, Value: t.Text == "true"}
		case "null":
			p.next()
			return &ast.NullLit{NodeInfo: b}
		case "undefined":
			p.next()
			return &ast.UndefinedLit{NodeInfo: b}
		case "this":
			p.next()
			return &ast.ThisExpr{NodeInfo: b}
		case "function":
			p.next()
			name := ""
			if p.cur().Kind == lexer.Ident {
				name = p.next().Text
			}
			return p.funcRest(name, false)
		case "async":
			if p.toks[p.pos+1].Kind == lexer.Keyword && p.toks[p.pos+1].Text == "function" {
				p.next()
				p.next()
				name := ""
				if p.cur().Kind == lexer.Ident {
					name = p.next().Text
				}
				return p.funcRest(name, true)
			}
			// `async` used as a plain identifier
			p.next()
			return &ast.Ident{NodeInfo: b, Name: "async"}
		case "of", "static", "undefined2":
			p.next()
			return &ast.Ident{NodeInfo: b, Name: t.Text}
		case "class":
			p.fail("class expressions are not supported; use a class declaration")
		}
	case lexer.Punct:
		switch t.Text {
		case "(":
			p.next()
			x := p.expression()
			p.expect(lexer.Punct, ")")
			return x
		case "[":
			return p.arrayLit()
		case "{":
			return p.objectLit()
		}
	}
	p.fail("unexpected token %q", t.Text)
	return nil
}

func (p *parser) templateLit() ast.Expr {
	b := p.base()
	start := p.expect(lexer.TemplateStart, "")
	quasis := []string{start.Text}
	var exprs []ast.Expr
	for {
		exprs = append(exprs, p.expression())
		t := p.cur()
		switch t.Kind {
		case lexer.TemplateMid:
			p.next()
			quasis = append(quasis, t.Text)
		case lexer.TemplateEnd:
			p.next()
			quasis = append(quasis, t.Text)
			return &ast.TemplateLit{NodeInfo: b, Quasis: quasis, Exprs: exprs}
		default:
			p.fail("expected template continuation, found %q", t.Text)
		}
	}
}

func (p *parser) arrayLit() ast.Expr {
	b := p.base()
	p.expect(lexer.Punct, "[")
	var elems []ast.Expr
	for !p.atPunct("]") {
		if p.atPunct("...") {
			sb := p.base()
			p.next()
			elems = append(elems, &ast.SpreadExpr{NodeInfo: sb, X: p.assignExpr()})
		} else {
			elems = append(elems, p.assignExpr())
		}
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, "]")
	return &ast.ArrayLit{NodeInfo: b, Elems: elems}
}

func (p *parser) objectLit() ast.Expr {
	b := p.base()
	p.expect(lexer.Punct, "{")
	var props []*ast.Property
	for !p.atPunct("}") {
		pb := p.base()
		switch {
		case p.atPunct("..."):
			p.next()
			props = append(props, &ast.Property{NodeInfo: pb, Spread: true, Value: p.assignExpr()})
		case p.atPunct("["):
			p.next()
			keyExpr := p.assignExpr()
			p.expect(lexer.Punct, "]")
			p.expect(lexer.Punct, ":")
			props = append(props, &ast.Property{NodeInfo: pb, KeyExpr: keyExpr, Computed: true, Value: p.assignExpr()})
		default:
			key := p.objectKey()
			switch {
			case p.atPunct("("):
				// shorthand method: { foo(a) { ... } }
				fn := p.funcRest(key, false)
				props = append(props, &ast.Property{NodeInfo: pb, Key: key, Value: fn})
			case p.eat(lexer.Punct, ":"):
				props = append(props, &ast.Property{NodeInfo: pb, Key: key, Value: p.assignExpr()})
			default:
				// shorthand { x } — only valid for identifier keys
				if !isIdentName(key) {
					p.fail("shorthand property requires an identifier, got %q", key)
				}
				ib := p.baseAt(pb.Loc)
				props = append(props, &ast.Property{NodeInfo: pb, Key: key, Value: &ast.Ident{NodeInfo: ib, Name: key}})
			}
		}
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, "}")
	return &ast.ObjectLit{NodeInfo: b, Props: props}
}

func (p *parser) objectKey() string {
	t := p.cur()
	switch t.Kind {
	case lexer.Ident, lexer.Keyword, lexer.String, lexer.Number:
		p.next()
		return t.Text
	}
	p.fail("expected property key, found %q", t.Text)
	return ""
}

// isIdentName reports whether s is a valid identifier.
func isIdentName(s string) bool {
	if s == "" || lexer.IsKeyword(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && !(i > 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

func parseNumber(text string) (float64, error) {
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		n, err := strconv.ParseUint(text[2:], 16, 64)
		return float64(n), err
	}
	return strconv.ParseFloat(text, 64)
}
