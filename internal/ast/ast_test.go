package ast

import (
	"testing"
)

func ident(id int, name string) *Ident {
	return &Ident{NodeInfo: NodeInfo{Loc: Pos{Line: 1, Col: id}, ID: id}, Name: name}
}

func TestPosBasics(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Fatalf("String = %q", p.String())
	}
	if !p.Valid() || (Pos{}).Valid() {
		t.Fatal("validity")
	}
	cases := []struct {
		a, b Pos
		want bool
	}{
		{Pos{1, 1}, Pos{1, 2}, true},
		{Pos{1, 2}, Pos{1, 1}, false},
		{Pos{1, 9}, Pos{2, 1}, true},
		{Pos{2, 1}, Pos{1, 9}, false},
		{Pos{1, 1}, Pos{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Before(c.b); got != c.want {
			t.Errorf("%v.Before(%v) = %v", c.a, c.b, got)
		}
	}
}

func TestDeclKindString(t *testing.T) {
	if DeclVar.String() != "var" || DeclLet.String() != "let" || DeclConst.String() != "const" {
		t.Fatal("decl kind names")
	}
	if DeclKind(99).String() != "decl?" {
		t.Fatal("unknown decl kind")
	}
}

func TestNodeInfoAccessors(t *testing.T) {
	n := ident(5, "x")
	if n.NodeID() != 5 || n.Pos().Col != 5 {
		t.Fatalf("accessors: %d %v", n.NodeID(), n.Pos())
	}
}

func TestWalkVisitsAllChildren(t *testing.T) {
	// hand-built tree: if (a) { b = c + d; } else e(f);
	tree := &IfStmt{
		NodeInfo: NodeInfo{ID: 1},
		Cond:     ident(2, "a"),
		Then: &BlockStmt{NodeInfo: NodeInfo{ID: 3}, Body: []Stmt{
			&ExprStmt{NodeInfo: NodeInfo{ID: 4}, X: &AssignExpr{
				NodeInfo: NodeInfo{ID: 5},
				Op:       "=",
				Target:   ident(6, "b"),
				Value: &BinaryExpr{NodeInfo: NodeInfo{ID: 7}, Op: "+",
					Left: ident(8, "c"), Right: ident(9, "d")},
			}},
		}},
		Else: &ExprStmt{NodeInfo: NodeInfo{ID: 10}, X: &CallExpr{
			NodeInfo: NodeInfo{ID: 11},
			Callee:   ident(12, "e"),
			Args:     []Expr{ident(13, "f")},
		}},
	}
	var ids []int
	Walk(tree, func(n Node) bool {
		ids = append(ids, n.NodeID())
		return true
	})
	if len(ids) != 13 {
		t.Fatalf("visited %d nodes: %v", len(ids), ids)
	}
	for want := 1; want <= 13; want++ {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d not visited", want)
		}
	}
}

func TestWalkPrunes(t *testing.T) {
	tree := &BlockStmt{NodeInfo: NodeInfo{ID: 1}, Body: []Stmt{
		&ExprStmt{NodeInfo: NodeInfo{ID: 2}, X: &BinaryExpr{
			NodeInfo: NodeInfo{ID: 3}, Op: "+",
			Left: ident(4, "x"), Right: ident(5, "y")}},
	}}
	var ids []int
	Walk(tree, func(n Node) bool {
		ids = append(ids, n.NodeID())
		return n.NodeID() != 2 // prune below the ExprStmt
	})
	if len(ids) != 2 || ids[1] != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestWalkNilChildren(t *testing.T) {
	// optional children are typed nils; Walk must skip them silently
	tree := &ForStmt{NodeInfo: NodeInfo{ID: 1}, Body: &EmptyStmt{NodeInfo: NodeInfo{ID: 2}}}
	count := 0
	Walk(tree, func(n Node) bool { count++; return true })
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	var typedNil *IfStmt
	Walk(typedNil, func(Node) bool { t.Fatal("should not visit typed nil"); return true })
	Walk(nil, func(Node) bool { t.Fatal("should not visit nil"); return true })
}

func TestWalkCoversEveryStatementKind(t *testing.T) {
	id := 100
	next := func() NodeInfo { id++; return NodeInfo{ID: id} }
	stmts := []Stmt{
		&VarDecl{NodeInfo: next(), Kind: DeclLet, Decls: []*Declarator{
			{NodeInfo: next(), Name: "v", Init: ident(1, "i")}}},
		&FuncDecl{NodeInfo: next(), Name: "f", Fn: &FuncLit{NodeInfo: next(),
			Params: []*Param{{NodeInfo: next(), Name: "p"}},
			Body:   &BlockStmt{NodeInfo: next()}}},
		&ReturnStmt{NodeInfo: next(), Value: ident(2, "r")},
		&WhileStmt{NodeInfo: next(), Cond: ident(3, "c"), Body: &EmptyStmt{NodeInfo: next()}},
		&DoWhileStmt{NodeInfo: next(), Body: &EmptyStmt{NodeInfo: next()}, Cond: ident(4, "c")},
		&ForInStmt{NodeInfo: next(), Name: "k", Object: ident(5, "o"), Body: &EmptyStmt{NodeInfo: next()}},
		&BreakStmt{NodeInfo: next()},
		&ContinueStmt{NodeInfo: next()},
		&ThrowStmt{NodeInfo: next(), Value: ident(6, "e")},
		&TryStmt{NodeInfo: next(), Body: &BlockStmt{NodeInfo: next()},
			Catch: &BlockStmt{NodeInfo: next()}, Finally: &BlockStmt{NodeInfo: next()}},
		&SwitchStmt{NodeInfo: next(), Disc: ident(7, "d"), Cases: []*SwitchCase{
			{NodeInfo: next(), Test: ident(8, "t")}}},
		&ClassDecl{NodeInfo: next(), Name: "C", SuperClass: ident(9, "S"),
			Methods: []*ClassMethod{{NodeInfo: next(), Name: "m",
				Fn: &FuncLit{NodeInfo: next(), Body: &BlockStmt{NodeInfo: next()}}}}},
	}
	prog := &Program{NodeInfo: NodeInfo{ID: 99}, Body: stmts}
	seen := map[int]bool{}
	Walk(prog, func(n Node) bool { seen[n.NodeID()] = true; return true })
	if len(seen) < 25 {
		t.Fatalf("visited only %d nodes", len(seen))
	}
}

func TestWalkCoversEveryExpressionKind(t *testing.T) {
	id := 200
	next := func() NodeInfo { id++; return NodeInfo{ID: id} }
	exprs := []Expr{
		&NumberLit{NodeInfo: next(), Value: 1},
		&StringLit{NodeInfo: next(), Value: "s"},
		&TemplateLit{NodeInfo: next(), Quasis: []string{"a", "b"}, Exprs: []Expr{ident(1, "x")}},
		&BoolLit{NodeInfo: next(), Value: true},
		&NullLit{NodeInfo: next()},
		&UndefinedLit{NodeInfo: next()},
		&ThisExpr{NodeInfo: next()},
		&ArrayLit{NodeInfo: next(), Elems: []Expr{&SpreadExpr{NodeInfo: next(), X: ident(2, "xs")}}},
		&ObjectLit{NodeInfo: next(), Props: []*Property{
			{NodeInfo: next(), Key: "k", Value: ident(3, "v")},
			{NodeInfo: next(), Computed: true, KeyExpr: ident(4, "ke"), Value: ident(5, "kv")},
		}},
		&NewExpr{NodeInfo: next(), Callee: ident(6, "C"), Args: []Expr{ident(7, "a")}},
		&MemberExpr{NodeInfo: next(), Object: ident(8, "o"), Index: ident(9, "i"), Computed: true},
		&LogicalExpr{NodeInfo: next(), Op: "&&", Left: ident(10, "l"), Right: ident(11, "r")},
		&UnaryExpr{NodeInfo: next(), Op: "!", X: ident(12, "u")},
		&UpdateExpr{NodeInfo: next(), Op: "++", X: ident(13, "n")},
		&CondExpr{NodeInfo: next(), Cond: ident(14, "c"), Then: ident(15, "t"), Else: ident(16, "e")},
		&SeqExpr{NodeInfo: next(), Exprs: []Expr{ident(17, "s1"), ident(18, "s2")}},
		&AwaitExpr{NodeInfo: next(), X: ident(19, "p")},
	}
	for _, e := range exprs {
		visited := 0
		Walk(e, func(n Node) bool { visited++; return true })
		if visited == 0 {
			t.Errorf("%T not visited", e)
		}
	}
}
