// Package ast defines the abstract syntax tree for MiniJS, the ES6-subset
// JavaScript dialect used throughout the Turnstile reproduction.
//
// Every node carries a source location and a unique ID assigned by the
// parser. IDs give the static analyzers and the instrumentor a stable way
// to refer to syntactic elements (the paper's "objects" in IFC-policy
// injection points are AST nodes).
package ast

import "fmt"

// Pos is a position in a source file.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String returns "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Valid reports whether the position has been set.
func (p Pos) Valid() bool { return p.Line > 0 }

// Before reports whether p is strictly before q.
func (p Pos) Before(q Pos) bool {
	return p.Line < q.Line || (p.Line == q.Line && p.Col < q.Col)
}

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
	NodeID() int
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// NodeInfo carries the bookkeeping fields common to all nodes: the source
// location and the parser-assigned unique node ID.
type NodeInfo struct {
	Loc Pos
	ID  int
}

// Pos returns the node's source position.
func (b NodeInfo) Pos() Pos { return b.Loc }

// NodeID returns the parser-assigned unique ID.
func (b NodeInfo) NodeID() int { return b.ID }

// ---------------------------------------------------------------------------
// Resolver annotations
//
// The static resolver pass (internal/resolve) runs after parsing and
// annotates the tree in place: every lexical scope the interpreter will
// create at run time gets a ScopeInfo describing its slot layout, and every
// identifier reference or declaration that resolves statically gets a
// VarRef coordinate into that layout. Un-annotated nodes (Ref == nil,
// Scope == nil) take the interpreter's dynamic map-based path, so an
// unresolved program executes exactly as before the pass existed.

// VarRef is a resolved variable coordinate: the binding lives Depth
// environment hops outward from the innermost scope, at slot index Slot.
type VarRef struct {
	Depth int // environment hops outward from the use site's scope
	Slot  int // slot index within that scope
}

// ScopeInfo is the static slot layout of one lexical scope. Slots are
// allocated by the resolver; the runtime environment for the scope holds a
// flat value array of NumSlots entries. Names is indexed by slot.
type ScopeInfo struct {
	Names []string
	index map[string]int
}

// AddSlot allocates (or returns the existing) slot for name.
func (s *ScopeInfo) AddSlot(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	if s.index == nil {
		s.index = make(map[string]int)
	}
	i := len(s.Names)
	s.Names = append(s.Names, name)
	s.index[name] = i
	return i
}

// Slot returns the slot index for name, if the scope declares it.
func (s *ScopeInfo) Slot(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// NumSlots returns the number of allocated slots.
func (s *ScopeInfo) NumSlots() int { return len(s.Names) }

// Program is the root of a parsed file.
type Program struct {
	NodeInfo
	File string // file name, for diagnostics
	Body []Stmt
	// MaxID is one past the largest node ID in the tree; the instrumentor
	// allocates synthetic node IDs starting here.
	MaxID int
}

func (*Program) stmtNode() {}

// ---------------------------------------------------------------------------
// Statements

// DeclKind distinguishes var / let / const declarations.
type DeclKind int

// Declaration keywords.
const (
	DeclVar DeclKind = iota
	DeclLet
	DeclConst
)

// String returns the keyword.
func (k DeclKind) String() string {
	switch k {
	case DeclVar:
		return "var"
	case DeclLet:
		return "let"
	case DeclConst:
		return "const"
	}
	return "decl?"
}

// Declarator is one name = init pair inside a VarDecl.
type Declarator struct {
	NodeInfo
	Name string
	Init Expr    // may be nil
	Ref  *VarRef // set by the resolver; nil → dynamic define
}

// VarDecl is a var/let/const statement.
type VarDecl struct {
	NodeInfo
	Kind  DeclKind
	Decls []*Declarator
}

func (*VarDecl) stmtNode() {}

// FuncDecl is a named function declaration.
type FuncDecl struct {
	NodeInfo
	Name string
	Fn   *FuncLit
	Ref  *VarRef // set by the resolver; nil → dynamic define
}

func (*FuncDecl) stmtNode() {}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	NodeInfo
	X Expr
}

func (*ExprStmt) stmtNode() {}

// ReturnStmt is a return statement; Value may be nil.
type ReturnStmt struct {
	NodeInfo
	Value Expr
}

func (*ReturnStmt) stmtNode() {}

// IfStmt is an if/else statement. Else may be nil, a *BlockStmt, or an *IfStmt.
type IfStmt struct {
	NodeInfo
	Cond Expr
	Then Stmt
	Else Stmt
}

func (*IfStmt) stmtNode() {}

// ForStmt is a classic C-style for loop; any of Init, Cond, Post may be nil.
// Init is either a *VarDecl or an *ExprStmt.
type ForStmt struct {
	NodeInfo
	Init  Stmt
	Cond  Expr
	Post  Expr
	Body  Stmt
	Scope *ScopeInfo // header scope layout; set by the resolver
}

func (*ForStmt) stmtNode() {}

// ForInKind distinguishes for-in from for-of.
type ForInKind int

// Loop kinds.
const (
	ForIn ForInKind = iota
	ForOf
)

// ForInStmt is a for-in or for-of loop.
type ForInStmt struct {
	NodeInfo
	Kind     ForInKind
	DeclKind DeclKind // declaration keyword for the loop variable
	Decl     bool     // whether the loop variable is declared in the head
	Name     string
	Object   Expr
	Body     Stmt
	Scope    *ScopeInfo // per-iteration scope (Decl only); set by the resolver
	Ref      *VarRef    // loop-var coordinate (declared or assigned); set by the resolver
}

func (*ForInStmt) stmtNode() {}

// WhileStmt is a while loop.
type WhileStmt struct {
	NodeInfo
	Cond Expr
	Body Stmt
}

func (*WhileStmt) stmtNode() {}

// DoWhileStmt is a do { } while (cond) loop.
type DoWhileStmt struct {
	NodeInfo
	Body Stmt
	Cond Expr
}

func (*DoWhileStmt) stmtNode() {}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	NodeInfo
	Body  []Stmt
	Scope *ScopeInfo // block scope layout; set by the resolver
}

func (*BlockStmt) stmtNode() {}

// BreakStmt is a break statement (labels are not supported in MiniJS).
type BreakStmt struct{ NodeInfo }

func (*BreakStmt) stmtNode() {}

// ContinueStmt is a continue statement.
type ContinueStmt struct{ NodeInfo }

func (*ContinueStmt) stmtNode() {}

// ThrowStmt is a throw statement.
type ThrowStmt struct {
	NodeInfo
	Value Expr
}

func (*ThrowStmt) stmtNode() {}

// TryStmt is try/catch/finally; Catch and Finally may be nil.
type TryStmt struct {
	NodeInfo
	Body     *BlockStmt
	CatchVar string // "" when the catch clause has no binding
	Catch    *BlockStmt
	Finally  *BlockStmt
	CatchRef *VarRef // catch-binding coordinate; set by the resolver
}

func (*TryStmt) stmtNode() {}

// SwitchCase is one case (or default, when Test is nil) clause.
type SwitchCase struct {
	NodeInfo
	Test Expr // nil for default
	Body []Stmt
}

// SwitchStmt is a switch statement.
type SwitchStmt struct {
	NodeInfo
	Disc  Expr
	Cases []*SwitchCase
	Scope *ScopeInfo // scope shared by all case bodies; set by the resolver
}

func (*SwitchStmt) stmtNode() {}

// ClassMethod is one method in a class body.
type ClassMethod struct {
	NodeInfo
	Name   string
	Static bool
	Fn     *FuncLit
}

// ClassDecl is a class declaration. SuperClass may be nil.
type ClassDecl struct {
	NodeInfo
	Name       string
	SuperClass Expr
	Methods    []*ClassMethod
	Ref        *VarRef // set by the resolver; nil → dynamic define
}

func (*ClassDecl) stmtNode() {}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ NodeInfo }

func (*EmptyStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Expressions

// Ident is an identifier reference.
type Ident struct {
	NodeInfo
	Name string
	Ref  *VarRef // set by the resolver; nil → dynamic lookup
}

func (*Ident) exprNode() {}

// NumberLit is a numeric literal.
type NumberLit struct {
	NodeInfo
	Value float64
}

func (*NumberLit) exprNode() {}

// StringLit is a string literal.
type StringLit struct {
	NodeInfo
	Value string
}

func (*StringLit) exprNode() {}

// TemplateLit is a template literal `a${b}c`. Quasis has one more element
// than Exprs; the pieces interleave Quasis[0] Exprs[0] Quasis[1] ...
type TemplateLit struct {
	NodeInfo
	Quasis []string
	Exprs  []Expr
}

func (*TemplateLit) exprNode() {}

// BoolLit is true or false.
type BoolLit struct {
	NodeInfo
	Value bool
}

func (*BoolLit) exprNode() {}

// NullLit is the null literal.
type NullLit struct{ NodeInfo }

func (*NullLit) exprNode() {}

// UndefinedLit is the undefined literal (modelled as a keyword in MiniJS).
type UndefinedLit struct{ NodeInfo }

func (*UndefinedLit) exprNode() {}

// ThisExpr is the this keyword.
type ThisExpr struct {
	NodeInfo
	Ref *VarRef // set by the resolver; nil → dynamic lookup of "this"
}

func (*ThisExpr) exprNode() {}

// ArrayLit is an array literal; elements may include *SpreadExpr.
type ArrayLit struct {
	NodeInfo
	Elems []Expr
}

func (*ArrayLit) exprNode() {}

// Property is one key: value entry in an object literal.
type Property struct {
	NodeInfo
	Key      string // identifier or string key ("" for spread)
	KeyExpr  Expr   // set when Computed
	Value    Expr
	Computed bool
	Spread   bool // {...x}
}

// ObjectLit is an object literal.
type ObjectLit struct {
	NodeInfo
	Props []*Property
}

func (*ObjectLit) exprNode() {}

// Param is a function parameter; Rest marks a ...rest parameter.
type Param struct {
	NodeInfo
	Name string
	Rest bool
	Ref  *VarRef // set by the resolver; nil → dynamic define
}

// FuncLit is a function body shared by declarations, expressions, arrows
// and class methods.
type FuncLit struct {
	NodeInfo
	Name    string // "" for anonymous
	Params  []*Param
	Body    *BlockStmt
	Arrow   bool
	Async   bool
	ExprRet Expr       // arrow with expression body: x => x + 1
	Scope   *ScopeInfo // function scope layout; set by the resolver
}

func (*FuncLit) exprNode() {}

// CallExpr is a function call; arguments may include *SpreadExpr.
type CallExpr struct {
	NodeInfo
	Callee Expr
	Args   []Expr
}

func (*CallExpr) exprNode() {}

// NewExpr is a constructor call.
type NewExpr struct {
	NodeInfo
	Callee Expr
	Args   []Expr
}

func (*NewExpr) exprNode() {}

// MemberExpr is property access: a.b or a[b] (Computed).
type MemberExpr struct {
	NodeInfo
	Object   Expr
	Property string // when not Computed
	Index    Expr   // when Computed
	Computed bool
}

func (*MemberExpr) exprNode() {}

// BinaryExpr is a binary arithmetic/comparison operation.
type BinaryExpr struct {
	NodeInfo
	Op    string
	Left  Expr
	Right Expr
}

func (*BinaryExpr) exprNode() {}

// LogicalExpr is &&, || or ?? with short-circuit evaluation.
type LogicalExpr struct {
	NodeInfo
	Op    string
	Left  Expr
	Right Expr
}

func (*LogicalExpr) exprNode() {}

// UnaryExpr is a prefix unary operation (!x, -x, typeof x, delete x.y).
type UnaryExpr struct {
	NodeInfo
	Op string
	X  Expr
}

func (*UnaryExpr) exprNode() {}

// UpdateExpr is ++x, x++, --x or x--.
type UpdateExpr struct {
	NodeInfo
	Op     string // "++" or "--"
	Prefix bool
	X      Expr
}

func (*UpdateExpr) exprNode() {}

// AssignExpr is an assignment, possibly compound (+=, -=, ...). Target is
// an *Ident or a *MemberExpr.
type AssignExpr struct {
	NodeInfo
	Op     string // "=", "+=", ...
	Target Expr
	Value  Expr
}

func (*AssignExpr) exprNode() {}

// CondExpr is the ternary conditional.
type CondExpr struct {
	NodeInfo
	Cond Expr
	Then Expr
	Else Expr
}

func (*CondExpr) exprNode() {}

// SeqExpr is the comma operator (rare; supported for completeness).
type SeqExpr struct {
	NodeInfo
	Exprs []Expr
}

func (*SeqExpr) exprNode() {}

// SpreadExpr is ...x in a call, array literal, or object literal.
type SpreadExpr struct {
	NodeInfo
	X Expr
}

func (*SpreadExpr) exprNode() {}

// AwaitExpr is await x. Per the paper (§4.5), for dataflow purposes
// "await foo" is treated as "foo".
type AwaitExpr struct {
	NodeInfo
	X Expr
}

func (*AwaitExpr) exprNode() {}
