package ast

import "reflect"

// Visitor is called for each node during a Walk. Returning false prunes the
// subtree below the node.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in depth-first, source order, calling
// v for every node (including n itself). Nil children are skipped.
func Walk(n Node, v Visitor) {
	if n == nil || isNilNode(n) {
		return
	}
	if !v(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		walkStmts(x.Body, v)
	case *VarDecl:
		for _, d := range x.Decls {
			Walk(d, v)
		}
	case *Declarator:
		Walk(x.Init, v)
	case *FuncDecl:
		Walk(x.Fn, v)
	case *ExprStmt:
		Walk(x.X, v)
	case *ReturnStmt:
		Walk(x.Value, v)
	case *IfStmt:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *ForStmt:
		Walk(x.Init, v)
		Walk(x.Cond, v)
		Walk(x.Post, v)
		Walk(x.Body, v)
	case *ForInStmt:
		Walk(x.Object, v)
		Walk(x.Body, v)
	case *WhileStmt:
		Walk(x.Cond, v)
		Walk(x.Body, v)
	case *DoWhileStmt:
		Walk(x.Body, v)
		Walk(x.Cond, v)
	case *BlockStmt:
		walkStmts(x.Body, v)
	case *ThrowStmt:
		Walk(x.Value, v)
	case *TryStmt:
		Walk(x.Body, v)
		Walk(x.Catch, v)
		Walk(x.Finally, v)
	case *SwitchStmt:
		Walk(x.Disc, v)
		for _, c := range x.Cases {
			Walk(c, v)
		}
	case *SwitchCase:
		Walk(x.Test, v)
		walkStmts(x.Body, v)
	case *ClassDecl:
		Walk(x.SuperClass, v)
		for _, m := range x.Methods {
			Walk(m, v)
		}
	case *ClassMethod:
		Walk(x.Fn, v)
	case *TemplateLit:
		for _, e := range x.Exprs {
			Walk(e, v)
		}
	case *ArrayLit:
		for _, e := range x.Elems {
			Walk(e, v)
		}
	case *ObjectLit:
		for _, p := range x.Props {
			Walk(p, v)
		}
	case *Property:
		Walk(x.KeyExpr, v)
		Walk(x.Value, v)
	case *FuncLit:
		for _, p := range x.Params {
			Walk(p, v)
		}
		Walk(x.Body, v)
		Walk(x.ExprRet, v)
	case *CallExpr:
		Walk(x.Callee, v)
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *NewExpr:
		Walk(x.Callee, v)
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *MemberExpr:
		Walk(x.Object, v)
		Walk(x.Index, v)
	case *BinaryExpr:
		Walk(x.Left, v)
		Walk(x.Right, v)
	case *LogicalExpr:
		Walk(x.Left, v)
		Walk(x.Right, v)
	case *UnaryExpr:
		Walk(x.X, v)
	case *UpdateExpr:
		Walk(x.X, v)
	case *AssignExpr:
		Walk(x.Target, v)
		Walk(x.Value, v)
	case *CondExpr:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *SeqExpr:
		for _, e := range x.Exprs {
			Walk(e, v)
		}
	case *SpreadExpr:
		Walk(x.X, v)
	case *AwaitExpr:
		Walk(x.X, v)
	}
}

func walkStmts(stmts []Stmt, v Visitor) {
	for _, s := range stmts {
		Walk(s, v)
	}
}

// isNilNode reports whether n is a typed nil inside the Node interface,
// which happens routinely for optional children (e.g. IfStmt.Else).
func isNilNode(n Node) bool {
	v := reflect.ValueOf(n)
	return v.Kind() == reflect.Ptr && v.IsNil()
}
