package harness

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/taint"
)

func TestMapIndexedOrderAndConcurrency(t *testing.T) {
	const n = 100
	for _, parallel := range []int{0, 1, 3, 8, 200} {
		var inFlight, peak atomic.Int64
		out, err := mapIndexed(n, parallel, func(i int) (int, error) {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d", parallel, i, v)
			}
		}
		if parallel >= 1 && peak.Load() > int64(parallel) {
			t.Fatalf("parallel=%d: %d workers ran at once", parallel, peak.Load())
		}
	}
}

func TestMapIndexedZeroItems(t *testing.T) {
	out, err := mapIndexed(0, 8, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapIndexedLowestIndexError(t *testing.T) {
	// every item fails; the reported error must be the lowest-index one so
	// repeated failing runs are deterministic
	_, err := mapIndexed(50, 8, func(i int) (int, error) {
		return 0, fmt.Errorf("item %d", i)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if err.Error() != "item 0" {
		t.Fatalf("err = %v, want item 0", err)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	if err := ForEach(10, 4, func(i int) error {
		if i == 3 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if err := ForEach(10, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineCacheHitsAndSharing(t *testing.T) {
	cache := NewCache()
	app := corpus.ByName(corpus.All(), "modbus")
	opts := taint.DefaultOptions()
	p1, a1, err := cache.Analyzed("modbus.js", app.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, a2, err := cache.Analyzed("modbus.js", app.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || a1 != a2 {
		t.Fatal("cache did not share the parsed AST / analysis")
	}
	b1, err := cache.Baseline("modbus.js", app.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cache.Baseline("modbus.js", app.Source, opts)
	if err != nil || b1 != b2 {
		t.Fatalf("baseline result not shared (err %v)", err)
	}
	s := cache.Stats()
	if s.Entries != 1 {
		t.Fatalf("entries = %d", s.Entries)
	}
	if s.Misses != 1 || s.Hits != 3 {
		t.Fatalf("stats = %+v, want 1 miss / 3 hits", s)
	}

	// different analysis options are a different pipeline
	opts.ImplicitFlows = true
	if _, _, err := cache.Analyzed("modbus.js", app.Source, opts); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (options are part of the key)", s.Entries)
	}
}

func TestPipelineCacheParseError(t *testing.T) {
	cache := NewCache()
	for i := 0; i < 2; i++ {
		if _, _, err := cache.Analyzed("bad.js", "let = ;", taint.DefaultOptions()); err == nil {
			t.Fatal("expected parse error")
		}
		if _, err := cache.Baseline("bad.js", "let = ;", taint.DefaultOptions()); err == nil {
			t.Fatal("expected parse error from Baseline")
		}
	}
}
