package harness

import (
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/instrument"
)

// FuzzGenCorpus drives the whole generate→deploy→pump→score pipeline from
// arbitrary (seed, stratum, size) coordinates: generation must never
// produce an inconsistent ground truth (in particular must-catch and
// must-allow stay disjoint), every generated app must deploy and run
// without panicking, and the scorer must never report an error on a
// well-formed coordinate.
func FuzzGenCorpus(f *testing.F) {
	f.Add(uint64(1), byte(0), byte(6))
	f.Add(uint64(0), byte(3), byte(0))
	f.Add(uint64(0xC0FFEE), byte(6), byte(12))
	f.Add(^uint64(0), byte(200), byte(255))
	f.Fuzz(func(t *testing.T, seed uint64, stratumByte, sizeByte byte) {
		names := corpus.GenStratumNames()
		stratum := names[int(stratumByte)%len(names)]
		app, err := corpus.Generate(stratum, seed, int(sizeByte))
		if err != nil {
			t.Fatalf("Generate(%s, %#x, %d): %v", stratum, seed, sizeByte, err)
		}
		if err := app.CheckConsistency(); err != nil {
			t.Fatalf("inconsistent ground truth: %v", err)
		}
		res, err := genOne(app, GenOptions{})
		if err != nil {
			t.Fatalf("genOne: %v", err)
		}
		if res.Err != "" {
			t.Fatalf("%s failed to deploy or run: %s", app.Name, res.Err)
		}
		if len(res.Missed) > 0 || len(res.Leaked) > 0 {
			t.Fatalf("%s scored dirty: missed %v, leaked %v", app.Name, res.Missed, res.Leaked)
		}
	})
}

// FuzzVMEquivalence is the differential fuzz target for the bytecode VM:
// any generated (seed, stratum, size) coordinate, deployed exhaustively
// with the VM and again on the -novm tree-walker, must produce
// byte-identical observable records — sink traces, per-message errors,
// violations with full label text, and tracker statistics. A divergence
// here is a VM semantics bug by definition: the tree-walker is the
// oracle.
func FuzzVMEquivalence(f *testing.F) {
	f.Add(uint64(1), byte(0), byte(6))
	f.Add(uint64(0xC0FFEE), byte(3), byte(9))
	f.Add(uint64(42), byte(6), byte(0))
	f.Add(^uint64(0), byte(200), byte(255))
	f.Fuzz(func(t *testing.T, seed uint64, stratumByte, sizeByte byte) {
		names := corpus.GenStratumNames()
		stratum := names[int(stratumByte)%len(names)]
		app, err := corpus.Generate(stratum, seed, int(sizeByte))
		if err != nil {
			t.Fatalf("Generate(%s, %#x, %d): %v", stratum, seed, sizeByte, err)
		}
		base := genVariant{mode: instrument.Exhaustive}
		walker := base
		walker.noVM = true
		vmSig := genRun(app, base, false)
		walkSig := genRun(app, walker, false)
		if vmSig != walkSig {
			t.Fatalf("%s (stratum %s, seed %#x): VM and tree-walker diverged:\n-- vm --\n%s\n-- novm --\n%s",
				app.Name, stratum, seed, vmSig, walkSig)
		}
	})
}
