package harness

import (
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/corpus"
)

// appModeSignature runs all three versions of one app under one execution
// mode and renders everything observable into a canonical string: the
// per-message error outcomes, the full sink trace, the recorded
// violations and the tracker statistics. Two execution modes are
// equivalent iff their signatures are byte-identical.
func appModeSignature(app *corpus.App, noResolve bool, messages int) (string, error) {
	return execModeSignature(app, nil, ExecMode{NoResolve: noResolve}, messages)
}

// execModeSignature is appModeSignature for an arbitrary engine (VM,
// tree-walker, map-walk) and an optional shared pipeline cache.
func execModeSignature(app *corpus.App, cache *PipelineCache, mode ExecMode, messages int) (string, error) {
	prep, err := PrepareAppMode(app, cache, mode)
	if err != nil {
		return "", fmt.Errorf("%s: %w", app.Name, err)
	}
	var b strings.Builder
	for _, r := range []*Runner{prep.Original, prep.Selective, prep.Exhaustive} {
		fmt.Fprintf(&b, "== %s/%s\n", app.Name, r.Mode)
		for i := 0; i < messages; i++ {
			if err := r.Process(i); err != nil {
				fmt.Fprintf(&b, "msg %d: %v\n", i, err)
			}
		}
		for _, w := range r.IP.IO.Writes {
			fmt.Fprintf(&b, "write: %s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
		}
		if r.IP.Tracker != nil {
			for _, v := range r.IP.Tracker.Violations() {
				fmt.Fprintf(&b, "violation: %v\n", v.Error())
			}
			fmt.Fprintf(&b, "stats: %+v\n", r.IP.Tracker.Stats())
		}
		for _, line := range r.IP.ConsoleOut {
			fmt.Fprintf(&b, "console: %s\n", line)
		}
	}
	return b.String(), nil
}

// corpusSignatures computes every runnable app's signature under one
// execution mode with the given worker count, returning them in corpus
// order.
func corpusSignatures(t *testing.T, noResolve bool, parallel, messages int) []string {
	t.Helper()
	runnable := corpus.Runnable(corpus.All())
	sigs, err := mapIndexed(len(runnable), parallel, func(i int) (string, error) {
		return appModeSignature(runnable[i], noResolve, messages)
	})
	if err != nil {
		t.Fatal(err)
	}
	return sigs
}

// TestResolveDifferentialFullCorpus is the resolver's corpus-wide
// semantics gate: for every runnable app, the slot-env fast path and the
// -noresolve map walk must produce byte-identical sink traces, violations,
// tracker statistics and console output across all three versions — and
// the result must not depend on the worker count.
func TestResolveDifferentialFullCorpus(t *testing.T) {
	const messages = 25
	runnable := corpus.Runnable(corpus.All())
	if len(runnable) == 0 {
		t.Fatal("no runnable corpus apps")
	}

	slotSeq := corpusSignatures(t, false, 1, messages)
	mapSeq := corpusSignatures(t, true, 1, messages)
	for i := range slotSeq {
		if slotSeq[i] != mapSeq[i] {
			t.Errorf("%s: slot-env and map-env diverged:\n--- slot\n%s--- noresolve\n%s",
				runnable[i].Name, slotSeq[i], mapSeq[i])
		}
	}

	// worker-count independence of the same comparison
	slotPar := corpusSignatures(t, false, 8, messages)
	mapPar := corpusSignatures(t, true, 8, messages)
	for i := range slotSeq {
		if slotSeq[i] != slotPar[i] {
			t.Errorf("%s: slot-env signature depends on worker count", runnable[i].Name)
		}
		if mapSeq[i] != mapPar[i] {
			t.Errorf("%s: map-env signature depends on worker count", runnable[i].Name)
		}
	}
}

// TestResolveDifferentialSharedCache exercises the inert-annotation
// property directly: one PipelineCache serves both execution modes — the
// resolver annotations on the shared AST must be harmless to a NoResolve
// interpreter.
func TestResolveDifferentialSharedCache(t *testing.T) {
	const messages = 25
	cache := NewCache()
	runnable := corpus.Runnable(corpus.All())
	for _, app := range runnable[:5] {
		var sigs [2]string
		for m, noResolve := range []bool{false, true} {
			prep, err := PrepareAppOpt(app, cache, noResolve)
			if err != nil {
				t.Fatalf("%s (noresolve=%v): %v", app.Name, noResolve, err)
			}
			var b strings.Builder
			for _, r := range []*Runner{prep.Original, prep.Selective} {
				for i := 0; i < messages; i++ {
					if err := r.Process(i); err != nil {
						fmt.Fprintf(&b, "msg %d: %v\n", i, err)
					}
				}
				for _, w := range r.IP.IO.Writes {
					fmt.Fprintf(&b, "write: %s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
				}
			}
			sigs[m] = b.String()
		}
		if sigs[0] != sigs[1] {
			t.Errorf("%s: execution modes diverge when sharing one cache:\n--- slot\n%s--- noresolve\n%s",
				app.Name, sigs[0], sigs[1])
		}
	}
}
