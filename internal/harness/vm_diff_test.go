package harness

import (
	"sync"
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/taint"
)

// The bytecode VM's corpus-wide semantics gates: the tree-walker is the
// differential oracle, and the VM must be indistinguishable from it on
// everything observable — sink traces, violations, tracker statistics,
// console output, error outcomes — across every runnable app, at every
// worker count, under fault injection and under the attack corpus.

// vmCorpusSignatures computes every runnable app's signature on one
// engine with the given worker count.
func vmCorpusSignatures(t *testing.T, mode ExecMode, parallel, messages int) []string {
	t.Helper()
	runnable := corpus.Runnable(corpus.All())
	sigs, err := mapIndexed(len(runnable), parallel, func(i int) (string, error) {
		return execModeSignature(runnable[i], nil, mode, messages)
	})
	if err != nil {
		t.Fatal(err)
	}
	return sigs
}

// TestVMDifferentialFullCorpus compares the VM against the slot-env
// tree-walker (-novm) on the full corpus, sequentially and with 8
// workers: byte-identical signatures, independent of worker count.
func TestVMDifferentialFullCorpus(t *testing.T) {
	const messages = 25
	runnable := corpus.Runnable(corpus.All())
	if len(runnable) == 0 {
		t.Fatal("no runnable corpus apps")
	}

	vmSeq := vmCorpusSignatures(t, ExecMode{}, 1, messages)
	walkSeq := vmCorpusSignatures(t, ExecMode{NoVM: true}, 1, messages)
	for i := range vmSeq {
		if vmSeq[i] != walkSeq[i] {
			t.Errorf("%s: VM and tree-walker diverged:\n--- vm\n%s--- novm\n%s",
				runnable[i].Name, vmSeq[i], walkSeq[i])
		}
	}

	vmPar := vmCorpusSignatures(t, ExecMode{}, 8, messages)
	walkPar := vmCorpusSignatures(t, ExecMode{NoVM: true}, 8, messages)
	for i := range vmSeq {
		if vmSeq[i] != vmPar[i] {
			t.Errorf("%s: VM signature depends on worker count", runnable[i].Name)
		}
		if walkSeq[i] != walkPar[i] {
			t.Errorf("%s: tree-walker signature depends on worker count", runnable[i].Name)
		}
	}
}

// TestVMSharedCacheBothModes is the regression test for the pipeline
// cache's ExecMode keying: one PipelineCache serves VM and tree-walker
// preparations concurrently (run under -race in verify.sh). Before the
// keying fix both modes aliased onto one entry, so whichever mode lost
// the singleflight race executed the other's artifact and the harness
// silently stopped being differential.
func TestVMSharedCacheBothModes(t *testing.T) {
	const messages = 25
	cache := NewCache()
	runnable := corpus.Runnable(corpus.All())
	if len(runnable) > 6 {
		runnable = runnable[:6]
	}

	modes := []ExecMode{{}, {NoVM: true}}
	sigs := make([][]string, len(modes))
	for m := range sigs {
		sigs[m] = make([]string, len(runnable))
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(modes)*len(runnable))
	for m, mode := range modes {
		for i, app := range runnable {
			wg.Add(1)
			go func(m, i int, mode ExecMode, app *corpus.App) {
				defer wg.Done()
				sig, err := execModeSignature(app, cache, mode, messages)
				if err != nil {
					errs <- err
					return
				}
				sigs[m][i] = sig
			}(m, i, mode, app)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, app := range runnable {
		if sigs[0][i] != sigs[1][i] {
			t.Errorf("%s: modes diverge when sharing one cache:\n--- vm\n%s--- novm\n%s",
				app.Name, sigs[0][i], sigs[1][i])
		}
	}

	// artifact separation: the VM-mode entry carries compiled bytecode,
	// the walker-mode entry must not
	app := runnable[0]
	_, _, vmMod, err := cache.AnalyzedMode(app.Name+".js", app.Source, taint.DefaultOptions(), ExecMode{})
	if err != nil {
		t.Fatal(err)
	}
	if vmMod == nil {
		t.Error("VM-mode cache entry has no compiled module")
	}
	_, _, walkMod, err := cache.AnalyzedMode(app.Name+".js", app.Source, taint.DefaultOptions(), ExecMode{NoVM: true})
	if err != nil {
		t.Fatal(err)
	}
	if walkMod != nil {
		t.Error("walker-mode cache entry leaked a compiled module")
	}
}

// TestVMChaosEquivalence replays the fault-injection battery on both
// engines with the same seed: fault traces, message errors, surviving
// sink writes and the three-version equivalence verdicts must agree
// app for app.
func TestVMChaosEquivalence(t *testing.T) {
	apps := corpus.All()
	vmRes, err := RunChaos(apps, ChaosOptions{Seed: 3, Messages: 8, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	walkRes, err := RunChaos(apps, ChaosOptions{Seed: 3, Messages: 8, Cache: NewCache(), NoVM: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(vmRes.Apps) != len(walkRes.Apps) {
		t.Fatalf("app count: vm %d, walker %d", len(vmRes.Apps), len(walkRes.Apps))
	}
	for i, va := range vmRes.Apps {
		wa := walkRes.Apps[i]
		if va != wa {
			t.Errorf("%s: chaos outcomes diverge:\nvm:     %+v\nwalker: %+v", va.App, va, wa)
		}
	}
	if vmRes.Equivalent != walkRes.Equivalent {
		t.Errorf("equivalent count: vm %d, walker %d", vmRes.Equivalent, walkRes.Equivalent)
	}
}

// TestVMAttackEquivalence runs the adversarial corpus on both engines:
// the rendered attack report (containment verdicts, violations, typed
// failure classes) must be byte-identical.
func TestVMAttackEquivalence(t *testing.T) {
	vmRes, err := RunAttackCorpus(AttackOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	walkRes, err := RunAttackCorpus(AttackOptions{Parallel: 1, NoVM: true})
	if err != nil {
		t.Fatal(err)
	}
	if vmTxt, walkTxt := RenderAttack(vmRes), RenderAttack(walkRes); vmTxt != walkTxt {
		t.Errorf("attack report diverges between engines:\n--- vm\n%s--- novm\n%s", vmTxt, walkTxt)
	}
}
