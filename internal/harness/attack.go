package harness

import (
	"fmt"
	"strings"

	"turnstile/internal/core"
	"turnstile/internal/corpus"
	"turnstile/internal/instrument"
)

// The attack harness runs the adversarial corpus (corpus/attack.go) with
// exhaustive instrumentation, implicit flows and the tracker in audit mode
// — the strongest monitoring configuration — and scores the recorded
// violations against each app's ground truth. A must-catch prefix with no
// matching violation is a missed flow (a real leak the tracker let
// through); a must-allow prefix with a matching violation is a false
// positive (a sanctioned flow the tracker flagged). The rendered table is
// deterministic and byte-identical at any worker count; verify.sh gates on
// zero missed flows.

// AttackOptions configures an attack-corpus run.
type AttackOptions struct {
	// Parallel is the worker count; 0 selects GOMAXPROCS, 1 runs
	// sequentially. The report is byte-identical either way.
	Parallel int
	// NoResolve deploys each app on the map-walk interpreter (A/B escape
	// hatch, as in the crash harness).
	NoResolve bool
	// NoVM deploys each app on the tree-walking evaluator (-novm).
	NoVM bool
}

// AttackAppResult is one app's score.
type AttackAppResult struct {
	App      string
	Vector   string
	Expected int      // ground-truth must-catch flows
	Caught   int      // must-catch flows with a matching violation
	Missed   []string // must-catch prefixes with no matching violation
	Leaked   []string // must-allow prefixes that matched a violation
	Err      string   // non-empty when the app failed to run
	OK       bool
}

// AttackResult aggregates a run with corpus-wide precision/recall.
type AttackResult struct {
	Apps   []AttackAppResult
	Passed int
	// TP/FN/FP over ground-truth entries: TP = caught must-catch flows,
	// FN = missed must-catch flows, FP = flagged must-allow flows.
	TP, FN, FP int
}

// Precision is TP/(TP+FP); 1 when nothing was flagged wrongly.
func (r *AttackResult) Precision() float64 {
	if r.TP+r.FP == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FP)
}

// Recall is TP/(TP+FN); 1 when no must-catch flow escaped.
func (r *AttackResult) Recall() float64 {
	if r.TP+r.FN == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FN)
}

// RunAttackCorpus runs every attack app and scores it.
func RunAttackCorpus(opts AttackOptions) (*AttackResult, error) {
	apps := corpus.AttackApps()
	results, err := mapIndexed(len(apps), opts.Parallel, func(i int) (AttackAppResult, error) {
		return attackOne(apps[i], opts)
	})
	if err != nil {
		return nil, err
	}
	res := &AttackResult{Apps: results}
	for i := range results {
		r := &results[i]
		if r.OK {
			res.Passed++
		}
		res.TP += r.Caught
		res.FN += len(r.Missed)
		res.FP += len(r.Leaked)
	}
	return res, nil
}

func attackOne(aa *corpus.AttackApp, opts AttackOptions) (AttackAppResult, error) {
	res := AttackAppResult{App: aa.Name, Vector: aa.Vector, Expected: len(aa.MustCatch)}
	copts := core.DefaultOptions()
	copts.Mode = instrument.Exhaustive
	copts.ImplicitFlows = true
	copts.Enforce = false // audit: the whole attack executes, every violation is recorded
	copts.NoResolve = opts.NoResolve
	copts.NoVM = opts.NoVM
	app, err := core.Manage(map[string]string{aa.Name + ".js": aa.Source}, aa.Policy, copts)
	if err != nil {
		res.Err = firstLine(err.Error())
		return res, nil
	}
	violations := app.Violations()
	match := func(prefix string) bool {
		for _, v := range violations {
			if strings.HasPrefix(v.Site, prefix) {
				return true
			}
		}
		return false
	}
	for _, p := range aa.MustCatch {
		if match(p) {
			res.Caught++
		} else {
			res.Missed = append(res.Missed, p)
		}
	}
	for _, p := range aa.MustAllow {
		if match(p) {
			res.Leaked = append(res.Leaked, p)
		}
	}
	res.OK = res.Err == "" && len(res.Missed) == 0 && len(res.Leaked) == 0
	return res, nil
}

// RenderAttack formats the precision/recall report. No durations or other
// host-dependent values: one build renders it byte-identically at any
// -parallel level, so the determinism gates compare it directly.
func RenderAttack(res *AttackResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Attack corpus: %d adversarial apps (exhaustive instrumentation, implicit flows, audit mode)\n", len(res.Apps))
	fmt.Fprintf(&b, "%-22s %-36s %9s %7s %7s %6s %s\n",
		"application", "vector", "expected", "caught", "missed", "false+", "verdict")
	for _, a := range res.Apps {
		verdict := "OK"
		if !a.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-22s %-36s %9d %7d %7d %6d %s\n",
			a.App, a.Vector, a.Expected, a.Caught, len(a.Missed), len(a.Leaked), verdict)
	}
	fmt.Fprintf(&b, "must-catch flows: %d caught, %d missed; false positives: %d\n", res.TP, res.FN, res.FP)
	fmt.Fprintf(&b, "precision %.3f  recall %.3f\n", res.Precision(), res.Recall())
	for _, a := range res.Apps {
		if a.Err != "" {
			fmt.Fprintf(&b, "\n%s: error: %s\n", a.App, a.Err)
		}
		for _, m := range a.Missed {
			fmt.Fprintf(&b, "\n%s: MISSED must-catch flow %s\n", a.App, m)
		}
		for _, l := range a.Leaked {
			fmt.Fprintf(&b, "\n%s: false positive on sanctioned flow %s\n", a.App, l)
		}
	}
	return b.String()
}
