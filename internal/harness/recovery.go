package harness

import (
	"fmt"
	"strings"

	"turnstile/internal/durable"
	"turnstile/internal/serve"
)

// This file is the crash-recovery battery: kill the durable serve daemon
// at WAL record boundaries of a seeded fleet trace, recover on the
// surviving bytes with a fresh fleet, resume, and require the final
// account byte-identical to the uninterrupted run — at -parallel 1 and 8.
// A corrupted WAL suffix is the one sanctioned exception: that tenant must
// come back poisoned with sinks denied, never wrong and never silently
// clean.

// RecoveryOptions configures the battery.
type RecoveryOptions struct {
	// Tenants is the number of well-behaved demo tenants.
	Tenants int
	// Messages is the arrival-trace length per tenant.
	Messages int
	// Seed drives the arrival traces.
	Seed int64
	// BoundaryStride sweeps every stride-th record boundary; 1 (or 0)
	// tests every boundary. The verify smoke gate uses a coarse stride.
	BoundaryStride int
	// MaxBoundaries caps how many crash points are tested after striding;
	// 0 means no cap.
	MaxBoundaries int
	// Parallel lists the worker counts recovery is proven at; empty
	// selects {1, 8}.
	Parallel []int
	// SkipCorruption disables the corrupted-suffix scenario.
	SkipCorruption bool
}

// CorruptionVerdict is the corrupted-suffix scenario's account: the tenant
// whose WAL lost its integrity must restart poisoned and never serve a
// sink again.
type CorruptionVerdict struct {
	Tenant string
	// Poisoned and Reason echo the recovered report.
	Poisoned bool
	Reason   string
	// PostRestartSinks counts sink writes the recovered driver performed;
	// with the whole history unverifiable it must be zero.
	PostRestartSinks int
	// OKOutcomes counts clean outcomes after the restart; must be zero —
	// a poisoned tenant's messages are denied, not silently served.
	OKOutcomes int
	// SecondRestartPoisoned proves the poison decision itself is durable.
	SecondRestartPoisoned bool
}

// Ok reports whether the fail-closed contract held.
func (c *CorruptionVerdict) Ok() bool {
	return c.Poisoned && c.PostRestartSinks == 0 && c.OKOutcomes == 0 && c.SecondRestartPoisoned
}

// RecoveryResult aggregates the battery.
type RecoveryResult struct {
	MaxRecords int   // deepest tenant WAL in the uninterrupted run
	Boundaries []int // crash points actually tested
	Parallel   []int
	// Mismatches lists every (boundary, parallel) whose recovered account
	// was not byte-identical to the uninterrupted run.
	Mismatches []string
	Corruption *CorruptionVerdict
}

// Passed reports the battery verdict.
func (r *RecoveryResult) Passed() bool {
	if len(r.Mismatches) > 0 {
		return false
	}
	if r.Corruption != nil && !r.Corruption.Ok() {
		return false
	}
	return true
}

// recoveryFleet builds the battery's fleet: fresh demo-tenant universes,
// as a restarted daemon process would.
func recoveryFleet(opts RecoveryOptions) ([]serve.TenantConfig, error) {
	return BuildServeFleet(ServeFleetOptions{
		Tenants: opts.Tenants, Messages: opts.Messages, Seed: opts.Seed,
	})
}

// fleetAccount renders the complete observable account of a fleet run —
// the summary table plus every tenant's counters, DLQ and fingerprint —
// as one byte-comparable string.
func fleetAccount(rep *serve.Report) string {
	var b strings.Builder
	b.WriteString(rep.Render())
	for _, t := range rep.Tenants {
		fmt.Fprintf(&b, "== %s\n%s", t.Name, tenantAccount(t))
	}
	return b.String()
}

// RunRecoveryBattery executes the battery. Procedure:
//
//  1. Run the fleet durably, uninterrupted, on an in-memory store — the
//     baseline account and the per-tenant WAL depths.
//  2. For each swept boundary k: run a fresh fleet on a fresh store where
//     every tenant's process dies right after its own k-th WAL record
//     (per-file crash points, so the kill is deterministic at any worker
//     count), drop the page caches, then — at each proven worker count,
//     on an independent clone of the surviving bytes — recover a fresh
//     fleet, resume it, and byte-compare the final account against the
//     baseline.
//  3. Corruption scenario: flip one byte inside the first record of one
//     completed tenant's WAL and recover; that tenant must restart
//     poisoned, deny every message, and write no sink — and stay poisoned
//     on a second restart.
func RunRecoveryBattery(opts RecoveryOptions) (*RecoveryResult, error) {
	if opts.BoundaryStride < 1 {
		opts.BoundaryStride = 1
	}
	parallels := opts.Parallel
	if len(parallels) == 0 {
		parallels = []int{1, 8}
	}
	res := &RecoveryResult{Parallel: parallels}

	// 1. uninterrupted baseline
	baseStore := durable.NewMemStore()
	fleet, err := recoveryFleet(opts)
	if err != nil {
		return nil, err
	}
	baseRep, err := (&serve.Server{Tenants: fleet, Store: baseStore}).Run(1)
	if err != nil {
		return nil, err
	}
	for _, t := range baseRep.Tenants {
		if t.Crashed || t.Poisoned {
			return nil, fmt.Errorf("harness: baseline tenant %s crashed=%v poisoned=%v", t.Name, t.Crashed, t.Poisoned)
		}
	}
	baseline := fleetAccount(baseRep)
	walNames := make([]string, len(fleet))
	for i, cfg := range fleet {
		walNames[i] = serve.WALName(cfg.Name)
		data, err := baseStore.ReadFile(walNames[i])
		if err != nil {
			return nil, err
		}
		recs, v := durable.DecodeRecords(data)
		if !v.Clean {
			return nil, fmt.Errorf("harness: baseline WAL for %s not clean: %s", cfg.Name, v.Reason)
		}
		if len(recs) > res.MaxRecords {
			res.MaxRecords = len(recs)
		}
	}

	// 2. boundary sweep
	for k := 1; k <= res.MaxRecords; k += opts.BoundaryStride {
		if opts.MaxBoundaries > 0 && len(res.Boundaries) >= opts.MaxBoundaries {
			break
		}
		res.Boundaries = append(res.Boundaries, k)
		crashStore := durable.NewMemStore()
		crashStore.CrashAfterSyncsFor = make(map[string]int, len(walNames))
		for _, n := range walNames {
			crashStore.CrashAfterSyncsFor[n] = k
		}
		fleet, err := recoveryFleet(opts)
		if err != nil {
			return nil, err
		}
		if _, err := (&serve.Server{Tenants: fleet, Store: crashStore}).Run(1); err != nil {
			return nil, fmt.Errorf("harness: boundary %d crash run: %w", k, err)
		}
		crashStore.Crash() // only synced bytes survive the kill
		crashStore.CrashAfterSyncsFor = nil
		for _, parallel := range parallels {
			clone := crashStore.Clone()
			fleet, err := recoveryFleet(opts)
			if err != nil {
				return nil, err
			}
			rep, err := (&serve.Server{Tenants: fleet, Store: clone}).Run(parallel)
			if err != nil {
				return nil, fmt.Errorf("harness: boundary %d recovery at parallel %d: %w", k, parallel, err)
			}
			if got := fleetAccount(rep); got != baseline {
				res.Mismatches = append(res.Mismatches,
					fmt.Sprintf("boundary %d parallel %d:\n--- baseline ---\n%s--- recovered ---\n%s", k, parallel, baseline, got))
			}
		}
	}

	// 3. corrupted-suffix scenario
	if !opts.SkipCorruption {
		verdict, err := runCorruptionScenario(opts, baseStore, walNames[0], baseRep.Tenants[0].Name)
		if err != nil {
			return nil, err
		}
		res.Corruption = verdict
	}
	return res, nil
}

// runCorruptionScenario flips one byte inside the first WAL record of the
// named tenant on a clone of the completed store and checks the
// fail-closed recovery contract.
func runCorruptionScenario(opts RecoveryOptions, baseStore *durable.MemStore, walName, tenant string) (*CorruptionVerdict, error) {
	store := baseStore.Clone()
	data, err := store.ReadFile(walName)
	if err != nil {
		return nil, err
	}
	if len(data) < 16 {
		return nil, fmt.Errorf("harness: WAL for %s too short to corrupt", tenant)
	}
	data[12] ^= 0x20 // inside the first record's payload: nothing verifies
	if err := store.WriteFile(walName, data); err != nil {
		return nil, err
	}
	verdict := &CorruptionVerdict{Tenant: tenant}
	for round := 0; round < 2; round++ {
		fleet, err := recoveryFleet(opts)
		if err != nil {
			return nil, err
		}
		rep, err := (&serve.Server{Tenants: fleet, Store: store}).Run(1)
		if err != nil {
			return nil, err
		}
		var tr *serve.TenantReport
		var driver serve.Driver
		for i, t := range rep.Tenants {
			if t.Name == tenant {
				tr, driver = t, fleet[i].Driver
			}
		}
		if tr == nil {
			return nil, fmt.Errorf("harness: corrupted tenant %s missing from report", tenant)
		}
		sinks := -1
		if p, ok := driver.(serve.StateProber); ok {
			sinks = p.SinkWrites()
		}
		if round == 0 {
			verdict.Poisoned = tr.Poisoned
			verdict.Reason = tr.PoisonReason
			verdict.PostRestartSinks = sinks
			verdict.OKOutcomes = tr.OK
		} else {
			// the poison record appended by round 0 must re-arm the latch
			verdict.SecondRestartPoisoned = tr.Poisoned && sinks == 0
		}
	}
	return verdict, nil
}

// RenderRecovery formats the battery verdict; deterministic, grep-able.
func RenderRecovery(res *RecoveryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash-recovery battery (kill at WAL record boundaries, recover, resume)\n")
	fmt.Fprintf(&b, "  wal depth: %d record(s); boundaries tested: %d; worker counts: %v\n",
		res.MaxRecords, len(res.Boundaries), res.Parallel)
	if len(res.Mismatches) == 0 {
		fmt.Fprintf(&b, "  recovered account byte-identical to uninterrupted run at every boundary\n")
	}
	for _, m := range res.Mismatches {
		fmt.Fprintf(&b, "  MISMATCH %s\n", strings.ReplaceAll(m, "\n", "\n  "))
	}
	if c := res.Corruption; c != nil {
		fmt.Fprintf(&b, "  corruption: tenant=%s poisoned=%v reason=%q post_restart_sinks=%d ok_outcomes=%d repoisoned=%v\n",
			c.Tenant, c.Poisoned, c.Reason, c.PostRestartSinks, c.OKOutcomes, c.SecondRestartPoisoned)
	}
	verdict := "PASS"
	if !res.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "verdict: %s\n", verdict)
	return b.String()
}
