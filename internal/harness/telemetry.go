package harness

import (
	"fmt"
	"strings"

	"turnstile/internal/corpus"
	"turnstile/internal/telemetry"
)

// This file implements the per-app overhead breakdown behind
// `turnstile-bench -metrics`: every runnable app's selective and
// exhaustive versions are replayed with the telemetry layer attached, and
// the instrumented-vs-original cost is attributed to individual DIFT
// operations. The attribution is count-based with a fixed documented cost
// model, never wall-clock-based, so the rendered table is byte-identical
// across runs, worker counts and machines — the property the golden test
// and the verify.sh determinism gates compare directly.

// OpOrder is the canonical tracker-op column order of the breakdown table.
var OpOrder = []string{"label", "binaryOp", "assign", "check", "invoke", "track", "box"}

// OpWeights is the deterministic cost model: relative units per tracker
// operation, calibrated once against BenchmarkDIFTOps (label resolves a
// labeller and attaches; check and invoke walk the data labels and consult
// the policy graph; track and box heap-allocate a wrapper; binaryOp and
// assign are single label-map unions).
var OpWeights = map[string]int64{
	"label":    4,
	"binaryOp": 1,
	"assign":   1,
	"check":    3,
	"invoke":   5,
	"track":    2,
	"box":      2,
}

// BreakdownVersion is the telemetry snapshot of one instrumented version's
// replay.
type BreakdownVersion struct {
	// Ops maps tracker op → count (the dift.* counters, prefix stripped).
	Ops map[string]int64
	// Units is the weighted cost attribution: Σ count × OpWeights[op].
	Units int64
	// HostCalls / SinkWrites / Violations are the runtime counters.
	HostCalls  int64
	SinkWrites int64
	Violations int64
	// CacheHits / CacheMisses count policy reachability-cache lookups.
	CacheHits, CacheMisses int64
	// TraceEvents is the tracer's total (0 when tracing was off).
	TraceEvents int64
}

// TopOp returns the op with the largest weighted contribution and its
// share of Units (ties broken by op name, keeping output deterministic).
func (v *BreakdownVersion) TopOp() (string, float64) {
	if v.Units == 0 {
		return "-", 0
	}
	best, bestUnits := "", int64(-1)
	for _, op := range OpOrder {
		u := v.Ops[op] * OpWeights[op]
		if u > bestUnits {
			best, bestUnits = op, u
		}
	}
	return best, 100 * float64(bestUnits) / float64(v.Units)
}

// BreakdownRow is one app's breakdown.
type BreakdownRow struct {
	App        string
	Selective  BreakdownVersion
	Exhaustive BreakdownVersion
	// SelectiveTrace is the selective version's exported trace JSON (nil
	// unless BreakdownOptions.TraceCapacity was set).
	SelectiveTrace []byte
}

// BreakdownResult aggregates a breakdown run.
type BreakdownResult struct {
	Messages int
	Rows     []BreakdownRow
}

// BreakdownOptions configures RunBreakdown.
type BreakdownOptions struct {
	// Messages pumped through each version (default 40).
	Messages int
	// Parallel is the worker count; 0 selects GOMAXPROCS, 1 runs
	// sequentially. Output is index-deterministic either way.
	Parallel int
	// Cache, when non-nil, memoizes parse + analysis per app.
	Cache *PipelineCache
	// TraceCapacity > 0 also attaches a structured tracer to each version
	// and exports the selective version's trace into the row.
	TraceCapacity int
	// NoResolve runs every version on the map-walk interpreter with the
	// resolver fast paths disabled (A/B escape hatch).
	NoResolve bool
	// NoVM runs every version on the tree-walking evaluator (-novm).
	NoVM bool
}

// RunBreakdown replays every runnable app's selective and exhaustive
// versions under the telemetry layer and attributes the instrumented cost
// to tracker ops. The original version needs no replay: it executes zero
// tracker ops by construction, so the op counts are the
// instrumented-minus-original delta.
func RunBreakdown(apps []*corpus.App, opts BreakdownOptions) (*BreakdownResult, error) {
	if opts.Messages <= 0 {
		opts.Messages = 40
	}
	runnable := corpus.Runnable(apps)
	rows, err := mapIndexed(len(runnable), opts.Parallel, func(i int) (BreakdownRow, error) {
		return breakdownApp(runnable[i], opts)
	})
	if err != nil {
		return nil, err
	}
	return &BreakdownResult{Messages: opts.Messages, Rows: rows}, nil
}

func breakdownApp(app *corpus.App, opts BreakdownOptions) (BreakdownRow, error) {
	prep, err := PrepareAppMode(app, opts.Cache, ExecMode{NoResolve: opts.NoResolve, NoVM: opts.NoVM})
	if err != nil {
		return BreakdownRow{}, fmt.Errorf("harness: %s: %w", app.Name, err)
	}
	row := BreakdownRow{App: app.Name}
	for _, v := range []struct {
		runner *Runner
		out    *BreakdownVersion
		export bool
	}{
		{prep.Selective, &row.Selective, true},
		{prep.Exhaustive, &row.Exhaustive, false},
	} {
		snap, trace, err := replayWithTelemetry(v.runner, opts.Messages, opts.TraceCapacity)
		if err != nil {
			return BreakdownRow{}, fmt.Errorf("harness: %s (%s): %w", app.Name, v.runner.Mode, err)
		}
		*v.out = *snap
		if v.export && trace != nil {
			if row.SelectiveTrace, err = trace.ExportJSON(); err != nil {
				return BreakdownRow{}, fmt.Errorf("harness: %s: trace export: %w", app.Name, err)
			}
		}
	}
	return row, nil
}

// replayWithTelemetry attaches a fresh metrics registry (and optional
// tracer) to a prepared runner, pumps the workload, and snapshots the
// counters.
func replayWithTelemetry(r *Runner, messages, traceCap int) (*BreakdownVersion, *telemetry.Tracer, error) {
	m := telemetry.NewMetrics()
	var tracer *telemetry.Tracer
	if traceCap > 0 {
		tracer = telemetry.NewTracer(traceCap, r.IP.Clock.Now)
	}
	r.IP.EnableTelemetry(m, tracer)
	defer r.IP.EnableTelemetry(nil, nil)
	for i := 0; i < messages; i++ {
		// audit-mode runners surface violations through the tracker, not as
		// errors; anything returned here is a real runtime failure
		if err := r.Process(i); err != nil {
			return nil, nil, err
		}
	}
	// fold the interpreter's fast-path counters ("interp.*") into the
	// registry; the breakdown tables only render "dift."-prefixed counters,
	// so their byte-identity across execution modes is unaffected
	r.IP.FlushEnvTelemetry()
	snap := snapshotVersion(m)
	if r.IP.Tracker != nil {
		snap.Violations = int64(len(r.IP.Tracker.Violations()))
	}
	if tracer != nil {
		snap.TraceEvents = tracer.Total()
	}
	return snap, tracer, nil
}

// snapshotVersion extracts the breakdown quantities from a registry.
func snapshotVersion(m *telemetry.Metrics) *BreakdownVersion {
	v := &BreakdownVersion{Ops: make(map[string]int64, len(OpOrder))}
	for op, n := range m.CountersWithPrefix("dift.") {
		if _, known := OpWeights[op]; known {
			v.Ops[op] = n
			v.Units += n * OpWeights[op]
		}
	}
	v.HostCalls = m.SumWithPrefix("host.")
	v.SinkWrites = m.SumWithPrefix("sink.")
	v.CacheHits = m.CounterValue("policy.cache.hit")
	v.CacheMisses = m.CounterValue("policy.cache.miss")
	return v
}

// RenderBreakdown formats the per-app overhead-breakdown tables. Output
// is a pure function of op counts — no measured durations — so it is
// byte-identical across runs and -parallel counts.
func RenderBreakdown(res *BreakdownResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overhead breakdown: tracker-op attribution, %d messages per app\n", res.Messages)
	b.WriteString("(cost units:")
	for _, op := range OpOrder {
		fmt.Fprintf(&b, " %s=%d", op, OpWeights[op])
	}
	b.WriteString(")\n")
	renderMode := func(title string, pick func(*BreakdownRow) *BreakdownVersion) {
		fmt.Fprintf(&b, "\n%s instrumentation\n", title)
		fmt.Fprintf(&b, "%-18s |", "application")
		for _, op := range OpOrder {
			fmt.Fprintf(&b, " %8s", op)
		}
		fmt.Fprintf(&b, " | %8s  %s\n", "units", "top op (share)")
		totals := make(map[string]int64, len(OpOrder))
		var totalUnits int64
		for i := range res.Rows {
			v := pick(&res.Rows[i])
			fmt.Fprintf(&b, "%-18s |", res.Rows[i].App)
			for _, op := range OpOrder {
				fmt.Fprintf(&b, " %8d", v.Ops[op])
				totals[op] += v.Ops[op]
			}
			totalUnits += v.Units
			top, share := v.TopOp()
			fmt.Fprintf(&b, " | %8d  %s (%.1f%%)\n", v.Units, top, share)
		}
		fmt.Fprintf(&b, "%-18s |", "TOTAL")
		for _, op := range OpOrder {
			fmt.Fprintf(&b, " %8d", totals[op])
		}
		fmt.Fprintf(&b, " | %8d\n", totalUnits)
	}
	renderMode("selective", func(r *BreakdownRow) *BreakdownVersion { return &r.Selective })
	renderMode("exhaustive", func(r *BreakdownRow) *BreakdownVersion { return &r.Exhaustive })

	b.WriteString("\nruntime counters (selective / exhaustive)\n")
	fmt.Fprintf(&b, "%-18s | %15s %15s %15s %15s %15s\n",
		"application", "host-calls", "sink-writes", "cache-hit", "cache-miss", "violations")
	for i := range res.Rows {
		r := &res.Rows[i]
		pair := func(a, c int64) string { return fmt.Sprintf("%d / %d", a, c) }
		fmt.Fprintf(&b, "%-18s | %15s %15s %15s %15s %15s\n", r.App,
			pair(r.Selective.HostCalls, r.Exhaustive.HostCalls),
			pair(r.Selective.SinkWrites, r.Exhaustive.SinkWrites),
			pair(r.Selective.CacheHits, r.Exhaustive.CacheHits),
			pair(r.Selective.CacheMisses, r.Exhaustive.CacheMisses),
			pair(r.Selective.Violations, r.Exhaustive.Violations))
	}
	return b.String()
}
