package harness

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAttackReportGolden pins the rendered precision/recall table to a
// committed golden file and checks worker-count independence: the report
// must be byte-identical at -parallel 1 and -parallel 8. Regenerate with
// TURNSTILE_UPDATE_GOLDEN=1 go test ./internal/harness -run AttackReportGolden
func TestAttackReportGolden(t *testing.T) {
	seq, err := RunAttackCorpus(AttackOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAttackCorpus(AttackOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	seqTxt, parTxt := RenderAttack(seq), RenderAttack(par)
	if seqTxt != parTxt {
		t.Fatalf("attack report differs across worker counts:\n-- parallel 1 --\n%s\n-- parallel 8 --\n%s", seqTxt, parTxt)
	}

	golden := filepath.Join("testdata", "attack_golden.txt")
	if os.Getenv("TURNSTILE_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(seqTxt), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with TURNSTILE_UPDATE_GOLDEN=1): %v", err)
	}
	if string(want) != seqTxt {
		t.Fatalf("attack report drifted from golden:\n-- got --\n%s\n-- want --\n%s", seqTxt, want)
	}

	// the gate invariants the golden encodes, stated directly
	if seq.Passed != len(seq.Apps) {
		t.Fatalf("only %d/%d attack apps passed", seq.Passed, len(seq.Apps))
	}
	if seq.FN != 0 {
		t.Fatalf("%d must-catch flows escaped", seq.FN)
	}
	if seq.Precision() != 1 || seq.Recall() != 1 {
		t.Fatalf("precision %.3f recall %.3f, want 1/1", seq.Precision(), seq.Recall())
	}
}
