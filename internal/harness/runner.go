package harness

import (
	"fmt"

	"turnstile/internal/ast"
	"turnstile/internal/corpus"
	"turnstile/internal/instrument"
	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
	"turnstile/internal/resolve"
	"turnstile/internal/taint"
	"turnstile/internal/vm"
)

// Runner is one executable version of an application: an interpreter with
// the (possibly instrumented) program loaded and its input source located.
type Runner struct {
	App    *corpus.App
	IP     *interp.Interp
	source *interp.Object
	// Mode describes the version ("original", "selective", "exhaustive").
	Mode string
}

// Process feeds the i-th workload message into the application.
func (r *Runner) Process(i int) error {
	return r.IP.Emit(r.source, "data", r.App.Message(i))
}

// PreparedApp bundles the three versions of §6.2.
type PreparedApp struct {
	App        *corpus.App
	Original   *Runner
	Selective  *Runner
	Exhaustive *Runner
	// Analysis is the dataflow-analysis result that drove selection.
	Analysis *taint.Result
	// SelectiveResult / ExhaustiveResult report instrumentation activity.
	SelectiveResult  *instrument.Result
	ExhaustiveResult *instrument.Result
}

// PrepareApp parses, analyzes, instruments and loads all three versions of
// a runnable corpus app — the full Turnstile workflow of Fig. 3.
func PrepareApp(app *corpus.App) (*PreparedApp, error) {
	return PrepareAppCached(app, nil)
}

// PrepareAppCached is PrepareApp with an optional pipeline cache: the
// parse and dataflow analysis are looked up (or computed once) in the
// cache, and the cached AST — which every downstream stage treats as
// read-only — is shared by the original version's interpreter instead of
// being re-parsed. Safe to call from multiple goroutines with one shared
// cache.
func PrepareAppCached(app *corpus.App, cache *PipelineCache) (*PreparedApp, error) {
	return PrepareAppOpt(app, cache, false)
}

// PrepareAppOpt is PrepareAppCached with an execution-mode switch:
// noResolve runs all three versions on the map-walk interpreter with the
// resolver fast paths disabled.
func PrepareAppOpt(app *corpus.App, cache *PipelineCache, noResolve bool) (*PreparedApp, error) {
	return PrepareAppMode(app, cache, ExecMode{NoResolve: noResolve})
}

// PrepareAppMode is the fully mode-aware preparation entry point: the
// pipeline cache is keyed by the execution mode, all three versions run
// on the selected engine, and in VM mode the original version reuses the
// cache's compiled bytecode module.
func PrepareAppMode(app *corpus.App, cache *PipelineCache, execMode ExecMode) (*PreparedApp, error) {
	if !app.Runnable {
		return nil, fmt.Errorf("harness: app %s is not runnable", app.Name)
	}
	file := app.Name + ".js"
	prog, analysis, mod, err := analyzedApp(cache, file, app.Source, taint.DefaultOptions(), execMode)
	if err != nil {
		return nil, err
	}

	prep := &PreparedApp{App: app, Analysis: analysis}

	// original: no tracker, no instrumentation
	orig, err := loadRunner(app, "original", prog, mod, false, execMode)
	if err != nil {
		return nil, fmt.Errorf("original version: %w", err)
	}
	prep.Original = orig

	// helper building an instrumented version
	build := func(mode instrument.Mode, sel instrument.Selection) (*Runner, *instrument.Result, error) {
		ip := interp.New()
		ip.NoResolve = execMode.NoResolve
		ip.NoVM = execMode.NoVM
		pol, err := policy.ParseJSON([]byte(app.PolicyJSON), ip.CompileLabelFunc)
		if err != nil {
			return nil, nil, fmt.Errorf("policy: %w", err)
		}
		res, err := instrument.Instrument(prog, instrument.Options{
			Mode:       mode,
			Selection:  sel,
			Injections: pol.Injections,
			File:       file,
		})
		if err != nil {
			return nil, nil, err
		}
		src := printer.Print(res.Program)
		inst, err := parser.Parse(file, src)
		if err != nil {
			return nil, nil, fmt.Errorf("instrumented output does not re-parse: %w", err)
		}
		if !execMode.NoResolve {
			resolve.Resolve(inst)
		}
		tr := ip.InstallTracker(pol)
		tr.Enforce = false // audit mode for performance runs (§6.2)
		if err := ip.Run(inst); err != nil {
			return nil, nil, fmt.Errorf("running instrumented version: %w", err)
		}
		source, ok := ip.Source(app.SourceName)
		if !ok {
			return nil, nil, fmt.Errorf("source %q not registered (have %v)", app.SourceName, ip.SourceNames())
		}
		return &Runner{App: app, IP: ip, source: source, Mode: mode.String()}, res, nil
	}

	sel := instrument.Selection(analysis.SelectionFor(file))
	if prep.Selective, prep.SelectiveResult, err = build(instrument.Selective, sel); err != nil {
		return nil, fmt.Errorf("selective version: %w", err)
	}
	if prep.Exhaustive, prep.ExhaustiveResult, err = build(instrument.Exhaustive, nil); err != nil {
		return nil, fmt.Errorf("exhaustive version: %w", err)
	}
	return prep, nil
}

// loadRunner loads an uninstrumented version from an already-parsed (and
// possibly cache-shared) program; mod, when non-nil, is the cache-shared
// compiled bytecode for prog.
func loadRunner(app *corpus.App, mode string, prog *ast.Program, mod *vm.Module, withTracker bool, execMode ExecMode) (*Runner, error) {
	ip := interp.New()
	ip.NoResolve = execMode.NoResolve
	ip.NoVM = execMode.NoVM
	if mod != nil {
		ip.RegisterCode(prog, mod)
	}
	if withTracker {
		pol, err := policy.ParseJSON([]byte(app.PolicyJSON), ip.CompileLabelFunc)
		if err != nil {
			return nil, err
		}
		ip.InstallTracker(pol)
	}
	if err := ip.Run(prog); err != nil {
		return nil, err
	}
	source, ok := ip.Source(app.SourceName)
	if !ok {
		return nil, fmt.Errorf("source %q not registered (have %v)", app.SourceName, ip.SourceNames())
	}
	return &Runner{App: app, IP: ip, source: source, Mode: mode}, nil
}
