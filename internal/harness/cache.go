package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"turnstile/internal/ast"
	"turnstile/internal/baseline"
	"turnstile/internal/parser"
	"turnstile/internal/resolve"
	"turnstile/internal/taint"
)

// PipelineCache memoizes the front half of the experiment pipeline per
// application: the parsed AST and the dataflow-analysis result, keyed by a
// hash of the source text (plus the analysis options), with the baseline
// analyzer's result cached alongside for E1 reruns. Repeated experiment
// runs — warm RunE1With calls, the three-version PrepareApp, E2 sweeps over
// the same corpus — skip re-parsing and re-analysis entirely.
//
// Entries are immutable once computed: every consumer treats the cached
// *ast.Program and *taint.Result as read-only (the instrumentor builds a
// fresh AST, the interpreter never writes AST nodes), which is what makes
// sharing them across worker goroutines safe. Concurrent requests for the
// same key are collapsed singleflight-style: one goroutine computes, the
// rest wait on the entry's sync.Once.
//
// Timing caveat: a cache hit returns the *originally measured* analysis
// Duration, so warm-run E1 timing lines reflect the cold-run cost rather
// than the (near-zero) lookup cost. The deterministic detection tables are
// unaffected.
type PipelineCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	once     sync.Once
	prog     *ast.Program
	analysis *taint.Result
	err      error

	// the baseline result is only needed by E1, so it is computed lazily
	// under its own once.
	baseOnce sync.Once
	base     *baseline.Result
}

// NewCache creates an empty pipeline cache.
func NewCache() *PipelineCache {
	return &PipelineCache{entries: make(map[string]*cacheEntry)}
}

// CacheStats reports cache activity.
type CacheStats struct {
	Entries int
	Hits    int
	Misses  int
}

// Stats returns a snapshot of the cache counters.
func (c *PipelineCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}

// cacheKey hashes the identity of one pipeline run: file name, source
// text, and the analysis configuration.
func cacheKey(file, source string, opts taint.Options) string {
	h := sha256.New()
	h.Write([]byte(file))
	h.Write([]byte{0})
	h.Write([]byte(source))
	h.Write([]byte{0})
	fmt.Fprintf(h, "%+v", opts)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *PipelineCache) entry(file, source string, opts taint.Options) *cacheEntry {
	key := cacheKey(file, source, opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	return e
}

func (e *cacheEntry) analyze(file, source string, opts taint.Options) (*ast.Program, *taint.Result, error) {
	e.once.Do(func() {
		prog, err := parser.Parse(file, source)
		if err != nil {
			e.err = err
			return
		}
		// annotate before publication: the entry stays immutable afterwards.
		// Annotations are inert on interpreters running with NoResolve, so
		// one cached program serves both execution modes.
		resolve.Resolve(prog)
		e.prog = prog
		e.analysis = taint.Analyze([]taint.File{{Name: file, Prog: prog}}, opts)
	})
	return e.prog, e.analysis, e.err
}

// Analyzed returns the parsed AST and dataflow analysis for one source
// file, computing them on first use. The returned values are shared and
// must be treated as read-only.
func (c *PipelineCache) Analyzed(file, source string, opts taint.Options) (*ast.Program, *taint.Result, error) {
	return c.entry(file, source, opts).analyze(file, source, opts)
}

// Baseline returns the CodeQL-equivalent baseline result for one source
// file, computing it (and the parse, if needed) on first use.
func (c *PipelineCache) Baseline(file, source string, opts taint.Options) (*baseline.Result, error) {
	e := c.entry(file, source, opts)
	if _, _, err := e.analyze(file, source, opts); err != nil {
		return nil, err
	}
	e.baseOnce.Do(func() {
		e.base = baseline.Analyze([]taint.File{{Name: file, Prog: e.prog}})
	})
	return e.base, nil
}

// analyzedApp resolves one corpus app through the cache, or directly when
// cache is nil.
func analyzedApp(cache *PipelineCache, file, source string, opts taint.Options) (*ast.Program, *taint.Result, error) {
	if cache != nil {
		return cache.Analyzed(file, source, opts)
	}
	prog, err := parser.Parse(file, source)
	if err != nil {
		return nil, nil, err
	}
	resolve.Resolve(prog)
	return prog, taint.Analyze([]taint.File{{Name: file, Prog: prog}}, opts), nil
}
