package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"turnstile/internal/ast"
	"turnstile/internal/baseline"
	"turnstile/internal/parser"
	"turnstile/internal/resolve"
	"turnstile/internal/taint"
	"turnstile/internal/vm"
)

// ExecMode identifies the execution engine a pipeline artifact is
// prepared for. It is part of the cache key: a compiled bytecode module
// must never be served to a -novm (tree-walker) or -noresolve (map-walk)
// run, mirroring the policy-aliasing keying fix — aliasing execution
// modes onto one entry is how a differential harness silently stops
// being differential.
type ExecMode struct {
	NoResolve bool
	NoVM      bool
}

func (m ExecMode) String() string {
	switch {
	case m.NoResolve:
		return "noresolve"
	case m.NoVM:
		return "walker"
	default:
		return "vm"
	}
}

// PipelineCache memoizes the front half of the experiment pipeline per
// application: the parsed AST and the dataflow-analysis result, keyed by a
// hash of the source text (plus the analysis options), with the baseline
// analyzer's result cached alongside for E1 reruns. Repeated experiment
// runs — warm RunE1With calls, the three-version PrepareApp, E2 sweeps over
// the same corpus — skip re-parsing and re-analysis entirely.
//
// Entries are immutable once computed: every consumer treats the cached
// *ast.Program and *taint.Result as read-only (the instrumentor builds a
// fresh AST, the interpreter never writes AST nodes), which is what makes
// sharing them across worker goroutines safe. Concurrent requests for the
// same key are collapsed singleflight-style: one goroutine computes, the
// rest wait on the entry's sync.Once.
//
// Timing caveat: a cache hit returns the *originally measured* analysis
// Duration, so warm-run E1 timing lines reflect the cold-run cost rather
// than the (near-zero) lookup cost. The deterministic detection tables are
// unaffected.
type PipelineCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	once     sync.Once
	prog     *ast.Program
	analysis *taint.Result
	mod      *vm.Module // compiled bytecode; only for ExecMode vm entries
	err      error

	// the baseline result is only needed by E1, so it is computed lazily
	// under its own once.
	baseOnce sync.Once
	base     *baseline.Result
}

// NewCache creates an empty pipeline cache.
func NewCache() *PipelineCache {
	return &PipelineCache{entries: make(map[string]*cacheEntry)}
}

// CacheStats reports cache activity.
type CacheStats struct {
	Entries int
	Hits    int
	Misses  int
}

// Stats returns a snapshot of the cache counters.
func (c *PipelineCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}

// cacheKey hashes the identity of one pipeline run: file name, source
// text, the analysis configuration, and the execution mode the artifact
// is prepared for.
func cacheKey(file, source string, opts taint.Options, mode ExecMode) string {
	h := sha256.New()
	h.Write([]byte(file))
	h.Write([]byte{0})
	h.Write([]byte(source))
	h.Write([]byte{0})
	h.Write([]byte(mode.String()))
	h.Write([]byte{0})
	fmt.Fprintf(h, "%+v", opts)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *PipelineCache) entry(file, source string, opts taint.Options, mode ExecMode) *cacheEntry {
	key := cacheKey(file, source, opts, mode)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	return e
}

func (e *cacheEntry) analyze(file, source string, opts taint.Options, mode ExecMode) (*ast.Program, *taint.Result, error) {
	e.once.Do(func() {
		prog, err := parser.Parse(file, source)
		if err != nil {
			e.err = err
			return
		}
		// annotate before publication: the entry stays immutable afterwards.
		// Annotations are inert on interpreters running with NoResolve, and
		// entries are keyed by execution mode, so no mode ever observes an
		// artifact prepared for another.
		resolve.Resolve(prog)
		e.prog = prog
		e.analysis = taint.Analyze([]taint.File{{Name: file, Prog: prog}}, opts)
		if !mode.NoResolve && !mode.NoVM {
			// VM entries carry the compiled bytecode so every worker sharing
			// the cache shares one compile of the program
			e.mod = vm.Compile(prog)
		}
	})
	return e.prog, e.analysis, e.err
}

// Analyzed returns the parsed AST and dataflow analysis for one source
// file, computing them on first use. The returned values are shared and
// must be treated as read-only. The entry is keyed for the default (VM)
// execution mode; use AnalyzedMode for the tree-walk or map-walk engines.
func (c *PipelineCache) Analyzed(file, source string, opts taint.Options) (*ast.Program, *taint.Result, error) {
	prog, analysis, _, err := c.AnalyzedMode(file, source, opts, ExecMode{})
	return prog, analysis, err
}

// AnalyzedMode is Analyzed keyed by execution mode; for the VM mode the
// compiled bytecode module for the cached program is returned alongside
// (nil in the other modes — a -novm run must never receive a compiled
// artifact).
func (c *PipelineCache) AnalyzedMode(file, source string, opts taint.Options, mode ExecMode) (*ast.Program, *taint.Result, *vm.Module, error) {
	e := c.entry(file, source, opts, mode)
	prog, analysis, err := e.analyze(file, source, opts, mode)
	return prog, analysis, e.mod, err
}

// Baseline returns the CodeQL-equivalent baseline result for one source
// file, computing it (and the parse, if needed) on first use.
func (c *PipelineCache) Baseline(file, source string, opts taint.Options) (*baseline.Result, error) {
	e := c.entry(file, source, opts, ExecMode{})
	if _, _, err := e.analyze(file, source, opts, ExecMode{}); err != nil {
		return nil, err
	}
	e.baseOnce.Do(func() {
		e.base = baseline.Analyze([]taint.File{{Name: file, Prog: e.prog}})
	})
	return e.base, nil
}

// analyzedApp resolves one corpus app through the cache, or directly when
// cache is nil.
func analyzedApp(cache *PipelineCache, file, source string, opts taint.Options, mode ExecMode) (*ast.Program, *taint.Result, *vm.Module, error) {
	if cache != nil {
		return cache.AnalyzedMode(file, source, opts, mode)
	}
	prog, err := parser.Parse(file, source)
	if err != nil {
		return nil, nil, nil, err
	}
	resolve.Resolve(prog)
	return prog, taint.Analyze([]taint.File{{Name: file, Prog: prog}}, opts), nil, nil
}
