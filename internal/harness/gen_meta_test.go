package harness

import (
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/core"
	"turnstile/internal/corpus"
	"turnstile/internal/dift"
	"turnstile/internal/faults"
	"turnstile/internal/guard"
	"turnstile/internal/instrument"
	"turnstile/internal/interp"
)

// genValue renders a written value canonically: tracker boxes are
// unwrapped recursively and containers print structurally, so a digest
// never depends on boxing strategy, heap addresses or ref IDs (exhaustive
// instrumentation boxes property values that selective leaves raw).
func genValue(v any, depth int) string {
	if depth > 8 {
		return "…"
	}
	switch u := dift.Unwrap(v).(type) {
	case *interp.Object:
		var b strings.Builder
		b.WriteString("{")
		for i, k := range u.Keys() {
			if i > 0 {
				b.WriteString(", ")
			}
			val, _ := u.Get(k)
			fmt.Fprintf(&b, "%s: %s", k, genValue(val, depth+1))
		}
		b.WriteString("}")
		return b.String()
	case *interp.Array:
		parts := make([]string, len(u.Elems))
		for i, el := range u.Elems {
			parts[i] = genValue(el, depth+1)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return fmt.Sprintf("%v", u)
	}
}

// The metamorphic battery: every generated stratum, at many seeds, is run
// under pairs of configurations that must be observably equivalent —
// slot-env vs map-walk interpretation, flat vs mirrored-CNF policies,
// selective vs exhaustive instrumentation transparency, chaos replay
// under a shared fault schedule, and fail-closed crash agreement. The
// generator gives these relations breadth the hand-written corpora cannot:
// every (stratum, seed) coordinate is a fresh application.

// metaSeeds is the per-stratum seed sweep; with all strata this comfortably
// exceeds the 5-strata × 10-seeds floor the battery promises.
const metaSeeds = 10

// metaApps enumerates the battery's population: every stratum at each of
// metaSeeds derived seeds, with sizes spread by the seed itself.
func metaApps(t *testing.T) []*corpus.GenApp {
	t.Helper()
	var apps []*corpus.GenApp
	for _, stratum := range corpus.GenStratumNames() {
		for s := 0; s < metaSeeds; s++ {
			seed := uint64(0xC0FFEE)*uint64(s+1) + 7
			app, err := corpus.Generate(stratum, seed, s)
			if err != nil {
				t.Fatal(err)
			}
			if err := app.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			apps = append(apps, app)
		}
	}
	return apps
}

// genVariant is one deployment configuration of a generated app.
type genVariant struct {
	mode       instrument.Mode
	noResolve  bool
	noVM       bool
	policy     string // empty selects ga.Policy
	schedule   *faults.Schedule
	limits     *guard.Limits
	failClosed bool
	enforce    bool
}

// genRun deploys a generated app under one variant, pumps its schedule,
// and renders the observable record. labelFree strips label text from the
// violation lines (used by the flat≡mirror relation, where the two runs
// name different labels by construction). Deploy errors become part of the
// record — equivalence relations must agree on failures too.
func genRun(ga *corpus.GenApp, v genVariant, labelFree bool) string {
	copts := core.DefaultOptions()
	copts.Mode = v.mode
	copts.ImplicitFlows = true
	copts.Enforce = v.enforce
	copts.NoResolve = v.noResolve
	copts.NoVM = v.noVM
	copts.Faults = v.schedule
	copts.Guard = v.limits
	copts.FailClosed = v.failClosed
	policy := v.policy
	if policy == "" {
		policy = ga.Policy
	}
	var b strings.Builder
	app, err := core.Manage(ga.Files, policy, copts)
	if err != nil {
		fmt.Fprintf(&b, "deploy error: %s\n", genScrub(firstLine(err.Error()), labelFree))
		return b.String()
	}
	for i := 0; i < ga.Messages && len(ga.Sources) > 0; i++ {
		if err := app.Emit(ga.Sources[i%len(ga.Sources)], ga.Event, ga.Payload(i)); err != nil {
			fmt.Fprintf(&b, "msg %d: %s\n", i, genScrub(firstLine(err.Error()), labelFree))
		}
	}
	for _, w := range app.Writes() {
		fmt.Fprintf(&b, "write: %s.%s %s %s\n", w.Module, w.Op, w.Target, genValue(w.Value, 0))
	}
	if app.IP.Faults != nil {
		b.WriteString("faults:\n")
		b.WriteString(app.IP.Faults.TraceString())
	}
	for _, viol := range app.Violations() {
		if labelFree {
			fmt.Fprintf(&b, "violation: %s %s\n", viol.Site, viol.Op)
		} else {
			fmt.Fprintf(&b, "violation: %v\n", viol.Error())
		}
	}
	if !labelFree {
		fmt.Fprintf(&b, "stats: %+v\n", app.Tracker.Stats())
	}
	return b.String()
}

// genScrub canonicalizes an error line for label-free digests: enforcement
// errors spell out label sets, which legitimately differ between a flat
// policy and its mirror.
func genScrub(line string, labelFree bool) string {
	if !labelFree {
		return line
	}
	if i := strings.Index(line, "PrivacyViolation"); i >= 0 {
		return line[:i] + "PrivacyViolation"
	}
	return line
}

// requireAgreement diffs two digests app-by-app.
func requireAgreement(t *testing.T, what string, apps []*corpus.GenApp, a, b func(*corpus.GenApp) string) {
	t.Helper()
	type pair struct{ left, right string }
	pairs, err := mapIndexed(len(apps), 0, func(i int) (pair, error) {
		return pair{a(apps[i]), b(apps[i])}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if p.left != p.right {
			t.Errorf("%s: %s (stratum %s, seed %d) diverged:\n-- left --\n%s\n-- right --\n%s",
				what, apps[i].Name, apps[i].Stratum, apps[i].Seed,
				firstDiffContext(p.left, p.right), firstDiffContext(p.right, p.left))
		}
	}
}

// TestGenMetamorphicSlotMap: the slot-env fast path and the -noresolve
// map walk must be observably identical on every generated app — writes,
// violations with full label text, and tracker statistics.
func TestGenMetamorphicSlotMap(t *testing.T) {
	apps := metaApps(t)
	base := genVariant{mode: instrument.Exhaustive}
	requireAgreement(t, "slot≡map", apps,
		func(ga *corpus.GenApp) string { return genRun(ga, base, false) },
		func(ga *corpus.GenApp) string {
			v := base
			v.noResolve = true
			return genRun(ga, v, false)
		})
}

// TestGenMetamorphicVMWalker: the bytecode VM and the -novm tree-walker
// must be observably identical on every generated app, at every stratum
// and seed — writes, violations with full label text, and tracker
// statistics. This is the generator-breadth arm of the VM differential
// gates (the hand-written corpus arm lives in vm_diff_test.go).
func TestGenMetamorphicVMWalker(t *testing.T) {
	apps := metaApps(t)
	base := genVariant{mode: instrument.Exhaustive}
	requireAgreement(t, "vm≡walker", apps,
		func(ga *corpus.GenApp) string { return genRun(ga, base, false) },
		func(ga *corpus.GenApp) string {
			v := base
			v.noVM = true
			return genRun(ga, v, false)
		})
}

// TestGenMetamorphicVMCrashAgreement: under a tight guard budget with the
// tracker fail-closed and enforcement on, the VM and the tree-walker must
// agree on the entire outcome — which budget error (if any) kills the
// app, at which site, and what was written before it died. This is the
// strongest parity claim the VM makes: identical step-charge ordering,
// not just identical results.
func TestGenMetamorphicVMCrashAgreement(t *testing.T) {
	apps := metaApps(t)
	lim := guard.Limits{Fuel: 60_000, MaxDepth: 64, MaxAlloc: 1 << 16}
	base := genVariant{mode: instrument.Exhaustive, limits: &lim, failClosed: true, enforce: true}
	requireAgreement(t, "crash vm≡walker", apps,
		func(ga *corpus.GenApp) string { return genRun(ga, base, false) },
		func(ga *corpus.GenApp) string {
			v := base
			v.noVM = true
			return genRun(ga, v, false)
		})
}

// TestGenMetamorphicMirrorCNF: replacing the flat policy with its
// isomorphic mirrored-clause copy must not change any flow decision: same
// writes, same message errors, same violation sites and ops.
func TestGenMetamorphicMirrorCNF(t *testing.T) {
	apps := metaApps(t)
	base := genVariant{mode: instrument.Exhaustive}
	requireAgreement(t, "flat≡mirror", apps,
		func(ga *corpus.GenApp) string { return genRun(ga, base, true) },
		func(ga *corpus.GenApp) string {
			v := base
			v.policy = ga.MirrorPolicy
			return genRun(ga, v, true)
		})
}

// TestGenMetamorphicTransparency: instrumentation must not change what the
// application does — selective and exhaustive deployments must produce the
// same sink writes and message errors (violation records legitimately
// differ: selective instrumentation checks fewer sites by design, which is
// the paper's whole trade-off).
func TestGenMetamorphicTransparency(t *testing.T) {
	apps := metaApps(t)
	digest := func(ga *corpus.GenApp, mode instrument.Mode) string {
		full := genRun(ga, genVariant{mode: mode}, false)
		var b strings.Builder
		for _, line := range strings.Split(full, "\n") {
			if strings.HasPrefix(line, "violation:") || strings.HasPrefix(line, "stats:") {
				continue
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
		return b.String()
	}
	requireAgreement(t, "selective≡exhaustive", apps,
		func(ga *corpus.GenApp) string { return digest(ga, instrument.Selective) },
		func(ga *corpus.GenApp) string { return digest(ga, instrument.Exhaustive) })
}

// TestGenMetamorphicChaos: under one seeded fault schedule, selective and
// exhaustive deployments must agree on the complete failure-path account —
// the fault event trace, the sink trace, and the per-message errors.
func TestGenMetamorphicChaos(t *testing.T) {
	apps := metaApps(t)
	digest := func(ga *corpus.GenApp, mode instrument.Mode) string {
		sched := faults.Generate(int64(ga.Seed%1_000_003), ga.Name)
		full := genRun(ga, genVariant{mode: mode, schedule: sched}, false)
		var b strings.Builder
		for _, line := range strings.Split(full, "\n") {
			if strings.HasPrefix(line, "violation:") || strings.HasPrefix(line, "stats:") {
				continue
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
		return b.String()
	}
	requireAgreement(t, "chaos sel≡exh", apps,
		func(ga *corpus.GenApp) string { return digest(ga, instrument.Selective) },
		func(ga *corpus.GenApp) string { return digest(ga, instrument.Exhaustive) })
}

// TestGenMetamorphicCrashAgreement: under a tight guard budget with the
// tracker fail-closed and enforcement on, the slot and map interpreters
// must agree on the entire outcome — including which budget error (if
// any) kills the app and what was written before it died.
func TestGenMetamorphicCrashAgreement(t *testing.T) {
	apps := metaApps(t)
	lim := guard.Limits{Fuel: 60_000, MaxDepth: 64, MaxAlloc: 1 << 16}
	base := genVariant{mode: instrument.Exhaustive, limits: &lim, failClosed: true, enforce: true}
	requireAgreement(t, "crash slot≡map", apps,
		func(ga *corpus.GenApp) string { return genRun(ga, base, false) },
		func(ga *corpus.GenApp) string {
			v := base
			v.noResolve = true
			return genRun(ga, v, false)
		})
}
