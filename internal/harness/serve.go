package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"turnstile/internal/corpus"
	"turnstile/internal/serve"
	"turnstile/internal/telemetry"
	"turnstile/internal/workload"
)

// This file is the serve-daemon battery: a hostile tenant built from the
// crash and attack corpora, fleet construction, the solo-vs-mixed
// isolation gate, and the soak benchmark behind BENCH_serve.json.

// hostileSteps is the synthetic service cost of one hostile message. Each
// hostile message re-deploys and detonates an entire adversarial
// application, so its cost dwarfs a single well-behaved Emit; a fixed
// constant keeps the hostile tenant's queue dynamics deterministic (the
// crash pipeline returns no ManagedApp on the failure paths, so measured
// steps are not available there).
const hostileSteps = 120_000

// HostileTenantName is the reserved name of the adversarial tenant.
const HostileTenantName = "tenant-hostile"

// HostileDriver is a serve.Driver that alternates the PR-4 crash corpus
// and the PR-6 attack corpus: message 2k detonates crash app k mod 12
// under fail-closed budgets, message 2k+1 runs attack app k mod 10 in
// exhaustive audit mode. Every message deploys a fresh universe, so the
// tenant keeps attacking at full strength for the whole soak. The driver
// is deterministic: outcomes depend only on the message index.
type HostileDriver struct {
	log strings.Builder
}

// NewHostileDriver returns a fresh hostile tenant driver.
func NewHostileDriver() *HostileDriver { return &HostileDriver{} }

// Process detonates one adversarial app and classifies the wreckage.
func (d *HostileDriver) Process(i int, payload string) serve.Outcome {
	out := serve.Outcome{Steps: hostileSteps}
	if i%2 == 0 {
		apps := CrashApps()
		ca := apps[(i/2)%len(apps)]
		res, err := crashOne(ca, CrashOptions{})
		if err != nil {
			out.Kind, out.Detail = serve.OutcomeError, firstLine(err.Error())
		} else {
			out.Kind, out.Detail = crashOutcomeKind(res.Kind), res.Detail
		}
		fmt.Fprintf(&d.log, "msg %d crash %s kind=%s\n", i, ca.Name, out.Kind)
		return out
	}
	apps := corpus.AttackApps()
	aa := apps[(i/2)%len(apps)]
	res, err := attackOne(aa, AttackOptions{})
	switch {
	case err != nil:
		out.Kind, out.Detail = serve.OutcomeError, firstLine(err.Error())
	case res.Err != "":
		out.Kind, out.Detail = serve.OutcomeError, res.Err
	case res.Caught > 0:
		out.Kind = serve.OutcomeViolation
		out.Detail = fmt.Sprintf("%d flow(s) flagged", res.Caught)
	default:
		out.Kind = serve.OutcomeOK
	}
	fmt.Fprintf(&d.log, "msg %d attack %s kind=%s caught=%d\n", i, aa.Name, out.Kind, res.Caught)
	return out
}

// crashOutcomeKind folds the crash taxonomy (fuel/depth/alloc/deadline,
// pipeline stages, violation, throw, runtime, none) onto serve's five
// outcome kinds.
func crashOutcomeKind(kind string) serve.OutcomeKind {
	switch kind {
	case "none":
		return serve.OutcomeOK
	case "violation":
		return serve.OutcomeViolation
	case "throw":
		return serve.OutcomeThrow
	case "runtime", "untyped":
		return serve.OutcomeError
	default: // budget kinds and pipeline stages: contained resource kills
		return serve.OutcomeBudget
	}
}

// Reload is accepted and ignored: the hostile tenant has no policy worth
// swapping, and a reload must never be a way to crash the daemon.
func (d *HostileDriver) Reload(policyJSON string) error { return nil }

// Fingerprint returns the deterministic detonation log.
func (d *HostileDriver) Fingerprint() string { return d.log.String() }

// ServeFleetOptions configures fleet construction for the battery and the
// soak.
type ServeFleetOptions struct {
	// Tenants is the number of well-behaved tenants (corpus apps,
	// round-robin).
	Tenants int
	// Messages is the arrival-trace length per tenant.
	Messages int
	// Seed drives every tenant's arrival trace (pure function of
	// (seed, tenant name)).
	Seed int64
	// Hostile prepends the adversarial tenant at index 0.
	Hostile bool
	// GenTenants appends tenants running seeded-generator apps (the
	// pump-driven strata, deployed in exhaustive audit mode) after the
	// demo tenants, so the soak exercises the generated flow families
	// under daemon quotas and guard epochs.
	GenTenants int
	// GenSeed is the generated-tenant corpus seed.
	GenSeed uint64
	// MaxGap is the maximum inter-arrival gap in ticks; 0 selects 60.
	MaxGap int64
	// Metrics, when non-nil, receives every tenant's drain-time counter
	// flush.
	Metrics *telemetry.Metrics
}

// BuildServeFleet constructs a fresh fleet: n well-behaved demo tenants,
// optionally with the hostile tenant prepended. Every call builds new
// driver universes, so fleets are single-use (a Driver is stateful).
func BuildServeFleet(opts ServeFleetOptions) ([]serve.TenantConfig, error) {
	if opts.MaxGap == 0 {
		opts.MaxGap = 60
	}
	tenants, err := serve.DemoFleet(opts.Tenants, opts.Messages, opts.Seed, serve.DefaultQuota(), opts.MaxGap)
	if err != nil {
		return nil, err
	}
	for i := range tenants {
		tenants[i].Metrics = opts.Metrics
	}
	if opts.GenTenants > 0 {
		gen, err := genServeTenants(opts)
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, gen...)
	}
	if opts.Hostile {
		// the hostile tenant gets a deeper queue with a tighter lag bound:
		// admission lets its burst in, then shedding dead-letters the
		// laggards — so the soak exercises both pressure valves
		hostile := serve.TenantConfig{
			Name:     HostileTenantName,
			Quota:    serve.Quota{MaxQueue: 16, MaxLagTicks: 400, DrainBudget: 4},
			Arrivals: workload.GenerateTrace(opts.Seed, HostileTenantName, opts.Messages, opts.MaxGap),
			Driver:   NewHostileDriver(),
			Metrics:  opts.Metrics,
		}
		tenants = append([]serve.TenantConfig{hostile}, tenants...)
	}
	return tenants, nil
}

// genServeTenants builds the generated-app tenants: the seeded corpus is
// walked in order and every app with a pump-driven source becomes one
// tenant (load-time-only strata have no per-message work for a daemon to
// drive). Each tenant deploys its full multi-file app in exhaustive audit
// mode under the default guard budget, and arrivals follow the same
// (seed, name)-keyed traces as the demo fleet.
func genServeTenants(opts ServeFleetOptions) ([]serve.TenantConfig, error) {
	var tenants []serve.TenantConfig
	// pump-driven strata are a fixed fraction of the taxonomy, so a few
	// over-generation rounds always cover the requested tenant count
	for n := 4 * opts.GenTenants; len(tenants) < opts.GenTenants; n *= 2 {
		apps, err := corpus.GenCorpus(n, opts.GenSeed)
		if err != nil {
			return nil, err
		}
		tenants = tenants[:0]
		for _, app := range apps {
			if len(app.Sources) == 0 {
				continue
			}
			if len(tenants) == opts.GenTenants {
				break
			}
			name := fmt.Sprintf("tenant-gen-%02d-%s", len(tenants), app.Stratum)
			lim := serve.DefaultTenantLimits()
			driver, err := serve.NewAppDriver(serve.AppConfig{
				Name:       name,
				Sources:    app.Files,
				PolicyJSON: app.Policy,
				SourceName: app.Sources[0],
				Event:      app.Event,
				Limits:     &lim,
				Exhaustive: true,
			})
			if err != nil {
				return nil, err
			}
			tenants = append(tenants, serve.TenantConfig{
				Name:     name,
				Quota:    serve.DefaultQuota(),
				Arrivals: workload.GenerateTrace(opts.Seed, name, opts.Messages, opts.MaxGap),
				Driver:   driver,
				Metrics:  opts.Metrics,
			})
		}
	}
	return tenants, nil
}

// ServeIsolationOptions configures the isolation battery.
type ServeIsolationOptions struct {
	Tenants  int
	Messages int
	Seed     int64
}

// ServeIsolationTenant is one well-behaved tenant's verdict: whether its
// complete observable account — fingerprint, every counter, the clock,
// the latency percentiles — was byte-identical between its solo run and
// its runs inside the hostile fleet at worker counts 1 and 8.
type ServeIsolationTenant struct {
	Name  string
	Match bool
	Diffs []string
}

// ServeIsolationResult aggregates the battery.
type ServeIsolationResult struct {
	Tenants []ServeIsolationTenant
	Passed  int
	// HostileDeterministic reports whether the hostile tenant itself
	// replayed byte-identically across worker counts.
	HostileDeterministic bool
}

// RunServeIsolation proves hostile-tenant isolation the strong way: each
// well-behaved tenant is run solo (alone on the daemon), then the full
// fleet with the hostile tenant at index 0 is run at parallel 1 and
// parallel 8, and every tenant's account must be byte-identical across
// all three runs. Any cross-tenant interference — latency contamination,
// mailbox starvation, breaker trips, tracker poisoning — would perturb a
// counter, the fingerprint, or a percentile and fail the comparison.
func RunServeIsolation(opts ServeIsolationOptions) (*ServeIsolationResult, error) {
	mixed1, err := runServeFleet(opts, 1)
	if err != nil {
		return nil, err
	}
	mixed8, err := runServeFleet(opts, 8)
	if err != nil {
		return nil, err
	}
	res := &ServeIsolationResult{
		HostileDeterministic: tenantAccount(mixed1.Tenants[0]) == tenantAccount(mixed8.Tenants[0]),
	}
	// mixed reports: hostile at 0, well-behaved tenants at 1..n
	for i := 1; i < len(mixed1.Tenants); i++ {
		solo, err := runServeSolo(opts, i-1)
		if err != nil {
			return nil, err
		}
		t := ServeIsolationTenant{Name: solo.Name, Match: true}
		for _, cmp := range []struct {
			run string
			rep *serve.TenantReport
		}{{"mixed@1", mixed1.Tenants[i]}, {"mixed@8", mixed8.Tenants[i]}} {
			if got, want := tenantAccount(cmp.rep), tenantAccount(solo); got != want {
				t.Match = false
				t.Diffs = append(t.Diffs, fmt.Sprintf("%s diverged from solo:\n--- solo ---\n%s--- %s ---\n%s", cmp.run, want, cmp.run, got))
			}
		}
		if t.Match {
			res.Passed++
		}
		res.Tenants = append(res.Tenants, t)
	}
	return res, nil
}

// runServeFleet builds and runs the full hostile fleet at one worker count.
func runServeFleet(opts ServeIsolationOptions, parallel int) (*serve.Report, error) {
	fleet, err := BuildServeFleet(ServeFleetOptions{
		Tenants: opts.Tenants, Messages: opts.Messages, Seed: opts.Seed, Hostile: true,
	})
	if err != nil {
		return nil, err
	}
	return (&serve.Server{Tenants: fleet}).Run(parallel)
}

// runServeSolo runs well-behaved tenant i alone on a fresh daemon.
func runServeSolo(opts ServeIsolationOptions, i int) (*serve.TenantReport, error) {
	fleet, err := BuildServeFleet(ServeFleetOptions{
		Tenants: opts.Tenants, Messages: opts.Messages, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return serve.RunTenant(fleet[i])
}

// tenantAccount renders a tenant's complete observable account as one
// comparable string: every counter, the clock, the latency percentiles,
// the DLQ, and the driver fingerprint.
func tenantAccount(r *serve.TenantReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "admitted=%d processed=%d denied=%d shed=%d drained=%d abandoned=%d reloads=%d\n",
		r.Admitted, r.Processed, r.Denied, r.Shed, r.Drained, r.Abandoned, r.Reloads)
	fmt.Fprintf(&b, "ok=%d viol=%d budget=%d throw=%d err=%d\n",
		r.OK, r.Violations, r.Budget, r.Throws, r.Errors)
	fmt.Fprintf(&b, "clock=%d p50=%d p99=%d\n", r.ClockEnd, r.LatencyP(0.50), r.LatencyP(0.99))
	for _, d := range r.DLQ {
		fmt.Fprintf(&b, "dlq idx=%d arrival=%d reason=%s payload=%s\n", d.Idx, d.Arrival, d.Reason, d.Payload)
	}
	b.WriteString(r.Fingerprint)
	return b.String()
}

// RenderServeIsolation formats the battery verdict; deterministic.
func RenderServeIsolation(res *ServeIsolationResult) string {
	var b strings.Builder
	b.WriteString("serve isolation battery (solo vs hostile fleet @ parallel 1 and 8)\n")
	for _, t := range res.Tenants {
		verdict := "identical"
		if !t.Match {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(&b, "  %-28s %s\n", t.Name, verdict)
		for _, d := range t.Diffs {
			fmt.Fprintf(&b, "    %s\n", strings.ReplaceAll(d, "\n", "\n    "))
		}
	}
	hostile := "deterministic across worker counts"
	if !res.HostileDeterministic {
		hostile = "NONDETERMINISTIC across worker counts"
	}
	fmt.Fprintf(&b, "  %-28s %s\n", HostileTenantName, hostile)
	fmt.Fprintf(&b, "verdict: %d/%d tenant(s) isolated\n", res.Passed, len(res.Tenants))
	return b.String()
}

// ServeSoakOptions configures the soak benchmark.
type ServeSoakOptions struct {
	Tenants  int
	Messages int
	Seed     int64
	Hostile  bool
	// GenTenants appends seeded-generator tenants (see ServeFleetOptions).
	GenTenants int
	GenSeed    uint64
	Parallel   int
}

// ServeSoakTenant is one tenant's soak row (the JSON artifact schema).
type ServeSoakTenant struct {
	Name       string  `json:"name"`
	Admitted   int     `json:"admitted"`
	Processed  int     `json:"processed"`
	Denied     int     `json:"denied"`
	Shed       int     `json:"shed"`
	Drained    int     `json:"drained"`
	Abandoned  int     `json:"abandoned"`
	Reloads    int     `json:"reloads"`
	OK         int     `json:"ok"`
	Violations int     `json:"violations"`
	Budget     int     `json:"budget"`
	Throws     int     `json:"throws"`
	Errors     int     `json:"errors"`
	P50Ticks   int64   `json:"p50_ticks"`
	P99Ticks   int64   `json:"p99_ticks"`
	ClockEnd   int64   `json:"clock_end_ticks"`
	MsgPerSec  float64 `json:"msg_per_sec"`
}

// ServeSoakResult is the soak summary: configuration, per-tenant rows and
// fleet totals. Everything is counted on the virtual clock, so the JSON
// is byte-identical for a fixed seed at any worker count.
type ServeSoakResult struct {
	Seed       int64             `json:"seed"`
	Tenants    int               `json:"tenants"`
	Messages   int               `json:"messages_per_tenant"`
	Hostile    bool              `json:"hostile_tenant"`
	GenTenants int               `json:"gen_tenants,omitempty"`
	GenSeed    uint64            `json:"gen_seed,omitempty"`
	Rows       []ServeSoakTenant `json:"per_tenant"`
	Processed  int               `json:"total_processed"`
	Denied     int               `json:"total_denied"`
	Shed       int               `json:"total_shed"`
	Violation  int               `json:"total_violations"`
	MsgPerSec  float64           `json:"sustained_msg_per_sec"`

	report *serve.Report
}

// RunServeSoak drives the fleet to completion and summarizes it.
func RunServeSoak(opts ServeSoakOptions) (*ServeSoakResult, error) {
	fleet, err := BuildServeFleet(ServeFleetOptions{
		Tenants: opts.Tenants, Messages: opts.Messages, Seed: opts.Seed, Hostile: opts.Hostile,
		GenTenants: opts.GenTenants, GenSeed: opts.GenSeed,
	})
	if err != nil {
		return nil, err
	}
	rep, err := (&serve.Server{Tenants: fleet}).Run(opts.Parallel)
	if err != nil {
		return nil, err
	}
	res := &ServeSoakResult{
		Seed: opts.Seed, Tenants: opts.Tenants, Messages: opts.Messages, Hostile: opts.Hostile,
		GenTenants: opts.GenTenants, GenSeed: opts.GenSeed,
		report: rep,
	}
	var longest int64
	for _, t := range rep.Tenants {
		res.Rows = append(res.Rows, ServeSoakTenant{
			Name: t.Name, Admitted: t.Admitted, Processed: t.Processed, Denied: t.Denied,
			Shed: t.Shed, Drained: t.Drained, Abandoned: t.Abandoned, Reloads: t.Reloads,
			OK: t.OK, Violations: t.Violations, Budget: t.Budget, Throws: t.Throws, Errors: t.Errors,
			P50Ticks: t.LatencyP(0.50), P99Ticks: t.LatencyP(0.99), ClockEnd: t.ClockEnd,
			MsgPerSec: t.Throughput(),
		})
		res.Processed += t.Processed
		res.Denied += t.Denied
		res.Shed += t.Shed
		res.Violation += t.Violations
		if t.ClockEnd > longest {
			longest = t.ClockEnd
		}
	}
	if longest > 0 {
		res.MsgPerSec = float64(res.Processed) * 1000 / float64(longest)
	}
	return res, nil
}

// RenderServeSoak formats the soak report: the daemon's tenant table plus
// fleet totals. Deterministic for a fixed seed at any worker count.
func RenderServeSoak(res *ServeSoakResult) string {
	var b strings.Builder
	b.WriteString(res.report.Render())
	fmt.Fprintf(&b, "fleet: processed=%d denied=%d shed=%d violations=%d sustained=%.1f msg/s\n",
		res.Processed, res.Denied, res.Shed, res.Violation, res.MsgPerSec)
	return b.String()
}

// ExportServeSoakJSON serializes the soak summary (the BENCH_serve.json
// artifact).
func ExportServeSoakJSON(res *ServeSoakResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
