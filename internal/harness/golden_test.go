package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"turnstile/internal/corpus"
)

var updateGolden = flag.Bool("update", false, "rewrite the harness golden files")

// checkGolden compares rendered output against testdata/<name>.golden,
// rewriting the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/harness -run Golden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from golden file %s:\n--- got ---\n%s--- want ---\n%s", name, path, got, want)
	}
}

// TestGoldenTable2 pins the Table 2 rendering, which is fully
// deterministic from the synthetic GitHub index.
func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2", RenderTable2(RunTable2()))
}

// TestGoldenFigure10 pins the deterministic E1 detection table over the
// real corpus (counts only — no measured durations).
func TestGoldenFigure10(t *testing.T) {
	res, err := RunE1With(corpus.All(), E1Options{Parallel: 4, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure10", RenderFigure10(res))
}

// fixedE1Result builds a small synthetic E1 result with pinned durations
// so the full RenderE1 output (timing summary included) is reproducible.
func fixedE1Result() *E1Result {
	return &E1Result{
		Rows: []Figure10Row{
			{App: "modbus", Category: "turnstile-only", Manual: 13, Turnstile: 13, Baseline: 0,
				TurnstileDur: 2 * time.Millisecond, BaselineDur: 140 * time.Millisecond},
			{App: "smart-dashboard", Category: "both-found", Manual: 5, Turnstile: 2, Baseline: 5,
				TurnstileDur: time.Millisecond, BaselineDur: 60 * time.Millisecond},
		},
		ManualTotal: 18, TurnstileTotal: 15, BaselineTotal: 5,
		TurnstileMean: 1500 * time.Microsecond, TurnstileMax: 2 * time.Millisecond,
		BaselineMean: 100 * time.Millisecond, BaselineMax: 140 * time.Millisecond,
		Speedup:           66.7,
		AppsOnlyTurnstile: 1, AppsBothFound: 1,
	}
}

// TestGoldenE1Timing pins the full E1 rendering, timing lines included,
// over a fixed synthetic result.
func TestGoldenE1Timing(t *testing.T) {
	checkGolden(t, "e1_timing", RenderE1(fixedE1Result()))
}

// TestGoldenFigure11 pins the Fig. 11 band rendering over fixed points.
func TestGoldenFigure11(t *testing.T) {
	points := []Figure11Point{
		{Rate: 2, SelMin: 0.998, SelMedian: 1.002, SelMax: 1.010, ExhMin: 1.000, ExhMedian: 1.015, ExhMax: 1.090},
		{Rate: 30, SelMin: 1.001, SelMedian: 1.021, SelMax: 1.158, ExhMin: 1.004, ExhMedian: 1.214, ExhMax: 2.538},
		{Rate: 1000, SelMin: 1.003, SelMedian: 1.220, SelMax: 1.913, ExhMin: 1.080, ExhMedian: 2.630, ExhMax: 9.770},
	}
	checkGolden(t, "figure11", RenderFigure11(points))
}

// TestGoldenFigure12 pins the Fig. 12 per-app rendering over fixed rows.
func TestGoldenFigure12(t *testing.T) {
	rows := []Figure12Row{
		{App: "modbus", Sel30: 1.158, Exh30: 2.538, Sel250: 1.287, Exh250: 4.102},
		{App: "nlp.js", Sel30: 1.008, Exh30: 1.742, Sel250: 1.031, Exh250: 3.215},
		{App: "sensor-logger", Sel30: 1.002, Exh30: 1.031, Sel250: 1.006, Exh250: 1.084},
	}
	checkGolden(t, "figure12", RenderFigure12(rows))
}
