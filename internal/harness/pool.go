package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"turnstile/internal/guard"
)

// This file implements the bounded worker-pool scheduler behind the
// harness's parallel experiment paths (RunE1With, MeasureApps,
// parallel source loading in the CLIs). Work items are claimed from an
// atomic counter and results are written into index-addressed slots, so
// the output order — and therefore every rendered table and figure — is
// identical to a sequential run regardless of worker interleaving.

// DefaultParallelism is the worker count the CLIs use when -parallel is
// not given: one worker per available CPU.
func DefaultParallelism() int { return runtime.NumCPU() }

// clampWorkers normalizes a requested worker count against the number of
// work items. 0 means "pick for me" (GOMAXPROCS, the scheduler's actual
// concurrency ceiling).
func clampWorkers(parallel, n int) int {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel < 1 {
		parallel = 1
	}
	return parallel
}

// mapIndexed runs fn(i) for every i in [0, n) on up to parallel workers
// and returns the results in index order. With parallel <= 1 (or a single
// item) it degenerates to the plain sequential loop, failing fast on the
// first error exactly like the pre-parallel harness did. With more
// workers, a failure stops items beyond the lowest failing index from
// being claimed, while everything below it still runs — so the lowest
// failing index is always reached and the returned error is the same one
// a sequential run would have reported.
func mapIndexed[T any](n, parallel int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	// contain worker panics: an adversarial work item must surface as a
	// typed *guard.PipelineError from the pool, not crash the process (a
	// panic on a pool goroutine is unrecoverable for the whole test run)
	raw := fn
	fn = func(i int) (T, error) {
		var v T
		err := guard.Contain("worker", fmt.Sprintf("item %d", i), func() error {
			var e error
			v, e = raw(i)
			return e
		})
		return v, err
	}
	parallel = clampWorkers(parallel, n)
	if parallel == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var minFailed atomic.Int64 // lowest index that returned an error so far
	minFailed.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				// claims ascend, and minFailed only decreases: once this
				// worker's claim passes the failure bound, so will all its
				// later claims
				if i >= n || int64(i) > minFailed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					for {
						cur := minFailed.Load()
						if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on up to parallel workers,
// waiting for all of them. It is the error-only variant of the pool used
// by callers that fill their own index-addressed slices (for example the
// CLI's parallel source loader).
func ForEach(n, parallel int, fn func(i int) error) error {
	_, err := mapIndexed(n, parallel, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
