package harness

import (
	"sync"
	"testing"

	"turnstile/internal/corpus"
)

// Regression for the pipeline-cache aliasing bug: two apps prepared from
// the same shared cache used to receive policies whose rule/injection/CNF
// slices aliased the caller's (and each other's) backing arrays, so one
// app's tracker mutating label state could corrupt the other's. With the
// defensive copies in policy.New/SetCNF each prepared app owns its policy
// outright; running both concurrently under -race must stay clean.
func TestCachedAppsConcurrentLabelMutation(t *testing.T) {
	apps := corpus.Runnable(corpus.All())
	if len(apps) < 2 {
		t.Fatal("need at least two runnable apps")
	}
	cache := NewCache()

	// prepare the same two apps twice each from one shared cache: the
	// second preparation reuses the cached AST + analysis
	var preps []*PreparedApp
	for _, app := range []*corpus.App{apps[0], apps[1], apps[0], apps[1]} {
		p, err := PrepareAppOpt(app, cache, false)
		if err != nil {
			t.Fatal(err)
		}
		preps = append(preps, p)
	}

	var wg sync.WaitGroup
	for _, p := range preps {
		for _, r := range []*Runner{p.Selective, p.Exhaustive} {
			wg.Add(1)
			go func(r *Runner) {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					if err := r.Process(i); err != nil {
						t.Errorf("%s %s: msg %d: %v", r.App.Name, r.Mode, i, err)
						return
					}
				}
			}(r)
		}
	}
	wg.Wait()

	// same-app preparations must have ended in identical tracker states:
	// shared mutable policy state would have let the runs interfere
	for i, j := range map[int]int{0: 2, 1: 3} {
		a, b := preps[i].Exhaustive.IP.Tracker.Stats(), preps[j].Exhaustive.IP.Tracker.Stats()
		if a != b {
			t.Errorf("%s: cache-sharing preparations diverged: %+v vs %+v", preps[i].App.Name, a, b)
		}
	}
}
