package harness

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"turnstile/internal/workload"
)

// The paper's artifact compiles raw experiment output into
// exp-results-compiled.json, plot-area-data.csv (Fig. 11) and
// plot-bar-data.csv (Fig. 12). These exporters produce the same shapes so
// downstream plotting scripts can be pointed at this reproduction.

// CompiledResults is the JSON document aggregating one full E2 run.
type CompiledResults struct {
	Messages int                 `json:"messages"`
	Scale    float64             `json:"serviceScale"`
	Apps     []CompiledAppResult `json:"apps"`
}

// CompiledAppResult is one application's measured profile.
type CompiledAppResult struct {
	App             string             `json:"app"`
	OriginalTotalMs float64            `json:"originalTotalMs"`
	SelectiveTotal  float64            `json:"selectiveTotalMs"`
	ExhaustiveTotal float64            `json:"exhaustiveTotalMs"`
	RelSelective    map[string]float64 `json:"relSelective"`
	RelExhaustive   map[string]float64 `json:"relExhaustive"`
}

// ExportJSON renders measurements as the compiled-results document.
func ExportJSON(ms []AppMeasurement, rates []float64) ([]byte, error) {
	if rates == nil {
		rates = workload.Rates
	}
	out := CompiledResults{}
	if len(ms) > 0 {
		out.Messages = len(ms[0].Original)
		out.Scale = ms[0].Scale
	}
	for i := range ms {
		m := &ms[i]
		row := CompiledAppResult{
			App:             m.App,
			OriginalTotalMs: toMs(m.Original.Total()),
			SelectiveTotal:  toMs(m.Selective.Total()),
			ExhaustiveTotal: toMs(m.Exhaustive.Total()),
			RelSelective:    map[string]float64{},
			RelExhaustive:   map[string]float64{},
		}
		for _, hz := range rates {
			key := fmt.Sprintf("%gHz", hz)
			row.RelSelective[key] = m.RelSelective(hz)
			row.RelExhaustive[key] = m.RelExhaustive(hz)
		}
		out.Apps = append(out.Apps, row)
	}
	return json.MarshalIndent(out, "", "  ")
}

func toMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ExportAreaCSV renders the Fig. 11 band data (plot-area-data.csv):
// rate, selMin, selMedian, selMax, exhMin, exhMedian, exhMax.
func ExportAreaCSV(points []Figure11Point) string {
	var b strings.Builder
	b.WriteString("rateHz,selMin,selMedian,selMax,exhMin,exhMedian,exhMax\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%g,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			p.Rate, p.SelMin, p.SelMedian, p.SelMax, p.ExhMin, p.ExhMedian, p.ExhMax)
	}
	return b.String()
}

// ExportBarCSV renders the Fig. 12 per-app data (plot-bar-data.csv):
// app, sel30, exh30, sel250, exh250.
func ExportBarCSV(rows []Figure12Row) string {
	var b strings.Builder
	b.WriteString("app,sel30,exh30,sel250,exh250\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f\n", r.App, r.Sel30, r.Exh30, r.Sel250, r.Exh250)
	}
	return b.String()
}

// ExportFigure10CSV renders the E1 data (taint-analysis-compiled.csv):
// app, category, manual, turnstile, baseline, turnstileMs, baselineMs.
func ExportFigure10CSV(res *E1Result) string {
	var b strings.Builder
	b.WriteString("app,category,manual,turnstile,baseline,turnstileMs,baselineMs\n")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.3f,%.3f\n",
			r.App, r.Category, r.Manual, r.Turnstile, r.Baseline,
			toMs(r.TurnstileDur), toMs(r.BaselineDur))
	}
	return b.String()
}
