package harness

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/resolve"
)

// Interpreter microbenchmarks comparing the slot-indexed environment fast
// path against the map-walk fallback (the -noresolve escape hatch), and
// the bytecode VM against both. Each workload is one MiniJS program
// stressing a single interpreter dimension; the same parsed AST runs on
// every execution mode (annotations are inert under NoResolve), so any
// delta is attributable to the environment representation, the inline
// caches and the dispatch strategy alone.

// MicrobenchPrograms are the three workloads of the bench gate. The inner
// iteration counts are sized so one run takes a few milliseconds on the
// slot path — long enough to swamp interpreter start-up, short enough to
// repeat for a best-of measurement.
var MicrobenchPrograms = []struct {
	Name   string
	Source string
}{
	{
		// locals read/written in a tight loop: the resolver turns every
		// access into a (depth, slot) pair, so this is the pure env-lookup
		// benchmark behind the slot-speedup acceptance gate
		Name: "identifier-heavy",
		Source: `
function spin(n) {
  let a = 1, b = 2, c = 3, d = 4;
  let s = 0;
  for (let i = 0; i < n; i = i + 1) {
    s = s + a + b - c + d + i;
    a = b;
    b = c;
    c = d;
    d = (s % 7) + 1;
  }
  return s;
}
var out = 0;
for (let r = 0; r < 40; r = r + 1) {
  out = out + spin(400);
}
`,
	},
	{
		// function- and method-call dominated: exercises the per-call env
		// construction (this/arguments/param slots) and the call-site
		// method inline cache
		Name: "call-heavy",
		Source: `
function add(a, b) { return a + b; }
function mul(a, b) { return a * b; }
var counter = {
  n: 0,
  step: function (d) { this.n = this.n + d; return this.n; }
};
function work(n) {
  let s = 0;
  for (let i = 0; i < n; i = i + 1) {
    s = add(s, mul(i, 3));
    s = add(s, counter.step(1));
  }
  return s;
}
var out = 0;
for (let r = 0; r < 30; r = r + 1) {
  out = out + work(300);
}
`,
	},
	{
		// property read/write dominated: exercises the member-read inline
		// cache (own properties, stable receiver) and its write
		// invalidation path
		Name: "property-heavy",
		Source: `
var obj = { x: 1, y: 2, z: 3, total: 0 };
function work(n) {
  let s = 0;
  for (let i = 0; i < n; i = i + 1) {
    s = s + obj.x + obj.y + obj.z;
    obj.total = s;
    obj.x = (obj.x % 5) + 1;
  }
  return s;
}
var out = 0;
for (let r = 0; r < 30; r = r + 1) {
  out = out + work(400);
}
`,
	},
}

// MicrobenchResult is one workload's measurement on both execution modes.
type MicrobenchResult struct {
	Name string `json:"name"`
	// SlotNs / MapNs are best-of-repeats wall times for one full program
	// run on the resolved (slot) and -noresolve (map-walk) interpreters.
	SlotNs int64 `json:"slot_ns"`
	MapNs  int64 `json:"map_ns"`
	// Speedup is MapNs / SlotNs (>1 means the slot path is faster).
	Speedup float64 `json:"speedup"`
}

// MicrobenchReport aggregates a bench run into the committed
// BENCH_*.json shape.
type MicrobenchReport struct {
	Tool       string             `json:"tool"`
	Repeats    int                `json:"repeats"`
	Benchmarks []MicrobenchResult `json:"benchmarks"`
}

// RunMicrobench measures every workload on both tree-walking execution
// modes, best-of-repeats per mode. The VM is disabled on both sides: this
// report isolates the environment representation (slot vs map-walk) and is
// the committed BENCH_baseline.json; the VM comparison lives in
// RunVMMicrobench / BENCH_vm.json.
func RunMicrobench(repeats int) (*MicrobenchReport, error) {
	if repeats <= 0 {
		repeats = 5
	}
	rep := &MicrobenchReport{Tool: "turnstile-bench -bench", Repeats: repeats}
	for _, p := range MicrobenchPrograms {
		slot, err := benchProgram(p.Name, p.Source, false, true, repeats)
		if err != nil {
			return nil, err
		}
		mp, err := benchProgram(p.Name, p.Source, true, true, repeats)
		if err != nil {
			return nil, err
		}
		r := MicrobenchResult{Name: p.Name, SlotNs: slot.Nanoseconds(), MapNs: mp.Nanoseconds()}
		if r.SlotNs > 0 {
			r.Speedup = float64(r.MapNs) / float64(r.SlotNs)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	return rep, nil
}

// VMMicrobenchResult is one workload's measurement across the three
// execution modes: bytecode VM, slot-env tree-walker (-novm) and map-walk
// tree-walker (-noresolve).
type VMMicrobenchResult struct {
	Name   string `json:"name"`
	VMNs   int64  `json:"vm_ns"`
	SlotNs int64  `json:"slot_ns"`
	MapNs  int64  `json:"map_ns"`
	// SpeedupVsSlot is SlotNs / VMNs — the acceptance metric of the VM
	// perf gate (>1 means the VM beats the slot-env tree-walker).
	SpeedupVsSlot float64 `json:"speedup_vs_slot"`
	SpeedupVsMap  float64 `json:"speedup_vs_map"`
}

// VMMicrobenchReport aggregates a VM bench run into the committed
// BENCH_vm.json shape.
type VMMicrobenchReport struct {
	Tool       string               `json:"tool"`
	Repeats    int                  `json:"repeats"`
	Benchmarks []VMMicrobenchResult `json:"benchmarks"`
}

// RunVMMicrobench measures every workload on the bytecode VM and both
// tree-walking modes, best-of-repeats per mode.
func RunVMMicrobench(repeats int) (*VMMicrobenchReport, error) {
	if repeats <= 0 {
		repeats = 5
	}
	rep := &VMMicrobenchReport{Tool: "turnstile-bench -benchvm", Repeats: repeats}
	for _, p := range MicrobenchPrograms {
		vmT, err := benchProgram(p.Name, p.Source, false, false, repeats)
		if err != nil {
			return nil, err
		}
		slot, err := benchProgram(p.Name, p.Source, false, true, repeats)
		if err != nil {
			return nil, err
		}
		mp, err := benchProgram(p.Name, p.Source, true, true, repeats)
		if err != nil {
			return nil, err
		}
		r := VMMicrobenchResult{Name: p.Name, VMNs: vmT.Nanoseconds(), SlotNs: slot.Nanoseconds(), MapNs: mp.Nanoseconds()}
		if r.VMNs > 0 {
			r.SpeedupVsSlot = float64(r.SlotNs) / float64(r.VMNs)
			r.SpeedupVsMap = float64(r.MapNs) / float64(r.VMNs)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	return rep, nil
}

// benchProgram parses (and, unless noResolve, resolves) one workload and
// returns the best-of-repeats wall time of a full run on a fresh
// interpreter in the requested execution mode. The AST is shared across
// repeats — exactly how the pipeline cache shares programs — so parse
// cost is excluded; bytecode compilation happens once on the first VM
// repeat and is shared through the interpreter's program-module table
// only within a repeat (each repeat gets a fresh interpreter, so compile
// cost is included in every VM sample, biasing against the VM).
func benchProgram(name, src string, noResolve, noVM bool, repeats int) (time.Duration, error) {
	prog, err := parser.Parse(name+".js", src)
	if err != nil {
		return 0, fmt.Errorf("harness: microbench %s: %w", name, err)
	}
	if !noResolve {
		resolve.Resolve(prog)
	}
	best := time.Duration(0)
	for r := 0; r < repeats; r++ {
		ip := interp.New()
		ip.NoResolve = noResolve
		ip.NoVM = noVM
		start := time.Now()
		if err := ip.Run(prog); err != nil {
			return 0, fmt.Errorf("harness: microbench %s (noresolve=%v novm=%v): %w", name, noResolve, noVM, err)
		}
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// ExportMicrobenchJSON renders the report as the committed BENCH_*.json
// artifact (indented, trailing newline).
func ExportMicrobenchJSON(rep *MicrobenchReport) ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ExportVMMicrobenchJSON renders the VM report as the committed
// BENCH_vm.json artifact (indented, trailing newline).
func ExportVMMicrobenchJSON(rep *VMMicrobenchReport) ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// RenderMicrobench formats the bench table for the CLI. Wall times vary
// run to run, so unlike the experiment reports this output is NOT
// byte-deterministic.
func RenderMicrobench(rep *MicrobenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interpreter microbenchmarks: slot env vs map-walk env (best of %d)\n", rep.Repeats)
	fmt.Fprintf(&b, "%-18s %12s %12s %9s\n", "workload", "slot", "map-walk", "speedup")
	for _, r := range rep.Benchmarks {
		fmt.Fprintf(&b, "%-18s %12v %12v %8.2fx\n",
			r.Name, time.Duration(r.SlotNs).Round(time.Microsecond),
			time.Duration(r.MapNs).Round(time.Microsecond), r.Speedup)
	}
	return b.String()
}

// RenderVMMicrobench formats the VM bench table for the CLI. Like
// RenderMicrobench, it is NOT byte-deterministic.
func RenderVMMicrobench(rep *VMMicrobenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interpreter microbenchmarks: bytecode VM vs tree-walkers (best of %d)\n", rep.Repeats)
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %9s %9s\n", "workload", "vm", "slot", "map-walk", "vs slot", "vs map")
	for _, r := range rep.Benchmarks {
		fmt.Fprintf(&b, "%-18s %12v %12v %12v %8.2fx %8.2fx\n",
			r.Name, time.Duration(r.VMNs).Round(time.Microsecond),
			time.Duration(r.SlotNs).Round(time.Microsecond),
			time.Duration(r.MapNs).Round(time.Microsecond),
			r.SpeedupVsSlot, r.SpeedupVsMap)
	}
	return b.String()
}
