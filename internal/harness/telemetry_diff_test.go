package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/telemetry"
)

// Differential battery for the telemetry layer: attaching metrics or the
// tracer must not change anything the paper's equivalence argument relies
// on. For every runnable app, the sink traces and violation reports of the
// selective and exhaustive versions must be byte-identical with telemetry
// off, with metrics on, and with tracing on — sequentially and fanned
// across 8 workers (the -race run of scripts/verify.sh covers the
// concurrent case).

const diffMessages = 30

// telemetryConfig names one way of attaching (or not attaching) the layer.
type telemetryConfig struct {
	name    string
	metrics bool
	trace   bool
}

var telemetryConfigs = []telemetryConfig{
	{name: "off"},
	{name: "metrics", metrics: true},
	{name: "trace", metrics: true, trace: true},
}

// appObservation is everything a telemetry configuration must leave
// untouched, for the three versions of one app.
type appObservation struct {
	app string
	// keyed by version mode: "original", "selective", "exhaustive"
	sinkTraces map[string]string
	violations map[string]string
	msgErrors  map[string]string
}

// observeApp prepares a fresh instance of the app (interpreter state is
// mutated by the pump, so versions are never reused across configs) and
// records the observable outcome of each version under the given config.
func observeApp(app *corpus.App, cache *PipelineCache, cfg telemetryConfig) (*appObservation, error) {
	prep, err := PrepareAppCached(app, cache)
	if err != nil {
		return nil, err
	}
	obs := &appObservation{
		app:        app.Name,
		sinkTraces: make(map[string]string),
		violations: make(map[string]string),
		msgErrors:  make(map[string]string),
	}
	for _, r := range []*Runner{prep.Original, prep.Selective, prep.Exhaustive} {
		if cfg.metrics {
			m := telemetry.NewMetrics()
			var tr *telemetry.Tracer
			if cfg.trace {
				tr = telemetry.NewTracer(0, r.IP.Clock.Now)
			}
			r.IP.EnableTelemetry(m, tr)
		}
		var errs strings.Builder
		for i := 0; i < diffMessages; i++ {
			if err := r.Process(i); err != nil {
				fmt.Fprintf(&errs, "msg %d: %v\n", i, err)
			}
		}
		var sink strings.Builder
		for _, w := range r.IP.IO.Writes {
			fmt.Fprintf(&sink, "%s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
		}
		var viol strings.Builder
		if r.IP.Tracker != nil {
			for _, v := range r.IP.Tracker.Violations() {
				fmt.Fprintln(&viol, v.Error())
			}
		}
		obs.sinkTraces[r.Mode] = sink.String()
		obs.violations[r.Mode] = viol.String()
		obs.msgErrors[r.Mode] = errs.String()
	}
	return obs, nil
}

// diffObservations returns the first divergence between two observations of
// the same app, or "".
func diffObservations(base, got *appObservation) string {
	for _, mode := range []string{"original", "selective", "exhaustive"} {
		if base.sinkTraces[mode] != got.sinkTraces[mode] {
			return fmt.Sprintf("%s sink trace diverged:\n--- baseline\n%s--- got\n%s",
				mode, base.sinkTraces[mode], got.sinkTraces[mode])
		}
		if base.violations[mode] != got.violations[mode] {
			return fmt.Sprintf("%s violation report diverged:\n--- baseline\n%s--- got\n%s",
				mode, base.violations[mode], got.violations[mode])
		}
		if base.msgErrors[mode] != got.msgErrors[mode] {
			return fmt.Sprintf("%s message errors diverged:\n--- baseline\n%s--- got\n%s",
				mode, base.msgErrors[mode], got.msgErrors[mode])
		}
	}
	return ""
}

// TestTelemetryDifferentialCorpus replays the full runnable corpus under
// every telemetry configuration, sequentially and at parallel 8, and
// asserts each run is observation-identical to the telemetry-off
// sequential baseline.
func TestTelemetryDifferentialCorpus(t *testing.T) {
	apps := corpus.Runnable(corpus.All())
	if len(apps) == 0 {
		t.Fatal("no runnable apps in the corpus")
	}
	cache := NewCache()

	// sequential telemetry-off baseline
	baseline := make([]*appObservation, len(apps))
	for i, app := range apps {
		obs, err := observeApp(app, cache, telemetryConfigs[0])
		if err != nil {
			t.Fatalf("%s: baseline: %v", app.Name, err)
		}
		baseline[i] = obs
	}
	for _, obs := range baseline {
		if obs.sinkTraces["original"] == "" {
			t.Logf("note: %s produced no sink writes in %d messages", obs.app, diffMessages)
		}
	}

	for _, cfg := range telemetryConfigs {
		for _, parallel := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/parallel=%d", cfg.name, parallel), func(t *testing.T) {
				got, err := mapIndexed(len(apps), parallel, func(i int) (*appObservation, error) {
					return observeApp(apps[i], cache, cfg)
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if d := diffObservations(baseline[i], got[i]); d != "" {
						t.Errorf("%s under %s/parallel=%d: %s", apps[i].Name, cfg.name, parallel, d)
					}
				}
			})
		}
	}
}

// TestBreakdownDeterministicAcrossParallel asserts the -metrics output of
// turnstile-bench — the rendered breakdown AND the exported selective
// traces — is byte-identical between a sequential and an 8-worker run.
func TestBreakdownDeterministicAcrossParallel(t *testing.T) {
	apps := corpus.All()
	cache := NewCache()
	run := func(parallel int) *BreakdownResult {
		res, err := RunBreakdown(apps, BreakdownOptions{
			Messages: diffMessages, Parallel: parallel, Cache: cache,
			TraceCapacity: telemetry.DefaultTraceCapacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if a, b := RenderBreakdown(seq), RenderBreakdown(par); a != b {
		t.Errorf("rendered breakdown differs between parallel 1 and 8:\n--- parallel 1\n%s\n--- parallel 8\n%s", a, b)
	}
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		if !bytes.Equal(seq.Rows[i].SelectiveTrace, par.Rows[i].SelectiveTrace) {
			t.Errorf("%s: selective trace JSON differs between parallel 1 and 8", seq.Rows[i].App)
		}
	}
}
