package harness

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"turnstile/internal/corpus"
	"turnstile/internal/workload"
)

func fakeMeasurement(app string, orig, sel, exh time.Duration) AppMeasurement {
	mk := func(d time.Duration) workload.Service {
		s := make(workload.Service, 10)
		for i := range s {
			s[i] = d
		}
		return s
	}
	return AppMeasurement{App: app, Scale: 1,
		Original: mk(orig), Selective: mk(sel), Exhaustive: mk(exh)}
}

func TestExportJSON(t *testing.T) {
	ms := []AppMeasurement{
		fakeMeasurement("alpha", time.Millisecond, 1100*time.Microsecond, 2*time.Millisecond),
	}
	data, err := ExportJSON(ms, []float64{30, 1000})
	if err != nil {
		t.Fatal(err)
	}
	var doc CompiledResults
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Messages != 10 || len(doc.Apps) != 1 || doc.Apps[0].App != "alpha" {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Apps[0].RelExhaustive["1000Hz"] < 1.9 {
		t.Fatalf("rel = %+v", doc.Apps[0].RelExhaustive)
	}
}

func TestExportCSVs(t *testing.T) {
	ms := []AppMeasurement{
		fakeMeasurement("a", time.Millisecond, time.Millisecond, 3*time.Millisecond),
		fakeMeasurement("b", time.Millisecond, 2*time.Millisecond, 2*time.Millisecond),
	}
	points := Figure11(ms, []float64{30, 1000})
	area := ExportAreaCSV(points)
	if !strings.HasPrefix(area, "rateHz,") || strings.Count(area, "\n") != 3 {
		t.Fatalf("area csv:\n%s", area)
	}
	bar := ExportBarCSV(Figure12(ms))
	if !strings.Contains(bar, "a,") || !strings.Contains(bar, "b,") {
		t.Fatalf("bar csv:\n%s", bar)
	}
}

func TestExportFigure10CSV(t *testing.T) {
	res, err := RunE1(corpus.All()[:3])
	if err != nil {
		t.Fatal(err)
	}
	csv := ExportFigure10CSV(res)
	if strings.Count(csv, "\n") != 4 {
		t.Fatalf("csv:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "app,category,manual") {
		t.Fatal("header missing")
	}
}
