package harness

import (
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/parser"
	"turnstile/internal/printer"
	"turnstile/internal/workload"
)

// TestRealTimeStreamIntegration runs a prepared application under genuine
// wall-clock pacing (the paper's methodology) at a rate where pacing
// dominates, and confirms the elapsed time matches the schedule — the
// fidelity check for the virtual-time queue substitution.
func TestRealTimeStreamIntegration(t *testing.T) {
	app := corpus.ByName(corpus.All(), "sensor-logger")
	prep, err := PrepareApp(app)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	const hz = 500.0
	elapsed, err := workload.RealTimeStream(n, hz, prep.Selective.Process)
	if err != nil {
		t.Fatal(err)
	}
	floor := workload.CompletionTime(make(workload.Service, n), hz)
	if elapsed < floor {
		t.Fatalf("elapsed %v below pacing floor %v", elapsed, floor)
	}
	if elapsed > 5*floor {
		t.Fatalf("elapsed %v way over pacing floor %v", elapsed, floor)
	}
	// the app processed every message
	if writes := prep.Selective.IP.IO.WritesTo("fs"); len(writes) < n {
		t.Fatalf("writes = %d", len(writes))
	}
}

// TestInstrumentedCorpusRoundTrips prints and re-parses every corpus app
// plus both instrumented variants of every runnable app — a broad
// integration sweep over the printer/parser pair.
func TestInstrumentedCorpusRoundTrips(t *testing.T) {
	for _, app := range corpus.All() {
		if _, err := parser.Parse(app.Name+".js", app.Source); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
	}
	for _, app := range corpus.Runnable(corpus.All()) {
		prep, err := PrepareApp(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		// deep-check the instrumented trees still print deterministically
		for _, res := range []*PreparedApp{prep} {
			selSrc := printer.Print(res.SelectiveResult.Program)
			if _, err := parser.Parse(app.Name+".sel.js", selSrc); err != nil {
				t.Fatalf("%s selective: %v", app.Name, err)
			}
			exhSrc := printer.Print(res.ExhaustiveResult.Program)
			reparsed, err := parser.Parse(app.Name+".exh.js", exhSrc)
			if err != nil {
				t.Fatalf("%s exhaustive: %v", app.Name, err)
			}
			if printer.Print(reparsed) != exhSrc {
				t.Fatalf("%s: print not idempotent on instrumented tree", app.Name)
			}
		}
	}
}

// TestSinkTraceEquivalence verifies the non-invasiveness property across
// the whole runnable corpus: for every app, the original and both managed
// versions produce identical sink traces on the same workload.
func TestSinkTraceEquivalence(t *testing.T) {
	for _, app := range corpus.Runnable(corpus.All()) {
		prep, err := PrepareApp(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		const n = 6
		for i := 0; i < n; i++ {
			for _, r := range []*Runner{prep.Original, prep.Selective, prep.Exhaustive} {
				if err := r.Process(i); err != nil {
					t.Fatalf("%s %s msg %d: %v", app.Name, r.Mode, i, err)
				}
			}
		}
		orig := prep.Original.IP.IO.Writes
		for _, r := range []*Runner{prep.Selective, prep.Exhaustive} {
			got := r.IP.IO.Writes
			if len(got) != len(orig) {
				t.Fatalf("%s %s: %d writes vs %d", app.Name, r.Mode, len(got), len(orig))
			}
			for i := range orig {
				if got[i].Value != orig[i].Value || got[i].Target != orig[i].Target {
					t.Fatalf("%s %s write %d: %v vs %v", app.Name, r.Mode, i, got[i], orig[i])
				}
			}
		}
	}
}
