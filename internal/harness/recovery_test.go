package harness

import (
	"strings"
	"testing"
)

// TestRecoveryBatteryEveryBoundary sweeps every WAL record boundary of a
// small seeded fleet: kill each tenant after its k-th record, recover a
// fresh fleet on the surviving bytes at parallel 1 and 8, and require the
// resumed account byte-identical to the uninterrupted run. The corruption
// scenario rides along: a flipped byte must come back poisoned, sinkless,
// and stay poisoned on a second restart.
func TestRecoveryBatteryEveryBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery battery sweeps every WAL boundary; skipped in -short")
	}
	res, err := RunRecoveryBattery(RecoveryOptions{Tenants: 2, Messages: 8, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRecords < 10 {
		t.Fatalf("fleet WALs only %d records deep; the sweep proves little", res.MaxRecords)
	}
	if len(res.Boundaries) != res.MaxRecords {
		t.Fatalf("tested %d boundaries, want every one of %d", len(res.Boundaries), res.MaxRecords)
	}
	for _, m := range res.Mismatches {
		t.Errorf("recovery mismatch: %s", m)
	}
	c := res.Corruption
	if c == nil {
		t.Fatal("corruption scenario did not run")
	}
	if !c.Poisoned || !strings.Contains(c.Reason, "unverifiable") {
		t.Fatalf("corrupted tenant not poisoned: %+v", c)
	}
	if c.PostRestartSinks != 0 || c.OKOutcomes != 0 {
		t.Fatalf("corrupted tenant served after restart: sinks=%d ok=%d", c.PostRestartSinks, c.OKOutcomes)
	}
	if !c.SecondRestartPoisoned {
		t.Fatal("poison decision did not survive the second restart")
	}
	if !res.Passed() {
		t.Fatalf("battery verdict FAIL:\n%s", RenderRecovery(res))
	}
	render := RenderRecovery(res)
	if !strings.Contains(render, "verdict: PASS") || !strings.Contains(render, "post_restart_sinks=0") {
		t.Fatalf("render missing gate anchors:\n%s", render)
	}
}
