package harness

import (
	"strings"
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/faults"
)

// TestChaosEquivalenceAllApps extends the non-invasiveness check to the
// failure paths: every runnable app, original vs selective vs exhaustive,
// under the same seeded fault schedule.
func TestChaosEquivalenceAllApps(t *testing.T) {
	res, err := RunChaos(corpus.All(), ChaosOptions{Seed: 3, Messages: 8, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) == 0 {
		t.Fatal("no runnable apps")
	}
	for _, a := range res.Apps {
		if !a.Equivalent {
			t.Errorf("%s diverged under faults:\n%s", a.App, a.Mismatch)
		}
	}
	// the schedules must actually exercise failure paths, or the check is
	// vacuous
	var injected int
	for _, a := range res.Apps {
		injected += a.Stats.Failed + a.Stats.Dropped + a.Stats.Delayed
	}
	if injected == 0 {
		t.Fatal("no faults fired across the whole corpus")
	}
}

// TestChaosDeterministicAcrossParallel asserts the acceptance criterion:
// one -faultseed produces a byte-identical chaos report at any worker
// count, run after run.
func TestChaosDeterministicAcrossParallel(t *testing.T) {
	apps := corpus.Runnable(corpus.All())[:6]
	cache := NewCache()
	render := func(parallel int) string {
		res, err := RunChaos(apps, ChaosOptions{Seed: 11, Messages: 10, Parallel: parallel, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return RenderChaos(res)
	}
	seq := render(1)
	if par := render(4); par != seq {
		t.Fatalf("parallel run diverged:\n--- sequential\n%s--- parallel\n%s", seq, par)
	}
	if again := render(1); again != seq {
		t.Fatal("repeated run diverged")
	}
	// a different seed must change the fault sequence
	other, err := RunChaos(apps, ChaosOptions{Seed: 12, Messages: 10, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if RenderChaos(other) == seq {
		t.Fatal("seed has no effect on the chaos report")
	}
}

// TestChaosFixedScheduleOverride drives every app with one explicit
// schedule instead of the generated per-app ones.
func TestChaosFixedScheduleOverride(t *testing.T) {
	apps := corpus.Runnable(corpus.All())[:3]
	schedule := &faults.Schedule{Rules: []faults.Rule{
		{Module: "fs", Op: "stream.write", Mode: faults.ModeDrop},
	}}
	res, err := RunChaos(apps, ChaosOptions{Seed: 1, Messages: 5, Cache: NewCache(), Schedule: schedule})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if !a.Equivalent {
			t.Errorf("%s diverged: %s", a.App, a.Mismatch)
		}
		if a.Stats.Dropped == 0 {
			t.Errorf("%s: fixed drop-all schedule injected nothing (stats %+v)", a.App, a.Stats)
		}
	}
	out := RenderChaos(res)
	if !strings.Contains(out, "equivalent under faults: 3/3") {
		t.Fatalf("report = %s", out)
	}
}
