package harness

import (
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/faults"
	"turnstile/internal/guard"

	"turnstile/internal/core"
)

func TestCrashCorpusTypedOutcomes(t *testing.T) {
	res, err := RunCrashCorpus(CrashOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) < 10 {
		t.Fatalf("crash corpus shrank to %d apps", len(res.Apps))
	}
	for _, a := range res.Apps {
		if !a.OK {
			t.Errorf("%s: want %s, got %s: %s", a.App, a.Want, a.Kind, a.Detail)
		}
	}
	if res.Passed != len(res.Apps) {
		t.Fatalf("typed termination: %d/%d\n%s", res.Passed, len(res.Apps), RenderCrash(res))
	}
}

func TestCrashCorpusDeterministicAcrossWorkers(t *testing.T) {
	seq, err := RunCrashCorpus(CrashOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCrashCorpus(CrashOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if RenderCrash(seq) != RenderCrash(par) {
		t.Fatalf("crash report diverged across worker counts:\n--- parallel 1\n%s--- parallel 8\n%s",
			RenderCrash(seq), RenderCrash(par))
	}
	// details (positions, budget counts) must match too, not just the table
	for i := range seq.Apps {
		if seq.Apps[i].Detail != par.Apps[i].Detail {
			t.Fatalf("%s: detail diverged:\n%q\nvs\n%q", seq.Apps[i].App, seq.Apps[i].Detail, par.Apps[i].Detail)
		}
	}
}

func TestCrashCorpusUnderChaosSchedule(t *testing.T) {
	// fault injection may change WHICH typed error an app dies with (an
	// injected delay can turn a fuel trip into a deadline trip, an injected
	// EIO into a throw) — but never produce an untyped error or a hang, and
	// never produce different outcomes at different worker counts
	sched := faults.Generate(42, "crash-corpus")
	seq, err := RunCrashCorpus(CrashOptions{Parallel: 1, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCrashCorpus(CrashOptions{Parallel: 8, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range seq.Apps {
		if a.Kind == "untyped" || a.Kind == "none" {
			t.Errorf("%s: %s outcome under chaos: %s", a.App, a.Kind, a.Detail)
		}
		if par.Apps[i].Kind != a.Kind || par.Apps[i].Detail != a.Detail {
			t.Errorf("%s: chaos outcome diverged across worker counts: %s/%q vs %s/%q",
				a.App, a.Kind, a.Detail, par.Apps[i].Kind, par.Apps[i].Detail)
		}
	}
}

// corpusRecord runs one runnable corpus app end to end (manage + message
// pump) and renders every observable: sink writes, console, violations.
func corpusRecord(app *corpus.App, lim *guard.Limits, messages int) (string, error) {
	opts := core.DefaultOptions()
	opts.Enforce = false // audit mode: violations recorded, flows not blocked
	opts.Guard = lim
	m, err := core.Manage(map[string]string{app.Name + ".js": app.Source}, app.PolicyJSON, opts)
	if err != nil {
		return "", fmt.Errorf("%s: %w", app.Name, err)
	}
	for i := 0; i < messages; i++ {
		if err := m.Emit(app.SourceName, "data", app.Message(i)); err != nil {
			return "", fmt.Errorf("%s msg %d: %w", app.Name, i, err)
		}
	}
	var b strings.Builder
	for _, w := range m.Writes() {
		fmt.Fprintf(&b, "%s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
	}
	for _, line := range m.IP.ConsoleOut {
		fmt.Fprintf(&b, "console %s\n", line)
	}
	for _, v := range m.Violations() {
		fmt.Fprintf(&b, "violation %s\n", v.Error())
	}
	return b.String(), nil
}

func TestGuardTransparency(t *testing.T) {
	// generous budgets must be invisible: for every runnable corpus app the
	// guarded run's sink trace, console and violation log are byte-identical
	// to the unguarded run — the guard observes, it never perturbs
	generous := guard.Limits{
		Fuel:          1 << 50,
		MaxDepth:      1 << 20,
		MaxAlloc:      1 << 50,
		DeadlineTicks: 1 << 60,
	}
	apps := corpus.Runnable(corpus.All())
	if len(apps) == 0 {
		t.Fatal("no runnable corpus apps")
	}
	const messages = 10
	_, err := mapIndexed(len(apps), 0, func(i int) (struct{}, error) {
		app := apps[i]
		plain, err := corpusRecord(app, nil, messages)
		if err != nil {
			return struct{}{}, err
		}
		guarded, err := corpusRecord(app, &generous, messages)
		if err != nil {
			return struct{}{}, err
		}
		if plain != guarded {
			return struct{}{}, fmt.Errorf("%s: guarded record diverged:\n--- unguarded\n%s--- guarded\n%s",
				app.Name, plain, guarded)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
