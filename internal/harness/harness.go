// Package harness runs the paper's experiments end-to-end and renders the
// tables and figures of §6:
//
//   - Table 2 — framework popularity from the synthetic GitHub index.
//   - Figure 10 / E1 — per-app privacy-sensitive dataflow detection,
//     Turnstile vs the CodeQL-equivalent baseline vs manual ground truth,
//     plus the analysis-time comparison.
//   - Figures 11 and 12 / E2 — relative run-time of the 27 instrumentable
//     applications under selective and exhaustive instrumentation across
//     input rates from 2 to 1000 Hz.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"turnstile/internal/baseline"
	"turnstile/internal/corpus"
	"turnstile/internal/ghindex"
	"turnstile/internal/taint"
	"turnstile/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 2

// Table2Row is one framework row.
type Table2Row = ghindex.SearchResult

// RunTable2 builds the synthetic index and performs the signature searches.
func RunTable2() []Table2Row {
	return ghindex.Table2(ghindex.Build())
}

// RenderTable2 formats the rows like the paper's Table 2.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Publicly available repositories per IoT framework\n")
	fmt.Fprintf(&b, "%-16s %14s %24s\n", "Framework", "Search Results", "Number of Repositories")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %14d %16d (%.1f%%)\n", r.Framework, r.Results, r.Repos, r.RepoShare)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E1: static code-path selection (Figure 10 + analysis timing)

// Figure10Row is one application's detection results.
type Figure10Row struct {
	App          string
	Category     string
	Manual       int
	Turnstile    int
	Baseline     int
	TurnstileDur time.Duration
	BaselineDur  time.Duration
}

// E1Result aggregates experiment E1.
type E1Result struct {
	Rows           []Figure10Row
	ManualTotal    int
	TurnstileTotal int
	BaselineTotal  int
	// Timing aggregates (§6.1 "Computation Time").
	TurnstileMean, TurnstileMax time.Duration
	BaselineMean, BaselineMax   time.Duration
	// Speedup is baseline mean / turnstile mean (the paper reports ~67×).
	Speedup float64
	// Category tallies used in the paper's discussion.
	AppsOnlyTurnstile int // Turnstile found paths, baseline none
	AppsNeither       int // neither found any
	AppsBothFound     int
}

// E1Options configures how RunE1With schedules the per-app analyses.
type E1Options struct {
	// Parallel is the worker count; 0 selects GOMAXPROCS, 1 is the
	// sequential path. Result order is index-deterministic either way.
	Parallel int
	// Cache, when non-nil, memoizes parse + analysis per app so warm
	// reruns skip both (see PipelineCache).
	Cache *PipelineCache
}

// RunE1 analyzes every corpus app with both analyzers, sequentially and
// uncached — the paper's original single-goroutine methodology.
func RunE1(apps []*corpus.App) (*E1Result, error) {
	return RunE1With(apps, E1Options{Parallel: 1})
}

// RunE1With analyzes every corpus app with both analyzers, fanning the
// per-app work across a bounded worker pool. Rows are collected in corpus
// order and every aggregate is computed in a deterministic sequential
// pass, so the rendered detection tables are byte-identical to a
// sequential run.
func RunE1With(apps []*corpus.App, opts E1Options) (*E1Result, error) {
	rows, err := mapIndexed(len(apps), opts.Parallel, func(i int) (Figure10Row, error) {
		app := apps[i]
		file := app.Name + ".js"
		var tr *taint.Result
		var br *baseline.Result
		if opts.Cache != nil {
			var err error
			if _, tr, err = opts.Cache.Analyzed(file, app.Source, taint.DefaultOptions()); err != nil {
				return Figure10Row{}, fmt.Errorf("harness: %s: %w", app.Name, err)
			}
			if br, err = opts.Cache.Baseline(file, app.Source, taint.DefaultOptions()); err != nil {
				return Figure10Row{}, fmt.Errorf("harness: %s: %w", app.Name, err)
			}
		} else {
			files, err := app.Files()
			if err != nil {
				return Figure10Row{}, err
			}
			tr = taint.Analyze(files, taint.DefaultOptions())
			br = baseline.Analyze(files)
		}
		return Figure10Row{
			App:          app.Name,
			Category:     app.Category.String(),
			Manual:       app.GroundTruth,
			Turnstile:    len(tr.Paths),
			Baseline:     len(br.Paths),
			TurnstileDur: tr.Duration,
			BaselineDur:  br.Duration,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &E1Result{Rows: rows}
	var tTotal, bTotal time.Duration
	for _, row := range rows {
		res.ManualTotal += row.Manual
		res.TurnstileTotal += row.Turnstile
		res.BaselineTotal += row.Baseline
		tTotal += row.TurnstileDur
		bTotal += row.BaselineDur
		if row.TurnstileDur > res.TurnstileMax {
			res.TurnstileMax = row.TurnstileDur
		}
		if row.BaselineDur > res.BaselineMax {
			res.BaselineMax = row.BaselineDur
		}
		switch {
		case row.Turnstile > 0 && row.Baseline == 0:
			res.AppsOnlyTurnstile++
		case row.Turnstile > 0 && row.Baseline > 0:
			res.AppsBothFound++
		case row.Turnstile == 0 && row.Baseline == 0:
			res.AppsNeither++
		}
	}
	n := time.Duration(len(apps))
	if n > 0 {
		res.TurnstileMean = tTotal / n
		res.BaselineMean = bTotal / n
	}
	if res.TurnstileMean > 0 {
		res.Speedup = float64(res.BaselineMean) / float64(res.TurnstileMean)
	}
	return res, nil
}

// RenderFigure10 formats the deterministic half of E1: the per-app
// detection table and the category tallies. Its output depends only on
// the corpus, never on measured durations, so sequential, parallel, cold-
// and warm-cache runs must render byte-identically (the determinism tests
// and golden files assert exactly this).
func RenderFigure10(res *E1Result) string {
	var b strings.Builder
	b.WriteString("Figure 10: privacy-sensitive dataflows per application\n")
	fmt.Fprintf(&b, "%-18s %-18s %7s %10s %8s\n", "Application", "Category", "Manual", "Turnstile", "CodeQL*")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-18s %-18s %7d %10d %8d\n", r.App, r.Category, r.Manual, r.Turnstile, r.Baseline)
	}
	fmt.Fprintf(&b, "%-18s %-18s %7d %10d %8d\n", "TOTAL", "", res.ManualTotal, res.TurnstileTotal, res.BaselineTotal)
	fmt.Fprintf(&b, "\napps where only Turnstile found paths: %d\n", res.AppsOnlyTurnstile)
	fmt.Fprintf(&b, "apps where both found paths:           %d\n", res.AppsBothFound)
	fmt.Fprintf(&b, "apps where neither found paths:        %d\n", res.AppsNeither)
	return b.String()
}

// RenderE1 formats the Figure 10 data and the timing summary.
func RenderE1(res *E1Result) string {
	var b strings.Builder
	b.WriteString(RenderFigure10(res))
	fmt.Fprintf(&b, "\nanalysis time: turnstile mean %v (max %v); baseline mean %v (max %v); speedup %.1fx\n",
		res.TurnstileMean, res.TurnstileMax, res.BaselineMean, res.BaselineMax, res.Speedup)
	b.WriteString("(*CodeQL-equivalent baseline analyzer)\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// E2: run-time performance overhead (Figures 11 and 12)

// AppMeasurement holds the measured per-message service times of the three
// versions of one application.
type AppMeasurement struct {
	App        string
	Original   workload.Service
	Selective  workload.Service
	Exhaustive workload.Service
	// Scale is the workload-size normalization applied inside the queue
	// simulation. The corpus applications are miniaturized replicas of the
	// paper's subjects (dictionaries of hundreds of tokens instead of full
	// NLP corpora, short frame descriptors instead of megapixel frames);
	// all three versions' measured service times are multiplied by Scale
	// so the service-time-to-arrival-period regime matches the paper's
	// full-size workloads. The overhead ratios themselves are measured,
	// never synthesized: Scale shifts only where on the rate axis the
	// idle→saturated crossover falls.
	Scale float64
}

func (m *AppMeasurement) scaled(s workload.Service) workload.Service {
	k := m.Scale
	if k <= 0 {
		k = 1
	}
	out := make(workload.Service, len(s))
	for i, d := range s {
		out[i] = time.Duration(float64(d) * k)
	}
	return out
}

// RelSelective returns t/t_og for the selectively-managed version at hz.
func (m *AppMeasurement) RelSelective(hz float64) float64 {
	return workload.RelativeRuntime(m.scaled(m.Selective), m.scaled(m.Original), hz)
}

// RelExhaustive returns t/t_og for the exhaustively-managed version at hz.
func (m *AppMeasurement) RelExhaustive(hz float64) float64 {
	return workload.RelativeRuntime(m.scaled(m.Exhaustive), m.scaled(m.Original), hz)
}

// E2Options configures the overhead experiment.
type E2Options struct {
	// Messages per run (the paper uses 1000).
	Messages int
	// Warmup messages executed before measurement.
	Warmup int
	// Repeats averages service profiles over repeated runs (paper: 10).
	Repeats int
	// ServiceScale is the workload-size normalization (see
	// AppMeasurement.Scale); 0 selects the default.
	ServiceScale float64
	// Parallel is the MeasureApps worker count; 0 selects GOMAXPROCS, 1
	// measures sequentially. Each app's three versions always stay on one
	// worker, interleaved per repeat, so the overhead *ratios* remain
	// apples-to-apples; only absolute service times pick up scheduling
	// noise from neighbouring workers.
	Parallel int
	// Cache, when non-nil, memoizes each app's parse + analysis across
	// PrepareApp calls and experiment reruns.
	Cache *PipelineCache
	// NoResolve runs every version on the map-walk interpreter with the
	// resolver fast paths disabled (A/B escape hatch).
	NoResolve bool
	// NoVM runs every version on the tree-walking evaluator with the
	// bytecode VM disabled (the -novm escape hatch).
	NoVM bool
}

// DefaultServiceScale normalizes the miniaturized corpus workloads to the
// paper's service-time regime (full-size camera frames take ~10-100 ms to
// process; the corpus messages take a fraction of a millisecond).
const DefaultServiceScale = 16

// DefaultE2Options returns a configuration sized for interactive runs.
func DefaultE2Options() E2Options {
	return E2Options{Messages: 200, Warmup: 20, Repeats: 3, ServiceScale: DefaultServiceScale}
}

// MeasureApps prepares and measures every runnable app, fanning the
// per-app preparation and measurement across opts.Parallel workers.
// Measurements are collected in corpus order regardless of worker
// interleaving.
func MeasureApps(apps []*corpus.App, opts E2Options) ([]AppMeasurement, error) {
	if opts.Messages == 0 {
		d := DefaultE2Options()
		d.Parallel, d.Cache, d.NoResolve, d.NoVM = opts.Parallel, opts.Cache, opts.NoResolve, opts.NoVM
		opts = d
	}
	runnable := corpus.Runnable(apps)
	return mapIndexed(len(runnable), opts.Parallel, func(i int) (AppMeasurement, error) {
		m, err := MeasureApp(runnable[i], opts)
		if err != nil {
			return AppMeasurement{}, fmt.Errorf("harness: %s: %w", runnable[i].Name, err)
		}
		return *m, nil
	})
}

// MeasureApp measures one app's three versions.
func MeasureApp(app *corpus.App, opts E2Options) (*AppMeasurement, error) {
	prep, err := PrepareAppMode(app, opts.Cache, ExecMode{NoResolve: opts.NoResolve, NoVM: opts.NoVM})
	if err != nil {
		return nil, err
	}
	// one measurement pass of a single version
	pass := func(r *Runner) (workload.Service, error) {
		// a clean heap between passes keeps one version's garbage from
		// being charged to the next version's measurements; with multiple
		// measurement workers a forced global GC would instead stall every
		// other worker mid-pass, so it is only done when measuring alone
		if opts.Parallel <= 1 {
			runtime.GC()
		}
		for i := 0; i < opts.Warmup; i++ {
			if err := r.Process(i); err != nil {
				return nil, err
			}
		}
		return workload.Measure(opts.Messages, r.Process)
	}
	// merge keeps the per-message minimum across repeats — the standard
	// low-noise estimator for service time
	merge := func(acc, s workload.Service) workload.Service {
		if acc == nil {
			return s
		}
		for i := range acc {
			if s[i] < acc[i] {
				acc[i] = s[i]
			}
		}
		return acc
	}
	m := &AppMeasurement{App: app.Name, Scale: opts.ServiceScale}
	if m.Scale == 0 {
		m.Scale = DefaultServiceScale
	}
	// the three versions are measured interleaved within each repeat so
	// slow drift (CPU frequency, heap growth) affects them equally
	for rep := 0; rep < max(1, opts.Repeats); rep++ {
		s, err := pass(prep.Original)
		if err != nil {
			return nil, fmt.Errorf("original: %w", err)
		}
		m.Original = merge(m.Original, s)
		if s, err = pass(prep.Selective); err != nil {
			return nil, fmt.Errorf("selective: %w", err)
		}
		m.Selective = merge(m.Selective, s)
		if s, err = pass(prep.Exhaustive); err != nil {
			return nil, fmt.Errorf("exhaustive: %w", err)
		}
		m.Exhaustive = merge(m.Exhaustive, s)
	}
	return m, nil
}

// Figure11Point is one input-rate sample of the Fig. 11 bands.
type Figure11Point struct {
	Rate                      float64
	SelMin, SelMedian, SelMax float64
	ExhMin, ExhMedian, ExhMax float64
}

// Figure11 computes the min/median/max relative run-time bands across apps
// for each input rate.
func Figure11(ms []AppMeasurement, rates []float64) []Figure11Point {
	if rates == nil {
		rates = workload.Rates
	}
	var points []Figure11Point
	for _, hz := range rates {
		var sel, exh []float64
		for i := range ms {
			sel = append(sel, ms[i].RelSelective(hz))
			exh = append(exh, ms[i].RelExhaustive(hz))
		}
		sort.Float64s(sel)
		sort.Float64s(exh)
		points = append(points, Figure11Point{
			Rate:      hz,
			SelMin:    sel[0],
			SelMedian: workload.Percentile(sel, 0.5),
			SelMax:    sel[len(sel)-1],
			ExhMin:    exh[0],
			ExhMedian: workload.Percentile(exh, 0.5),
			ExhMax:    exh[len(exh)-1],
		})
	}
	return points
}

// RenderFigure11 formats the band data.
func RenderFigure11(points []Figure11Point) string {
	var b strings.Builder
	b.WriteString("Figure 11: relative run-time vs input rate (min/median/max across 27 apps)\n")
	fmt.Fprintf(&b, "%8s | %26s | %26s\n", "rate Hz", "selective (min/med/max)", "exhaustive (min/med/max)")
	for _, p := range points {
		fmt.Fprintf(&b, "%8.0f | %7.3f %8.3f %8.3f | %7.3f %8.3f %8.3f\n",
			p.Rate, p.SelMin, p.SelMedian, p.SelMax, p.ExhMin, p.ExhMedian, p.ExhMax)
	}
	return b.String()
}

// Figure12Row is one app's relative run-times at the two highlighted rates.
type Figure12Row struct {
	App            string
	Sel30, Exh30   float64
	Sel250, Exh250 float64
}

// Figure12 computes per-app relative run-times at 30 Hz and 250 Hz.
func Figure12(ms []AppMeasurement) []Figure12Row {
	var rows []Figure12Row
	for i := range ms {
		rows = append(rows, Figure12Row{
			App:    ms[i].App,
			Sel30:  ms[i].RelSelective(30),
			Exh30:  ms[i].RelExhaustive(30),
			Sel250: ms[i].RelSelective(250),
			Exh250: ms[i].RelExhaustive(250),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].App < rows[j].App })
	return rows
}

// RenderFigure12 formats the per-app comparison.
func RenderFigure12(rows []Figure12Row) string {
	var b strings.Builder
	b.WriteString("Figure 12: relative run-time per application at 30 Hz and 250 Hz\n")
	fmt.Fprintf(&b, "%-18s | %9s %9s | %9s %9s\n", "application", "sel@30", "exh@30", "sel@250", "exh@250")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s | %9.3f %9.3f | %9.3f %9.3f\n", r.App, r.Sel30, r.Exh30, r.Sel250, r.Exh250)
	}
	return b.String()
}

// OverheadSummary extracts the headline numbers of §6.2 from the band data.
type OverheadSummary struct {
	WorstSelective30  float64 // paper: ≈15.8% → 1.158
	WorstExhaustive30 float64 // paper: ≈153.8% → 2.538
	MedianSelLow      float64 // median at 2 Hz (paper: ≈0.2% → 1.002)
	MedianSelHigh     float64 // median at 1000 Hz (paper: ≈22% → 1.22)
	AcceptableSel     int     // apps with median overhead < 20% across rates
	AcceptableExh     int
}

// Summarize computes the headline claims from the measurements.
func Summarize(ms []AppMeasurement, points []Figure11Point) OverheadSummary {
	var s OverheadSummary
	for _, p := range points {
		if p.Rate == 30 {
			s.WorstSelective30 = p.SelMax
			s.WorstExhaustive30 = p.ExhMax
		}
		if p.Rate == 2 {
			s.MedianSelLow = p.SelMedian
		}
		if p.Rate == 1000 {
			s.MedianSelHigh = p.SelMedian
		}
	}
	// an app is "acceptable" when its median relative run-time across the
	// rate sweep stays below 1.2 (a 20% overhead, §6.2)
	for i := range ms {
		var sel, exh []float64
		for _, hz := range workload.Rates {
			sel = append(sel, ms[i].RelSelective(hz))
			exh = append(exh, ms[i].RelExhaustive(hz))
		}
		sort.Float64s(sel)
		sort.Float64s(exh)
		if workload.Percentile(sel, 0.5) < 1.2 {
			s.AcceptableSel++
		}
		if workload.Percentile(exh, 0.5) < 1.2 {
			s.AcceptableExh++
		}
	}
	return s
}
